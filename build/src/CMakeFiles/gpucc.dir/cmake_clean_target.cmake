file(REMOVE_RECURSE
  "libgpucc.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bitstream.cc" "src/CMakeFiles/gpucc.dir/common/bitstream.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/common/bitstream.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/gpucc.dir/common/log.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/gpucc.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/gpucc.dir/common/table.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/common/table.cc.o.d"
  "/root/repo/src/covert/agile/idle_discovery.cc" "src/CMakeFiles/gpucc.dir/covert/agile/idle_discovery.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/agile/idle_discovery.cc.o.d"
  "/root/repo/src/covert/analysis/capacity.cc" "src/CMakeFiles/gpucc.dir/covert/analysis/capacity.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/analysis/capacity.cc.o.d"
  "/root/repo/src/covert/channel.cc" "src/CMakeFiles/gpucc.dir/covert/channel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/channel.cc.o.d"
  "/root/repo/src/covert/channels/atomic_channel.cc" "src/CMakeFiles/gpucc.dir/covert/channels/atomic_channel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/channels/atomic_channel.cc.o.d"
  "/root/repo/src/covert/channels/fu_channel_plan.cc" "src/CMakeFiles/gpucc.dir/covert/channels/fu_channel_plan.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/channels/fu_channel_plan.cc.o.d"
  "/root/repo/src/covert/channels/l1_const_channel.cc" "src/CMakeFiles/gpucc.dir/covert/channels/l1_const_channel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/channels/l1_const_channel.cc.o.d"
  "/root/repo/src/covert/channels/l2_const_channel.cc" "src/CMakeFiles/gpucc.dir/covert/channels/l2_const_channel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/channels/l2_const_channel.cc.o.d"
  "/root/repo/src/covert/channels/sfu_channel.cc" "src/CMakeFiles/gpucc.dir/covert/channels/sfu_channel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/channels/sfu_channel.cc.o.d"
  "/root/repo/src/covert/characterize/cache_characterizer.cc" "src/CMakeFiles/gpucc.dir/covert/characterize/cache_characterizer.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/characterize/cache_characterizer.cc.o.d"
  "/root/repo/src/covert/characterize/fu_characterizer.cc" "src/CMakeFiles/gpucc.dir/covert/characterize/fu_characterizer.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/characterize/fu_characterizer.cc.o.d"
  "/root/repo/src/covert/characterize/scheduler_probe.cc" "src/CMakeFiles/gpucc.dir/covert/characterize/scheduler_probe.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/characterize/scheduler_probe.cc.o.d"
  "/root/repo/src/covert/coding/error_code.cc" "src/CMakeFiles/gpucc.dir/covert/coding/error_code.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/coding/error_code.cc.o.d"
  "/root/repo/src/covert/colocation/exclusive.cc" "src/CMakeFiles/gpucc.dir/covert/colocation/exclusive.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/colocation/exclusive.cc.o.d"
  "/root/repo/src/covert/colocation/noise_experiment.cc" "src/CMakeFiles/gpucc.dir/covert/colocation/noise_experiment.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/colocation/noise_experiment.cc.o.d"
  "/root/repo/src/covert/detection/cc_detector.cc" "src/CMakeFiles/gpucc.dir/covert/detection/cc_detector.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/detection/cc_detector.cc.o.d"
  "/root/repo/src/covert/parallel/multi_resource_channel.cc" "src/CMakeFiles/gpucc.dir/covert/parallel/multi_resource_channel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/parallel/multi_resource_channel.cc.o.d"
  "/root/repo/src/covert/parallel/sfu_parallel_channel.cc" "src/CMakeFiles/gpucc.dir/covert/parallel/sfu_parallel_channel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/parallel/sfu_parallel_channel.cc.o.d"
  "/root/repo/src/covert/sync/duplex_channel.cc" "src/CMakeFiles/gpucc.dir/covert/sync/duplex_channel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/sync/duplex_channel.cc.o.d"
  "/root/repo/src/covert/sync/handshake.cc" "src/CMakeFiles/gpucc.dir/covert/sync/handshake.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/sync/handshake.cc.o.d"
  "/root/repo/src/covert/sync/sync_channel.cc" "src/CMakeFiles/gpucc.dir/covert/sync/sync_channel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/sync/sync_channel.cc.o.d"
  "/root/repo/src/covert/sync/sync_l2_channel.cc" "src/CMakeFiles/gpucc.dir/covert/sync/sync_l2_channel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/sync/sync_l2_channel.cc.o.d"
  "/root/repo/src/covert/sync/sync_sfu_channel.cc" "src/CMakeFiles/gpucc.dir/covert/sync/sync_sfu_channel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/covert/sync/sync_sfu_channel.cc.o.d"
  "/root/repo/src/gpu/arch_params.cc" "src/CMakeFiles/gpucc.dir/gpu/arch_params.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/arch_params.cc.o.d"
  "/root/repo/src/gpu/block_scheduler.cc" "src/CMakeFiles/gpucc.dir/gpu/block_scheduler.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/block_scheduler.cc.o.d"
  "/root/repo/src/gpu/device.cc" "src/CMakeFiles/gpucc.dir/gpu/device.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/device.cc.o.d"
  "/root/repo/src/gpu/device_stats.cc" "src/CMakeFiles/gpucc.dir/gpu/device_stats.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/device_stats.cc.o.d"
  "/root/repo/src/gpu/host.cc" "src/CMakeFiles/gpucc.dir/gpu/host.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/host.cc.o.d"
  "/root/repo/src/gpu/kernel.cc" "src/CMakeFiles/gpucc.dir/gpu/kernel.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/kernel.cc.o.d"
  "/root/repo/src/gpu/sm.cc" "src/CMakeFiles/gpucc.dir/gpu/sm.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/sm.cc.o.d"
  "/root/repo/src/gpu/stream.cc" "src/CMakeFiles/gpucc.dir/gpu/stream.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/stream.cc.o.d"
  "/root/repo/src/gpu/thread_block.cc" "src/CMakeFiles/gpucc.dir/gpu/thread_block.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/thread_block.cc.o.d"
  "/root/repo/src/gpu/warp.cc" "src/CMakeFiles/gpucc.dir/gpu/warp.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/warp.cc.o.d"
  "/root/repo/src/gpu/warp_ctx.cc" "src/CMakeFiles/gpucc.dir/gpu/warp_ctx.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/warp_ctx.cc.o.d"
  "/root/repo/src/gpu/warp_scheduler.cc" "src/CMakeFiles/gpucc.dir/gpu/warp_scheduler.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/gpu/warp_scheduler.cc.o.d"
  "/root/repo/src/mem/coalescer.cc" "src/CMakeFiles/gpucc.dir/mem/coalescer.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/mem/coalescer.cc.o.d"
  "/root/repo/src/mem/const_memory.cc" "src/CMakeFiles/gpucc.dir/mem/const_memory.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/mem/const_memory.cc.o.d"
  "/root/repo/src/mem/global_memory.cc" "src/CMakeFiles/gpucc.dir/mem/global_memory.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/mem/global_memory.cc.o.d"
  "/root/repo/src/mem/set_assoc_cache.cc" "src/CMakeFiles/gpucc.dir/mem/set_assoc_cache.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/mem/set_assoc_cache.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/gpucc.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/resource_pool.cc" "src/CMakeFiles/gpucc.dir/sim/resource_pool.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/sim/resource_pool.cc.o.d"
  "/root/repo/src/workloads/interference.cc" "src/CMakeFiles/gpucc.dir/workloads/interference.cc.o" "gcc" "src/CMakeFiles/gpucc.dir/workloads/interference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

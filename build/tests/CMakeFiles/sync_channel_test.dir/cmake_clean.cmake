file(REMOVE_RECURSE
  "CMakeFiles/sync_channel_test.dir/sync_channel_test.cc.o"
  "CMakeFiles/sync_channel_test.dir/sync_channel_test.cc.o.d"
  "sync_channel_test"
  "sync_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

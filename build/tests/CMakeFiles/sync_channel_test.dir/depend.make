# Empty dependencies file for sync_channel_test.
# This may be replaced when dependencies are built.

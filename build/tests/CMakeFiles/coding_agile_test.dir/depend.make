# Empty dependencies file for coding_agile_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coding_agile_test.dir/coding_agile_test.cc.o"
  "CMakeFiles/coding_agile_test.dir/coding_agile_test.cc.o.d"
  "coding_agile_test"
  "coding_agile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coding_agile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

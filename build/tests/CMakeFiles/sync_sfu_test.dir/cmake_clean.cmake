file(REMOVE_RECURSE
  "CMakeFiles/sync_sfu_test.dir/sync_sfu_test.cc.o"
  "CMakeFiles/sync_sfu_test.dir/sync_sfu_test.cc.o.d"
  "sync_sfu_test"
  "sync_sfu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_sfu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sync_sfu_test.
# This may be replaced when dependencies are built.

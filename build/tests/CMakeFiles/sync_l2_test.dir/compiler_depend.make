# Empty compiler generated dependencies file for sync_l2_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sync_l2_test.dir/sync_l2_test.cc.o"
  "CMakeFiles/sync_l2_test.dir/sync_l2_test.cc.o.d"
  "sync_l2_test"
  "sync_l2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_l2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/device_task_test.dir/device_task_test.cc.o"
  "CMakeFiles/device_task_test.dir/device_task_test.cc.o.d"
  "device_task_test"
  "device_task_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

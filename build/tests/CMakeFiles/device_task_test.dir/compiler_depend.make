# Empty compiler generated dependencies file for device_task_test.
# This may be replaced when dependencies are built.

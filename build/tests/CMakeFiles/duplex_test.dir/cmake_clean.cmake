file(REMOVE_RECURSE
  "CMakeFiles/duplex_test.dir/duplex_test.cc.o"
  "CMakeFiles/duplex_test.dir/duplex_test.cc.o.d"
  "duplex_test"
  "duplex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

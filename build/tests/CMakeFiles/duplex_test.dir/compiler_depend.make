# Empty compiler generated dependencies file for duplex_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/device_stats_test.dir/device_stats_test.cc.o"
  "CMakeFiles/device_stats_test.dir/device_stats_test.cc.o.d"
  "device_stats_test"
  "device_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

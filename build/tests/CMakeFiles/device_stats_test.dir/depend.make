# Empty dependencies file for device_stats_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/arch_params_test.dir/arch_params_test.cc.o"
  "CMakeFiles/arch_params_test.dir/arch_params_test.cc.o.d"
  "arch_params_test"
  "arch_params_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for multiprog_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for fu_channels_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fu_channels_test.dir/fu_channels_test.cc.o"
  "CMakeFiles/fu_channels_test.dir/fu_channels_test.cc.o.d"
  "fu_channels_test"
  "fu_channels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fu_channels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

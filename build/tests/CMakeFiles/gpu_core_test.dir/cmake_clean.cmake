file(REMOVE_RECURSE
  "CMakeFiles/gpu_core_test.dir/gpu_core_test.cc.o"
  "CMakeFiles/gpu_core_test.dir/gpu_core_test.cc.o.d"
  "gpu_core_test"
  "gpu_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

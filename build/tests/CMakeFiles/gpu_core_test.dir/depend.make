# Empty dependencies file for gpu_core_test.
# This may be replaced when dependencies are built.

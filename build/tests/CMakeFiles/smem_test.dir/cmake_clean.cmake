file(REMOVE_RECURSE
  "CMakeFiles/smem_test.dir/smem_test.cc.o"
  "CMakeFiles/smem_test.dir/smem_test.cc.o.d"
  "smem_test"
  "smem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

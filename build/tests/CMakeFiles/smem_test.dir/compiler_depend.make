# Empty compiler generated dependencies file for smem_test.
# This may be replaced when dependencies are built.

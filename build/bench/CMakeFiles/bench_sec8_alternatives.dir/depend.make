# Empty dependencies file for bench_sec8_alternatives.
# This may be replaced when dependencies are built.

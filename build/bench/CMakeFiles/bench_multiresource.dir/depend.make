# Empty dependencies file for bench_multiresource.
# This may be replaced when dependencies are built.

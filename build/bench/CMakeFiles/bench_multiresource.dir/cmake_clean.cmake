file(REMOVE_RECURSE
  "CMakeFiles/bench_multiresource.dir/bench_multiresource.cpp.o"
  "CMakeFiles/bench_multiresource.dir/bench_multiresource.cpp.o.d"
  "bench_multiresource"
  "bench_multiresource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiresource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

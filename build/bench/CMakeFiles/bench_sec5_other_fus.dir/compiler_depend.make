# Empty compiler generated dependencies file for bench_sec5_other_fus.
# This may be replaced when dependencies are built.

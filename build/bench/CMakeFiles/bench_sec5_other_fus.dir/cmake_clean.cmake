file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_other_fus.dir/bench_sec5_other_fus.cpp.o"
  "CMakeFiles/bench_sec5_other_fus.dir/bench_sec5_other_fus.cpp.o.d"
  "bench_sec5_other_fus"
  "bench_sec5_other_fus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_other_fus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table3_sfu_improved.
# This may be replaced when dependencies are built.

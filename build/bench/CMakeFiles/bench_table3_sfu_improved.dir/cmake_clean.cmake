file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sfu_improved.dir/bench_table3_sfu_improved.cpp.o"
  "CMakeFiles/bench_table3_sfu_improved.dir/bench_table3_sfu_improved.cpp.o.d"
  "bench_table3_sfu_improved"
  "bench_table3_sfu_improved.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sfu_improved.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig05_bit_error_rate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_bit_error_rate.dir/bench_fig05_bit_error_rate.cpp.o"
  "CMakeFiles/bench_fig05_bit_error_rate.dir/bench_fig05_bit_error_rate.cpp.o.d"
  "bench_fig05_bit_error_rate"
  "bench_fig05_bit_error_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_bit_error_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_sec9_detection.dir/bench_sec9_detection.cpp.o"
  "CMakeFiles/bench_sec9_detection.dir/bench_sec9_detection.cpp.o.d"
  "bench_sec9_detection"
  "bench_sec9_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec9_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table2_l1_improved.
# This may be replaced when dependencies are built.

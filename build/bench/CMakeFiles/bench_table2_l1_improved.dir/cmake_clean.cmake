file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_l1_improved.dir/bench_table2_l1_improved.cpp.o"
  "CMakeFiles/bench_table2_l1_improved.dir/bench_table2_l1_improved.cpp.o.d"
  "bench_table2_l1_improved"
  "bench_table2_l1_improved.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_l1_improved.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

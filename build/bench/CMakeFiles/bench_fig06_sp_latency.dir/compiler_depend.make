# Empty compiler generated dependencies file for bench_fig06_sp_latency.
# This may be replaced when dependencies are built.

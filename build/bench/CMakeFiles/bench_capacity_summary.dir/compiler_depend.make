# Empty compiler generated dependencies file for bench_capacity_summary.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_capacity_summary.dir/bench_capacity_summary.cpp.o"
  "CMakeFiles/bench_capacity_summary.dir/bench_capacity_summary.cpp.o.d"
  "bench_capacity_summary"
  "bench_capacity_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capacity_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig04_cache_bandwidth.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_sec9_mitigations.
# This may be replaced when dependencies are built.

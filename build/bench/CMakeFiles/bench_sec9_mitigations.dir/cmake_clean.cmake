file(REMOVE_RECURSE
  "CMakeFiles/bench_sec9_mitigations.dir/bench_sec9_mitigations.cpp.o"
  "CMakeFiles/bench_sec9_mitigations.dir/bench_sec9_mitigations.cpp.o.d"
  "bench_sec9_mitigations"
  "bench_sec9_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec9_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_sec3_colocation.
# This may be replaced when dependencies are built.

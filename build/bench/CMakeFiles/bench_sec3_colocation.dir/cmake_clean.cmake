file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_colocation.dir/bench_sec3_colocation.cpp.o"
  "CMakeFiles/bench_sec3_colocation.dir/bench_sec3_colocation.cpp.o.d"
  "bench_sec3_colocation"
  "bench_sec3_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_sec32_multiprog.
# This may be replaced when dependencies are built.

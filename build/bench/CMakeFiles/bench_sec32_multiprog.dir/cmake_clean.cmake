file(REMOVE_RECURSE
  "CMakeFiles/bench_sec32_multiprog.dir/bench_sec32_multiprog.cpp.o"
  "CMakeFiles/bench_sec32_multiprog.dir/bench_sec32_multiprog.cpp.o.d"
  "bench_sec32_multiprog"
  "bench_sec32_multiprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_multiprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_sec10_negative_results.
# This may be replaced when dependencies are built.

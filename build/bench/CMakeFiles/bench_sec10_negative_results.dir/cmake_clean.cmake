file(REMOVE_RECURSE
  "CMakeFiles/bench_sec10_negative_results.dir/bench_sec10_negative_results.cpp.o"
  "CMakeFiles/bench_sec10_negative_results.dir/bench_sec10_negative_results.cpp.o.d"
  "bench_sec10_negative_results"
  "bench_sec10_negative_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec10_negative_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

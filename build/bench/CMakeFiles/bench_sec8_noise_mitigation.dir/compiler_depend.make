# Empty compiler generated dependencies file for bench_sec8_noise_mitigation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_sec8_noise_mitigation.dir/bench_sec8_noise_mitigation.cpp.o"
  "CMakeFiles/bench_sec8_noise_mitigation.dir/bench_sec8_noise_mitigation.cpp.o.d"
  "bench_sec8_noise_mitigation"
  "bench_sec8_noise_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec8_noise_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig02_l1_characterization.
# This may be replaced when dependencies are built.

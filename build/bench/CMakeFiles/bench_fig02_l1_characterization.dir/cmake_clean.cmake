file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_l1_characterization.dir/bench_fig02_l1_characterization.cpp.o"
  "CMakeFiles/bench_fig02_l1_characterization.dir/bench_fig02_l1_characterization.cpp.o.d"
  "bench_fig02_l1_characterization"
  "bench_fig02_l1_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_l1_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig10_atomic_bandwidth.
# This may be replaced when dependencies are built.

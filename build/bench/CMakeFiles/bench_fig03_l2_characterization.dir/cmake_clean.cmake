file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_l2_characterization.dir/bench_fig03_l2_characterization.cpp.o"
  "CMakeFiles/bench_fig03_l2_characterization.dir/bench_fig03_l2_characterization.cpp.o.d"
  "bench_fig03_l2_characterization"
  "bench_fig03_l2_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_l2_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

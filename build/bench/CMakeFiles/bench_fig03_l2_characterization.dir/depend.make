# Empty dependencies file for bench_fig03_l2_characterization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exfiltrate_key.dir/exfiltrate_key.cpp.o"
  "CMakeFiles/exfiltrate_key.dir/exfiltrate_key.cpp.o.d"
  "exfiltrate_key"
  "exfiltrate_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exfiltrate_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

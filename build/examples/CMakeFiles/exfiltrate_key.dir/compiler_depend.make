# Empty compiler generated dependencies file for exfiltrate_key.
# This may be replaced when dependencies are built.

# Empty dependencies file for reverse_engineer.
# This may be replaced when dependencies are built.

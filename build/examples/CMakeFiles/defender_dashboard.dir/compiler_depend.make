# Empty compiler generated dependencies file for defender_dashboard.
# This may be replaced when dependencies are built.

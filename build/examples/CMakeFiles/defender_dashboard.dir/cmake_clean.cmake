file(REMOVE_RECURSE
  "CMakeFiles/defender_dashboard.dir/defender_dashboard.cpp.o"
  "CMakeFiles/defender_dashboard.dir/defender_dashboard.cpp.o.d"
  "defender_dashboard"
  "defender_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defender_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for noisy_datacenter.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/noisy_datacenter.dir/noisy_datacenter.cpp.o"
  "CMakeFiles/noisy_datacenter.dir/noisy_datacenter.cpp.o.d"
  "noisy_datacenter"
  "noisy_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

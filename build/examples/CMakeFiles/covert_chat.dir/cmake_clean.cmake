file(REMOVE_RECURSE
  "CMakeFiles/covert_chat.dir/covert_chat.cpp.o"
  "CMakeFiles/covert_chat.dir/covert_chat.cpp.o.d"
  "covert_chat"
  "covert_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covert_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for covert_chat.
# This may be replaced when dependencies are built.

#!/usr/bin/env bash
# Tier-1 verification plus a simulator-performance regression gate.
#
#  1. Configure, build, and run the full test suite (the ROADMAP.md
#     tier-1 line).
#  2. Run bench_simperf into a scratch JSON and compare its numbers
#     against the committed BENCH_simperf.json record through
#     gpucc_report's simperf gate; any tracked metric more than 15%
#     slower is a regression. Performance is machine-dependent, so
#     regressions WARN by default; --strict makes them fail (and
#     --simperf-warn downgrades them back to warnings, for CI boxes
#     whose absolute speed is unrelated to the recording machine's).
#     The fresh run and the comparison report are written to
#     <build-dir>/observability/ (CI uploads that directory).
#
# With --simperf, skip the build/test tier and run ONLY the simperf
# gate, fatally: build bench_simperf if needed, compare against the
# committed record, exit non-zero on any >15% regression. This is the
# gate to run after touching simulator hot paths.
#
# With --trace-smoke, additionally run the exfiltrate_key example under
# GPUCC_TRACE and validate every observability artifact — the Chrome
# trace-event timeline, the channel flight-recorder log, and the metrics
# registry export — with python's json parser. Artifacts land in
# <build-dir>/observability/ (CI uploads that directory).
#
# With --conformance, run the paper-fidelity conformance suite
# (gpucc_verify against conformance/expected/) on all architectures and
# write the machine-readable report to
# <build-dir>/observability/conformance_report.json. Any band miss is
# fatal. See TESTING.md for the band format and how to re-record.
#
# With --league, run the co-evolution acceptance gate: the `league`
# conformance bands on all architectures (agile session vs reactive
# defender: zero residual errors through at most one failover), then
# the bench_league smoke cell (agile attacker vs the fuzz-only
# reactive defender, 4 seeds) with a python assert that no cell lost a
# single bit. The league table JSON lands in
# <build-dir>/observability/ (CI uploads that directory).
#
# With --svc, run the sweep-service chaos gate: the built-in soak spec
# (including the always-failing quarantine row) cold in-process, then
# under real worker processes with a scripted kill + heartbeat stall,
# then killed mid-run (--halt-after) and resumed against the same
# ledger — asserting every canonical report is byte-identical to the
# cold run and that re-running the unchanged spec appends zero bytes
# to the ledger. Artifacts (reports, ledgers, stats, spool) land in
# <build-dir>/observability/svc/ (CI uploads that directory).
# --svc-only skips the build/test tier and runs ONLY the chaos gate,
# building just the service binaries it needs.
#
# With --report, run the run-scale observability gate (gpucc_report):
# a profiled sweep of the session-robustness and league cells appended
# content-addressed into <build-dir>/observability/ledger/, the ledger
# trend sentry (per-metric deltas vs prior revisions, per-phase cycle
# costs included), and the markdown/JSON dashboard. Any trend
# regression past the noise band is fatal. CI persists the ledger
# across runs so the sentry sees real history.
#
# Usage: scripts/check.sh [--strict] [--simperf] [--simperf-warn]
#                         [--trace-smoke] [--conformance] [--league]
#                         [--svc] [--svc-only] [--report] [build-dir]
#   --strict        non-zero exit on any simperf regression >15%
#   --simperf       run only the simperf gate, fatally (implies --strict)
#   --simperf-warn  with --strict: keep every other gate fatal but
#                   report simperf regressions as warnings only
#   --trace-smoke   emit + validate trace/metrics/flight JSON artifacts
#   --conformance   run the paper-fidelity conformance gate (fatal)
#   --league        run the co-evolution league acceptance gate (fatal)
#   --svc           run the sweep-service chaos gate (fatal)
#   --svc-only      run only the sweep-service chaos gate
#   --report        run the ledger sweep + regression sentry (fatal)
#   build-dir       CMake build directory (default: build)

set -euo pipefail

strict=0
simperf_only=0
simperf_warn=0
trace_smoke=0
conformance=0
league=0
svc=0
svc_only=0
report=0
build=build
for arg in "$@"; do
    case "$arg" in
      --strict) strict=1 ;;
      --simperf) simperf_only=1; strict=1 ;;
      --simperf-warn) simperf_warn=1 ;;
      --trace-smoke) trace_smoke=1 ;;
      --conformance) conformance=1 ;;
      --league) league=1 ;;
      --svc) svc=1 ;;
      --svc-only) svc=1; svc_only=1 ;;
      --report) report=1 ;;
      -h|--help)
        sed -n '2,73p' "$0" | sed 's/^# \{0,1\}//'
        exit 0
        ;;
      -*)
        echo "unknown option: $arg (see --help)" >&2
        exit 2
        ;;
      *) build=$arg ;;
    esac
done

cd "$(dirname "$0")/.."
repo_root=$PWD

if [ "$simperf_only" = 1 ]; then
    echo "== simperf-only: building bench_simperf =="
    cmake -B "$build" -S . >/dev/null
    cmake --build "$build" -j --target bench_simperf
elif [ "$svc_only" = 1 ]; then
    echo "== svc-only: building the sweep-service binaries =="
    cmake -B "$build" -S . >/dev/null
    cmake --build "$build" -j --target gpucc_sweepd gpucc_worker
else
    echo "== tier-1: configure + build + ctest =="
    cmake -B "$build" -S .
    cmake --build "$build" -j
    (cd "$build" && ctest --output-on-failure -j)
fi

if [ "$trace_smoke" = 1 ]; then
    echo
    echo "== trace-smoke: observability artifact validation =="
    if ! command -v python3 >/dev/null 2>&1; then
        echo "error: --trace-smoke needs python3 for JSON validation" >&2
        exit 1
    fi
    artdir="$build/observability"
    mkdir -p "$artdir"
    GPUCC_TRACE="kernel,warp,cache,link:$artdir/exfiltrate_trace.json" \
    GPUCC_FLIGHT="$artdir/exfiltrate_flight.json" \
    GPUCC_METRICS="$artdir/exfiltrate_metrics.json" \
        "$build/examples/exfiltrate_key" \
        > "$artdir/exfiltrate_stdout.txt"
    python3 - "$artdir/exfiltrate_trace.json" \
        "$artdir/exfiltrate_flight.json" \
        "$artdir/exfiltrate_metrics.json" <<'EOF'
import json
import sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "trace has no events"
cats = {e.get("cat") for e in events if e.get("ph") != "M"}
for want in ("kernel", "warp", "cache", "link"):
    assert want in cats, f"trace is missing the {want!r} category"
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "trace has no spans"
assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in spans)
names = {e["name"] for e in events if e.get("ph") == "M"}
assert {"process_name", "thread_name"} <= names, "missing metadata rows"
assert trace["otherData"]["shards"] >= 1

flight = json.load(open(sys.argv[2]))
assert flight["summary"]["symbols"] > 0, "flight recorder is empty"
assert len(flight["symbols"]) == flight["summary"]["symbols"]

metrics = json.load(open(sys.argv[3]))
assert metrics["metrics"].get("link.rounds", 0) > 0, \
    "metrics export is missing the ARQ link counters"
assert metrics["metrics"].get("cache.constL1.misses", 0) > 0
assert metrics["metrics"].get("session.segments", 0) > 0, \
    "metrics export is missing the session-layer counters"
assert metrics["metrics"].get("fault.evictions", 0) > 0, \
    "metrics export is missing the kernel-eviction counter"

print(f"  trace   OK: {len(events)} events, "
      f"categories {sorted(c for c in cats if c)}")
print(f"  flight  OK: {flight['summary']['symbols']} symbols, "
      f"{flight['summary']['errors']} decode errors")
print(f"  metrics OK: {len(metrics['metrics'])} instruments, "
      f"{metrics['metrics']['link.rounds']:.0f} link rounds")
EOF
    echo "trace-smoke OK: artifacts in $artdir"
fi

if [ "$conformance" = 1 ]; then
    echo
    echo "== conformance: paper-fidelity bands (gpucc_verify) =="
    artdir="$build/observability"
    mkdir -p "$artdir"
    "$build/src/gpucc_verify" \
        --report "$artdir/conformance_report.json"
    # Blind-synthesis timing artifact: the full no-datasheet discovery
    # pipeline per arch, staged next to the conformance report (the
    # synth_blind bands pin its results; this records its cost).
    "$build/bench/bench_synth" --json "$artdir/synth_bench.json" \
        > /dev/null
    echo "conformance OK: report in $artdir/conformance_report.json"
fi

if [ "$league" = 1 ]; then
    echo
    echo "== league: co-evolution acceptance (bands + smoke) =="
    if ! command -v python3 >/dev/null 2>&1; then
        echo "error: --league needs python3 for the JSON asserts" >&2
        exit 1
    fi
    artdir="$build/observability"
    mkdir -p "$artdir"
    # The committed bands pin the full acceptance cell per arch: agile
    # session vs reactive fuzz+waypart defender, zero residual errors,
    # exactly one failover, plus the ROC corners and league digest.
    "$build/src/gpucc_verify" --scenario league
    # Smoke cell: fuzzing alone must not cost the session a single bit.
    "$build/bench/bench_league" --smoke \
        --out "$artdir/league_smoke.json" \
        --json "$artdir/league_bench.json"
    python3 - "$artdir/league_smoke.json" <<'EOF'
import json
import sys

t = json.load(open(sys.argv[1]))
cells = t["cells"]
assert cells, "league smoke produced no cells"
for c in cells:
    assert c["defender"] == "reactive_fuzz_only", c
    assert c["complete"], f"smoke transfer failed: {c}"
    assert c["residual_bit_errors"] == 0, \
        f"residual errors under timer-fuzz-only defense: {c}"
print(f"  league OK: {len(cells)} smoke cells, zero residual errors, "
      f"digest {t['digest']:#018x}")
EOF
    echo "league OK: artifacts in $artdir"
fi

if [ "$svc" = 1 ]; then
    echo
    echo "== svc: sweep-service chaos gate (kill/stall/halt/resume) =="
    sweepd="$build/src/gpucc_sweepd"
    worker="$build/src/gpucc_worker"
    svcdir="$build/observability/svc"
    rm -rf "$svcdir"
    mkdir -p "$svcdir"

    # 1. Cold reference: the built-in soak spec (with the
    #    always-failing row) through the deterministic in-process
    #    engine. Every later report must byte-match this one.
    "$sweepd" --builtin --with-broken --in-process --rev svc-gate \
        --ledger "$svcdir/cold_ledger.jsonl" \
        --report "$svcdir/cold_report.json" \
        --stats "$svcdir/cold_stats.json"

    # 2. Chaos run over real worker processes: worker 0 killed on its
    #    second claim, worker 2 stalled past the lease timeout so its
    #    result comes back stale. Same canonical bytes required.
    "$sweepd" --builtin --with-broken --rev svc-gate \
        --workers 3 --worker-bin "$worker" \
        --socket "$svcdir/sweep.sock" \
        --lease-ms 400 --fault "w0:kill@2,w2:stall@1x900" \
        --spool "$svcdir/chaos_spool.jsonl" \
        --ledger "$svcdir/chaos_ledger.jsonl" \
        --report "$svcdir/chaos_report.json" \
        --stats "$svcdir/chaos_stats.json"
    cmp "$svcdir/cold_report.json" "$svcdir/chaos_report.json"
    echo "  chaos   OK: report byte-identical to the cold run"

    # 3. Coordinator crash + resume: halt after 5 persisted results
    #    (exit 3 by contract), then resume against the same ledger;
    #    the resumed report must still byte-match the cold run.
    set +e
    "$sweepd" --builtin --with-broken --in-process --rev svc-gate \
        --halt-after 5 \
        --ledger "$svcdir/resume_ledger.jsonl" \
        --stats "$svcdir/halt_stats.json"
    halt_status=$?
    set -e
    if [ "$halt_status" -ne 3 ]; then
        echo "error: --halt-after run exited $halt_status, wanted 3" >&2
        exit 1
    fi
    "$sweepd" --builtin --with-broken --in-process --rev svc-gate \
        --ledger "$svcdir/resume_ledger.jsonl" \
        --report "$svcdir/resume_report.json" \
        --stats "$svcdir/resume_stats.json"
    cmp "$svcdir/cold_report.json" "$svcdir/resume_report.json"
    echo "  resume  OK: halted run (exit 3) resumed to identical bytes"

    # 4. Dedup: re-running the unchanged spec against the completed
    #    ledger must append zero bytes.
    bytes_before=$(wc -c < "$svcdir/resume_ledger.jsonl")
    "$sweepd" --builtin --with-broken --in-process --rev svc-gate \
        --ledger "$svcdir/resume_ledger.jsonl" \
        --report "$svcdir/rerun_report.json" \
        --stats "$svcdir/rerun_stats.json"
    bytes_after=$(wc -c < "$svcdir/resume_ledger.jsonl")
    if [ "$bytes_before" -ne "$bytes_after" ]; then
        echo "error: unchanged-spec re-run appended" \
             "$((bytes_after - bytes_before)) bytes" >&2
        exit 1
    fi
    cmp "$svcdir/cold_report.json" "$svcdir/rerun_report.json"
    echo "  rerun   OK: unchanged spec appended zero ledger bytes"
    echo "svc OK: artifacts in $svcdir"
    if [ "$svc_only" = 1 ]; then
        echo
        echo "check.sh: all gates passed"
        exit 0
    fi
fi

if [ "$report" = 1 ]; then
    echo
    echo "== report: run ledger + regression sentry (gpucc_report) =="
    artdir="$build/observability"
    mkdir -p "$artdir/ledger"
    report_args=()
    # Fold the conformance band margins into the dashboard when the
    # --conformance gate (or a previous run) left a report behind.
    if [ -f "$artdir/conformance_report.json" ]; then
        report_args+=(--conformance "$artdir/conformance_report.json")
    fi
    "$build/src/gpucc_report" --sweep \
        --ledger "$artdir/ledger/run_ledger.jsonl" \
        --out-md "$artdir/report_dashboard.md" \
        --out-json "$artdir/report_dashboard.json" \
        --profile-json "$artdir/phase_profile.json" \
        "${report_args[@]}"
    echo "report OK: dashboard + ledger in $artdir"
fi

echo
echo "== simperf: regression check vs committed BENCH_simperf.json =="
if [ ! -x "$build/bench/bench_simperf" ]; then
    echo "warning: $build/bench/bench_simperf not built; skipping" >&2
    exit 0
fi

artdir="$build/observability"
mkdir -p "$artdir"
scratch="$artdir/simperf_current.json"
rm -f "$scratch"
# Seed the scratch file with the committed baseline so the fresh run
# reports speedups against the same reference.
if [ -f "$repo_root/BENCH_simperf.json" ]; then
    cp "$repo_root/BENCH_simperf.json" "$scratch"
else
    echo "notice: no committed BENCH_simperf.json baseline; running"
    echo "bench_simperf without a reference. Record one with:"
    echo "  $build/bench/bench_simperf   (writes BENCH_simperf.json)"
fi
# The fresh record lands in $artdir, which CI uploads as an artifact.
GPUCC_SIMPERF_JSON=$scratch \
    "$build/bench/bench_simperf" --benchmark_min_time=0.2

if [ ! -f "$repo_root/BENCH_simperf.json" ]; then
    echo
    echo "simperf SKIPPED: nothing to compare against (no committed" \
         "baseline)"
    echo
    echo "check.sh: all gates passed"
    exit 0
fi

if [ ! -x "$build/src/gpucc_report" ]; then
    echo "warning: $build/src/gpucc_report not built; skipping" \
         "comparison" >&2
    exit 0
fi

# gpucc_report owns the comparison (formerly an inline python heredoc
# here): same 0.85 ratio gate, same warn-vs-fatal policy.
simperf_args=()
if [ "$strict" = 0 ] || [ "$simperf_warn" = 1 ]; then
    simperf_args+=(--simperf-warn)
fi
set +e
"$build/src/gpucc_report" \
    --simperf "$repo_root/BENCH_simperf.json" "$scratch" \
    --out-json "$artdir/simperf_report.json" \
    "${simperf_args[@]}"
simperf_status=$?
set -e

if [ "$simperf_status" -ne 0 ]; then
    echo
    echo "check.sh: FAILED (--strict: simperf regression)" >&2
    echo "If this machine is simply slower, re-record with:" >&2
    echo "  $build/bench/bench_simperf  (updates 'current')" >&2
    exit 1
fi

echo
echo "check.sh: all gates passed"

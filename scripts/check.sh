#!/usr/bin/env bash
# Tier-1 verification plus a simulator-performance regression gate.
#
#  1. Configure, build, and run the full test suite (the ROADMAP.md
#     tier-1 line).
#  2. Run bench_simperf into a scratch JSON and compare its numbers
#     against the committed BENCH_simperf.json baseline; warn on any
#     metric more than 20% slower. Performance is machine-dependent, so
#     regressions WARN rather than fail the script.
#
# Usage: scripts/check.sh [build-dir]     (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
repo_root=$PWD
build=${1:-build}

echo "== tier-1: configure + build + ctest =="
cmake -B "$build" -S .
cmake --build "$build" -j
(cd "$build" && ctest --output-on-failure -j)

echo
echo "== simperf: regression check vs committed BENCH_simperf.json =="
if [ ! -x "$build/bench/bench_simperf" ]; then
    echo "warning: $build/bench/bench_simperf not built; skipping" >&2
    exit 0
fi

scratch=$(mktemp /tmp/gpucc_simperf.XXXXXX.json)
trap 'rm -f "$scratch"' EXIT
# Seed the scratch file with the committed baseline so the fresh run
# reports speedups against the same reference.
cp "$repo_root/BENCH_simperf.json" "$scratch" 2>/dev/null || true
GPUCC_SIMPERF_JSON=$scratch \
    "$build/bench/bench_simperf" --benchmark_min_time=0.2

if ! command -v python3 >/dev/null 2>&1; then
    echo "warning: python3 not found; skipping JSON comparison" >&2
    exit 0
fi

python3 - "$repo_root/BENCH_simperf.json" "$scratch" <<'EOF'
import json
import sys

committed = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))

reference = committed.get("current", {}).get("metrics", {})
if not reference:
    reference = committed.get("baseline", {}).get("metrics", {})
measured = fresh.get("current", {}).get("metrics", {})

regressions = []
for name, ref in sorted(reference.items()):
    cur = measured.get(name)
    ref_ips = ref.get("items_per_second", 0)
    if not cur or not ref_ips:
        continue
    ratio = cur["items_per_second"] / ref_ips
    flag = "  <-- REGRESSION (>20% slower)" if ratio < 0.8 else ""
    print(f"  {name:28s} {ratio:6.2f}x of committed record{flag}")
    if ratio < 0.8:
        regressions.append(name)

if regressions:
    print(f"\nwarning: {len(regressions)} benchmark(s) regressed >20% "
          f"vs BENCH_simperf.json: {', '.join(regressions)}")
    print("If this machine is simply slower, re-record with: "
          "build/bench/bench_simperf  (updates the 'current' section)")
else:
    print("\nsimperf OK: no metric more than 20% below the committed "
          "record")
EOF

echo
echo "check.sh: all gates passed"

/**
 * @file
 * Co-evolution league tests (Section 9 extension): the acceptance cell
 * — a channel-agile session completing cleanly against a reactive
 * defender that escalates to timer fuzzing + way partitioning
 * mid-transfer, via exactly one cross-resource failover — plus the
 * league's determinism contract (identical tables and digest at any
 * worker count) and the detector ROC corners the tournament scores.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "covert/league/league.h"
#include "sim/exec/sweep_runner.h"

namespace gpucc::covert::league
{
namespace
{

gpu::MitigationConfig
fuzzWaypartWall()
{
    gpu::MitigationConfig wall;
    wall.timerFuzzCycles = 256;
    wall.cacheWayPartitioning = true;
    return wall;
}

TEST(LeagueCell, AgileSessionBeatsTheReactiveDefender)
{
    CellResult c =
        runLeagueCell(gpu::keplerK40c(), agileAttacker(),
                      cappedReactiveDefense(),
                      sim::exec::deriveSeed(2017, 0));
    // The robustness claim, end to end: the defender saw the channel,
    // escalated to its top rung mid-transfer, and the session still
    // delivered every bit — through exactly one failover onto the
    // atomic units.
    EXPECT_TRUE(c.detected);
    EXPECT_GT(c.defAlarms, 0u);
    EXPECT_EQ(c.defPeakRung, 2); // fuzz256 + way partitioning
    EXPECT_TRUE(c.complete);
    EXPECT_EQ(c.residualBitErrors, 0u);
    EXPECT_EQ(c.failovers, 1u);
    EXPECT_EQ(c.finalResource, "atomic");
    EXPECT_GE(c.desyncs, 1u);
    EXPECT_GT(c.residualCapacityBps, 0.0);
}

TEST(LeagueCell, L1PinnedAttackerDiesWhereTheAgileOneSurvives)
{
    DefenderSpec wall = staticDefense("wall", fuzzWaypartWall());
    CellResult dead =
        runLeagueCell(gpu::keplerK40c(), l1PinnedAttacker(), wall, 5);
    EXPECT_FALSE(dead.complete);
    EXPECT_EQ(dead.failovers, 0u);
    EXPECT_EQ(dead.finalResource, "l1");

    CellResult alive =
        runLeagueCell(gpu::keplerK40c(), agileAttacker(), wall, 5);
    EXPECT_TRUE(alive.complete);
    EXPECT_EQ(alive.residualBitErrors, 0u);
    EXPECT_EQ(alive.failovers, 1u);
    EXPECT_EQ(alive.finalResource, "atomic");
}

TEST(LeagueCell, ScheduledDefenseStepsApplyMidTransfer)
{
    gpu::MitigationSchedule plan;
    plan.steps.push_back({200000, fuzzWaypartWall(), "wall up"});
    CellResult c =
        runLeagueCell(gpu::keplerK40c(), agileAttacker(),
                      scheduledDefense("wall_at_200k", plan), 11);
    EXPECT_EQ(c.defStepsApplied, 1u);
    EXPECT_TRUE(c.complete);
    EXPECT_EQ(c.residualBitErrors, 0u);
    EXPECT_EQ(c.finalResource, "atomic");
}

TEST(LeagueCell, DeterministicPerSeed)
{
    const std::uint64_t seed = sim::exec::deriveSeed(2017, 1);
    CellResult a = runLeagueCell(gpu::keplerK40c(), agileAttacker(),
                                 cappedReactiveDefense(), seed);
    CellResult b = runLeagueCell(gpu::keplerK40c(), agileAttacker(),
                                 cappedReactiveDefense(), seed);
    EXPECT_EQ(a.deviceDigest, b.deviceDigest);
    EXPECT_EQ(a.complete, b.complete);
    EXPECT_EQ(a.residualBitErrors, b.residualBitErrors);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.finalResource, b.finalResource);
    EXPECT_EQ(a.defSamples, b.defSamples);
    EXPECT_EQ(a.defAlarms, b.defAlarms);
    EXPECT_EQ(a.defEscalations, b.defEscalations);
    EXPECT_EQ(a.seconds, b.seconds);
}

TEST(League, DigestIsWorkerCountInvariant)
{
    LeagueConfig cfg;
    cfg.attackers = {agileAttacker()};
    cfg.defenders = {noDefense(), cappedReactiveDefense()};
    cfg.archs = {gpu::keplerK40c()};
    cfg.seedsPerCell = 2;
    cfg.roc = false;

    std::uint64_t reference = 0;
    for (unsigned threads : {1u, 2u, 8u}) {
        cfg.threads = threads;
        LeagueTable t = runLeague(cfg);
        ASSERT_EQ(t.cells.size(), 4u);
        EXPECT_EQ(t.digest, leagueDigest(t));
        if (threads == 1u)
            reference = t.digest;
        else
            EXPECT_EQ(t.digest, reference) << threads << " workers";
    }
}

TEST(League, RocSeparatesChannelsFromBenignWorkloads)
{
    LeagueConfig cfg;
    cfg.attackers = {l1PinnedAttacker()};
    cfg.defenders = {noDefense()};
    cfg.archs = {gpu::keplerK40c()};
    cfg.seedsPerCell = 1;
    LeagueTable t = runLeague(cfg);
    ASSERT_FALSE(t.roc.empty());
    for (const RocSample &s : t.roc)
        EXPECT_EQ(s.flagged, s.isAttack) << s.name;
    EXPECT_EQ(t.tpRate, 1.0);
    EXPECT_EQ(t.fpRate, 0.0);
}

TEST(League, JsonCarriesTheFullTable)
{
    LeagueConfig cfg;
    cfg.attackers = {l1PinnedAttacker()};
    cfg.defenders = {noDefense()};
    cfg.archs = {gpu::keplerK40c()};
    cfg.seedsPerCell = 1;
    cfg.roc = false;
    LeagueTable t = runLeague(cfg);

    std::ostringstream os;
    writeLeagueJson(t, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"residual_capacity_bps\""), std::string::npos);
    EXPECT_NE(json.find("\"final_resource\""), std::string::npos);
    EXPECT_NE(json.find("\"tp_rate\""), std::string::npos);
    EXPECT_NE(json.find("\"digest\""), std::string::npos);
    EXPECT_NE(json.find(std::to_string(t.digest)), std::string::npos);
}

} // namespace
} // namespace gpucc::covert::league

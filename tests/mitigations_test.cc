/**
 * @file
 * Tests for the Section 9 mitigations: each defense must (a) break the
 * channel class it targets and (b) leave unrelated machinery intact.
 * Also covers the subtle negative result: temporal partitioning alone
 * does NOT stop the state-based cache channel — the caches must also be
 * flushed between kernels.
 */

#include <gtest/gtest.h>

#include "covert/channels/l1_const_channel.h"
#include "covert/channels/sfu_channel.h"
#include "covert/parallel/sfu_parallel_channel.h"
#include "covert/sync/sync_channel.h"
#include "gpu/host.h"
#include "gpu/mitigations.h"
#include "gpu/warp_ctx.h"
#include "mem/set_assoc_cache.h"
#include "verify/digest.h"
#include "workloads/interference.h"

namespace gpucc::covert
{
namespace
{

BitVec
msg(std::size_t n, std::uint64_t seed = 31)
{
    Rng rng(seed);
    return randomBits(n, rng);
}

TEST(MitigationConfig, AnyDetectsEnabledDefenses)
{
    gpu::MitigationConfig m;
    EXPECT_FALSE(m.any());
    m.timerFuzzCycles = 8;
    EXPECT_TRUE(m.any());
    m = {};
    m.cacheWayPartitioning = true;
    EXPECT_TRUE(m.any());
}

TEST(WayPartitionedCache, PartitionsCannotEvictEachOther)
{
    mem::CacheGeometry geom{2048, 64, 4};
    mem::SetAssocCache c("c", geom);
    // Domain A allocates into ways [0,2), domain B into [2,4).
    for (int i = 0; i < 2; ++i)
        c.accessInWays(Addr(i) * 512, 0, 2);
    // Domain B hammers the same set with many lines.
    for (int i = 0; i < 8; ++i)
        c.accessInWays(Addr(1 << 20) + Addr(i) * 512, 2, 4);
    // Domain A's lines survived.
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probe(512));
}

TEST(WayPartitionedCache, HitsMayMatchAnyWay)
{
    mem::CacheGeometry geom{2048, 64, 4};
    mem::SetAssocCache c("c", geom);
    c.accessInWays(0, 0, 2);
    // A request from the other partition still hits the cached line.
    EXPECT_TRUE(c.accessInWays(0, 2, 4).hit);
}

TEST(Mitigation, WayPartitioningBreaksTheL1Channel)
{
    LaunchPerBitConfig cfg;
    cfg.mitigations.cacheWayPartitioning = true;
    L1ConstChannel ch(gpu::keplerK40c(), cfg);
    auto r = ch.transmit(msg(64));
    // The trojan can no longer evict the spy's lines: the two symbol
    // populations collapse and decoding degrades to coin flipping.
    EXPECT_GT(r.report.errorRate(), 0.25);
}

TEST(Mitigation, WayPartitioningBreaksTheSyncChannel)
{
    SyncChannelConfig cfg;
    cfg.mitigations.cacheWayPartitioning = true;
    SyncL1Channel ch(gpu::keplerK40c(), cfg);
    auto r = ch.transmit(msg(64));
    EXPECT_GT(r.report.errorRate(), 0.25);
}

TEST(Mitigation, WayPartitioningLeavesSfuChannelAlone)
{
    // Orthogonality: the cache defense does nothing to the FU channel.
    LaunchPerBitConfig cfg;
    cfg.iterations = 0; // per-arch SFU default
    cfg.mitigations.cacheWayPartitioning = true;
    SfuChannel ch(gpu::keplerK40c(), cfg);
    auto r = ch.transmit(msg(32));
    EXPECT_TRUE(r.report.errorFree());
}

TEST(Mitigation, SchedulerRandomizationDegradesParallelSfuLanes)
{
    SfuParallelConfig cfg;
    cfg.mitigations.randomizeWarpSchedulers = true;
    SfuParallelChannel ch(gpu::keplerK40c(), cfg);
    auto r = ch.transmit(msg(64));
    // Bits no longer map to schedulers; substantial corruption.
    EXPECT_GT(r.report.errorRate(), 0.10);
}

TEST(Mitigation, SchedulerRandomizationKeepsWarpsSchedulable)
{
    // Sanity: kernels still run correctly under random assignment.
    gpu::MitigationConfig m;
    m.randomizeWarpSchedulers = true;
    gpu::Device dev(gpu::keplerK40c());
    dev.setMitigations(m);
    gpu::HostContext host(dev);
    gpu::KernelLaunch k;
    k.name = "rand";
    k.config.gridBlocks = 2;
    k.config.threadsPerBlock = 8 * warpSize;
    k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        co_await ctx.op(gpu::OpClass::FAdd);
        ctx.out(ctx.schedulerId());
        co_return;
    };
    auto &s = dev.createStream();
    auto &inst = host.launch(s, k);
    host.sync(inst);
    for (unsigned w = 0; w < 16; ++w)
        EXPECT_LT(inst.out(w).at(0), 4u);
}

TEST(Mitigation, TimerFuzzSweepDegradesTheL1Channel)
{
    // BER should grow with the fuzz amplitude. 256 bits keeps the
    // estimate stable; the bound reflects the stateless splitmix64
    // noise stream (~0.08 at amplitude 256 on this channel).
    auto ber = [&](Cycle fuzz) {
        LaunchPerBitConfig cfg;
        cfg.mitigations.timerFuzzCycles = fuzz;
        L1ConstChannel ch(gpu::keplerK40c(), cfg);
        return ch.transmit(msg(256)).report.errorRate();
    };
    EXPECT_DOUBLE_EQ(ber(0), 0.0);
    double high = ber(256);
    EXPECT_GT(high, 0.05);
    EXPECT_GE(high + 0.05, ber(64)); // roughly monotone
}

TEST(Mitigation, AveragingChannelsResistMildTimerFuzz)
{
    // The SFU channel averages hundreds of samples per bit: mild fuzz
    // does not break it (the paper's Section 9 caveat that fuzzing must
    // be aggressive enough to matter).
    LaunchPerBitConfig cfg;
    cfg.iterations = 0; // per-arch SFU default
    cfg.mitigations.timerFuzzCycles = 16;
    SfuChannel ch(gpu::keplerK40c(), cfg);
    auto r = ch.transmit(msg(32));
    EXPECT_TRUE(r.report.errorFree());
}

TEST(Mitigation, TemporalPartitioningSerializesKernels)
{
    gpu::MitigationConfig m;
    m.temporalPartitioning = true;
    gpu::Device dev(gpu::keplerK40c());
    dev.setMitigations(m);
    gpu::HostContext host(dev);
    host.setJitterUs(0.0);
    auto mkKernel = [](const char *name) {
        gpu::KernelLaunch k;
        k.name = name;
        k.config.gridBlocks = 2;
        k.config.threadsPerBlock = 64;
        k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
            for (int i = 0; i < 300; ++i)
                co_await ctx.op(gpu::OpClass::Sinf);
            co_return;
        };
        return k;
    };
    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    auto &k1 = host.launch(s1, mkKernel("a"));
    auto &k2 = host.launch(s2, mkKernel("b"));
    host.sync(k2);
    host.sync(k1);
    // No overlap: the later kernel started after the earlier one ended.
    EXPECT_GE(k2.startTick(), k1.endTick());
}

TEST(Mitigation, TemporalPartitioningKillsContentionChannels)
{
    // No concurrency -> no SFU contention -> the channel collapses.
    LaunchPerBitConfig cfg;
    cfg.iterations = 0; // per-arch SFU default
    cfg.mitigations.temporalPartitioning = true;
    SfuChannel ch(gpu::keplerK40c(), cfg);
    auto r = ch.transmit(msg(48));
    EXPECT_GT(r.report.errorRate(), 0.2);
}

TEST(Mitigation, TemporalPartitioningAloneDoesNotStopStateChannels)
{
    // The subtle negative result: cache evictions are durable, so the
    // prime+probe channel decodes from *state*, not contention — the
    // kernels need not overlap at all.
    LaunchPerBitConfig cfg;
    cfg.mitigations.temporalPartitioning = true;
    L1ConstChannel ch(gpu::keplerK40c(), cfg);
    auto r = ch.transmit(msg(48));
    EXPECT_TRUE(r.report.errorFree());
}

TEST(Mitigation, TemporalPartitioningPlusFlushStopsStateChannels)
{
    LaunchPerBitConfig cfg;
    cfg.mitigations.temporalPartitioning = true;
    cfg.mitigations.flushCachesBetweenKernels = true;
    L1ConstChannel ch(gpu::keplerK40c(), cfg);
    auto r = ch.transmit(msg(48));
    EXPECT_GT(r.report.errorRate(), 0.25);
}

TEST(Mitigation, DefensesCompose)
{
    // Everything on: every channel class should be dead.
    gpu::MitigationConfig all;
    all.cacheWayPartitioning = true;
    all.randomizeWarpSchedulers = true;
    all.timerFuzzCycles = 128;
    all.temporalPartitioning = true;
    all.flushCachesBetweenKernels = true;

    LaunchPerBitConfig cfg;
    cfg.mitigations = all;
    {
        L1ConstChannel ch(gpu::keplerK40c(), cfg);
        EXPECT_GT(ch.transmit(msg(48)).report.errorRate(), 0.2);
    }
    {
        LaunchPerBitConfig sfuCfg = cfg;
        sfuCfg.iterations = 0; // per-arch SFU default
        SfuChannel ch(gpu::keplerK40c(), sfuCfg);
        EXPECT_GT(ch.transmit(msg(48)).report.errorRate(), 0.2);
    }
}

TEST(Mitigation, TimerFuzzReplaysBitIdentically)
{
    // The fuzz stream is a pure hash of (seed, tick, sm, warp): two
    // runs with the same fuzz seed must land on identical device
    // digests and identical received bits, and a different fuzz seed
    // must select a genuinely different noise stream.
    auto run = [](std::uint64_t fuzzSeed) {
        L1ConstChannel ch(gpu::keplerK40c());
        gpu::MitigationConfig m;
        m.timerFuzzCycles = 256;
        m.timerFuzzSeed = fuzzSeed;
        ch.harness().device().setMitigations(m);
        ChannelResult r = ch.transmit(msg(48, 9));
        ch.harness().device().runUntilIdle();
        return std::pair(verify::deviceDigest(ch.harness().device()),
                         r.received);
    };
    auto a = run(1);
    auto b = run(1);
    auto c = run(2);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    EXPECT_NE(a.first, c.first);
}

TEST(MitigationScheduler, StepsFireAtTheirDeviceTimes)
{
    gpu::Device dev(gpu::keplerK40c());
    gpu::HostContext host(dev);
    gpu::MitigationConfig fuzz;
    fuzz.timerFuzzCycles = 64;
    gpu::MitigationSchedule plan;
    plan.steps.push_back({1000, fuzz, "fuzz on"});
    plan.steps.push_back({3000, gpu::MitigationConfig{}, "all off"});
    gpu::MitigationScheduler sched(dev, plan);
    sched.arm();
    EXPECT_EQ(sched.applied(), 0u);

    workloads::WorkloadSpec spec;
    spec.iterations = 4000; // comfortably outlasts the last step
    host.launch(dev.createStream(), workloads::makeComputeWorkload(spec));
    host.syncAll();
    EXPECT_EQ(sched.applied(), 2u);
    EXPECT_FALSE(dev.mitigations().any());
}

TEST(ReactiveDefender, WalksTheLadderUpAndDown)
{
    // A sync channel hammering the constant cache must drive the
    // defender up its ladder; benign compute afterwards must walk it
    // back down.
    SyncL1Channel ch(gpu::keplerK40c());
    gpu::Device &dev = ch.harness().device();
    gpu::ReactiveDefenderConfig rc;
    rc.samplePeriodCycles = 30000;
    rc.minCrossEvictions = 12;
    rc.alarmsToEscalate = 2;
    rc.quietToDeescalate = 4;
    gpu::ReactiveDefender rd(dev, rc);
    rd.arm();

    ch.transmit(msg(96)); // outcome irrelevant; the traffic matters
    EXPECT_GT(rd.stats().samples, 0u);
    EXPECT_GT(rd.stats().alarms, 0u);
    EXPECT_GT(rd.stats().escalations, 0u);
    EXPECT_GE(rd.stats().peakRung, 0);

    workloads::WorkloadSpec spec;
    spec.iterations = 20000;
    ch.harness().trojanHost().launch(dev.createStream(),
                                     workloads::makeComputeWorkload(spec));
    ch.harness().trojanHost().syncAll();
    rd.disarm();
    EXPECT_GT(rd.stats().deescalations, 0u);
    EXPECT_LT(rd.stats().rung, rd.stats().peakRung);
}

} // namespace
} // namespace gpucc::covert

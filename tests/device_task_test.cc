/**
 * @file
 * Tests for nested device coroutines (DeviceTask) and their interaction
 * with the warp suspend/resume machinery.
 */

#include <gtest/gtest.h>

#include "gpu/device.h"
#include "gpu/device_task.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"

namespace gpucc::gpu
{
namespace
{

DeviceTask<std::uint64_t>
twoOps(WarpCtx &ctx)
{
    std::uint64_t a = co_await ctx.op(OpClass::FAdd);
    std::uint64_t b = co_await ctx.op(OpClass::FMul);
    co_return a + b;
}

DeviceTask<std::uint64_t>
nestedTwice(WarpCtx &ctx)
{
    std::uint64_t x = co_await twoOps(ctx);
    std::uint64_t y = co_await twoOps(ctx);
    co_return x + y;
}

DeviceTask<void>
justSleep(WarpCtx &ctx, Cycle c)
{
    co_await ctx.sleep(c);
    co_return;
}

KernelLaunch
kernelWith(std::function<WarpProgram(WarpCtx &)> body)
{
    KernelLaunch k;
    k.name = "task-test";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 32;
    k.body = std::move(body);
    return k;
}

TEST(DeviceTask, NestedTaskReturnsValueAndAdvancesTime)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    std::uint64_t result = 0;
    std::uint64_t t0 = 0, t1 = 0;
    auto k = kernelWith([&](WarpCtx &ctx) -> WarpProgram {
        t0 = co_await ctx.clock();
        result = co_await twoOps(ctx);
        t1 = co_await ctx.clock();
        co_return;
    });
    auto &s = host.createStream();
    host.sync(host.launch(s, k));
    EXPECT_GT(result, 0u);
    EXPECT_GT(t1, t0);
}

TEST(DeviceTask, TwoLevelsOfNestingComplete)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    std::uint64_t result = 0;
    auto k = kernelWith([&](WarpCtx &ctx) -> WarpProgram {
        result = co_await nestedTwice(ctx);
        co_return;
    });
    auto &s = host.createStream();
    host.sync(host.launch(s, k));
    // Four ops, each of a few cycles.
    EXPECT_GE(result, 4u);
}

TEST(DeviceTask, VoidTaskCompletes)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    std::uint64_t before = 0, after = 0;
    auto k = kernelWith([&](WarpCtx &ctx) -> WarpProgram {
        before = co_await ctx.clock();
        co_await justSleep(ctx, 500);
        after = co_await ctx.clock();
        co_return;
    });
    auto &s = host.createStream();
    host.sync(host.launch(s, k));
    EXPECT_GE(after - before, 500u);
}

TEST(DeviceTask, ManyWarpsRunNestedTasksConcurrently)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    KernelLaunch k;
    k.name = "many";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 8 * warpSize;
    k.body = [](WarpCtx &ctx) -> WarpProgram {
        std::uint64_t v = co_await nestedTwice(ctx);
        ctx.out(v);
        co_return;
    };
    auto &s = host.createStream();
    auto &inst = host.launch(s, k);
    host.sync(inst);
    for (unsigned w = 0; w < 8; ++w) {
        ASSERT_EQ(inst.out(w).size(), 1u);
        EXPECT_GT(inst.out(w)[0], 0u);
    }
}

TEST(DeviceTask, LoopOfTasksDoesNotLeak)
{
    // Each awaited DeviceTask's frame is destroyed at the end of the
    // full expression; a long loop must therefore complete fine.
    Device dev(keplerK40c());
    HostContext host(dev);
    std::uint64_t total = 0;
    auto k = kernelWith([&](WarpCtx &ctx) -> WarpProgram {
        for (int i = 0; i < 500; ++i)
            total += co_await twoOps(ctx);
        co_return;
    });
    auto &s = host.createStream();
    host.sync(host.launch(s, k));
    EXPECT_GT(total, 1000u);
}

TEST(DeviceTask, ConstLoadSeqIsATaskAndSumsLatencies)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    std::uint64_t total = 0;
    std::vector<Addr> addrs{0, 512, 1024, 1536};
    auto k = kernelWith([&](WarpCtx &ctx) -> WarpProgram {
        total = co_await ctx.constLoadSeq(addrs);
        co_return;
    });
    auto &s = host.createStream();
    host.sync(host.launch(s, k));
    // Four cold misses through the whole hierarchy.
    auto memLat = keplerK40c().constMem.memCycles;
    EXPECT_GE(total, 4u * memLat);
}

TEST(DeviceTask, BarrierInsideTaskWorks)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    int reached = 0;
    KernelLaunch k;
    k.name = "barrier-task";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 4 * warpSize;
    k.body = [&reached](WarpCtx &ctx) -> WarpProgram {
        co_await ctx.op(OpClass::FAdd);
        co_await ctx.syncthreads();
        ++reached;
        co_return;
    };
    auto &s = host.createStream();
    host.sync(host.launch(s, k));
    EXPECT_EQ(reached, 4);
}

} // namespace
} // namespace gpucc::gpu

/**
 * @file
 * Tests for the full-duplex covert link: both directions must run
 * concurrently and independently on their disjoint set groups.
 */

#include <gtest/gtest.h>

#include "covert/sync/duplex_channel.h"
#include "covert/sync/sync_channel.h"

namespace gpucc::covert
{
namespace
{

using gpu::ArchParams;

BitVec
msg(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    return randomBits(n, rng);
}

class DuplexTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(DuplexTest, BothDirectionsErrorFree)
{
    DuplexSyncChannel link(GetParam());
    auto r = link.exchange(msg(96, 1), msg(96, 2));
    EXPECT_TRUE(r.aToB.report.errorFree()) << GetParam().name;
    EXPECT_TRUE(r.bToA.report.errorFree()) << GetParam().name;
}

TEST_P(DuplexTest, DuplexingNearlyDoublesThroughput)
{
    const ArchParams &arch = GetParam();
    DuplexSyncChannel link(arch);
    auto r = link.exchange(msg(128, 3), msg(128, 4));
    SyncL1Channel single(arch);
    double oneWay = single.transmit(msg(128, 3)).bandwidthBps;
    EXPECT_GT(r.aggregateBps, 1.5 * oneWay) << arch.name;
}

INSTANTIATE_TEST_SUITE_P(AllGpus, DuplexTest,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(Duplex, AsymmetricPayloadLengths)
{
    DuplexSyncChannel link(gpu::keplerK40c());
    auto r = link.exchange(msg(160, 5), msg(24, 6));
    EXPECT_TRUE(r.aToB.report.errorFree());
    EXPECT_TRUE(r.bToA.report.errorFree());
    EXPECT_EQ(r.aToB.received.size(), 160u);
    EXPECT_EQ(r.bToA.received.size(), 24u);
}

TEST(Duplex, TextConversationRoundTrips)
{
    DuplexSyncChannel link(gpu::keplerK40c());
    std::string req = "who holds the key?";
    std::string rsp = "ask the constant cache";
    auto r = link.exchange(textToBits(req), textToBits(rsp));
    EXPECT_EQ(bitsToText(r.aToB.received), req);
    EXPECT_EQ(bitsToText(r.bToA.received), rsp);
}

TEST(Duplex, DirectionsActuallyOverlapInTime)
{
    // True duplexing: the two kernels run once and both directions'
    // bits flow inside the same window (aggregate > either direction).
    DuplexSyncChannel link(gpu::keplerK40c());
    auto r = link.exchange(msg(128, 7), msg(128, 8));
    EXPECT_GT(r.aggregateBps, r.aToB.bandwidthBps);
    EXPECT_GT(r.aggregateBps, r.bToA.bandwidthBps);
}

TEST_P(DuplexTest, MultiBitDataSetsErrorFreeAndFaster)
{
    // Two data sets per direction: same payload, half the rounds, and
    // still error-free on every architecture.
    const ArchParams &arch = GetParam();
    DuplexSyncChannel one(arch);
    auto r1 = one.exchange(msg(96, 11), msg(96, 12));
    DuplexSyncChannel two(arch);
    two.setDataSetsPerDirection(2);
    ASSERT_EQ(two.dataSetsPerDirection(), 2u);
    auto r2 = two.exchange(msg(96, 11), msg(96, 12));
    EXPECT_TRUE(r2.aToB.report.errorFree()) << arch.name;
    EXPECT_TRUE(r2.bToA.report.errorFree()) << arch.name;
    EXPECT_GT(r2.aggregateBps, r1.aggregateBps) << arch.name;
}

TEST(Duplex, TimingOverrideKeepsArchDefaultsForUnsetFields)
{
    const ArchParams arch = gpu::keplerK40c();
    DuplexSyncChannel link(arch);
    ProtocolTiming base = ProtocolTiming::forArch(arch);

    ProtocolTiming t; // all-zero = "unset"
    t.dataThresholdCycles = 77.0;
    link.setTiming(t);
    EXPECT_DOUBLE_EQ(link.timing().dataThresholdCycles, 77.0);
    EXPECT_DOUBLE_EQ(link.timing().missThresholdCycles,
                     base.missThresholdCycles);
    EXPECT_EQ(link.timing().settleCycles, base.settleCycles);
    EXPECT_EQ(link.timing().setStaggerCycles, base.setStaggerCycles);
}

TEST(Duplex, WayPartitioningKillsBothDirections)
{
    DuplexConfig cfg;
    cfg.mitigations.cacheWayPartitioning = true;
    DuplexSyncChannel link(gpu::keplerK40c(), cfg);
    auto r = link.exchange(msg(64, 9), msg(64, 10));
    EXPECT_GT(r.aToB.report.errorRate(), 0.25);
    EXPECT_GT(r.bToA.report.errorRate(), 0.25);
}

} // namespace
} // namespace gpucc::covert

/**
 * @file
 * Tests for the metrics registry (common/metrics): instrument
 * registration semantics, histogram percentiles, interval-snapshot
 * monotonicity and self-naming rows, the stable JSON export, and the
 * contract that collectStats() is a pure view over the same registry.
 */

#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/metrics/json_writer.h"
#include "common/metrics/metrics.h"
#include "gpu/device_stats.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"
#include "verify/json.h"

namespace gpucc::metrics
{
namespace
{

TEST(Metrics, CounterRegistrationIsIdempotent)
{
    Registry reg;
    Counter &a = reg.counter("x");
    a.inc(3);
    Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_TRUE(reg.contains("x"));
    EXPECT_FALSE(reg.contains("y"));
}

TEST(Metrics, GaugeReRegistrationReplacesTheCallback)
{
    Registry reg;
    reg.gauge("g", [] { return 1.0; });
    EXPECT_DOUBLE_EQ(reg.value("g"), 1.0);
    reg.gauge("g", [] { return 2.0; });
    EXPECT_DOUBLE_EQ(reg.value("g"), 2.0);
}

TEST(Metrics, UnknownNamesReadAsZero)
{
    Registry reg;
    EXPECT_DOUBLE_EQ(reg.value("no.such.metric"), 0.0);
    EXPECT_DOUBLE_EQ(Snapshot{}.get("nope"), 0.0);
}

TEST(Metrics, HistogramPercentilesAreExact)
{
    Registry reg;
    Histogram &h = reg.histogram("lat");
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(95.0), 95.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
    // Derived metrics readable through the registry.
    EXPECT_DOUBLE_EQ(reg.value("lat"), 100.0);
    EXPECT_DOUBLE_EQ(reg.value("lat.p95"), 95.0);
    EXPECT_DOUBLE_EQ(reg.value("lat.mean"), 50.5);
}

TEST(Metrics, SnapshotsAreMonotonicAndSelfNaming)
{
    Registry reg;
    Counter &c = reg.counter("work");
    c.inc(5);
    reg.snapshot(100);

    // An instrument registered mid-run must not misalign earlier rows.
    reg.counter("late").inc(7);
    c.inc(5);
    reg.snapshot(200);

    const auto &series = reg.series();
    ASSERT_EQ(series.size(), 2u);
    EXPECT_LT(series[0].tick, series[1].tick);
    EXPECT_DOUBLE_EQ(series[0].get("work"), 5.0);
    EXPECT_DOUBLE_EQ(series[0].get("late"), 0.0); // absent then
    EXPECT_DOUBLE_EQ(series[1].get("work"), 10.0);
    EXPECT_DOUBLE_EQ(series[1].get("late"), 7.0);
    // Counters are monotone, so sampled values never decrease.
    EXPECT_GE(series[1].get("work"), series[0].get("work"));
}

TEST(Metrics, JsonExportIsStableAndComplete)
{
    Registry reg;
    reg.counter("b.count").inc(2);
    reg.gauge("a.gauge", [] { return 1.5; });
    reg.histogram("c.hist").add(4.0);
    reg.snapshot(64);

    std::string once = reg.toJson();
    std::string twice = reg.toJson();
    EXPECT_EQ(once, twice) << "export must be deterministic";
    EXPECT_NE(once.find("\"a.gauge\""), std::string::npos);
    EXPECT_NE(once.find("\"b.count\""), std::string::npos);
    EXPECT_NE(once.find("\"c.hist.p95\""), std::string::npos);
    EXPECT_NE(once.find("\"snapshots\""), std::string::npos);
    // Sorted-name ordering: a.gauge before b.count before c.hist.
    EXPECT_LT(once.find("\"a.gauge\""), once.find("\"b.count\""));
    EXPECT_LT(once.find("\"b.count\""), once.find("\"c.hist\""));
}

TEST(Metrics, HistogramJsonRoundTripIsExact)
{
    Registry reg;
    Histogram &h = reg.histogram("lat");
    // Samples with non-terminating binary fractions, so this fails if
    // the export rounds anywhere short of full double precision: the
    // ledger and the dashboard both re-parse these numbers.
    for (int i = 0; i < 257; ++i)
        h.add(0.1 + static_cast<double>(i) * 0.3);

    verify::JsonParseResult parsed = verify::parseJson(reg.toJson());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const verify::JsonValue &m = parsed.value.get("metrics");
    ASSERT_TRUE(m.isObject());
    ASSERT_TRUE(m.has("lat.p50"));
    ASSERT_TRUE(m.has("lat.p95"));
    ASSERT_TRUE(m.has("lat.max"));
    // Bit-exact equality, not NEAR: %.17g round-trips IEEE doubles.
    EXPECT_EQ(m.get("lat.p50").number, h.percentile(50.0));
    EXPECT_EQ(m.get("lat.p95").number, h.percentile(95.0));
    EXPECT_EQ(m.get("lat.max").number, h.max());
    EXPECT_EQ(m.get("lat.mean").number, h.mean());
    EXPECT_EQ(m.get("lat").number, static_cast<double>(h.count()));
}

TEST(JsonWriter, EscapingAndNumbers)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    EXPECT_EQ(JsonWriter::number(3.0), "3");
    EXPECT_EQ(JsonWriter::number(0.5), "0.5");
    // JSON cannot carry non-finite values; they degrade to 0.
    EXPECT_EQ(JsonWriter::number(std::numeric_limits<double>::infinity()),
              "0");

    std::ostringstream os;
    JsonWriter w(os, false);
    w.beginObject();
    w.field("k", std::string("v"));
    w.beginArray("a");
    w.value(std::uint64_t{1});
    w.value(2.5);
    w.endArray();
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(os.str(), "{\"k\":\"v\",\"a\":[1,2.5]}");
}

TEST(Metrics, DeviceSamplerProducesIntervalSnapshots)
{
    gpu::Device dev(gpu::keplerK40c());
    gpu::HostContext host(dev);
    host.setJitterUs(0.0);
    dev.sampleMetricsEvery(500);

    gpu::KernelLaunch k;
    k.name = "sampled";
    k.config.gridBlocks = 2;
    k.config.threadsPerBlock = 64;
    k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        for (int i = 0; i < 200; ++i)
            co_await ctx.op(gpu::OpClass::FAdd);
        co_return;
    };
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    // The self-rescheduling sampler must not keep the queue alive: the
    // sync above returning proves the run terminated.

    const auto &series = dev.metricsRegistry().series();
    ASSERT_GE(series.size(), 2u) << "expected multiple interval samples";
    for (std::size_t i = 1; i < series.size(); ++i) {
        EXPECT_GT(series[i].tick, series[i - 1].tick);
        EXPECT_GE(series[i].get("sim.events.executed"),
                  series[i - 1].get("sim.events.executed"));
        EXPECT_GE(series[i].get("fu.sp.requests"),
                  series[i - 1].get("fu.sp.requests"));
    }
    EXPECT_GT(series.back().get("sim.events.executed"), 0.0);
}

TEST(Metrics, CollectStatsIsAViewOverTheRegistry)
{
    gpu::Device dev(gpu::keplerK40c());
    gpu::HostContext host(dev);
    host.setJitterUs(0.0);
    gpu::KernelLaunch k;
    k.name = "view";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 2 * warpSize;
    k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        for (int i = 0; i < 50; ++i)
            co_await ctx.op(gpu::OpClass::Sinf);
        co_return;
    };
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));

    auto r = gpu::collectStats(dev);
    const auto &reg = dev.metricsRegistry();
    EXPECT_EQ(static_cast<double>(r.eventsExecuted),
              reg.value("sim.events.executed"));
    EXPECT_EQ(static_cast<double>(r.kernelsCompleted),
              reg.value("kernels.completed"));
    for (const auto &p : r.ports) {
        if (p.name == "SFU issue") {
            EXPECT_EQ(static_cast<double>(p.requests),
                      reg.value("fu.sfu.requests"));
            EXPECT_EQ(p.requests, 2u * 50u);
        }
    }
    EXPECT_EQ(static_cast<double>(r.caches[0].hits),
              reg.value("cache.constL1.hits"));
}

} // namespace
} // namespace gpucc::metrics

/**
 * @file
 * Unit tests for the verification subsystem: the StateDigest hash
 * contract, the JSON reader, band-file loading and shape validation,
 * device digests (determinism, divergence, checkpointing), and the
 * conformance runner's contract-strict plumbing on a fast scenario.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/log.h"
#include "gpu/device.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"
#include "verify/band.h"
#include "verify/conformance_runner.h"
#include "verify/digest.h"
#include "verify/json.h"
#include "verify/program_gen.h"
#include "verify/scenarios.h"

namespace gpucc::verify
{
namespace
{

// ---- StateDigest ----------------------------------------------------

TEST(StateDigest, IsOrderAndPositionSensitive)
{
    StateDigest a, b;
    a.u64(1);
    a.u64(2);
    b.u64(2);
    b.u64(1);
    EXPECT_NE(a.value(), b.value()) << "order must matter";

    StateDigest c, d;
    c.u64(0);
    d.u64(0);
    d.u64(0);
    EXPECT_NE(c.value(), d.value()) << "length must matter";
}

TEST(StateDigest, StringFramingPreventsConcatenationCollisions)
{
    StateDigest a, b;
    a.str("ab");
    a.str("c");
    b.str("a");
    b.str("bc");
    EXPECT_NE(a.value(), b.value());
}

TEST(StateDigest, DoubleCanonicalizesNegativeZero)
{
    StateDigest a, b;
    a.f64(0.0);
    b.f64(-0.0);
    EXPECT_EQ(a.value(), b.value());
}

TEST(StateDigest, KeyedAndDeterministic)
{
    StateDigest a(7), b(7), c(8);
    a.u64(42);
    b.u64(42);
    c.u64(42);
    EXPECT_EQ(a.value(), b.value());
    EXPECT_NE(a.value(), c.value());
}

TEST(StateDigest, FoldCombinesCheckpoints)
{
    StateDigest a, inner;
    inner.u64(3);
    a.fold(inner);
    StateDigest b;
    b.u64(inner.value());
    EXPECT_EQ(a.value(), b.value());
}

// ---- JSON reader ----------------------------------------------------

TEST(Json, ParsesTheBandFileShape)
{
    auto r = parseJson(R"({"scenario":"s","archs":{"Kepler":[
        {"metric":"m","lo":-1.5,"hi":2e3,"ref":"x \" y"}]},
        "extra":[true,false,null,7]})");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.stringOr("scenario", ""), "s");
    const JsonValue &band =
        r.value.get("archs").get("Kepler").items.at(0);
    EXPECT_DOUBLE_EQ(band.numberOr("lo", 0), -1.5);
    EXPECT_DOUBLE_EQ(band.numberOr("hi", 0), 2000.0);
    EXPECT_EQ(band.stringOr("ref", ""), "x \" y");
    const JsonValue &extra = r.value.get("extra");
    ASSERT_EQ(extra.items.size(), 4u);
    EXPECT_TRUE(extra.items[0].boolean);
    EXPECT_TRUE(extra.items[2].isNull());
    EXPECT_DOUBLE_EQ(extra.items[3].number, 7.0);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_FALSE(parseJson("").ok);
    EXPECT_FALSE(parseJson("{").ok);
    EXPECT_FALSE(parseJson("{}extra").ok);
    EXPECT_FALSE(parseJson("{\"a\":}").ok);
    EXPECT_FALSE(parseJson("[1,]").ok);
    EXPECT_FALSE(parseJson("nul").ok);
    EXPECT_FALSE(parseJson("\"unterminated").ok);
}

TEST(Json, MissingMembersFallBack)
{
    auto r = parseJson("{\"a\":1}");
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.value.has("b"));
    EXPECT_DOUBLE_EQ(r.value.numberOr("b", 9.0), 9.0);
    EXPECT_EQ(r.value.stringOr("b", "dflt"), "dflt");
}

// ---- Band loading ---------------------------------------------------

/** RAII scratch directory for band-file tests. */
struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        static int counter = 0;
        path = std::filesystem::temp_directory_path() /
               ("gpucc_verify_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    std::string
    write(const std::string &name, const std::string &text) const
    {
        std::ofstream os(path / name);
        os << text;
        return (path / name).string();
    }
};

TEST(Band, LoadsAndMergesAllWithArchBands)
{
    TempDir tmp;
    std::string p = tmp.write("b.json", R"({
        "scenario":"table1_resources","paperRef":"T1","archs":{
          "all":[{"metric":"sms","lo":1,"hi":99}],
          "Kepler":[{"metric":"sp","lo":192,"hi":192,"ref":"K40c"}]}})");
    auto r = loadBandFile(p);
    ASSERT_TRUE(r.ok()) << r.errors.front();
    ASSERT_EQ(r.files.size(), 1u);
    auto kepler = r.files[0].bandsFor("Kepler");
    ASSERT_EQ(kepler.size(), 2u) << "'all' bands must merge in";
    EXPECT_EQ(kepler[0].metric, "sms");
    EXPECT_EQ(kepler[1].metric, "sp");
    EXPECT_TRUE(kepler[1].contains(192.0));
    EXPECT_FALSE(kepler[1].contains(191.0));
    auto fermi = r.files[0].bandsFor("Fermi");
    ASSERT_EQ(fermi.size(), 1u);
}

TEST(Band, RejectsMalformedShapes)
{
    TempDir tmp;
    EXPECT_FALSE(
        loadBandFile(tmp.write("a.json", "{\"archs\":{}}")).ok())
        << "missing scenario";
    EXPECT_FALSE(loadBandFile(tmp.write("b.json",
                                        "{\"scenario\":\"x\"}"))
                     .ok())
        << "missing archs";
    EXPECT_FALSE(
        loadBandFile(
            tmp.write("c.json", R"({"scenario":"x","archs":{
                "Kepler":[{"metric":"m","lo":2,"hi":1}]}})"))
            .ok())
        << "hi < lo";
    EXPECT_FALSE(
        loadBandFile(
            tmp.write("d.json", R"({"scenario":"x","archs":{
                "Kepler":[{"lo":1,"hi":2}]}})"))
            .ok())
        << "missing metric";
    EXPECT_FALSE(loadBandFile(tmp.write("e.json", "not json")).ok());
}

TEST(Band, LoadDirReadsSortedAndFlagsEmpty)
{
    TempDir tmp;
    tmp.write("2.json", R"({"scenario":"b","archs":{
        "all":[{"metric":"m","lo":0,"hi":1}]}})");
    tmp.write("1.json", R"({"scenario":"a","archs":{
        "all":[{"metric":"m","lo":0,"hi":1}]}})");
    auto r = loadBandDir(tmp.path.string());
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.files.size(), 2u);
    EXPECT_EQ(r.files[0].scenario, "a") << "sorted by filename";

    TempDir empty;
    EXPECT_FALSE(loadBandDir(empty.path.string()).ok());
}

TEST(Band, DefaultDirHonorsEnvOverride)
{
    ::setenv("GPUCC_CONFORMANCE_DIR", "/somewhere", 1);
    EXPECT_EQ(defaultBandDir(), "/somewhere");
    ::unsetenv("GPUCC_CONFORMANCE_DIR");
    EXPECT_NE(defaultBandDir().find("conformance/expected"),
              std::string::npos);
}

// ---- Device digests -------------------------------------------------

/** Run one generated program on a fresh device and digest the end
 *  state. */
std::uint64_t
runAndDigest(std::uint64_t seed, const DigestOptions &opts = {})
{
    gpu::Device dev(gpu::keplerK40c());
    gpu::HostContext host(dev, 5);
    host.setJitterUs(0.0);
    ProgramGen gen(gpu::keplerK40c());
    auto &s = dev.createStream();
    host.sync(host.launch(s, gen.makeKernel(seed)));
    return deviceDigest(dev, opts);
}

TEST(DeviceDigest, IdenticalRunsProduceIdenticalDigests)
{
    EXPECT_EQ(runAndDigest(11), runAndDigest(11));
}

TEST(DeviceDigest, DifferentProgramsDiverge)
{
    EXPECT_NE(runAndDigest(11), runAndDigest(12));
}

TEST(DeviceDigest, FreshDevicesAgreeBeforeAnyWork)
{
    gpu::Device a(gpu::fermiC2075());
    gpu::Device b(gpu::fermiC2075());
    EXPECT_EQ(deviceDigest(a), deviceDigest(b));
    gpu::Device c(gpu::maxwellM4000());
    EXPECT_NE(deviceDigest(a), deviceDigest(c))
        << "different architectures must not collide";
}

TEST(DeviceDigest, CheckpointsFollowTheRunAndTerminate)
{
    gpu::Device dev(gpu::keplerK40c());
    gpu::HostContext host(dev, 5);
    host.setJitterUs(0.0);
    DigestCheckpoints cp(dev, 500);
    ProgramGen gen(gpu::keplerK40c());
    auto &s = dev.createStream();
    host.sync(host.launch(s, gen.makeKernel(3)));
    host.syncAll();
    EXPECT_GE(cp.checkpoints(), 1u)
        << "a multi-segment kernel spans at least one 500-cycle period";
    std::uint64_t mid = cp.value();
    cp.checkpointNow();
    EXPECT_NE(cp.value(), mid) << "rolling value folds new checkpoints";
}

// ---- Conformance runner plumbing ------------------------------------

/** Band text pinning the (parameter-only, fast) table1 scenario. */
std::string
table1Band(const char *metric, double lo, double hi)
{
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"scenario\":\"table1_resources\",\"archs\":{"
                  "\"Kepler\":[{\"metric\":\"%s\",\"lo\":%g,\"hi\":%g}"
                  "]}}",
                  metric, lo, hi);
    return buf;
}

TEST(Conformance, PassesAndFailsAgainstBands)
{
    TempDir tmp;
    tmp.write("t.json", table1Band("sp", 192, 192));
    ConformanceOptions opts;
    opts.bandDir = tmp.path.string();
    auto report = runConformance(opts);
    EXPECT_TRUE(report.ok()) << "K40c has 192 SP units";
    ASSERT_EQ(report.checks.size(), 1u);
    EXPECT_EQ(report.checks[0].arch, "Kepler");
    EXPECT_DOUBLE_EQ(report.checks[0].measured, 192.0);

    tmp.write("t.json", table1Band("sp", 1, 2));
    report = runConformance(opts);
    EXPECT_EQ(report.failed(), 1u);
    EXPECT_FALSE(report.ok());
}

TEST(Conformance, MissingMetricIsAFailureNotASkip)
{
    TempDir tmp;
    tmp.write("t.json", table1Band("no_such_metric", 0, 1));
    ConformanceOptions opts;
    opts.bandDir = tmp.path.string();
    auto report = runConformance(opts);
    ASSERT_EQ(report.checks.size(), 1u);
    EXPECT_FALSE(report.checks[0].present);
    EXPECT_FALSE(report.checks[0].pass);
}

TEST(Conformance, UnknownScenarioAndArchAreLoadErrors)
{
    TempDir tmp;
    tmp.write("u.json", R"({"scenario":"nonsense","archs":{
        "all":[{"metric":"m","lo":0,"hi":1}]}})");
    tmp.write("v.json", R"({"scenario":"table1_resources","archs":{
        "Volta":[{"metric":"sp","lo":0,"hi":1}]}})");
    tmp.write("w.json", R"({"scenario":"sec8_arq","archs":{
        "Maxwell":[{"metric":"raw.ber","lo":0,"hi":1}]}})");
    ConformanceOptions opts;
    opts.bandDir = tmp.path.string();
    auto report = runConformance(opts);
    ASSERT_EQ(report.errors.size(), 3u);
    EXPECT_NE(report.errors[0].find("unknown scenario"),
              std::string::npos);
    EXPECT_NE(report.errors[1].find("unknown architecture"),
              std::string::npos);
    EXPECT_NE(report.errors[2].find("does not run on"),
              std::string::npos);
    EXPECT_FALSE(report.ok());
}

TEST(Conformance, ArchFilterRestrictsCells)
{
    TempDir tmp;
    tmp.write("t.json", R"({"scenario":"table1_resources","archs":{
        "all":[{"metric":"schedulers","lo":1,"hi":8}]}})");
    ConformanceOptions opts;
    opts.bandDir = tmp.path.string();
    opts.archs = {"Fermi"};
    auto report = runConformance(opts);
    ASSERT_EQ(report.runs.size(), 1u);
    EXPECT_EQ(report.runs[0].arch, "Fermi");
}

TEST(Conformance, RecordedBandsRoundTripThroughTheChecker)
{
    TempDir tmp;
    RecordOptions rec;
    rec.outDir = tmp.path.string();
    rec.scenarios = {"table1_resources"};
    std::vector<std::string> errors;
    auto written = recordBands(rec, errors);
    ASSERT_TRUE(errors.empty()) << errors.front();
    ASSERT_EQ(written.size(), 1u);

    ConformanceOptions opts;
    opts.bandDir = tmp.path.string();
    auto report = runConformance(opts);
    EXPECT_TRUE(report.ok())
        << "freshly recorded bands must pass immediately";
    EXPECT_EQ(report.runs.size(), 3u) << "one cell per architecture";
}

TEST(Conformance, ReportJsonIsWellFormed)
{
    TempDir tmp;
    tmp.write("t.json", table1Band("sp", 192, 192));
    ConformanceOptions opts;
    opts.bandDir = tmp.path.string();
    auto report = runConformance(opts);
    std::ostringstream os;
    writeConformanceJson(report, os);
    auto parsed = parseJson(os.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_DOUBLE_EQ(parsed.value.numberOr("passed", -1), 1.0);
    EXPECT_DOUBLE_EQ(parsed.value.numberOr("failed", -1), 0.0);
    EXPECT_EQ(parsed.value.get("checks").items.size(), 1u);
    EXPECT_EQ(parsed.value.get("runs").items.size(), 1u);
}

TEST(Scenarios, RegistryLookupAndCoverage)
{
    EXPECT_NE(findScenario("table2_l1"), nullptr);
    EXPECT_EQ(findScenario("bogus"), nullptr);
    const Scenario *arq = findScenario("sec8_arq");
    ASSERT_NE(arq, nullptr);
    EXPECT_TRUE(arq->runsOn(gpu::Generation::Kepler));
    EXPECT_FALSE(arq->runsOn(gpu::Generation::Fermi));
    for (const Scenario &s : conformanceScenarios()) {
        EXPECT_FALSE(s.generations.empty()) << s.name;
        EXPECT_FALSE(s.paperRef.empty()) << s.name;
    }
}

TEST(Scenarios, PayloadMatchesTheBenchHelper)
{
    // scenarioPayload is the single source of truth the benches now
    // call; pin the historical (seed 2017) stream so refactors cannot
    // silently change every bench's message.
    BitVec a = scenarioPayload(16);
    BitVec b = scenarioPayload(16);
    ASSERT_EQ(a.size(), 16u);
    EXPECT_EQ(a, b);
    EXPECT_NE(scenarioPayload(16, 1), a);
}

} // namespace
} // namespace gpucc::verify

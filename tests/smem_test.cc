/**
 * @file
 * Shared-memory model tests: bank-conflict timing (the self-contention
 * artifact of the Jiang et al. side-channel attacks), functional
 * storage, and the Section 10 negative result — self-contention cannot
 * be observed by a competing kernel, so it cannot carry a covert
 * channel.
 */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "gpu/device.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"

namespace gpucc::gpu
{
namespace
{

/** Lane offsets with an exact conflict degree d on 32 banks. */
std::vector<Addr>
conflictPattern(unsigned degree)
{
    std::vector<Addr> offsets;
    for (unsigned lane = 0; lane < static_cast<unsigned>(warpSize);
         ++lane) {
        // degree lanes share each bank: lane -> bank (lane / degree).
        unsigned bank = lane / degree;
        offsets.push_back(Addr(bank) * 4 +
                          Addr(lane % degree) * 32 * 4);
    }
    return offsets;
}

TEST(SharedMemory, ConflictDegreeComputation)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    std::vector<unsigned> degrees;
    KernelLaunch k;
    k.name = "degree";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 32;
    k.config.smemBytesPerBlock = 8 * 1024;
    k.body = [&degrees](WarpCtx &ctx) -> WarpProgram {
        for (unsigned d : {1u, 2u, 4u, 8u, 16u, 32u})
            degrees.push_back(ctx.bankConflictDegree(conflictPattern(d)));
        co_await ctx.op(OpClass::FAdd);
        co_return;
    };
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    EXPECT_EQ(degrees, (std::vector<unsigned>{1, 2, 4, 8, 16, 32}));
}

TEST(SharedMemory, LatencyGrowsLinearlyWithConflictDegree)
{
    auto arch = keplerK40c();
    Device dev(arch);
    HostContext host(dev);
    std::vector<std::uint64_t> lat;
    KernelLaunch k;
    k.name = "conflicts";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 32;
    k.config.smemBytesPerBlock = 8 * 1024;
    k.body = [&lat](WarpCtx &ctx) -> WarpProgram {
        for (unsigned d : {1u, 2u, 8u, 32u})
            lat.push_back(co_await ctx.sharedAccess(conflictPattern(d)));
        co_return;
    };
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    ASSERT_EQ(lat.size(), 4u);
    EXPECT_NEAR(static_cast<double>(lat[0]),
                static_cast<double>(arch.smemBaseCycles), 4.0);
    // Each extra lane per bank costs one conflict penalty.
    EXPECT_NEAR(static_cast<double>(lat[3] - lat[0]),
                31.0 * arch.smemConflictCycles, 8.0);
    EXPECT_LT(lat[0], lat[1]);
    EXPECT_LT(lat[1], lat[2]);
    EXPECT_LT(lat[2], lat[3]);
}

TEST(SharedMemory, FunctionalStorageIsPerBlock)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    std::vector<std::uint32_t> seen;
    KernelLaunch k;
    k.name = "storage";
    k.config.gridBlocks = 2;
    k.config.threadsPerBlock = 32;
    k.config.smemBytesPerBlock = 1024;
    k.body = [&seen](WarpCtx &ctx) -> WarpProgram {
        ctx.smemWrite(0, 100 + ctx.blockId());
        co_await ctx.op(OpClass::FAdd);
        seen.push_back(ctx.smemRead(0));
        co_return;
    };
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, (std::vector<std::uint32_t>{100, 101}));
}

TEST(SharedMemory, ProducerConsumerAcrossWarps)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    std::uint32_t consumed = 0;
    KernelLaunch k;
    k.name = "prodcons";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 2 * warpSize;
    k.config.smemBytesPerBlock = 256;
    k.body = [&consumed](WarpCtx &ctx) -> WarpProgram {
        if (ctx.warpInBlock() == 0)
            ctx.smemWrite(16, 0xfeed);
        co_await ctx.syncthreads();
        if (ctx.warpInBlock() == 1)
            consumed = ctx.smemRead(16);
        co_return;
    };
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    EXPECT_EQ(consumed, 0xfeedu);
}

TEST(SharedMemoryDeath, OutOfBoundsAccessPanics)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    KernelLaunch k;
    k.name = "oob";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 32;
    k.config.smemBytesPerBlock = 64;
    k.body = [](WarpCtx &ctx) -> WarpProgram {
        ctx.smemWrite(4096, 1);
        co_await ctx.op(OpClass::FAdd);
        co_return;
    };
    auto &s = dev.createStream();
    auto &inst = host.launch(s, k);
    EXPECT_DEATH(host.sync(inst), "outside the block");
}

TEST(SharedMemory, Section10SelfContentionIsInvisibleToCompetingKernels)
{
    // Spy times conflict-free shared accesses on SM0 while a co-resident
    // trojan alternates between a max-conflict storm and idling. The
    // spy's observation must not separate the two cases.
    auto arch = keplerK40c();
    Device dev(arch);
    HostContext host(dev);
    host.setJitterUs(0.0);

    Accumulator quiet, stormy;
    for (int round = 0; round < 8; ++round) {
        bool storm = round % 2 == 0;

        KernelLaunch trojan;
        trojan.name = "smem-trojan";
        trojan.config.gridBlocks = 15;
        trojan.config.threadsPerBlock = 4 * warpSize;
        trojan.config.smemBytesPerBlock = 8 * 1024;
        trojan.body = [storm](WarpCtx &ctx) -> WarpProgram {
            if (storm) {
                for (int i = 0; i < 200; ++i)
                    co_await ctx.sharedAccess(conflictPattern(32));
            }
            co_return;
        };

        double avg = 0.0;
        KernelLaunch spy;
        spy.name = "smem-spy";
        spy.config.gridBlocks = 15;
        spy.config.threadsPerBlock = 32;
        spy.config.smemBytesPerBlock = 8 * 1024;
        spy.body = [&avg](WarpCtx &ctx) -> WarpProgram {
            if (ctx.smid() != 0)
                co_return;
            std::uint64_t total = 0;
            for (int i = 0; i < 64; ++i)
                total += co_await ctx.sharedAccess(conflictPattern(1));
            avg = static_cast<double>(total) / 64.0;
            co_return;
        };

        auto &s1 = dev.createStream();
        auto &s2 = dev.createStream();
        auto &kt = host.launch(s1, trojan);
        auto &ks = host.launch(s2, spy);
        host.sync(ks);
        host.sync(kt);
        (storm ? stormy : quiet).add(avg);
    }
    // Less than a cycle of difference: no decodable contrast (compare
    // with the ~6-cycle step the working SFU channel relies on).
    EXPECT_LT(std::abs(stormy.mean() - quiet.mean()), 1.0);
}

} // namespace
} // namespace gpucc::gpu

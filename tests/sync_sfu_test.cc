/**
 * @file
 * Tests for the synchronized SFU channel — Section 7.1's "it is
 * possible to implement synchronization for other channels as well",
 * realized: handshake over L1 sets, data over transient SFU contention.
 */

#include <gtest/gtest.h>

#include "covert/channels/sfu_channel.h"
#include "covert/sync/sync_sfu_channel.h"

namespace gpucc::covert
{
namespace
{

using gpu::ArchParams;

BitVec
msg(std::size_t n, std::uint64_t seed = 91)
{
    Rng rng(seed);
    return randomBits(n, rng);
}

class SyncSfuTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(SyncSfuTest, TransmitsErrorFree)
{
    SyncSfuChannel ch(GetParam());
    auto r = ch.transmit(msg(128));
    EXPECT_TRUE(r.report.errorFree()) << GetParam().name;
}

TEST_P(SyncSfuTest, SymbolsMatchTheSection52Latencies)
{
    const ArchParams &arch = GetParam();
    SyncSfuChannel ch(arch);
    auto r = ch.transmit(alternatingBits(48));
    double expect0 = 0.0, expect1 = 0.0;
    switch (arch.generation) {
      case gpu::Generation::Fermi:
        expect0 = 41;
        expect1 = 64; // 3 spy + 3 trojan warps -> 3/scheduler
        break;
      case gpu::Generation::Kepler:
        expect0 = 18;
        expect1 = 24;
        break;
      case gpu::Generation::Maxwell:
        expect0 = 15;
        expect1 = 20;
        break;
    }
    EXPECT_NEAR(r.zeroMetric.mean(), expect0, 1.5) << arch.name;
    EXPECT_NEAR(r.oneMetric.mean(), expect1, 2.5) << arch.name;
}

TEST_P(SyncSfuTest, BeatsTheLaunchPerBitBaseline)
{
    // The point of synchronization: no kernel launch per bit.
    const ArchParams &arch = GetParam();
    SyncSfuChannel sync(arch);
    SfuChannel baseline(arch);
    auto m = msg(64);
    double syncBw = sync.transmit(m).bandwidthBps;
    double baseBw = baseline.transmit(m).bandwidthBps;
    EXPECT_GT(syncBw, 2.0 * baseBw) << arch.name;
}

INSTANTIATE_TEST_SUITE_P(AllGpus, SyncSfuTest,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(SyncSfu, AdversarialRunPatternsStayAligned)
{
    // The transient data phase makes round alignment harder than the
    // durable cache channel's; long runs of equal bits are the
    // historically dangerous pattern.
    auto arch = gpu::keplerK40c();
    for (int pattern = 0; pattern < 4; ++pattern) {
        BitVec m;
        switch (pattern) {
          case 0:
            m = BitVec(64, 1);
            break;
          case 1:
            m = BitVec(64, 0);
            break;
          case 2:
            for (int i = 0; i < 64; ++i)
                m.push_back(i % 8 < 4 ? 1 : 0);
            break;
          default:
            m = msg(64, 1234);
            break;
        }
        SyncSfuChannel ch(arch);
        EXPECT_TRUE(ch.transmit(m).report.errorFree())
            << "pattern " << pattern;
    }
}

TEST(SyncSfu, LongMessage)
{
    SyncSfuChannel ch(gpu::keplerK40c());
    auto r = ch.transmit(msg(1024, 55));
    EXPECT_TRUE(r.report.errorFree());
    EXPECT_GT(r.bandwidthBps, 60e3);
}

} // namespace
} // namespace gpucc::covert

/**
 * @file
 * Parameterized invariant tests over the three architecture presets —
 * the Table 1 resource counts and the calibrated timing tables.
 */

#include <gtest/gtest.h>

#include "gpu/arch_params.h"

namespace gpucc::gpu
{
namespace
{

class ArchTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(ArchTest, BasicSanity)
{
    const ArchParams &a = GetParam();
    EXPECT_FALSE(a.name.empty());
    EXPECT_GE(a.numSms, 1u);
    EXPECT_GT(a.clockGHz, 0.1);
    EXPECT_GE(a.schedulersPerSm, 1u);
    EXPECT_GE(a.dispatchUnitsPerScheduler, 1u);
}

TEST_P(ArchTest, OccupancyLimitsAreConsistent)
{
    const SmLimits &l = GetParam().limits;
    EXPECT_EQ(l.maxThreads % warpSize, 0u);
    EXPECT_EQ(l.maxWarps, l.maxThreads / warpSize);
    EXPECT_LE(l.smemPerBlockBytes, l.smemBytes);
    EXPECT_GE(l.maxBlocks, 1u);
}

TEST_P(ArchTest, SupportedOpsHavePositiveTiming)
{
    const ArchParams &a = GetParam();
    for (auto op : {OpClass::FAdd, OpClass::FMul, OpClass::Sinf,
                    OpClass::Sqrt, OpClass::IAdd}) {
        ASSERT_TRUE(a.supports(op)) << a.name;
        const OpTiming &t = a.timing(op);
        EXPECT_GT(t.latencyCycles, 0u) << a.name;
        EXPECT_GT(t.occTicks, 0u) << a.name;
    }
}

TEST_P(ArchTest, SfuOpsCostMoreThanSpOps)
{
    const ArchParams &a = GetParam();
    auto base = [](const OpTiming &t) {
        return static_cast<double>(t.latencyCycles) +
               ticksToCyclesF(t.occTicks);
    };
    EXPECT_GT(base(a.timing(OpClass::Sinf)), base(a.timing(OpClass::FAdd)))
        << a.name;
    EXPECT_GT(base(a.timing(OpClass::Sqrt)), base(a.timing(OpClass::Sinf)))
        << a.name;
}

TEST_P(ArchTest, CacheGeometriesMatchThePaper)
{
    const auto &cm = GetParam().constMem;
    // All three GPUs: L2 is 32 KB, 8-way, 256 B lines (16 sets).
    EXPECT_EQ(cm.l2.sizeBytes, 32768u);
    EXPECT_EQ(cm.l2.ways, 8u);
    EXPECT_EQ(cm.l2.lineBytes, 256u);
    EXPECT_EQ(cm.l2.numSets(), 16u);
    // L1: 4-way, 64 B lines; 4 KB on Fermi, 2 KB on Kepler/Maxwell.
    EXPECT_EQ(cm.l1.ways, 4u);
    EXPECT_EQ(cm.l1.lineBytes, 64u);
    if (GetParam().generation == Generation::Fermi)
        EXPECT_EQ(cm.l1.sizeBytes, 4096u);
    else
        EXPECT_EQ(cm.l1.sizeBytes, 2048u);
}

TEST_P(ArchTest, LatencyOrderingInConstantHierarchy)
{
    const auto &cm = GetParam().constMem;
    EXPECT_LT(cm.l1HitCycles, cm.l2HitCycles);
    EXPECT_LT(cm.l2HitCycles, cm.memCycles);
}

TEST_P(ArchTest, TimeConversionRoundTrips)
{
    const ArchParams &a = GetParam();
    Tick t = a.ticksFromUs(10.0);
    EXPECT_NEAR(a.secondsFromTicks(t), 10e-6, 1e-9);
}

TEST_P(ArchTest, HostOverheadsArePositive)
{
    const HostParams &h = GetParam().host;
    EXPECT_GT(h.launchOverheadUs, 0.0);
    EXPECT_GT(h.launchLatencyUs, 0.0);
    EXPECT_GT(h.syncOverheadUs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllGpus, ArchTest,
                         ::testing::ValuesIn(allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(ArchParams, Table1ExactCounts)
{
    auto f = fermiC2075();
    EXPECT_EQ(f.numSms, 14u);
    EXPECT_EQ(f.schedulersPerSm, 2u);
    EXPECT_EQ(f.dispatchUnitsPerScheduler * f.schedulersPerSm, 2u);
    EXPECT_EQ(f.fuCount(FuType::SP), 32u);
    EXPECT_EQ(f.fuCount(FuType::DPU), 16u);
    EXPECT_EQ(f.fuCount(FuType::SFU), 4u);
    EXPECT_EQ(f.fuCount(FuType::LDST), 16u);

    auto k = keplerK40c();
    EXPECT_EQ(k.numSms, 15u);
    EXPECT_EQ(k.schedulersPerSm, 4u);
    EXPECT_EQ(k.dispatchUnitsPerScheduler * k.schedulersPerSm, 8u);
    EXPECT_EQ(k.fuCount(FuType::SP), 192u);
    EXPECT_EQ(k.fuCount(FuType::DPU), 64u);
    EXPECT_EQ(k.fuCount(FuType::SFU), 32u);
    EXPECT_EQ(k.fuCount(FuType::LDST), 32u);

    auto m = maxwellM4000();
    EXPECT_EQ(m.numSms, 13u);
    EXPECT_EQ(m.fuCount(FuType::SP), 128u);
    EXPECT_EQ(m.fuCount(FuType::DPU), 0u);
    EXPECT_EQ(m.fuCount(FuType::SFU), 32u);
}

TEST(ArchParams, DoublePrecisionSupportMatrix)
{
    EXPECT_TRUE(fermiC2075().supports(OpClass::DAdd));
    EXPECT_TRUE(keplerK40c().supports(OpClass::DMul));
    EXPECT_FALSE(maxwellM4000().supports(OpClass::DAdd));
    EXPECT_FALSE(maxwellM4000().supports(OpClass::DMul));
}

TEST(ArchParamsDeath, UnsupportedOpTimingIsFatal)
{
    auto m = maxwellM4000();
    EXPECT_EXIT(m.timing(OpClass::DAdd), ::testing::ExitedWithCode(1),
                "does not support");
}

TEST(ArchParams, PaperBaseLatencies)
{
    // Section 5.2's uncontended __sinf latencies: 41 / 18 / 15 cycles.
    auto base = [](const ArchParams &a, OpClass op) {
        const auto &t = a.timing(op);
        return static_cast<double>(t.latencyCycles) +
               ticksToCyclesF(t.occTicks);
    };
    EXPECT_NEAR(base(fermiC2075(), OpClass::Sinf), 41.0, 1.0);
    EXPECT_NEAR(base(keplerK40c(), OpClass::Sinf), 18.0, 1.0);
    EXPECT_NEAR(base(maxwellM4000(), OpClass::Sinf), 15.0, 1.0);
}

TEST(ArchParams, MaxwellSmemIsTwicePerBlockCap)
{
    // The Section 8 Maxwell strategy depends on this ratio.
    auto m = maxwellM4000();
    EXPECT_EQ(m.limits.smemBytes, 2 * m.limits.smemPerBlockBytes);
    auto k = keplerK40c();
    EXPECT_EQ(k.limits.smemBytes, k.limits.smemPerBlockBytes);
}

TEST(ArchParams, AtomicThroughputNineTimesBetterOnKepler)
{
    // Kepler whitepaper: same-address atomic throughput improved 9x.
    auto f = fermiC2075();
    auto k = keplerK40c();
    EXPECT_EQ(f.gmem.atomicOccCycles, 9 * k.gmem.atomicOccCycles);
}

TEST(ArchParams, GenerationNames)
{
    EXPECT_STREQ(generationName(Generation::Fermi), "Fermi");
    EXPECT_STREQ(generationName(Generation::Kepler), "Kepler");
    EXPECT_STREQ(generationName(Generation::Maxwell), "Maxwell");
}

TEST(ArchParams, OpClassNamesMatchPaperFigures)
{
    EXPECT_STREQ(opClassName(OpClass::Sinf), "__sinf");
    EXPECT_STREQ(opClassName(OpClass::Sqrt), "sqrt");
    EXPECT_STREQ(opClassName(OpClass::FAdd), "Add");
    EXPECT_STREQ(opClassName(OpClass::DAdd), "Add (double)");
}

} // namespace
} // namespace gpucc::gpu

/**
 * @file
 * Architecture-generation fuzz of the blind synthesis pipeline: for
 * seeded random ArchParams (arch_gen), the discovery must recover the
 * exact generating parameters and the synthesized channel must carry a
 * session with zero residual errors — the self-checking oracle that
 * needs no golden file, because the generator *is* the ground truth.
 *
 * The seed count defaults to 32 and scales up for the nightly soak job
 * via GPUCC_SOAK, like the session soak.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.h"
#include "covert/session/session.h"
#include "covert/synth/synthesizer.h"
#include "sim/exec/sweep_runner.h"
#include "verify/arch_gen.h"
#include "verify/scenarios.h"

namespace gpucc::verify
{
namespace
{

std::size_t
soakSeeds()
{
    if (const char *env = std::getenv("GPUCC_SOAK")) {
        long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<std::size_t>(n);
    }
    return 32;
}

struct FuzzOutcome
{
    std::string archName;
    bool geometryExact = false;
    bool thresholdsOk = false;
    bool evictionMinimal = false;
    bool rankedUsable = false;
    bool complete = false;
    std::size_t residualBitErrors = 0;
    std::uint64_t discoveryDigest = 0;
};

/** Generate arch @p seed, run the full blind pipeline against it, and
 *  compare every discovered value with the generating parameters. */
FuzzOutcome
fuzzOne(std::uint64_t seed)
{
    setVerbose(false);
    const ArchGen gen;
    const gpu::ArchParams arch = gen.makeArch(seed);

    covert::synth::AttackerLab lab(arch);
    covert::synth::SynthesizedPlan plan = covert::synth::synthesize(lab);

    FuzzOutcome out;
    out.archName = arch.name;
    out.geometryExact =
        plan.l1.sizeBytes == arch.constMem.l1.sizeBytes &&
        plan.l1.lineBytes == arch.constMem.l1.lineBytes &&
        plan.l1.numSets == arch.constMem.l1.numSets() &&
        plan.l1.ways == arch.constMem.l1.ways;
    out.thresholdsOk = plan.thresholds.ok;
    out.evictionMinimal =
        plan.evictionSet.offsets.size() == arch.constMem.l1.ways;
    out.rankedUsable =
        !plan.ranking.empty() && plan.ranking.front().usable;
    out.discoveryDigest = plan.discoveryDigest;

    covert::session::SessionConfig cfg =
        covert::synth::planSessionConfig(plan);
    covert::session::ChannelSession session(arch, cfg);
    session.channel().setTiming(plan.timing());
    covert::session::SessionResult r =
        session.run(scenarioPayload(64, seed ^ 0x5eedULL));
    out.complete = r.complete;
    out.residualBitErrors = r.residualBitErrors;
    return out;
}

TEST(ArchFuzz, BlindSynthesisRecoversEveryGeneratedArch)
{
    const std::size_t seeds = soakSeeds();
    sim::exec::SweepRunner runner;
    // Arch seeds are sequential (not drawn from the sweep's seed
    // stream) so a failure names a directly reproducible makeArch(i).
    auto results = runner.runTrials(
        seeds, 41,
        [](std::size_t i, std::uint64_t) { return fuzzOne(i); });

    ASSERT_EQ(results.size(), seeds);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const FuzzOutcome &r = results[i];
        EXPECT_TRUE(r.geometryExact)
            << r.archName << ": discovery diverged from generator";
        EXPECT_TRUE(r.thresholdsOk)
            << r.archName << ": hit/miss populations overlapped";
        EXPECT_TRUE(r.evictionMinimal)
            << r.archName << ": eviction set is not associativity-sized";
        EXPECT_TRUE(r.rankedUsable)
            << r.archName << ": no usable substrate ranked";
        EXPECT_TRUE(r.complete)
            << r.archName << ": synthesized session did not complete";
        EXPECT_EQ(r.residualBitErrors, 0u)
            << r.archName << ": synthesized session leaked errors";
    }
}

TEST(ArchFuzz, GeneratedArchitecturesAreWellFormed)
{
    // The generator's own envelope contract: orderings the simulator
    // assumes and headroom the blind sweeps need.
    const ArchGen gen;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        gpu::ArchParams a = gen.makeArch(seed);
        EXPECT_LT(a.constMem.l1HitCycles, a.constMem.l2HitCycles)
            << a.name;
        EXPECT_LT(a.constMem.l2HitCycles, a.constMem.memCycles) << a.name;
        EXPECT_GE(a.constMem.l1.numSets(), 8u)
            << a.name << ": below the duplex protocol's set budget";
        EXPECT_GE(a.limits.maxWarps, 32u) << a.name;
        EXPECT_EQ(a.spUnits % a.schedulersPerSm, 0u) << a.name;
        EXPECT_EQ(a.sfuUnits % a.schedulersPerSm, 0u) << a.name;
        EXPECT_TRUE(a.supports(gpu::OpClass::Sinf)) << a.name;
    }
}

TEST(ArchFuzz, SameSeedSameArchSameDiscovery)
{
    const ArchGen gen;
    gpu::ArchParams a = gen.makeArch(5);
    gpu::ArchParams b = gen.makeArch(5);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.constMem.l1.sizeBytes, b.constMem.l1.sizeBytes);
    EXPECT_EQ(a.constMem.l1HitCycles, b.constMem.l1HitCycles);

    FuzzOutcome r1 = fuzzOne(5);
    FuzzOutcome r2 = fuzzOne(5);
    EXPECT_EQ(r1.discoveryDigest, r2.discoveryDigest);
    EXPECT_EQ(r1.residualBitErrors, r2.residualBitErrors);
}

TEST(ArchFuzz, SeedsRotateThroughGenerations)
{
    // Protocol costs are per-generation; the rotation guarantees all
    // three get fuzzed rather than whichever the seed range favored.
    const ArchGen gen;
    EXPECT_EQ(gen.makeArch(0).generation, gpu::Generation::Fermi);
    EXPECT_EQ(gen.makeArch(1).generation, gpu::Generation::Kepler);
    EXPECT_EQ(gen.makeArch(2).generation, gpu::Generation::Maxwell);
}

} // namespace
} // namespace gpucc::verify

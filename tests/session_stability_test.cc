/**
 * @file
 * Seed-sweep soak of the self-calibrating session layer: across every
 * fault preset (including mid-transfer kernel eviction) and every
 * architecture, a calibrated session — no hand-tuned threshold enters
 * it — must deliver the full payload with zero residual errors and a
 * bounded number of resynchronizations. A second property pins the
 * determinism contract: the post-session device digest is invariant
 * under the host thread count (GPUCC_THREADS 1/2/8 equivalent).
 *
 * The per-plan seed count defaults to 32 and can be raised for the
 * nightly soak job via the GPUCC_SOAK environment variable.
 */

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.h"
#include "covert/session/session.h"
#include "sim/exec/sweep_runner.h"
#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"
#include "verify/digest.h"
#include "verify/scenarios.h"

namespace gpucc::verify
{
namespace
{

std::size_t
soakSeeds()
{
    if (const char *env = std::getenv("GPUCC_SOAK")) {
        long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<std::size_t>(n);
    }
    return 32;
}

struct SoakOutcome
{
    bool complete = false;
    bool calibrated = false;
    double residualBer = 0.0;
    unsigned resyncs = 0;
    unsigned recalibrations = 0;
    unsigned evictions = 0;
    std::uint64_t digest = 0;
};

/** One full calibrated session under @p plan; the digest covers the
 *  device's architectural end state (thread-invariance oracle). */
SoakOutcome
runSession(const gpu::ArchParams &arch, const std::string &plan,
           std::uint64_t seed, std::size_t bits = 96)
{
    setVerbose(false);
    covert::session::SessionConfig cfg;
    cfg.link.payloadBits = 32;
    cfg.link.window = 4;
    covert::session::ChannelSession session(arch, cfg);
    sim::fault::FaultInjector injector(
        session.channel().harness().device(),
        sim::fault::FaultPlan::preset(plan), seed);
    injector.arm();

    const BitVec payload = scenarioPayload(bits, seed ^ 0x5eedULL);
    covert::session::SessionResult r = session.run(payload);

    SoakOutcome out;
    out.complete = r.complete;
    out.calibrated = r.calibration.ok;
    out.residualBer = r.residualBer;
    out.resyncs = r.resyncs;
    out.recalibrations = r.recalibrations;
    out.evictions = injector.stats().evictions;
    out.digest = deviceDigest(session.channel().harness().device());
    return out;
}

/** The acceptance sweep body: @p seeds trials of @p plan on @p arch,
 *  all of which must deliver error-free with bounded healing effort. */
void
soakPlan(const gpu::ArchParams &arch, const std::string &plan)
{
    const std::size_t seeds = soakSeeds();
    constexpr unsigned resyncBudget = 32;
    constexpr unsigned recalBudget = 256;

    sim::exec::SweepRunner runner;
    auto results = runner.runTrials(
        seeds, 77, [&](std::size_t, std::uint64_t seed) {
            return runSession(arch, plan, seed);
        });

    ASSERT_EQ(results.size(), seeds);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SoakOutcome &r = results[i];
        EXPECT_TRUE(r.complete)
            << arch.name << "/" << plan << " seed index " << i;
        EXPECT_DOUBLE_EQ(r.residualBer, 0.0)
            << arch.name << "/" << plan << " seed index " << i
            << ": session leaked errors";
        EXPECT_LE(r.resyncs, resyncBudget)
            << arch.name << "/" << plan << " seed index " << i;
        EXPECT_LE(r.recalibrations, recalBudget)
            << arch.name << "/" << plan << " seed index " << i;
    }
}

class SessionSoak : public ::testing::TestWithParam<gpu::ArchParams>
{
};

TEST_P(SessionSoak, QuietPlanDeliversCalibrated)
{
    // On a quiet device the online calibration must actually be
    // accepted (measured populations, not the forArch() fallback).
    SoakOutcome r = runSession(GetParam(), "quiet", 5);
    EXPECT_TRUE(r.calibrated) << GetParam().name;
    EXPECT_TRUE(r.complete) << GetParam().name;
    EXPECT_DOUBLE_EQ(r.residualBer, 0.0) << GetParam().name;
    soakPlan(GetParam(), "quiet");
}

TEST_P(SessionSoak, BurstyPlanZeroResidualErrors)
{
    soakPlan(GetParam(), "bursty");
}

TEST_P(SessionSoak, AdversarialPlanZeroResidualErrors)
{
    soakPlan(GetParam(), "adversarial");
}

TEST_P(SessionSoak, DatacenterPlanZeroResidualErrors)
{
    soakPlan(GetParam(), "datacenter");
}

TEST_P(SessionSoak, EvictionPlanZeroResidualErrors)
{
    soakPlan(GetParam(), "eviction");
}

INSTANTIATE_TEST_SUITE_P(AllGpus, SessionSoak,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(SessionStability, EvictionPlanActuallyInterruptsTransfers)
{
    // The soak only proves survival; this proves there was something
    // to survive — the plan lands real evictions mid-session.
    SoakOutcome r = runSession(gpu::maxwellM4000(), "eviction", 9);
    EXPECT_GT(r.evictions, 0u);
    EXPECT_TRUE(r.complete);
    EXPECT_DOUBLE_EQ(r.residualBer, 0.0);
}

TEST(SessionStability, ReplayIsDeterministicPerSeed)
{
    SoakOutcome a = runSession(gpu::keplerK40c(), "eviction", 13);
    SoakOutcome b = runSession(gpu::keplerK40c(), "eviction", 13);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.resyncs, b.resyncs);
    EXPECT_EQ(a.recalibrations, b.recalibrations);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_DOUBLE_EQ(a.residualBer, b.residualBer);
}

TEST(SessionStability, DigestIsThreadCountInvariant)
{
    // Property: the post-session device digest of every trial is
    // byte-identical whether the sweep ran inline, on 2 workers, or on
    // 8 — the GPUCC_THREADS contract extended to the session layer.
    struct Cell
    {
        gpu::ArchParams arch;
        const char *plan;
        std::uint64_t seed;
    };
    std::vector<Cell> cells;
    for (const auto &arch : gpu::allArchitectures()) {
        cells.push_back({arch, "quiet", 3});
        cells.push_back({arch, "eviction", 4});
    }

    auto digestsAt = [&](unsigned threads) {
        sim::exec::SweepRunner runner(threads);
        return runner.runSweep(cells, [](const Cell &c) {
            return runSession(c.arch, c.plan, c.seed, 48).digest;
        });
    };

    auto one = digestsAt(1);
    auto two = digestsAt(2);
    auto eight = digestsAt(8);
    ASSERT_EQ(one.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(one[i], two[i])
            << cells[i].arch.name << "/" << cells[i].plan;
        EXPECT_EQ(one[i], eight[i])
            << cells[i].arch.name << "/" << cells[i].plan;
    }
}

} // namespace
} // namespace gpucc::verify

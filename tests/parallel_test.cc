/**
 * @file
 * Tests for the parallelized channels (Section 7.2, Table 3) and the
 * multi-resource channel: per-scheduler bit isolation, SM-level
 * striping, and the L1+SFU combination.
 */

#include <gtest/gtest.h>

#include "covert/parallel/multi_resource_channel.h"
#include "covert/parallel/sfu_parallel_channel.h"

namespace gpucc::covert
{
namespace
{

using gpu::ArchParams;

BitVec
msg(std::size_t n, std::uint64_t seed = 21)
{
    Rng rng(seed);
    return randomBits(n, rng);
}

class SfuParallelTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(SfuParallelTest, BitsPerLaunchAccounting)
{
    const ArchParams &arch = GetParam();
    SfuParallelChannel perSched(arch);
    EXPECT_EQ(perSched.bitsPerLaunch(), arch.schedulersPerSm);
    SfuParallelConfig cfg;
    cfg.acrossSms = true;
    SfuParallelChannel all(arch, cfg);
    EXPECT_EQ(all.bitsPerLaunch(), arch.schedulersPerSm * arch.numSms);
}

TEST_P(SfuParallelTest, PerSchedulerTransmissionErrorFree)
{
    SfuParallelChannel ch(GetParam());
    auto r = ch.transmit(msg(48));
    EXPECT_TRUE(r.report.errorFree()) << GetParam().name;
}

TEST_P(SfuParallelTest, AcrossSmsTransmissionErrorFree)
{
    SfuParallelConfig cfg;
    cfg.acrossSms = true;
    SfuParallelChannel ch(GetParam(), cfg);
    auto r = ch.transmit(msg(480));
    EXPECT_TRUE(r.report.errorFree()) << GetParam().name;
}

TEST_P(SfuParallelTest, ParallelismMultipliesBandwidth)
{
    const ArchParams &arch = GetParam();
    SfuParallelChannel perSched(arch);
    SfuParallelConfig cfg;
    cfg.acrossSms = true;
    SfuParallelChannel all(arch, cfg);
    double bwSched = perSched.transmit(msg(64)).bandwidthBps;
    double bwAll = all.transmit(msg(640)).bandwidthBps;
    // SM-level striping gains roughly the SM count.
    EXPECT_GT(bwAll, 0.6 * arch.numSms * bwSched) << arch.name;
}

INSTANTIATE_TEST_SUITE_P(AllGpus, SfuParallelTest,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(SfuParallel, Table3KeplerNumbers)
{
    auto arch = gpu::keplerK40c();
    SfuParallelChannel perSched(arch);
    auto r1 = perSched.transmit(msg(64));
    // Paper: 84 Kbps through the 4 warp schedulers.
    EXPECT_NEAR(r1.bandwidthBps, 84e3, 0.15 * 84e3);
    SfuParallelConfig cfg;
    cfg.acrossSms = true;
    SfuParallelChannel all(arch, cfg);
    auto r2 = all.transmit(msg(1200));
    // Paper: 1.2 Mbps through schedulers x 15 SMs.
    EXPECT_NEAR(r2.bandwidthBps, 1.2e6, 0.15 * 1.2e6);
}

TEST(SfuParallel, SchedulerBitsAreIndependent)
{
    // Each scheduler carries its own bit: walking one-hot patterns must
    // decode exactly (no crosstalk between schedulers).
    auto arch = gpu::keplerK40c();
    SfuParallelChannel ch(arch);
    BitVec oneHot;
    for (unsigned s = 0; s < arch.schedulersPerSm; ++s)
        for (unsigned b = 0; b < arch.schedulersPerSm; ++b)
            oneHot.push_back(b == s ? 1 : 0);
    auto r = ch.transmit(oneHot);
    EXPECT_TRUE(r.report.errorFree());
}

TEST(MultiResource, TwoBitsPerLaunchErrorFree)
{
    for (const auto &arch :
         {gpu::keplerK40c(), gpu::maxwellM4000()}) {
        MultiResourceChannel ch(arch);
        auto r = ch.transmit(msg(48));
        EXPECT_TRUE(r.report.errorFree()) << arch.name;
        // Paper: ~56 Kbps on Kepler and Maxwell.
        EXPECT_NEAR(r.bandwidthBps, 56e3, 0.2 * 56e3) << arch.name;
    }
}

TEST(MultiResource, BeatsEitherSingleResourceBaseline)
{
    auto arch = gpu::keplerK40c();
    MultiResourceChannel ch(arch);
    auto r = ch.transmit(msg(48));
    // L1 baseline ~42 Kbps, SFU baseline ~24 Kbps: the combination
    // outruns both.
    EXPECT_GT(r.bandwidthBps, 44e3);
}

TEST(MultiResource, OddLengthMessagePadsCleanly)
{
    MultiResourceChannel ch(gpu::keplerK40c());
    auto m = msg(31);
    auto r = ch.transmit(m);
    EXPECT_EQ(r.received.size(), m.size());
    EXPECT_TRUE(r.report.errorFree());
}

TEST(MultiResource, TextRoundTrip)
{
    MultiResourceChannel ch(gpu::keplerK40c());
    std::string secret = "two lanes";
    EXPECT_EQ(bitsToText(ch.transmit(textToBits(secret)).received), secret);
}

} // namespace
} // namespace gpucc::covert

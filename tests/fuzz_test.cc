/**
 * @file
 * Randomized stress tests of the whole GPU substrate: random kernel
 * mixes (compute, constant loads, atomics, barriers, sleeps) across
 * random grids, streams, and hosts, swept over every architecture and
 * every block-scheduling policy. Invariants: everything completes, SMs
 * drain to zero occupancy, every warp reports, and runs are
 * deterministic per seed.
 */

#include <gtest/gtest.h>

#include "covert/coding/error_code.h"
#include "covert/link/frame.h"
#include "covert/link/reliable_link.h"
#include "covert/link/transport.h"
#include "covert/session/pilot.h"
#include "gpu/block_scheduler.h"
#include "gpu/device_stats.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"

namespace gpucc::gpu
{
namespace
{

struct FuzzScenario
{
    ArchParams arch;
    MultiprogPolicy policy;
    std::uint64_t seed;
};

/** Build a random kernel whose demands fit under every policy. */
KernelLaunch
randomKernel(Rng &rng, const ArchParams &arch, unsigned idx)
{
    KernelLaunch k;
    k.name = strfmt("fuzz%u", idx);
    k.config.gridBlocks =
        static_cast<unsigned>(rng.uniformInt(1, 2 * arch.numSms));
    unsigned warps = static_cast<unsigned>(rng.uniformInt(1, 6));
    k.config.threadsPerBlock = warps * warpSize;
    k.config.regsPerThread = 16;
    // At most a quarter of the SM's shared memory: placeable even under
    // the half-share intra-SM partitioning policy.
    if (rng.flip()) {
        k.config.smemBytesPerBlock =
            static_cast<std::size_t>(rng.uniformInt(0, 4)) * 1024;
    }

    unsigned flavor = static_cast<unsigned>(rng.uniformInt(0, 3));
    unsigned iters = static_cast<unsigned>(rng.uniformInt(4, 60));
    bool useBarrier = rng.flip();
    Addr gbase = static_cast<Addr>(rng.uniformInt(0, 1 << 16)) * 256;
    Addr cbase = static_cast<Addr>(rng.uniformInt(0, 64)) * 512;
    bool dp = arch.supports(OpClass::DAdd) && rng.flip();

    k.body = [flavor, iters, useBarrier, gbase, cbase,
              dp](WarpCtx &ctx) -> WarpProgram {
        for (unsigned i = 0; i < iters; ++i) {
            switch ((flavor + i) % 4) {
              case 0:
                co_await ctx.op(OpClass::Sinf);
                break;
              case 1:
                co_await ctx.op(dp ? OpClass::DAdd : OpClass::FMul);
                break;
              case 2:
                co_await ctx.constLoad(cbase + Addr(i % 8) * 64);
                break;
              case 3: {
                std::vector<Addr> lanes;
                for (unsigned t = 0; t < 4; ++t)
                    lanes.push_back(gbase + Addr(t) * 4);
                co_await ctx.atomicAdd(lanes, 1);
                break;
              }
            }
            if (useBarrier && i % 16 == 15)
                co_await ctx.syncthreads();
        }
        ctx.out(ctx.smid());
        co_return;
    };
    return k;
}

Tick
runScenario(const FuzzScenario &sc, std::uint64_t *outChecksum = nullptr)
{
    Device dev(sc.arch);
    dev.blockScheduler().setPolicy(sc.policy);
    Rng rng(sc.seed);

    std::vector<std::unique_ptr<HostContext>> hosts;
    unsigned numHosts = static_cast<unsigned>(rng.uniformInt(1, 3));
    for (unsigned h = 0; h < numHosts; ++h)
        hosts.push_back(std::make_unique<HostContext>(dev, sc.seed + h));

    std::vector<const KernelInstance *> launched;
    unsigned numKernels = static_cast<unsigned>(rng.uniformInt(2, 6));
    std::vector<Stream *> streams;
    for (unsigned i = 0; i < numKernels; ++i) {
        auto k = randomKernel(rng, sc.arch, i);
        HostContext &host = *hosts[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(hosts.size()) - 1))];
        Stream *stream;
        if (!streams.empty() && rng.flip()) {
            stream = streams[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(streams.size()) - 1))];
        } else {
            stream = &dev.createStream();
            streams.push_back(stream);
        }
        launched.push_back(&host.launch(*stream, std::move(k)));
    }
    dev.runUntilIdle();

    // Invariant: every kernel completed with one output per warp.
    std::uint64_t checksum = 0;
    for (const KernelInstance *k : launched) {
        EXPECT_TRUE(k->done()) << k->name();
        for (unsigned w = 0; w < k->totalWarps(); ++w) {
            EXPECT_EQ(k->out(w).size(), 1u)
                << k->name() << " warp " << w;
            if (!k->out(w).empty())
                checksum = checksum * 1099511628211ULL + k->out(w)[0];
        }
    }
    // Invariant: the device drained completely.
    EXPECT_TRUE(dev.liveBlocks().empty());
    for (unsigned s = 0; s < dev.numSms(); ++s) {
        EXPECT_TRUE(dev.sm(s).idle()) << "SM " << s;
        EXPECT_EQ(dev.sm(s).occupancy().threads, 0u);
        EXPECT_EQ(dev.sm(s).occupancy().smemBytes, 0u);
    }
    // Invariant: utilization accounting stays bounded.
    auto stats = collectStats(dev);
    for (const auto &p : stats.ports)
        EXPECT_LE(p.utilization, 1.0 + 1e-9) << p.name;

    if (outChecksum)
        *outChecksum = checksum;
    return dev.now();
}

class FuzzTest : public ::testing::TestWithParam<FuzzScenario>
{
};

TEST_P(FuzzTest, RandomMixCompletesCleanly)
{
    runScenario(GetParam());
}

TEST_P(FuzzTest, RunsAreDeterministicPerSeed)
{
    std::uint64_t c1 = 0, c2 = 0;
    Tick t1 = runScenario(GetParam(), &c1);
    Tick t2 = runScenario(GetParam(), &c2);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(c1, c2);
}

std::vector<FuzzScenario>
scenarios()
{
    std::vector<FuzzScenario> out;
    std::uint64_t seed = 1000;
    for (const auto &arch : allArchitectures()) {
        for (auto policy :
             {MultiprogPolicy::Leftover, MultiprogPolicy::SmkPreemptive,
              MultiprogPolicy::IntraSmPartition,
              MultiprogPolicy::InterSmPartition}) {
            for (int i = 0; i < 3; ++i)
                out.push_back(FuzzScenario{arch, policy, seed++});
        }
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzTest, ::testing::ValuesIn(scenarios()),
    [](const auto &info) {
        std::string n = info.param.arch.name + "_" +
                        multiprogPolicyName(info.param.policy) + "_" +
                        std::to_string(info.param.seed);
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Link-layer fuzzing: frame decode must be total (any mutation of a
// valid stream — flips, truncation, duplication, reordering — parses
// without crashing and never fabricates oversized payloads), and the
// ARQ state machine must terminate under arbitrary loss patterns, with
// `complete` implying exact payload delivery.
// ---------------------------------------------------------------------

TEST(LinkFuzz, FrameDecodeIsTotalUnderRandomMutation)
{
    using namespace covert::link;
    covert::Hamming74Code fec;
    Rng rng(42);
    for (int round = 0; round < 300; ++round) {
        std::size_t payloadBits =
            static_cast<std::size_t>(rng.uniformInt(1, 64));
        const covert::ErrorCode *code = rng.flip() ? &fec : nullptr;

        // A valid multi-frame stream...
        BitVec stream;
        unsigned nFrames = static_cast<unsigned>(rng.uniformInt(0, 4));
        for (unsigned i = 0; i < nFrames; ++i) {
            Frame f;
            f.type = static_cast<FrameType>(rng.uniformInt(0, 3));
            f.seq = static_cast<unsigned>(rng.uniformInt(0, 15));
            f.payload = randomBits(
                static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(payloadBits))),
                rng);
            BitVec wire = encodeFrame(f, payloadBits, code);
            stream.insert(stream.end(), wire.begin(), wire.end());
        }
        // ...mutated: flips, truncation, duplicated chunks, reordering.
        for (auto &b : stream)
            if (rng.bernoulli(0.02))
                b ^= 1;
        if (!stream.empty() && rng.flip())
            stream.resize(static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(stream.size()))));
        if (stream.size() > 16 && rng.flip()) {
            std::size_t at = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(stream.size() - 9)));
            BitVec chunk(stream.begin() + at, stream.begin() + at + 8);
            if (rng.flip())
                stream.insert(stream.end(), chunk.begin(), chunk.end());
            else
                stream.insert(stream.begin(), chunk.begin(),
                              chunk.end());
        }

        auto parsed = parseFrames(stream, payloadBits, code);
        EXPECT_LE(parsed.frames.size(),
                  stream.size() / frameWireBits(payloadBits, code) + 1);
        for (const auto &f : parsed.frames)
            EXPECT_LE(f.payload.size(), payloadBits);
    }
}

TEST(LinkFuzz, ArqTerminatesAndCompleteImpliesExactDelivery)
{
    using namespace covert::link;
    Rng rng(1337);
    unsigned completes = 0;
    for (int round = 0; round < 60; ++round) {
        LossyConfig noisy;
        noisy.flipProb = rng.uniformReal(0.0, 0.05);
        noisy.truncateProb = rng.uniformReal(0.0, 0.3);
        noisy.duplicateProb = rng.uniformReal(0.0, 0.3);
        noisy.dropProb = rng.uniformReal(0.0, 0.5);
        noisy.scaleFlipsWithPeriod = rng.flip();
        LossyTransport t(noisy, rng.raw());

        LinkConfig cfg;
        cfg.payloadBits =
            static_cast<std::size_t>(rng.uniformInt(4, 48));
        cfg.window = static_cast<unsigned>(rng.uniformInt(1, 8));
        cfg.maxRetries = static_cast<unsigned>(rng.uniformInt(1, 20));
        cfg.maxRounds = 800;
        cfg.adaptiveRate = rng.flip();
        ReliableLink link(t, cfg);

        BitVec payload = randomBits(
            static_cast<std::size_t>(rng.uniformInt(1, 300)), rng);
        auto r = link.send(payload);
        EXPECT_LE(r.rounds, cfg.maxRounds);
        if (r.complete) {
            ++completes;
            EXPECT_EQ(r.payload, payload) << "round " << round;
        } else {
            EXPECT_LE(r.payload.size(), payload.size());
        }
    }
    // The sweep must exercise both outcomes to mean anything.
    EXPECT_GT(completes, 0u);
    EXPECT_LT(completes, 60u);
}

// ---------------------------------------------------------------------
// Pilot/epoch framing fuzz: the session layer's pilot decoder must be
// total (malformed, truncated, and replayed inputs parse to a clean
// rejection, never UB), and the stale-epoch replay filter must behave
// correctly across the full 16-bit wraparound.
// ---------------------------------------------------------------------

TEST(PilotFuzz, RoundTripAndMutationAreTotal)
{
    using namespace covert::session;
    Rng rng(77);
    for (int round = 0; round < 400; ++round) {
        Pilot p;
        p.epoch =
            static_cast<std::uint16_t>(rng.uniformInt(0, 0xFFFF));
        p.rung = static_cast<std::uint8_t>(rng.uniformInt(0, 15));
        BitVec wire = encodePilot(p);
        ASSERT_EQ(wire.size(), pilotWireBits);

        PilotParse clean = parsePilot(wire);
        ASSERT_TRUE(clean.valid);
        EXPECT_EQ(clean.pilot.epoch, p.epoch);
        EXPECT_EQ(clean.pilot.rung, p.rung);

        // Mutate: leading garbage, random flips, truncation.
        BitVec noisy;
        std::size_t lead =
            static_cast<std::size_t>(rng.uniformInt(0, 24));
        for (std::size_t i = 0; i < lead; ++i)
            noisy.push_back(rng.flip() ? 1 : 0);
        noisy.insert(noisy.end(), wire.begin(), wire.end());
        for (auto &b : noisy)
            if (rng.bernoulli(0.05))
                b ^= 1;
        if (rng.flip())
            noisy.resize(static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(noisy.size()))));

        PilotParse parsed = parsePilot(noisy);
        if (parsed.valid)
            EXPECT_LE(parsed.pilot.rung, 15u);
    }
}

TEST(PilotFuzz, TruncatedPilotNeverParses)
{
    using namespace covert::session;
    BitVec wire = encodePilot({0xBEEF, 7});
    for (std::size_t len = 0; len < wire.size(); ++len) {
        BitVec prefix(wire.begin(),
                      wire.begin() + static_cast<long>(len));
        EXPECT_FALSE(parsePilot(prefix).valid) << "prefix " << len;
    }
}

TEST(PilotFuzz, AnySingleBitFlipIsRejected)
{
    // The 8-bit CRC catches every single-bit error, and a 36-bit
    // stream admits only the offset-0 sync window, so no one-bit
    // corruption can yield a valid pilot.
    using namespace covert::session;
    BitVec wire = encodePilot({0x1234, 3});
    for (std::size_t i = 0; i < wire.size(); ++i) {
        BitVec bad = wire;
        bad[i] ^= 1;
        EXPECT_FALSE(parsePilot(bad).valid) << "flipped bit " << i;
    }
}

TEST(PilotFuzz, StaleEpochRejectsOnlyTheTrailingHalfSpace)
{
    using namespace covert::session;
    // Recent past is stale; present and near future are not.
    EXPECT_TRUE(staleEpoch(5, 6));
    EXPECT_FALSE(staleEpoch(6, 6));
    EXPECT_FALSE(staleEpoch(7, 6));
    // Replays from before a wraparound are still stale, and a peer
    // that advanced across the wrap is still "ahead".
    EXPECT_TRUE(staleEpoch(0xFFFF, 3));
    EXPECT_FALSE(staleEpoch(3, 0xFFFF));
    // Full-space sweep of the half-space boundary.
    const std::uint16_t expect = 1000;
    for (unsigned d = 1; d < 0x8000; ++d) {
        EXPECT_TRUE(staleEpoch(
            static_cast<std::uint16_t>(expect - d), expect))
            << "delta " << d;
    }
    for (unsigned d = 0; d < 0x8000; ++d) {
        EXPECT_FALSE(staleEpoch(
            static_cast<std::uint16_t>(expect + d), expect))
            << "delta " << d;
    }
}

TEST(FuzzExtras, TemporalPartitioningFuzz)
{
    for (std::uint64_t seed = 2000; seed < 2006; ++seed) {
        FuzzScenario sc{keplerK40c(), MultiprogPolicy::Leftover, seed};
        Device dev(sc.arch);
        MitigationConfig m;
        m.temporalPartitioning = true;
        m.flushCachesBetweenKernels = true;
        dev.setMitigations(m);
        Rng rng(seed);
        HostContext host(dev, seed);
        std::vector<const KernelInstance *> launched;
        for (unsigned i = 0; i < 4; ++i) {
            launched.push_back(&host.launch(
                dev.createStream(), randomKernel(rng, sc.arch, i)));
        }
        dev.runUntilIdle();
        for (const auto *k : launched)
            EXPECT_TRUE(k->done()) << seed;
    }
}

} // namespace
} // namespace gpucc::gpu

/**
 * @file
 * Tests for the link layer (covert/link): framing is total and
 * self-synchronizing, the ARQ state machine delivers exactly-once
 * in-order payload over lossy transports, never deadlocks even at 100%
 * loss, adapts its rate to the error level — and, end to end, delivers
 * error-free payload over the real duplex channel while the adversarial
 * fault plan drives the raw channel's BER past 5%.
 */

#include <memory>

#include <gtest/gtest.h>

#include "common/bitstream.h"
#include "common/log.h"
#include "covert/coding/error_code.h"
#include "covert/link/frame.h"
#include "covert/link/reliable_link.h"
#include "covert/link/transport.h"
#include "covert/sync/duplex_channel.h"
#include "gpu/arch_params.h"
#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"

using namespace gpucc;
using namespace gpucc::covert::link;

namespace
{

BitVec
msg(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    return randomBits(n, rng);
}

} // namespace

TEST(Frame, RoundTripsThroughEncodeAndParse)
{
    Frame f;
    f.type = FrameType::Data;
    f.seq = 9;
    f.payload = msg(24, 1);

    BitVec wire = encodeFrame(f, 32);
    EXPECT_EQ(wire.size(), frameWireBits(32));
    auto parsed = parseFrames(wire, 32);
    ASSERT_EQ(parsed.frames.size(), 1u);
    EXPECT_EQ(parsed.crcFailures, 0u);
    EXPECT_EQ(parsed.frames[0].type, FrameType::Data);
    EXPECT_EQ(parsed.frames[0].seq, 9u);
    EXPECT_EQ(parsed.frames[0].payload, f.payload);
}

TEST(Frame, RoundTripsWithInnerFec)
{
    covert::Hamming74Code fec;
    Frame f;
    f.type = FrameType::Ack;
    f.seq = 3;
    f.payload = msg(16, 2);

    BitVec wire = encodeFrame(f, 16, &fec);
    EXPECT_EQ(wire.size(), frameWireBits(16, &fec));
    EXPECT_GT(wire.size(), frameWireBits(16)); // FEC costs rate

    // A single flipped bit inside the coded body must be corrected.
    wire[preambleBits + 5] ^= 1;
    auto parsed = parseFrames(wire, 16, &fec);
    ASSERT_EQ(parsed.frames.size(), 1u);
    EXPECT_EQ(parsed.frames[0].payload, f.payload);
}

TEST(Frame, ParserResyncsAfterGarbageAndFindsLaterFrames)
{
    Frame f;
    f.type = FrameType::Data;
    f.seq = 4;
    f.payload = msg(8, 3);

    BitVec stream = msg(37, 4); // leading garbage, odd offset
    BitVec wire = encodeFrame(f, 8);
    stream.insert(stream.end(), wire.begin(), wire.end());
    BitVec tail = msg(11, 5); // trailing partial garbage
    stream.insert(stream.end(), tail.begin(), tail.end());

    auto parsed = parseFrames(stream, 8);
    ASSERT_EQ(parsed.frames.size(), 1u);
    EXPECT_EQ(parsed.frames[0].seq, 4u);
    EXPECT_EQ(parsed.frames[0].payload, f.payload);
}

TEST(Frame, DecodeIsTotalOnArbitraryInput)
{
    // Truncated, empty, and random streams parse without incident.
    EXPECT_TRUE(parseFrames({}, 32).frames.empty());
    EXPECT_TRUE(parseFrames(msg(7, 6), 32).frames.empty());
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        BitVec junk = randomBits(static_cast<std::size_t>(
                                     rng.uniformInt(0, 400)),
                                 rng);
        auto parsed = parseFrames(junk, 16);
        for (const auto &fr : parsed.frames)
            EXPECT_LE(fr.payload.size(), 16u);
    }
}

TEST(Frame, CorruptedFrameIsRejectedNotMisdecoded)
{
    Frame f;
    f.type = FrameType::Data;
    f.seq = 1;
    f.payload = msg(32, 8);
    BitVec wire = encodeFrame(f, 32);
    wire[preambleBits + typeBits + 2] ^= 1; // flip a seq bit
    auto parsed = parseFrames(wire, 32);
    EXPECT_TRUE(parsed.frames.empty());
    EXPECT_EQ(parsed.crcFailures, 1u);
}

TEST(ReliableLink, DeliversOverACleanTransport)
{
    LossyTransport t({}, 1);
    ReliableLink link(t);
    BitVec payload = msg(200, 9);
    auto r = link.send(payload);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.payload, payload);
    EXPECT_EQ(r.retransmissions, 0u);
    EXPECT_GT(r.goodputBps, 0.0);
}

TEST(ReliableLink, StopAndWaitDeliversOverALossyTransport)
{
    LossyConfig noisy;
    noisy.flipProb = 0.01;
    noisy.scaleFlipsWithPeriod = false;
    LossyTransport t(noisy, 10);
    LinkConfig cfg;
    cfg.window = 1; // stop-and-wait
    cfg.adaptiveRate = false;
    ReliableLink link(t, cfg);
    BitVec payload = msg(160, 11);
    auto r = link.send(payload);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.payload, payload);
}

TEST(ReliableLink, SelectiveRepeatSurvivesHeavyCorruption)
{
    LossyConfig noisy;
    noisy.flipProb = 0.01;
    noisy.truncateProb = 0.05;
    noisy.duplicateProb = 0.05;
    noisy.dropProb = 0.05;
    noisy.scaleFlipsWithPeriod = false;
    LossyTransport t(noisy, 12);
    LinkConfig cfg;
    cfg.window = 4;
    cfg.adaptiveRate = false;
    cfg.maxRetries = 40;
    cfg.maxRounds = 6000;
    ReliableLink link(t, cfg);
    BitVec payload = msg(256, 13);
    auto r = link.send(payload);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.payload, payload);
    EXPECT_GT(r.retransmissions, 0u);
    EXPECT_GT(r.frameErrors, 0u);
}

TEST(ReliableLink, TotalLossTerminatesIncompleteWithoutDeadlock)
{
    LossyConfig dead;
    dead.dropProb = 1.0;
    LossyTransport t(dead, 14);
    LinkConfig cfg;
    cfg.maxRetries = 4;
    ReliableLink link(t, cfg);
    auto r = link.send(msg(64, 15));
    EXPECT_FALSE(r.complete);
    EXPECT_TRUE(r.payload.empty());
    EXPECT_GT(r.framesGivenUp, 0u);
    // Bounded: the retry budget, not maxRounds, ended the transfer.
    EXPECT_LT(r.rounds, cfg.maxRounds);
}

TEST(ReliableLink, AdaptiveRateWidensUnderErrorsAndRecovers)
{
    // Errors early on force the period wide; because the model's flip
    // probability shrinks as the period widens (wider symbols are more
    // robust), the link then runs clean and narrows back.
    LossyConfig noisy;
    noisy.flipProb = 0.04;
    noisy.scaleFlipsWithPeriod = true;
    LossyTransport t(noisy, 16);
    LinkConfig cfg;
    cfg.maxRounds = 3000;
    ReliableLink link(t, cfg);
    auto r = link.send(msg(256, 17));
    EXPECT_TRUE(r.complete);
    EXPECT_GT(t.periodScale(), 0.99);
    EXPECT_GT(r.frameErrors, 0u); // it did hit errors on the way
}

TEST(ReliableLink, EmptyPayloadIsTriviallyComplete)
{
    LossyTransport t({}, 18);
    ReliableLink link(t);
    auto r = link.send({});
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.rounds, 0u);
}

TEST(ReliableLink, InnerFecReducesRetransmissionsUnderBitNoise)
{
    LossyConfig noisy;
    noisy.flipProb = 0.012;
    noisy.scaleFlipsWithPeriod = false;
    covert::Hamming74Code fec;

    auto run = [&](const covert::ErrorCode *code) {
        LossyTransport t(noisy, 19);
        LinkConfig cfg;
        cfg.adaptiveRate = false;
        cfg.maxRounds = 4000;
        cfg.innerFec = code;
        ReliableLink link(t, cfg);
        return link.send(msg(256, 20));
    };
    auto plain = run(nullptr);
    auto coded = run(&fec);
    EXPECT_TRUE(plain.complete);
    EXPECT_TRUE(coded.complete);
    EXPECT_LT(coded.retransmissions, plain.retransmissions);
}

// ---------------------------------------------------------------------
// End-to-end acceptance: the reliable link over the real duplex L1
// channel under the adversarial fault plan. The raw channel must be
// visibly broken (>= 5% BER) while the ARQ link delivers the same
// payload with zero errors.
// ---------------------------------------------------------------------

TEST(ReliableLink, ZeroErrorsOverAdversarialDuplexChannel)
{
    setVerbose(false);
    const BitVec payload = msg(96, 42);
    const std::uint64_t faultSeed = 3;

    // Raw transfer, same plan: one unprotected exchange.
    double rawBer;
    {
        covert::DuplexSyncChannel chan(gpu::keplerK40c());
        sim::fault::FaultInjector inj(
            chan.harness().device(),
            sim::fault::FaultPlan::preset("adversarial"), faultSeed);
        inj.arm();
        auto r = chan.exchange(payload, {});
        rawBer = r.aToB.report.errorRate();
    }
    EXPECT_GE(rawBer, 0.05) << "adversarial plan too gentle";

    // Reliable transfer, same plan and seed.
    covert::DuplexSyncChannel chan(gpu::keplerK40c());
    sim::fault::FaultInjector inj(
        chan.harness().device(),
        sim::fault::FaultPlan::preset("adversarial"), faultSeed);
    inj.arm();
    DuplexLinkTransport t(chan);
    LinkConfig cfg;
    cfg.payloadBits = 32;
    cfg.window = 4;
    ReliableLink link(t, cfg);
    auto r = link.send(payload);

    EXPECT_TRUE(r.complete);
    ASSERT_EQ(r.payload.size(), payload.size());
    EXPECT_EQ(r.payload, payload) << "payload corrupted despite ARQ";
    EXPECT_GT(r.goodputBps, 0.0);
    EXPECT_LT(r.goodputBps, r.rawBandwidthBps);
}

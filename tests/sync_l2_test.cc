/**
 * @file
 * Tests for the synchronized L2 channel — Section 7.1 implements
 * synchronization "for the L1 and L2 covert channels"; this is the L2
 * (inter-SM) side.
 */

#include <gtest/gtest.h>

#include "covert/channels/l2_const_channel.h"
#include "covert/sync/sync_l2_channel.h"

namespace gpucc::covert
{
namespace
{

using gpu::ArchParams;

BitVec
msg(std::size_t n, std::uint64_t seed = 13)
{
    Rng rng(seed);
    return randomBits(n, rng);
}

class SyncL2Test : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(SyncL2Test, TransmitsErrorFree)
{
    SyncL2Channel ch(GetParam());
    auto r = ch.transmit(msg(96));
    EXPECT_TRUE(r.report.errorFree()) << GetParam().name;
}

TEST_P(SyncL2Test, RunsAcrossDifferentSms)
{
    SyncL2Channel ch(GetParam());
    ch.transmit(alternatingBits(8));
    unsigned smT = ~0u, smS = ~0u;
    for (const auto &k : ch.harness().device().kernels()) {
        if (k->name() == "sync-l2-trojan")
            smT = k->blockRecords()[0].smId;
        if (k->name() == "sync-l2-spy")
            smS = k->blockRecords()[0].smId;
    }
    EXPECT_NE(smT, smS) << GetParam().name;
}

TEST_P(SyncL2Test, SymbolsAreL2HitVsMemoryLatency)
{
    const ArchParams &arch = GetParam();
    SyncL2Channel ch(arch);
    auto r = ch.transmit(alternatingBits(32));
    EXPECT_NEAR(r.zeroMetric.mean(),
                static_cast<double>(arch.constMem.l2HitCycles), 5.0)
        << arch.name;
    EXPECT_NEAR(r.oneMetric.mean(),
                static_cast<double>(arch.constMem.memCycles), 8.0)
        << arch.name;
}

TEST_P(SyncL2Test, FasterThanLaunchPerBitL2)
{
    const ArchParams &arch = GetParam();
    SyncL2Channel sync(arch);
    L2ConstChannel baseline(arch);
    auto m = msg(64);
    EXPECT_GT(sync.transmit(m).bandwidthBps,
              1.8 * baseline.transmit(m).bandwidthBps)
        << arch.name;
}

INSTANTIATE_TEST_SUITE_P(AllGpus, SyncL2Test,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(SyncL2, L2TimingThresholdsDeriveFromTheHierarchy)
{
    auto arch = gpu::keplerK40c();
    auto t = SyncL2Channel::l2TimingFor(arch);
    EXPECT_GT(t.missThresholdCycles,
              static_cast<double>(arch.constMem.l2HitCycles));
    EXPECT_LT(t.missThresholdCycles,
              static_cast<double>(arch.constMem.memCycles));
    EXPECT_NEAR(t.dataThresholdCycles,
                0.5 * (arch.constMem.l2HitCycles + arch.constMem.memCycles),
                0.1);
}

TEST(SyncL2, LongMessageAndRuns)
{
    SyncL2Channel ch(gpu::keplerK40c());
    BitVec m;
    for (int i = 0; i < 256; ++i)
        m.push_back(i % 16 < 8 ? 1 : 0); // long runs
    EXPECT_TRUE(ch.transmit(m).report.errorFree());
}

TEST(SyncL2, L2SetStridesAliasIntoOneL1Set)
{
    // The structural property the channel relies on: every line of an
    // L2 set group maps to the same L1 set, so the (4-way) L1 thrashes
    // and never masks L2 state.
    auto arch = gpu::keplerK40c();
    const auto &l1 = arch.constMem.l1;
    const auto &l2 = arch.constMem.l2;
    for (unsigned set : {0u, 14u, 15u}) {
        Addr first = ~0ull;
        for (unsigned way = 0; way < l2.ways; ++way) {
            Addr a = Addr(set) * l2.lineBytes +
                     Addr(way) * l2.numSets() * l2.lineBytes;
            if (first == ~0ull)
                first = l1.setOf(a);
            EXPECT_EQ(l1.setOf(a), first) << "set " << set;
        }
    }
}

} // namespace
} // namespace gpucc::covert

/**
 * @file
 * Metamorphic properties over seeded random warp programs: oracles
 * that need no golden values. Each property relates two runs that must
 * agree (or be ordered) by construction:
 *
 *  - worker-thread invariance: per-trial state digests are identical
 *    for SweepRunner thread counts 1, 2 and 8;
 *  - replay stability: the same (program seed, harness seed) always
 *    reproduces the same digest;
 *  - quiet fault plan == no injector: an armed injector whose plan
 *    schedules nothing must not perturb architectural state;
 *  - instrumentation transparency: tracing attached vs detached, and
 *    metrics sampling attached vs detached, leave the architectural
 *    digest unchanged;
 *  - contention monotonicity: adding a resident warp never lowers
 *    warp 0's observed op latency;
 *  - profiler transparency: a phase profiler attached to a session run
 *    leaves the architectural digest trajectory unchanged;
 *  - blind-synthesis transparency: a quiet fault injector decorated
 *    onto every attacker device equals no injector at all (rolling lab
 *    digest), and an interleaved discovery run leaves an unrelated
 *    session's digest untouched.
 */

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.h"
#include "covert/characterize/fu_characterizer.h"
#include "covert/synth/synthesizer.h"
#include "gpu/device.h"
#include "gpu/host.h"
#include "sim/exec/sweep_runner.h"
#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"
#include "obs/profiler.h"
#include "sim/trace/trace.h"
#include "verify/digest.h"
#include "verify/program_gen.h"
#include "verify/scenarios.h"

namespace gpucc::verify
{
namespace
{

/** Run generated program @p seed on a fresh Kepler device; digest. */
std::uint64_t
runProgram(std::uint64_t seed, const DigestOptions &opts = {})
{
    gpu::Device dev(gpu::keplerK40c());
    gpu::HostContext host(dev, 5);
    host.setJitterUs(0.0);
    ProgramGen gen(gpu::keplerK40c());
    auto &s = dev.createStream();
    host.sync(host.launch(s, gen.makeKernel(seed)));
    return deviceDigest(dev, opts);
}

TEST(Property, DigestsAreThreadCountInvariant)
{
    setVerbose(false);
    constexpr std::size_t trials = 12;
    auto sweep = [&](unsigned threads) {
        sim::exec::SweepRunner runner(threads);
        return runner.runTrials(trials, 99,
                                [](std::size_t, std::uint64_t seed) {
                                    return runProgram(seed);
                                });
    };
    auto t1 = sweep(1);
    auto t2 = sweep(2);
    auto t8 = sweep(8);
    ASSERT_EQ(t1.size(), trials);
    EXPECT_EQ(t1, t2) << "2 workers changed a simulation result";
    EXPECT_EQ(t1, t8) << "8 workers changed a simulation result";
}

TEST(Property, ReplayOfTheSameSeedIsStable)
{
    setVerbose(false);
    for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadULL})
        EXPECT_EQ(runProgram(seed), runProgram(seed)) << seed;
}

TEST(Property, DistinctSeedsExploreDistinctPrograms)
{
    setVerbose(false);
    std::set<std::uint64_t> digests;
    for (std::uint64_t seed = 0; seed < 8; ++seed)
        digests.insert(runProgram(seed));
    EXPECT_GE(digests.size(), 7u)
        << "generator collapsed to near-identical programs";
}

/** One deterministic device run; knobs select the observers. */
std::uint64_t
observedRun(bool quietInjector, bool tracing, bool metricsSampling,
            const DigestOptions &opts)
{
    gpu::Device dev(gpu::keplerK40c());
    sim::trace::TraceSession session(sim::trace::allCats);
    if (tracing)
        dev.attachTrace(session, "prop");
    std::unique_ptr<sim::fault::FaultInjector> inj;
    if (quietInjector) {
        inj = std::make_unique<sim::fault::FaultInjector>(
            dev, sim::fault::FaultPlan::preset("quiet"), 7);
        inj->arm();
    }
    if (metricsSampling)
        dev.sampleMetricsEvery(200);
    gpu::HostContext host(dev, 5);
    host.setJitterUs(0.0);
    ProgramGen gen(gpu::keplerK40c());
    auto &s = dev.createStream();
    host.sync(host.launch(s, gen.makeKernel(21)));
    host.syncAll();
    return deviceDigest(dev, opts);
}

TEST(Property, QuietFaultPlanEqualsNoInjector)
{
    setVerbose(false);
    // Strict digest (event queue included): a quiet plan must schedule
    // nothing at all.
    DigestOptions strict;
    EXPECT_EQ(observedRun(true, false, false, strict),
              observedRun(false, false, false, strict));
}

TEST(Property, TracingAttachEqualsDetach)
{
    setVerbose(false);
    DigestOptions strict;
    EXPECT_EQ(observedRun(false, true, false, strict),
              observedRun(false, false, false, strict))
        << "trace hooks must be architecturally invisible";
}

TEST(Property, MetricsSamplingEqualsDetached)
{
    setVerbose(false);
    // The sampler legitimately appends its own events, so compare the
    // architectural end state minus schedule bookkeeping.
    DigestOptions arch;
    arch.deviceClock = false;
    arch.eventQueue = false;
    EXPECT_EQ(observedRun(false, false, true, arch),
              observedRun(false, false, false, arch))
        << "metrics sampling must not perturb what it observes";
}

/** Digest of one generated program with mitigations toggled mid-run
 *  (fuzz + way partitioning on, then everything back off), with the
 *  clock-elision fast path on or off. */
std::uint64_t
runToggledProgram(std::uint64_t seed, bool elision)
{
    gpu::Device dev(gpu::keplerK40c());
    dev.setElisionEnabled(elision);
    gpu::HostContext host(dev, 5);
    host.setJitterUs(0.0);
    gpu::MitigationConfig mid;
    mid.timerFuzzCycles = 128;
    mid.cacheWayPartitioning = true;
    gpu::MitigationSchedule plan;
    plan.steps.push_back({2000, mid, "defenses up"});
    plan.steps.push_back({20000, gpu::MitigationConfig{}, "back off"});
    gpu::MitigationScheduler sched(dev, plan);
    sched.arm();
    ProgramGen gen(gpu::keplerK40c());
    host.sync(host.launch(dev.createStream(), gen.makeKernel(seed)));
    host.syncAll();
    // Elided and unelided runs legitimately differ in how many events
    // they scheduled; the architectural end state must not.
    DigestOptions arch;
    arch.deviceClock = false;
    arch.eventQueue = false;
    return deviceDigest(dev, arch);
}

TEST(Property, MidRunMitigationToggleEqualsElisionDisabled)
{
    setVerbose(false);
    // A runtime toggle is a non-neutral event: the elision fast path
    // must never let a warp's local clock skip past it and observe
    // pre-toggle timing after the defense went up. Pin toggle-with-
    // elision against elision force-disabled, fanned at 1/2/8 workers
    // (the fuzz stream is stateless, so worker count is irrelevant).
    constexpr std::size_t trials = 8;
    std::vector<std::uint64_t> reference;
    for (unsigned threads : {1u, 2u, 8u}) {
        sim::exec::SweepRunner runner(threads);
        auto elided = runner.runTrials(
            trials, 77, [](std::size_t, std::uint64_t seed) {
                return runToggledProgram(seed, true);
            });
        auto plain = runner.runTrials(
            trials, 77, [](std::size_t, std::uint64_t seed) {
                return runToggledProgram(seed, false);
            });
        EXPECT_EQ(elided, plain)
            << "elision skipped a mitigation toggle at " << threads
            << " workers";
        if (reference.empty())
            reference = elided;
        else
            EXPECT_EQ(elided, reference)
                << threads << " workers changed a toggled run";
    }
}

TEST(Property, ProfilerAttachEqualsDetach)
{
    setVerbose(false);
    // The phase profiler reads the device clock; it must never write
    // anything the simulation can see. Same session, same plan, same
    // seed — with a profiler attached and without — must land on the
    // same architectural end-state digest and the same measurement.
    const BitVec payload = scenarioPayload(96, 7);
    for (const char *plan : {"quiet", "eviction"}) {
        SessionMeasurement bare =
            measureSessionOverPlan(gpu::keplerK40c(), plan, 7, payload);

        obs::Profiler prof;
        SessionMeasurement profiled = measureSessionOverPlan(
            gpu::keplerK40c(), plan, 7, payload, &prof);

        EXPECT_EQ(profiled.deviceDigest, bare.deviceDigest)
            << plan << ": profiler attachment perturbed the run";
        EXPECT_EQ(profiled.complete, bare.complete);
        EXPECT_DOUBLE_EQ(profiled.goodputBps, bare.goodputBps);
        EXPECT_DOUBLE_EQ(profiled.residualBer, bare.residualBer);
        EXPECT_EQ(profiled.resyncs, bare.resyncs);
        EXPECT_EQ(profiled.recalibrations, bare.recalibrations);
        // ...and the profiler did actually observe the run.
        EXPECT_GT(prof.totalCycles(), 0u);
        EXPECT_GT(prof.phase(obs::phase::kTransfer).cycles, 0u);
    }
}

TEST(Property, QuietDecoratorEqualsUndecoratedSynthesis)
{
    setVerbose(false);
    // The AttackerLab decorator attaches an observer to every device
    // the attacker touches. With a quiet fault plan (schedules
    // nothing), the entire blind discovery — every probe on every
    // retired device, folded into the rolling lab digest — must be
    // bit-identical to a run with no injector at all.
    covert::synth::AttackerLab bare(gpu::keplerK40c());
    covert::synth::SynthesizedPlan p0 = covert::synth::synthesize(bare);

    covert::synth::AttackerLab decorated(gpu::keplerK40c());
    unsigned attached = 0;
    decorated.setDecorator([&](gpu::Device &dev) {
        ++attached;
        auto inj = std::make_shared<sim::fault::FaultInjector>(
            dev, sim::fault::FaultPlan::preset("quiet"), 7);
        inj->arm();
        return inj;
    });
    covert::synth::SynthesizedPlan p1 =
        covert::synth::synthesize(decorated);

    EXPECT_GT(attached, 0u) << "decorator never ran";
    EXPECT_EQ(p1.discoveryDigest, p0.discoveryDigest)
        << "quiet injector perturbed blind discovery";
    EXPECT_EQ(p1.l1.sizeBytes, p0.l1.sizeBytes);
    EXPECT_EQ(p1.l1.ways, p0.l1.ways);
    EXPECT_DOUBLE_EQ(p1.thresholds.hitCycles, p0.thresholds.hitCycles);
    EXPECT_DOUBLE_EQ(p1.thresholds.missCycles, p0.thresholds.missCycles);
    EXPECT_EQ(p1.evictionSet.offsets, p0.evictionSet.offsets);
}

TEST(Property, InterleavedSynthesisLeavesSessionDigestUntouched)
{
    setVerbose(false);
    // Blind discovery spends ~80 devices of its own; none of that may
    // leak into an unrelated session's trajectory through hidden
    // global state. Same session before and after a full synthesis
    // must land on the same device digest and measurements.
    const BitVec payload = scenarioPayload(96, 7);
    SessionMeasurement before =
        measureSessionOverPlan(gpu::keplerK40c(), "quiet", 7, payload);

    covert::synth::AttackerLab lab(gpu::keplerK40c());
    (void)covert::synth::synthesize(lab);

    SessionMeasurement after =
        measureSessionOverPlan(gpu::keplerK40c(), "quiet", 7, payload);
    EXPECT_EQ(after.deviceDigest, before.deviceDigest)
        << "a discovery run perturbed an unrelated session";
    EXPECT_EQ(after.complete, before.complete);
    EXPECT_DOUBLE_EQ(after.goodputBps, before.goodputBps);
    EXPECT_DOUBLE_EQ(after.residualBer, before.residualBer);
}

TEST(Property, ContentionNeverLowersWarp0Latency)
{
    setVerbose(false);
    for (const auto &arch : gpu::allArchitectures()) {
        covert::FuCharacterizer fc(arch);
        auto curve = fc.curve(gpu::OpClass::Sinf, 16);
        for (std::size_t i = 1; i < curve.size(); ++i) {
            EXPECT_GE(curve[i].warp0AvgCycles,
                      curve[i - 1].warp0AvgCycles - 1e-9)
                << arch.name << ": adding warp " << i + 1
                << " lowered warp 0 latency";
        }
    }
}

} // namespace
} // namespace gpucc::verify

/**
 * @file
 * Integration tests of the GPU core: kernel execution through the
 * coroutine machinery, block placement (round-robin + leftover policy),
 * warp->scheduler assignment, stream semantics, barriers, contention,
 * and the host launch path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gpu/device.h"
#include "gpu/host.h"
#include "gpu/warp.h"
#include "gpu/warp_ctx.h"

namespace gpucc::gpu
{
namespace
{

/** Kernel writing (smid, blockId, schedulerId) per warp. */
KernelLaunch
probeKernel(unsigned blocks, unsigned threads)
{
    KernelLaunch k;
    k.name = "probe";
    k.config.gridBlocks = blocks;
    k.config.threadsPerBlock = threads;
    k.body = [](WarpCtx &ctx) -> WarpProgram {
        std::uint64_t t0 = co_await ctx.clock();
        ctx.out(ctx.smid());
        ctx.out(ctx.blockId());
        ctx.out(ctx.schedulerId());
        ctx.out(t0);
        co_return;
    };
    return k;
}

TEST(Device, ArchPresetsConstructCorrectSmCounts)
{
    for (const auto &arch : allArchitectures()) {
        Device dev(arch);
        EXPECT_EQ(dev.numSms(), arch.numSms);
        EXPECT_EQ(dev.sm(0).numSchedulers(), arch.schedulersPerSm);
    }
}

TEST(Device, Table1ResourceCounts)
{
    auto f = fermiC2075();
    EXPECT_EQ(f.schedulersPerSm, 2u);
    EXPECT_EQ(f.spUnits, 32u);
    EXPECT_EQ(f.dpUnits, 16u);
    EXPECT_EQ(f.sfuUnits, 4u);
    EXPECT_EQ(f.ldstUnits, 16u);
    auto k = keplerK40c();
    EXPECT_EQ(k.schedulersPerSm, 4u);
    EXPECT_EQ(k.spUnits, 192u);
    EXPECT_EQ(k.dpUnits, 64u);
    EXPECT_EQ(k.sfuUnits, 32u);
    auto m = maxwellM4000();
    EXPECT_EQ(m.dpUnits, 0u);
    EXPECT_FALSE(m.supports(OpClass::DAdd));
}

TEST(Device, BlocksPlacedRoundRobinAcrossSms)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s = host.createStream();
    auto &k = host.launch(s, probeKernel(15, 128));
    host.sync(k);
    ASSERT_TRUE(k.done());
    // Block b must have landed on SM b (fresh device, cursor at 0).
    for (const auto &rec : k.blockRecords())
        EXPECT_EQ(rec.smId, rec.blockId);
}

TEST(Device, WarpSchedulerAssignmentIsRoundRobin)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    auto &s = host.createStream();
    auto &k = host.launch(s, probeKernel(1, 8 * warpSize));
    host.sync(k);
    for (unsigned w = 0; w < 8; ++w) {
        const auto &out = k.out(w);
        ASSERT_GE(out.size(), 3u);
        EXPECT_EQ(out[2], w % 4);
    }
}

TEST(Device, TwoKernelsCoResideOnEverySm)
{
    // The Section 3.1 co-location recipe: each kernel launches one block
    // per SM; the leftover policy co-locates them pairwise.
    Device dev(keplerK40c());
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s1 = host.createStream();
    auto &s2 = host.createStream();
    auto &k1 = host.launch(s1, probeKernel(15, 128));
    auto &k2 = host.launch(s2, probeKernel(15, 128));
    host.sync(k1);
    host.sync(k2);
    std::set<unsigned> sms1, sms2;
    for (const auto &r : k1.blockRecords())
        sms1.insert(r.smId);
    for (const auto &r : k2.blockRecords())
        sms2.insert(r.smId);
    EXPECT_EQ(sms1.size(), 15u);
    EXPECT_EQ(sms2.size(), 15u);
}

TEST(Device, LeftoverPolicyQueuesWhenSmsFull)
{
    // Kernel 1 saturates every SM's thread capacity; kernel 2 must wait
    // for it to finish entirely.
    Device dev(keplerK40c());
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s1 = host.createStream();
    auto &s2 = host.createStream();

    KernelLaunch big = probeKernel(15, 2048);
    big.name = "big";
    KernelLaunch late = probeKernel(1, 32);
    late.name = "late";

    auto &k1 = host.launch(s1, big);
    auto &k2 = host.launch(s2, late);
    host.sync(k2);
    EXPECT_TRUE(k1.done());
    // k2's block could only start after some k1 block retired.
    EXPECT_GE(k2.startTick(), k1.blockRecords()[0].endTick);
}

TEST(Device, ExclusiveColocationViaSharedMemorySaturation)
{
    // Section 8: spy claims all 48 KB of shared memory per SM, trojan
    // claims none -> they co-locate; an interferer that needs smem is
    // locked out until the spy retires.
    Device dev(keplerK40c());
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s1 = host.createStream();
    auto &s2 = host.createStream();
    auto &s3 = host.createStream();

    // Spy and trojan run long enough (~40 us) to overlap despite the
    // launch latency between them.
    auto longKernel = [](const char *name) {
        KernelLaunch k;
        k.name = name;
        k.config.gridBlocks = 15;
        k.config.threadsPerBlock = 128;
        k.body = [](WarpCtx &ctx) -> WarpProgram {
            for (int i = 0; i < 1500; ++i)
                co_await ctx.op(OpClass::Sinf);
            co_return;
        };
        return k;
    };
    KernelLaunch spy = longKernel("spy");
    spy.config.smemBytesPerBlock = 48 * 1024;
    KernelLaunch trojan = longKernel("trojan");
    KernelLaunch victim = probeKernel(15, 128);
    victim.name = "victim";
    victim.config.smemBytesPerBlock = 1024;

    auto &kSpy = host.launch(s1, spy);
    auto &kTrojan = host.launch(s2, trojan);
    auto &kVictim = host.launch(s3, victim);
    host.sync(kVictim);
    host.sync(kTrojan);

    EXPECT_TRUE(kSpy.done());
    EXPECT_TRUE(kTrojan.done());
    // Trojan overlapped the spy; the victim started strictly after the
    // spy's last block retired.
    EXPECT_LT(kTrojan.startTick(), kSpy.endTick());
    EXPECT_GE(kVictim.startTick(), kSpy.endTick());
}

TEST(Device, StreamSerializesItsOwnKernels)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s = host.createStream();
    auto &k1 = host.launch(s, probeKernel(15, 128));
    auto &k2 = host.launch(s, probeKernel(15, 128));
    host.sync(k2);
    EXPECT_GE(k2.startTick(), k1.endTick());
}

TEST(Device, DifferentStreamsOverlap)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    host.setJitterUs(0.0);

    // A long-running kernel (many sinf loops) on stream 1.
    KernelLaunch slow;
    slow.name = "slow";
    slow.config.gridBlocks = 1;
    slow.config.threadsPerBlock = 32;
    slow.body = [](WarpCtx &ctx) -> WarpProgram {
        for (int i = 0; i < 400; ++i)
            co_await ctx.op(OpClass::Sinf);
        co_return;
    };

    auto &s1 = host.createStream();
    auto &s2 = host.createStream();
    auto &k1 = host.launch(s1, slow);
    auto &k2 = host.launch(s2, probeKernel(1, 32));
    host.sync(k1);
    host.sync(k2);
    // k2 started before k1 ended: true concurrency.
    EXPECT_LT(k2.startTick(), k1.endTick());
}

TEST(Warp, ClockIsMonotonicAndQuantized)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    std::vector<std::uint64_t> clocks;

    KernelLaunch k;
    k.name = "clocks";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 32;
    k.body = [&clocks](WarpCtx &ctx) -> WarpProgram {
        for (int i = 0; i < 5; ++i) {
            clocks.push_back(co_await ctx.clock());
            co_await ctx.op(OpClass::FAdd);
        }
        co_return;
    };
    auto &s = host.createStream();
    host.sync(host.launch(s, k));

    ASSERT_EQ(clocks.size(), 5u);
    auto quantum = keplerK40c().clockQuantumCycles;
    for (std::size_t i = 0; i < clocks.size(); ++i) {
        EXPECT_EQ(clocks[i] % quantum, 0u);
        if (i > 0) {
            EXPECT_GE(clocks[i], clocks[i - 1]);
        }
    }
    EXPECT_GT(clocks.back(), clocks.front());
}

TEST(Warp, SingleWarpOpLatencyMatchesBaseTiming)
{
    // One warp, no contention: latency == occupancy + pipeline latency.
    for (const auto &arch : allArchitectures()) {
        Device dev(arch);
        HostContext host(dev);
        std::uint64_t lat = 0;
        KernelLaunch k;
        k.name = "lat";
        k.config.gridBlocks = 1;
        k.config.threadsPerBlock = 32;
        k.body = [&lat](WarpCtx &ctx) -> WarpProgram {
            co_await ctx.op(OpClass::Sinf); // warm
            lat = co_await ctx.op(OpClass::Sinf);
            co_return;
        };
        auto &s = host.createStream();
        host.sync(host.launch(s, k));
        const auto &t = arch.timing(OpClass::Sinf);
        Cycle expect = t.latencyCycles + ticksToCycles(t.occTicks);
        EXPECT_NEAR(static_cast<double>(lat), static_cast<double>(expect),
                    1.5)
            << arch.name;
    }
}

TEST(Warp, PaperSinfBaseLatencies)
{
    // Section 5.2: ~41 (Fermi), ~18 (Kepler), ~15 (Maxwell) uncontended.
    std::map<std::string, double> expected = {
        {"Tesla C2075", 41.0}, {"Tesla K40C", 18.0}, {"Quadro M4000", 15.0}};
    for (const auto &arch : allArchitectures()) {
        const auto &t = arch.timing(OpClass::Sinf);
        double base = static_cast<double>(t.latencyCycles) +
                      ticksToCyclesF(t.occTicks);
        EXPECT_NEAR(base, expected[arch.name], 1.0) << arch.name;
    }
}

TEST(Warp, SameSchedulerWarpsContendOnSfu)
{
    // 24 warps on Kepler = 6 per scheduler; the paper reports ~24 cycles
    // of per-op latency under this load (vs 18 uncontended).
    Device dev(keplerK40c());
    HostContext host(dev);
    KernelLaunch k;
    k.name = "contend";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 24 * warpSize;
    k.body = [](WarpCtx &ctx) -> WarpProgram {
        std::uint64_t total = 0;
        const int iters = 128;
        for (int i = 0; i < iters; ++i)
            total += co_await ctx.op(OpClass::Sinf);
        ctx.out(total / iters);
        co_return;
    };
    auto &s = host.createStream();
    auto &inst = host.launch(s, k);
    host.sync(inst);
    double w0 = static_cast<double>(inst.out(0).at(0));
    EXPECT_NEAR(w0, 24.0, 3.0);
}

TEST(Warp, BarrierReleasesAllWarpsTogether)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    std::vector<std::uint64_t> after;
    KernelLaunch k;
    k.name = "barrier";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 4 * warpSize;
    k.body = [&after](WarpCtx &ctx) -> WarpProgram {
        // Warp w delays ~w*200 cycles before the barrier.
        for (unsigned i = 0; i < ctx.warpInBlock(); ++i)
            co_await ctx.sleep(200);
        co_await ctx.syncthreads();
        after.push_back(co_await ctx.clock());
        co_return;
    };
    auto &s = host.createStream();
    host.sync(host.launch(s, k));
    ASSERT_EQ(after.size(), 4u);
    auto [mn, mx] = std::minmax_element(after.begin(), after.end());
    // All warps resumed within a few cycles of each other, and only
    // after the slowest warp's 600-cycle delay.
    EXPECT_LE(*mx - *mn, 16u);
    EXPECT_GE(*mn, 600u);
}

TEST(Warp, AtomicsAreFunctionallyCorrectAcrossWarps)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    Addr counter = dev.allocGlobal(8);
    KernelLaunch k;
    k.name = "atomics";
    k.config.gridBlocks = 4;
    k.config.threadsPerBlock = 64;
    k.body = [counter](WarpCtx &ctx) -> WarpProgram {
        std::vector<Addr> lanes(warpSize, counter);
        co_await ctx.atomicAdd(lanes, 1);
        co_return;
    };
    auto &s = host.createStream();
    host.sync(host.launch(s, k));
    // 4 blocks * 2 warps * 32 lanes.
    EXPECT_EQ(dev.globalMem().peek(counter), 4u * 2u * 32u);
}

TEST(Host, LaunchOverheadAndSyncAdvanceHostTime)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s = host.createStream();
    EXPECT_EQ(host.now(), 0u);
    auto &k = host.launch(s, probeKernel(1, 32));
    Tick afterLaunch = host.now();
    EXPECT_GT(afterLaunch, 0u);
    host.sync(k);
    EXPECT_GT(host.now(), afterLaunch);
    EXPECT_GE(k.startTick(),
              dev.arch().ticksFromUs(dev.arch().host.launchLatencyUs));
}

TEST(Host, JitterIsDeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        Device dev(keplerK40c());
        HostContext host(dev, seed);
        auto &s = host.createStream();
        auto &k = host.launch(s, probeKernel(1, 32));
        host.sync(k);
        return k.startTick();
    };
    EXPECT_EQ(run(9), run(9));
    EXPECT_NE(run(9), run(10));
}

TEST(Host, StarvedKernelIsFatal)
{
    // A block demanding more smem than the per-block cap can never run.
    Device dev(keplerK40c());
    HostContext host(dev);
    auto &s = host.createStream();
    KernelLaunch k = probeKernel(1, 32);
    k.config.smemBytesPerBlock = 100 * 1024;
    auto &inst = host.launch(s, k);
    EXPECT_EXIT(host.sync(inst), ::testing::ExitedWithCode(1), "starved");
}

TEST(Device, BlockRecordsTrackLifetimes)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    auto &s = host.createStream();
    auto &k = host.launch(s, probeKernel(3, 64));
    host.sync(k);
    ASSERT_EQ(k.blockRecords().size(), 3u);
    for (const auto &r : k.blockRecords()) {
        EXPECT_GT(r.endTick, r.startTick);
        EXPECT_LT(r.smId, dev.numSms());
    }
}

TEST(Device, AllocatorsAlignAndAdvance)
{
    Device dev(keplerK40c());
    Addr a = dev.allocConst(100, 256);
    Addr b = dev.allocConst(100, 256);
    EXPECT_EQ(a % 256, 0u);
    EXPECT_EQ(b % 256, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_NE(dev.allocGlobal(8), dev.allocGlobal(8));
}

} // namespace
} // namespace gpucc::gpu

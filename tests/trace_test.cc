/**
 * @file
 * Tests for the simulation tracer (sim/trace): category parsing, the
 * per-shard buffer contract (cap + dropped counter), the well-formed
 * Chrome trace-event export, kernel/block span nesting on a real
 * device run, the disabled-hook no-op guarantee, and the determinism
 * contract — the exported file is byte-identical for any worker thread
 * count (the GPUCC_THREADS invariant).
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.h"
#include "covert/trace/flight_recorder.h"
#include "gpu/device.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"
#include "sim/exec/sweep_runner.h"
#include "sim/trace/trace.h"

namespace gpucc::sim::trace
{
namespace
{

TEST(Trace, ParseCategoryLists)
{
    EXPECT_EQ(parseCats("kernel"),
              static_cast<std::uint32_t>(Cat::Kernel));
    EXPECT_EQ(parseCats("kernel,cache,link"),
              static_cast<std::uint32_t>(Cat::Kernel) |
                  static_cast<std::uint32_t>(Cat::Cache) |
                  static_cast<std::uint32_t>(Cat::Link));
    EXPECT_EQ(parseCats("all"), allCats);
    EXPECT_STREQ(catName(Cat::Fault), "fault");
}

TEST(Trace, ShardHonorsMaskAndCap)
{
    TraceSession session(static_cast<std::uint32_t>(Cat::Cache));
    Shard *sh = session.makeShard("dev");
    EXPECT_TRUE(sh->wants(Cat::Cache));
    EXPECT_FALSE(sh->wants(Cat::Kernel)) << "category not enabled";

    sh->setCap(2);
    sh->instant(Cat::Cache, 1, "a", 10);
    sh->instant(Cat::Cache, 1, "b", 20);
    EXPECT_FALSE(sh->wants(Cat::Cache)) << "buffer full";
    sh->instant(Cat::Cache, 1, "c", 30);
    EXPECT_EQ(sh->recorded().size(), 2u);
    EXPECT_EQ(sh->dropped(), 1u);
}

TEST(Trace, DeviceHookIsNullWhenTracingIsOff)
{
    // The zero-cost contract: an unattached device reports a null
    // shard, so every instrumentation site is one null-check.
    gpu::Device dev(gpu::keplerK40c());
    EXPECT_EQ(dev.traceShard(), nullptr);
}

/** Count occurrences of @p needle in @p hay. */
std::size_t
countOf(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t at = hay.find(needle); at != std::string::npos;
         at = hay.find(needle, at + needle.size()))
        ++n;
    return n;
}

TEST(Trace, ChromeExportIsWellFormed)
{
    TraceSession session(allCats);
    Shard *sh = session.makeShard("device0");
    sh->nameRow(7, "my row");
    sh->span(Cat::Kernel, 7, "work", cyclesToTicks(Cycle{100}),
             cyclesToTicks(Cycle{300}), "kernel", 42);
    sh->instant(Cat::Cache, 8, "l1-miss", cyclesToTicks(Cycle{150}),
                "set", 5);
    sh->counter(Cat::Fault, 9, "pressure", cyclesToTicks(Cycle{200}),
                "value", 3);

    std::ostringstream os;
    session.writeChromeTrace(os);
    std::string json = os.str();

    // Structure: one traceEvents array, metadata rows, balanced
    // braces/brackets (no label in this test contains either).
    EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
    EXPECT_EQ(countOf(json, "{"), countOf(json, "}"));
    EXPECT_EQ(countOf(json, "["), countOf(json, "]"));
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"device0\""), std::string::npos);
    EXPECT_NE(json.find("\"my row\""), std::string::npos);
    // The span: complete event with cycle-unit timestamps and its arg.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":200"), std::string::npos);
    EXPECT_NE(json.find("\"kernel\":42"), std::string::npos);
    // Instant and counter phases, category names, footer.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"cache\""), std::string::npos);
    EXPECT_NE(json.find("\"droppedEvents\":0"), std::string::npos);
}

/** A tiny two-block kernel with a few cache accesses. */
gpu::KernelLaunch
tracedKernel()
{
    gpu::KernelLaunch k;
    k.name = "traced";
    k.config.gridBlocks = 2;
    k.config.threadsPerBlock = 64;
    std::vector<Addr> addrs{0, 64};
    k.body = [addrs](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        for (int i = 0; i < 20; ++i)
            co_await ctx.op(gpu::OpClass::FAdd);
        co_await ctx.constLoadSeq(addrs);
        co_return;
    };
    return k;
}

TEST(Trace, BlockSpansNestInsideTheKernelSpan)
{
    TraceSession session(allCats);
    gpu::Device dev(gpu::keplerK40c());
    dev.attachTrace(session, "device0");
    gpu::HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s = dev.createStream();
    host.sync(host.launch(s, tracedKernel()));

    const Shard *sh = dev.traceShard();
    ASSERT_NE(sh, nullptr);
    const Event *kernelSpan = nullptr;
    std::vector<const Event *> blockSpans;
    for (const Event &e : sh->recorded()) {
        if (e.cat != Cat::Kernel || e.phase != 'X')
            continue;
        if (e.tid >= 10 && e.tid < 100)
            kernelSpan = &e;
        else if (e.tid >= 100 && e.tid < 1000)
            blockSpans.push_back(&e);
    }
    ASSERT_NE(kernelSpan, nullptr);
    ASSERT_EQ(blockSpans.size(), 2u) << "one span per block";
    for (const Event *b : blockSpans) {
        EXPECT_GE(b->ts, kernelSpan->ts);
        EXPECT_LE(b->ts + b->dur, kernelSpan->ts + kernelSpan->dur)
            << "block span must nest inside its kernel span";
    }
    // The cache category recorded the const loads too.
    bool sawCache = false;
    for (const Event &e : sh->recorded())
        sawCache = sawCache || e.cat == Cat::Cache;
    EXPECT_TRUE(sawCache);
}

/** Run @p trials traced device simulations on @p threads workers and
 *  export the merged trace. */
std::string
tracedSweep(unsigned threads, std::size_t trials)
{
    TraceSession session(allCats);
    exec::SweepRunner runner(threads);
    runner.runTrials(trials, 7, [&](std::size_t i, std::uint64_t) {
        gpu::Device dev(gpu::keplerK40c());
        dev.attachTrace(session, strfmt("trial%zu", i));
        gpu::HostContext host(dev);
        host.setJitterUs(0.0);
        auto &s = dev.createStream();
        host.sync(host.launch(s, tracedKernel()));
        return 0;
    });
    std::ostringstream os;
    session.writeChromeTrace(os);
    return os.str();
}

TEST(Trace, ExportIsIdenticalForAnyThreadCount)
{
    std::string serial = tracedSweep(1, 4);
    std::string parallel = tracedSweep(4, 4);
    EXPECT_EQ(serial, parallel)
        << "shard label ordering must make the export thread-invariant";
}

TEST(Trace, ShardMergeIsByteIdenticalAcrossWorkerCounts)
{
    // Pin the GPUCC_THREADS contract at the documented set {1, 2, 8}:
    // the merged Chrome trace must not move a single byte.
    std::string one = tracedSweep(1, 6);
    std::string two = tracedSweep(2, 6);
    std::string eight = tracedSweep(8, 6);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
}

TEST(Trace, DefaultCapIsOneMebiEventAndDropsAreExported)
{
    TraceSession fresh(allCats);
    EXPECT_EQ(fresh.makeShard("d")->capacity(), std::size_t{1} << 20)
        << "retention cap regression";

    // Overflow a tiny cap and check the drop counter lands in the
    // export footer (the signal that a trace is incomplete).
    TraceSession session(allCats);
    Shard *sh = session.makeShard("dev");
    sh->setCap(3);
    for (unsigned i = 0; i < 8; ++i)
        sh->instant(Cat::Cache, 1, "e", 10 * (i + 1));
    EXPECT_EQ(sh->dropped(), 5u);
    std::ostringstream os;
    session.writeChromeTrace(os);
    EXPECT_NE(os.str().find("\"droppedEvents\":5"), std::string::npos)
        << "dropped-event counter must be exported";
}

TEST(FlightRecorder, RecordsSymbolsAndMargins)
{
    covert::trace::FlightRecorder rec("unit");
    rec.record({0, 0, 100, 80.0, 50.0, true, true});   // margin +30
    rec.record({1, 0, 200, 20.0, 50.0, false, false}); // margin +30
    rec.record({2, 1, 300, 60.0, 50.0, true, false});  // decode error
    rec.record({3, 1, 400, 52.0, 50.0, true, true});   // margin +2
    EXPECT_EQ(rec.records().size(), 4u);
    EXPECT_EQ(rec.errorCount(), 1u);
    EXPECT_NEAR(rec.errorRate(), 0.25, 1e-12);
    // Worst margin over the *correct* decodes: the +2 near-miss shows
    // how close the channel came to flipping another bit.
    EXPECT_DOUBLE_EQ(rec.worstMargin(), 2.0);
    EXPECT_DOUBLE_EQ(decisionMargin(rec.records()[2]), -10.0);

    std::string json = rec.toJson();
    EXPECT_NE(json.find("\"channel\":\"unit\""), std::string::npos);
    EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
    EXPECT_EQ(countOf(json, "\"index\":"), 4u);
}

TEST(FlightRecorder, CapDropsAndCountsLikeTheTracer)
{
    covert::trace::FlightRecorder rec("capped");
    // Default retention matches the tracer's per-shard contract.
    EXPECT_EQ(rec.capacity(), std::size_t{1} << 20);

    rec.setCap(4);
    for (int i = 0; i < 10; ++i) {
        // Symbol 7 is a decode error — and it lands past the cap.
        bool truth = (i != 7);
        rec.record({static_cast<std::uint64_t>(i),
                    static_cast<std::uint32_t>(i), Tick(i) * 10, 60.0,
                    50.0, true, truth});
    }
    EXPECT_EQ(rec.records().size(), 4u);
    EXPECT_EQ(rec.dropped(), 6u);
    // Tallies cover retained records only, like the tracer's shards:
    // the dropped error must not leak into the aggregate.
    EXPECT_EQ(rec.errorCount(), 0u);
    EXPECT_DOUBLE_EQ(rec.errorRate(), 0.0);

    std::string json = rec.toJson();
    EXPECT_EQ(countOf(json, "\"index\":"), 4u);
    EXPECT_NE(json.find("\"dropped\":6"), std::string::npos)
        << "drop counter must be exported in the summary";

    rec.clear();
    EXPECT_EQ(rec.dropped(), 0u);
    rec.record({0, 0, 0, 60.0, 50.0, true, true});
    EXPECT_EQ(rec.records().size(), 1u);
}

} // namespace
} // namespace gpucc::sim::trace

/**
 * @file
 * Tests for the run-scale observability layer (src/obs): phase-scope
 * self-time attribution, the content-addressed run ledger (keying,
 * dedup, JSONL round-trip), worker-count invariance of profiled
 * sweeps — phase totals and ledger bytes identical at 1/2/8 workers —
 * and the trend sentry's regression verdicts.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/ledger.h"
#include "obs/profiler.h"
#include "obs/report.h"

namespace gpucc::obs
{
namespace
{

/** RAII scratch directory for ledger-file tests. */
struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        static int counter = 0;
        path = std::filesystem::temp_directory_path() /
               ("gpucc_obs_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
};

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

// ---- phase profiler -------------------------------------------------

TEST(Profiler, SelfTimeAttributionAcrossNestedScopes)
{
    std::uint64_t clock = 0;
    auto tick = [&clock] { return clock; };

    Profiler p;
    {
        PhaseScope outer(&p, phase::kTransfer, tick);
        clock += 100;
        {
            // Entering a child pauses the parent: the 40 cycles the
            // embedded recalibration burns bill "calibrate", not
            // "transfer".
            PhaseScope inner(&p, phase::kCalibrate, tick);
            clock += 40;
        }
        clock += 10;
    }
    EXPECT_EQ(p.phase(phase::kTransfer).cycles, 110u);
    EXPECT_EQ(p.phase(phase::kCalibrate).cycles, 40u);
    EXPECT_EQ(p.phase(phase::kTransfer).calls, 1u);
    // Self-time totals sum to the instrumented span exactly.
    EXPECT_EQ(p.totalCycles(), 150u);
}

TEST(Profiler, NullProfilerScopesAreNoOps)
{
    // The opt-in-by-pointer contract: call sites need no branches.
    PhaseScope a(nullptr, phase::kBoot);
    PhaseScope b(nullptr, phase::kDecode, [] { return 7u; });
    b.close();
    b.close(); // idempotent
}

TEST(Profiler, MergeIsCommutativeAndExportDeterministic)
{
    Profiler a, b;
    a.add(phase::kTransfer, 100, 5);
    a.add(phase::kResync, 7, 1);
    b.add(phase::kTransfer, 23, 9);
    b.add(phase::kFailover, 3, 2);

    Profiler ab, ba;
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab.toJson(/*includeWall=*/false),
              ba.toJson(/*includeWall=*/false));
    EXPECT_EQ(ab.phase(phase::kTransfer).cycles, 123u);
    EXPECT_EQ(ab.phase(phase::kTransfer).calls, 2u);

    // The deterministic form must not leak host wall time.
    EXPECT_EQ(ab.toJson(false).find("wall_ns"), std::string::npos);
    EXPECT_NE(ab.toJson(true).find("wall_ns"), std::string::npos);
}

// ---- run ledger -----------------------------------------------------

LedgerRecord
sampleRecord()
{
    LedgerRecord r;
    r.scenario = "session_robustness";
    r.arch = "Kepler";
    r.plan = "eviction";
    r.config = "payload96|w4";
    r.seed = 0x1234abcdULL;
    r.gitDescribe = "v0-test";
    r.outcome = "complete";
    r.digest = 0xdeadbeefULL;
    r.metrics["goodput_bps"] = 20481.5;
    r.metrics["residual_ber"] = 0.0;
    r.phaseCycles["transfer"] = 123456;
    r.phaseCalls["transfer"] = 96;
    return r;
}

TEST(Ledger, KeyIsContentAddressedOverIdentityOnly)
{
    const LedgerRecord base = sampleRecord();
    const std::uint64_t k = base.key();
    EXPECT_EQ(k, sampleRecord().key()) << "key must be deterministic";

    // Every identity field participates in the key.
    LedgerRecord r = base;
    r.scenario = "league";
    EXPECT_NE(r.key(), k);
    r = base;
    r.arch = "Maxwell";
    EXPECT_NE(r.key(), k);
    r = base;
    r.plan = "quiet";
    EXPECT_NE(r.key(), k);
    r = base;
    r.config = "payload96|w8";
    EXPECT_NE(r.key(), k);
    r = base;
    r.seed ^= 1;
    EXPECT_NE(r.key(), k);
    r = base;
    r.gitDescribe = "v1-test";
    EXPECT_NE(r.key(), k);

    // Payload fields do not: re-measuring the same cell at the same
    // revision must dedup even if the numbers moved.
    r = base;
    r.outcome = "incomplete";
    r.metrics["goodput_bps"] = 1.0;
    r.phaseCycles["transfer"] = 1;
    r.digest = 1;
    EXPECT_EQ(r.key(), k);
}

TEST(Ledger, AppendDedupsAndRoundTrips)
{
    TempDir tmp;
    const std::string path = tmp.file("ledger/run.jsonl");
    const LedgerRecord r = sampleRecord();

    {
        Ledger l(path);
        EXPECT_EQ(l.preexisting(), 0u);
        EXPECT_TRUE(l.append(r));
        EXPECT_FALSE(l.append(r)) << "same key must be a no-op";
        EXPECT_EQ(l.appended(), 1u);
        EXPECT_EQ(l.skipped(), 1u);
    }
    {
        // Reopening indexes the existing keys: dedup survives handles.
        Ledger l(path);
        EXPECT_EQ(l.preexisting(), 1u);
        EXPECT_FALSE(l.append(r));
        LedgerRecord next = r;
        next.seed += 1;
        EXPECT_TRUE(l.append(next));
    }

    LedgerLoadResult loaded = Ledger::load(path);
    EXPECT_TRUE(loaded.errors.empty());
    ASSERT_EQ(loaded.records.size(), 2u);
    const LedgerRecord &got = loaded.records[0];
    EXPECT_EQ(got.scenario, r.scenario);
    EXPECT_EQ(got.seed, r.seed);
    EXPECT_EQ(got.digest, r.digest);
    EXPECT_EQ(got.key(), r.key());
    EXPECT_DOUBLE_EQ(got.metrics.at("goodput_bps"), 20481.5);
    EXPECT_EQ(got.phaseCycles.at("transfer"), 123456u);
    EXPECT_EQ(got.phaseCalls.at("transfer"), 96u);
}

TEST(Ledger, PreloadedOpenMatchesFreshOpen)
{
    // The preloaded constructor lets a caller who already load()ed
    // the file (ResultStore keeps the payloads) open the ledger
    // without parsing it a second time — same keys, same dedup.
    TempDir tmp;
    const std::string path = tmp.file("run.jsonl");
    {
        Ledger l(path);
        l.append(sampleRecord());
    }
    LedgerLoadResult loaded = Ledger::load(path);
    Ledger l(path, loaded);
    EXPECT_EQ(l.preexisting(), 1u);
    EXPECT_TRUE(l.contains(sampleRecord().key()));
    EXPECT_FALSE(l.append(sampleRecord())); // dedup still works
    LedgerRecord next = sampleRecord();
    next.seed += 1;
    EXPECT_TRUE(l.append(next));
}

TEST(Ledger, CorruptLinesAreReportedNotSwallowed)
{
    TempDir tmp;
    const std::string path = tmp.file("run.jsonl");
    {
        Ledger l(path);
        l.append(sampleRecord());
    }
    {
        std::ofstream f(path, std::ios::app);
        f << "{\"scenario\": truncated\n";
    }
    LedgerLoadResult loaded = Ledger::load(path);
    EXPECT_EQ(loaded.records.size(), 1u);
    ASSERT_EQ(loaded.errors.size(), 1u);

    // A ledger opened over the damaged file still works (the killed-CI
    // contract): the good record dedups, new ones append.
    Ledger l(path);
    EXPECT_EQ(l.preexisting(), 1u);
    EXPECT_EQ(l.loadErrors().size(), 1u);
    EXPECT_FALSE(l.append(sampleRecord()));
}

TEST(Ledger, TornWriteMidRecordIsReportedAndRepairedOnAppend)
{
    TempDir tmp;
    const std::string path = tmp.file("run.jsonl");
    LedgerRecord first = sampleRecord();
    LedgerRecord second = sampleRecord();
    second.seed += 1;
    {
        Ledger l(path);
        EXPECT_TRUE(l.append(first));
        EXPECT_TRUE(l.append(second));
    }

    // Kill the writer mid-record: the second line loses its tail
    // (including the newline), exactly what a SIGKILL inside ::write()
    // leaves behind.
    ASSERT_TRUE(Ledger::tornTruncateForTest(path));

    // The corrupt tail is reported, prior records survive.
    LedgerLoadResult loaded = Ledger::load(path);
    EXPECT_TRUE(loaded.tornTail);
    ASSERT_EQ(loaded.records.size(), 1u);
    EXPECT_EQ(loaded.records[0].key(), first.key());
    ASSERT_EQ(loaded.errors.size(), 1u);
    EXPECT_NE(loaded.errors[0].find("torn tail"), std::string::npos)
        << loaded.errors[0];

    // The next append repairs the framing: the torn half-line is
    // terminated, the new record lands on its own line, and the
    // re-appended second record (its key was lost with the tail) is
    // parseable again.
    {
        Ledger l(path);
        EXPECT_TRUE(l.repairPending());
        EXPECT_EQ(l.preexisting(), 1u);
        EXPECT_FALSE(l.append(first)) << "surviving record must dedup";
        EXPECT_TRUE(l.repairPending())
            << "a deduped append must not have touched the file";
        EXPECT_TRUE(l.append(second));
        EXPECT_FALSE(l.repairPending());
    }
    LedgerLoadResult repaired = Ledger::load(path);
    EXPECT_FALSE(repaired.tornTail);
    ASSERT_EQ(repaired.records.size(), 2u);
    EXPECT_EQ(repaired.records[0].key(), first.key());
    EXPECT_EQ(repaired.records[1].key(), second.key());
    // The terminated torn fragment stays quarantined as a reported
    // error line — never silently reinterpreted as data.
    ASSERT_EQ(repaired.errors.size(), 1u);

    // Appending to the repaired file needs no further repair.
    {
        Ledger l(path);
        EXPECT_FALSE(l.repairPending());
        LedgerRecord third = sampleRecord();
        third.seed += 2;
        EXPECT_TRUE(l.append(third));
    }
    EXPECT_EQ(Ledger::load(path).records.size(), 3u);
}

TEST(Ledger, LineCrcCatchesBitRotThatStillParses)
{
    const LedgerRecord r = sampleRecord();
    std::string line = Ledger::toJsonLine(r);

    // Unmodified lines round-trip.
    LedgerRecord back;
    std::string err;
    ASSERT_TRUE(Ledger::parseLine(line, back, err)) << err;
    EXPECT_EQ(back.key(), r.key());

    // Flip one digit inside a *payload* field (the outcome text): the
    // result is valid JSON with a valid identity key, so only the
    // line CRC can catch it.
    const std::size_t pos = line.find("complete");
    ASSERT_NE(pos, std::string::npos);
    line[pos] = 'k';
    EXPECT_FALSE(Ledger::parseLine(line, back, err));
    EXPECT_NE(err.find("CRC mismatch"), std::string::npos) << err;
}

TEST(Ledger, LegacyLinesWithoutCrcStillLoad)
{
    // Ledgers written before the crc field existed (e.g. the CI cache)
    // must keep loading: validation applies only when the suffix is
    // present.
    std::string line = Ledger::toJsonLine(sampleRecord());
    const std::size_t pos = line.rfind(",\"crc\":");
    ASSERT_NE(pos, std::string::npos);
    line = line.substr(0, pos) + "}";
    LedgerRecord back;
    std::string err;
    EXPECT_TRUE(Ledger::parseLine(line, back, err)) << err;
    EXPECT_EQ(back.key(), sampleRecord().key());
}

// ---- worker-count invariance ----------------------------------------

TEST(ObsSweep, PhaseTotalsAndLedgerBytesInvariantAcrossWorkers)
{
    // The acceptance gate for the whole layer: the profiled sweep at
    // 1, 2 and 8 workers must produce byte-identical deterministic
    // phase exports and byte-identical ledger files.
    TempDir tmp;
    std::vector<std::string> profiles, ledgers;
    for (unsigned threads : {1u, 2u, 8u}) {
        SweepReportOptions opts;
        opts.ledgerPath =
            tmp.file("ledger_t" + std::to_string(threads) + ".jsonl");
        opts.seedsPerCell = 1;
        opts.seedBase = 99;
        opts.gitRev = "obs-test-rev";
        opts.threads = threads;
        opts.league = false; // session cells exercise the full path

        Profiler prof;
        SweepOutcome out = runObservabilitySweep(opts, prof);
        EXPECT_TRUE(out.errors.empty());
        EXPECT_GT(out.records.size(), 0u);
        EXPECT_EQ(out.appended, out.records.size());
        profiles.push_back(prof.toJson(/*includeWall=*/false));
        ledgers.push_back(slurp(opts.ledgerPath));
    }
    EXPECT_EQ(profiles[0], profiles[1]);
    EXPECT_EQ(profiles[0], profiles[2]);
    EXPECT_EQ(ledgers[0], ledgers[1]);
    EXPECT_EQ(ledgers[0], ledgers[2]);
    EXPECT_NE(profiles[0].find("\"transfer\""), std::string::npos);

    // Re-running the identical sweep against an existing ledger must
    // append nothing: every key is already present.
    SweepReportOptions again;
    again.ledgerPath = tmp.file("ledger_t1.jsonl");
    again.seedsPerCell = 1;
    again.seedBase = 99;
    again.gitRev = "obs-test-rev";
    again.threads = 2;
    again.league = false;
    Profiler prof;
    SweepOutcome out = runObservabilitySweep(again, prof);
    EXPECT_EQ(out.appended, 0u);
    EXPECT_EQ(out.skipped, out.records.size());
    EXPECT_EQ(slurp(again.ledgerPath), ledgers[0]);
}

// ---- trend sentry ---------------------------------------------------

TEST(TrendSentry, MetricDirectionHeuristics)
{
    EXPECT_TRUE(metricHigherIsBetter("goodput_bps"));
    EXPECT_FALSE(metricHigherIsBetter("residual_ber"));
    EXPECT_FALSE(metricHigherIsBetter("phase.resync.cycles"));
    EXPECT_FALSE(metricHigherIsBetter("seconds"));
    // "capacity" wins over the "residual" cue: residual capacity is
    // the attacker's throughput, and more of it is better (for the
    // attacker whose trend we track).
    EXPECT_TRUE(metricHigherIsBetter("residual_capacity_bps"));
}

std::vector<LedgerRecord>
twoRevisionHistory(double oldGoodput, double newGoodput,
                   std::uint64_t oldResync, std::uint64_t newResync)
{
    std::vector<LedgerRecord> recs;
    LedgerRecord r = sampleRecord();
    r.gitDescribe = "rev-old";
    r.metrics["goodput_bps"] = oldGoodput;
    r.phaseCycles["resync"] = oldResync;
    recs.push_back(r);
    r.gitDescribe = "rev-new";
    r.metrics["goodput_bps"] = newGoodput;
    r.phaseCycles["resync"] = newResync;
    recs.push_back(r);
    return recs;
}

TEST(TrendSentry, FlagsRegressionsBeyondTheNoiseBand)
{
    // 30% goodput drop and 2x resync cycles: both past the 15% band.
    TrendReport rep = analyzeLedgerTrends(
        twoRevisionHistory(1000.0, 700.0, 5000, 10000));
    EXPECT_EQ(rep.latestRev, "rev-new");
    EXPECT_EQ(rep.revisions, 2u);
    EXPECT_EQ(rep.regressions(), 2u);

    bool sawGoodput = false, sawResync = false;
    for (const TrendDelta &d : rep.deltas) {
        if (d.metric == "goodput_bps") {
            sawGoodput = true;
            EXPECT_TRUE(d.regressed);
            EXPECT_NEAR(d.relDelta, -0.3, 1e-12);
        }
        if (d.metric == "phase.resync.cycles") {
            sawResync = true;
            EXPECT_TRUE(d.regressed)
                << "doubled resync spending must trip the sentry "
                   "even though goodput-only gates would miss it";
        }
    }
    EXPECT_TRUE(sawGoodput);
    EXPECT_TRUE(sawResync);
}

TEST(TrendSentry, WithinBandMovesAndImprovementsDoNotTrip)
{
    // 5% goodput wobble: inside the band, no verdict either way.
    TrendReport calm = analyzeLedgerTrends(
        twoRevisionHistory(1000.0, 950.0, 5000, 5100));
    EXPECT_EQ(calm.regressions(), 0u);

    // 40% goodput gain and halved resync cost: improvements, never
    // regressions.
    TrendReport better = analyzeLedgerTrends(
        twoRevisionHistory(1000.0, 1400.0, 10000, 5000));
    EXPECT_EQ(better.regressions(), 0u);
    EXPECT_GE(better.improvements(), 2u);
}

} // namespace
} // namespace gpucc::obs

/**
 * @file
 * Tests for the Section 8 machinery: exclusive co-location planning,
 * helper kernels, and the end-to-end noise experiment with the
 * Rodinia-like interference mix.
 */

#include <gtest/gtest.h>

#include "covert/colocation/exclusive.h"
#include "covert/colocation/noise_experiment.h"
#include "gpu/host.h"

namespace gpucc::covert
{
namespace
{

using gpu::ArchParams;

TEST(ExclusivePlan, FermiKeplerSpyTakesAllSharedMemory)
{
    for (const auto &arch : {gpu::fermiC2075(), gpu::keplerK40c()}) {
        auto plan = makeExclusivePlan(arch, 64, 64);
        EXPECT_EQ(plan.spySmemBytes, arch.limits.smemPerBlockBytes)
            << arch.name;
        EXPECT_EQ(plan.trojanSmemBytes, 0u) << arch.name;
        // Together they saturate the SM's shared memory entirely.
        EXPECT_EQ(plan.spySmemBytes + plan.trojanSmemBytes,
                  arch.limits.smemBytes)
            << arch.name;
    }
}

TEST(ExclusivePlan, MaxwellBothPartiesClaimPerBlockMax)
{
    auto arch = gpu::maxwellM4000();
    auto plan = makeExclusivePlan(arch, 64, 64);
    EXPECT_EQ(plan.spySmemBytes, arch.limits.smemPerBlockBytes);
    EXPECT_EQ(plan.trojanSmemBytes, arch.limits.smemPerBlockBytes);
    EXPECT_EQ(plan.spySmemBytes + plan.trojanSmemBytes,
              arch.limits.smemBytes);
}

TEST(ExclusivePlan, HelpersCoverLeftoverThreads)
{
    for (const auto &arch : gpu::allArchitectures()) {
        auto plan = makeExclusivePlan(arch, 64, 64);
        ASSERT_TRUE(plan.needHelpers) << arch.name;
        EXPECT_EQ(plan.helperThreadsPerBlock % warpSize, 0u) << arch.name;
        EXPECT_EQ(64 + 64 + plan.helperThreadsPerBlock,
                  arch.limits.maxThreads)
            << arch.name;
        EXPECT_EQ(plan.helperBlocks, arch.numSms) << arch.name;
    }
}

TEST(ExclusivePlan, NoHelpersWhenChannelFillsTheSm)
{
    auto arch = gpu::keplerK40c();
    auto plan = makeExclusivePlan(arch, 1024, 1024);
    EXPECT_FALSE(plan.needHelpers);
}

TEST(ExclusivePlanDeath, OvercommittedChannelIsRejected)
{
    auto arch = gpu::keplerK40c();
    EXPECT_DEATH(makeExclusivePlan(arch, 2048, 2048), "exceed");
}

TEST(HelperKernel, OccupiesSlotsForRequestedDuration)
{
    auto arch = gpu::keplerK40c();
    auto plan = makeExclusivePlan(arch, 64, 64);
    gpu::Device dev(arch);
    gpu::HostContext host(dev);
    host.setJitterUs(0.0);
    auto helper = makeHelperKernel(arch, plan, 50000);
    auto &s = dev.createStream();
    auto &k = host.launch(s, helper);
    host.sync(k);
    Tick span = k.endTick() - k.startTick();
    EXPECT_GE(ticksToCycles(span), 50000u);
    EXPECT_LE(ticksToCycles(span), 70000u);
}

TEST(HelperKernel, UsesNoNoisyResources)
{
    // The helper must not touch the constant caches (it would corrupt
    // the very channel it protects).
    auto arch = gpu::keplerK40c();
    auto plan = makeExclusivePlan(arch, 64, 64);
    gpu::Device dev(arch);
    gpu::HostContext host(dev);
    auto helper = makeHelperKernel(arch, plan, 20000);
    auto &s = dev.createStream();
    host.sync(host.launch(s, helper));
    EXPECT_EQ(dev.constMem().l1Cache(0).hits() +
                  dev.constMem().l1Cache(0).misses(),
              0u);
}

class NoiseTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(NoiseTest, InterferenceCorruptsUnprotectedChannel)
{
    Rng rng(4);
    auto outcome = runNoiseExperiment(GetParam(), randomBits(192, rng),
                                      /*exclusive=*/false);
    EXPECT_GT(outcome.channel.report.errorRate(), 0.05) << GetParam().name;
    EXPECT_FALSE(outcome.exclusionHeld()) << GetParam().name;
    EXPECT_EQ(outcome.interferersLaunched, 4u);
}

TEST_P(NoiseTest, ExclusiveColocationRestoresErrorFreeOperation)
{
    Rng rng(4);
    auto outcome = runNoiseExperiment(GetParam(), randomBits(192, rng),
                                      /*exclusive=*/true);
    EXPECT_TRUE(outcome.channel.report.errorFree()) << GetParam().name;
    EXPECT_TRUE(outcome.exclusionHeld()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllGpus, NoiseTest,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(Noise, InterferersEventuallyComplete)
{
    // The defense delays, but never permanently starves, the victims.
    Rng rng(4);
    auto outcome = runNoiseExperiment(gpu::keplerK40c(),
                                      randomBits(96, rng), true);
    EXPECT_EQ(outcome.interferersLaunched, 4u);
}

TEST(Noise, FullRateChannelProtectedOnAllSms)
{
    // The headline composition: the 6-set all-SM channel (Table 2's
    // multi-Mbps column) stays error-free under the Rodinia-like mix
    // when protected by exclusive co-location — on every SM at once.
    Rng rng(4);
    auto msg = randomBits(1800, rng);
    auto arch = gpu::keplerK40c();
    auto excl = runNoiseExperiment(arch, msg, /*exclusive=*/true,
                                   /*seed=*/1, /*dataSetsPerSm=*/6,
                                   /*allSms=*/true);
    EXPECT_TRUE(excl.channel.report.errorFree());
    EXPECT_TRUE(excl.exclusionHeld());
    EXPECT_GT(excl.channel.bandwidthBps, 3.5e6);
}

TEST(Noise, FullRateChannelCorruptedWithoutProtection)
{
    Rng rng(4);
    auto msg = randomBits(1800, rng);
    auto plain = runNoiseExperiment(gpu::keplerK40c(), msg, false, 1, 6,
                                    true);
    EXPECT_GT(plain.channel.report.errorRate(), 0.05);
}

TEST(Noise, BandwidthUnderExclusionMatchesCleanRun)
{
    Rng rng(4);
    auto msg = randomBits(192, rng);
    auto excl = runNoiseExperiment(gpu::keplerK40c(), msg, true);
    // Table 2 sync bandwidth (~75 Kbps) is preserved under protection.
    EXPECT_NEAR(excl.channel.bandwidthBps, 75e3, 12e3);
}

} // namespace
} // namespace gpucc::covert

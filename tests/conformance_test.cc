/**
 * @file
 * Conformance-labeled tests: execute the committed paper bands end to
 * end on all three architectures, and prove the suite has teeth — a
 * deliberate perturbation of one timing parameter (the SFU pipeline
 * latency) must trip at least one band check.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "verify/band.h"
#include "verify/conformance_runner.h"
#include "verify/scenarios.h"

namespace gpucc::verify
{
namespace
{

TEST(ConformanceSuite, CommittedBandsPassOnEveryArchitecture)
{
    setVerbose(false);
    auto report = runConformance({});
    for (const auto &e : report.errors)
        ADD_FAILURE() << "load error: " << e;
    for (const auto &c : report.checks) {
        EXPECT_TRUE(c.pass)
            << c.scenario << "/" << c.arch << " " << c.metric << " = "
            << c.measured << " outside [" << c.lo << ", " << c.hi << "]"
            << (c.ref.empty() ? "" : " (" + c.ref + ")");
    }
    EXPECT_TRUE(report.ok());

    // Every architecture a scenario covers must actually have run.
    unsigned expectedCells = 0;
    for (const Scenario &s : conformanceScenarios())
        expectedCells += static_cast<unsigned>(s.generations.size());
    EXPECT_EQ(report.runs.size(), expectedCells);
}

TEST(ConformanceSuite, PerturbedSfuPipelineTripsAtLeastOneBand)
{
    setVerbose(false);
    // Deepen the SFU pipeline on a copy of the Kepler preset: __sinf
    // results now arrive 24 cycles later. The fig06 latency bands were
    // recorded against the calibrated preset and must notice.
    gpu::ArchParams perturbed = gpu::keplerK40c();
    auto it = perturbed.ops.find(gpu::OpClass::Sinf);
    ASSERT_NE(it, perturbed.ops.end());
    it->second.latencyCycles += 24;

    const Scenario *fig06 = findScenario("fig06_sp_latency");
    ASSERT_NE(fig06, nullptr);
    ScenarioResult measured = fig06->run(perturbed);

    auto loaded = loadBandDir(defaultBandDir());
    ASSERT_TRUE(loaded.ok()) << loaded.errors.front();
    const BandFile *file = nullptr;
    for (const auto &f : loaded.files) {
        if (f.scenario == "fig06_sp_latency")
            file = &f;
    }
    ASSERT_NE(file, nullptr) << "fig06 band file must be committed";

    unsigned failures = 0;
    for (const Band &b : file->bandsFor("Kepler")) {
        const MetricValue *m = measured.find(b.metric);
        if (m == nullptr || !b.contains(m->value))
            ++failures;
    }
    EXPECT_GE(failures, 1u)
        << "a +24-cycle SFU pipeline must fall outside the recorded "
           "latency bands; if this passes the suite has no teeth";
}

TEST(ConformanceSuite, ScenarioFilterRunsOnlyTheNamedScenario)
{
    setVerbose(false);
    ConformanceOptions opts;
    opts.scenarios = {"table1_resources"};
    auto report = runConformance(opts);
    EXPECT_TRUE(report.ok());
    for (const auto &r : report.runs)
        EXPECT_EQ(r.scenario, "table1_resources");
    EXPECT_EQ(report.runs.size(), 3u);
}

} // namespace
} // namespace gpucc::verify

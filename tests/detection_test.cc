/**
 * @file
 * Tests for the Section 9 contention-anomaly detector: it must flag the
 * cache covert channels (launch-per-bit and synchronized), stay quiet
 * on benign workloads, and localize the communication set.
 */

#include <functional>

#include <gtest/gtest.h>

#include "covert/channels/l1_const_channel.h"
#include "covert/detection/cc_detector.h"
#include "covert/sync/duplex_channel.h"
#include "covert/sync/sync_channel.h"
#include "gpu/host.h"
#include "workloads/interference.h"

namespace gpucc::covert
{
namespace
{

BitVec
msg(std::size_t n)
{
    Rng rng(71);
    return randomBits(n, rng);
}

TEST(Detector, EmptyTraceIsBenign)
{
    auto r = analyzeEvictionTrace({});
    EXPECT_FALSE(r.covertChannelSuspected);
    EXPECT_TRUE(r.scores.empty());
}

TEST(Detector, SyntheticPingPongIsFlagged)
{
    std::vector<mem::EvictionEvent> trace;
    for (unsigned i = 0; i < 200; ++i) {
        int a = i % 2 == 0 ? 0 : 1;
        trace.push_back(mem::EvictionEvent{Tick(i) * 1000, 0, 3, a, 1 - a});
    }
    auto r = analyzeEvictionTrace(trace);
    EXPECT_TRUE(r.covertChannelSuspected);
    EXPECT_EQ(r.topSet.set, 3u);
    EXPECT_GT(r.topSet.oscillationFraction, 0.9);
}

TEST(Detector, OneSidedEvictionStreamIsNotFlagged)
{
    // A streaming workload evicting a victim without retaliation is a
    // conflict, but not an oscillating channel train.
    std::vector<mem::EvictionEvent> trace;
    for (unsigned i = 0; i < 200; ++i)
        trace.push_back(mem::EvictionEvent{Tick(i) * 1000, 0, 3, 0, 1});
    auto r = analyzeEvictionTrace(trace);
    EXPECT_FALSE(r.covertChannelSuspected);
}

TEST(Detector, SelfEvictionsAreIgnored)
{
    std::vector<mem::EvictionEvent> trace;
    for (unsigned i = 0; i < 500; ++i)
        trace.push_back(mem::EvictionEvent{Tick(i) * 1000, 0, 1, 2, 2});
    auto r = analyzeEvictionTrace(trace);
    EXPECT_FALSE(r.covertChannelSuspected);
    EXPECT_TRUE(r.scores.empty());
}

TEST(Detector, FlagsTheLaunchPerBitL1Channel)
{
    L1ConstChannel ch(gpu::keplerK40c());
    ch.harness().device().constMem().setEvictionTracing(true);
    ch.transmit(msg(48));
    auto trace = ch.harness().device().constMem().evictionTrace();
    auto r = analyzeEvictionTrace(trace);
    EXPECT_TRUE(r.covertChannelSuspected);
    // The channel communicates on L1 set 0.
    EXPECT_EQ(r.topSet.set, 0u);
}

TEST(Detector, FlagsTheSynchronizedChannel)
{
    SyncL1Channel ch(gpu::keplerK40c());
    ch.harness().device().constMem().setEvictionTracing(true);
    ch.transmit(msg(128));
    auto r = analyzeEvictionTrace(
        ch.harness().device().constMem().evictionTrace());
    EXPECT_TRUE(r.covertChannelSuspected);
}

TEST(Detector, FlagsTheDuplexChannel)
{
    // Third cache-channel family of the ROC population: both duplex
    // directions oscillate on their own sets concurrently.
    DuplexSyncChannel ch(gpu::keplerK40c());
    ch.harness().device().constMem().setEvictionTracing(true);
    ch.exchange(msg(48), msg(48));
    auto r = analyzeEvictionTrace(
        ch.harness().device().constMem().evictionTrace());
    EXPECT_TRUE(r.covertChannelSuspected);
}

TEST(Detector, StaysQuietOnEveryBenignWorkloadFamily)
{
    // The ROC false-positive population, one family at a time, at the
    // default DetectorConfig operating point.
    auto arch = gpu::keplerK40c();
    workloads::WorkloadSpec spec;
    spec.blocks = 8;
    spec.iterations = 800;
    struct Family
    {
        const char *name;
        std::function<gpu::KernelLaunch(gpu::Device &)> make;
    };
    const Family families[] = {
        {"const_walker",
         [&](gpu::Device &d) {
             return workloads::makeConstantMemoryWorkload(d, spec);
         }},
        {"compute",
         [&](gpu::Device &) {
             return workloads::makeComputeWorkload(spec);
         }},
        {"streaming",
         [&](gpu::Device &d) {
             return workloads::makeStreamingWorkload(d, spec);
         }},
    };
    for (const Family &f : families) {
        gpu::Device dev(arch);
        dev.constMem().setEvictionTracing(true);
        gpu::HostContext host(dev);
        host.launch(dev.createStream(), f.make(dev));
        host.syncAll();
        auto r = analyzeEvictionTrace(dev.constMem().evictionTrace());
        EXPECT_FALSE(r.covertChannelSuspected) << f.name;
    }
}

TEST(Detector, StaysQuietOnTheRodiniaLikeMix)
{
    auto arch = gpu::keplerK40c();
    gpu::Device dev(arch);
    dev.constMem().setEvictionTracing(true);
    gpu::HostContext host(dev);
    workloads::WorkloadSpec spec;
    spec.blocks = 8;
    spec.threadsPerBlock = 128;
    spec.iterations = 800;
    for (auto &k : workloads::makeRodiniaLikeMix(dev, spec))
        host.launch(dev.createStream(), std::move(k));
    host.syncAll();
    auto r = analyzeEvictionTrace(dev.constMem().evictionTrace());
    EXPECT_FALSE(r.covertChannelSuspected);
}

TEST(Detector, TracingIsBoundedAndClearable)
{
    auto arch = gpu::keplerK40c();
    mem::ConstMemory cm(arch.constMem, 1);
    cm.setEvictionTracing(true);
    // Force far more evictions than the cap by thrashing one set.
    Tick t = 0;
    for (unsigned i = 0; i < 500000; ++i) {
        Addr a = Addr(i % 5) * 512;
        t = cm.access(0, a, t, -1, static_cast<int>(i % 2)).completion;
    }
    EXPECT_LE(cm.evictionTrace().size(), 400000u);
    cm.clearEvictionTrace();
    EXPECT_TRUE(cm.evictionTrace().empty());
}

TEST(Detector, TracingOffRecordsNothing)
{
    L1ConstChannel ch(gpu::keplerK40c());
    ch.transmit(alternatingBits(8));
    EXPECT_TRUE(
        ch.harness().device().constMem().evictionTrace().empty());
}

} // namespace
} // namespace gpucc::covert

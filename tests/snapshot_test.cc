/**
 * @file
 * Copy-on-write device snapshot/fork and channel checkpoint/restore.
 *
 * The contract under test: a fork is indistinguishable from its source
 * at the capture point *and stays indistinguishable* under any
 * identical sequence of future work — verified with verify/digest
 * state digests (endpoint and periodic checkpoints), across all three
 * architectures and SweepRunner thread counts 1, 2 and 8. Forks are
 * also isolated: the word store is shared copy-on-write, so writes in
 * one fork never leak into the source or a sibling, and observability
 * (metrics registry, trace shard) is per-device, never shared.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitstream.h"
#include "common/log.h"
#include "covert/channels/l1_const_channel.h"
#include "gpu/device.h"
#include "gpu/host.h"
#include "sim/exec/sweep_runner.h"
#include "sim/trace/trace.h"
#include "verify/digest.h"
#include "verify/program_gen.h"

namespace gpucc::verify
{
namespace
{

std::vector<gpu::ArchParams>
allArchs()
{
    return {gpu::fermiC2075(), gpu::keplerK40c(), gpu::maxwellM4000()};
}

/** Run generated program @p seed on @p dev through a fresh stream. */
void
runProgram(gpu::Device &dev, std::uint64_t seed)
{
    gpu::HostContext host(dev, 5);
    host.setJitterUs(0.0);
    ProgramGen gen(dev.arch());
    auto &s = dev.createStream();
    host.sync(host.launch(s, gen.makeKernel(seed)));
    dev.runUntilIdle();
}

TEST(Snapshot, ForkMatchesSourceAtCapture)
{
    setVerbose(false);
    for (const auto &arch : allArchs()) {
        gpu::Device dev(arch);
        runProgram(dev, 17);
        ASSERT_TRUE(dev.quiescent());
        auto snap = dev.snapshot();
        auto fork = gpu::Device::fork(snap);
        EXPECT_EQ(deviceDigest(dev), deviceDigest(*fork)) << arch.name;
        EXPECT_EQ(dev.now(), fork->now()) << arch.name;
        EXPECT_EQ(dev.constAllocTop(), fork->constAllocTop());
        EXPECT_EQ(dev.globalAllocTop(), fork->globalAllocTop());
    }
}

TEST(Snapshot, ForkEvolvesIdenticallyToSource)
{
    setVerbose(false);
    for (const auto &arch : allArchs()) {
        gpu::Device dev(arch);
        runProgram(dev, 23);
        auto fork = gpu::Device::fork(dev.snapshot());
        // Identical future work must produce identical trajectories.
        runProgram(dev, 31);
        runProgram(*fork, 31);
        EXPECT_EQ(deviceDigest(dev), deviceDigest(*fork)) << arch.name;
    }
}

TEST(Snapshot, SnapshotOutlivesSourceDevice)
{
    setVerbose(false);
    gpu::DeviceSnapshot snap;
    std::uint64_t srcDigest = 0;
    {
        gpu::Device dev(gpu::keplerK40c());
        runProgram(dev, 41);
        snap = dev.snapshot();
        srcDigest = deviceDigest(dev);
    }
    // The source is gone; the payload (and the CoW word store) must
    // keep every fork alive and exact.
    auto fork = gpu::Device::fork(snap);
    EXPECT_EQ(srcDigest, deviceDigest(*fork));
}

TEST(Snapshot, ForksAreIsolatedCopyOnWrite)
{
    setVerbose(false);
    gpu::Device dev(gpu::keplerK40c());
    runProgram(dev, 53);
    Addr probe = dev.allocGlobal(8);
    dev.globalMem().poke(probe, 7);
    auto snap = dev.snapshot();

    auto a = gpu::Device::fork(snap);
    auto b = gpu::Device::fork(snap);
    EXPECT_EQ(a->globalMem().peek(probe), 7u);
    a->globalMem().poke(probe, 1000);
    // The write unshared fork A's store only.
    EXPECT_EQ(a->globalMem().peek(probe), 1000u);
    EXPECT_EQ(b->globalMem().peek(probe), 7u);
    EXPECT_EQ(dev.globalMem().peek(probe), 7u);
    EXPECT_EQ(deviceDigest(dev), deviceDigest(*b));
}

TEST(Snapshot, ForkHasOwnMetricsAndTraceInstruments)
{
    setVerbose(false);
    gpu::Device dev(gpu::keplerK40c());
    runProgram(dev, 61);
    auto fork = gpu::Device::fork(dev.snapshot());

    // Fresh registry, fully populated, reading the fork's own state.
    ASSERT_NE(&dev.metricsRegistry(), &fork->metricsRegistry());
    ASSERT_TRUE(fork->metricsRegistry().contains("device.ticks"));
    double before = dev.metricsRegistry().value("fu.dispatch.requests");
    EXPECT_EQ(fork->metricsRegistry().value("fu.dispatch.requests"),
              before);
    // Work in the fork moves only the fork's instruments.
    runProgram(*fork, 67);
    EXPECT_EQ(dev.metricsRegistry().value("fu.dispatch.requests"), before);
    EXPECT_GT(fork->metricsRegistry().value("fu.dispatch.requests"),
              before);

    // A traced fork gets its own shard, never the source's.
    sim::trace::TraceSession session(
        static_cast<std::uint32_t>(sim::trace::Cat::Kernel));
    gpu::Device traced(gpu::keplerK40c());
    traced.attachTrace(session, "src");
    runProgram(traced, 71);
    auto tfork = gpu::Device::fork(traced.snapshot());
    tfork->attachTrace(session, "fork");
    EXPECT_NE(traced.traceShard(), tfork->traceShard());
    // Instrumentation transparency carries over to forks: the traced
    // fork's architectural digest matches an untraced one.
    auto plain = gpu::Device::fork(traced.snapshot());
    runProgram(*tfork, 73);
    runProgram(*plain, 73);
    EXPECT_EQ(deviceDigest(*tfork), deviceDigest(*plain));
}

/** Calibrated-channel checkpoint for @p arch (the sweep prototype). */
covert::LaunchPerBitChannel::Checkpoint
l1Checkpoint(const gpu::ArchParams &arch,
             const covert::LaunchPerBitConfig &cfg)
{
    covert::L1ConstChannel proto(arch, cfg);
    proto.calibrate();
    return proto.checkpoint();
}

TEST(Snapshot, ChannelRestoreReplaysColdRunExactly)
{
    setVerbose(false);
    for (const auto &arch : allArchs()) {
        covert::LaunchPerBitConfig cfg;
        cfg.seed = 9;
        const BitVec payload = alternatingBits(12);

        covert::L1ConstChannel cold(arch, cfg);
        cold.calibrate();
        // Drain post-calibration cleanup so the sampler attaches at
        // the same tick the checkpointed prototype was frozen at.
        cold.harness().device().runUntilIdle();
        // Periodic digest checkpoints pin the payload *trajectory*,
        // not only the endpoint.
        DigestCheckpoints coldCk(cold.harness().device(), 40000);
        auto coldRes = cold.transmit(payload);
        cold.harness().device().runUntilIdle();

        covert::L1ConstChannel forked(arch, cfg);
        forked.restore(l1Checkpoint(arch, cfg));
        DigestCheckpoints forkCk(forked.harness().device(), 40000);
        auto forkRes = forked.transmit(payload);
        forked.harness().device().runUntilIdle();

        EXPECT_EQ(coldRes.received, forkRes.received) << arch.name;
        EXPECT_EQ(coldRes.threshold, forkRes.threshold) << arch.name;
        EXPECT_EQ(coldRes.windowTicks, forkRes.windowTicks) << arch.name;
        EXPECT_EQ(coldCk.checkpoints(), forkCk.checkpoints()) << arch.name;
        EXPECT_EQ(coldCk.value(), forkCk.value()) << arch.name;
        EXPECT_EQ(deviceDigest(cold.harness().device()),
                  deviceDigest(forked.harness().device()))
            << arch.name;
    }
}

TEST(Snapshot, SweepFromCheckpointIsThreadCountInvariant)
{
    setVerbose(false);
    for (const auto &arch : allArchs()) {
        covert::LaunchPerBitConfig cfg;
        cfg.seed = 13;
        auto sweep = [&](unsigned threads) {
            sim::exec::SweepRunner runner(threads);
            return runner.runTrialsFrom(
                [&] { return l1Checkpoint(arch, cfg); }, 6, 77,
                [&](std::size_t, std::uint64_t seed,
                    const covert::LaunchPerBitChannel::Checkpoint &ck) {
                    covert::L1ConstChannel ch(arch, cfg);
                    ch.restore(ck);
                    Rng rng(seed);
                    ch.transmit(randomBits(10, rng));
                    ch.harness().device().runUntilIdle();
                    return deviceDigest(ch.harness().device());
                });
        };
        auto t1 = sweep(1);
        auto t2 = sweep(2);
        auto t8 = sweep(8);
        EXPECT_EQ(t1, t2) << arch.name;
        EXPECT_EQ(t1, t8) << arch.name;
    }
}

} // namespace
} // namespace gpucc::verify

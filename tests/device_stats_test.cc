/**
 * @file
 * Tests for the device statistics snapshot: counters must reflect the
 * work actually performed and the utilization math must be bounded.
 */

#include <gtest/gtest.h>

#include "gpu/device_stats.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"

namespace gpucc::gpu
{
namespace
{

TEST(DeviceStats, FreshDeviceIsEmpty)
{
    Device dev(keplerK40c());
    auto r = collectStats(dev);
    EXPECT_EQ(r.kernelsLaunched, 0u);
    EXPECT_EQ(r.kernelsCompleted, 0u);
    for (const auto &p : r.ports) {
        EXPECT_EQ(p.requests, 0u);
        EXPECT_EQ(p.busyTicks, 0u);
    }
    for (const auto &c : r.caches)
        EXPECT_EQ(c.hits + c.misses, 0u);
}

TEST(DeviceStats, CountsSfuInstructionsExactly)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    host.setJitterUs(0.0);
    KernelLaunch k;
    k.name = "sfu-count";
    k.config.gridBlocks = 2;
    k.config.threadsPerBlock = 3 * warpSize;
    k.body = [](WarpCtx &ctx) -> WarpProgram {
        for (int i = 0; i < 50; ++i)
            co_await ctx.op(OpClass::Sinf);
        co_return;
    };
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    auto r = collectStats(dev);
    for (const auto &p : r.ports) {
        if (p.name == "SFU issue")
            EXPECT_EQ(p.requests, 2u * 3u * 50u);
        if (p.name == "DPU issue")
            EXPECT_EQ(p.requests, 0u);
    }
    EXPECT_EQ(r.kernelsCompleted, 1u);
}

TEST(DeviceStats, CacheCountersTrackLoads)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    std::vector<Addr> addrs{0, 64, 128};
    KernelLaunch k;
    k.name = "loads";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 32;
    k.body = [addrs](WarpCtx &ctx) -> WarpProgram {
        for (int pass = 0; pass < 4; ++pass)
            co_await ctx.constLoadSeq(addrs);
        co_return;
    };
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    auto r = collectStats(dev);
    // 12 accesses: 3 cold misses, 9 hits.
    EXPECT_EQ(r.caches[0].hits, 9u);
    EXPECT_EQ(r.caches[0].misses, 3u);
    EXPECT_NEAR(r.caches[0].hitRate(), 0.75, 1e-9);
    // The 3 L1 misses reached the L2; all three addresses share one
    // 256-byte L2 line, so only the first missed there.
    EXPECT_EQ(r.caches[1].misses, 1u);
    EXPECT_EQ(r.caches[1].hits, 2u);
}

TEST(DeviceStats, UtilizationIsBoundedAndRisesUnderLoad)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    host.setJitterUs(0.0);
    KernelLaunch k;
    k.name = "hot";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 16 * warpSize;
    k.body = [](WarpCtx &ctx) -> WarpProgram {
        for (int i = 0; i < 200; ++i)
            co_await ctx.op(OpClass::Sinf);
        co_return;
    };
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    auto r = collectStats(dev);
    double sfuUtil = 0.0;
    for (const auto &p : r.ports) {
        EXPECT_GE(p.utilization, 0.0) << p.name;
        EXPECT_LE(p.utilization, 1.0 + 1e-9) << p.name;
        if (p.name == "SFU issue")
            sfuUtil = p.utilization;
    }
    EXPECT_GT(sfuUtil, 0.0);
}

TEST(DeviceStats, RenderContainsTheHeadlines)
{
    Device dev(keplerK40c());
    HostContext host(dev);
    KernelLaunch k;
    k.name = "tiny";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 32;
    k.body = [](WarpCtx &ctx) -> WarpProgram {
        co_await ctx.op(OpClass::FAdd);
        co_return;
    };
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    std::string text = collectStats(dev).render();
    EXPECT_NE(text.find("issue-port activity"), std::string::npos);
    EXPECT_NE(text.find("constant caches"), std::string::npos);
    EXPECT_NE(text.find("1/1 kernels done"), std::string::npos);
}

} // namespace
} // namespace gpucc::gpu

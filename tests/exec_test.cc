/**
 * @file
 * Tests for the parallel experiment runner (sim/exec): the determinism
 * contract — results are byte-identical regardless of thread count —
 * and the per-trial seed derivation.
 */

#include <atomic>
#include <cstring>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitstream.h"
#include "common/log.h"
#include "covert/channels/l1_const_channel.h"
#include "gpu/arch_params.h"
#include "sim/exec/sweep_runner.h"

using namespace gpucc;
using sim::exec::deriveSeed;
using sim::exec::splitmix64;
using sim::exec::SweepRunner;
using sim::exec::ThreadPool;

namespace
{

/// POD trial outcome so runs can be compared byte-for-byte.
struct TrialResult
{
    double errorRate;
    double bandwidthBps;
};

/// A miniature Figure-5-style sweep: 32 points over the iteration
/// count, each transmitting through its own L1ConstChannel with a
/// derived seed.
std::vector<TrialResult>
fig5StyleSweep(unsigned threadCount)
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    SweepRunner runner(threadCount);
    return runner.runTrials(
        32, /*seedBase=*/2017,
        [&arch](std::size_t i, std::uint64_t seed) -> TrialResult {
            covert::LaunchPerBitConfig cfg;
            cfg.iterations = 1 + static_cast<unsigned>(i % 8);
            cfg.jitterUs = 2.5;
            cfg.seed = seed;
            covert::L1ConstChannel ch(arch, cfg);
            auto r = ch.transmit(alternatingBits(16));
            return {r.report.errorRate(), r.bandwidthBps};
        });
}

bool
byteIdentical(const std::vector<TrialResult> &a,
              const std::vector<TrialResult> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(TrialResult)) == 0;
}

} // namespace

TEST(SweepRunner, ThreadCountDoesNotChangeResults)
{
    auto serial = fig5StyleSweep(1);
    ASSERT_EQ(serial.size(), 32u);
    // The sweep must produce a spread of outcomes for the comparison to
    // be meaningful (low iteration counts are noisy, high ones clean).
    std::set<double> distinct;
    for (const auto &t : serial)
        distinct.insert(t.bandwidthBps);
    EXPECT_GT(distinct.size(), 1u);

    EXPECT_TRUE(byteIdentical(serial, fig5StyleSweep(2)));
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    EXPECT_TRUE(byteIdentical(serial, fig5StyleSweep(hw)));
}

TEST(SweepRunner, RunTrialsPassesDerivedSeedsInIndexOrder)
{
    SweepRunner runner(4);
    auto seeds = runner.runTrials(
        100, /*seedBase=*/42,
        [](std::size_t, std::uint64_t seed) { return seed; });
    ASSERT_EQ(seeds.size(), 100u);
    for (std::size_t i = 0; i < seeds.size(); ++i)
        EXPECT_EQ(seeds[i], deriveSeed(42, i)) << "trial " << i;
}

TEST(SweepRunner, RunSweepPreservesConfigOrder)
{
    SweepRunner runner(3);
    std::vector<int> configs;
    for (int i = 0; i < 57; ++i)
        configs.push_back(i);
    auto out = runner.runSweep(configs, [](int c) { return c * c; });
    ASSERT_EQ(out.size(), configs.size());
    for (int i = 0; i < 57; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(SeedDerivation, GridOfBasesAndIndicesHasNoCollisions)
{
    // The naive seedBase ^ trialIndex derivation collides across
    // experiments immediately: base 1 trial 3 and base 2 trial 0 get
    // the same seed.
    EXPECT_EQ(1u ^ 3u, 2u ^ 0u);

    // The SplitMix64 derivation keeps a 64x64 (base, index) grid — 4096
    // seeds — fully distinct, and never hands out the degenerate seed 0.
    std::set<std::uint64_t> seen;
    for (std::uint64_t base = 0; base < 64; ++base) {
        for (std::uint64_t idx = 0; idx < 64; ++idx) {
            auto s = deriveSeed(base, idx);
            EXPECT_NE(s, 0u);
            EXPECT_TRUE(seen.insert(s).second)
                << "collision at base " << base << " index " << idx;
        }
    }
    EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(SeedDerivation, IsAPureFunctionOfBaseAndIndex)
{
    EXPECT_EQ(deriveSeed(7, 11), deriveSeed(7, 11));
    EXPECT_EQ(deriveSeed(7, 11), splitmix64(7 + splitmix64(11)));
}

TEST(ThreadPool, ForEachIndexCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(1000, 0);
    pool.forEachIndex(hits.size(),
                      [&hits](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, WorkerExceptionsPropagateToCaller)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.forEachIndex(8,
                                   [](std::size_t i) {
                                       if (i == 5)
                                           throw std::runtime_error(
                                               "trial 5 failed");
                                   }),
                 std::runtime_error);
    // The pool must survive a failed batch and run the next one.
    std::vector<int> hits(8, 0);
    pool.forEachIndex(hits.size(),
                      [&hits](std::size_t i) { hits[i]++; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ThrowingIndexDoesNotStarveTheRestOfTheBatch)
{
    // A cell that throws must fail alone: every other index still
    // runs (no deadlock, no silently skipped share), at any width.
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(16);
        try {
            pool.forEachIndex(hits.size(), [&hits](std::size_t i) {
                if (i == 3 || i == 4)
                    throw std::runtime_error("cell " +
                                             std::to_string(i));
                hits[i]++;
            });
            FAIL() << "exception must propagate (threads=" << threads
                   << ")";
        } catch (const std::runtime_error &e) {
            // Deterministic rethrow: the lowest failed index wins
            // regardless of which worker hit its failure first.
            EXPECT_STREQ(e.what(), "cell 3");
        }
        for (std::size_t i = 0; i < hits.size(); ++i) {
            if (i == 3 || i == 4)
                continue;
            EXPECT_EQ(hits[i].load(), 1)
                << "index " << i << " skipped at threads=" << threads;
        }
    }
}

TEST(ThreadPool, GpuccThreadsEnvironmentOverridesDefault)
{
    ASSERT_EQ(setenv("GPUCC_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3u);
    ASSERT_EQ(setenv("GPUCC_THREADS", "1", 1), 0);
    EXPECT_EQ(ThreadPool::defaultThreads(), 1u);
    ASSERT_EQ(unsetenv("GPUCC_THREADS"), 0);
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ThreadPoolDeathTest, MalformedGpuccThreadsFailsFastAndLoudly)
{
    // 0, negative, garbage, trailing junk, empty and absurd values are
    // configuration errors: the run must stop with a clear message,
    // not silently proceed at some other width (which would make
    // "reproducible at GPUCC_THREADS=N" a lie).
    auto withEnv = [](const char *v) {
        ASSERT_EQ(setenv("GPUCC_THREADS", v, 1), 0);
        EXPECT_EXIT(ThreadPool::defaultThreads(),
                    ::testing::ExitedWithCode(1), "GPUCC_THREADS")
            << "value: '" << v << "'";
    };
    withEnv("0");
    withEnv("-3");
    withEnv("banana");
    withEnv("4x");
    withEnv("");
    withEnv("100000000");
    ASSERT_EQ(unsetenv("GPUCC_THREADS"), 0);
}

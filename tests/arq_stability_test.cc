/**
 * @file
 * Seed-sweep stability of the reliable ARQ link: across 32 fault-
 * injection seeds of the bursty plan the link must always deliver the
 * payload with zero residual errors and a bounded retransmission
 * count. This pins the Section 8 zero-error guarantee as a property of
 * the protocol, not of one lucky seed.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "sim/exec/sweep_runner.h"
#include "verify/scenarios.h"

namespace gpucc::verify
{
namespace
{

TEST(ArqStability, ZeroResidualErrorsAcross32BurstySeeds)
{
    setVerbose(false);
    constexpr std::size_t seeds = 32;
    constexpr unsigned retryBudget = 64; // frames are 32 bits of 96

    const gpu::ArchParams arch = gpu::keplerK40c();
    const BitVec payload = scenarioPayload(96);

    sim::exec::SweepRunner runner;
    auto results = runner.runTrials(
        seeds, 1234, [&](std::size_t, std::uint64_t seed) {
            return measureArqOverPlan(arch, "bursty", seed, payload);
        });

    ASSERT_EQ(results.size(), seeds);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ArqMeasurement &r = results[i];
        EXPECT_TRUE(r.complete) << "seed index " << i;
        EXPECT_DOUBLE_EQ(r.residualBer, 0.0)
            << "seed index " << i << ": ARQ leaked errors";
        EXPECT_LE(r.retransmissions, retryBudget)
            << "seed index " << i << ": retry count unbounded";
        EXPECT_GT(r.goodputBps, 0.0) << "seed index " << i;
    }
}

TEST(ArqStability, ReplayIsDeterministicPerSeed)
{
    setVerbose(false);
    const gpu::ArchParams arch = gpu::keplerK40c();
    const BitVec payload = scenarioPayload(96);
    ArqMeasurement a = measureArqOverPlan(arch, "bursty", 3, payload);
    ArqMeasurement b = measureArqOverPlan(arch, "bursty", 3, payload);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_DOUBLE_EQ(a.goodputBps, b.goodputBps);
    EXPECT_DOUBLE_EQ(a.residualBer, b.residualBer);
}

} // namespace
} // namespace gpucc::verify

/**
 * @file
 * Unit tests for src/common: formatting, statistics, bitstreams, tables.
 */

#include <gtest/gtest.h>

#include "common/bitstream.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace gpucc
{
namespace
{

TEST(Types, TickCycleRoundTrip)
{
    EXPECT_EQ(cyclesToTicks(Cycle(1)), ticksPerCycle);
    EXPECT_EQ(ticksToCycles(cyclesToTicks(Cycle(123))), 123u);
    EXPECT_EQ(cyclesToTicks(0.5), ticksPerCycle / 2);
    EXPECT_DOUBLE_EQ(ticksToCyclesF(cyclesToTicks(2.25)), 2.25);
}

TEST(Types, FractionalOccupancyIsExactEnough)
{
    // 32 lanes over 48 SP units = 2/3 cycle must not collapse to 0.
    Tick t = cyclesToTicks(32.0 / 48.0);
    EXPECT_GT(t, 0u);
    EXPECT_NEAR(ticksToCyclesF(t), 2.0 / 3.0, 0.01);
}

TEST(Log, StrfmtFormats)
{
    EXPECT_EQ(strfmt("a=%d b=%s", 7, "x"), "a=7 b=x");
    EXPECT_EQ(strfmt("no args"), "no args");
}

TEST(Stats, AccumulatorBasics)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.add(1.0);
    a.add(2.0);
    a.add(3.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    EXPECT_NEAR(a.stddev(), 0.8165, 1e-3);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Stats, SeparationThresholdIsMidpoint)
{
    Accumulator zeros;
    Accumulator ones;
    zeros.add(49.0);
    zeros.add(51.0);
    ones.add(110.0);
    ones.add(114.0);
    EXPECT_DOUBLE_EQ(separationThreshold(zeros, ones), (50.0 + 112.0) / 2);
}

TEST(Stats, HistogramBinsAndClamps)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0); // clamps into bin 0
    h.add(0.5);
    h.add(9.9);
    h.add(99.0); // clamps into last bin
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
}

TEST(Bitstream, TextRoundTrip)
{
    std::string msg = "GPU covert channel!";
    BitVec bits = textToBits(msg);
    EXPECT_EQ(bits.size(), msg.size() * 8);
    EXPECT_EQ(bitsToText(bits), msg);
}

TEST(Bitstream, PartialByteDropped)
{
    BitVec bits = textToBits("AB");
    bits.resize(12); // 1.5 bytes
    EXPECT_EQ(bitsToText(bits), "A");
}

TEST(Bitstream, AlternatingPattern)
{
    BitVec b = alternatingBits(5);
    ASSERT_EQ(b.size(), 5u);
    EXPECT_EQ(b[0], 1);
    EXPECT_EQ(b[1], 0);
    EXPECT_EQ(b[2], 1);
}

TEST(Bitstream, RandomBitsDeterministicPerSeed)
{
    Rng r1(42);
    Rng r2(42);
    EXPECT_EQ(randomBits(64, r1), randomBits(64, r2));
}

TEST(Bitstream, CompareCountsErrorsAndMissing)
{
    BitVec sent = {1, 0, 1, 1, 0, 0};
    BitVec got = {1, 1, 1, 1};
    auto r = compareBits(sent, got);
    EXPECT_EQ(r.transmitted, 6u);
    EXPECT_EQ(r.received, 4u);
    EXPECT_EQ(r.errors, 1u);
    EXPECT_EQ(r.missing, 2u);
    EXPECT_DOUBLE_EQ(r.errorRate(), 3.0 / 6.0);
    EXPECT_FALSE(r.errorFree());
}

TEST(Bitstream, CompareErrorFree)
{
    BitVec sent = {1, 0, 1};
    auto r = compareBits(sent, sent);
    EXPECT_TRUE(r.errorFree());
    EXPECT_DOUBLE_EQ(r.errorRate(), 0.0);
}

TEST(Table, RendersAlignedColumns)
{
    Table t("demo");
    t.header({"GPU", "Bandwidth"});
    t.row({"Kepler", "42 Kbps"});
    t.row({"Fermi", "33 Kbps"});
    std::string s = t.render();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("Kepler"), std::string::npos);
    EXPECT_NE(s.find("42 Kbps"), std::string::npos);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtKbps(42000.0), "42.0 Kbps");
    EXPECT_EQ(fmtKbps(4.25e6), "4.25 Mbps");
}

TEST(Rng, DistributionsInRange)
{
    Rng r(7);
    for (int i = 0; i < 100; ++i) {
        auto v = r.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        auto d = r.uniformReal(0.5, 1.5);
        EXPECT_GE(d, 0.5);
        EXPECT_LT(d, 1.5);
    }
}

} // namespace
} // namespace gpucc

/**
 * @file
 * Tests for the launch-per-bit covert channels (Sections 4-6): the
 * shared framework, the L1/L2 constant-cache channels, the SFU channel,
 * and the global-atomics channel in all three scenarios.
 */

#include <gtest/gtest.h>

#include "covert/channel.h"
#include "covert/channels/atomic_channel.h"
#include "covert/channels/cache_sets.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/channels/l2_const_channel.h"
#include "covert/channels/sfu_channel.h"

namespace gpucc::covert
{
namespace
{

using gpu::ArchParams;

BitVec
testMessage(std::size_t n, std::uint64_t seed = 99)
{
    Rng rng(seed);
    return randomBits(n, rng);
}

TEST(Framework, HarnessCreatesIndependentHosts)
{
    TwoPartyHarness h(gpu::keplerK40c());
    EXPECT_NE(&h.trojanHost(), &h.spyHost());
    EXPECT_NE(h.trojanStream().id(), h.spyStream().id());
}

TEST(Framework, FinalizeResultComputesBandwidth)
{
    ChannelResult r;
    r.sent = BitVec(100, 1);
    auto arch = gpu::keplerK40c();
    // 100 bits in 1 ms -> 100 Kbps.
    Tick oneMs = arch.ticksFromUs(1000.0);
    finalizeResult(r, arch, oneMs);
    EXPECT_NEAR(r.bandwidthBps, 100e3, 1e2);
    EXPECT_NEAR(r.seconds, 1e-3, 1e-6);
}

TEST(CacheSets, AddressesFillExactlyOneSet)
{
    auto arch = gpu::keplerK40c();
    const auto &geom = arch.constMem.l1;
    for (unsigned set = 0; set < geom.numSets(); ++set) {
        auto addrs = setFillingAddrs(geom, 0, set);
        ASSERT_EQ(addrs.size(), geom.ways);
        for (Addr a : addrs)
            EXPECT_EQ(geom.setOf(a), set);
        // Distinct lines.
        for (std::size_t i = 0; i < addrs.size(); ++i)
            for (std::size_t j = i + 1; j < addrs.size(); ++j)
                EXPECT_NE(geom.lineAlign(addrs[i]),
                          geom.lineAlign(addrs[j]));
    }
}

TEST(CacheSets, BaseOffsetPreservesSetIndex)
{
    auto arch = gpu::keplerK40c();
    const auto &geom = arch.constMem.l1;
    Addr base = 7 * setStride(geom);
    for (Addr a : setFillingAddrs(geom, base, 3))
        EXPECT_EQ(geom.setOf(a), 3u);
}

// ---- Per-architecture error-free transmission -------------------------

class L1ChannelTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(L1ChannelTest, TransmitsErrorFree)
{
    L1ConstChannel ch(GetParam());
    auto r = ch.transmit(testMessage(48));
    EXPECT_TRUE(r.report.errorFree()) << GetParam().name;
    EXPECT_GT(r.bandwidthBps, 20e3) << GetParam().name;
    EXPECT_LT(r.bandwidthBps, 60e3) << GetParam().name;
}

TEST_P(L1ChannelTest, LatencyPopulationsMatchHitMissLatencies)
{
    const ArchParams &arch = GetParam();
    L1ConstChannel ch(arch);
    auto r = ch.transmit(alternatingBits(32));
    // 0 bits: mostly L1 hits. 1 bits: L1 misses served by the L2; the
    // per-bit average sits between the decode threshold and the L2 hit
    // latency (probes outside the trojan's window dilute it downward).
    EXPECT_NEAR(r.zeroMetric.mean(),
                static_cast<double>(arch.constMem.l1HitCycles), 6.0);
    EXPECT_GT(r.oneMetric.mean(), r.threshold + 3.0);
    EXPECT_LE(r.oneMetric.mean(),
              static_cast<double>(arch.constMem.l2HitCycles) + 6.0);
}

INSTANTIATE_TEST_SUITE_P(AllGpus, L1ChannelTest,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

class L2ChannelTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(L2ChannelTest, TransmitsErrorFree)
{
    L2ConstChannel ch(GetParam());
    auto r = ch.transmit(testMessage(48));
    EXPECT_TRUE(r.report.errorFree()) << GetParam().name;
}

TEST_P(L2ChannelTest, SlowerThanL1Channel)
{
    // Figure 4: the L2 channel bandwidth sits below the L1 channel's.
    L1ConstChannel l1(GetParam());
    L2ConstChannel l2(GetParam());
    auto m = testMessage(32);
    EXPECT_LT(l2.transmit(m).bandwidthBps, l1.transmit(m).bandwidthBps);
}

TEST_P(L2ChannelTest, WorksAcrossDifferentSms)
{
    // The spy and trojan use one block each; verify they were NOT
    // co-resident (this is the inter-SM channel).
    L2ConstChannel ch(GetParam());
    ch.transmit(alternatingBits(4));
    const auto &kernels = ch.harness().device().kernels();
    const gpu::KernelInstance *spy = nullptr, *trojan = nullptr;
    for (const auto &k : kernels) {
        if (k->name() == "l2-spy")
            spy = k.get();
        if (k->name() == "l2-trojan")
            trojan = k.get();
    }
    ASSERT_NE(spy, nullptr);
    ASSERT_NE(trojan, nullptr);
    EXPECT_NE(spy->blockRecords()[0].smId, trojan->blockRecords()[0].smId);
}

INSTANTIATE_TEST_SUITE_P(AllGpus, L2ChannelTest,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

class SfuChannelTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(SfuChannelTest, TransmitsErrorFree)
{
    SfuChannel ch(GetParam());
    auto r = ch.transmit(testMessage(48));
    EXPECT_TRUE(r.report.errorFree()) << GetParam().name;
}

TEST_P(SfuChannelTest, BandwidthMatchesPaperBand)
{
    // Section 5.2: 21 / 24 / 28 Kbps.
    SfuChannel ch(GetParam());
    auto r = ch.transmit(testMessage(48));
    EXPECT_GT(r.bandwidthBps, 15e3) << GetParam().name;
    EXPECT_LT(r.bandwidthBps, 36e3) << GetParam().name;
}

TEST_P(SfuChannelTest, LatencySymbolsMatchFigure6Steps)
{
    const ArchParams &arch = GetParam();
    SfuChannel ch(arch);
    auto r = ch.transmit(alternatingBits(24));
    double expect0 = 0.0, expect1 = 0.0;
    switch (arch.generation) {
      case gpu::Generation::Fermi:
        expect0 = 41;
        expect1 = 48;
        break;
      case gpu::Generation::Kepler:
        expect0 = 18;
        expect1 = 24;
        break;
      case gpu::Generation::Maxwell:
        expect0 = 15;
        expect1 = 20;
        break;
    }
    EXPECT_NEAR(r.zeroMetric.mean(), expect0, 2.0) << arch.name;
    EXPECT_NEAR(r.oneMetric.mean(), expect1, 2.5) << arch.name;
}

INSTANTIATE_TEST_SUITE_P(AllGpus, SfuChannelTest,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

// ---- Atomic channel -----------------------------------------------------

class AtomicScenarioTest
    : public ::testing::TestWithParam<std::tuple<ArchParams, AtomicScenario>>
{
};

TEST_P(AtomicScenarioTest, TransmitsErrorFree)
{
    auto [arch, scen] = GetParam();
    AtomicChannel ch(arch, scen);
    auto r = ch.transmit(testMessage(32));
    EXPECT_TRUE(r.report.errorFree())
        << arch.name << " / " << atomicScenarioName(scen);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AtomicScenarioTest,
    ::testing::Combine(
        ::testing::ValuesIn(gpu::allArchitectures()),
        ::testing::Values(AtomicScenario::FixedPerThread,
                          AtomicScenario::StridedCoalesced,
                          AtomicScenario::ConsecutiveUncoalesced)),
    [](const auto &info) {
        std::string n = std::get<0>(info.param).name + "_S" +
                        std::to_string(static_cast<int>(
                            std::get<1>(info.param)) + 1);
        for (auto &c : n)
            if (c == ' ')
                c = '_';
        return n;
    });

TEST(AtomicChannel, Scenario3IsSlowestOnEveryGpu)
{
    // Figure 10: un-coalesced consecutive addresses defeat the fast L2
    // atomic path.
    for (const auto &arch : gpu::allArchitectures()) {
        auto m = testMessage(24);
        AtomicChannel s2(arch, AtomicScenario::StridedCoalesced);
        AtomicChannel s3(arch, AtomicScenario::ConsecutiveUncoalesced);
        EXPECT_LT(s3.transmit(m).bandwidthBps, s2.transmit(m).bandwidthBps)
            << arch.name;
    }
}

TEST(AtomicChannel, KeplerAndMaxwellBeatFermi)
{
    // Figure 10: L2-resident atomics give much higher channel bandwidth.
    auto m = testMessage(24);
    auto bw = [&](const ArchParams &a) {
        AtomicChannel ch(a, AtomicScenario::StridedCoalesced);
        return ch.transmit(m).bandwidthBps;
    };
    double fermi = bw(gpu::fermiC2075());
    EXPECT_GT(bw(gpu::keplerK40c()), 2.0 * fermi);
    EXPECT_GT(bw(gpu::maxwellM4000()), 2.0 * fermi);
}

TEST(AtomicChannel, LaneAddressPatterns)
{
    // Scenario 1: fixed per thread, one 128 B segment per warp.
    auto s1 = AtomicChannel::laneAddrs(AtomicScenario::FixedPerThread,
                                       0, 0, 5);
    ASSERT_EQ(s1.size(), static_cast<std::size_t>(warpSize));
    EXPECT_EQ(s1, AtomicChannel::laneAddrs(AtomicScenario::FixedPerThread,
                                           0, 0, 6)); // iteration-invariant
    // Scenario 2: coalesced (all lanes within one 128 B segment).
    auto s2 = AtomicChannel::laneAddrs(AtomicScenario::StridedCoalesced,
                                       0, 0, 3);
    Addr seg = s2[0] / 128;
    for (Addr a : s2)
        EXPECT_EQ(a / 128, seg);
    // ...but walking across iterations.
    auto s2b = AtomicChannel::laneAddrs(AtomicScenario::StridedCoalesced,
                                        0, 0, 4);
    EXPECT_NE(s2b[0] / 128, seg);
    // Scenario 3: un-coalesced (32 distinct segments).
    auto s3 = AtomicChannel::laneAddrs(
        AtomicScenario::ConsecutiveUncoalesced, 0, 0, 0);
    std::set<Addr> segs;
    for (Addr a : s3)
        segs.insert(a / 128);
    EXPECT_EQ(segs.size(), static_cast<std::size_t>(warpSize));
    // ...and consecutive per thread across iterations.
    auto s3b = AtomicChannel::laneAddrs(
        AtomicScenario::ConsecutiveUncoalesced, 0, 0, 1);
    EXPECT_EQ(s3b[0], s3[0] + 4);
}

TEST(AtomicChannel, AutoTuneFindsWorkingIterationCount)
{
    AtomicChannel ch(gpu::keplerK40c(), AtomicScenario::StridedCoalesced);
    unsigned n = ch.autoTuneIterations();
    EXPECT_GE(n, 4u);
    EXPECT_LE(n, 64u);
    auto r = ch.transmit(testMessage(32));
    EXPECT_TRUE(r.report.errorFree());
}

// ---- Cross-channel properties -----------------------------------------

TEST(Channels, TextMessageRoundTripsThroughEveryChannel)
{
    auto arch = gpu::keplerK40c();
    std::string secret = "k=0xDEADBEEF";
    BitVec bits = textToBits(secret);
    {
        L1ConstChannel ch(arch);
        EXPECT_EQ(bitsToText(ch.transmit(bits).received), secret);
    }
    {
        SfuChannel ch(arch);
        EXPECT_EQ(bitsToText(ch.transmit(bits).received), secret);
    }
    {
        AtomicChannel ch(arch, AtomicScenario::FixedPerThread);
        EXPECT_EQ(bitsToText(ch.transmit(bits).received), secret);
    }
}

class PatternTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PatternTest, L1ChannelHandlesAdversarialPatterns)
{
    auto arch = gpu::keplerK40c();
    L1ConstChannel ch(arch);
    BitVec msg;
    switch (GetParam()) {
      case 0:
        msg = BitVec(32, 0);
        break;
      case 1:
        msg = BitVec(32, 1);
        break;
      case 2:
        msg = alternatingBits(32);
        break;
      case 3: // long runs
        for (int i = 0; i < 32; ++i)
            msg.push_back(i < 16 ? 1 : 0);
        break;
      default:
        msg = testMessage(32, GetParam());
        break;
    }
    auto r = ch.transmit(msg);
    EXPECT_TRUE(r.report.errorFree()) << "pattern " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Patterns, PatternTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(Channels, SingleBitAndEmptyMessagesAreHandled)
{
    auto arch = gpu::keplerK40c();
    {
        L1ConstChannel ch(arch);
        auto r = ch.transmit(BitVec{1});
        EXPECT_TRUE(r.report.errorFree());
        EXPECT_EQ(r.received.size(), 1u);
    }
    {
        L1ConstChannel ch(arch);
        auto r = ch.transmit(BitVec{});
        EXPECT_EQ(r.received.size(), 0u);
        EXPECT_DOUBLE_EQ(r.bandwidthBps, 0.0);
        EXPECT_TRUE(r.report.errorFree());
    }
}

TEST(Channels, DeterministicForFixedSeed)
{
    auto run = [] {
        L1ConstChannel ch(gpu::keplerK40c());
        return ch.transmit(alternatingBits(16)).bandwidthBps;
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Channels, DifferentSeedsStillErrorFree)
{
    for (std::uint64_t seed : {7ull, 77ull, 777ull}) {
        LaunchPerBitConfig cfg;
        cfg.seed = seed;
        L1ConstChannel ch(gpu::keplerK40c(), cfg);
        EXPECT_TRUE(ch.transmit(testMessage(24, seed)).report.errorFree())
            << seed;
    }
}

TEST(Channels, ReducedMarginsRaiseErrorRate)
{
    // The Figure 5 mechanism: shrinking iterations under launch skew
    // degrades the channel.
    auto arch = gpu::keplerK40c();
    auto ber = [&](unsigned iters) {
        LaunchPerBitConfig cfg;
        cfg.iterations = iters;
        cfg.trojanLeadUs = 1.0;
        cfg.jitterUs = 2.5;
        L1ConstChannel ch(arch, cfg);
        return ch.transmit(testMessage(64)).report.errorRate();
    };
    EXPECT_LE(ber(20), 0.05);
    EXPECT_GT(ber(6), 0.10);
}

} // namespace
} // namespace gpucc::covert

/**
 * @file
 * Unit tests for the simulation kernel: resource timelines and the
 * event queue.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/resource_pool.h"

namespace gpucc::sim
{
namespace
{

TEST(ResourcePool, UncontendedRequestStartsImmediately)
{
    ResourcePool p("p", 1);
    auto r = p.acquire(100, 50);
    EXPECT_EQ(r.serviceStart, 100u);
    EXPECT_EQ(r.serviceEnd, 150u);
    EXPECT_EQ(r.waited(100), 0u);
}

TEST(ResourcePool, BackToBackRequestsQueue)
{
    ResourcePool p("p", 1);
    p.acquire(0, 100);
    auto r = p.acquire(10, 100);
    EXPECT_EQ(r.serviceStart, 100u); // waits for the first to drain
    EXPECT_EQ(r.waited(10), 90u);
}

TEST(ResourcePool, MultipleServersServeInParallel)
{
    ResourcePool p("p", 2);
    auto a = p.acquire(0, 100);
    auto b = p.acquire(0, 100);
    auto c = p.acquire(0, 100);
    EXPECT_EQ(a.serviceStart, 0u);
    EXPECT_EQ(b.serviceStart, 0u);
    EXPECT_EQ(c.serviceStart, 100u); // third waits for a server
}

TEST(ResourcePool, IdleGapsAreNotCharged)
{
    ResourcePool p("p", 1);
    p.acquire(0, 10);
    auto r = p.acquire(1000, 10);
    EXPECT_EQ(r.serviceStart, 1000u);
    EXPECT_EQ(p.busyTicks(), 20u);
    EXPECT_EQ(p.requests(), 2u);
}

TEST(ResourcePool, PeekDoesNotReserve)
{
    ResourcePool p("p", 1);
    p.acquire(0, 100);
    EXPECT_EQ(p.peekStart(0), 100u);
    EXPECT_EQ(p.peekStart(0), 100u); // unchanged
    auto r = p.acquire(0, 1);
    EXPECT_EQ(r.serviceStart, 100u);
}

TEST(ResourcePool, ResetClearsTimelines)
{
    ResourcePool p("p", 1);
    p.acquire(0, 1000);
    p.reset();
    auto r = p.acquire(0, 1);
    EXPECT_EQ(r.serviceStart, 0u);
    EXPECT_EQ(p.requests(), 1u);
}

// Property: with one server, total busy time never exceeds the span and
// requests never overlap.
class PoolPropertyTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PoolPropertyTest, SingleServerRequestsNeverOverlap)
{
    unsigned n = GetParam();
    ResourcePool p("p", 1);
    Tick prevEnd = 0;
    for (unsigned i = 0; i < n; ++i) {
        auto r = p.acquire(i * 3, 7);
        EXPECT_GE(r.serviceStart, prevEnd);
        prevEnd = r.serviceEnd;
    }
    EXPECT_EQ(p.busyTicks(), Tick(n) * 7);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PoolPropertyTest,
                         ::testing::Values(1u, 2u, 5u, 32u, 200u));

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, EqualTicksFireFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    q.schedule(5, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ReentrantScheduling)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] {
        order.push_back(1);
        q.schedule(2, [&] { order.push_back(2); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue q;
    int n = 0;
    q.schedule(1, [&] { ++n; });
    q.schedule(2, [&] { ++n; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(n, 1);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(n, 2);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue q;
    int n = 0;
    q.schedule(10, [&] { ++n; });
    q.schedule(20, [&] { ++n; });
    q.runUntil(15);
    EXPECT_EQ(n, 1);
    EXPECT_EQ(q.now(), 15u);
    q.run();
    EXPECT_EQ(n, 2);
}

TEST(EventQueue, LargeCallbacksFallBackToHeapCorrectly)
{
    // Captures beyond EventFn's inline buffer (or with nontrivial
    // destructors) take the heap path; behaviour must be identical.
    static_assert(!EventFn::storedInline<std::array<std::uint64_t, 8>>());
    EventQueue q;
    std::array<std::uint64_t, 8> big{1, 2, 3, 4, 5, 6, 7, 8};
    std::string tag = "heap-path-capture-well-beyond-inline-storage";
    std::uint64_t sum = 0;
    std::size_t len = 0;
    q.schedule(1, [big, &sum] {
        for (auto v : big)
            sum += v;
    });
    q.schedule(2, [tag, &len] { len = tag.size(); });
    q.run();
    EXPECT_EQ(sum, 36u);
    EXPECT_EQ(len, tag.size());
}

TEST(EventQueue, UnfiredHeapCallbacksAreReleasedOnDestruction)
{
    auto guard = std::make_shared<int>(7);
    std::weak_ptr<int> watch = guard;
    {
        EventQueue q;
        q.schedule(1, [guard] { (void)*guard; });
        guard.reset();
        EXPECT_FALSE(watch.expired()); // alive inside the queue
    }
    EXPECT_TRUE(watch.expired()); // destroyed with the queue
}

TEST(ResourcePool, WidePoolMatchesInlineSemantics)
{
    // More servers than the inline next-free array: the heap fallback
    // must show the same timeline behaviour.
    ASSERT_GT(12u, ResourcePool::inlineCapacity);
    ResourcePool p("wide", 12);
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(p.acquire(0, 100).serviceStart, 0u);
    auto r = p.acquire(0, 100);
    EXPECT_EQ(r.serviceStart, 100u); // 13th waits for a server
    EXPECT_EQ(p.peekStart(150), 150u);
    p.reset();
    EXPECT_EQ(p.acquire(0, 1).serviceStart, 0u);
}

TEST(EventQueue, AdvanceToMovesIdleClock)
{
    EventQueue q;
    q.advanceTo(500);
    EXPECT_EQ(q.now(), 500u);
}

// Scheduling in the past is a model bug; it must never rewind simulated
// time. Debug builds panic at the offending call site; release builds
// clamp the event to now() and keep going.
#ifdef NDEBUG
TEST(EventQueue, PastSchedulingClampsToNowInRelease)
{
    EventQueue q;
    std::vector<Tick> firedAt;
    q.schedule(10, [&] {
        firedAt.push_back(q.now());
        q.schedule(5, [&] { firedAt.push_back(q.now()); });
    });
    q.run();
    ASSERT_EQ(firedAt.size(), 2u);
    EXPECT_EQ(firedAt[0], 10u);
    EXPECT_EQ(firedAt[1], 10u); // clamped, not rewound
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, ClampedEventKeepsFifoOrderAtNow)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(1);
        q.schedule(10, [&] { order.push_back(2); }); // legal: == now()
        q.schedule(3, [&] { order.push_back(3); });  // clamped to 10
    });
    q.run();
    // The clamped event lands at now() and fires after the event that
    // was scheduled at now() before it (FIFO within a tick).
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}
#else
TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}
#endif

} // namespace
} // namespace gpucc::sim

/**
 * @file
 * Unit tests for the memory subsystem: cache geometry, set-associative
 * LRU behaviour (the prime+probe substrate), the coalescer, the
 * constant-cache hierarchy timing, and global-memory atomics.
 */

#include <gtest/gtest.h>

#include "gpu/arch_params.h"
#include "mem/cache_geometry.h"
#include "mem/coalescer.h"
#include "mem/const_memory.h"
#include "mem/global_memory.h"
#include "mem/set_assoc_cache.h"

namespace gpucc::mem
{
namespace
{

using gpucc::gpu::keplerK40c;

CacheGeometry keplerL1{2048, 64, 4};   // 8 sets
CacheGeometry keplerL2{32768, 256, 8}; // 16 sets

TEST(CacheGeometry, DerivedParameters)
{
    EXPECT_EQ(keplerL1.numSets(), 8u);
    EXPECT_EQ(keplerL2.numSets(), 16u);
    EXPECT_EQ(keplerL1.setOf(0), 0u);
    EXPECT_EQ(keplerL1.setOf(64), 1u);
    EXPECT_EQ(keplerL1.setOf(512), 0u); // stride 512 maps to set 0
    EXPECT_EQ(keplerL1.lineAlign(100), 64u);
}

TEST(CacheGeometry, PaperStridesHitOneSet)
{
    // Section 4.2: a 2 KB array at stride 512 B -> 4 lines, all set 0.
    for (Addr a = 0; a < 2048; a += 512)
        EXPECT_EQ(keplerL1.setOf(a), 0u);
    // Section 4.3: stride 4096 = 16 sets * 256 B on the L2.
    for (Addr a = 0; a < 32768; a += 4096)
        EXPECT_EQ(keplerL2.setOf(a), 0u);
}

TEST(SetAssocCache, ColdMissThenHit)
{
    SetAssocCache c("c", keplerL1);
    EXPECT_FALSE(c.access(0).hit);
    EXPECT_TRUE(c.access(0).hit);
    EXPECT_TRUE(c.access(63).hit);  // same line
    EXPECT_FALSE(c.access(64).hit); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(SetAssocCache, FillsAllWaysBeforeEvicting)
{
    SetAssocCache c("c", keplerL1);
    // 4 lines mapping to set 0.
    for (Addr a = 0; a < 4 * 512; a += 512)
        EXPECT_FALSE(c.access(a).hit);
    // All four hit now.
    for (Addr a = 0; a < 4 * 512; a += 512)
        EXPECT_TRUE(c.access(a).hit);
    EXPECT_EQ(c.validLinesInSet(0), 4u);
}

TEST(SetAssocCache, LruEvictsOldest)
{
    SetAssocCache c("c", keplerL1);
    c.access(0 * 512);
    c.access(1 * 512);
    c.access(2 * 512);
    c.access(3 * 512);
    c.access(0 * 512);              // refresh line 0
    auto r = c.access(4 * 512);     // evicts line 1*512 (LRU)
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victimLine, 512u);
    EXPECT_TRUE(c.access(0).hit);       // line 0 survived
    EXPECT_FALSE(c.access(512).hit);    // line 1 evicted
}

TEST(SetAssocCache, PrimeEvictsVictimExactly)
{
    // The covert-channel primitive: trojan primes set 0 with its own
    // 4 lines; every spy line in set 0 must now miss.
    SetAssocCache c("c", keplerL1);
    const Addr spyBase = 0;
    const Addr trojanBase = 1 << 20;
    for (int i = 0; i < 4; ++i)
        c.access(spyBase + Addr(i) * 512);
    for (int i = 0; i < 4; ++i)
        c.access(trojanBase + Addr(i) * 512);
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(c.probe(spyBase + Addr(i) * 512));
}

TEST(SetAssocCache, OtherSetsUnaffectedByPrime)
{
    SetAssocCache c("c", keplerL1);
    c.access(64); // set 1
    for (int i = 0; i < 8; ++i)
        c.access(Addr(1 << 20) + Addr(i) * 512); // hammer set 0
    EXPECT_TRUE(c.probe(64));
}

TEST(SetAssocCache, ProbeDoesNotDisturbLru)
{
    SetAssocCache c("c", keplerL1);
    c.access(0 * 512);
    c.access(1 * 512);
    c.access(2 * 512);
    c.access(3 * 512);
    EXPECT_TRUE(c.probe(0));
    c.access(4 * 512); // must evict 0*512 (LRU despite probe)
    EXPECT_FALSE(c.probe(0));
}

TEST(SetAssocCache, FlushAndInvalidate)
{
    SetAssocCache c("c", keplerL1);
    c.access(0);
    c.access(64);
    EXPECT_TRUE(c.invalidate(0));
    EXPECT_FALSE(c.invalidate(0));
    EXPECT_TRUE(c.probe(64));
    c.flush();
    EXPECT_FALSE(c.probe(64));
}

// Property: sequentially scanning an array larger than the cache with
// LRU replacement thrashes the overflowing sets on every pass — the
// staircase mechanism behind Figures 2 and 3.
class ThrashTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ThrashTest, OverflowingSetsMissEveryPass)
{
    int extraLines = GetParam();
    SetAssocCache c("c", keplerL1);
    std::size_t lines = keplerL1.sizeBytes / keplerL1.lineBytes +
                        static_cast<std::size_t>(extraLines);
    // Warm-up pass.
    for (std::size_t i = 0; i < lines; ++i)
        c.access(Addr(i) * 64);
    // Steady-state pass: exactly (extraLines ? overflowSets*(ways+1) : 0)
    // misses, where each overflowing set has ways+1 resident candidates.
    std::uint64_t missesBefore = c.misses();
    for (std::size_t i = 0; i < lines; ++i)
        c.access(Addr(i) * 64);
    std::uint64_t newMisses = c.misses() - missesBefore;
    if (extraLines == 0) {
        EXPECT_EQ(newMisses, 0u);
    } else {
        std::uint64_t overflowSets = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(extraLines), keplerL1.numSets());
        EXPECT_EQ(newMisses, overflowSets * (keplerL1.ways + 1));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThrashTest,
                         ::testing::Values(0, 1, 2, 4, 8));

TEST(Coalescer, CoalescedAccessesFormOneTransaction)
{
    Coalescer co(128);
    std::vector<Addr> lanes;
    for (int i = 0; i < 32; ++i)
        lanes.push_back(Addr(i) * 4); // consecutive words
    auto txns = co.coalesce(lanes);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].segmentBase, 0u);
    EXPECT_EQ(txns[0].laneOps, 32u);
}

TEST(Coalescer, StridedAccessesScatter)
{
    Coalescer co(128);
    std::vector<Addr> lanes;
    for (int i = 0; i < 32; ++i)
        lanes.push_back(Addr(i) * 128);
    auto txns = co.coalesce(lanes);
    EXPECT_EQ(txns.size(), 32u);
    for (const auto &t : txns)
        EXPECT_EQ(t.laneOps, 1u);
}

TEST(Coalescer, MixedPattern)
{
    Coalescer co(128);
    std::vector<Addr> lanes{0, 4, 128, 132, 256};
    auto txns = co.coalesce(lanes);
    ASSERT_EQ(txns.size(), 3u);
    EXPECT_EQ(txns[0].laneOps, 2u);
    EXPECT_EQ(txns[1].laneOps, 2u);
    EXPECT_EQ(txns[2].laneOps, 1u);
}

TEST(ConstMemory, L1HitFasterThanL2HitFasterThanMem)
{
    auto arch = keplerK40c();
    ConstMemory cm(arch.constMem, 1);
    // Cold: L2 miss -> memory latency.
    auto cold = cm.access(0, 0, 0);
    EXPECT_FALSE(cold.l1Hit);
    EXPECT_FALSE(cold.l2Hit);
    // Warm: L1 hit.
    auto warm = cm.access(0, 0, cold.completion);
    EXPECT_TRUE(warm.l1Hit);
    Tick l1Lat = warm.completion - cold.completion;
    EXPECT_EQ(ticksToCycles(l1Lat), arch.constMem.l1HitCycles);
    EXPECT_GT(ticksToCycles(cold.completion),
              arch.constMem.l2HitCycles);
}

TEST(ConstMemory, L1MissL2HitIntermediateLatency)
{
    auto arch = keplerK40c();
    ConstMemory cm(arch.constMem, 2);
    // SM0 warms the shared L2.
    auto a = cm.access(0, 0, 0);
    // SM1 misses its own L1 but hits L2.
    auto b = cm.access(1, 0, a.completion);
    EXPECT_FALSE(b.l1Hit);
    EXPECT_TRUE(b.l2Hit);
    Cycle lat = ticksToCycles(b.completion - a.completion);
    EXPECT_NEAR(static_cast<double>(lat),
                static_cast<double>(arch.constMem.l2HitCycles), 2.0);
}

TEST(ConstMemory, SeparateL1PerSm)
{
    auto arch = keplerK40c();
    ConstMemory cm(arch.constMem, 2);
    cm.access(0, 0, 0);
    EXPECT_TRUE(cm.l1Cache(0).probe(0));
    EXPECT_FALSE(cm.l1Cache(1).probe(0));
}

TEST(ConstMemory, CrossKernelEvictionInSharedL1)
{
    // Trojan (address base B) primes set 0 of SM0's L1; spy lines die.
    auto arch = keplerK40c();
    ConstMemory cm(arch.constMem, 1);
    Tick t = 0;
    for (int i = 0; i < 4; ++i)
        t = cm.access(0, Addr(i) * 512, t).completion;
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(cm.l1Cache(0).probe(Addr(i) * 512));
    Addr trojanBase = 1 << 20;
    for (int i = 0; i < 4; ++i)
        t = cm.access(0, trojanBase + Addr(i) * 512, t).completion;
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(cm.l1Cache(0).probe(Addr(i) * 512));
}

TEST(GlobalMemory, AtomicFunctionalSemantics)
{
    auto arch = keplerK40c();
    GlobalMemory gm(arch.gmem);
    std::vector<std::uint64_t> old;
    gm.atomicAdd({0x100, 0x100, 0x200}, 5, 0, &old);
    ASSERT_EQ(old.size(), 3u);
    EXPECT_EQ(old[0], 0u);
    EXPECT_EQ(old[1], 5u); // second lane sees the first lane's add
    EXPECT_EQ(old[2], 0u);
    EXPECT_EQ(gm.peek(0x100), 10u);
    EXPECT_EQ(gm.peek(0x200), 5u);
}

TEST(GlobalMemory, UncoalescedAtomicsAreSlowest)
{
    // Figure 10, scenario 3: one warp atomic spread over 32 segments
    // pays 32 per-transaction overheads; the coalesced single-segment
    // form pays one overhead plus the per-lane serialization.
    auto arch = keplerK40c();
    GlobalMemory gm(arch.gmem);
    std::vector<Addr> sameLine, spread;
    for (int i = 0; i < 32; ++i) {
        sameLine.push_back(Addr(i) * 4);
        spread.push_back(Addr(i) * 4096);
    }
    Tick tSame = gm.atomicAdd(sameLine, 1, 0);
    GlobalMemory gm2(arch.gmem);
    Tick tSpread = gm2.atomicAdd(spread, 1, 0);
    EXPECT_GT(tSpread, tSame);
    // Both still complete no sooner than the atomic round trip.
    EXPECT_GE(ticksToCycles(tSame), arch.gmem.atomicLatencyCycles);
}

TEST(GlobalMemory, SameLineSerializationScalesWithLaneCount)
{
    auto arch = keplerK40c();
    GlobalMemory gm(arch.gmem);
    std::vector<Addr> few(4, 0x100), many(32, 0x100);
    Tick tFew = gm.atomicAdd(few, 1, 0);
    GlobalMemory gm2(arch.gmem);
    Tick tMany = gm2.atomicAdd(many, 1, 0);
    EXPECT_GT(tMany, tFew);
}

TEST(GlobalMemory, FermiAtomicsSlowerThanKepler)
{
    auto kepler = keplerK40c();
    auto fermi = gpucc::gpu::fermiC2075();
    GlobalMemory gmK(kepler.gmem);
    GlobalMemory gmF(fermi.gmem);
    std::vector<Addr> sameLine;
    for (int i = 0; i < 32; ++i)
        sameLine.push_back(Addr(i) * 4);
    // Repeated warp atomics to the same line: Fermi's 9x occupancy
    // dominates.
    Tick tK = 0, tF = 0;
    for (int r = 0; r < 8; ++r)
        tK = gmK.atomicAdd(sameLine, 1, tK);
    for (int r = 0; r < 8; ++r)
        tF = gmF.atomicAdd(sameLine, 1, tF);
    // Compare in cycles of equal count (both expressed in ticks here;
    // the 9x occupancy difference swamps the latency difference).
    EXPECT_GT(tF, tK * 2);
}

TEST(GlobalMemory, PartitionInterleaving)
{
    auto arch = keplerK40c();
    GlobalMemory gm(arch.gmem);
    EXPECT_EQ(gm.partitionOf(0), 0u);
    EXPECT_EQ(gm.partitionOf(256), 1u);
    EXPECT_EQ(gm.partitionOf(256 * 6), 0u);
}

TEST(GlobalMemory, LoadsAndStoresComplete)
{
    auto arch = keplerK40c();
    GlobalMemory gm(arch.gmem);
    std::vector<Addr> lanes{0, 4, 8};
    Tick tl = gm.load(lanes, 0);
    EXPECT_GE(ticksToCycles(tl), arch.gmem.loadLatencyCycles);
    Tick ts = gm.store(lanes, 0);
    EXPECT_LT(ts, tl); // stores are fire-and-forget
}

} // namespace
} // namespace gpucc::mem

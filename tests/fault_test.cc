/**
 * @file
 * Tests for the deterministic fault-injection harness (sim/fault): the
 * replay contract — the same (plan, seed) produces bit-identical runs,
 * at any host thread count — plus the observable effect of each fault
 * family and the no-op guarantee of the quiet plan.
 */

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitstream.h"
#include "common/log.h"
#include "covert/sync/duplex_channel.h"
#include "gpu/arch_params.h"
#include "gpu/warp_ctx.h"
#include "sim/exec/sweep_runner.h"
#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"

using namespace gpucc;
using sim::fault::FaultInjector;
using sim::fault::FaultKind;
using sim::fault::FaultPlan;
using sim::fault::FaultSpec;

namespace
{

BitVec
msg(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    return randomBits(n, rng);
}

/** One duplex transfer under @p plan; null plan name = no injector. */
struct FaultedRun
{
    BitVec fwd;
    BitVec rev;
    Tick windowTicks = 0;
    double fwdBer = 0.0;
    double revBer = 0.0;
    covert::RobustnessCounters robustness;
    sim::fault::FaultStats stats;
};

FaultedRun
runDuplex(const char *planName, std::uint64_t faultSeed,
          std::size_t bits = 48)
{
    setVerbose(false);
    covert::DuplexSyncChannel link(gpu::keplerK40c());
    std::unique_ptr<FaultInjector> inj;
    if (planName) {
        inj = std::make_unique<FaultInjector>(
            link.harness().device(), FaultPlan::preset(planName),
            faultSeed);
        inj->arm();
    }
    auto r = link.exchange(msg(bits, 21), msg(bits, 22));
    FaultedRun out;
    out.fwd = r.aToB.received;
    out.rev = r.bToA.received;
    out.windowTicks = std::max(r.aToB.windowTicks, r.bToA.windowTicks);
    out.fwdBer = r.aToB.report.errorRate();
    out.revBer = r.bToA.report.errorRate();
    out.robustness = r.aToB.robustness;
    out.robustness.add(r.bToA.robustness);
    if (inj)
        out.stats = inj->stats();
    return out;
}

} // namespace

TEST(FaultPlan, PresetsAreWellFormed)
{
    for (const auto &name : FaultPlan::presetNames()) {
        FaultPlan p = FaultPlan::preset(name);
        EXPECT_EQ(p.name, name);
        for (const auto &f : p.faults) {
            EXPECT_FALSE(f.name.empty()) << name;
            EXPECT_GE(f.repeat, 1u) << name << "/" << f.name;
            if (f.repeat > 1) {
                EXPECT_GT(f.periodCycles, 0u) << name << "/" << f.name;
            }
        }
    }
    EXPECT_TRUE(FaultPlan::preset("quiet").empty());
    EXPECT_FALSE(FaultPlan::preset("adversarial").empty());
}

TEST(FaultInjector, QuietPlanIsBitIdenticalNoOp)
{
    auto bare = runDuplex(nullptr, 0);
    auto quiet = runDuplex("quiet", 1);
    EXPECT_EQ(bare.fwd, quiet.fwd);
    EXPECT_EQ(bare.rev, quiet.rev);
    EXPECT_EQ(bare.windowTicks, quiet.windowTicks);
    EXPECT_EQ(quiet.stats.burstsLaunched, 0u);
    EXPECT_EQ(quiet.stats.thrashPasses, 0u);
}

TEST(FaultInjector, SamePlanAndSeedReplaysBitIdentically)
{
    auto a = runDuplex("adversarial", 11);
    auto b = runDuplex("adversarial", 11);
    EXPECT_EQ(a.fwd, b.fwd);
    EXPECT_EQ(a.rev, b.rev);
    EXPECT_EQ(a.windowTicks, b.windowTicks);
    EXPECT_EQ(a.robustness.timeouts, b.robustness.timeouts);
    EXPECT_EQ(a.robustness.retries, b.robustness.retries);
    EXPECT_EQ(a.robustness.rearms, b.robustness.rearms);
    EXPECT_EQ(a.stats.thrashPasses, b.stats.thrashPasses);
    EXPECT_EQ(a.stats.stallsApplied, b.stats.stallsApplied);
}

TEST(FaultInjector, ThreadCountDoesNotChangeFaultedResults)
{
    // Mirrors exec_test: a faulted sweep must be byte-identical no
    // matter how many host threads execute the trials.
    // All 8-byte fields: no padding, so memcmp compares only data.
    struct TrialResult
    {
        double fwdBer;
        double revBer;
        Tick window;
        std::uint64_t thrashPasses;
    };
    auto sweep = [](unsigned threads) {
        sim::exec::SweepRunner runner(threads);
        return runner.runTrials(
            4, /*seedBase=*/77,
            [](std::size_t, std::uint64_t seed) -> TrialResult {
                setVerbose(false);
                covert::DuplexSyncChannel link(gpu::keplerK40c());
                FaultInjector inj(link.harness().device(),
                                  FaultPlan::preset("adversarial"), seed);
                inj.arm();
                auto r = link.exchange(msg(32, 5), msg(32, 6));
                return {r.aToB.report.errorRate(),
                        r.bToA.report.errorRate(),
                        std::max(r.aToB.windowTicks, r.bToA.windowTicks),
                        inj.stats().thrashPasses};
            });
    };
    auto serial = sweep(1);
    auto dual = sweep(2);
    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    auto wide = sweep(hw);
    ASSERT_EQ(serial.size(), 4u);
    EXPECT_EQ(std::memcmp(serial.data(), dual.data(),
                          serial.size() * sizeof(TrialResult)),
              0);
    EXPECT_EQ(std::memcmp(serial.data(), wide.data(),
                          serial.size() * sizeof(TrialResult)),
              0);
}

TEST(FaultInjector, AdversarialPlanDegradesTheRawChannel)
{
    auto quiet = runDuplex(nullptr, 0, 96);
    auto bad = runDuplex("adversarial", 3, 96);
    EXPECT_EQ(quiet.fwdBer, 0.0);
    EXPECT_EQ(quiet.revBer, 0.0);
    double rawBer = (bad.fwdBer + bad.revBer) / 2.0;
    EXPECT_GE(rawBer, 0.05) << "fwd " << bad.fwdBer << " rev "
                            << bad.revBer;
    // The protocol's recovery paths must actually engage (satellite:
    // robustness counters surface timeouts/retries/re-arms).
    EXPECT_GT(bad.robustness.timeouts + bad.robustness.retries +
                  bad.robustness.rearms,
              0u);
    EXPECT_GT(bad.stats.thrashPasses, 0u);
}

TEST(FaultInjector, ClockDegradeCoarsensTheCycleCounter)
{
    setVerbose(false);
    covert::TwoPartyHarness parties(gpu::keplerK40c());
    auto &dev = parties.device();

    FaultPlan plan;
    plan.name = "clock-test";
    FaultSpec f;
    f.name = "always-coarse";
    f.kind = FaultKind::ClockDegrade;
    f.quantumCycles = 64;
    f.startCycle = 0;
    f.durationCycles = 100'000'000;
    plan.faults.push_back(f);
    FaultInjector inj(dev, plan, 5);
    inj.arm();

    gpu::KernelLaunch k;
    k.name = "clock-reader";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = warpSize;
    k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        for (int i = 0; i < 16; ++i) {
            std::uint64_t v = co_await ctx.clock();
            ctx.out(v);
            co_await ctx.sleep(333);
        }
        co_return;
    };
    auto &inst = parties.trojanHost().launch(parties.trojanStream(), k);
    parties.trojanHost().sync(inst);

    const auto &vals = inst.out(0);
    ASSERT_EQ(vals.size(), 16u);
    bool advanced = false;
    for (std::size_t i = 0; i < vals.size(); ++i) {
        EXPECT_EQ(vals[i] % 64, 0u) << "sample " << i;
        if (i > 0 && vals[i] != vals[i - 1])
            advanced = true;
    }
    EXPECT_TRUE(advanced); // quantized, not frozen
}

TEST(FaultInjector, WarpStallFreezesOnlyTheVictimStream)
{
    setVerbose(false);
    covert::TwoPartyHarness parties(gpu::keplerK40c());
    auto &dev = parties.device();

    FaultPlan plan;
    plan.name = "stall-test";
    FaultSpec f;
    f.name = "freeze-spy";
    f.kind = FaultKind::WarpStall;
    f.victimStream = 1; // the spy application's stream
    f.startCycle = 0;
    f.periodCycles = 20'000;
    f.durationCycles = 10'000;
    f.repeat = 60;
    plan.faults.push_back(f);
    FaultInjector inj(dev, plan, 9);
    inj.arm();

    auto makeBusyLoop = [] {
        gpu::KernelLaunch k;
        k.name = "busy-loop";
        k.config.gridBlocks = 1;
        k.config.threadsPerBlock = warpSize;
        k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
            for (int i = 0; i < 200; ++i)
                co_await ctx.sleep(200);
            co_return;
        };
        return k;
    };
    auto &tInst =
        parties.trojanHost().launch(parties.trojanStream(), makeBusyLoop());
    auto &sInst =
        parties.spyHost().launch(parties.spyStream(), makeBusyLoop());
    parties.trojanHost().sync(tInst);
    parties.spyHost().sync(sInst);

    Tick trojanDur = tInst.endTick() - tInst.startTick();
    Tick spyDur = sInst.endTick() - sInst.startTick();
    EXPECT_GT(inj.stats().stallsApplied, 0u);
    // ~half the spy's time sits inside stall windows; the trojan runs
    // at full speed.
    EXPECT_GT(static_cast<double>(spyDur),
              1.2 * static_cast<double>(trojanDur));
}

TEST(FaultInjector, CacheThrashEvictsTargetedSetsOnly)
{
    setVerbose(false);
    covert::TwoPartyHarness parties(gpu::keplerK40c());
    auto &dev = parties.device();
    auto &cmem = dev.constMem();
    const auto &geom = dev.arch().constMem.l1;
    Addr base = dev.allocConst(geom.sizeBytes,
                               geom.numSets() * geom.lineBytes);
    Addr inSet0 = base;                   // maps to set 0
    Addr inSet5 = base + 5 * geom.lineBytes; // maps to set 5

    // Prime both lines, then let a single thrash pass on set 0 run.
    cmem.access(0, inSet0, 0);
    cmem.access(0, inSet5, 0);

    FaultPlan plan;
    plan.name = "thrash-test";
    FaultSpec f;
    f.name = "kill-set-0";
    f.kind = FaultKind::CacheThrash;
    f.setBegin = 0;
    f.setEnd = 1;
    f.targetSm = 0;
    f.startCycle = 1'000;
    plan.faults.push_back(f);
    FaultInjector inj(dev, plan, 2);
    inj.arm();
    dev.runUntilIdle();
    EXPECT_EQ(inj.stats().thrashPasses, 1u);

    auto r0 = cmem.access(0, inSet0, dev.now());
    auto r5 = cmem.access(0, inSet5, dev.now());
    EXPECT_FALSE(r0.l1Hit); // evicted by the thrash pass
    EXPECT_TRUE(r5.l1Hit);  // untouched set survives
}

TEST(FaultInjector, KernelEvictLandsAndReplaysBitIdentically)
{
    // The eviction preset must preempt live blocks mid-exchange (the
    // 160-bit window crosses the first spy-evict occurrence), the
    // exchange must still terminate, and the whole faulted run must
    // replay bit-identically per seed.
    auto a = runDuplex("eviction", 3, 160);
    auto b = runDuplex("eviction", 3, 160);
    EXPECT_GT(a.stats.evictions, 0u);
    EXPECT_EQ(a.stats.evictions, b.stats.evictions);
    EXPECT_EQ(a.fwd, b.fwd);
    EXPECT_EQ(a.rev, b.rev);
    EXPECT_EQ(a.windowTicks, b.windowTicks);
}

TEST(FaultInjector, ThresholdDriftRampsDeterministically)
{
    setVerbose(false);
    covert::TwoPartyHarness parties(gpu::keplerK40c());

    FaultPlan plan;
    plan.name = "drift-test";
    FaultSpec d;
    d.name = "ramp";
    d.kind = FaultKind::ThresholdDrift;
    d.driftCycles = 40;
    d.startCycle = 1'000;
    d.durationCycles = 100'000;
    d.repeat = 1;
    plan.faults.push_back(d);
    FaultInjector inj(parties.device(), plan, 1);
    inj.arm();
    EXPECT_EQ(inj.stats().driftWindows, 1u);

    // Outside the window: no bias. Inside: a monotone 0 -> driftCycles
    // ramp with no noise component (the drift is a trend, not jitter).
    EXPECT_EQ(inj.latencyJitterAt(cyclesToTicks(Cycle(500)), 0), 0);
    auto early = inj.latencyJitterAt(cyclesToTicks(Cycle(6'000)), 0);
    auto mid = inj.latencyJitterAt(cyclesToTicks(Cycle(51'000)), 0);
    auto late = inj.latencyJitterAt(cyclesToTicks(Cycle(96'000)), 0);
    EXPECT_GE(early, 0);
    EXPECT_GT(mid, early);
    EXPECT_GT(late, mid);
    EXPECT_LE(late, 40);
    EXPECT_EQ(inj.latencyJitterAt(cyclesToTicks(Cycle(6'000)), 99),
              early); // salt-free: a trend, not noise
    EXPECT_EQ(inj.latencyJitterAt(cyclesToTicks(Cycle(200'000)), 0), 0);
}

TEST(FaultInjector, DisarmStopsInjection)
{
    setVerbose(false);
    covert::TwoPartyHarness parties(gpu::keplerK40c());
    auto &dev = parties.device();

    FaultPlan plan;
    plan.name = "disarm-test";
    FaultSpec f;
    f.name = "thrash-train";
    f.kind = FaultKind::CacheThrash;
    f.setBegin = 0;
    f.setEnd = 4;
    f.startCycle = 1'000;
    f.periodCycles = 1'000;
    f.repeat = 50;
    plan.faults.push_back(f);
    FaultInjector inj(dev, plan, 4);
    inj.arm();
    inj.disarm();
    dev.runUntilIdle();
    EXPECT_EQ(inj.stats().thrashPasses, 0u);
    EXPECT_FALSE(inj.armed());
}

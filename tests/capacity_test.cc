/**
 * @file
 * Tests for the capacity analysis (Hunger et al.-style bounds) and the
 * umbrella header's self-containedness.
 */

#include <gtest/gtest.h>

#include "gpucc.h" // the umbrella header must be self-contained

namespace gpucc::covert
{
namespace
{

TEST(Capacity, BinaryEntropyEndpoints)
{
    EXPECT_DOUBLE_EQ(binaryEntropy(0.0), 0.0);
    EXPECT_DOUBLE_EQ(binaryEntropy(1.0), 0.0);
    EXPECT_DOUBLE_EQ(binaryEntropy(0.5), 1.0);
    EXPECT_NEAR(binaryEntropy(0.11), 0.4999, 0.01);
}

TEST(Capacity, ErrorFreeChannelKeepsItsRawRate)
{
    ChannelResult r;
    r.sent = BitVec(100, 1);
    r.received = r.sent;
    r.report = compareBits(r.sent, r.received);
    r.bandwidthBps = 42e3;
    r.zeroMetric.add(49);
    r.oneMetric.add(106);
    auto e = estimateCapacity(r);
    EXPECT_DOUBLE_EQ(e.bscCapacityBps, 42e3);
    EXPECT_GT(e.symbolSeparation, 10.0);
}

TEST(Capacity, HalfErrorsCarryNothing)
{
    ChannelResult r;
    r.sent = alternatingBits(100);
    r.received = BitVec(100, 1); // half the bits wrong
    r.report = compareBits(r.sent, r.received);
    r.bandwidthBps = 100e3;
    auto e = estimateCapacity(r);
    EXPECT_NEAR(e.bscCapacityBps, 0.0, 1.0);
}

TEST(Capacity, DegradedChannelLosesCapacityMonotonically)
{
    auto at = [](double ber) {
        ChannelResult r;
        r.sent = BitVec(1000, 0);
        r.received = r.sent;
        r.report.transmitted = 1000;
        r.report.errors = static_cast<std::size_t>(ber * 1000);
        r.bandwidthBps = 100e3;
        return estimateCapacity(r).bscCapacityBps;
    };
    EXPECT_GT(at(0.01), at(0.05));
    EXPECT_GT(at(0.05), at(0.15));
    EXPECT_GT(at(0.15), at(0.40));
}

TEST(Capacity, LiveChannelEstimates)
{
    // A real run: the error-free L1 channel carries its full raw rate
    // with a wide symbol separation.
    L1ConstChannel ch(gpu::keplerK40c());
    Rng rng(5);
    auto r = ch.transmit(randomBits(48, rng));
    auto e = estimateCapacity(r);
    EXPECT_DOUBLE_EQ(e.bscCapacityBps, e.rawRateBps);
    EXPECT_GT(e.symbolSeparation, 3.0);
}

TEST(Capacity, FuzzedChannelLosesCapacity)
{
    LaunchPerBitConfig cfg;
    cfg.mitigations.timerFuzzCycles = 256;
    L1ConstChannel ch(gpu::keplerK40c(), cfg);
    Rng rng(5);
    auto r = ch.transmit(randomBits(96, rng));
    auto e = estimateCapacity(r);
    EXPECT_LT(e.bscCapacityBps, 0.9 * e.rawRateBps);
    EXPECT_LT(e.symbolSeparation, 3.0);
}

TEST(Umbrella, HeaderExposesEveryLayer)
{
    // Compile-time check mostly; touch one symbol per layer.
    EXPECT_EQ(gpu::keplerK40c().numSms, 15u);
    EXPECT_STREQ(gpu::multiprogPolicyName(gpu::MultiprogPolicy::Leftover),
                 "leftover");
    EXPECT_EQ(RepetitionCode(3).rateOverhead(), 3.0);
    EXPECT_FALSE(analyzeEvictionTrace({}).covertChannelSuspected);
    workloads::WorkloadSpec spec;
    EXPECT_EQ(spec.threadsPerBlock, 128u);
}

} // namespace
} // namespace gpucc::covert

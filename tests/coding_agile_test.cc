/**
 * @file
 * Tests for the Section 8 noise-tolerance alternatives: error-
 * correcting codes over the covert channel and idle-cache-set
 * discovery (frequency agility).
 */

#include <gtest/gtest.h>

#include "covert/agile/idle_discovery.h"
#include "covert/coding/error_code.h"
#include "covert/sync/sync_channel.h"
#include "workloads/interference.h"

namespace gpucc::covert
{
namespace
{

BitVec
msg(std::size_t n, std::uint64_t seed = 51)
{
    Rng rng(seed);
    return randomBits(n, rng);
}

/** Inject @p ber random bit flips. */
BitVec
flipRandom(const BitVec &bits, double ber, std::uint64_t seed)
{
    Rng rng(seed);
    BitVec out = bits;
    for (auto &b : out) {
        if (rng.bernoulli(ber))
            b ^= 1;
    }
    return out;
}

/** Inject a contiguous burst of flips. */
BitVec
flipBurst(const BitVec &bits, std::size_t start, std::size_t len)
{
    BitVec out = bits;
    for (std::size_t i = start; i < std::min(bits.size(), start + len);
         ++i) {
        out[i] ^= 1;
    }
    return out;
}

// ---- Pure coding properties -----------------------------------------------

TEST(Coding, RepetitionRoundTrip)
{
    RepetitionCode code(5);
    auto m = msg(64);
    EXPECT_EQ(code.decode(code.encode(m), m.size()), m);
    EXPECT_DOUBLE_EQ(code.rateOverhead(), 5.0);
}

TEST(Coding, InterleavedRepetitionRoundTrip)
{
    InterleavedRepetitionCode code(3);
    auto m = msg(64);
    EXPECT_EQ(code.decode(code.encode(m), m.size()), m);
}

TEST(Coding, HammingRoundTrip)
{
    Hamming74Code code;
    auto m = msg(64);
    EXPECT_EQ(code.decode(code.encode(m), m.size()), m);
    EXPECT_NEAR(code.rateOverhead(), 1.75, 1e-9);
}

TEST(Coding, HammingCorrectsAnySingleBitErrorPerBlock)
{
    Hamming74Code code;
    auto m = msg(4);
    BitVec coded = code.encode(m);
    ASSERT_EQ(coded.size(), 7u);
    for (std::size_t i = 0; i < 7; ++i) {
        BitVec corrupted = coded;
        corrupted[i] ^= 1;
        EXPECT_EQ(code.decode(corrupted, 4), m) << "flip at " << i;
    }
}

TEST(Coding, RepetitionMajorityCorrectsMinorityFlips)
{
    RepetitionCode code(5);
    auto m = msg(32);
    BitVec coded = code.encode(m);
    // Flip two of the five copies of every bit.
    for (std::size_t i = 0; i < m.size(); ++i) {
        coded[i * 5] ^= 1;
        coded[i * 5 + 3] ^= 1;
    }
    EXPECT_EQ(code.decode(coded, m.size()), m);
}

class RandomNoiseTest : public ::testing::TestWithParam<double>
{
};

TEST_P(RandomNoiseTest, InterleavedRepetitionReducesRandomBer)
{
    double ber = GetParam();
    InterleavedRepetitionCode code(5);
    auto m = msg(256);
    auto corrupted = flipRandom(code.encode(m), ber, 77);
    auto decoded = code.decode(corrupted, m.size());
    double residual = compareBits(m, decoded).errorRate();
    EXPECT_LT(residual, ber * 0.6) << "raw BER " << ber;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomNoiseTest,
                         ::testing::Values(0.05, 0.10, 0.15));

TEST(Coding, InterleavedBeatsAdjacentRepetitionOnBursts)
{
    // A burst the length of several bits wipes adjacent repetition but
    // costs interleaved repetition at most one vote per bit.
    auto m = msg(128);
    RepetitionCode adjacent(3);
    InterleavedRepetitionCode interleaved(3);
    std::size_t burstLen = 30;
    auto corruptedAdj = flipBurst(adjacent.encode(m), 60, burstLen);
    auto corruptedInt = flipBurst(interleaved.encode(m), 60, burstLen);
    double adjErr =
        compareBits(m, adjacent.decode(corruptedAdj, m.size())).errorRate();
    double intErr = compareBits(m, interleaved.decode(corruptedInt,
                                                      m.size()))
                        .errorRate();
    EXPECT_GT(adjErr, 0.0);
    EXPECT_DOUBLE_EQ(intErr, 0.0);
}

TEST(Coding, DecodeHandlesTruncatedStreams)
{
    InterleavedRepetitionCode code(3);
    auto m = msg(16);
    BitVec coded = code.encode(m);
    coded.resize(coded.size() - 20); // last copy partially lost
    auto decoded = code.decode(coded, m.size());
    EXPECT_EQ(decoded.size(), m.size());
}

// ---- Coded transmission over the live channel ----------------------------

TEST(Coding, CodedTransmitOverCleanChannelIsExact)
{
    SyncL1Channel ch(gpu::keplerK40c());
    InterleavedRepetitionCode code(3);
    auto m = msg(48);
    auto r = transmitCoded(ch, code, m);
    EXPECT_TRUE(r.report.errorFree());
    // Bandwidth is accounted against payload bits: ~1/3 of the raw rate.
    EXPECT_LT(r.bandwidthBps, 40e3);
    EXPECT_GT(r.bandwidthBps, 15e3);
}

TEST(Coding, CodingRepairsAnInterferedChannel)
{
    auto arch = gpu::keplerK40c();
    auto buildCfg = [&](std::uint64_t seed) {
        SyncChannelConfig cfg;
        cfg.seed = seed;
        cfg.afterLaunch = [&](TwoPartyHarness &h) {
            auto &dev = h.device();
            auto host = std::make_shared<gpu::HostContext>(dev, 999);
            host->advanceUs(25.0);
            workloads::WorkloadSpec spec;
            spec.blocks = dev.numSms();
            spec.iterations = 3000;
            auto k = workloads::makeSetTargetedConstWorkload(
                dev, spec, 0, 2, 80000);
            auto &s = dev.createStream();
            host->launch(s, std::move(k));
            // Keep the host alive via the capture below.
            static std::vector<std::shared_ptr<gpu::HostContext>> keep;
            keep.push_back(host);
        };
        return cfg;
    };

    auto m = msg(160);
    // Raw channel under the duty-cycled set walker: noticeable errors.
    SyncL1Channel raw(arch, buildCfg(1));
    double rawBer = raw.transmit(m).report.errorRate();
    EXPECT_GT(rawBer, 0.01);
    EXPECT_LT(rawBer, 0.30);

    // Same interference, interleaved repetition x5: (near-)clean.
    SyncL1Channel coded(arch, buildCfg(2));
    InterleavedRepetitionCode code(5);
    auto r = transmitCoded(coded, code, m);
    EXPECT_LT(r.report.errorRate(), std::max(0.02, rawBer / 3.0));
}

// ---- Idle set discovery -----------------------------------------------------

TEST(Agile, ScanFindsTheHammeredSets)
{
    auto arch = gpu::keplerK40c();
    gpu::Device dev(arch);
    gpu::HostContext interfererHost(dev, 5);
    workloads::WorkloadSpec spec;
    spec.blocks = dev.numSms();
    spec.iterations = 2000;
    auto walker =
        workloads::makeSetTargetedConstWorkload(dev, spec, 0, 3, 2000);
    interfererHost.launch(dev.createStream(), std::move(walker));

    gpu::HostContext scanner(dev, 6);
    scanner.advanceUs(20.0);
    auto activity = probeSetActivity(dev, scanner);
    ASSERT_EQ(activity.size(), arch.constMem.l1.numSets());
    // Hammered sets show activity; quiet sets do not.
    for (unsigned s = 0; s < 3; ++s)
        EXPECT_GT(activity[s].missFraction, 0.3) << "set " << s;
    for (unsigned s = 3; s < 6; ++s)
        EXPECT_LT(activity[s].missFraction, 0.1) << "set " << s;
    dev.runUntilIdle();
}

TEST(Agile, PickQuietDataSetAvoidsActivity)
{
    std::vector<SetActivity> act;
    for (unsigned s = 0; s < 8; ++s)
        act.push_back(SetActivity{s, s < 3 ? 0.9 : 0.0});
    EXPECT_EQ(pickQuietDataSet(act, 2), 3u);
    EXPECT_EQ(pickQuietDataSet(act, 3), 3u);
}

TEST(Agile, PickRespectsReservedSignalSets)
{
    std::vector<SetActivity> act;
    for (unsigned s = 0; s < 8; ++s)
        act.push_back(SetActivity{s, s >= 6 ? 0.0 : 0.5});
    // Sets 6,7 are quiet but reserved for signalling.
    unsigned start = pickQuietDataSet(act, 2);
    EXPECT_LE(start + 2, 6u);
}

TEST(Agile, RelocatedChannelEvadesTheSetWalker)
{
    auto arch = gpu::keplerK40c();
    auto buildCfg = [&](unsigned firstDataSet, std::uint64_t seed) {
        SyncChannelConfig cfg;
        cfg.seed = seed;
        cfg.firstDataSet = firstDataSet;
        cfg.afterLaunch = [&](TwoPartyHarness &h) {
            auto &dev = h.device();
            static std::vector<std::shared_ptr<gpu::HostContext>> keep;
            auto host = std::make_shared<gpu::HostContext>(dev, 321);
            host->advanceUs(25.0);
            workloads::WorkloadSpec spec;
            spec.blocks = dev.numSms();
            spec.iterations = 4000;
            auto k = workloads::makeSetTargetedConstWorkload(
                dev, spec, 0, 2, 6000);
            host->launch(dev.createStream(), std::move(k));
            keep.push_back(host);
        };
        return cfg;
    };

    auto m = msg(128);
    SyncL1Channel onHammered(arch, buildCfg(0, 3));
    double berHammered = onHammered.transmit(m).report.errorRate();
    EXPECT_GT(berHammered, 0.05);

    SyncL1Channel relocated(arch, buildCfg(3, 4));
    double berQuiet = relocated.transmit(m).report.errorRate();
    EXPECT_DOUBLE_EQ(berQuiet, 0.0);
}

TEST(AgileDeath, DataSetsMustNotCollideWithSignalSets)
{
    SyncChannelConfig cfg;
    cfg.firstDataSet = 6; // sets 6,7 carry RTS/RTR on Kepler
    SyncL1Channel ch(gpu::keplerK40c(), cfg);
    EXPECT_DEATH(ch.transmit(alternatingBits(8)), "collide");
}

} // namespace
} // namespace gpucc::covert

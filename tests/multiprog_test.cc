/**
 * @file
 * Tests for the Section 3.2 multiprogramming policies: SMK block-level
 * preemption (Wang et al.), fair intra-SM partitioning (Xu et al.), and
 * inter-SM partitioning (Adriaens et al. / Tanasic et al.), plus their
 * consequences for the covert channels.
 */

#include <gtest/gtest.h>

#include <set>

#include "covert/channels/l1_const_channel.h"
#include "covert/channels/l2_const_channel.h"
#include "gpu/block_scheduler.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"

namespace gpucc::gpu
{
namespace
{

KernelLaunch
workKernel(const char *name, unsigned blocks, unsigned threads,
           unsigned iters = 400, unsigned regs = 16)
{
    KernelLaunch k;
    k.name = name;
    k.config.gridBlocks = blocks;
    k.config.threadsPerBlock = threads;
    k.config.regsPerThread = regs;
    k.body = [iters](WarpCtx &ctx) -> WarpProgram {
        for (unsigned i = 0; i < iters; ++i)
            co_await ctx.op(OpClass::FAdd);
        if (ctx.warpInBlock() == 0) {
            ctx.out(ctx.smid());
            ctx.out(co_await ctx.clock());
        }
        co_return;
    };
    return k;
}

TEST(Multiprog, PolicyNames)
{
    EXPECT_STREQ(multiprogPolicyName(MultiprogPolicy::Leftover),
                 "leftover");
    EXPECT_STREQ(multiprogPolicyName(MultiprogPolicy::SmkPreemptive),
                 "SMK (preemptive)");
    EXPECT_STREQ(multiprogPolicyName(MultiprogPolicy::IntraSmPartition),
                 "intra-SM partitioning");
    EXPECT_STREQ(multiprogPolicyName(MultiprogPolicy::InterSmPartition),
                 "inter-SM partitioning");
}

// ---- Intra-SM partitioning ---------------------------------------------

TEST(Multiprog, IntraSmPartitionCoResidesTwoKernels)
{
    Device dev(keplerK40c());
    dev.blockScheduler().setPolicy(MultiprogPolicy::IntraSmPartition);
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    auto &k1 = host.launch(s1, workKernel("a", 15, 512));
    auto &k2 = host.launch(s2, workKernel("b", 15, 512));
    host.sync(k1);
    host.sync(k2);
    // Both kernels got a block on every SM (each within its half share).
    std::set<unsigned> sms1, sms2;
    for (const auto &r : k1.blockRecords())
        sms1.insert(r.smId);
    for (const auto &r : k2.blockRecords())
        sms2.insert(r.smId);
    EXPECT_EQ(sms1.size(), 15u);
    EXPECT_EQ(sms2.size(), 15u);
}

TEST(Multiprog, IntraSmPartitionCapsEachKernelAtItsShare)
{
    Device dev(keplerK40c());
    dev.blockScheduler().setPolicy(MultiprogPolicy::IntraSmPartition);
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s1 = dev.createStream();
    // One greedy kernel with many blocks: at most half the threads of
    // each SM may belong to it, so at most 2 x 512-thread blocks per SM.
    auto &k = host.launch(s1, workKernel("greedy", 40, 512));
    host.sync(k);
    std::map<unsigned, unsigned> blocksPerSm;
    Tick firstEnd = UINT64_MAX;
    for (const auto &r : k.blockRecords())
        firstEnd = std::min(firstEnd, r.endTick);
    unsigned concurrentOnSomeSm = 0;
    for (const auto &r : k.blockRecords()) {
        if (r.startTick < firstEnd)
            concurrentOnSomeSm = std::max(concurrentOnSomeSm,
                                          ++blocksPerSm[r.smId]);
    }
    EXPECT_LE(concurrentOnSomeSm, 2u); // 2 x 512 = half of 2048
}

TEST(Multiprog, IntraSmPartitionQueuesThirdKernel)
{
    Device dev(keplerK40c());
    dev.blockScheduler().setPolicy(MultiprogPolicy::IntraSmPartition);
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    auto &s3 = dev.createStream();
    auto &k1 = host.launch(s1, workKernel("a", 15, 256, 1500));
    auto &k2 = host.launch(s2, workKernel("b", 15, 256, 1500));
    auto &k3 = host.launch(s3, workKernel("c", 15, 256, 10));
    host.sync(k3);
    // The third kernel had to wait for one of the first two to finish.
    EXPECT_GE(k3.startTick(), std::min(k1.endTick(), k2.endTick()));
}

TEST(MultiprogDeath, IntraSmPartitionRejectsOversizedBlocks)
{
    // A block needing more than its fair share can never be placed.
    Device dev(keplerK40c());
    dev.blockScheduler().setPolicy(MultiprogPolicy::IntraSmPartition);
    HostContext host(dev);
    auto &s = dev.createStream();
    auto &k = host.launch(s, workKernel("huge", 1, 2048));
    EXPECT_EXIT(host.sync(k), ::testing::ExitedWithCode(1), "starved");
}

// ---- SMK preemption -------------------------------------------------------

TEST(Multiprog, SmkPreemptsToAdmitNewKernel)
{
    Device dev(keplerK40c());
    dev.blockScheduler().setPolicy(MultiprogPolicy::SmkPreemptive);
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    // The hog saturates every SM's threads.
    auto &hog = host.launch(s1, workKernel("hog", 15, 2048, 3000));
    auto &late = host.launch(s2, workKernel("late", 1, 256, 10));
    host.sync(late);
    EXPECT_GT(dev.blockScheduler().preemptions(), 0u);
    host.sync(hog);
    EXPECT_TRUE(hog.done()); // the preempted block was restarted
    // The late kernel ran while the hog still had work.
    EXPECT_LT(late.endTick(), hog.endTick());
}

TEST(Multiprog, SmkRestartedBlockProducesCleanOutput)
{
    Device dev(keplerK40c());
    dev.blockScheduler().setPolicy(MultiprogPolicy::SmkPreemptive);
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    auto &hog = host.launch(s1, workKernel("hog", 15, 2048, 3000));
    auto &late = host.launch(s2, workKernel("late", 1, 256, 10));
    host.sync(late);
    host.sync(hog);
    // Every hog block (including any restarted one) reports exactly one
    // (smid, clock) pair: restarts must not duplicate output.
    unsigned wpb = hog.config().warpsPerBlock();
    for (unsigned b = 0; b < hog.config().gridBlocks; ++b)
        EXPECT_EQ(hog.out(b * wpb).size(), 2u) << "block " << b;
}

TEST(Multiprog, SmkNeverPreemptsSmallChannelBlocks)
{
    // Paper, Section 3.2: one small block per SM is never the victim.
    Device dev(keplerK40c());
    dev.blockScheduler().setPolicy(MultiprogPolicy::SmkPreemptive);
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    auto &s3 = dev.createStream();
    auto &small = host.launch(s1, workKernel("channel", 15, 64, 2000));
    auto &hog = host.launch(s2, workKernel("hog", 15, 1920, 2000));
    auto &mid = host.launch(s3, workKernel("mid", 15, 512, 10));
    host.sync(mid);
    host.sync(small);
    host.sync(hog);
    // Preemption happened (to admit "mid"), but the victims were hog
    // blocks: every small block ran exactly once, uninterrupted.
    EXPECT_GT(dev.blockScheduler().preemptions(), 0u);
    EXPECT_EQ(small.blockRecords().size(), 15u);
}

TEST(Multiprog, SmkEnablesColocationOnSaturatedDevice)
{
    // Under the leftover policy a saturated device delays the channel;
    // under SMK the channel preempts its way in.
    auto runStart = [](MultiprogPolicy p) {
        Device dev(keplerK40c());
        dev.blockScheduler().setPolicy(p);
        HostContext host(dev);
        host.setJitterUs(0.0);
        auto &s1 = dev.createStream();
        auto &s2 = dev.createStream();
        auto &hog = host.launch(s1, workKernel("hog", 15, 2048, 4000));
        auto &probe = host.launch(s2, workKernel("probe", 15, 64, 10));
        host.sync(probe);
        host.sync(hog);
        return std::pair<Tick, Tick>(probe.startTick(), hog.endTick());
    };
    auto [leftStart, leftHogEnd] = runStart(MultiprogPolicy::Leftover);
    auto [smkStart, smkHogEnd] = runStart(MultiprogPolicy::SmkPreemptive);
    EXPECT_LT(smkStart, smkHogEnd);  // SMK: in before the hog finishes
    EXPECT_GE(leftStart,
              leftHogEnd / 4); // leftover: waits for hog blocks to retire
    EXPECT_LT(smkStart, leftStart);
}

// ---- Inter-SM partitioning ---------------------------------------------

TEST(Multiprog, InterSmPartitionGivesDisjointSmSets)
{
    Device dev(keplerK40c());
    dev.blockScheduler().setPolicy(MultiprogPolicy::InterSmPartition);
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    // Long enough that the two kernels are concurrent: partition reuse
    // after a kernel finishes is legitimate and not under test here.
    auto &k1 = host.launch(s1, workKernel("a", 7, 256, 3000));
    auto &k2 = host.launch(s2, workKernel("b", 7, 256, 3000));
    host.sync(k1);
    host.sync(k2);
    std::set<unsigned> sms1, sms2;
    for (const auto &r : k1.blockRecords())
        sms1.insert(r.smId);
    for (const auto &r : k2.blockRecords())
        sms2.insert(r.smId);
    for (unsigned s : sms1)
        EXPECT_EQ(sms2.count(s), 0u) << "SM " << s << " shared";
}

TEST(Multiprog, InterSmRangeFreedWhenKernelFinishes)
{
    Device dev(keplerK40c());
    dev.blockScheduler().setPolicy(MultiprogPolicy::InterSmPartition);
    HostContext host(dev);
    host.setJitterUs(0.0);
    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    auto &s3 = dev.createStream();
    auto &k1 = host.launch(s1, workKernel("a", 4, 256, 100));
    auto &k2 = host.launch(s2, workKernel("b", 4, 256, 3000));
    auto &k3 = host.launch(s3, workKernel("c", 4, 256, 100));
    host.sync(k3);
    // k3 had to wait for k1's partition to free.
    EXPECT_GE(k3.startTick(), k1.endTick());
    host.sync(k2);
}

TEST(Multiprog, InterSmPartitionKillsTheL1Channel)
{
    covert::L1ConstChannel ch(keplerK40c());
    ch.harness().device().blockScheduler().setPolicy(
        MultiprogPolicy::InterSmPartition);
    Rng rng(9);
    auto r = ch.transmit(randomBits(48, rng));
    // Spy and trojan never share an SM: no L1 visibility at all.
    EXPECT_GT(r.report.errorRate(), 0.25);
}

TEST(Multiprog, InterSmPartitionLeavesTheL2ChannelAlive)
{
    // Section 3.2: "covert communication is still possible through
    // contention on resources that are shared between all SMs".
    covert::L2ConstChannel ch(keplerK40c());
    ch.harness().device().blockScheduler().setPolicy(
        MultiprogPolicy::InterSmPartition);
    Rng rng(9);
    auto r = ch.transmit(randomBits(48, rng));
    EXPECT_TRUE(r.report.errorFree());
}

TEST(Multiprog, LeftoverPolicyIsTheDefault)
{
    Device dev(keplerK40c());
    EXPECT_EQ(dev.blockScheduler().policy(), MultiprogPolicy::Leftover);
}

} // namespace
} // namespace gpucc::gpu

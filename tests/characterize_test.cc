/**
 * @file
 * Tests for the attack's offline characterization step: cache geometry
 * recovery (Figures 2/3), functional-unit contention curves (Figures
 * 6/7), and the scheduler reverse-engineering probes (Section 3.1).
 */

#include <gtest/gtest.h>

#include "covert/characterize/cache_characterizer.h"
#include "covert/characterize/fu_characterizer.h"
#include "covert/characterize/scheduler_probe.h"

namespace gpucc::covert
{
namespace
{

using gpu::ArchParams;
using gpu::OpClass;

class CacheCharTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(CacheCharTest, L1GeometryRecoveredExactly)
{
    const ArchParams &arch = GetParam();
    CacheCharacterizer cc(arch);
    auto series = cc.figure2Sweep();
    auto g = CacheCharacterizer::recover(series, arch.constMem.l1.lineBytes);
    EXPECT_EQ(g.sizeBytes, arch.constMem.l1.sizeBytes) << arch.name;
    EXPECT_EQ(g.lineBytes, arch.constMem.l1.lineBytes) << arch.name;
    EXPECT_EQ(g.numSets, arch.constMem.l1.numSets()) << arch.name;
}

TEST_P(CacheCharTest, L2GeometryRecoveredExactly)
{
    const ArchParams &arch = GetParam();
    CacheCharacterizer cc(arch);
    auto series = cc.figure3Sweep();
    auto g = CacheCharacterizer::recover(series, arch.constMem.l2.lineBytes);
    EXPECT_EQ(g.sizeBytes, arch.constMem.l2.sizeBytes) << arch.name;
    EXPECT_EQ(g.lineBytes, arch.constMem.l2.lineBytes) << arch.name;
    EXPECT_EQ(g.numSets, arch.constMem.l2.numSets()) << arch.name;
}

TEST_P(CacheCharTest, L1PlateauAndCeilingMatchLatencies)
{
    const ArchParams &arch = GetParam();
    CacheCharacterizer cc(arch);
    auto series = cc.figure2Sweep();
    auto g = CacheCharacterizer::recover(series, arch.constMem.l1.lineBytes);
    EXPECT_NEAR(g.plateauCycles,
                static_cast<double>(arch.constMem.l1HitCycles), 3.0);
    EXPECT_NEAR(g.ceilingCycles,
                static_cast<double>(arch.constMem.l2HitCycles), 5.0);
}

TEST_P(CacheCharTest, SweepLatencyIsMonotonicallyNondecreasing)
{
    CacheCharacterizer cc(GetParam());
    auto series = cc.figure2Sweep();
    for (std::size_t i = 1; i < series.size(); ++i) {
        EXPECT_GE(series[i].avgLatencyCycles,
                  series[i - 1].avgLatencyCycles - 0.5);
    }
}

INSTANTIATE_TEST_SUITE_P(AllGpus, CacheCharTest,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(CacheChar, RecoverRejectsFlatSeries)
{
    std::vector<CacheLatencyPoint> flat;
    for (int i = 0; i < 10; ++i)
        flat.push_back({std::size_t(1000 + i * 64), 46.0});
    EXPECT_DEATH(CacheCharacterizer::recover(flat, 64), "flat");
}

class FuCharTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(FuCharTest, SingleWarpMatchesBaseLatency)
{
    const ArchParams &arch = GetParam();
    FuCharacterizer fc(arch);
    const auto &t = arch.timing(OpClass::Sinf);
    double expect = static_cast<double>(t.latencyCycles) +
                    ticksToCyclesF(t.occTicks);
    EXPECT_NEAR(fc.measure(OpClass::Sinf, 1), expect, 1.5) << arch.name;
}

TEST_P(FuCharTest, SinfLatencyStepsUpWithWarpCount)
{
    FuCharacterizer fc(GetParam());
    double w1 = fc.measure(OpClass::Sinf, 1);
    double w32 = fc.measure(OpClass::Sinf, 32);
    EXPECT_GT(w32, w1 * 1.3) << GetParam().name;
}

TEST_P(FuCharTest, CurveIsNondecreasing)
{
    FuCharacterizer fc(GetParam());
    auto c = fc.curve(OpClass::Sinf, 32, 64);
    for (std::size_t i = 1; i < c.size(); ++i)
        EXPECT_GE(c[i].warp0AvgCycles, c[i - 1].warp0AvgCycles - 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllGpus, FuCharTest,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(FuChar, KeplerSinfMatchesPaperPoints)
{
    // Figure 6 / Section 5.2: 18 cycles uncontended, ~24 at 24 warps.
    FuCharacterizer fc(gpu::keplerK40c());
    EXPECT_NEAR(fc.measure(OpClass::Sinf, 12), 18.0, 1.5);
    EXPECT_NEAR(fc.measure(OpClass::Sinf, 24), 24.0, 2.0);
}

TEST(FuChar, FermiSinfMatchesPaperPoints)
{
    // 41 cycles uncontended (3 warps), 48 contended (6 warps).
    FuCharacterizer fc(gpu::fermiC2075());
    EXPECT_NEAR(fc.measure(OpClass::Sinf, 3), 41.0, 2.0);
    EXPECT_NEAR(fc.measure(OpClass::Sinf, 6), 48.0, 3.0);
}

TEST(FuChar, MaxwellSinfMatchesPaperPoints)
{
    // 15 cycles uncontended (10 warps), ~20 contended (20 warps).
    FuCharacterizer fc(gpu::maxwellM4000());
    EXPECT_NEAR(fc.measure(OpClass::Sinf, 10), 15.0, 1.5);
    EXPECT_NEAR(fc.measure(OpClass::Sinf, 20), 20.0, 2.0);
}

TEST(FuChar, KeplerAddIsFlatOverTheWholeSweep)
{
    // Figure 6: 192 SP units leave single-precision Add contention-free.
    FuCharacterizer fc(gpu::keplerK40c());
    auto c = fc.curve(OpClass::FAdd, 32, 64);
    EXPECT_EQ(FuCharacterizer::contentionOnset(c), 0u);
}

TEST(FuChar, FermiAddShowsContention)
{
    // Figure 6: Fermi's 32 SP units saturate within the sweep.
    FuCharacterizer fc(gpu::fermiC2075());
    auto c = fc.curve(OpClass::FAdd, 32, 64);
    unsigned onset = FuCharacterizer::contentionOnset(c);
    EXPECT_GT(onset, 0u);
    EXPECT_NEAR(static_cast<double>(onset), 19.0, 4.0);
}

TEST(FuChar, DoublePrecisionCurvesOnFermiAndKepler)
{
    // Figure 7 shapes: flat then rising; Kepler ~8 -> ~19-20 cycles.
    FuCharacterizer fk(gpu::keplerK40c());
    EXPECT_NEAR(fk.measure(OpClass::DAdd, 1), 8.0, 1.0);
    EXPECT_NEAR(fk.measure(OpClass::DAdd, 32), 19.0, 2.0);
    FuCharacterizer ff(gpu::fermiC2075());
    double w1 = ff.measure(OpClass::DAdd, 1);
    double w32 = ff.measure(OpClass::DAdd, 32);
    EXPECT_NEAR(w1, 20.0, 2.0);
    EXPECT_NEAR(w32, 64.0, 6.0);
}

TEST(FuCharDeath, MaxwellDoublePrecisionIsFatal)
{
    FuCharacterizer fc(gpu::maxwellM4000());
    EXPECT_EXIT(fc.measure(OpClass::DAdd, 1), ::testing::ExitedWithCode(1),
                "does not execute");
}

TEST(FuChar, ContentionOnsetHelper)
{
    std::vector<FuLatencyPoint> c{{1, 10.0}, {2, 10.0}, {3, 13.0},
                                  {4, 20.0}};
    EXPECT_EQ(FuCharacterizer::contentionOnset(c), 3u);
    std::vector<FuLatencyPoint> flat{{1, 10.0}, {2, 10.0}};
    EXPECT_EQ(FuCharacterizer::contentionOnset(flat), 0u);
}

class SchedulerProbeTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(SchedulerProbeTest, RecoversAllFourPolicies)
{
    SchedulerProbe probe(GetParam());
    auto f = probe.run();
    EXPECT_TRUE(f.blockAssignmentRoundRobin) << GetParam().name;
    EXPECT_TRUE(f.secondKernelUsesLeftover) << GetParam().name;
    EXPECT_TRUE(f.fullDeviceBlocksSecondKernel) << GetParam().name;
    EXPECT_TRUE(f.warpAssignmentRoundRobin) << GetParam().name;
    EXPECT_EQ(f.observedSms, GetParam().numSms) << GetParam().name;
    EXPECT_EQ(f.observedSchedulers, GetParam().schedulersPerSm)
        << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllGpus, SchedulerProbeTest,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(SchedulerProbe, WarpSchedulerObservationIsRoundRobin)
{
    SchedulerProbe probe(gpu::keplerK40c());
    auto scheds = probe.observeWarpSchedulers(8);
    ASSERT_EQ(scheds.size(), 8u);
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(scheds[w], w % 4);
}

TEST(SchedulerProbe, TwoKernelObservationsOverlapInTime)
{
    SchedulerProbe probe(gpu::keplerK40c());
    auto [k1, k2] = probe.observeTwoKernels(15, 15, 128);
    ASSERT_EQ(k1.blocks.size(), 15u);
    ASSERT_EQ(k2.blocks.size(), 15u);
    bool overlapped = false;
    for (const auto &a : k1.blocks) {
        for (const auto &b : k2.blocks) {
            if (a.smId == b.smId && b.startClock < a.endClock &&
                a.startClock < b.endClock) {
                overlapped = true;
            }
        }
    }
    EXPECT_TRUE(overlapped);
}

} // namespace
} // namespace gpucc::covert

/**
 * @file
 * Tests for the fault-tolerant sweep service (src/svc): spec
 * expansion and round-trip, the lease/retry/quarantine state machine,
 * chaos-plan parsing, the wire protocol, and — the core contract —
 * that cold, chaos (kill/stall), degraded, halted-and-resumed and
 * torn-ledger runs of the same spec all converge to byte-identical
 * canonical reports with every cell either completed or explicitly
 * quarantined, and that re-running an unchanged spec appends zero
 * bytes to the ledger.
 */

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "sim/exec/sweep_runner.h"
#include "svc/chaos.h"
#include "svc/coordinator.h"
#include "svc/queue.h"
#include "svc/service.h"
#include "svc/spec.h"
#include "svc/store.h"
#include "svc/wire.h"

namespace gpucc::svc
{
namespace
{

/** RAII scratch directory for ledger-backed service tests. */
struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        static int counter = 0;
        path = std::filesystem::temp_directory_path() /
               ("gpucc_svc_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
};

/** A cheap spec: no simulation, deterministic flaky/broken cells. */
SweepSpec
tinySpec()
{
    SweepSpec s;
    s.name = "tiny";
    s.seedBase = 7;
    s.seedsPerCell = 4;
    s.archs = {"Kepler"};
    s.kinds.push_back({"flaky", "", "fail=1;den=3"});
    s.kinds.push_back({"broken", "", ""});
    return s;
}

std::string
canonical(const SweepSpec &spec, const ServiceOutcome &outcome)
{
    std::ostringstream os;
    writeCanonicalReport(spec, outcome, os);
    return os.str();
}

ServiceOutcome
runInMemory(const SweepSpec &spec, const ServiceConfig &cfg)
{
    ResultStore store("", "testrev");
    return runService(spec, cfg, store);
}

std::uintmax_t
fileSize(const std::string &path)
{
    std::error_code ec;
    const auto n = std::filesystem::file_size(path, ec);
    return ec ? 0 : n;
}

} // namespace

// ---- spec layer -----------------------------------------------------

TEST(SweepSpec, ExpansionIsIndexStableWithDerivedSeeds)
{
    const SweepSpec spec = tinySpec();
    const auto cells = spec.expand();
    ASSERT_EQ(cells.size(), 8u); // 2 kinds x 1 arch x 4 seeds
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].index, i);
        EXPECT_EQ(cells[i].seed, sim::exec::deriveSeed(7, i));
    }
    EXPECT_EQ(cells[0].scenario, "flaky");
    EXPECT_EQ(cells[4].scenario, "broken");
}

TEST(SweepSpec, JsonRoundTripPreservesTheGrid)
{
    const SweepSpec spec = builtinSoakSpec(/*withBroken=*/true);
    SweepSpec back;
    std::string err;
    ASSERT_TRUE(SweepSpec::parse(spec.toJson(), back, err)) << err;
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.seedBase, spec.seedBase);
    EXPECT_EQ(back.seedsPerCell, spec.seedsPerCell);
    const auto a = spec.expand();
    const auto b = back.expand();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].scenario, b[i].scenario);
        EXPECT_EQ(a[i].arch, b[i].arch);
        EXPECT_EQ(a[i].plan, b[i].plan);
        EXPECT_EQ(a[i].config, b[i].config);
        EXPECT_EQ(a[i].seed, b[i].seed);
    }
}

TEST(SweepSpec, ParseRejectsMalformedSpecs)
{
    SweepSpec s;
    std::string err;
    EXPECT_FALSE(SweepSpec::parse("[1,2]", s, err));
    EXPECT_FALSE(SweepSpec::parse("{\"archs\":[]}", s, err));
    EXPECT_FALSE(SweepSpec::parse(
        "{\"archs\":[\"Kepler\"],\"cells\":[{}]}", s, err));
    EXPECT_FALSE(SweepSpec::parse("{not json", s, err));
}

TEST(SweepSpec, ConfigValueParsesKeyValueLists)
{
    EXPECT_EQ(configValue("bits=24", "bits", 7), 24u);
    EXPECT_EQ(configValue("a=1;bits=32;b=2", "bits", 7), 32u);
    EXPECT_EQ(configValue("", "bits", 7), 7u);
    EXPECT_EQ(configValue("bits=banana", "bits", 7), 7u);
    EXPECT_EQ(configValue("bit=3", "bits", 7), 7u);
}

TEST(RunCell, UnknownKindsAndArchsReportErrorsNotThrows)
{
    CellSpec c;
    c.scenario = "no_such_kind";
    c.arch = "Kepler";
    EXPECT_EQ(runCell(c).outcome, "error");
    c.scenario = "l1_baseline";
    c.arch = "NoSuchArch";
    const CellOutcome out = runCell(c);
    EXPECT_EQ(out.outcome, "error");
    EXPECT_NE(out.error.find("unknown architecture"),
              std::string::npos);
}

// ---- chaos plans ----------------------------------------------------

TEST(ProcessFaultPlan, ParseAndRoundTrip)
{
    ProcessFaultPlan plan;
    std::string err;
    ASSERT_TRUE(ProcessFaultPlan::parse(
        "w0:kill@3,w1:stall@2x40,torn@5", plan, err))
        << err;
    ASSERT_EQ(plan.faults.size(), 2u);
    EXPECT_EQ(plan.forWorker(0)->killAtClaim, 3u);
    EXPECT_EQ(plan.forWorker(1)->stallAtClaim, 2u);
    EXPECT_EQ(plan.forWorker(1)->stallFor, 40u);
    EXPECT_EQ(plan.forWorker(2), nullptr);
    EXPECT_EQ(plan.tornWriteAtAppend, 5u);
    ProcessFaultPlan back;
    ASSERT_TRUE(ProcessFaultPlan::parse(plan.toString(), back, err));
    EXPECT_EQ(back.toString(), plan.toString());
}

TEST(ProcessFaultPlan, RejectsMalformedScripts)
{
    ProcessFaultPlan plan;
    std::string err;
    EXPECT_FALSE(ProcessFaultPlan::parse("w0:kill@0", plan, err));
    EXPECT_FALSE(ProcessFaultPlan::parse("w0:stall@2", plan, err));
    EXPECT_FALSE(ProcessFaultPlan::parse("wx:kill@1", plan, err));
    EXPECT_FALSE(ProcessFaultPlan::parse("explode", plan, err));
    EXPECT_FALSE(ProcessFaultPlan::parse("torn@0", plan, err));
    EXPECT_TRUE(ProcessFaultPlan::parse("", plan, err));
    EXPECT_TRUE(plan.empty());
}

// ---- lease queue ----------------------------------------------------

TEST(JobQueue, LeaseLifecycleCompleteAndStaleRejection)
{
    RetryPolicy policy;
    policy.leaseTimeout = 10;
    JobQueue q(3, policy);
    auto g0 = q.claim("a", 0);
    ASSERT_TRUE(g0.has_value());
    EXPECT_EQ(g0->job, 0u); // lowest eligible index first
    auto g1 = q.claim("b", 0);
    ASSERT_TRUE(g1.has_value());
    EXPECT_EQ(g1->job, 1u);

    EXPECT_TRUE(q.completeJob(g0->job, g0->leaseId));
    // Completing again under the same (now dead) lease is stale.
    EXPECT_FALSE(q.completeJob(g0->job, g0->leaseId));
    EXPECT_EQ(q.stats().staleResults, 1u);

    // Heartbeats keep a lease alive past its original deadline...
    q.heartbeat("b", 9);
    EXPECT_EQ(q.expire(15), 0u);
    // ...and silence kills it.
    EXPECT_EQ(q.expire(20), 1u);
    EXPECT_EQ(q.job(1).state, JobState::Queued);
    EXPECT_GE(q.job(1).notBefore, 20u); // backoff applied

    // The expired lease's late result is stale, not double-counted.
    EXPECT_FALSE(q.completeJob(g1->job, g1->leaseId));
    EXPECT_EQ(q.stats().staleResults, 2u);
}

TEST(JobQueue, RepeatedFailureQuarantinesWithBoundedRetries)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    JobQueue q(1, policy);
    std::uint64_t now = 0;
    for (unsigned attempt = 0; attempt < 3; ++attempt) {
        now = std::max(now, q.nextEligibleAt());
        auto g = q.claim("w", now);
        ASSERT_TRUE(g.has_value()) << "attempt " << attempt;
        EXPECT_TRUE(q.failJob(g->job, g->leaseId, "boom", now));
    }
    EXPECT_TRUE(q.allDone());
    EXPECT_EQ(q.job(0).state, JobState::Quarantined);
    EXPECT_EQ(q.job(0).lastCellError, "boom");
    EXPECT_EQ(q.stats().retries, 2u);     // maxAttempts - 1
    EXPECT_EQ(q.stats().quarantined, 1u);
    EXPECT_FALSE(q.claim("w", now + 1000).has_value());
}

TEST(JobQueue, BackoffIsDeterministicExponentialAndCapped)
{
    RetryPolicy policy;
    policy.backoffBase = 2;
    policy.backoffCap = 16;
    JobQueue q(1, policy);
    JobQueue q2(1, policy);
    std::uint64_t prev = 0;
    for (unsigned attempt = 1; attempt <= 8; ++attempt) {
        const std::uint64_t d = q.backoffDelay(0, attempt);
        EXPECT_EQ(d, q2.backoffDelay(0, attempt)) << attempt;
        EXPECT_LE(d, policy.backoffCap + policy.backoffBase - 1);
        if (attempt > 1)
            EXPECT_GE(d + policy.backoffBase, prev) << attempt;
        prev = d;
    }
}

TEST(JobQueue, ReleaseWorkerRequeuesItsLeasesImmediately)
{
    JobQueue q(2, RetryPolicy{});
    auto g = q.claim("doomed", 5);
    ASSERT_TRUE(g.has_value());
    q.releaseWorker("doomed", 5);
    EXPECT_EQ(q.job(g->job).state, JobState::Queued);
    EXPECT_EQ(q.stats().leasesExpired, 1u);
    EXPECT_FALSE(q.completeJob(g->job, g->leaseId)); // stale now
}

TEST(JobQueue, OutOfRangeResultIndexesAreRejectedNotApplied)
{
    // Result indexes arrive off the wire from arbitrary local
    // processes; an index past the job table must be discarded like
    // a stale lease, never index jobs[].
    JobQueue q(2, RetryPolicy{});
    auto g = q.claim("w", 0);
    ASSERT_TRUE(g.has_value());
    EXPECT_FALSE(q.completeJob(99999, g->leaseId));
    EXPECT_FALSE(q.failJob(99999, g->leaseId, "boom", 0));
    EXPECT_FALSE(q.completeJob(q.size(), g->leaseId)); // first bad
    EXPECT_EQ(q.stats().staleResults, 3u);
    EXPECT_EQ(q.stats().failures, 0u);
    // The live lease is untouched by the rejected messages.
    EXPECT_TRUE(q.completeJob(g->job, g->leaseId));
}

// ---- wire protocol --------------------------------------------------

TEST(Wire, GrantAndResultRoundTrip)
{
    CellSpec cell;
    cell.index = 42;
    cell.scenario = "session";
    cell.arch = "Maxwell";
    cell.plan = "eviction";
    cell.config = "payload=96";
    cell.seed = 0xdeadbeefcafef00dULL;
    wire::Message msg;
    std::string err;
    ASSERT_TRUE(wire::decode(wire::encodeGrant(cell, 9), msg, err))
        << err;
    EXPECT_EQ(msg.type, "grant");
    EXPECT_EQ(msg.leaseId, 9u);
    EXPECT_EQ(msg.cell.index, 42u);
    EXPECT_EQ(msg.cell.scenario, "session");
    EXPECT_EQ(msg.cell.seed, 0xdeadbeefcafef00dULL);

    CellOutcome out;
    out.outcome = "error";
    out.error = "it \"broke\"\n badly";
    out.digest = 0x1234;
    out.metrics["bps"] = 123.5;
    ASSERT_TRUE(wire::decode(
        wire::encodeResult("w1", cell, 9, out), msg, err))
        << err;
    EXPECT_EQ(msg.type, "result");
    EXPECT_EQ(msg.worker, "w1");
    EXPECT_EQ(msg.outcome.outcome, "error");
    EXPECT_EQ(msg.outcome.error, out.error); // escaping survived
    EXPECT_EQ(msg.outcome.digest, 0x1234u);
    EXPECT_DOUBLE_EQ(msg.outcome.metrics.at("bps"), 123.5);

    ASSERT_TRUE(
        wire::decode(wire::encodeNoWork(true, 25), msg, err));
    EXPECT_TRUE(msg.drained);
    EXPECT_EQ(msg.retryMs, 25u);
    EXPECT_FALSE(wire::decode("{\"no\":\"type\"}", msg, err));
    EXPECT_FALSE(wire::decode("not json at all", msg, err));
}

// ---- the engine's determinism contract ------------------------------

TEST(Service, ColdAndChaosRunsAreByteIdentical)
{
    const SweepSpec spec = tinySpec();
    ServiceConfig cold;
    cold.workers = 2;
    const ServiceOutcome a = runInMemory(spec, cold);
    ASSERT_TRUE(a.missing.empty());
    EXPECT_NE(a.digest, 0u);

    ServiceConfig chaos = cold;
    chaos.workers = 3;
    std::string err;
    ASSERT_TRUE(ProcessFaultPlan::parse("w0:kill@2,w1:stall@1x30",
                                        chaos.faults, err));
    const ServiceOutcome b = runInMemory(spec, chaos);
    ASSERT_TRUE(b.missing.empty());
    EXPECT_EQ(canonical(spec, a), canonical(spec, b));
    EXPECT_EQ(a.digest, b.digest);
    // The chaos run really was chaotic...
    EXPECT_EQ(b.stats.workersDied, 1u);
    EXPECT_GE(b.stats.queue.leasesExpired, 1u);
    // ...and bounded: every retry is accounted, nothing spun forever.
    EXPECT_LE(b.stats.queue.retries,
              spec.expand().size() *
                  static_cast<std::size_t>(
                      chaos.retry.maxAttempts));
}

TEST(Service, EveryCellCompletesOrIsExplicitlyQuarantined)
{
    const SweepSpec spec = tinySpec();
    ServiceConfig cfg;
    cfg.workers = 2;
    const ServiceOutcome out = runInMemory(spec, cfg);
    ASSERT_TRUE(out.missing.empty());
    std::size_t complete = 0;
    std::size_t quarantined = 0;
    for (const auto &r : out.records) {
        if (r.outcome == "complete")
            ++complete;
        else if (r.outcome == "quarantined")
            ++quarantined;
        else
            ADD_FAILURE() << "cell with outcome '" << r.outcome
                          << "'";
    }
    EXPECT_EQ(complete + quarantined, out.records.size());
    // The broken row quarantines on all 4 seeds; flaky rows on the
    // deterministic subset whose seed hash trips the failure gate.
    EXPECT_GE(quarantined, 4u);
    // Quarantined cells are reported with their last real error.
    ASSERT_FALSE(out.stats.quarantineLog.empty());
    EXPECT_NE(out.stats.quarantineLog.front().find(
                  "injected cell failure"),
              std::string::npos);
}

TEST(Service, AllWorkersDeadDegradesGracefullyAndFinishes)
{
    const SweepSpec spec = tinySpec();
    ServiceConfig cold;
    cold.workers = 2;
    const ServiceOutcome a = runInMemory(spec, cold);

    ServiceConfig doomed = cold;
    std::string err;
    ASSERT_TRUE(ProcessFaultPlan::parse("w0:kill@1,w1:kill@1",
                                        doomed.faults, err));
    const ServiceOutcome b = runInMemory(spec, doomed);
    EXPECT_TRUE(b.stats.degraded);
    EXPECT_EQ(b.stats.workersDied, 2u);
    ASSERT_TRUE(b.missing.empty());
    EXPECT_EQ(canonical(spec, a), canonical(spec, b));
}

TEST(Service, HaltResumeConvergesAndUnchangedRerunAppendsZeroBytes)
{
    TempDir dir;
    const std::string ledger = dir.file("resume.jsonl");
    const SweepSpec spec = tinySpec();

    // Reference: unfaulted cold run against a separate ledger.
    ResultStore coldStore(dir.file("cold.jsonl"), "testrev");
    ServiceConfig cfg;
    cfg.workers = 2;
    const ServiceOutcome cold = runService(spec, cfg, coldStore);

    // Crash-simulated run: stop after 3 persisted results.
    {
        ResultStore store(ledger, "testrev");
        ServiceConfig halted = cfg;
        halted.haltAfterResults = 3;
        const ServiceOutcome h = runService(spec, halted, store);
        EXPECT_TRUE(h.stats.halted);
        EXPECT_EQ(h.stats.storeAppended, 3u);
        EXPECT_FALSE(h.missing.empty());
        EXPECT_EQ(h.digest, 0u); // no digest published mid-crash
    }
    // Resume: only the delta runs; the report converges.
    {
        ResultStore store(ledger, "testrev");
        EXPECT_EQ(store.preexisting(), 3u);
        const ServiceOutcome r = runService(spec, cfg, store);
        ASSERT_TRUE(r.missing.empty());
        EXPECT_EQ(canonical(spec, cold), canonical(spec, r));
        EXPECT_EQ(r.digest, cold.digest);
        EXPECT_EQ(r.stats.queue.cached, 3u);
    }
    // Unchanged re-run: all cells cached, zero bytes appended.
    const std::uintmax_t bytesBefore = fileSize(ledger);
    {
        ResultStore store(ledger, "testrev");
        const ServiceOutcome again = runService(spec, cfg, store);
        ASSERT_TRUE(again.missing.empty());
        EXPECT_EQ(again.digest, cold.digest);
        EXPECT_EQ(again.stats.storeAppended, 0u);
        EXPECT_EQ(again.stats.queue.cached, spec.expand().size());
        EXPECT_EQ(again.stats.cellsRun, 0u);
    }
    EXPECT_EQ(fileSize(ledger), bytesBefore);
    // And the two ledgers are byte-identical despite the different
    // schedules that produced them: content addressing at work.
    // (Append order differs between a halted+resumed and a cold run
    // only if the scheduling differed; compare as sets of lines.)
    std::ifstream a(dir.file("cold.jsonl")), b(ledger);
    std::vector<std::string> la, lb;
    for (std::string line; std::getline(a, line);)
        la.push_back(line);
    for (std::string line; std::getline(b, line);)
        lb.push_back(line);
    std::sort(la.begin(), la.end());
    std::sort(lb.begin(), lb.end());
    EXPECT_EQ(la, lb);
}

TEST(Service, TornWriteMidRunIsDetectedAndResumeRepairs)
{
    TempDir dir;
    const std::string ledger = dir.file("torn.jsonl");
    const SweepSpec spec = tinySpec();
    ServiceConfig cfg;
    cfg.workers = 2;

    ResultStore refStore("", "testrev");
    const ServiceOutcome ref = runService(spec, cfg, refStore);

    // Chaos: the "coordinator" dies inside its 2nd ledger write.
    {
        ResultStore store(ledger, "testrev");
        ServiceConfig torn = cfg;
        std::string err;
        ASSERT_TRUE(
            ProcessFaultPlan::parse("torn@2", torn.faults, err));
        const ServiceOutcome t = runService(spec, torn, store);
        EXPECT_TRUE(t.stats.halted);
        ASSERT_FALSE(t.stats.errors.empty());
    }
    // Resume: the torn tail is reported, the record it tore is
    // re-run (its key never committed), and the sweep converges.
    {
        ResultStore store(ledger, "testrev");
        EXPECT_TRUE(store.openedTorn());
        EXPECT_EQ(store.preexisting(), 1u); // record 2 was torn away
        ASSERT_FALSE(store.errors().empty());
        EXPECT_NE(store.errors().front().find("torn tail"),
                  std::string::npos);
        const ServiceOutcome r = runService(spec, cfg, store);
        ASSERT_TRUE(r.missing.empty());
        EXPECT_EQ(canonical(spec, ref), canonical(spec, r));
        EXPECT_EQ(r.digest, ref.digest);
    }
    // The repaired file loads with exactly one quarantined error
    // line (the torn fragment) and every record intact.
    const obs::LedgerLoadResult loaded = obs::Ledger::load(ledger);
    EXPECT_EQ(loaded.records.size(), spec.expand().size());
    EXPECT_EQ(loaded.errors.size(), 1u);
    EXPECT_FALSE(loaded.tornTail);
}

TEST(Service, WriteSpoolIsAtomicAndListsEveryCell)
{
    TempDir dir;
    const SweepSpec spec = tinySpec();
    ResultStore store("", "testrev");
    std::string err;
    const std::string spool = dir.file("spool.jsonl");
    ASSERT_TRUE(writeSpool(spec, store, spool, err)) << err;
    EXPECT_FALSE(std::filesystem::exists(spool + ".tmp"));
    std::ifstream is(spool);
    std::size_t lines = 0;
    for (std::string line; std::getline(is, line);)
        ++lines;
    EXPECT_EQ(lines, spec.expand().size());
}

} // namespace gpucc::svc

/**
 * @file
 * Tests for the Rodinia-like interference workloads: each factory must
 * produce a runnable kernel with the resource signature its namesake
 * stresses.
 */

#include <gtest/gtest.h>

#include "gpu/host.h"
#include "workloads/interference.h"

namespace gpucc::workloads
{
namespace
{

WorkloadSpec
smallSpec()
{
    WorkloadSpec s;
    s.blocks = 2;
    s.threadsPerBlock = 64;
    s.iterations = 64;
    return s;
}

TEST(Workloads, ConstantWalkerTouchesManyL1Sets)
{
    auto arch = gpu::keplerK40c();
    gpu::Device dev(arch);
    gpu::HostContext host(dev);
    host.setJitterUs(0.0);
    auto k = makeConstantMemoryWorkload(dev, smallSpec());
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    const auto &l1 = dev.constMem().l1Cache(0);
    unsigned touched = 0;
    for (std::size_t set = 0; set < arch.constMem.l1.numSets(); ++set) {
        if (l1.validLinesInSet(set) > 0)
            ++touched;
    }
    // An 8 KB walk at 64 B stride covers every set.
    EXPECT_EQ(touched, arch.constMem.l1.numSets());
}

TEST(Workloads, ComputeWorkloadBusiesFunctionalUnits)
{
    auto arch = gpu::keplerK40c();
    gpu::Device dev(arch);
    gpu::HostContext host(dev);
    auto k = makeComputeWorkload(smallSpec());
    auto &s = dev.createStream();
    auto &inst = host.launch(s, k);
    host.sync(inst);
    // 64 iterations of 2-3 ops each: the kernel runs for a while.
    EXPECT_GT(ticksToCycles(inst.endTick() - inst.startTick()), 300u);
}

TEST(Workloads, SharedMemoryWorkloadClaimsSmem)
{
    auto k = makeSharedMemoryWorkload(smallSpec(), 16 * 1024);
    EXPECT_EQ(k.config.smemBytesPerBlock, 16u * 1024u);
    // And it runs to completion (barriers included).
    gpu::Device dev(gpu::keplerK40c());
    gpu::HostContext host(dev);
    auto &s = dev.createStream();
    auto &inst = host.launch(s, k);
    host.sync(inst);
    EXPECT_TRUE(inst.done());
}

TEST(Workloads, StreamingWorkloadIssuesGlobalTraffic)
{
    auto arch = gpu::keplerK40c();
    gpu::Device dev(arch);
    gpu::HostContext host(dev);
    auto k = makeStreamingWorkload(dev, smallSpec());
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    // Loads + stores hit the partition data ports; detectable via the
    // kernel having spent far longer than a compute-only kernel would.
    EXPECT_TRUE(true); // completion itself is the functional check
}

TEST(Workloads, MixContainsAllFourSignatures)
{
    gpu::Device dev(gpu::keplerK40c());
    auto mix = makeRodiniaLikeMix(dev, smallSpec());
    ASSERT_EQ(mix.size(), 4u);
    std::set<std::string> names;
    for (const auto &k : mix)
        names.insert(k.name);
    EXPECT_TRUE(names.count("heartwall-like"));
    EXPECT_TRUE(names.count("hotspot-like"));
    EXPECT_TRUE(names.count("srad-like"));
    EXPECT_TRUE(names.count("backprop-like"));
}

TEST(Workloads, MixRunsConcurrentlyToCompletion)
{
    gpu::Device dev(gpu::keplerK40c());
    gpu::HostContext host(dev);
    auto mix = makeRodiniaLikeMix(dev, smallSpec());
    std::vector<const gpu::KernelInstance *> insts;
    for (auto &k : mix)
        insts.push_back(&host.launch(dev.createStream(), std::move(k)));
    host.syncAll();
    for (const auto *i : insts)
        EXPECT_TRUE(i->done()) << i->name();
}

TEST(Workloads, RunOnAllArchitectures)
{
    for (const auto &arch : gpu::allArchitectures()) {
        gpu::Device dev(arch);
        gpu::HostContext host(dev);
        auto mix = makeRodiniaLikeMix(dev, smallSpec());
        for (auto &k : mix)
            host.launch(dev.createStream(), std::move(k));
        host.syncAll();
    }
    SUCCEED();
}

} // namespace
} // namespace gpucc::workloads

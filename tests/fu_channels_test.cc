/**
 * @file
 * Tests for automatic functional-unit channel construction: derive a
 * plan from the Figure 6/7 characterization and run the channel on any
 * operation class — including the paper-consistent negative result that
 * single-precision Add cannot carry a channel on the K40C (192 SP units
 * never saturate within the warp limit).
 */

#include <gtest/gtest.h>

#include "covert/channels/fu_channel_plan.h"
#include "covert/channels/sfu_channel.h"

namespace gpucc::covert
{
namespace
{

using gpu::OpClass;

BitVec
msg(std::size_t n)
{
    Rng rng(61);
    return randomBits(n, rng);
}

TEST(FuPlan, SinfIsFeasibleEverywhereAndMatchesThePaperSymbols)
{
    for (const auto &arch : gpu::allArchitectures()) {
        auto plan = deriveFuChannelPlan(arch, OpClass::Sinf);
        ASSERT_TRUE(plan.feasible) << arch.name;
        EXPECT_EQ(plan.spyWarpsPerBlock % arch.schedulersPerSm, 0u)
            << arch.name;
        EXPECT_EQ(plan.trojanWarpsPerBlock % arch.schedulersPerSm, 0u)
            << arch.name;
        EXPECT_GT(plan.predictedContendedCycles,
                  plan.predictedBaseCycles * 1.12)
            << arch.name;
    }
}

TEST(FuPlan, SqrtIsFeasibleEverywhere)
{
    for (const auto &arch : gpu::allArchitectures()) {
        auto plan = deriveFuChannelPlan(arch, OpClass::Sqrt);
        EXPECT_TRUE(plan.feasible) << arch.name;
    }
}

TEST(FuPlan, SpAddIsNotACarrierOnKepler)
{
    // Figure 6: Kepler Add/Mul stay flat over the whole sweep — the 192
    // SP units cannot be saturated, so there is no channel.
    auto plan = deriveFuChannelPlan(gpu::keplerK40c(), OpClass::FAdd);
    EXPECT_FALSE(plan.feasible);
    EXPECT_EQ(plan.onsetWarps, 0u);
}

TEST(FuPlan, SpAddIsACarrierOnFermiAndMaxwell)
{
    // Fermi's 32 SP units saturate easily; Maxwell's quadrants do too.
    EXPECT_TRUE(
        deriveFuChannelPlan(gpu::fermiC2075(), OpClass::FAdd).feasible);
    EXPECT_TRUE(
        deriveFuChannelPlan(gpu::maxwellM4000(), OpClass::FAdd).feasible);
}

TEST(FuPlan, DoublePrecisionFeasibleOnlyWhereUnitsExist)
{
    EXPECT_TRUE(
        deriveFuChannelPlan(gpu::fermiC2075(), OpClass::DAdd).feasible);
    EXPECT_TRUE(
        deriveFuChannelPlan(gpu::keplerK40c(), OpClass::DAdd).feasible);
    EXPECT_FALSE(
        deriveFuChannelPlan(gpu::maxwellM4000(), OpClass::DAdd).feasible);
}

struct PlanCase
{
    gpu::ArchParams arch;
    OpClass op;
};

class PlannedChannelTest : public ::testing::TestWithParam<PlanCase>
{
};

TEST_P(PlannedChannelTest, DerivedChannelTransmitsErrorFree)
{
    const auto &[arch, op] = GetParam();
    auto plan = deriveFuChannelPlan(arch, op);
    ASSERT_TRUE(plan.feasible) << arch.name;
    SfuChannel ch(arch, plan);
    auto r = ch.transmit(msg(32));
    EXPECT_TRUE(r.report.errorFree())
        << arch.name << " / " << gpu::opClassName(op);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlannedChannelTest,
    ::testing::Values(PlanCase{gpu::fermiC2075(), OpClass::Sinf},
                      PlanCase{gpu::keplerK40c(), OpClass::Sinf},
                      PlanCase{gpu::maxwellM4000(), OpClass::Sinf},
                      PlanCase{gpu::keplerK40c(), OpClass::Sqrt},
                      PlanCase{gpu::keplerK40c(), OpClass::DAdd},
                      PlanCase{gpu::fermiC2075(), OpClass::DAdd},
                      PlanCase{gpu::fermiC2075(), OpClass::FAdd},
                      PlanCase{gpu::maxwellM4000(), OpClass::FAdd}),
    [](const auto &info) {
        std::string n = info.param.arch.name + "_" +
                        gpu::opClassName(info.param.op);
        for (auto &c : n)
            if (c == ' ' || c == '(' || c == ')')
                c = '_';
        return n;
    });

TEST(FuPlanDeath, InfeasiblePlanIsRejectedByTheChannel)
{
    auto plan = deriveFuChannelPlan(gpu::keplerK40c(), OpClass::FAdd);
    ASSERT_FALSE(plan.feasible);
    EXPECT_EXIT((SfuChannel(gpu::keplerK40c(), plan)),
                ::testing::ExitedWithCode(1), "not a feasible");
}

TEST(FuPlan, PlanSymbolsPredictTheMeasuredLatencies)
{
    auto arch = gpu::keplerK40c();
    auto plan = deriveFuChannelPlan(arch, OpClass::Sinf);
    SfuChannel ch(arch, plan);
    auto r = ch.transmit(alternatingBits(24));
    EXPECT_NEAR(r.zeroMetric.mean(), plan.predictedBaseCycles, 2.5);
    // The single-kernel sweep caps at 32 warps while the live channel
    // can exceed it; allow a proportional margin.
    EXPECT_NEAR(r.oneMetric.mean(), plan.predictedContendedCycles,
                0.15 * plan.predictedContendedCycles);
}

} // namespace
} // namespace gpucc::covert

/**
 * @file
 * Blind attack-synthesis suite: the Section 3 methodology run with no
 * datasheet. An AttackerLab hands out devices behind the no-oracle
 * facade; everything the pipeline claims to discover is checked
 * against the very ArchParams that built the devices:
 *
 *  - the facade itself is sealed (compile-time: no arch()/constMem()/
 *    device() accessor exists to leak geometry);
 *  - blind geometry discovery recovers capacity, line size, set count
 *    and associativity exactly on every committed architecture, and
 *    the measured hit/miss plateaus land on the nominal latencies;
 *  - thresholds derived from the measured populations split hit from
 *    miss, and the group-reduced eviction set has exactly
 *    associativity-many members, all in the victim's set;
 *  - the synthesized plan ranks L1 best, its config drives a 96-bit
 *    ChannelSession to completion with zero residual errors, and its
 *    threshold can be adopted by a launch-per-bit channel directly;
 *  - the whole discovery run is deterministic: one rolling lab digest,
 *    invariant under replay and under SweepRunner thread count.
 */

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/session/session.h"
#include "covert/synth/synthesizer.h"
#include "sim/exec/sweep_runner.h"
#include "verify/scenarios.h"

namespace gpucc::covert::synth
{
namespace
{

// ---- facade seal (detection idiom) ----------------------------------

template <class T, class = void>
struct HasArch : std::false_type
{
};
template <class T>
struct HasArch<T, std::void_t<decltype(std::declval<T &>().arch())>>
    : std::true_type
{
};

template <class T, class = void>
struct HasConstMem : std::false_type
{
};
template <class T>
struct HasConstMem<T, std::void_t<decltype(std::declval<T &>().constMem())>>
    : std::true_type
{
};

template <class T, class = void>
struct HasDevice : std::false_type
{
};
template <class T>
struct HasDevice<T, std::void_t<decltype(std::declval<T &>().device())>>
    : std::true_type
{
};

TEST(AttackerFacade, ExposesNoGeometryOracle)
{
    // The blind claim is only worth something if the compiler enforces
    // it: a probe holding an AttackerDevice must have no way to read
    // the parameters it is supposed to discover.
    static_assert(!HasArch<AttackerDevice>::value,
                  "facade leaks ArchParams");
    static_assert(!HasConstMem<AttackerDevice>::value,
                  "facade leaks cache geometry");
    static_assert(!HasDevice<AttackerDevice>::value,
                  "facade leaks the underlying Device");
    // Devices only come from a lab (private constructor) and cannot be
    // duplicated to replay measurements against a warm cache.
    static_assert(!std::is_constructible_v<AttackerDevice, AttackerLab &,
                                           const gpu::ArchParams &,
                                           std::uint64_t>,
                  "attacker devices must come from AttackerLab::fresh");
    static_assert(!std::is_copy_constructible_v<AttackerDevice>,
                  "attacker devices are single-use");
    SUCCEED();
}

// ---- per-architecture blind discovery -------------------------------

class SynthBlind : public ::testing::TestWithParam<gpu::ArchParams>
{
};

TEST_P(SynthBlind, DiscoversL1GeometryExactly)
{
    setVerbose(false);
    const gpu::ArchParams &a = GetParam();
    AttackerLab lab(a);
    BlindCacheProbe probe(lab);
    DiscoveredCache l1 = probe.discover();
    EXPECT_EQ(l1.sizeBytes, a.constMem.l1.sizeBytes) << a.name;
    EXPECT_EQ(l1.lineBytes, a.constMem.l1.lineBytes) << a.name;
    EXPECT_EQ(l1.numSets, a.constMem.l1.numSets()) << a.name;
    EXPECT_EQ(l1.ways, a.constMem.l1.ways) << a.name;
    // The in-capacity plateau and the post-knee ceiling are the L1-hit
    // and L2-hit latencies the attacker has no datasheet for.
    EXPECT_NEAR(l1.plateauCycles,
                static_cast<double>(a.constMem.l1HitCycles), 1.0)
        << a.name;
    EXPECT_NEAR(l1.ceilingCycles,
                static_cast<double>(a.constMem.l2HitCycles), 1.0)
        << a.name;
}

TEST_P(SynthBlind, ThresholdsSplitMeasuredPopulations)
{
    setVerbose(false);
    const gpu::ArchParams &a = GetParam();
    AttackerLab lab(a);
    BlindCacheProbe probe(lab);
    DiscoveredCache l1 = probe.discover();
    session::CalibrationResult cal = thresholdFromEviction(lab, l1);
    ASSERT_TRUE(cal.ok) << a.name << ": populations overlapped";
    EXPECT_NEAR(cal.hitCycles, static_cast<double>(a.constMem.l1HitCycles),
                2.0)
        << a.name;
    EXPECT_NEAR(cal.missCycles,
                static_cast<double>(a.constMem.l2HitCycles), 2.0)
        << a.name;
    // Data threshold between the populations, signal threshold above it
    // (near the miss population, per the protocol's partial-evict rule).
    EXPECT_GT(cal.timing.dataThresholdCycles, cal.hitCycles) << a.name;
    EXPECT_LT(cal.timing.dataThresholdCycles, cal.missCycles) << a.name;
    EXPECT_GT(cal.timing.missThresholdCycles,
              cal.timing.dataThresholdCycles)
        << a.name;
    EXPECT_GT(cal.marginCycles, 0.0) << a.name;
}

TEST_P(SynthBlind, MinimalEvictionSetHasAssociativityMembers)
{
    setVerbose(false);
    const gpu::ArchParams &a = GetParam();
    AttackerLab lab(a);
    BlindCacheProbe probe(lab);
    DiscoveredCache l1 = probe.discover();
    session::CalibrationResult cal = thresholdFromEviction(lab, l1);
    ASSERT_TRUE(cal.ok) << a.name;
    EvictionSetResult ev =
        findMinimalEvictionSet(lab, l1, cal.timing.dataThresholdCycles);
    // Group reduction must land on exactly associativity-many
    // survivors, having dropped every one-line-over decoy.
    EXPECT_EQ(ev.offsets.size(), l1.ways) << a.name;
    EXPECT_GT(ev.poolSize, ev.offsets.size()) << a.name;
    const std::size_t setStride = l1.numSets * l1.lineBytes;
    for (std::size_t off : ev.offsets) {
        EXPECT_EQ(off % setStride, 0u)
            << a.name << ": survivor at offset " << off
            << " is not in the victim's set";
        EXPECT_NE(off, 0u) << a.name << ": victim joined its own set";
    }
}

TEST_P(SynthBlind, PlanDrivesSessionWithZeroResidualErrors)
{
    setVerbose(false);
    const gpu::ArchParams &a = GetParam();
    AttackerLab lab(a);
    SynthesizedPlan plan = synthesize(lab);

    // All three substrates show a decodable contrast on the committed
    // parts, and the measured ranking puts the cache channel first —
    // the paper's own bandwidth ordering.
    ASSERT_EQ(plan.ranking.size(), 3u) << a.name;
    for (const SubstrateScore &s : plan.ranking)
        EXPECT_TRUE(s.usable)
            << a.name << ": " << channelResourceName(s.resource);
    EXPECT_EQ(plan.best(), ChannelResource::L1Const) << a.name;
    EXPECT_GT(plan.sfu.onsetWarps, 0u) << a.name;
    EXPECT_GT(plan.atomic.onsetWarps, 0u) << a.name;
    EXPECT_EQ(plan.devicesUsed, lab.devicesRetired()) << a.name;
    EXPECT_EQ(plan.discoveryDigest, lab.digest()) << a.name;

    session::SessionConfig cfg = planSessionConfig(plan);
    ASSERT_FALSE(cfg.resources.empty()) << a.name;
    EXPECT_EQ(cfg.resources.front(), ChannelResource::L1Const) << a.name;

    session::ChannelSession session(a, cfg);
    session.channel().setTiming(plan.timing());
    session::SessionResult r =
        session.run(verify::scenarioPayload(96, 17));
    EXPECT_TRUE(r.complete) << a.name;
    EXPECT_EQ(r.residualBitErrors, 0u) << a.name;
    EXPECT_DOUBLE_EQ(r.residualBer, 0.0) << a.name;
    EXPECT_EQ(r.finalResource, plan.best()) << a.name;
}

TEST_P(SynthBlind, AdoptedThresholdDrivesLaunchPerBitChannel)
{
    setVerbose(false);
    const gpu::ArchParams &a = GetParam();
    AttackerLab lab(a);
    BlindCacheProbe probe(lab);
    DiscoveredCache l1 = probe.discover();
    session::CalibrationResult cal = thresholdFromEviction(lab, l1);
    ASSERT_TRUE(cal.ok) << a.name;

    // The blind threshold replaces the channel's own calibration
    // preamble: decode must still be error-free, and the channel must
    // report the adopted value as its decision threshold.
    L1ConstChannel ch(a);
    ch.adoptThreshold(cal.timing.dataThresholdCycles);
    ChannelResult r = ch.transmit(verify::scenarioPayload(32, 3));
    EXPECT_DOUBLE_EQ(r.threshold, cal.timing.dataThresholdCycles)
        << a.name;
    EXPECT_TRUE(r.report.errorFree()) << a.name;
}

INSTANTIATE_TEST_SUITE_P(AllGpus, SynthBlind,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

// ---- determinism ----------------------------------------------------

TEST(SynthDeterminism, ReplayOfTheSameLabSeedIsStable)
{
    setVerbose(false);
    auto once = [] {
        AttackerLab lab(gpu::keplerK40c());
        return synthesize(lab);
    };
    SynthesizedPlan p1 = once();
    SynthesizedPlan p2 = once();
    EXPECT_EQ(p1.discoveryDigest, p2.discoveryDigest);
    EXPECT_EQ(p1.devicesUsed, p2.devicesUsed);
    EXPECT_DOUBLE_EQ(p1.thresholds.hitCycles, p2.thresholds.hitCycles);
    EXPECT_DOUBLE_EQ(p1.thresholds.missCycles, p2.thresholds.missCycles);
    EXPECT_EQ(p1.evictionSet.offsets, p2.evictionSet.offsets);
}

TEST(SynthDeterminism, DiscoveryDigestIsThreadCountInvariant)
{
    setVerbose(false);
    // Full blind synthesis per architecture, fanned across SweepRunner
    // workers: the rolling lab digest (every retired device's end
    // state, in order) must not depend on the worker count.
    auto digestsAt = [](unsigned threads) {
        sim::exec::SweepRunner runner(threads);
        return runner.runSweep(gpu::allArchitectures(),
                               [](const gpu::ArchParams &a) {
                                   AttackerLab lab(a);
                                   return synthesize(lab).discoveryDigest;
                               });
    };
    auto one = digestsAt(1);
    auto two = digestsAt(2);
    auto eight = digestsAt(8);
    ASSERT_EQ(one.size(), gpu::allArchitectures().size());
    EXPECT_EQ(one, two) << "2 workers changed a blind discovery";
    EXPECT_EQ(one, eight) << "8 workers changed a blind discovery";
}

} // namespace
} // namespace gpucc::covert::synth

/**
 * @file
 * Tests for the synchronized persistent-kernel channel (Section 7.1,
 * Figure 11, Table 2): the handshake primitives, the three-way protocol,
 * the multi-bit SIMT variant, and the all-SM parallel variant.
 */

#include <gtest/gtest.h>

#include "covert/channels/cache_sets.h"
#include "covert/sync/handshake.h"
#include "covert/sync/sync_channel.h"
#include "gpu/host.h"

namespace gpucc::covert
{
namespace
{

using gpu::ArchParams;

BitVec
msg(std::size_t n, std::uint64_t seed = 5)
{
    Rng rng(seed);
    return randomBits(n, rng);
}

TEST(ProtocolTiming, ArchDefaultsDeriveFromCacheLatencies)
{
    for (const auto &arch : gpu::allArchitectures()) {
        auto t = ProtocolTiming::forArch(arch);
        double hit = static_cast<double>(arch.constMem.l1HitCycles);
        double miss = static_cast<double>(arch.constMem.l2HitCycles);
        // Signal threshold close to the all-miss latency; data threshold
        // at the midpoint.
        EXPECT_GT(t.missThresholdCycles, 0.5 * (hit + miss)) << arch.name;
        EXPECT_LT(t.missThresholdCycles, miss) << arch.name;
        EXPECT_NEAR(t.dataThresholdCycles, 0.5 * (hit + miss), 0.1)
            << arch.name;
        EXPECT_GT(t.maxPolls, 0u);
        EXPECT_GT(t.settleCycles, 0u);
    }
}

// Drive the handshake primitives directly from a two-warp kernel pair
// co-resident on SM 0.
TEST(Handshake, SignalIsDetectedOnceAndOnlyOnce)
{
    auto arch = gpu::keplerK40c();
    gpu::Device dev(arch);
    gpu::HostContext host(dev, 3);
    host.setJitterUs(0.0);
    const auto &geom = arch.constMem.l1;
    auto t = ProtocolTiming::forArch(arch);
    // Long poll backoff: the sender's prime (~1 K cycles) then lands
    // entirely between two polls, making the detection count exact.
    t.pollBackoffCycles = 4000;

    Addr senderBase = dev.allocConst(geom.sizeBytes, setStride(geom));
    Addr receiverBase = dev.allocConst(geom.sizeBytes, setStride(geom));
    auto senderLines = setFillingAddrs(geom, senderBase, 5);
    auto receiverLines = setFillingAddrs(geom, receiverBase, 5);

    std::vector<int> detections;

    gpu::KernelLaunch sender;
    sender.name = "sender";
    sender.config.gridBlocks = dev.numSms();
    sender.config.threadsPerBlock = 32;
    sender.body = [&, senderLines](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        // Prime once, well after the receiver warmed up and started
        // polling (launch latency separates the two kernels by a few us).
        co_await ctx.sleep(15000);
        co_await primeSet(ctx, senderLines); // one signal
        co_await ctx.sleep(60000);
        co_return;
    };

    gpu::KernelLaunch receiver;
    receiver.name = "receiver";
    receiver.config.gridBlocks = dev.numSms();
    receiver.config.threadsPerBlock = 32;
    receiver.body = [&, receiverLines,
                     t](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        co_await primeSet(ctx, receiverLines); // warm own lines
        // Poll three times: expect exactly one detection.
        for (int round = 0; round < 3; ++round) {
            bool got = co_await waitForSignal(ctx, receiverLines, t);
            detections.push_back(got ? 1 : 0);
        }
        co_return;
    };

    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    auto &kSend = host.launch(s1, sender);
    auto &kRecv = host.launch(s2, receiver);
    host.sync(kRecv);
    host.sync(kSend);

    ASSERT_EQ(detections.size(), 3u);
    EXPECT_EQ(detections[0], 1); // the prime was detected...
    EXPECT_EQ(detections[1], 0); // ...and consumed (re-armed set)
    EXPECT_EQ(detections[2], 0);
}

TEST(Handshake, NoSignalTimesOut)
{
    auto arch = gpu::keplerK40c();
    gpu::Device dev(arch);
    gpu::HostContext host(dev, 3);
    const auto &geom = arch.constMem.l1;
    auto t = ProtocolTiming::forArch(arch);
    t.maxPolls = 4;
    Addr base = dev.allocConst(geom.sizeBytes, setStride(geom));
    auto lines = setFillingAddrs(geom, base, 2);
    bool got = true;
    gpu::KernelLaunch k;
    k.name = "lonely";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = 32;
    k.body = [&, lines, t](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        co_await primeSet(ctx, lines);
        got = co_await waitForSignal(ctx, lines, t);
        co_return;
    };
    auto &s = dev.createStream();
    host.sync(host.launch(s, k));
    EXPECT_FALSE(got);
}

class SyncChannelTest : public ::testing::TestWithParam<ArchParams>
{
};

TEST_P(SyncChannelTest, SingleBitErrorFree)
{
    SyncL1Channel ch(GetParam());
    auto r = ch.transmit(msg(128));
    EXPECT_TRUE(r.report.errorFree()) << GetParam().name;
}

TEST_P(SyncChannelTest, SingleBitBandwidthMatchesTable2)
{
    // Table 2 "Sync." column: 61 / 75 / 75 Kbps.
    SyncL1Channel ch(GetParam());
    auto r = ch.transmit(msg(256));
    double expect = GetParam().generation == gpu::Generation::Fermi
                        ? 61e3
                        : 75e3;
    EXPECT_NEAR(r.bandwidthBps, expect, 0.12 * expect) << GetParam().name;
}

TEST_P(SyncChannelTest, MultiBitErrorFreeAndFaster)
{
    SyncChannelConfig cfg;
    cfg.dataSetsPerSm = 6;
    SyncL1Channel multi(GetParam(), cfg);
    SyncL1Channel single(GetParam());
    auto m = msg(240);
    auto rm = multi.transmit(m);
    auto rs = single.transmit(m);
    EXPECT_TRUE(rm.report.errorFree()) << GetParam().name;
    // Table 2: the 6-set variant gains ~3.4-3.8x, sublinear in 6.
    double gain = rm.bandwidthBps / rs.bandwidthBps;
    EXPECT_GT(gain, 2.5) << GetParam().name;
    EXPECT_LT(gain, 6.0) << GetParam().name;
}

TEST_P(SyncChannelTest, AllSmsScalesByParticipatingSms)
{
    SyncChannelConfig multi;
    multi.dataSetsPerSm = 6;
    SyncChannelConfig all = multi;
    all.allSms = true;
    SyncL1Channel chMulti(GetParam(), multi);
    SyncL1Channel chAll(GetParam(), all);
    auto m = msg(1200);
    auto rAll = chAll.transmit(m);
    auto rMulti = chMulti.transmit(msg(240));
    EXPECT_TRUE(rAll.report.errorFree()) << GetParam().name;
    double gain = rAll.bandwidthBps / rMulti.bandwidthBps;
    EXPECT_GT(gain, 0.75 * GetParam().numSms) << GetParam().name;
    EXPECT_LT(gain, 1.15 * GetParam().numSms) << GetParam().name;
}

TEST_P(SyncChannelTest, FasterThanLaunchPerBitBaseline)
{
    // The whole point of Section 7.1: removing the launch overhead
    // raises bandwidth well above the baseline.
    SyncL1Channel ch(GetParam());
    auto r = ch.transmit(msg(128));
    EXPECT_GT(r.bandwidthBps, 50e3) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllGpus, SyncChannelTest,
                         ::testing::ValuesIn(gpu::allArchitectures()),
                         [](const auto &info) {
                             std::string n = info.param.name;
                             for (auto &c : n)
                                 if (c == ' ')
                                     c = '_';
                             return n;
                         });

TEST(SyncChannel, KeplerHits4MbpsWithAllOptimizations)
{
    // The paper's headline: "error-free bandwidth of over 4 Mbps".
    SyncChannelConfig cfg;
    cfg.dataSetsPerSm = 6;
    cfg.allSms = true;
    SyncL1Channel ch(gpu::keplerK40c(), cfg);
    auto r = ch.transmit(msg(2048));
    EXPECT_TRUE(r.report.errorFree());
    EXPECT_GT(r.bandwidthBps, 4e6);
}

TEST(SyncChannel, BitsPerRoundAccounting)
{
    auto arch = gpu::keplerK40c();
    EXPECT_EQ(SyncL1Channel(arch).bitsPerRound(), 1u);
    SyncChannelConfig cfg;
    cfg.dataSetsPerSm = 6;
    EXPECT_EQ(SyncL1Channel(arch, cfg).bitsPerRound(), 6u);
    cfg.allSms = true;
    EXPECT_EQ(SyncL1Channel(arch, cfg).bitsPerRound(), 6u * arch.numSms);
}

TEST(SyncChannelDeath, TooManyDataSetsIsRejected)
{
    // 8 L1 sets on Kepler: at most 6 data sets + 2 signal sets.
    SyncChannelConfig cfg;
    cfg.dataSetsPerSm = 7;
    SyncL1Channel ch(gpu::keplerK40c(), cfg);
    EXPECT_DEATH(ch.transmit(alternatingBits(8)), "cannot carry");
}

TEST(SyncChannel, SingleBitAndEmptyMessages)
{
    auto arch = gpu::keplerK40c();
    {
        SyncL1Channel ch(arch);
        EXPECT_TRUE(ch.transmit(BitVec{1}).report.errorFree());
    }
    {
        SyncL1Channel ch(arch);
        EXPECT_EQ(ch.transmit(BitVec{}).received.size(), 0u);
    }
}

TEST(SyncChannel, TextRoundTrip)
{
    SyncL1Channel ch(gpu::keplerK40c());
    std::string secret = "persistent kernels need no relaunch";
    auto r = ch.transmit(textToBits(secret));
    EXPECT_EQ(bitsToText(r.received), secret);
}

TEST(SyncChannel, LongMessageStaysErrorFree)
{
    // Robustness over thousands of rounds (timeout/resync never breaks
    // alignment in the noise-free case).
    SyncL1Channel ch(gpu::keplerK40c());
    auto r = ch.transmit(msg(2000, 17));
    EXPECT_TRUE(r.report.errorFree());
}

TEST(SyncChannel, MetricPopulationsSeparateCleanly)
{
    auto arch = gpu::keplerK40c();
    SyncL1Channel ch(arch);
    auto r = ch.transmit(alternatingBits(64));
    EXPECT_LT(r.zeroMetric.max(), r.threshold);
    EXPECT_GT(r.oneMetric.min(), r.threshold);
}

TEST(SyncChannel, FermiUsesWiderL1ForItsSets)
{
    // Fermi's 4 KB L1 has 16 sets: 6 data + 2 signalling sets still fit,
    // and so would 14 data sets.
    SyncChannelConfig cfg;
    cfg.dataSetsPerSm = 14;
    SyncL1Channel ch(gpu::fermiC2075(), cfg);
    auto r = ch.transmit(msg(280));
    EXPECT_TRUE(r.report.errorFree());
}

} // namespace
} // namespace gpucc::covert

/**
 * @file
 * Process-level soak of the sweep service: a real coordinator
 * (Unix-domain socket, poll loop) fork/exec-ing real gpucc_worker
 * processes, with scripted worker kills and stalls, asserting the
 * chaos run's canonical report is byte-identical to a deterministic
 * in-process run of the same spec — and that losing *every* worker
 * degrades gracefully instead of hanging or dropping cells.
 *
 * The gpucc_worker binary path arrives via GPUCC_WORKER_BIN (set by
 * ctest from $<TARGET_FILE:gpucc_worker>); without it the process
 * tests skip so the suite still runs standalone.
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "svc/coordinator.h"
#include "svc/service.h"
#include "svc/wire.h"

namespace gpucc::svc
{
namespace
{

struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        static int counter = 0;
        path = std::filesystem::temp_directory_path() /
               ("gpucc_svc_proc_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
};

const char *
workerBin()
{
    return std::getenv("GPUCC_WORKER_BIN");
}

/** Mixed spec: one real measurement row plus flaky/broken rows, kept
 *  small so the soak stays inside its ctest timeout. */
SweepSpec
processSpec()
{
    SweepSpec s;
    s.name = "proc_soak";
    s.seedBase = 2017;
    s.seedsPerCell = 2;
    s.archs = {"Kepler"};
    s.kinds.push_back({"l1_baseline", "", "bits=16"});
    s.kinds.push_back({"flaky", "", "fail=1;den=2"});
    s.kinds.push_back({"broken", "", ""});
    return s;
}

std::string
canonical(const SweepSpec &spec, const ServiceOutcome &outcome)
{
    std::ostringstream os;
    writeCanonicalReport(spec, outcome, os);
    return os.str();
}

/** Reference run through the deterministic in-process engine. */
std::string
referenceReport(const SweepSpec &spec, std::uint64_t &digest)
{
    ResultStore store("", "procrev");
    ServiceConfig cfg;
    cfg.workers = 2;
    const ServiceOutcome out = runService(spec, cfg, store);
    EXPECT_TRUE(out.missing.empty());
    digest = out.digest;
    return canonical(spec, out);
}

void
clientSleepMs(unsigned ms)
{
    timespec ts{};
    ts.tv_sec = static_cast<time_t>(ms / 1000);
    ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
    ::nanosleep(&ts, nullptr);
}

/** Connect to the coordinator socket, retrying until it is bound. */
int
clientConnect(const std::string &path, unsigned timeoutMs)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    for (unsigned waited = 0;; waited += 2) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) == 0)
            return fd;
        ::close(fd);
        if (waited >= timeoutMs)
            return -1;
        clientSleepMs(2);
    }
}

/** Blocking read of one reply line (client side of the lockstep). */
bool
clientReadReply(int fd, wire::LineBuffer &buf, std::string &line)
{
    while (!buf.next(line)) {
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n > 0) {
            buf.feed(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace

TEST(SvcProcess, KillAndStallSoakConvergesToReferenceReport)
{
    if (workerBin() == nullptr)
        GTEST_SKIP() << "GPUCC_WORKER_BIN not set";
    const SweepSpec spec = processSpec();
    std::uint64_t refDigest = 0;
    const std::string ref = referenceReport(spec, refDigest);

    TempDir dir;
    CoordinatorConfig cfg;
    cfg.socketPath = dir.file("sweep.sock");
    cfg.workerBin = workerBin();
    cfg.workers = 3;
    cfg.retry.leaseTimeout = 300; // ms: outlived by the 700ms stall
    cfg.retry.maxAttempts = 5;
    cfg.spoolPath = dir.file("spool.jsonl");
    std::string err;
    ASSERT_TRUE(ProcessFaultPlan::parse("w0:kill@2,w2:stall@1x700",
                                        cfg.faults, err))
        << err;

    ResultStore store(dir.file("ledger.jsonl"), "procrev");
    const ServiceOutcome out = runCoordinator(spec, cfg, store);

    ASSERT_TRUE(out.missing.empty())
        << out.missing.size() << " cells silently dropped";
    EXPECT_EQ(canonical(spec, out), ref);
    EXPECT_EQ(out.digest, refDigest);
    EXPECT_EQ(out.stats.workersSpawned, 3u);
    EXPECT_GE(out.stats.workersDied, 1u); // the scripted kill
    EXPECT_GE(out.stats.queue.leasesExpired, 1u);
    // Bounded retries: nothing spun past the quarantine ceiling.
    EXPECT_LE(out.stats.queue.retries,
              spec.expand().size() *
                  static_cast<std::size_t>(cfg.retry.maxAttempts));
    EXPECT_TRUE(std::filesystem::exists(cfg.spoolPath));
}

TEST(SvcProcess, AllWorkersLostFinishesDegradedInProcess)
{
    if (workerBin() == nullptr)
        GTEST_SKIP() << "GPUCC_WORKER_BIN not set";
    const SweepSpec spec = processSpec();
    std::uint64_t refDigest = 0;
    const std::string ref = referenceReport(spec, refDigest);

    TempDir dir;
    CoordinatorConfig cfg;
    cfg.socketPath = dir.file("sweep.sock");
    cfg.workerBin = workerBin();
    cfg.workers = 2;
    cfg.retry.leaseTimeout = 300;
    std::string err;
    ASSERT_TRUE(ProcessFaultPlan::parse("w0:kill@1,w1:kill@1",
                                        cfg.faults, err));

    ResultStore store(dir.file("ledger.jsonl"), "procrev");
    const ServiceOutcome out = runCoordinator(spec, cfg, store);

    EXPECT_TRUE(out.stats.degraded);
    ASSERT_TRUE(out.missing.empty());
    EXPECT_EQ(canonical(spec, out), ref);
    EXPECT_EQ(out.digest, refDigest);
}

TEST(SvcProcess, ResumeAgainstTheSameLedgerAppendsOnlyTheDelta)
{
    if (workerBin() == nullptr)
        GTEST_SKIP() << "GPUCC_WORKER_BIN not set";
    const SweepSpec spec = processSpec();
    TempDir dir;
    const std::string ledger = dir.file("ledger.jsonl");

    // First run completes normally over real workers.
    {
        CoordinatorConfig cfg;
        cfg.socketPath = dir.file("a.sock");
        cfg.workerBin = workerBin();
        cfg.workers = 2;
        ResultStore store(ledger, "procrev");
        const ServiceOutcome out = runCoordinator(spec, cfg, store);
        ASSERT_TRUE(out.missing.empty());
    }
    const auto bytesBefore = std::filesystem::file_size(ledger);
    // Second run: everything cached, no worker ever needed, zero
    // bytes appended.
    {
        CoordinatorConfig cfg;
        cfg.socketPath = dir.file("b.sock");
        cfg.workerBin = workerBin();
        cfg.workers = 2;
        ResultStore store(ledger, "procrev");
        const ServiceOutcome out = runCoordinator(spec, cfg, store);
        ASSERT_TRUE(out.missing.empty());
        EXPECT_EQ(out.stats.storeAppended, 0u);
        EXPECT_EQ(out.stats.queue.cached, spec.expand().size());
        EXPECT_EQ(out.stats.cellsRun, 0u);
    }
    EXPECT_EQ(std::filesystem::file_size(ledger), bytesBefore);
}

TEST(SvcProcess, RogueClientMessagesAreRejectedWithoutCorruption)
{
    if (workerBin() == nullptr)
        GTEST_SKIP() << "GPUCC_WORKER_BIN not set";
    const SweepSpec spec = processSpec();
    std::uint64_t refDigest = 0;
    const std::string ref = referenceReport(spec, refDigest);

    TempDir dir;
    CoordinatorConfig cfg;
    cfg.socketPath = dir.file("sweep.sock");
    cfg.workerBin = workerBin();
    cfg.workers = 1;
    cfg.retry.leaseTimeout = 300;
    cfg.retry.maxAttempts = 5;
    std::string err;
    // The stall keeps the run open long enough for the rogue to get
    // its messages in before the socket is torn down.
    ASSERT_TRUE(
        ProcessFaultPlan::parse("w0:stall@1x500", cfg.faults, err))
        << err;

    // A byzantine local process: any uid can connect to the socket,
    // so garbage, results-before-hello and out-of-range cell indexes
    // must all come back as error replies — never corrupt the run.
    std::thread rogue([&] {
        const int fd = clientConnect(cfg.socketPath, 2000);
        if (fd < 0)
            return;
        wire::LineBuffer buf;
        std::string line;
        CellSpec bogus;
        bogus.index = 99999;
        CellOutcome fake;
        fake.outcome = "complete";
        wire::sendLine(fd, "this is not json");
        clientReadReply(fd, buf, line);
        wire::sendLine(fd,
                       wire::encodeResult("rogue", bogus, 7, fake));
        clientReadReply(fd, buf, line); // error: result before hello
        wire::sendLine(fd, wire::encodeHello("rogue"));
        clientReadReply(fd, buf, line);
        wire::sendLine(fd,
                       wire::encodeResult("rogue", bogus, 7, fake));
        clientReadReply(fd, buf, line); // error: cell out of range
        CellSpec first;
        first.index = 0;
        wire::sendLine(
            fd, wire::encodeResult("rogue", first, 0xdeadbeef, fake));
        clientReadReply(fd, buf, line); // stale lease: discarded
        ::close(fd);
    });

    ResultStore store(dir.file("ledger.jsonl"), "procrev");
    const ServiceOutcome out = runCoordinator(spec, cfg, store);
    rogue.join();

    ASSERT_TRUE(out.missing.empty());
    EXPECT_EQ(canonical(spec, out), ref);
    EXPECT_EQ(out.digest, refDigest);
    // Garbage line + pre-hello result + out-of-range result.
    EXPECT_GE(out.stats.protocolErrors, 3u);
}

TEST(SvcProcess, SlowCellHeartbeatsKeepTheLeaseAlive)
{
    if (workerBin() == nullptr)
        GTEST_SKIP() << "GPUCC_WORKER_BIN not set";
    // One cell that runs well past the lease timeout: the worker's
    // helper-thread heartbeats must keep the lease alive, or the
    // cell would expire twice and be spuriously quarantined.
    SweepSpec spec;
    spec.name = "slow_cell";
    spec.seedBase = 2017;
    spec.seedsPerCell = 1;
    spec.archs = {"Kepler"};
    spec.kinds.push_back({"slow", "", "ms=1000"});
    std::uint64_t refDigest = 0;
    const std::string ref = referenceReport(spec, refDigest);

    TempDir dir;
    CoordinatorConfig cfg;
    cfg.socketPath = dir.file("sweep.sock");
    cfg.workerBin = workerBin();
    cfg.workers = 1;
    cfg.retry.leaseTimeout = 450; // < cell runtime, > heartbeat gap
    cfg.retry.maxAttempts = 2;    // two expiries would quarantine

    ResultStore store(dir.file("ledger.jsonl"), "procrev");
    const ServiceOutcome out = runCoordinator(spec, cfg, store);

    ASSERT_TRUE(out.missing.empty());
    EXPECT_EQ(canonical(spec, out), ref);
    EXPECT_EQ(out.digest, refDigest);
    EXPECT_EQ(out.stats.queue.leasesExpired, 0u);
    EXPECT_EQ(out.stats.queue.quarantined, 0u);
    EXPECT_FALSE(out.stats.degraded);
}

} // namespace gpucc::svc

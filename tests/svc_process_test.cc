/**
 * @file
 * Process-level soak of the sweep service: a real coordinator
 * (Unix-domain socket, poll loop) fork/exec-ing real gpucc_worker
 * processes, with scripted worker kills and stalls, asserting the
 * chaos run's canonical report is byte-identical to a deterministic
 * in-process run of the same spec — and that losing *every* worker
 * degrades gracefully instead of hanging or dropping cells.
 *
 * The gpucc_worker binary path arrives via GPUCC_WORKER_BIN (set by
 * ctest from $<TARGET_FILE:gpucc_worker>); without it the process
 * tests skip so the suite still runs standalone.
 */

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "svc/coordinator.h"
#include "svc/service.h"

namespace gpucc::svc
{
namespace
{

struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        static int counter = 0;
        path = std::filesystem::temp_directory_path() /
               ("gpucc_svc_proc_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
};

const char *
workerBin()
{
    return std::getenv("GPUCC_WORKER_BIN");
}

/** Mixed spec: one real measurement row plus flaky/broken rows, kept
 *  small so the soak stays inside its ctest timeout. */
SweepSpec
processSpec()
{
    SweepSpec s;
    s.name = "proc_soak";
    s.seedBase = 2017;
    s.seedsPerCell = 2;
    s.archs = {"Kepler"};
    s.kinds.push_back({"l1_baseline", "", "bits=16"});
    s.kinds.push_back({"flaky", "", "fail=1;den=2"});
    s.kinds.push_back({"broken", "", ""});
    return s;
}

std::string
canonical(const SweepSpec &spec, const ServiceOutcome &outcome)
{
    std::ostringstream os;
    writeCanonicalReport(spec, outcome, os);
    return os.str();
}

/** Reference run through the deterministic in-process engine. */
std::string
referenceReport(const SweepSpec &spec, std::uint64_t &digest)
{
    ResultStore store("", "procrev");
    ServiceConfig cfg;
    cfg.workers = 2;
    const ServiceOutcome out = runService(spec, cfg, store);
    EXPECT_TRUE(out.missing.empty());
    digest = out.digest;
    return canonical(spec, out);
}

} // namespace

TEST(SvcProcess, KillAndStallSoakConvergesToReferenceReport)
{
    if (workerBin() == nullptr)
        GTEST_SKIP() << "GPUCC_WORKER_BIN not set";
    const SweepSpec spec = processSpec();
    std::uint64_t refDigest = 0;
    const std::string ref = referenceReport(spec, refDigest);

    TempDir dir;
    CoordinatorConfig cfg;
    cfg.socketPath = dir.file("sweep.sock");
    cfg.workerBin = workerBin();
    cfg.workers = 3;
    cfg.retry.leaseTimeout = 300; // ms: outlived by the 700ms stall
    cfg.retry.maxAttempts = 5;
    cfg.spoolPath = dir.file("spool.jsonl");
    std::string err;
    ASSERT_TRUE(ProcessFaultPlan::parse("w0:kill@2,w2:stall@1x700",
                                        cfg.faults, err))
        << err;

    ResultStore store(dir.file("ledger.jsonl"), "procrev");
    const ServiceOutcome out = runCoordinator(spec, cfg, store);

    ASSERT_TRUE(out.missing.empty())
        << out.missing.size() << " cells silently dropped";
    EXPECT_EQ(canonical(spec, out), ref);
    EXPECT_EQ(out.digest, refDigest);
    EXPECT_EQ(out.stats.workersSpawned, 3u);
    EXPECT_GE(out.stats.workersDied, 1u); // the scripted kill
    EXPECT_GE(out.stats.queue.leasesExpired, 1u);
    // Bounded retries: nothing spun past the quarantine ceiling.
    EXPECT_LE(out.stats.queue.retries,
              spec.expand().size() *
                  static_cast<std::size_t>(cfg.retry.maxAttempts));
    EXPECT_TRUE(std::filesystem::exists(cfg.spoolPath));
}

TEST(SvcProcess, AllWorkersLostFinishesDegradedInProcess)
{
    if (workerBin() == nullptr)
        GTEST_SKIP() << "GPUCC_WORKER_BIN not set";
    const SweepSpec spec = processSpec();
    std::uint64_t refDigest = 0;
    const std::string ref = referenceReport(spec, refDigest);

    TempDir dir;
    CoordinatorConfig cfg;
    cfg.socketPath = dir.file("sweep.sock");
    cfg.workerBin = workerBin();
    cfg.workers = 2;
    cfg.retry.leaseTimeout = 300;
    std::string err;
    ASSERT_TRUE(ProcessFaultPlan::parse("w0:kill@1,w1:kill@1",
                                        cfg.faults, err));

    ResultStore store(dir.file("ledger.jsonl"), "procrev");
    const ServiceOutcome out = runCoordinator(spec, cfg, store);

    EXPECT_TRUE(out.stats.degraded);
    ASSERT_TRUE(out.missing.empty());
    EXPECT_EQ(canonical(spec, out), ref);
    EXPECT_EQ(out.digest, refDigest);
}

TEST(SvcProcess, ResumeAgainstTheSameLedgerAppendsOnlyTheDelta)
{
    if (workerBin() == nullptr)
        GTEST_SKIP() << "GPUCC_WORKER_BIN not set";
    const SweepSpec spec = processSpec();
    TempDir dir;
    const std::string ledger = dir.file("ledger.jsonl");

    // First run completes normally over real workers.
    {
        CoordinatorConfig cfg;
        cfg.socketPath = dir.file("a.sock");
        cfg.workerBin = workerBin();
        cfg.workers = 2;
        ResultStore store(ledger, "procrev");
        const ServiceOutcome out = runCoordinator(spec, cfg, store);
        ASSERT_TRUE(out.missing.empty());
    }
    const auto bytesBefore = std::filesystem::file_size(ledger);
    // Second run: everything cached, no worker ever needed, zero
    // bytes appended.
    {
        CoordinatorConfig cfg;
        cfg.socketPath = dir.file("b.sock");
        cfg.workerBin = workerBin();
        cfg.workers = 2;
        ResultStore store(ledger, "procrev");
        const ServiceOutcome out = runCoordinator(spec, cfg, store);
        ASSERT_TRUE(out.missing.empty());
        EXPECT_EQ(out.stats.storeAppended, 0u);
        EXPECT_EQ(out.stats.queue.cached, spec.expand().size());
        EXPECT_EQ(out.stats.cellsRun, 0u);
    }
    EXPECT_EQ(std::filesystem::file_size(ledger), bytesBefore);
}

} // namespace gpucc::svc

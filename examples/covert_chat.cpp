/**
 * @file
 * An interactive-style covert session: two isolated applications hold a
 * request/response conversation over the full-duplex L1 link (two
 * independent three-way-handshake channels in opposite directions on
 * disjoint cache-set groups). This is the substrate the related work
 * builds real sessions on — Maurice et al. ran ssh over their CPU
 * cache channel; here the same idea runs between two GPU kernels.
 *
 * Run: ./covert_chat
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/bitstream.h"
#include "common/log.h"
#include "covert/sync/duplex_channel.h"
#include "gpu/arch_params.h"

using namespace gpucc;

int
main()
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();

    std::vector<std::pair<std::string, std::string>> script = {
        {"SYN: anyone on this GPU?", "ACK: spy here, loud and clear"},
        {"GET /etc/model/weights.bin", "HDR: 4096 bytes, 8 frames"},
        {"READY to receive frame 0", "FRAME0: 2b7e151628aed2a6abf7"},
        {"CRC OK, next", "FIN: transfer complete"},
    };

    std::printf("Full-duplex covert session on a simulated %s\n"
                "(forward: data set 0, signals 6/7 -- reverse: data set "
                "1, signals 4/5)\n\n",
                arch.name.c_str());

    double totalBits = 0.0, totalSeconds = 0.0;
    for (const auto &[req, rsp] : script) {
        covert::DuplexSyncChannel link(arch);
        auto r = link.exchange(textToBits(req), textToBits(rsp));
        std::printf("A> %-30s  [%5.1f Kbps, BER %.1f%%]\n",
                    bitsToText(r.aToB.received).c_str(),
                    r.aToB.bandwidthBps / 1e3,
                    100.0 * r.aToB.report.errorRate());
        std::printf("B> %-30s  [%5.1f Kbps, BER %.1f%%]\n",
                    bitsToText(r.bToA.received).c_str(),
                    r.bToA.bandwidthBps / 1e3,
                    100.0 * r.bToA.report.errorRate());
        totalBits += static_cast<double>(r.aToB.sent.size() +
                                         r.bToA.sent.size());
        totalSeconds += r.aToB.seconds;
        if (!r.aToB.report.errorFree() || !r.bToA.report.errorFree()) {
            std::printf("!! corrupted exchange\n");
            return 1;
        }
    }
    std::printf("\nsession complete: %.0f bits exchanged at %.1f Kbps "
                "aggregate, zero errors,\nzero shared memory, zero "
                "sockets.\n",
                totalBits, totalBits / totalSeconds / 1e3);
    return 0;
}

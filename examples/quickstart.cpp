/**
 * @file
 * Quickstart: send a short message between two "applications" sharing a
 * simulated Tesla K40C, through each class of covert channel the paper
 * constructs, and print the measured bandwidth and error rate.
 *
 * Run: ./quickstart [message]
 */

#include <cstdio>
#include <string>

#include "common/bitstream.h"
#include "common/log.h"
#include "common/table.h"
#include "covert/channels/atomic_channel.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/channels/l2_const_channel.h"
#include "covert/channels/sfu_channel.h"
#include "covert/sync/sync_channel.h"
#include "covert/sync/sync_l2_channel.h"
#include "covert/sync/sync_sfu_channel.h"
#include "gpu/arch_params.h"

using namespace gpucc;

namespace
{

void
report(Table &table, const covert::ChannelResult &r)
{
    table.row({r.channelName, fmtKbps(r.bandwidthBps),
               fmtDouble(100.0 * r.report.errorRate(), 2) + " %",
               bitsToText(r.received)});
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string message = argc > 1 ? argv[1] : "GPU covert channel!";
    BitVec bits = textToBits(message);
    auto arch = gpu::keplerK40c();

    std::printf("Transmitting %zu bits (\"%s\") trojan -> spy on a "
                "simulated %s\n\n",
                bits.size(), message.c_str(), arch.name.c_str());

    Table table("covert channels, Tesla K40C (Kepler)");
    table.header({"channel", "bandwidth", "bit error rate", "received"});

    {
        covert::L1ConstChannel ch(arch);
        report(table, ch.transmit(bits));
    }
    {
        covert::L2ConstChannel ch(arch);
        report(table, ch.transmit(bits));
    }
    {
        covert::SfuChannel ch(arch);
        report(table, ch.transmit(bits));
    }
    {
        covert::AtomicChannel ch(arch,
                                 covert::AtomicScenario::StridedCoalesced);
        report(table, ch.transmit(bits));
    }
    {
        covert::SyncL1Channel ch(arch); // synchronized, single set
        report(table, ch.transmit(bits));
    }
    {
        covert::SyncL2Channel ch(arch); // synchronized, inter-SM
        report(table, ch.transmit(bits));
    }
    {
        covert::SyncSfuChannel ch(arch); // synchronized, SFU data
        report(table, ch.transmit(bits));
    }
    {
        covert::SyncChannelConfig cfg;
        cfg.dataSetsPerSm = 6;
        covert::SyncL1Channel ch(arch, cfg);
        report(table, ch.transmit(bits));
    }
    {
        covert::SyncChannelConfig cfg;
        cfg.dataSetsPerSm = 6;
        cfg.allSms = true;
        covert::SyncL1Channel ch(arch, cfg);
        report(table, ch.transmit(bits));
    }

    table.print();
    std::printf("\nAll channels decode the message from timing alone; no "
                "memory is shared\nbetween the two applications.\n");
    return 0;
}

/**
 * @file
 * Walkthrough of the paper's Section 3 methodology: reverse engineer
 * the block scheduler and the warp scheduler from the outside, using
 * only what a kernel can observe (the smid register and clock()), then
 * derive the co-location recipe the covert channels rely on.
 *
 * Run: ./reverse_engineer [fermi|kepler|maxwell]
 */

#include <cstdio>
#include <cstring>
#include <set>

#include "common/log.h"
#include "common/table.h"
#include "covert/characterize/scheduler_probe.h"
#include "gpu/arch_params.h"

using namespace gpucc;

namespace
{

gpu::ArchParams
pickArch(int argc, char **argv)
{
    if (argc > 1) {
        if (!std::strcmp(argv[1], "fermi"))
            return gpu::fermiC2075();
        if (!std::strcmp(argv[1], "maxwell"))
            return gpu::maxwellM4000();
    }
    return gpu::keplerK40c();
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    auto arch = pickArch(argc, argv);
    covert::SchedulerProbe probe(arch);

    std::printf("Reverse engineering the %s's schedulers, using only "
                "smid and clock() ...\n\n",
                arch.name.c_str());

    // Step 1: where do the blocks of two concurrent kernels land?
    std::printf("Step 1: launch two kernels (one block per SM each) on "
                "different streams\n");
    auto [k1, k2] = probe.observeTwoKernels(arch.numSms, arch.numSms, 128);
    Table t1("per-block observations (kernel 1 | kernel 2)");
    t1.header({"block", "K1 smid", "K1 start", "K2 smid", "K2 start",
               "co-resident?"});
    for (std::size_t b = 0; b < k1.blocks.size(); ++b) {
        const auto &a = k1.blocks[b];
        const auto &c = k2.blocks[b];
        bool co = a.smId == c.smId && c.startClock < a.endClock;
        t1.row({std::to_string(b), std::to_string(a.smId),
                std::to_string(a.startClock), std::to_string(c.smId),
                std::to_string(c.startClock), co ? "yes" : "no"});
    }
    t1.print();

    // Step 2: which scheduler does each warp get?
    std::printf("\nStep 2: one kernel, %u warps; infer warp -> scheduler "
                "assignment\n",
                2 * arch.schedulersPerSm);
    auto scheds = probe.observeWarpSchedulers(2 * arch.schedulersPerSm);
    Table t2("warp -> warp-scheduler map");
    t2.header({"warp", "scheduler"});
    for (std::size_t w = 0; w < scheds.size(); ++w)
        t2.row({std::to_string(w), std::to_string(scheds[w])});
    t2.print();

    // Step 3: summarize the recovered policies.
    auto f = probe.run();
    std::printf("\nRecovered policies:\n");
    std::printf("  block -> SM assignment ......... %s\n",
                f.blockAssignmentRoundRobin ? "round-robin" : "unknown");
    std::printf("  multiprogramming ............... %s\n",
                f.secondKernelUsesLeftover
                    ? "leftover policy (2nd kernel fills spare capacity)"
                    : "unknown");
    std::printf("  saturated device ............... %s\n",
                f.fullDeviceBlocksSecondKernel
                    ? "later blocks queue until an SM frees up"
                    : "unknown");
    std::printf("  warp -> scheduler assignment ... %s over %u "
                "schedulers\n",
                f.warpAssignmentRoundRobin ? "round-robin" : "unknown",
                f.observedSchedulers);

    std::printf("\nCo-location recipe (Section 3.1):\n");
    std::printf("  * launch %u blocks from each of the trojan and the "
                "spy -> one pair per SM;\n",
                arch.numSms);
    std::printf("  * use %u warps (a multiple of %u) per block to put "
                "one warp on every scheduler;\n",
                arch.schedulersPerSm * 32 / 32, arch.schedulersPerSm);
    std::printf("  * keep per-block resources small so the leftover "
                "policy accepts both kernels.\n");
    return 0;
}

/**
 * @file
 * End-to-end exfiltration scenario (the paper's motivating threat):
 *
 * A sandboxed application with no network access computes with a secret
 * 128-bit AES key on the GPU. A trojan routine inside it leaks the key
 * to a colluding spy application on the same GPU through the fully
 * optimized L1 covert channel (synchronized, 6 bits/SM, all SMs). A
 * CRC-8 trailer lets the receiver verify integrity, and the whole key
 * crosses the air gap in well under a millisecond.
 *
 * Act two repeats the theft on a hostile GPU: the "adversarial" fault
 * plan thrashes the channel's cache sets, degrades the cycle counter,
 * and preempts the spy. The raw duplex channel mangles the key; the
 * reliable ARQ link layer delivers it bit-perfect anyway, trading
 * goodput for correctness.
 *
 * Act three is the long game: the "eviction" plan kicks whole kernels
 * off the GPU mid-transfer and lets latencies drift. A self-calibrating
 * session — thresholds measured at start, pilots watching for desync,
 * transfers resumed from the last acknowledged frame — still lands the
 * key with zero residual errors.
 *
 * Run: ./exfiltrate_key [hex-key]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/bitstream.h"
#include "common/log.h"
#include "covert/link/reliable_link.h"
#include "covert/link/transport.h"
#include "covert/session/session.h"
#include "covert/trace/flight_recorder.h"
#include "gpu/device.h"
#include "covert/sync/duplex_channel.h"
#include "covert/sync/sync_channel.h"
#include "gpu/arch_params.h"
#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"

using namespace gpucc;

namespace
{

/** CRC-8 (poly 0x07) over a bit vector, MSB first. */
std::uint8_t
crc8(const BitVec &bits)
{
    std::uint8_t crc = 0;
    for (std::uint8_t b : bits) {
        std::uint8_t in = static_cast<std::uint8_t>(
            ((crc >> 7) ^ (b & 1)) & 1);
        crc = static_cast<std::uint8_t>(crc << 1);
        if (in)
            crc ^= 0x07;
    }
    return crc;
}

BitVec
hexToBits(const std::string &hex)
{
    BitVec bits;
    for (char c : hex) {
        int v;
        if (c >= '0' && c <= '9')
            v = c - '0';
        else if (c >= 'a' && c <= 'f')
            v = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            v = c - 'A' + 10;
        else
            GPUCC_FATAL("invalid hex digit '%c'", c);
        for (int i = 3; i >= 0; --i)
            bits.push_back(static_cast<std::uint8_t>((v >> i) & 1));
    }
    return bits;
}

std::string
bitsToHex(const BitVec &bits)
{
    std::string out;
    for (std::size_t i = 0; i + 4 <= bits.size(); i += 4) {
        int v = (bits[i] << 3) | (bits[i + 1] << 2) | (bits[i + 2] << 1) |
                bits[i + 3];
        out += "0123456789abcdef"[v];
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string keyHex = argc > 1 ? argv[1]
                                  : "2b7e151628aed2a6abf7158809cf4f3c";
    GPUCC_ASSERT(keyHex.size() == 32, "expected a 128-bit key (32 hex "
                                      "digits)");
    BitVec key = hexToBits(keyHex);

    std::printf("Scenario: sandboxed app (no network) leaks its AES key "
                "to a colluding tenant\nthrough the Tesla K40C's L1 "
                "constant caches.\n\n");
    std::printf("secret key:     %s\n", keyHex.c_str());

    // Frame: 128 key bits + 8 CRC bits.
    BitVec frame = key;
    std::uint8_t crc = crc8(key);
    for (int i = 7; i >= 0; --i)
        frame.push_back(static_cast<std::uint8_t>((crc >> i) & 1));

    // Fully optimized channel: synchronized + 6 sets/SM + all SMs. The
    // flight recorder logs every symbol decision (latency, threshold,
    // decoded bit vs ground truth) for post-mortem analysis.
    covert::trace::FlightRecorder recorder;
    covert::SyncChannelConfig cfg;
    cfg.dataSetsPerSm = 6;
    cfg.allSms = true;
    cfg.recorder = &recorder;
    covert::SyncL1Channel channel(gpu::keplerK40c(), cfg);
    auto r = channel.transmit(frame);

    BitVec rxKey(r.received.begin(), r.received.begin() + 128);
    std::uint8_t rxCrc = 0;
    for (int i = 0; i < 8; ++i) {
        rxCrc = static_cast<std::uint8_t>(
            (rxCrc << 1) | (r.received[128 + static_cast<std::size_t>(i)] &
                            1));
    }

    std::printf("exfiltrated:    %s\n", bitsToHex(rxKey).c_str());
    std::printf("CRC-8:          sent 0x%02x, received 0x%02x, computed "
                "0x%02x -> %s\n",
                crc, rxCrc, crc8(rxKey),
                crc8(rxKey) == rxCrc ? "VALID" : "CORRUPT");
    std::printf("channel:        %s\n", r.channelName.c_str());
    std::printf("transfer time:  %.1f us for %zu bits\n", r.seconds * 1e6,
                frame.size());
    std::printf("bandwidth:      %.2f Mbps, bit error rate %.2f %%\n",
                r.bandwidthBps / 1e6, 100.0 * r.report.errorRate());
    std::printf("flight record:  %zu symbols, %zu decode errors, worst "
                "decision margin %.1f cycles\n",
                recorder.records().size(), recorder.errorCount(),
                recorder.worstMargin());
    if (const char *path = std::getenv("GPUCC_FLIGHT")) {
        recorder.writeJson(path);
        std::printf("flight record:  JSON written to %s\n", path);
    }

    bool ok = bitsToHex(rxKey) == keyHex && crc8(rxKey) == rxCrc;
    std::printf("\n%s\n", ok ? "Key exfiltrated intact: the two kernels "
                               "never shared a byte of memory."
                             : "Transfer corrupted.");

    // -----------------------------------------------------------------
    // Act two: the same theft on a hostile GPU. The adversarial fault
    // plan thrashes the data and handshake sets, coarsens clock(), and
    // preempts the spy — first watch the raw duplex channel fail, then
    // the ARQ link layer push the key through regardless.
    // -----------------------------------------------------------------
    constexpr std::uint64_t faultSeed = 3;
    std::printf("\n--- hostile GPU: 'adversarial' fault plan (seed %u) "
                "---\n\n",
                static_cast<unsigned>(faultSeed));

    double rawBer, rawBps;
    {
        covert::DuplexSyncChannel chan(gpu::keplerK40c());
        sim::fault::FaultInjector inj(
            chan.harness().device(),
            sim::fault::FaultPlan::preset("adversarial"), faultSeed);
        inj.arm();
        auto raw = chan.exchange(frame, {});
        rawBer = raw.aToB.report.errorRate();
        rawBps = raw.aToB.bandwidthBps;
        BitVec rawRx = raw.aToB.received;
        rawRx.resize(128);
        std::printf("raw channel:    %s\n", bitsToHex(rawRx).c_str());
        std::printf("                bit error rate %.1f %%, %.1f Kbps "
                    "-> key unusable\n",
                    100.0 * rawBer, rawBps / 1e3);
    }

    std::printf("\nretrying with the reliable link (selective-repeat "
                "ARQ, CRC-8 frames)...\n\n");

    covert::DuplexSyncChannel chan(gpu::keplerK40c());
    sim::fault::FaultInjector inj(
        chan.harness().device(),
        sim::fault::FaultPlan::preset("adversarial"), faultSeed);
    inj.arm();
    covert::link::DuplexLinkTransport transport(chan);
    covert::link::LinkConfig lcfg;
    lcfg.payloadBits = 32;
    lcfg.window = 4;
    // Accumulate link.* counters next to the device's own metrics.
    lcfg.registry = &chan.harness().device().metricsRegistry();
    covert::link::ReliableLink link(transport, lcfg);
    auto lr = link.send(frame);

    BitVec arqKey = lr.payload;
    arqKey.resize(128);
    std::uint8_t arqCrc = 0;
    if (lr.payload.size() >= 136) {
        for (int i = 0; i < 8; ++i) {
            arqCrc = static_cast<std::uint8_t>(
                (arqCrc << 1) |
                (lr.payload[128 + static_cast<std::size_t>(i)] & 1));
        }
    }

    std::printf("ARQ delivered:  %s\n", bitsToHex(arqKey).c_str());
    std::printf("CRC-8:          computed 0x%02x, trailer 0x%02x -> "
                "%s\n",
                crc8(arqKey), arqCrc,
                lr.complete && crc8(arqKey) == arqCrc ? "VALID"
                                                      : "CORRUPT");
    std::printf("link stats:     %u rounds, %u data frames (%u "
                "retransmissions), %u frame errors\n",
                lr.rounds, lr.dataFramesSent, lr.retransmissions,
                lr.frameErrors);
    std::printf("goodput:        %.1f Kbps (raw channel managed %.1f "
                "Kbps of garbage)\n",
                lr.goodputBps / 1e3, rawBps / 1e3);
    std::printf("rate control:   final symbol-period scale x%.1f "
                "(widens on errors, narrows when clean)\n",
                lr.finalPeriodScale);

    bool arqOk = lr.complete && bitsToHex(arqKey) == keyHex &&
                 crc8(arqKey) == arqCrc;
    std::printf("\n%s\n",
                arqOk ? "Same faults, zero payload errors: reliability "
                        "is a protocol property, not a channel one."
                      : "ARQ transfer failed.");

    // -----------------------------------------------------------------
    // Act three: eviction-grade hostility. The driver kicks whole
    // kernels off the GPU mid-transfer and thermal drift erodes any
    // pre-tuned threshold. The session layer calibrates its thresholds
    // on the live device, interleaves epoch pilots to catch desync, and
    // resumes each segment from the last ARQ-acknowledged frame.
    // -----------------------------------------------------------------
    std::printf("\n--- eviction-grade GPU: 'eviction' fault plan (seed "
                "%u), self-calibrating session ---\n\n",
                static_cast<unsigned>(faultSeed));

    covert::session::SessionConfig scfg;
    scfg.link.payloadBits = 32;
    scfg.link.window = 4;
    covert::session::ChannelSession sess(gpu::keplerK40c(), scfg);
    sim::fault::FaultInjector sinj(
        sess.channel().harness().device(),
        sim::fault::FaultPlan::preset("eviction"), faultSeed);
    sinj.arm();
    auto sr = sess.run(frame);

    BitVec sessKey = sr.delivered;
    sessKey.resize(128);
    std::printf("session key:    %s\n", bitsToHex(sessKey).c_str());
    std::printf("calibration:    hit %.1f / miss %.1f cycles -> "
                "threshold %.1f (margin %.1f), %s\n",
                sr.calibration.hitCycles, sr.calibration.missCycles,
                sr.calibration.timing.dataThresholdCycles,
                sr.calibration.marginCycles,
                sr.calibration.ok ? "measured" : "fallback");
    std::printf("survived:       %u kernel evictions, %u resumed "
                "frames, %u desyncs (%u resyncs)\n",
                sinj.stats().evictions, sr.resumedFrames, sr.desyncs,
                sr.resyncs);
    std::printf("healing:        %u recalibrations, %u/%u ladder steps "
                "down/up, final rung %u\n",
                sr.recalibrations, sr.degradeSteps, sr.upgradeSteps,
                sr.finalRung);
    std::printf("integrity:      %u pilot failures, %u segment audits "
                "failed, residual BER %.2f %%\n",
                sr.pilotFailures, sr.auditFailures,
                100.0 * sr.residualBer);
    std::printf("goodput:        %.1f Kbps over %u segments\n",
                sr.goodputBps / 1e3, sr.segments);

    // One registry now carries the whole story: cache.* and fault.*
    // from the device, link.* from the ARQ segments, session.* from
    // the healing layer above them.
    if (const char *path = std::getenv("GPUCC_METRICS")) {
        sess.channel().harness().device().metricsRegistry().writeJson(
            path);
        std::printf("metrics:        JSON written to %s\n", path);
    }

    bool sessOk = sr.complete && sr.residualBitErrors == 0 &&
                  bitsToHex(sessKey) == keyHex;
    std::printf("\n%s\n",
                sessOk ? "Evicted, drifted, resynced - and the key "
                         "still left the sandbox intact."
                       : "Session transfer failed.");
    return ok && arqOk && sessOk ? 0 : 1;
}

/**
 * @file
 * The defender's view (Section 9): watch the device's eviction streams
 * and utilization counters, classify what is running, and show what the
 * implemented defenses do to an active covert channel.
 *
 * Run: ./defender_dashboard
 */

#include <cstdio>

#include "common/log.h"
#include "covert/detection/cc_detector.h"
#include "covert/sync/sync_channel.h"
#include "gpu/device_stats.h"
#include "gpu/host.h"
#include "workloads/interference.h"

using namespace gpucc;
using namespace gpucc::covert;

namespace
{

void
report(const char *scenario, const DetectionResult &r)
{
    std::printf("[detector] %-38s -> %s\n", scenario,
                r.covertChannelSuspected
                    ? strfmt("COVERT CHANNEL SUSPECTED (set %u, "
                             "oscillation %.2f, %u cross-evictions)",
                             r.topSet.set, r.topSet.oscillationFraction,
                             r.topSet.crossAppEvictions)
                          .c_str()
                    : "benign");
}

} // namespace

int
main()
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    Rng rng(2017);
    auto secret = randomBits(192, rng);

    std::printf("Defender dashboard on a simulated %s: eviction-train "
                "analysis over the constant caches.\n\n",
                arch.name.c_str());

    // Scenario 1: a benign tenant mix.
    {
        gpu::Device dev(arch);
        dev.constMem().setEvictionTracing(true);
        gpu::HostContext host(dev);
        workloads::WorkloadSpec spec;
        spec.blocks = 8;
        spec.threadsPerBlock = 128;
        spec.iterations = 1200;
        for (auto &k : workloads::makeRodiniaLikeMix(dev, spec))
            host.launch(dev.createStream(), std::move(k));
        host.syncAll();
        report("Rodinia-like tenant mix",
               analyzeEvictionTrace(dev.constMem().evictionTrace()));
    }

    // Scenario 2: the synchronized covert channel.
    {
        SyncL1Channel ch(arch);
        ch.harness().device().constMem().setEvictionTracing(true);
        auto r = ch.transmit(secret);
        report(strfmt("covert channel (%.1f Kbps, BER %.1f%%)",
                      r.bandwidthBps / 1e3,
                      100.0 * r.report.errorRate())
                   .c_str(),
               analyzeEvictionTrace(
                   ch.harness().device().constMem().evictionTrace()));
    }

    // Scenario 3: the channel against the way-partitioning defense.
    {
        SyncChannelConfig cfg;
        cfg.mitigations.cacheWayPartitioning = true;
        SyncL1Channel ch(arch, cfg);
        ch.harness().device().constMem().setEvictionTracing(true);
        auto r = ch.transmit(secret);
        report(strfmt("channel vs way partitioning (BER %.0f%%)",
                      100.0 * r.report.errorRate())
                   .c_str(),
               analyzeEvictionTrace(
                   ch.harness().device().constMem().evictionTrace()));
        std::printf("\n[defense] way partitioning: the channel decoded "
                    "%.0f%% of bits wrong — the\n          trojan can no "
                    "longer evict the spy's lines, and the oscillating\n"
                    "          train the detector keys on disappears "
                    "with it.\n\n",
                    100.0 * r.report.errorRate());
    }

    // Utilization view of an SFU channel: what a profiler would see.
    {
        SyncL1Channel ch(arch);
        ch.transmit(randomBits(256, rng));
        std::printf("device counters after a channel run:\n%s",
                    gpu::collectStats(ch.harness().device())
                        .render()
                        .c_str());
    }
    return 0;
}

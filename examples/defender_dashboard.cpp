/**
 * @file
 * The defender's view (Section 9): watch the device's eviction streams
 * and utilization counters, classify what is running, and show what the
 * implemented defenses do to an active covert channel.
 *
 * Run: ./defender_dashboard
 */

#include <algorithm>
#include <cstdio>

#include "common/log.h"
#include "common/metrics/metrics.h"
#include "common/table.h"
#include "covert/detection/cc_detector.h"
#include "covert/sync/sync_channel.h"
#include "gpu/device_stats.h"
#include "gpu/host.h"
#include "workloads/interference.h"

using namespace gpucc;
using namespace gpucc::covert;

namespace
{

void
report(const char *scenario, const DetectionResult &r)
{
    std::printf("[detector] %-38s -> %s\n", scenario,
                r.covertChannelSuspected
                    ? strfmt("COVERT CHANNEL SUSPECTED (set %u, "
                             "oscillation %.2f, %u cross-evictions)",
                             r.topSet.set, r.topSet.oscillationFraction,
                             r.topSet.crossAppEvictions)
                          .c_str()
                    : "benign");
}

} // namespace

int
main()
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    Rng rng(2017);
    auto secret = randomBits(192, rng);

    std::printf("Defender dashboard on a simulated %s: eviction-train "
                "analysis over the constant caches.\n\n",
                arch.name.c_str());

    // Scenario 1: a benign tenant mix.
    {
        gpu::Device dev(arch);
        dev.constMem().setEvictionTracing(true);
        gpu::HostContext host(dev);
        workloads::WorkloadSpec spec;
        spec.blocks = 8;
        spec.threadsPerBlock = 128;
        spec.iterations = 1200;
        for (auto &k : workloads::makeRodiniaLikeMix(dev, spec))
            host.launch(dev.createStream(), std::move(k));
        host.syncAll();
        report("Rodinia-like tenant mix",
               analyzeEvictionTrace(dev.constMem().evictionTrace()));
    }

    // Scenario 2: the synchronized covert channel.
    {
        SyncL1Channel ch(arch);
        ch.harness().device().constMem().setEvictionTracing(true);
        auto r = ch.transmit(secret);
        report(strfmt("covert channel (%.1f Kbps, BER %.1f%%)",
                      r.bandwidthBps / 1e3,
                      100.0 * r.report.errorRate())
                   .c_str(),
               analyzeEvictionTrace(
                   ch.harness().device().constMem().evictionTrace()));
    }

    // Scenario 3: the channel against the way-partitioning defense.
    {
        SyncChannelConfig cfg;
        cfg.mitigations.cacheWayPartitioning = true;
        SyncL1Channel ch(arch, cfg);
        ch.harness().device().constMem().setEvictionTracing(true);
        auto r = ch.transmit(secret);
        report(strfmt("channel vs way partitioning (BER %.0f%%)",
                      100.0 * r.report.errorRate())
                   .c_str(),
               analyzeEvictionTrace(
                   ch.harness().device().constMem().evictionTrace()));
        std::printf("\n[defense] way partitioning: the channel decoded "
                    "%.0f%% of bits wrong — the\n          trojan can no "
                    "longer evict the spy's lines, and the oscillating\n"
                    "          train the detector keys on disappears "
                    "with it.\n\n",
                    100.0 * r.report.errorRate());
    }

    // Utilization view of a channel run, as a *time series*: the
    // metrics registry samples every instrument on a fixed simulated-
    // cycle cadence, so the defender sees counters over time — the
    // periodic cache-miss signature of an active channel — instead of
    // one end-of-run total.
    {
        SyncL1Channel ch(arch);
        gpu::Device &dev = ch.harness().device();
        dev.sampleMetricsEvery(250000);
        ch.transmit(randomBits(256, rng));

        const auto &series = dev.metricsRegistry().series();
        Table t(strfmt("interval counters (sampled every 250k cycles, "
                       "%zu snapshots)",
                       series.size()));
        t.header({"cycles", "constL1 misses", "constL2 misses",
                  "LD/ST busy cycles", "events"});
        // Print ~10 evenly spaced rows; each shows the delta since the
        // previous printed row, which is what a polling profiler sees.
        std::size_t stride = std::max<std::size_t>(1, series.size() / 10);
        double pL1 = 0, pL2 = 0, pLdst = 0, pEv = 0;
        for (std::size_t i = 0; i < series.size(); i += stride) {
            const auto &row = series[i];
            double l1 = row.get("cache.constL1.misses");
            double l2 = row.get("cache.constL2.misses");
            double ldst = row.get("fu.ldst.busyTicks");
            double ev = row.get("sim.events.executed");
            t.row({std::to_string(ticksToCycles(row.tick)),
                   fmtDouble(l1 - pL1, 0), fmtDouble(l2 - pL2, 0),
                   std::to_string(ticksToCycles(
                       static_cast<Tick>(ldst - pLdst))),
                   fmtDouble(ev - pEv, 0)});
            pL1 = l1;
            pL2 = l2;
            pLdst = ldst;
            pEv = ev;
        }
        t.print();

        std::printf("device counters after the run (a view over the "
                    "same registry):\n%s",
                    gpu::collectStats(dev).render().c_str());
    }
    return 0;
}

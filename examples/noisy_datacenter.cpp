/**
 * @file
 * The Section 8 story: a multi-tenant GPU in a datacenter. The covert
 * channel pair shares the device with a mix of Rodinia-like tenant
 * workloads. Without protection the constant-memory-heavy tenant
 * wrecks the channel; with the exclusive co-location trick (shared-
 * memory saturation + silent helper launches) the channel runs
 * error-free while the tenants simply wait their turn.
 *
 * Run: ./noisy_datacenter [message]
 */

#include <cstdio>
#include <string>

#include "common/bitstream.h"
#include "common/log.h"
#include "covert/colocation/noise_experiment.h"
#include "gpu/arch_params.h"

using namespace gpucc;

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string message =
        argc > 1 ? argv[1] : "covert channels survive noisy neighbors";
    BitVec bits = textToBits(message);
    auto arch = gpu::keplerK40c();

    std::printf("Multi-tenant %s: trojan+spy channel vs a Rodinia-like "
                "tenant mix\n(constant-memory walker, compute, "
                "shared-memory user, streaming).\n\n",
                arch.name.c_str());

    std::printf("--- Attempt 1: no mitigation "
                "---------------------------------\n");
    auto plain = covert::runNoiseExperiment(arch, bits, false);
    std::printf("received: \"%s\"\n",
                bitsToText(plain.channel.received).c_str());
    std::printf("bit error rate: %.1f %%  (interferer blocks co-resident "
                "with the channel: %u)\n\n",
                100.0 * plain.channel.report.errorRate(),
                plain.coResidentInterfererBlocks);

    std::printf("--- Attempt 2: exclusive co-location (Section 8) "
                "--------------\n");
    std::printf("spy claims all %zu KB of shared memory per SM; helper "
                "launches soak up the\nleftover thread slots; the "
                "leftover policy then locks every tenant out.\n",
                arch.limits.smemPerBlockBytes / 1024);
    auto excl = covert::runNoiseExperiment(arch, bits, true);
    std::printf("received: \"%s\"\n",
                bitsToText(excl.channel.received).c_str());
    std::printf("bit error rate: %.1f %%  (interferer blocks co-resident "
                "with the channel: %u)\n",
                100.0 * excl.channel.report.errorRate(),
                excl.coResidentInterfererBlocks);
    std::printf("bandwidth: %.1f Kbps; all %u tenant kernels completed "
                "after the channel finished.\n",
                excl.channel.bandwidthBps / 1e3,
                excl.interferersLaunched);

    bool ok = excl.channel.report.errorFree() && excl.exclusionHeld();
    std::printf("\n%s\n",
                ok ? "Noise-free covert communication achieved without "
                     "error correction."
                   : "Mitigation failed.");
    return ok ? 0 : 1;
}

/**
 * @file
 * Section 8 extension: the reliable ARQ link layer vs forward error
 * correction under deterministic fault injection.
 *
 * The paper stops at characterizing the BER interference causes and
 * proposes ECC as future work (Section 8). This bench closes the loop:
 * for each fault-plan preset (quiet / bursty / adversarial /
 * datacenter) it pushes the same payload through the duplex L1 channel
 * under four protection modes — raw, FEC only, ARQ, ARQ+FEC — and
 * reports residual BER and goodput. ARQ turns a 30-40% raw BER into
 * error-free delivery at a goodput cost; FEC alone cannot.
 */

#include "bench_util.h"
#include "covert/coding/error_code.h"
#include "covert/link/reliable_link.h"
#include "covert/link/transport.h"
#include "covert/sync/duplex_channel.h"
#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"

using namespace gpucc;
using covert::link::DuplexLinkTransport;
using covert::link::LinkConfig;
using covert::link::ReliableLink;
using sim::fault::FaultInjector;
using sim::fault::FaultPlan;

namespace
{

constexpr std::uint64_t faultSeed = 3;

struct Cell
{
    double ber = 0.0;
    double goodputBps = 0.0;
    bool complete = true;
    unsigned retransmissions = 0;
};

/** Fresh channel + armed injector per measurement. */
struct Rig
{
    covert::DuplexSyncChannel chan;
    std::unique_ptr<FaultInjector> inj;

    explicit Rig(const std::string &plan)
        : chan(gpu::keplerK40c())
    {
        inj = std::make_unique<FaultInjector>(
            chan.harness().device(), FaultPlan::preset(plan), faultSeed);
        inj->arm();
    }
};

Cell
rawMode(const std::string &plan, const BitVec &payload)
{
    Rig rig(plan);
    auto r = rig.chan.exchange(payload, {});
    return {r.aToB.report.errorRate(), r.aToB.bandwidthBps, true, 0};
}

Cell
fecMode(const std::string &plan, const BitVec &payload)
{
    Rig rig(plan);
    covert::InterleavedRepetitionCode code(3);
    auto r = rig.chan.exchange(code.encode(payload), {});
    BitVec decoded = code.decode(r.aToB.received, payload.size());
    double seconds = r.aToB.seconds;
    return {compareBits(payload, decoded).errorRate(),
            seconds > 0.0 ? static_cast<double>(payload.size()) / seconds
                          : 0.0,
            true, 0};
}

Cell
arqMode(const std::string &plan, const BitVec &payload,
        const covert::ErrorCode *fec)
{
    Rig rig(plan);
    DuplexLinkTransport t(rig.chan);
    LinkConfig cfg;
    cfg.payloadBits = 32;
    cfg.window = 4;
    cfg.innerFec = fec;
    ReliableLink link(t, cfg);
    auto r = link.send(payload);
    return {compareBits(payload, r.payload).errorRate(), r.goodputBps,
            r.complete, r.retransmissions};
}

std::string
fmtCell(const Cell &c)
{
    std::string s = fmtDouble(100.0 * c.ber, 2) + " % / " +
                    fmtKbps(c.goodputBps);
    if (!c.complete)
        s += " (incomplete)";
    return s;
}

} // namespace

int
main()
{
    bench::banner("reliable ARQ link vs FEC under fault injection",
                  "Section 8 (interference; ECC as proposed future "
                  "work)");

    const BitVec payload = bench::payload(128);
    covert::Hamming74Code hamming;

    Table t("Duplex L1 link, 128-bit payload: residual BER / goodput "
            "per protection mode");
    t.header({"fault plan", "raw", "FEC (3x interleaved)",
              "ARQ (SR, w=4)", "ARQ + Hamming(7,4)"});
    for (const auto &plan : FaultPlan::presetNames()) {
        Cell raw = rawMode(plan, payload);
        Cell fec = fecMode(plan, payload);
        Cell arq = arqMode(plan, payload, nullptr);
        Cell both = arqMode(plan, payload, &hamming);
        t.row({plan, fmtCell(raw), fmtCell(fec), fmtCell(arq),
               fmtCell(both)});
    }
    t.print();

    std::printf(
        "Cells are residual bit error rate / payload goodput. The raw "
        "channel degrades with the\nplan's aggression (the adversarial "
        "plan thrashes the data and handshake sets, degrades\nthe "
        "timer, and preempts the spy). FEC decodes what it can from one "
        "pass and still leaks\nerrors under dense fault trains; the ARQ "
        "link retransmits CRC-failed frames with\nexponential backoff "
        "and adaptive rate control until the payload lands intact — "
        "goodput,\nnot correctness, absorbs the damage. Replay any "
        "cell: same (plan, seed) => identical run\n(seed %u here).\n",
        static_cast<unsigned>(faultSeed));
    return 0;
}

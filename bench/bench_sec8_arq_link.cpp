/**
 * @file
 * Section 8 extension: the reliable ARQ link layer vs forward error
 * correction under deterministic fault injection.
 *
 * The paper stops at characterizing the BER interference causes and
 * proposes ECC as future work (Section 8). This bench closes the loop:
 * for each fault-plan preset (quiet / bursty / adversarial /
 * datacenter) it pushes the same payload through the duplex L1 channel
 * under four protection modes — raw, FEC only, ARQ, ARQ+FEC — and
 * reports residual BER and goodput. ARQ turns a 30-40% raw BER into
 * error-free delivery at a goodput cost; FEC alone cannot.
 *
 * The per-mode measurements are the verify/scenarios helpers shared
 * with the conformance suite and the seed-sweep stability test.
 */

#include "bench_util.h"
#include "covert/coding/error_code.h"
#include "sim/fault/fault_plan.h"

using namespace gpucc;
using sim::fault::FaultPlan;

namespace
{

constexpr std::uint64_t faultSeed = 3;

struct Cell
{
    double ber = 0.0;
    double goodputBps = 0.0;
    bool complete = true;
    unsigned retransmissions = 0;
};

Cell
fromChannel(const verify::ChannelMeasurement &m)
{
    return {m.errorRate, m.bps, true, 0};
}

Cell
fromArq(const verify::ArqMeasurement &m)
{
    return {m.residualBer, m.goodputBps, m.complete, m.retransmissions};
}

std::string
fmtCell(const Cell &c)
{
    std::string s = fmtDouble(100.0 * c.ber, 2) + " % / " +
                    fmtKbps(c.goodputBps);
    if (!c.complete)
        s += " (incomplete)";
    return s;
}

} // namespace

int
main()
{
    bench::banner("reliable ARQ link vs FEC under fault injection",
                  "Section 8 (interference; ECC as proposed future "
                  "work)");

    const auto kepler = gpu::keplerK40c();
    const BitVec payload = bench::payload(128);
    covert::InterleavedRepetitionCode repetition(3);
    covert::Hamming74Code hamming;

    Table t("Duplex L1 link, 128-bit payload: residual BER / goodput "
            "per protection mode");
    t.header({"fault plan", "raw", "FEC (3x interleaved)",
              "ARQ (SR, w=4)", "ARQ + Hamming(7,4)"});
    for (const auto &plan : FaultPlan::presetNames()) {
        Cell raw = fromChannel(
            verify::measureDuplexRaw(kepler, plan, faultSeed, payload));
        Cell fec = fromChannel(verify::measureFecDuplex(
            kepler, plan, faultSeed, payload, repetition));
        Cell arq = fromArq(
            verify::measureArqOverPlan(kepler, plan, faultSeed, payload));
        Cell both = fromArq(verify::measureArqOverPlan(
            kepler, plan, faultSeed, payload, &hamming));
        t.row({plan, fmtCell(raw), fmtCell(fec), fmtCell(arq),
               fmtCell(both)});
    }
    t.print();

    std::printf(
        "Cells are residual bit error rate / payload goodput. The raw "
        "channel degrades with the\nplan's aggression (the adversarial "
        "plan thrashes the data and handshake sets, degrades\nthe "
        "timer, and preempts the spy). FEC decodes what it can from one "
        "pass and still leaks\nerrors under dense fault trains; the ARQ "
        "link retransmits CRC-failed frames with\nexponential backoff "
        "and adaptive rate control until the payload lands intact — "
        "goodput,\nnot correctness, absorbs the damage. Replay any "
        "cell: same (plan, seed) => identical run\n(seed %u here).\n",
        static_cast<unsigned>(faultSeed));
    return 0;
}

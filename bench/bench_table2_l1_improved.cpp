/**
 * @file
 * Table 2: improved L1 channels. Columns: launch-per-bit baseline,
 * synchronized persistent kernels (Figure 11 protocol), + multi-bit
 * over 6 cache sets, + SM-level parallelism. Paper rows:
 *   Fermi   33 / 61 / 207 Kbps / 2.8 Mbps
 *   Kepler  42 / 75 / 285 Kbps / 4.25 Mbps
 *   Maxwell 42 / 75 / 285 Kbps / 3.7 Mbps
 *
 * The measurement bodies live in verify/scenarios (shared with the
 * conformance suite); the bench runs them at the paper's full payload
 * sizes. Each (GPU, column) cell and each scaling point is an
 * independent simulation; all of them run in parallel through
 * SweepRunner and the tables are assembled in order afterwards.
 */

#include <functional>

#include "bench_util.h"
#include "sim/exec/sweep_runner.h"

using namespace gpucc;
using verify::ChannelMeasurement;

int
main(int argc, char **argv)
{
    bench::JsonSink::instance().configure("table2_l1_improved", argc,
                                          argv);
    bench::banner("Table 2: improved L1 channels",
                  "Section 7.1, Table 2");

    const char *paper[][4] = {
        {"33 Kbps", "61 Kbps", "207 Kbps", "2.8 Mbps"},
        {"42 Kbps", "75 Kbps", "285 Kbps", "4.25 Mbps"},
        {"42 Kbps", "75 Kbps", "285 Kbps", "3.7 Mbps"},
    };

    const auto archs = gpu::allArchitectures();

    // One job per (GPU, column) cell, flattened row-major.
    std::vector<std::function<ChannelMeasurement()>> jobs;
    for (const auto &arch : archs) {
        jobs.push_back(
            [&arch] { return verify::measureL1Baseline(arch, 64); });
        jobs.push_back(
            [&arch] { return verify::measureSyncL1(arch, 256); });
        jobs.push_back(
            [&arch] { return verify::measureSyncL1(arch, 512, 6); });
        jobs.push_back([&arch] {
            return verify::measureSyncL1(arch, 2048, 6, true);
        });
    }
    // Section 7.1's multi-bit scaling sweep on Kepler rides in the same
    // parallel batch: 1 (baseline) + 2/4/6 concurrent bits.
    auto kepler = gpu::keplerK40c();
    jobs.push_back(
        [&kepler] { return verify::measureSyncL1(kepler, 256); });
    const unsigned multiBits[] = {2u, 4u, 6u};
    for (unsigned m : multiBits) {
        jobs.push_back([&kepler, m] {
            return verify::measureSyncL1(kepler, 512, m);
        });
    }

    sim::exec::SweepRunner runner;
    auto results = runner.runSweep(
        jobs, [](const std::function<ChannelMeasurement()> &job) {
            return job();
        });

    Table t("Improved L1 channel bandwidth (all error-free)");
    t.header({"GPU", "L1 Baseline", "Sync.", "Sync. + multi-bits",
              "Sync., multi-bits + parallel"});
    for (std::size_t i = 0; i < archs.size(); ++i) {
        const ChannelMeasurement *row = &results[i * 4];
        GPUCC_ASSERT(row[0].errorFree && row[1].errorFree &&
                         row[2].errorFree && row[3].errorFree,
                     "Table 2 requires error-free channels");
        t.row({archs[i].name, bench::vsPaper(row[0].bps, paper[i][0]),
               bench::vsPaper(row[1].bps, paper[i][1]),
               bench::vsPaper(row[2].bps, paper[i][2]),
               bench::vsPaper(row[3].bps, paper[i][3])});
    }
    t.print();
    bench::JsonSink::instance().add(t);

    // Section 7.1 also reports the sublinear multi-bit scaling on
    // Kepler: 2/4/6 concurrent bits -> 1.8x / 2.9x / 3.8x.
    const ChannelMeasurement *scaling = &results[archs.size() * 4];
    double b1 = scaling[0].bps;
    Table s("Kepler: multi-bit scaling (paper: 1.8x / 2.9x / 3.8x)");
    s.header({"concurrent bits", "bandwidth", "speedup over 1 bit"});
    for (std::size_t j = 0; j < 3; ++j) {
        s.row({std::to_string(multiBits[j]),
               fmtKbps(scaling[1 + j].bps),
               fmtDouble(scaling[1 + j].bps / b1, 2) + "x"});
    }
    s.print();
    bench::JsonSink::instance().add(s);
    bench::JsonSink::instance().write();
    return 0;
}

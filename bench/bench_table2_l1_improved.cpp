/**
 * @file
 * Table 2: improved L1 channels. Columns: launch-per-bit baseline,
 * synchronized persistent kernels (Figure 11 protocol), + multi-bit
 * over 6 cache sets, + SM-level parallelism. Paper rows:
 *   Fermi   33 / 61 / 207 Kbps / 2.8 Mbps
 *   Kepler  42 / 75 / 285 Kbps / 4.25 Mbps
 *   Maxwell 42 / 75 / 285 Kbps / 3.7 Mbps
 *
 * Each (GPU, column) cell and each scaling point is an independent
 * simulation; all of them run in parallel through SweepRunner and the
 * tables are assembled in order afterwards.
 */

#include <functional>

#include "bench_util.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/sync/sync_channel.h"
#include "sim/exec/sweep_runner.h"

using namespace gpucc;

int
main(int argc, char **argv)
{
    bench::JsonSink::instance().configure("table2_l1_improved", argc,
                                          argv);
    bench::banner("Table 2: improved L1 channels",
                  "Section 7.1, Table 2");

    const char *paper[][4] = {
        {"33 Kbps", "61 Kbps", "207 Kbps", "2.8 Mbps"},
        {"42 Kbps", "75 Kbps", "285 Kbps", "4.25 Mbps"},
        {"42 Kbps", "75 Kbps", "285 Kbps", "3.7 Mbps"},
    };

    const auto archs = gpu::allArchitectures();

    // One job per (GPU, column) cell, flattened row-major.
    struct Result
    {
        double bandwidthBps = 0.0;
        bool errorFree = false;
    };
    std::vector<std::function<Result()>> jobs;
    for (const auto &arch : archs) {
        jobs.push_back([&arch]() -> Result {
            covert::L1ConstChannel ch(arch);
            auto r = ch.transmit(bench::payload(64));
            return {r.bandwidthBps, r.report.errorFree()};
        });
        jobs.push_back([&arch]() -> Result {
            covert::SyncL1Channel ch(arch);
            auto r = ch.transmit(bench::payload(256));
            return {r.bandwidthBps, r.report.errorFree()};
        });
        jobs.push_back([&arch]() -> Result {
            covert::SyncChannelConfig cfg;
            cfg.dataSetsPerSm = 6;
            covert::SyncL1Channel ch(arch, cfg);
            auto r = ch.transmit(bench::payload(512));
            return {r.bandwidthBps, r.report.errorFree()};
        });
        jobs.push_back([&arch]() -> Result {
            covert::SyncChannelConfig cfg;
            cfg.dataSetsPerSm = 6;
            cfg.allSms = true;
            covert::SyncL1Channel ch(arch, cfg);
            auto r = ch.transmit(bench::payload(2048));
            return {r.bandwidthBps, r.report.errorFree()};
        });
    }
    // Section 7.1's multi-bit scaling sweep on Kepler rides in the same
    // parallel batch: 1 (baseline) + 2/4/6 concurrent bits.
    auto kepler = gpu::keplerK40c();
    jobs.push_back([&kepler]() -> Result {
        covert::SyncL1Channel ch(kepler);
        auto r = ch.transmit(bench::payload(256));
        return {r.bandwidthBps, r.report.errorFree()};
    });
    const unsigned multiBits[] = {2u, 4u, 6u};
    for (unsigned m : multiBits) {
        jobs.push_back([&kepler, m]() -> Result {
            covert::SyncChannelConfig cfg;
            cfg.dataSetsPerSm = m;
            covert::SyncL1Channel ch(kepler, cfg);
            auto r = ch.transmit(bench::payload(512));
            return {r.bandwidthBps, r.report.errorFree()};
        });
    }

    sim::exec::SweepRunner runner;
    auto results =
        runner.runSweep(jobs, [](const std::function<Result()> &job) {
            return job();
        });

    Table t("Improved L1 channel bandwidth (all error-free)");
    t.header({"GPU", "L1 Baseline", "Sync.", "Sync. + multi-bits",
              "Sync., multi-bits + parallel"});
    for (std::size_t i = 0; i < archs.size(); ++i) {
        const Result *row = &results[i * 4];
        GPUCC_ASSERT(row[0].errorFree && row[1].errorFree &&
                         row[2].errorFree && row[3].errorFree,
                     "Table 2 requires error-free channels");
        t.row({archs[i].name,
               bench::vsPaper(row[0].bandwidthBps, paper[i][0]),
               bench::vsPaper(row[1].bandwidthBps, paper[i][1]),
               bench::vsPaper(row[2].bandwidthBps, paper[i][2]),
               bench::vsPaper(row[3].bandwidthBps, paper[i][3])});
    }
    t.print();
    bench::JsonSink::instance().add(t);

    // Section 7.1 also reports the sublinear multi-bit scaling on
    // Kepler: 2/4/6 concurrent bits -> 1.8x / 2.9x / 3.8x.
    const Result *scaling = &results[archs.size() * 4];
    double b1 = scaling[0].bandwidthBps;
    Table s("Kepler: multi-bit scaling (paper: 1.8x / 2.9x / 3.8x)");
    s.header({"concurrent bits", "bandwidth", "speedup over 1 bit"});
    for (std::size_t j = 0; j < 3; ++j) {
        s.row({std::to_string(multiBits[j]),
               fmtKbps(scaling[1 + j].bandwidthBps),
               fmtDouble(scaling[1 + j].bandwidthBps / b1, 2) + "x"});
    }
    s.print();
    bench::JsonSink::instance().add(s);
    bench::JsonSink::instance().write();
    return 0;
}

/**
 * @file
 * Table 2: improved L1 channels. Columns: launch-per-bit baseline,
 * synchronized persistent kernels (Figure 11 protocol), + multi-bit
 * over 6 cache sets, + SM-level parallelism. Paper rows:
 *   Fermi   33 / 61 / 207 Kbps / 2.8 Mbps
 *   Kepler  42 / 75 / 285 Kbps / 4.25 Mbps
 *   Maxwell 42 / 75 / 285 Kbps / 3.7 Mbps
 */

#include "bench_util.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/sync/sync_channel.h"

using namespace gpucc;

int
main()
{
    bench::banner("Table 2: improved L1 channels",
                  "Section 7.1, Table 2");

    const char *paper[][4] = {
        {"33 Kbps", "61 Kbps", "207 Kbps", "2.8 Mbps"},
        {"42 Kbps", "75 Kbps", "285 Kbps", "4.25 Mbps"},
        {"42 Kbps", "75 Kbps", "285 Kbps", "3.7 Mbps"},
    };

    Table t("Improved L1 channel bandwidth (all error-free)");
    t.header({"GPU", "L1 Baseline", "Sync.", "Sync. + multi-bits",
              "Sync., multi-bits + parallel"});
    int i = 0;
    for (const auto &arch : gpu::allArchitectures()) {
        covert::L1ConstChannel baseline(arch);
        auto r0 = baseline.transmit(bench::payload(64));

        covert::SyncL1Channel sync1(arch);
        auto r1 = sync1.transmit(bench::payload(256));

        covert::SyncChannelConfig cfgM;
        cfgM.dataSetsPerSm = 6;
        covert::SyncL1Channel syncM(arch, cfgM);
        auto r2 = syncM.transmit(bench::payload(512));

        covert::SyncChannelConfig cfgAll = cfgM;
        cfgAll.allSms = true;
        covert::SyncL1Channel syncAll(arch, cfgAll);
        auto r3 = syncAll.transmit(bench::payload(2048));

        GPUCC_ASSERT(r0.report.errorFree() && r1.report.errorFree() &&
                         r2.report.errorFree() && r3.report.errorFree(),
                     "Table 2 requires error-free channels");

        t.row({arch.name, bench::vsPaper(r0.bandwidthBps, paper[i][0]),
               bench::vsPaper(r1.bandwidthBps, paper[i][1]),
               bench::vsPaper(r2.bandwidthBps, paper[i][2]),
               bench::vsPaper(r3.bandwidthBps, paper[i][3])});
        ++i;
    }
    t.print();

    // Section 7.1 also reports the sublinear multi-bit scaling on
    // Kepler: 2/4/6 concurrent bits -> 1.8x / 2.9x / 3.8x.
    auto kepler = gpu::keplerK40c();
    covert::SyncL1Channel base(kepler);
    double b1 = base.transmit(bench::payload(256)).bandwidthBps;
    Table s("Kepler: multi-bit scaling (paper: 1.8x / 2.9x / 3.8x)");
    s.header({"concurrent bits", "bandwidth", "speedup over 1 bit"});
    for (unsigned m : {2u, 4u, 6u}) {
        covert::SyncChannelConfig cfg;
        cfg.dataSetsPerSm = m;
        covert::SyncL1Channel ch(kepler, cfg);
        auto r = ch.transmit(bench::payload(512));
        s.row({std::to_string(m), fmtKbps(r.bandwidthBps),
               fmtDouble(r.bandwidthBps / b1, 2) + "x"});
    }
    s.print();
    return 0;
}

/**
 * @file
 * Section 10's negative result, reproduced: the self-contention
 * artifacts behind the Jiang et al. timing side channels (shared-memory
 * bank conflicts, memory coalescing) make a large difference to a
 * kernel's OWN timing but have little measurable effect on a competing
 * kernel — so they cannot carry covert channels.
 */

#include "bench_util.h"
#include "covert/channels/atomic_channel.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"

using namespace gpucc;

namespace
{

std::vector<Addr>
conflictPattern(unsigned degree)
{
    std::vector<Addr> offsets;
    for (unsigned lane = 0; lane < static_cast<unsigned>(warpSize); ++lane)
        offsets.push_back(Addr(lane / degree) * 4 +
                          Addr(lane % degree) * 32 * 4);
    return offsets;
}

/** Observed spy smem latency while the trojan does (or not) a storm. */
double
crossKernelSmemProbe(const gpu::ArchParams &arch, bool storm)
{
    gpu::Device dev(arch);
    gpu::HostContext host(dev);
    host.setJitterUs(0.0);

    gpu::KernelLaunch trojan;
    trojan.name = "smem-storm";
    trojan.config.gridBlocks = arch.numSms;
    trojan.config.threadsPerBlock = 4 * warpSize;
    trojan.config.smemBytesPerBlock = 8 * 1024;
    trojan.body = [storm](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (storm) {
            for (int i = 0; i < 300; ++i)
                co_await ctx.sharedAccess(conflictPattern(32));
        }
        co_return;
    };

    double avg = 0.0;
    gpu::KernelLaunch spy;
    spy.name = "smem-probe";
    spy.config.gridBlocks = arch.numSms;
    spy.config.threadsPerBlock = 32;
    spy.config.smemBytesPerBlock = 8 * 1024;
    spy.body = [&avg](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        std::uint64_t total = 0;
        for (int i = 0; i < 64; ++i)
            total += co_await ctx.sharedAccess(conflictPattern(1));
        avg = static_cast<double>(total) / 64.0;
        co_return;
    };

    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    auto &kt = host.launch(s1, trojan);
    auto &ks = host.launch(s2, spy);
    host.sync(ks);
    host.sync(kt);
    return avg;
}

/** Spy's coalesced global-load latency vs a normal-load trojan storm. */
double
crossKernelLoadProbe(const gpu::ArchParams &arch, bool storm)
{
    gpu::Device dev(arch);
    gpu::HostContext host(dev);
    host.setJitterUs(0.0);
    Addr tBase = dev.allocGlobal(1 << 20, 4096);
    Addr sBase = dev.allocGlobal(1 << 20, 4096);

    gpu::KernelLaunch trojan;
    trojan.name = "load-storm";
    trojan.config.gridBlocks = arch.numSms;
    trojan.config.threadsPerBlock = 4 * warpSize;
    trojan.body = [storm, tBase](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (storm) {
            for (unsigned i = 0; i < 120; ++i) {
                std::vector<Addr> lanes;
                for (unsigned t = 0; t < 32; ++t) {
                    // Deliberately un-coalesced: one segment per lane.
                    lanes.push_back(tBase +
                                    Addr(ctx.globalWarpId()) * 8192 +
                                    Addr(t) * 256 + Addr(i % 32) * 4);
                }
                co_await ctx.globalLoad(lanes);
            }
        }
        co_return;
    };

    double avg = 0.0;
    gpu::KernelLaunch spy;
    spy.name = "load-probe";
    spy.config.gridBlocks = 1;
    spy.config.threadsPerBlock = 32;
    spy.body = [&avg, sBase](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        std::uint64_t total = 0;
        for (unsigned i = 0; i < 48; ++i) {
            std::vector<Addr> lanes;
            for (unsigned t = 0; t < 32; ++t)
                lanes.push_back(sBase + Addr(i) * 128 + Addr(t) * 4);
            total += co_await ctx.globalLoad(lanes);
        }
        avg = static_cast<double>(total) / 48.0;
        co_return;
    };

    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    auto &kt = host.launch(s1, trojan);
    auto &ks = host.launch(s2, spy);
    host.sync(ks);
    host.sync(kt);
    return avg;
}

} // namespace

int
main()
{
    bench::banner("Section 10 negative results: self-contention is not a "
                  "channel",
                  "Section 10 (vs Jiang et al. side channels)");

    auto arch = gpu::keplerK40c();

    // Part 1: the self-contention is real and huge (the side channel's
    // raw material).
    {
        gpu::Device dev(arch);
        gpu::HostContext host(dev);
        std::vector<std::uint64_t> lat;
        gpu::KernelLaunch k;
        k.name = "self";
        k.config.gridBlocks = 1;
        k.config.threadsPerBlock = 32;
        k.config.smemBytesPerBlock = 8 * 1024;
        k.body = [&lat](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
            for (unsigned d : {1u, 2u, 4u, 8u, 16u, 32u})
                lat.push_back(
                    co_await ctx.sharedAccess(conflictPattern(d)));
            co_return;
        };
        auto &s = dev.createStream();
        host.sync(host.launch(s, k));
        Table t("own-kernel shared-memory latency vs bank-conflict degree");
        t.header({"conflict degree", "latency (cycles)"});
        unsigned degrees[] = {1, 2, 4, 8, 16, 32};
        for (std::size_t i = 0; i < lat.size(); ++i)
            t.row({std::to_string(degrees[i]), std::to_string(lat[i])});
        t.print();
    }

    // Part 2: ...but a competing kernel sees (almost) none of it.
    Table x("cross-kernel visibility of self-contention artifacts");
    x.header({"probe", "trojan idle", "trojan storming", "delta",
              "verdict"});
    {
        double quiet = crossKernelSmemProbe(arch, false);
        double storm = crossKernelSmemProbe(arch, true);
        x.row({"smem bank conflicts", fmtDouble(quiet, 1) + " cyc",
               fmtDouble(storm, 1) + " cyc",
               fmtDouble(storm - quiet, 2) + " cyc",
               "no decodable contrast"});
    }
    {
        double quiet = crossKernelLoadProbe(arch, false);
        double storm = crossKernelLoadProbe(arch, true);
        x.row({"global loads (coalescing)", fmtDouble(quiet, 1) + " cyc",
               fmtDouble(storm, 1) + " cyc",
               fmtDouble(storm - quiet, 2) + " cyc",
               storm - quiet < 20.0 ? "no reliable contention"
                                    : "UNEXPECTED"});
    }
    x.print();

    std::printf("Compare: the working channels rely on 6+ cycle symbol "
                "separations (SFU) or 55+ cycle\nseparations (L1). Bank-"
                "conflict replays serialize inside the accessing warp, "
                "and the\nDRAM system is too wide for plain loads to "
                "contend — which is why the paper builds its\nmemory "
                "channel on the atomic units instead (Figure 10).\n");
    return 0;
}

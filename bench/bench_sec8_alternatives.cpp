/**
 * @file
 * Section 8's two sketched alternatives to exclusive co-location,
 * implemented and measured against a duty-cycled cache-set walker
 * co-resident with the channel:
 *
 *  1. error-correcting codes: sacrifice bandwidth, keep the sets;
 *  2. idle-resource discovery: scan for quiet cache sets and relocate
 *     the channel (whitespace-networking style).
 */

#include <memory>

#include "bench_util.h"
#include "covert/agile/idle_discovery.h"
#include "covert/coding/error_code.h"
#include "covert/sync/sync_channel.h"
#include "workloads/interference.h"

using namespace gpucc;
using namespace gpucc::covert;

namespace
{

std::vector<std::shared_ptr<gpu::HostContext>> keepAlive;

/** Channel config with the set walker injected mid-transmission. */
SyncChannelConfig
interferedConfig(std::uint64_t seed, unsigned firstDataSet,
                 Cycle idlePerBurst)
{
    SyncChannelConfig cfg;
    cfg.seed = seed;
    cfg.firstDataSet = firstDataSet;
    cfg.afterLaunch = [idlePerBurst](TwoPartyHarness &h) {
        auto &dev = h.device();
        auto host = std::make_shared<gpu::HostContext>(dev, 999);
        host->advanceUs(25.0);
        workloads::WorkloadSpec spec;
        spec.blocks = dev.numSms();
        spec.iterations = 4000;
        host->launch(dev.createStream(),
                     workloads::makeSetTargetedConstWorkload(
                         dev, spec, 0, 2, idlePerBurst));
        keepAlive.push_back(host);
    };
    return cfg;
}

} // namespace

int
main()
{
    bench::banner("Section 8 alternatives: error coding & idle-set agility",
                  "Section 8 (sketched in the paper, implemented here)");

    auto arch = gpu::keplerK40c();
    auto msg = bench::payload(160);

    Table t("synchronized L1 channel vs a set walker hammering sets 0-1");
    t.header({"strategy", "payload bandwidth", "bit error rate"});

    {
        SyncL1Channel ch(arch, interferedConfig(1, 0, 80000));
        auto r = ch.transmit(msg);
        t.row({"raw channel on hammered set", fmtKbps(r.bandwidthBps),
               fmtDouble(100.0 * r.report.errorRate(), 2) + " %"});
    }
    {
        SyncL1Channel ch(arch, interferedConfig(2, 0, 80000));
        Hamming74Code code;
        auto r = transmitCoded(ch, code, msg);
        t.row({"+ Hamming(7,4)", fmtKbps(r.bandwidthBps),
               fmtDouble(100.0 * r.report.errorRate(), 2) + " %"});
    }
    {
        SyncL1Channel ch(arch, interferedConfig(3, 0, 80000));
        InterleavedRepetitionCode code(5);
        auto r = transmitCoded(ch, code, msg);
        t.row({"+ interleaved repetition x5", fmtKbps(r.bandwidthBps),
               fmtDouble(100.0 * r.report.errorRate(), 2) + " %"});
    }
    {
        // Idle-set discovery: scan first (under the same walker), then
        // relocate the data set to the quiet window.
        gpu::Device scanDev(arch);
        gpu::HostContext walkerHost(scanDev, 5);
        workloads::WorkloadSpec spec;
        spec.blocks = scanDev.numSms();
        spec.iterations = 2000;
        walkerHost.launch(scanDev.createStream(),
                          workloads::makeSetTargetedConstWorkload(
                              scanDev, spec, 0, 2, 2000));
        gpu::HostContext scanner(scanDev, 6);
        scanner.advanceUs(20.0);
        auto activity = probeSetActivity(scanDev, scanner);
        unsigned quiet = pickQuietDataSet(activity, 1);
        scanDev.runUntilIdle();

        SyncL1Channel ch(arch, interferedConfig(4, quiet, 80000));
        auto r = ch.transmit(msg);
        t.row({strfmt("agile: relocate data to quiet set %u", quiet),
               fmtKbps(r.bandwidthBps),
               fmtDouble(100.0 * r.report.errorRate(), 2) + " %"});
    }
    t.print();

    std::printf("Scan output (miss fraction per L1 set, walker on 0-1): ");
    {
        gpu::Device dev(arch);
        gpu::HostContext walkerHost(dev, 5);
        workloads::WorkloadSpec spec;
        spec.blocks = dev.numSms();
        spec.iterations = 2000;
        walkerHost.launch(dev.createStream(),
                          workloads::makeSetTargetedConstWorkload(
                              dev, spec, 0, 2, 2000));
        gpu::HostContext scanner(dev, 6);
        scanner.advanceUs(20.0);
        for (const auto &a : probeSetActivity(dev, scanner))
            std::printf("%u:%.2f ", a.set, a.missFraction);
        std::printf("\n");
        dev.runUntilIdle();
    }
    std::printf("Coding trades bandwidth for reliability without locking "
                "tenants out; set agility\nrestores the full rate when "
                "quiet resources exist — both as sketched in Section 8.\n");
    return 0;
}

/**
 * @file
 * Figure 10: global-memory atomic covert-channel bandwidth for the
 * three access scenarios on the three GPUs. Iterations are auto-tuned
 * to the minimum that separates the symbols, following the paper's
 * methodology. Expected shape: Kepler/Maxwell far above Fermi
 * (L2-resident atomic units), and the un-coalesced scenario 3 strictly
 * slowest.
 */

#include "bench_util.h"
#include "covert/channels/atomic_channel.h"

using namespace gpucc;
using covert::AtomicChannel;
using covert::AtomicScenario;

int
main()
{
    bench::banner("Figure 10: global atomic covert channel bandwidth",
                  "Section 6, Figure 10");

    auto msg = bench::payload(64);
    const AtomicScenario scens[] = {AtomicScenario::FixedPerThread,
                                    AtomicScenario::StridedCoalesced,
                                    AtomicScenario::ConsecutiveUncoalesced};

    Table t("Error-free atomic channel bandwidth (auto-tuned iterations)");
    t.header({"GPU", "Scenario 1 (fixed)", "Scenario 2 (strided)",
              "Scenario 3 (un-coalesced)"});
    for (const auto &arch : gpu::allArchitectures()) {
        std::vector<std::string> row{arch.name};
        for (auto s : scens) {
            AtomicChannel ch(arch, s);
            unsigned iters = ch.autoTuneIterations();
            auto r = ch.transmit(msg);
            row.push_back(strfmt("%s (n=%u, err=%.1f%%)",
                                 fmtKbps(r.bandwidthBps).c_str(), iters,
                                 100.0 * r.report.errorRate()));
        }
        t.row(row);
    }
    t.print();
    std::printf("Paper shape: Kepler/Maxwell >> Fermi (9x atomic "
                "throughput at the L2); scenario 3 lowest\n(poor "
                "coalescing defeats the fast L2 atomic path).\n");
    return 0;
}

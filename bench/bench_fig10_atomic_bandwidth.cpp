/**
 * @file
 * Figure 10: global-memory atomic covert-channel bandwidth for the
 * three access scenarios on the three GPUs. Iterations are auto-tuned
 * to the minimum that separates the symbols, following the paper's
 * methodology. Expected shape: Kepler/Maxwell far above Fermi
 * (L2-resident atomic units), and the un-coalesced scenario 3 strictly
 * slowest.
 *
 * The 3x3 (GPU x scenario) grid runs as independent parallel
 * simulations through SweepRunner via verify::measureAtomic (shared
 * with the conformance suite); the table is assembled in grid order
 * afterwards.
 */

#include "bench_util.h"
#include "sim/exec/sweep_runner.h"

using namespace gpucc;
using covert::AtomicScenario;

int
main()
{
    bench::banner("Figure 10: global atomic covert channel bandwidth",
                  "Section 6, Figure 10");

    const AtomicScenario scens[] = {AtomicScenario::FixedPerThread,
                                    AtomicScenario::StridedCoalesced,
                                    AtomicScenario::ConsecutiveUncoalesced};
    const auto archs = gpu::allArchitectures();

    struct Cell
    {
        std::size_t arch;
        AtomicScenario scenario;
    };
    std::vector<Cell> grid;
    for (std::size_t a = 0; a < archs.size(); ++a) {
        for (auto s : scens)
            grid.push_back({a, s});
    }

    sim::exec::SweepRunner runner;
    auto cells = runner.runSweep(grid, [&](const Cell &c) {
        verify::AtomicMeasurement m =
            verify::measureAtomic(archs[c.arch], c.scenario, 64);
        return strfmt("%s (n=%u, err=%.1f%%)",
                      fmtKbps(m.channel.bps).c_str(), m.iterations,
                      100.0 * m.channel.errorRate);
    });

    Table t("Error-free atomic channel bandwidth (auto-tuned iterations)");
    t.header({"GPU", "Scenario 1 (fixed)", "Scenario 2 (strided)",
              "Scenario 3 (un-coalesced)"});
    for (std::size_t a = 0; a < archs.size(); ++a) {
        t.row({archs[a].name, cells[a * 3 + 0], cells[a * 3 + 1],
               cells[a * 3 + 2]});
    }
    t.print();
    std::printf("Paper shape: Kepler/Maxwell >> Fermi (9x atomic "
                "throughput at the L2); scenario 3 lowest\n(poor "
                "coalescing defeats the fast L2 atomic path).\n");
    return 0;
}

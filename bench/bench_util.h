/**
 * @file
 * Shared helpers for the reproduction bench binaries. Each binary
 * regenerates one table or figure from the paper and prints the
 * measured rows next to the paper's reported values where the paper
 * states them.
 */

#ifndef GPUCC_BENCH_BENCH_UTIL_H
#define GPUCC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/bitstream.h"
#include "common/log.h"
#include "common/metrics/json_writer.h"
#include "common/table.h"
#include "gpu/arch_params.h"
#include "verify/scenarios.h"

namespace gpucc::bench
{

/**
 * Machine-readable bench output behind the shared `--json <path>` flag.
 * Benches add() every Table they print (and optional scalar values);
 * write() serializes them with the same JsonWriter the simulator's
 * trace and metrics exports use, so one schema covers every artifact:
 * {"bench": name, "tables": [{"title", "header", "rows"}], "values": {}}.
 */
class JsonSink
{
  public:
    /** Process-wide sink, so table-building helpers can reach it. */
    static JsonSink &
    instance()
    {
        static JsonSink sink;
        return sink;
    }

    /** Parse `--json <path>` from the command line (fatal if the flag
     *  is present without a path). */
    void
    configure(std::string benchName, int argc, char **argv)
    {
        name = std::move(benchName);
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--json") == 0) {
                GPUCC_ASSERT(i + 1 < argc, "--json requires a path");
                path = argv[i + 1];
            }
        }
    }

    bool enabled() const { return !path.empty(); }

    /** Record a printed table for export (no-op when disabled). */
    void
    add(const Table &t)
    {
        if (enabled())
            tables.push_back(t);
    }

    /** Record a named scalar result (no-op when disabled). */
    void
    note(const std::string &key, double v)
    {
        if (enabled())
            values.emplace_back(key, v);
    }

    /** Write the collected results to the --json path, if given. */
    void
    write() const
    {
        if (!enabled())
            return;
        std::ofstream os(path);
        GPUCC_ASSERT(os.good(), "cannot open --json path '%s'",
                     path.c_str());
        metrics::JsonWriter w(os, true);
        w.beginObject();
        w.field("bench", name);
        w.beginArray("tables");
        for (const Table &t : tables) {
            w.beginObject();
            w.field("title", t.caption());
            w.beginArray("header");
            for (const auto &c : t.headerCells())
                w.value(c);
            w.endArray();
            w.beginArray("rows");
            for (const auto &row : t.dataRows()) {
                w.beginArray();
                for (const auto &c : row)
                    w.value(c);
                w.endArray();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.beginObject("values");
        for (const auto &[k, v] : values)
            w.field(k, v);
        w.endObject();
        w.endObject();
        GPUCC_ASSERT(os.good(), "write to --json path '%s' failed",
                     path.c_str());
        std::printf("[json] results written to %s\n", path.c_str());
    }

  private:
    std::string name;
    std::string path;
    std::vector<Table> tables;
    std::vector<std::pair<std::string, double>> values;
};

/** Standard bench banner. */
inline void
banner(const char *what, const char *paperRef)
{
    std::printf("\n================================================================\n");
    std::printf("Reproducing %s\n", what);
    std::printf("Paper reference: %s\n", paperRef);
    std::printf("================================================================\n");
    setVerbose(false);
}

/** Random payload used by the channel benches (the conformance
 *  scenarios share the same stream, so bench and band measurements
 *  stay comparable). */
inline BitVec
payload(std::size_t bits, std::uint64_t seed = 2017)
{
    return verify::scenarioPayload(bits, seed);
}

/** Render "measured (paper: X)" cells. */
inline std::string
vsPaper(double measuredBps, const char *paperValue)
{
    return fmtKbps(measuredBps) + "  (paper: " + paperValue + ")";
}

/** A crude ASCII sparkline for latency series. */
inline std::string
sparkline(const std::vector<double> &values)
{
    static const char *glyphs[] = {"_", ".", "-", "=", "+", "*", "#"};
    double lo = values.front(), hi = values.front();
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::string out;
    for (double v : values) {
        double f = hi > lo ? (v - lo) / (hi - lo) : 0.0;
        out += glyphs[static_cast<int>(f * 6.0 + 0.5)];
    }
    return out;
}

} // namespace gpucc::bench

#endif // GPUCC_BENCH_BENCH_UTIL_H

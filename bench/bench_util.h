/**
 * @file
 * Shared helpers for the reproduction bench binaries. Each binary
 * regenerates one table or figure from the paper and prints the
 * measured rows next to the paper's reported values where the paper
 * states them.
 */

#ifndef GPUCC_BENCH_BENCH_UTIL_H
#define GPUCC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "common/bitstream.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/table.h"
#include "gpu/arch_params.h"

namespace gpucc::bench
{

/** Standard bench banner. */
inline void
banner(const char *what, const char *paperRef)
{
    std::printf("\n================================================================\n");
    std::printf("Reproducing %s\n", what);
    std::printf("Paper reference: %s\n", paperRef);
    std::printf("================================================================\n");
    setVerbose(false);
}

/** Random payload used by the channel benches. */
inline BitVec
payload(std::size_t bits, std::uint64_t seed = 2017)
{
    Rng rng(seed);
    return randomBits(bits, rng);
}

/** Render "measured (paper: X)" cells. */
inline std::string
vsPaper(double measuredBps, const char *paperValue)
{
    return fmtKbps(measuredBps) + "  (paper: " + paperValue + ")";
}

/** A crude ASCII sparkline for latency series. */
inline std::string
sparkline(const std::vector<double> &values)
{
    static const char *glyphs[] = {"_", ".", "-", "=", "+", "*", "#"};
    double lo = values.front(), hi = values.front();
    for (double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::string out;
    for (double v : values) {
        double f = hi > lo ? (v - lo) / (hi - lo) : 0.0;
        out += glyphs[static_cast<int>(f * 6.0 + 0.5)];
    }
    return out;
}

} // namespace gpucc::bench

#endif // GPUCC_BENCH_BENCH_UTIL_H

/**
 * @file
 * Figure 7: latency of one double-precision Add/Mul versus warp count
 * on Fermi and Kepler (the Quadro M4000 has no DP units, exactly as in
 * the paper).
 */

#include "bench_util.h"
#include "covert/characterize/fu_characterizer.h"

using namespace gpucc;

int
main()
{
    bench::banner("Figure 7: double-precision op latency vs warp count",
                  "Section 5.1, Figure 7");

    for (const auto &arch : {gpu::fermiC2075(), gpu::keplerK40c()}) {
        covert::FuCharacterizer fc(arch);
        auto addCurve = fc.curve(gpu::OpClass::DAdd, 32);
        auto mulCurve = fc.curve(gpu::OpClass::DMul, 32);
        Table t(strfmt("%s: warp-0 latency (cycles)", arch.name.c_str()));
        t.header({"warps", "Add (double)", "Mul (double)"});
        for (unsigned w = 1; w <= 32; ++w) {
            if (w > 4 && w % 2 != 0)
                continue;
            t.row({std::to_string(w),
                   fmtDouble(addCurve[w - 1].warp0AvgCycles, 1),
                   fmtDouble(mulCurve[w - 1].warp0AvgCycles, 1)});
        }
        t.print();
        std::vector<double> v;
        for (const auto &p : addCurve)
            v.push_back(p.warp0AvgCycles);
        std::printf("Add(double): %s\n", bench::sparkline(v).c_str());
    }
    std::printf("\nQuadro M4000 (Maxwell): no double-precision units — "
                "DP ops are rejected by the model,\nmatching the paper "
                "(\"Maxwell GPU does not have double precision units\").\n");
    std::printf("Paper anchors: Fermi ~20 -> ~64-70 cycles; Kepler ~8 -> "
                "~19-20 cycles at 32 warps.\n");
    return 0;
}

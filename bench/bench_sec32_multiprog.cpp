/**
 * @file
 * Section 3.2: how the attack carries over to multiprogramming schemes
 * proposed in the literature. Each policy is evaluated on (a) whether
 * trojan/spy co-location on one SM is achievable, (b) the L1 channel,
 * and (c) the fallback L2 channel. Kepler K40C.
 */

#include <set>

#include "bench_util.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/channels/l2_const_channel.h"
#include "gpu/block_scheduler.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"

using namespace gpucc;
using gpu::MultiprogPolicy;

namespace
{

/** Do two one-block-per-SM kernels co-reside under @p policy? */
bool
coLocates(MultiprogPolicy policy)
{
    auto arch = gpu::keplerK40c();
    gpu::Device dev(arch);
    dev.blockScheduler().setPolicy(policy);
    gpu::HostContext host(dev);
    host.setJitterUs(0.0);
    auto mk = [](const char *name) {
        gpu::KernelLaunch k;
        k.name = name;
        k.config.gridBlocks = 15;
        k.config.threadsPerBlock = 128;
        k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
            for (int i = 0; i < 800; ++i)
                co_await ctx.op(gpu::OpClass::FAdd);
            co_return;
        };
        return k;
    };
    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    auto &k1 = host.launch(s1, mk("t"));
    auto &k2 = host.launch(s2, mk("s"));
    host.sync(k1);
    host.sync(k2);
    for (const auto &a : k1.blockRecords()) {
        for (const auto &b : k2.blockRecords()) {
            if (a.smId == b.smId && b.startTick < a.endTick &&
                a.startTick < b.endTick) {
                return true;
            }
        }
    }
    return false;
}

std::string
channelCell(double ber, double bw)
{
    if (ber > 0.02)
        return strfmt("DEAD (BER %.0f%%)", 100.0 * ber);
    return fmtKbps(bw);
}

} // namespace

int
main()
{
    bench::banner("Section 3.2: proposed multiprogramming schemes",
                  "Section 3.2 (SMK, Warped-Slicer, inter-SM partitioning)");

    auto arch = gpu::keplerK40c();
    auto msg = bench::payload(64);

    Table t("attack viability per block-scheduling policy (Tesla K40C)");
    t.header({"policy", "intra-SM co-location", "L1 channel",
              "L2 channel"});
    for (auto policy :
         {MultiprogPolicy::Leftover, MultiprogPolicy::SmkPreemptive,
          MultiprogPolicy::IntraSmPartition,
          MultiprogPolicy::InterSmPartition}) {
        covert::L1ConstChannel l1(arch);
        l1.harness().device().blockScheduler().setPolicy(policy);
        auto r1 = l1.transmit(msg);

        covert::L2ConstChannel l2(arch);
        l2.harness().device().blockScheduler().setPolicy(policy);
        auto r2 = l2.transmit(msg);

        t.row({gpu::multiprogPolicyName(policy),
               coLocates(policy) ? "yes" : "no",
               channelCell(r1.report.errorRate(), r1.bandwidthBps),
               channelCell(r2.report.errorRate(), r2.bandwidthBps)});
    }
    t.print();
    std::printf(
        "As the paper argues: preemptive SMK and intra-SM partitioning "
        "keep (or ease) intra-SM\nco-location, so the L1 channel "
        "survives; inter-SM partitioning kills the L1 channel but\nthe "
        "device-wide L2 channel still communicates.\n");
    return 0;
}

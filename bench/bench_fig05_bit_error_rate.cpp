/**
 * @file
 * Figure 5: bit error rate vs bandwidth as the per-bit iteration count
 * shrinks. Fewer iterations raise the raw bandwidth but shrink the
 * contention window relative to the launch skew between the two
 * unsynchronized applications, so overlap (and ordering) starts to
 * fail and errors appear.
 *
 * The sweep runs at reduced launch-timing margins (1 us lead, 2.5 us
 * jitter): with the full 5 us engineering lead the channel decodes
 * correctly even without overlap because cache evictions are durable.
 *
 * The per-point measurement is verify::measureL1LaunchPerBit /
 * measureL2LaunchPerBit (shared with the conformance suite). Every
 * sweep point is an independent simulation (its own Device and hosts),
 * so the points run in parallel through SweepRunner; rows are printed
 * in sweep order afterwards and are identical for any GPUCC_THREADS
 * value.
 */

#include "bench_util.h"
#include "sim/exec/sweep_runner.h"

using namespace gpucc;

namespace
{

/** The Figure 5 operating point at @p iters contention iterations. */
covert::LaunchPerBitConfig
fig5Config(unsigned iters)
{
    covert::LaunchPerBitConfig cfg;
    cfg.iterations = iters;
    cfg.trojanLeadUs = 1.0;
    cfg.jitterUs = 2.5;
    return cfg;
}

void
sweep(sim::exec::SweepRunner &runner, const gpu::ArchParams &arch,
      bool l2, const char *name, const std::vector<unsigned> &iters)
{
    auto rows = runner.runSweep(iters, [&](unsigned it) {
        verify::ChannelMeasurement m =
            l2 ? verify::measureL2LaunchPerBit(arch, 96, fig5Config(it))
               : verify::measureL1LaunchPerBit(arch, 96, fig5Config(it));
        return std::vector<std::string>{
            std::to_string(it), fmtKbps(m.bps),
            fmtDouble(100.0 * m.errorRate, 2) + " %"};
    });

    Table t(strfmt("%s: %s channel", arch.name.c_str(), name));
    t.header({"iterations", "bandwidth", "bit error rate"});
    for (auto &row : rows)
        t.row(row);
    t.print();
    bench::JsonSink::instance().add(t);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonSink::instance().configure("fig05_bit_error_rate", argc,
                                          argv);
    bench::banner("Figure 5: bit error rate vs channel bandwidth",
                  "Section 4.3, Figure 5 (Kepler and Maxwell)");

    sim::exec::SweepRunner runner;
    for (const auto &arch : {gpu::keplerK40c(), gpu::maxwellM4000()}) {
        sweep(runner, arch, false, "L1", {20, 16, 12, 10, 8, 6, 4});
        sweep(runner, arch, true, "L2", {2, 1});
    }
    std::printf("Paper shape: error-free at the Figure 4 operating point "
                "(20 / 2 iterations),\nBER rising as the iteration count "
                "is decreased to push bandwidth higher.\n");
    bench::JsonSink::instance().write();
    return 0;
}

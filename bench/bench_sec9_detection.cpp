/**
 * @file
 * Section 9's detection-based defense, implemented: a CC-Hunter-style
 * analyzer over the constant caches' eviction streams. Channels leave a
 * near-perfectly oscillating cross-application conflict train on the
 * communication set; benign mixes do not.
 */

#include "bench_util.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/channels/l2_const_channel.h"
#include "covert/detection/cc_detector.h"
#include "covert/sync/sync_channel.h"
#include "gpu/host.h"
#include "workloads/interference.h"

using namespace gpucc;
using namespace gpucc::covert;

namespace
{

std::string
verdict(const DetectionResult &r)
{
    if (!r.covertChannelSuspected)
        return "benign";
    return strfmt("CHANNEL on set %u (osc %.2f, %u evictions)",
                  r.topSet.set, r.topSet.oscillationFraction,
                  r.topSet.crossAppEvictions);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonSink::instance().configure("sec9_detection", argc, argv);
    bench::banner("Section 9: contention-anomaly detection",
                  "Section 9 ('detect anomalous contention', CC-Hunter)");

    auto arch = gpu::keplerK40c();
    auto msg = bench::payload(64);

    Table t("eviction-train analysis per workload (Tesla K40C)");
    t.header({"workload", "cross-app evictions", "top oscillation",
              "verdict"});

    auto summarize = [&](const char *name,
                         const std::vector<mem::EvictionEvent> &trace) {
        auto r = analyzeEvictionTrace(trace);
        unsigned cross = 0;
        for (const auto &s : r.scores)
            cross += s.crossAppEvictions;
        t.row({name, std::to_string(cross),
               r.scores.empty()
                   ? "-"
                   : fmtDouble(r.scores.front().oscillationFraction, 2),
               verdict(r)});
    };

    {
        L1ConstChannel ch(arch);
        ch.harness().device().constMem().setEvictionTracing(true);
        ch.transmit(msg);
        summarize("L1 launch-per-bit channel",
                  ch.harness().device().constMem().evictionTrace());
    }
    {
        SyncL1Channel ch(arch);
        ch.harness().device().constMem().setEvictionTracing(true);
        ch.transmit(bench::payload(128));
        summarize("L1 synchronized channel",
                  ch.harness().device().constMem().evictionTrace());
    }
    {
        L2ConstChannel ch(arch);
        ch.harness().device().constMem().setEvictionTracing(true);
        ch.transmit(msg);
        summarize("L2 channel (inter-SM)",
                  ch.harness().device().constMem().evictionTrace());
    }
    {
        gpu::Device dev(arch);
        dev.constMem().setEvictionTracing(true);
        gpu::HostContext host(dev);
        workloads::WorkloadSpec spec;
        spec.blocks = 8;
        spec.threadsPerBlock = 128;
        spec.iterations = 1500;
        for (auto &k : workloads::makeRodiniaLikeMix(dev, spec))
            host.launch(dev.createStream(), std::move(k));
        host.syncAll();
        summarize("Rodinia-like mix (benign)",
                  dev.constMem().evictionTrace());
    }
    {
        // Two benign constant-memory users sharing the device.
        gpu::Device dev(arch);
        dev.constMem().setEvictionTracing(true);
        gpu::HostContext a(dev, 1), b(dev, 2);
        workloads::WorkloadSpec spec;
        spec.blocks = 8;
        spec.threadsPerBlock = 128;
        spec.iterations = 800;
        a.launch(dev.createStream(),
                 workloads::makeConstantMemoryWorkload(dev, spec));
        b.launch(dev.createStream(),
                 workloads::makeConstantMemoryWorkload(dev, spec));
        a.syncAll();
        summarize("two benign constant-memory apps",
                  dev.constMem().evictionTrace());
    }
    t.print();
    bench::JsonSink::instance().add(t);

    // Detection latency: how many bits leak before the verdict trips?
    {
        unsigned bitsBeforeDetection = 0;
        for (unsigned bits = 2; bits <= 64; bits += 2) {
            L1ConstChannel ch(arch);
            ch.harness().device().constMem().setEvictionTracing(true);
            ch.transmit(bench::payload(bits));
            auto r = analyzeEvictionTrace(
                ch.harness().device().constMem().evictionTrace());
            if (r.covertChannelSuspected) {
                bitsBeforeDetection = bits;
                break;
            }
        }
        std::printf("detection latency: the L1 channel is flagged within "
                    "~%u transmitted bits\n(including the calibration "
                    "preamble).\n",
                    bitsBeforeDetection);
        bench::JsonSink::instance().note("detection_latency_bits",
                                         bitsBeforeDetection);
    }
    bench::JsonSink::instance().write();
    return 0;
}

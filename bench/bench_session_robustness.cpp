/**
 * @file
 * Session-layer robustness: self-calibrating, self-healing transfers
 * under every fault-plan preset.
 *
 * The ARQ bench (bench_sec8_arq_link) shows the link layer turning a
 * lossy channel into an error-free one. This bench climbs one layer:
 * ChannelSession starts from *measured* thresholds (online calibration
 * instead of the ProtocolTiming literals), watches decode margins for
 * drift, detects desynchronization with epoch-numbered pilots, and
 * survives mid-transfer kernel evictions by resuming from the last
 * acknowledged frame. For each preset — including the new "eviction"
 * plan, which the lower layers alone cannot ride out — it reports
 * residual BER, goodput, and the healing actions the session took.
 *
 * The per-plan measurement is verify::measureSessionOverPlan, shared
 * with the conformance scenario (session_robustness) and the seed-sweep
 * soak test, so bench, band, and soak numbers stay comparable.
 */

#include "bench_util.h"
#include "sim/fault/fault_plan.h"

using namespace gpucc;
using sim::fault::FaultPlan;

namespace
{

constexpr std::uint64_t faultSeed = 11;

std::string
fmtHealing(const verify::SessionMeasurement &m)
{
    return std::to_string(m.recalibrations) + " recal / " +
           std::to_string(m.resyncs) + " resync / " +
           std::to_string(m.degradeSteps) + " down";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("session-layer robustness under fault injection",
                  "Section 8 (session-layer extension: calibration, "
                  "desync recovery, eviction survival)");
    auto &json = bench::JsonSink::instance();
    json.configure("session_robustness", argc, argv);

    const auto kepler = gpu::keplerK40c();
    const BitVec payload = bench::payload(128);

    Table t("Calibrated session, 128-bit payload: delivery per fault "
            "plan (Kepler K40c)");
    t.header({"fault plan", "residual BER", "goodput", "evictions",
              "healing (recal/resync/down)", "complete"});
    for (const auto &plan : FaultPlan::presetNames()) {
        verify::SessionMeasurement m = verify::measureSessionOverPlan(
            kepler, plan, faultSeed, payload);
        t.row({plan, fmtDouble(100.0 * m.residualBer, 2) + " %",
               fmtKbps(m.goodputBps), std::to_string(m.evictions),
               fmtHealing(m), m.complete ? "yes" : "NO"});
        json.note(plan + ".residual_ber", m.residualBer);
        json.note(plan + ".goodput_bps", m.goodputBps);
        json.note(plan + ".complete", m.complete ? 1.0 : 0.0);
        json.note(plan + ".evictions", m.evictions);
    }
    t.print();
    json.add(t);

    std::printf(
        "Every plan delivers with zero residual errors: calibration "
        "replaces the hand-tuned\nthresholds with measured hit/miss "
        "populations, EWMA drift tracking recalibrates when\ndecode "
        "margins erode, and the degradation ladder trades goodput for "
        "correctness under\npersistent frame errors. The eviction plan "
        "restarts whole kernels mid-transfer; the\nsession resumes from "
        "the receiver's acked in-order prefix and audits each committed"
        "\nsegment with an end-to-end CRC-16 before accepting it. "
        "Replay any cell: same\n(plan, seed) => identical run (seed %u "
        "here).\n",
        static_cast<unsigned>(faultSeed));
    json.write();
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: event
 * throughput, cache access rate, and end-to-end channel simulation
 * speed. These quantify the cost of the timing model, not the paper's
 * results.
 *
 * Besides the normal console report, the binary maintains
 * BENCH_simperf.json at the repository root (override the path with
 * GPUCC_SIMPERF_JSON). The file keeps a committed "baseline" section —
 * recorded before the event-queue hot-path rework — verbatim across
 * runs, writes the fresh numbers under "current", and records the
 * items/s speedup of current over baseline per benchmark. scripts/
 * check.sh diffs a fresh run against the committed file to catch
 * simulator performance regressions.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/sync/sync_channel.h"
#include "covert/synth/synthesizer.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"
#include "mem/set_assoc_cache.h"
#include "sim/event_queue.h"
#include "sim/resource_pool.h"

using namespace gpucc;

namespace
{

void
BM_EventQueueThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < 10000; ++i)
            q.schedule(Tick(i), [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void
BM_ResourcePoolAcquire(benchmark::State &state)
{
    sim::ResourcePool pool("bench", 4);
    Tick t = 0;
    for (auto _ : state) {
        auto r = pool.acquire(t, 100);
        benchmark::DoNotOptimize(r);
        t += 50;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourcePoolAcquire);

// Hit path: walk a cache-sized working set at line stride so every set
// and way is exercised (32 KiB / 256 B lines / 8 ways = 16 sets, 128
// resident lines). After the first lap everything hits; the benchmark
// measures tag compare + LRU update. (The original version strode by
// +4096, which with 256 B lines and 16 sets always mapped to set 0.)
void
BM_CacheAccess(benchmark::State &state)
{
    mem::SetAssocCache cache("bench", {32768, 256, 8});
    constexpr Addr workingSet = 32768;
    Addr a = 0;
    for (Addr w = 0; w < workingSet; w += 256)
        cache.access(w); // warm: fill all 16 sets x 8 ways
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a));
        a = (a + 256) % workingSet;
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("steady-state hits across all 16 sets");
}
BENCHMARK(BM_CacheAccess);

// Miss path: a working set twice the cache size maps 16 lines onto each
// 8-way set, so LRU thrashes and every access misses (fill + eviction).
void
BM_CacheAccessMiss(benchmark::State &state)
{
    mem::SetAssocCache cache("bench", {32768, 256, 8});
    constexpr Addr workingSet = 2 * 32768;
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a));
        a = (a + 256) % workingSet;
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("100% miss, LRU eviction each access");
}
BENCHMARK(BM_CacheAccessMiss);

void
BM_KernelRoundTrip(benchmark::State &state)
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    for (auto _ : state) {
        gpu::Device dev(arch);
        gpu::HostContext host(dev);
        gpu::KernelLaunch k;
        k.name = "bench";
        k.config.gridBlocks = 15;
        k.config.threadsPerBlock = 128;
        k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
            for (int i = 0; i < 32; ++i)
                co_await ctx.op(gpu::OpClass::Sinf);
            co_return;
        };
        auto &s = dev.createStream();
        host.sync(host.launch(s, k));
    }
    state.SetItemsProcessed(state.iterations() * 15 * 4 * 32);
    state.SetLabel("simulated warp-instructions per iteration: 1920");
}
BENCHMARK(BM_KernelRoundTrip);

void
BM_L1ChannelBitSimulation(benchmark::State &state)
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    for (auto _ : state) {
        covert::L1ConstChannel ch(arch);
        auto r = ch.transmit(alternatingBits(8));
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * 8);
    state.SetLabel("bits simulated per iteration: 8 (+8 calibration)");
}
BENCHMARK(BM_L1ChannelBitSimulation);

void
BM_SyncChannelThroughput(benchmark::State &state)
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    for (auto _ : state) {
        covert::SyncL1Channel ch(arch);
        auto r = ch.transmit(alternatingBits(64));
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SyncChannelThroughput);

// Device::fork alone: rebuild a full device (15 SMs, caches, pools,
// CoW word store) from an immutable snapshot. This is the per-cell
// fixed cost of the snapshot-based sweep path.
void
BM_SnapshotFork(benchmark::State &state)
{
    setVerbose(false);
    gpu::Device dev(gpu::keplerK40c());
    {
        gpu::HostContext host(dev);
        gpu::KernelLaunch k;
        k.name = "warm";
        k.config.gridBlocks = 15;
        k.config.threadsPerBlock = 128;
        k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
            for (int i = 0; i < 8; ++i)
                co_await ctx.op(gpu::OpClass::FAdd);
            co_return;
        };
        auto &s = dev.createStream();
        host.sync(host.launch(s, k));
        dev.runUntilIdle();
    }
    auto snap = dev.snapshot();
    for (auto _ : state) {
        auto fork = gpu::Device::fork(snap);
        benchmark::DoNotOptimize(fork);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel("one warmed Kepler device forked per iteration");
}
BENCHMARK(BM_SnapshotFork);

// One sweep cell on the snapshot path: fork a calibrated L1 channel
// from a shared checkpoint and transmit the 8-bit payload. Cells skip
// device boot, channel setup and the 8-bit calibration preamble that
// BM_L1ChannelBitSimulation re-runs every iteration, so items/s here
// against that benchmark's baseline is the end-to-end sweep speedup.
void
BM_SweepCellFromSnapshot(benchmark::State &state)
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    covert::LaunchPerBitConfig cfg;
    covert::L1ConstChannel proto(arch, cfg);
    proto.calibrate();
    auto ck = proto.checkpoint();
    for (auto _ : state) {
        covert::L1ConstChannel ch(arch, cfg);
        ch.restore(ck);
        auto r = ch.transmit(alternatingBits(8));
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * 8);
    state.SetLabel("bits simulated per iteration: 8 (calibration forked,"
                   " not re-run)");
}
BENCHMARK(BM_SweepCellFromSnapshot);

// Full blind attack synthesis: geometry discovery, threshold
// derivation, eviction-set reduction, SFU/atomic contention sweeps and
// substrate ranking, booting one fresh device per measurement (~79 on
// Kepler). This is the heaviest many-device workload in the tree and
// tracks the cost of the device boot + short-kernel path end to end.
void
BM_BlindSynthesis(benchmark::State &state)
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    unsigned devices = 0;
    for (auto _ : state) {
        covert::synth::AttackerLab lab(arch);
        covert::synth::SynthesizedPlan plan =
            covert::synth::synthesize(lab);
        devices = plan.devicesUsed;
        benchmark::DoNotOptimize(plan);
    }
    state.SetItemsProcessed(state.iterations() * devices);
    state.SetLabel("measurement devices booted+probed per iteration: " +
                   std::to_string(devices));
}
BENCHMARK(BM_BlindSynthesis);

// Warp coroutine frame churn: many short-lived kernels allocate and
// retire 60 warp frames each, exercising the frame arena's reuse path
// (block start -> frames live -> block retire -> slabs recycled).
void
BM_WarpFrameChurn(benchmark::State &state)
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    gpu::Device dev(arch);
    gpu::HostContext host(dev);
    auto &s = dev.createStream();
    gpu::KernelLaunch k;
    k.name = "churn";
    k.config.gridBlocks = 15;
    k.config.threadsPerBlock = 128;
    k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        co_await ctx.op(gpu::OpClass::FAdd);
        co_return;
    };
    for (auto _ : state) {
        host.sync(host.launch(s, k));
    }
    state.SetItemsProcessed(state.iterations() * 15 * 4);
    state.SetLabel("warp frames allocated+retired per iteration: 60");
}
BENCHMARK(BM_WarpFrameChurn);

// ---------------------------------------------------------------------
// BENCH_simperf.json maintenance.

struct Metric
{
    std::string name;
    double cpuNsPerIter = 0.0;
    double itemsPerSecond = 0.0;
};

/// Console reporter that additionally records per-benchmark metrics so
/// they can be written to BENCH_simperf.json after the run.
class RecordingReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<Metric> metrics;

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const auto &run : runs) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred)
                continue;
            Metric m;
            m.name = run.benchmark_name();
            m.cpuNsPerIter = run.GetAdjustedCPUTime();
            auto it = run.counters.find("items_per_second");
            if (it != run.counters.end()) {
                // Counters are finalized before reporting: kIsRate
                // values have already been divided by elapsed time.
                m.itemsPerSecond = it->second.value;
            }
            metrics.push_back(m);
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

std::string
jsonPath()
{
    if (const char *env = std::getenv("GPUCC_SIMPERF_JSON"))
        return env;
#ifdef GPUCC_REPO_ROOT
    return std::string(GPUCC_REPO_ROOT) + "/BENCH_simperf.json";
#else
    return "BENCH_simperf.json";
#endif
}

/// Extract the raw text of the balanced-brace object that follows
/// `"<key>":` in json, or "" when absent. Good enough for the file this
/// binary writes itself; not a general JSON parser.
std::string
extractObject(const std::string &json, const std::string &key)
{
    auto pos = json.find("\"" + key + "\"");
    if (pos == std::string::npos)
        return "";
    pos = json.find('{', pos);
    if (pos == std::string::npos)
        return "";
    int depth = 0;
    bool inString = false;
    for (std::size_t i = pos; i < json.size(); ++i) {
        char c = json[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
        } else if (c == '"') {
            inString = true;
        } else if (c == '{') {
            ++depth;
        } else if (c == '}' && --depth == 0) {
            return json.substr(pos, i - pos + 1);
        }
    }
    return "";
}

/// Pull `"items_per_second": <num>` for one benchmark out of a raw
/// metrics object.
double
lookupItemsPerSecond(const std::string &raw, const std::string &bench)
{
    auto pos = raw.find("\"" + bench + "\"");
    if (pos == std::string::npos)
        return 0.0;
    pos = raw.find("\"items_per_second\"", pos);
    if (pos == std::string::npos)
        return 0.0;
    pos = raw.find(':', pos);
    if (pos == std::string::npos)
        return 0.0;
    return std::strtod(raw.c_str() + pos + 1, nullptr);
}

std::string
metricsObject(const std::vector<Metric> &metrics, const char *indent)
{
    std::ostringstream out;
    out << "{";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        out << (i ? "," : "") << "\n"
            << indent << "  \"" << metrics[i].name << "\": { "
            << "\"cpu_ns_per_iter\": " << metrics[i].cpuNsPerIter
            << ", \"items_per_second\": " << metrics[i].itemsPerSecond
            << " }";
    }
    out << "\n" << indent << "}";
    return out.str();
}

void
writeSimperfJson(const std::vector<Metric> &metrics)
{
    const std::string path = jsonPath();

    std::string previous;
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            previous = buf.str();
        }
    }

    // Keep a previously recorded baseline verbatim; bootstrap it from
    // this run otherwise (first run on a fresh checkout).
    std::string baseline = extractObject(previous, "baseline");
    bool bootstrapped = baseline.empty();
    if (bootstrapped) {
        baseline = "{\n    \"label\": \"bootstrapped from first run\","
                   "\n    \"metrics\": " +
                   metricsObject(metrics, "    ") + "\n  }";
    }
    std::string baselineMetrics = extractObject(baseline, "metrics");

    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "bench_simperf: cannot write %s\n",
                     path.c_str());
        return;
    }
    out << "{\n"
        << "  \"_comment\": \"simulator performance record; 'baseline' "
           "is preserved across runs, 'current' is the latest "
           "bench_simperf run on this machine; benchmarks without a "
           "baseline entry may compare against an equivalent-work "
           "baseline (noted per entry)\",\n"
        << "  \"baseline\": " << baseline << ",\n"
        << "  \"current\": {\n    \"metrics\": "
        << metricsObject(metrics, "    ") << "\n  },\n"
        << "  \"speedup_items_per_second\": {";
    // A benchmark normally compares against its own baseline entry.
    // BM_SweepCellFromSnapshot has none (it is new) but simulates the
    // same 8 payload bits as BM_L1ChannelBitSimulation, so its cells
    // are scored against that baseline: the ratio is the end-to-end
    // per-cell sweep speedup (snapshot fork replacing boot + setup +
    // calibration).
    auto baselineNameFor = [](const std::string &bench) {
        if (bench == "BM_SweepCellFromSnapshot")
            return std::string("BM_L1ChannelBitSimulation");
        return bench;
    };
    bool first = true;
    for (const auto &m : metrics) {
        const std::string baseName = baselineNameFor(m.name);
        double base = lookupItemsPerSecond(baselineMetrics, baseName);
        out << (first ? "" : ",") << "\n    \"" << m.name << "\": ";
        if (base > 0.0 && m.itemsPerSecond > 0.0) {
            out << m.itemsPerSecond / base;
            if (baseName != m.name)
                out << ",\n    \"" << m.name
                    << "_vs\": \"" << baseName << " baseline\"";
        } else {
            // Every metric gets a row; new benches with no baseline
            // yet are explicit nulls rather than silent omissions.
            out << "null,\n    \"" << m.name
                << "_vs\": \"no baseline recorded\"";
        }
        first = false;
    }
    out << "\n  }\n}\n";
    std::printf("\nwrote %s%s\n", path.c_str(),
                bootstrapped ? " (baseline bootstrapped from this run)"
                             : "");
}

} // namespace

int
main(int argc, char **argv)
{
    // --json PATH: additionally copy the finished record to PATH (CI
    // stages it as a build artifact). Stripped before google-benchmark
    // sees the argument list.
    std::string extraJson;
    {
        int keep = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::string(argv[i]) == "--json" && i + 1 < argc)
                extraJson = argv[++i];
            else
                argv[keep++] = argv[i];
        }
        argc = keep;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    RecordingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    writeSimperfJson(reporter.metrics);
    if (!extraJson.empty()) {
        std::ifstream in(jsonPath());
        std::ofstream out(extraJson, std::ios::trunc);
        if (in && out)
            out << in.rdbuf();
        else
            std::fprintf(stderr, "bench_simperf: cannot copy record to %s\n",
                         extraJson.c_str());
    }
    return 0;
}

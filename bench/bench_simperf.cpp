/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: event
 * throughput, cache access rate, and end-to-end channel simulation
 * speed. These quantify the cost of the timing model, not the paper's
 * results.
 */

#include <benchmark/benchmark.h>

#include "common/log.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/sync/sync_channel.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"
#include "mem/set_assoc_cache.h"
#include "sim/event_queue.h"
#include "sim/resource_pool.h"

using namespace gpucc;

namespace
{

void
BM_EventQueueThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < 10000; ++i)
            q.schedule(Tick(i), [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void
BM_ResourcePoolAcquire(benchmark::State &state)
{
    sim::ResourcePool pool("bench", 4);
    Tick t = 0;
    for (auto _ : state) {
        auto r = pool.acquire(t, 100);
        benchmark::DoNotOptimize(r);
        t += 50;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourcePoolAcquire);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::SetAssocCache cache("bench", {32768, 256, 8});
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a));
        a = (a + 4096) % (1 << 20);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_KernelRoundTrip(benchmark::State &state)
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    for (auto _ : state) {
        gpu::Device dev(arch);
        gpu::HostContext host(dev);
        gpu::KernelLaunch k;
        k.name = "bench";
        k.config.gridBlocks = 15;
        k.config.threadsPerBlock = 128;
        k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
            for (int i = 0; i < 32; ++i)
                co_await ctx.op(gpu::OpClass::Sinf);
            co_return;
        };
        auto &s = dev.createStream();
        host.sync(host.launch(s, k));
    }
    state.SetItemsProcessed(state.iterations() * 15 * 4 * 32);
    state.SetLabel("simulated warp-instructions per iteration: 1920");
}
BENCHMARK(BM_KernelRoundTrip);

void
BM_L1ChannelBitSimulation(benchmark::State &state)
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    for (auto _ : state) {
        covert::L1ConstChannel ch(arch);
        auto r = ch.transmit(alternatingBits(8));
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * 8);
    state.SetLabel("bits simulated per iteration: 8 (+8 calibration)");
}
BENCHMARK(BM_L1ChannelBitSimulation);

void
BM_SyncChannelThroughput(benchmark::State &state)
{
    setVerbose(false);
    auto arch = gpu::keplerK40c();
    for (auto _ : state) {
        covert::SyncL1Channel ch(arch);
        auto r = ch.transmit(alternatingBits(64));
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SyncChannelThroughput);

} // namespace

BENCHMARK_MAIN();

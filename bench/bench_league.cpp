/**
 * @file
 * Co-evolution league: adaptive defenses versus channel-agile attack
 * sessions (Section 9 extension). Every (attacker, defender, arch,
 * seed) cell runs a complete ChannelSession transfer with the defender
 * armed on the same device and reports the residual capacity the
 * attacker kept; alongside, the Section 9 detector is scored as an ROC
 * over the cache-channel families and the Rodinia-like benign mixes.
 *
 * Flags (besides the shared --json):
 *   --smoke        one agile attacker vs the fuzz-only reactive
 *                  defender, 4 seeds on the K40C (the check.sh
 *                  --league CI gate: fuzzing alone must not cost the
 *                  session a single bit)
 *   --out <path>   write the full structured league table
 *                  (writeLeagueJson schema, incl. the 64-bit digest)
 */

#include <cstring>
#include <fstream>

#include "bench_util.h"
#include "covert/league/league.h"

using namespace gpucc;
using namespace gpucc::covert::league;

int
main(int argc, char **argv)
{
    bench::JsonSink::instance().configure("league", argc, argv);
    bool smoke = false;
    std::string outPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            outPath = argv[i + 1];
    }

    bench::banner(smoke ? "Co-evolution league (smoke)"
                        : "Co-evolution league",
                  "Section 9 (co-evolution extension)");

    LeagueConfig cfg;
    if (smoke) {
        cfg.attackers = {agileAttacker()};
        DefenderSpec fuzzOnly = cappedReactiveDefense();
        fuzzOnly.name = "reactive_fuzz_only";
        auto full = gpu::defaultDefenseLadder();
        fuzzOnly.reactive.ladder.assign(full.begin(), full.begin() + 2);
        cfg.defenders = {fuzzOnly};
        cfg.archs = {gpu::keplerK40c()};
        cfg.seedsPerCell = 4;
        cfg.roc = false;
    }
    LeagueTable t = runLeague(cfg);

    Table table("league table: one session transfer per cell");
    table.header({"attacker", "defender", "arch", "ok", "resid errs",
                  "failovers", "final res", "capacity", "detected"});
    for (const CellResult &c : t.cells) {
        table.row({c.attacker, c.defender, c.arch,
                   c.complete ? "yes" : "NO",
                   std::to_string(c.residualBitErrors),
                   std::to_string(c.failovers), c.finalResource,
                   fmtKbps(c.residualCapacityBps),
                   c.detected ? "yes" : "no"});
    }
    table.print();
    bench::JsonSink::instance().add(table);

    if (!t.roc.empty()) {
        std::printf("detector ROC over %zu runs: TP %.2f, FP %.2f\n",
                    t.roc.size(), t.tpRate, t.fpRate);
        bench::JsonSink::instance().note("roc_tp_rate", t.tpRate);
        bench::JsonSink::instance().note("roc_fp_rate", t.fpRate);
    }
    std::printf("league digest: %016llx (deterministic per config/seed, "
                "worker-count invariant)\n",
                (unsigned long long)t.digest);
    bench::JsonSink::instance().note(
        "digest_lo32", double(t.digest & 0xffffffffULL));
    bench::JsonSink::instance().note("digest_hi32",
                                     double(t.digest >> 32));

    if (!outPath.empty()) {
        std::ofstream os(outPath);
        GPUCC_ASSERT(os.good(), "cannot open --out path '%s'",
                     outPath.c_str());
        writeLeagueJson(t, os);
        std::printf("[json] league table written to %s\n",
                    outPath.c_str());
    }
    bench::JsonSink::instance().write();
    return 0;
}

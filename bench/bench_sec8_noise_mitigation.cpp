/**
 * @file
 * Section 8: interference from other workloads and the exclusive
 * co-location defense. The Rodinia-like mix (constant-memory walker,
 * compute, shared-memory user, global-memory streamer) runs on a third
 * application while the synchronized L1 channel communicates.
 */

#include "bench_util.h"
#include "covert/colocation/noise_experiment.h"

using namespace gpucc;

int
main()
{
    bench::banner("Section 8: noise mitigation by exclusive co-location",
                  "Section 8 (Rodinia interference)");

    auto msg = bench::payload(256);
    Table t("Synchronized L1 channel under a Rodinia-like mix");
    t.header({"GPU", "mitigation", "bandwidth", "bit error rate",
              "co-resident interferer blocks"});
    for (const auto &arch : gpu::allArchitectures()) {
        auto plain = covert::runNoiseExperiment(arch, msg, false);
        auto excl = covert::runNoiseExperiment(arch, msg, true);
        t.row({arch.name, "none",
               fmtKbps(plain.channel.bandwidthBps),
               fmtDouble(100.0 * plain.channel.report.errorRate(), 2) +
                   " %",
               std::to_string(plain.coResidentInterfererBlocks)});
        t.row({"", "exclusive co-location",
               fmtKbps(excl.channel.bandwidthBps),
               fmtDouble(100.0 * excl.channel.report.errorRate(), 2) +
                   " %",
               std::to_string(excl.coResidentInterfererBlocks)});
    }
    t.print();

    // The headline composition: Table 2's full-rate channel protected
    // on every SM at once.
    {
        auto big = bench::payload(1800);
        auto excl = covert::runNoiseExperiment(gpu::keplerK40c(), big,
                                               true, 1, 6, true);
        std::printf("full-rate channel under the same mix, protected: "
                    "%s, BER %.2f%%, %u co-resident\ninterferer blocks "
                    "(Kepler, 6 sets x 15 SMs).\n\n",
                    fmtKbps(excl.channel.bandwidthBps).c_str(),
                    100.0 * excl.channel.report.errorRate(),
                    excl.coResidentInterfererBlocks);
    }
    std::printf("Defense: the spy claims the SM's full shared memory "
                "(both parties claim the per-block\nmax on Maxwell), "
                "silent helpers exhaust leftover thread slots, and the "
                "leftover policy's\nlaunch-time priority keeps every "
                "interferer off the channel's SM until it finishes —\n"
                "error-free communication against all workloads, as in "
                "the paper.\n");
    return 0;
}

/**
 * @file
 * Figure 6: latency of one single-precision operation (__sinf, sqrt,
 * Add, Mul) versus the number of resident warps, averaged over 128
 * iterations, on the three GPUs. The curves are flat until the per-
 * scheduler issue port saturates, then step each time warp 0's
 * scheduler gains a warp.
 */

#include "bench_util.h"
#include "covert/characterize/fu_characterizer.h"

using namespace gpucc;

int
main()
{
    bench::banner("Figure 6: single-precision op latency vs warp count",
                  "Section 5.1, Figure 6");

    const gpu::OpClass ops[] = {gpu::OpClass::Sinf, gpu::OpClass::Sqrt,
                                gpu::OpClass::FAdd, gpu::OpClass::FMul};
    for (const auto &arch : gpu::allArchitectures()) {
        covert::FuCharacterizer fc(arch);
        Table t(strfmt("%s (%s): warp-0 latency (cycles)",
                       arch.name.c_str(),
                       gpu::generationName(arch.generation)));
        t.header({"warps", "__sinf", "sqrt", "Add", "Mul"});
        std::map<gpu::OpClass, std::vector<covert::FuLatencyPoint>> curves;
        for (auto op : ops)
            curves[op] = fc.curve(op, 32);
        for (unsigned w = 1; w <= 32; ++w) {
            if (w > 4 && w % 2 != 0)
                continue; // print every other row past the start
            t.row({std::to_string(w),
                   fmtDouble(curves[ops[0]][w - 1].warp0AvgCycles, 1),
                   fmtDouble(curves[ops[1]][w - 1].warp0AvgCycles, 1),
                   fmtDouble(curves[ops[2]][w - 1].warp0AvgCycles, 1),
                   fmtDouble(curves[ops[3]][w - 1].warp0AvgCycles, 1)});
        }
        t.print();
        for (auto op : ops) {
            std::vector<double> v;
            for (const auto &p : curves[op])
                v.push_back(p.warp0AvgCycles);
            std::printf("%-8s %s  (onset at %u warps)\n",
                        gpu::opClassName(op), bench::sparkline(v).c_str(),
                        covert::FuCharacterizer::contentionOnset(curves[op]));
        }
    }
    std::printf("\nPaper anchors: Kepler __sinf 18 cycles flat, ~24 at 24 "
                "warps; Kepler Add/Mul flat over\nthe whole sweep (192 SP "
                "units); Fermi __sinf 41 -> ~300; Maxwell Add steps late "
                "(quadrants).\n");
    return 0;
}

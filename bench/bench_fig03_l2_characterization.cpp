/**
 * @file
 * Figure 3: L2 constant-cache latency vs array size at 256-byte stride
 * (32 KB, 8-way, 256 B lines on all three GPUs).
 */

#include "bench_util.h"
#include "covert/characterize/cache_characterizer.h"

using namespace gpucc;
using covert::CacheCharacterizer;

int
main()
{
    bench::banner("Figure 3: L2 constant cache, stride 256 bytes",
                  "Section 4.1, Figure 3");

    for (const auto &arch : gpu::allArchitectures()) {
        covert::CacheCharacterizer cc(arch);
        auto series = cc.figure3Sweep();

        Table t(strfmt("%s: avg load latency vs array size",
                       arch.name.c_str()));
        t.header({"array (bytes)", "latency (cycles)"});
        std::vector<double> values;
        for (const auto &p : series) {
            t.row({std::to_string(p.arrayBytes),
                   fmtDouble(p.avgLatencyCycles, 1)});
            values.push_back(p.avgLatencyCycles);
        }
        t.print();
        std::printf("shape: %s\n", bench::sparkline(values).c_str());

        auto g = CacheCharacterizer::recover(series,
                                             arch.constMem.l2.lineBytes);
        std::printf("recovered: %zu B cache, %zu B lines, %zu sets "
                    "(paper: 32 KB, 8-way, 256 B lines on all GPUs)\n",
                    g.sizeBytes, g.lineBytes, g.numSets);
    }
    return 0;
}

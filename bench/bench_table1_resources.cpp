/**
 * @file
 * Table 1: number of available resources in each SM, for the three
 * evaluated GPUs.
 */

#include "bench_util.h"

using namespace gpucc;

int
main()
{
    bench::banner("Table 1: per-SM resources",
                  "Section 5.1, Table 1");

    Table t("Number of available resources in each SM");
    t.header({"GPU", "Warp Scheduler", "Dispatch Unit", "SP", "DPU", "SFU",
              "LD/ST"});
    for (const auto &a : gpu::allArchitectures()) {
        t.row({strfmt("%s (%s)", a.name.c_str(),
                      gpu::generationName(a.generation)),
               std::to_string(a.schedulersPerSm),
               std::to_string(a.schedulersPerSm *
                              a.dispatchUnitsPerScheduler),
               std::to_string(a.fuCount(gpu::FuType::SP)),
               std::to_string(a.fuCount(gpu::FuType::DPU)),
               std::to_string(a.fuCount(gpu::FuType::SFU)),
               std::to_string(a.fuCount(gpu::FuType::LDST))});
    }
    t.print();

    Table d("Device-level parameters used by the model");
    d.header({"GPU", "SMs", "core clock", "const L1", "const L2",
              "smem/SM"});
    for (const auto &a : gpu::allArchitectures()) {
        d.row({a.name, std::to_string(a.numSms),
               fmtDouble(a.clockGHz, 3) + " GHz",
               strfmt("%zu B, %u-way, %zu B lines",
                      a.constMem.l1.sizeBytes, a.constMem.l1.ways,
                      a.constMem.l1.lineBytes),
               strfmt("%zu B, %u-way, %zu B lines",
                      a.constMem.l2.sizeBytes, a.constMem.l2.ways,
                      a.constMem.l2.lineBytes),
               strfmt("%zu KB", a.limits.smemBytes / 1024)});
    }
    d.print();
    return 0;
}

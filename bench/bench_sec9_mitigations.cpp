/**
 * @file
 * Section 9 mitigation ablation: the paper proposes spatial/temporal
 * partitioning, scheduler changes, and measurement-entropy defenses but
 * leaves their implementation to future work. This bench implements and
 * evaluates all of them against every channel class on the Kepler
 * K40C, including the negative result that temporal partitioning alone
 * does not stop the state-based cache channel.
 *
 * The (defense x channel) ablation grid is embarrassingly parallel —
 * every cell simulates its own device — so all cells run through
 * SweepRunner and the table is assembled in grid order afterwards.
 */

#include "bench_util.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/channels/sfu_channel.h"
#include "covert/parallel/sfu_parallel_channel.h"
#include "covert/sync/sync_channel.h"
#include "sim/exec/sweep_runner.h"

using namespace gpucc;
using gpu::MitigationConfig;

namespace
{

struct Cell
{
    double bandwidth = 0.0;
    double ber = 0.0;
};

Cell
l1Baseline(const gpu::ArchParams &arch, const MitigationConfig &m)
{
    covert::LaunchPerBitConfig cfg;
    cfg.mitigations = m;
    covert::L1ConstChannel ch(arch, cfg);
    auto r = ch.transmit(bench::payload(64));
    return {r.bandwidthBps, r.report.errorRate()};
}

Cell
l1Sync(const gpu::ArchParams &arch, const MitigationConfig &m)
{
    covert::SyncChannelConfig cfg;
    cfg.mitigations = m;
    covert::SyncL1Channel ch(arch, cfg);
    auto r = ch.transmit(bench::payload(128));
    return {r.bandwidthBps, r.report.errorRate()};
}

Cell
sfu(const gpu::ArchParams &arch, const MitigationConfig &m)
{
    covert::LaunchPerBitConfig cfg;
    cfg.iterations = 0; // per-arch default
    cfg.mitigations = m;
    covert::SfuChannel ch(arch, cfg);
    auto r = ch.transmit(bench::payload(48));
    return {r.bandwidthBps, r.report.errorRate()};
}

Cell
sfuParallel(const gpu::ArchParams &arch, const MitigationConfig &m)
{
    covert::SfuParallelConfig cfg;
    cfg.mitigations = m;
    covert::SfuParallelChannel ch(arch, cfg);
    auto r = ch.transmit(bench::payload(64));
    return {r.bandwidthBps, r.report.errorRate()};
}

std::string
fmtCell(const Cell &c)
{
    if (c.ber > 0.02)
        return strfmt("DEAD (BER %.0f%%)", 100.0 * c.ber);
    return fmtKbps(c.bandwidth) +
           (c.ber > 0.0 ? strfmt(" (BER %.1f%%)", 100.0 * c.ber) : "");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonSink::instance().configure("sec9_mitigations", argc, argv);
    bench::banner("Section 9: mitigation ablation (Tesla K40C)",
                  "Section 9 (proposed mitigations, implemented here)");

    auto arch = gpu::keplerK40c();

    struct Row
    {
        const char *name;
        MitigationConfig cfg;
    };
    std::vector<Row> rows;
    rows.push_back({"no defense", {}});
    {
        MitigationConfig m;
        m.cacheWayPartitioning = true;
        rows.push_back({"cache way partitioning", m});
    }
    {
        MitigationConfig m;
        m.randomizeWarpSchedulers = true;
        rows.push_back({"randomized warp scheduling", m});
    }
    {
        MitigationConfig m;
        m.timerFuzzCycles = 64;
        rows.push_back({"timer fuzz (+/-64 cyc)", m});
    }
    {
        MitigationConfig m;
        m.timerFuzzCycles = 256;
        rows.push_back({"timer fuzz (+/-256 cyc)", m});
    }
    {
        MitigationConfig m;
        m.temporalPartitioning = true;
        rows.push_back({"temporal partitioning", m});
    }
    {
        MitigationConfig m;
        m.temporalPartitioning = true;
        m.flushCachesBetweenKernels = true;
        rows.push_back({"temporal + cache flush", m});
    }

    // Flatten the (defense x channel class) grid into independent jobs.
    using ChannelFn = Cell (*)(const gpu::ArchParams &,
                               const MitigationConfig &);
    const ChannelFn channels[] = {l1Baseline, l1Sync, sfu, sfuParallel};
    constexpr std::size_t numChannels = 4;

    struct Job
    {
        std::size_t row;
        std::size_t channel;
    };
    std::vector<Job> grid;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < numChannels; ++c)
            grid.push_back({r, c});
    }

    sim::exec::SweepRunner runner;
    auto cells = runner.runSweep(grid, [&](const Job &j) {
        return channels[j.channel](arch, rows[j.row].cfg);
    });

    Table t("channel survival under each defense");
    t.header({"defense", "L1 baseline", "L1 synchronized", "SFU",
              "SFU parallel"});
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const Cell *c = &cells[r * numChannels];
        t.row({rows[r].name, fmtCell(c[0]), fmtCell(c[1]), fmtCell(c[2]),
               fmtCell(c[3])});
    }
    t.print();
    bench::JsonSink::instance().add(t);

    std::printf(
        "Notable: temporal partitioning kills the *contention* channels "
        "but NOT the launch-per-bit\ncache channel — evictions are "
        "durable state, so prime and probe need not overlap. Stopping\n"
        "it additionally requires flushing the caches between kernels. "
        "Way partitioning is the\nonly single defense that stops all "
        "cache channels; no single defense stops everything.\n");
    bench::JsonSink::instance().write();
    return 0;
}

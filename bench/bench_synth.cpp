/**
 * @file
 * Blind attack synthesis, end to end and timed: for each committed
 * architecture, an AttackerLab (launch kernels + read clock(), nothing
 * else) discovers the constant-cache geometry, derives thresholds from
 * measured hit/miss populations, reduces a minimal eviction set,
 * sweeps SFU and atomic contention, ranks the substrates, and drives a
 * 96-bit self-calibrating session on the channel it picked.
 *
 * The printed table puts the discovered values next to the generating
 * ArchParams (the Section 3 ground truth the attacker never saw) and
 * reports the measurement budget: devices spent and host wall-clock
 * per discovery. The conformance bands for the same pipeline live in
 * conformance/expected/synth_blind.json; this bench is the human-
 * readable and CI-staged (--json) view of the same run.
 */

#include <chrono>

#include "bench_util.h"
#include "covert/session/session.h"
#include "covert/synth/synthesizer.h"
#include "covert/sync/duplex_channel.h"

using namespace gpucc;

namespace
{

std::string
fmtGeometry(const covert::synth::DiscoveredCache &l1)
{
    return std::to_string(l1.sizeBytes) + " B / " +
           std::to_string(l1.lineBytes) + " B line / " +
           std::to_string(l1.numSets) + " sets x " +
           std::to_string(l1.ways) + " ways";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("blind attack synthesis (no-datasheet reverse "
                  "engineering to a working channel)",
                  "Section 3 (methodology run blind; geometry vs "
                  "Table 1 ground truth)");
    auto &json = bench::JsonSink::instance();
    json.configure("synth", argc, argv);

    Table t("Blind synthesis per architecture: discovery, plan, and "
            "session transfer (96-bit payload)");
    t.header({"architecture", "discovered L1", "hit/miss (cyc)",
              "eviction set", "best", "session", "devices", "wall"});
    for (const auto &arch : gpu::allArchitectures()) {
        const auto t0 = std::chrono::steady_clock::now();
        covert::synth::AttackerLab lab(arch);
        covert::synth::SynthesizedPlan plan =
            covert::synth::synthesize(lab);

        covert::session::SessionConfig cfg =
            covert::synth::planSessionConfig(plan);
        covert::session::ChannelSession session(arch, cfg);
        session.channel().setTiming(plan.timing());
        covert::session::SessionResult r =
            session.run(bench::payload(96, 17));
        const double wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();

        const bool geometryExact =
            plan.l1.sizeBytes == arch.constMem.l1.sizeBytes &&
            plan.l1.lineBytes == arch.constMem.l1.lineBytes &&
            plan.l1.numSets == arch.constMem.l1.numSets() &&
            plan.l1.ways == arch.constMem.l1.ways;

        t.row({arch.name,
               fmtGeometry(plan.l1) +
                   (geometryExact ? " (exact)" : " (MISMATCH)"),
               fmtDouble(plan.thresholds.hitCycles, 1) + " / " +
                   fmtDouble(plan.thresholds.missCycles, 1),
               std::to_string(plan.evictionSet.offsets.size()) +
                   " of pool " +
                   std::to_string(plan.evictionSet.poolSize),
               covert::channelResourceName(plan.best()),
               r.complete && r.residualBitErrors == 0
                   ? fmtKbps(r.goodputBps) + ", 0 err"
                   : "FAILED",
               std::to_string(plan.devicesUsed),
               fmtDouble(wallMs, 0) + " ms"});

        const std::string key = gpu::generationName(arch.generation);
        json.note(key + ".geometry_exact", geometryExact ? 1.0 : 0.0);
        json.note(key + ".l1_bytes",
                  static_cast<double>(plan.l1.sizeBytes));
        json.note(key + ".l1_ways", plan.l1.ways);
        json.note(key + ".hit_cycles", plan.thresholds.hitCycles);
        json.note(key + ".miss_cycles", plan.thresholds.missCycles);
        json.note(key + ".eviction_set_size",
                  static_cast<double>(plan.evictionSet.offsets.size()));
        json.note(key + ".session_complete", r.complete ? 1.0 : 0.0);
        json.note(key + ".residual_ber", r.residualBer);
        json.note(key + ".goodput_bps", r.goodputBps);
        json.note(key + ".devices_used", plan.devicesUsed);
        json.note(key + ".discovery_wall_ms", wallMs);
    }
    t.print();
    json.add(t);

    std::printf(
        "The attacker toolkit recovers every architecture's constant-"
        "cache geometry exactly\nfrom timed stride sweeps (capacity "
        "knee, line-stride knee, alias-fit associativity),\nderives "
        "decode thresholds from the hit/miss populations its own "
        "eviction probes\nmeasured, and reduces a polluted candidate "
        "pool to an associativity-sized minimal\neviction set. The "
        "substrate ranking (L1 prime/probe ahead of SFU and atomic\n"
        "contention) reproduces the paper's bandwidth ordering, and "
        "the synthesized plan\ncarries a session with zero residual "
        "errors on every architecture.\n");
    json.write();
    return 0;
}

/**
 * @file
 * Section 7 multi-resource experiment: one bit through the L1 constant
 * cache and one through the SFUs per kernel-pair launch. Paper: 56 Kbps
 * on Kepler and Maxwell.
 */

#include "bench_util.h"
#include "covert/parallel/multi_resource_channel.h"

using namespace gpucc;

int
main()
{
    bench::banner("Multi-resource channel (L1 + SFU simultaneously)",
                  "Section 7, 56 Kbps on Kepler and Maxwell");

    auto msg = bench::payload(96);
    Table t("Two bits per launch: L1 set + SFU port");
    t.header({"GPU", "bandwidth", "bit error rate"});
    for (const auto &arch : {gpu::keplerK40c(), gpu::maxwellM4000()}) {
        covert::MultiResourceChannel ch(arch);
        auto r = ch.transmit(msg);
        t.row({arch.name, bench::vsPaper(r.bandwidthBps, "56 Kbps"),
               fmtDouble(100.0 * r.report.errorRate(), 2) + " %"});
    }
    t.print();
    std::printf("The two resources contend independently, so the bits "
                "compose without crosstalk.\n");
    return 0;
}

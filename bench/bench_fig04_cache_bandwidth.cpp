/**
 * @file
 * Figure 4: error-free cache covert-channel bandwidth (L1 and L2) on
 * the three GPUs. Paper values: L1 ~33/42/42 Kbps, L2 ~20 Kbps with all
 * bits received correctly.
 */

#include "bench_util.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/channels/l2_const_channel.h"

using namespace gpucc;

int
main()
{
    bench::banner("Figure 4: cache channel bandwidth",
                  "Sections 4.2-4.3, Figure 4");

    auto msg = bench::payload(96);
    Table t("Error-free cache covert-channel bandwidth");
    t.header({"GPU", "L1 channel", "L2 channel", "L1 errors",
              "L2 errors"});
    const char *paperL1[] = {"33 Kbps", "42 Kbps", "42 Kbps"};
    int i = 0;
    for (const auto &arch : gpu::allArchitectures()) {
        covert::L1ConstChannel l1(arch);
        covert::L2ConstChannel l2(arch);
        auto r1 = l1.transmit(msg);
        auto r2 = l2.transmit(msg);
        t.row({arch.name, bench::vsPaper(r1.bandwidthBps, paperL1[i]),
               bench::vsPaper(r2.bandwidthBps, "~20 Kbps"),
               fmtDouble(100.0 * r1.report.errorRate(), 2) + " %",
               fmtDouble(100.0 * r2.report.errorRate(), 2) + " %"});
        ++i;
    }
    t.print();
    std::printf("L1 channel: 20 contention iterations/bit; "
                "L2 channel: 2 iterations/bit (paper settings).\n");
    return 0;
}

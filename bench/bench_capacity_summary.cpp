/**
 * @file
 * Capacity overview of every channel class on the Tesla K40C: raw rate,
 * measured BER, the BSC capacity actually carried, and the symbol
 * separation (the SNR-style margin the decodability rests on). The
 * paper positions its channels against Hunger et al.'s theoretical
 * capacity bounds for CPU channels; this table is the corresponding
 * measured record for the GPU channels.
 */

#include "bench_util.h"
#include "covert/analysis/capacity.h"
#include "covert/channels/atomic_channel.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/channels/l2_const_channel.h"
#include "covert/channels/sfu_channel.h"
#include "covert/parallel/sfu_parallel_channel.h"
#include "covert/sync/duplex_channel.h"
#include "covert/sync/sync_channel.h"
#include "covert/sync/sync_l2_channel.h"
#include "covert/sync/sync_sfu_channel.h"

using namespace gpucc;
using namespace gpucc::covert;

namespace
{

Table table("channel capacity summary, Tesla K40C");

void
add(const char *name, const ChannelResult &r)
{
    auto e = estimateCapacity(r);
    table.row({name, fmtKbps(e.rawRateBps),
               fmtDouble(100.0 * e.errorRate, 2) + " %",
               fmtKbps(e.bscCapacityBps),
               fmtDouble(e.symbolSeparation, 1)});
}

} // namespace

int
main()
{
    bench::banner("Channel capacity summary",
                  "Section 10 context (capacity bounds, Hunger et al.)");
    auto arch = gpu::keplerK40c();
    table.header({"channel", "raw rate", "BER", "BSC capacity",
                  "symbol separation"});

    {
        L1ConstChannel ch(arch);
        add("L1 constant cache (launch/bit)", ch.transmit(bench::payload(64)));
    }
    {
        L2ConstChannel ch(arch);
        add("L2 constant cache (launch/bit)", ch.transmit(bench::payload(64)));
    }
    {
        SfuChannel ch(arch);
        add("SFU (launch/bit)", ch.transmit(bench::payload(64)));
    }
    {
        AtomicChannel ch(arch, AtomicScenario::StridedCoalesced);
        ch.autoTuneIterations();
        add("global atomics (scenario 2)", ch.transmit(bench::payload(64)));
    }
    {
        SyncL1Channel ch(arch);
        add("L1 synchronized", ch.transmit(bench::payload(256)));
    }
    {
        SyncSfuChannel ch(arch);
        add("SFU synchronized", ch.transmit(bench::payload(256)));
    }
    {
        SyncL2Channel ch(arch);
        add("L2 synchronized (inter-SM)", ch.transmit(bench::payload(128)));
    }
    {
        DuplexSyncChannel ch(arch);
        auto r = ch.exchange(bench::payload(128, 11),
                             bench::payload(128, 12));
        add("duplex forward (concurrent)", r.aToB);
        add("duplex reverse (concurrent)", r.bToA);
    }
    {
        SyncChannelConfig cfg;
        cfg.dataSetsPerSm = 6;
        cfg.allSms = true;
        SyncL1Channel ch(arch, cfg);
        add("L1 sync, 6 sets x 15 SMs", ch.transmit(bench::payload(2048)));
    }
    {
        SfuParallelConfig cfg;
        cfg.acrossSms = true;
        SfuParallelChannel ch(arch, cfg);
        add("SFU parallel, 4 sched x 15 SMs",
            ch.transmit(bench::payload(1024)));
    }
    table.print();
    std::printf("Error-free channels carry their full raw rate; the "
                "symbol separation shows how much\nmargin each channel "
                "has before noise or defenses (timer fuzz, partitioning) "
                "bite.\n");
    return 0;
}

/**
 * @file
 * Capacity overview of every channel class on the Tesla K40C: raw rate,
 * measured BER, the BSC capacity actually carried, and the symbol
 * separation (the SNR-style margin the decodability rests on). The
 * paper positions its channels against Hunger et al.'s theoretical
 * capacity bounds for CPU channels; this table is the corresponding
 * measured record for the GPU channels.
 *
 * Each channel instance simulates its own device, so all the rows run
 * as parallel SweepRunner jobs and print in order afterwards. The
 * duplex channel contributes one job with two rows.
 */

#include <functional>

#include "bench_util.h"
#include "covert/analysis/capacity.h"
#include "covert/channels/atomic_channel.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/channels/l2_const_channel.h"
#include "covert/channels/sfu_channel.h"
#include "covert/parallel/sfu_parallel_channel.h"
#include "covert/sync/duplex_channel.h"
#include "covert/sync/sync_channel.h"
#include "covert/sync/sync_l2_channel.h"
#include "covert/sync/sync_sfu_channel.h"
#include "sim/exec/sweep_runner.h"

using namespace gpucc;
using namespace gpucc::covert;

namespace
{

struct NamedResult
{
    std::string name;
    ChannelResult result;
};

std::vector<std::string>
toRow(const NamedResult &nr)
{
    auto e = estimateCapacity(nr.result);
    return {nr.name, fmtKbps(e.rawRateBps),
            fmtDouble(100.0 * e.errorRate, 2) + " %",
            fmtKbps(e.bscCapacityBps), fmtDouble(e.symbolSeparation, 1)};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonSink::instance().configure("capacity_summary", argc, argv);
    bench::banner("Channel capacity summary",
                  "Section 10 context (capacity bounds, Hunger et al.)");
    auto arch = gpu::keplerK40c();

    using Job = std::function<std::vector<NamedResult>()>;
    std::vector<Job> jobs;
    jobs.push_back([&arch]() -> std::vector<NamedResult> {
        L1ConstChannel ch(arch);
        return {{"L1 constant cache (launch/bit)",
                 ch.transmit(bench::payload(64))}};
    });
    jobs.push_back([&arch]() -> std::vector<NamedResult> {
        L2ConstChannel ch(arch);
        return {{"L2 constant cache (launch/bit)",
                 ch.transmit(bench::payload(64))}};
    });
    jobs.push_back([&arch]() -> std::vector<NamedResult> {
        SfuChannel ch(arch);
        return {{"SFU (launch/bit)", ch.transmit(bench::payload(64))}};
    });
    jobs.push_back([&arch]() -> std::vector<NamedResult> {
        AtomicChannel ch(arch, AtomicScenario::StridedCoalesced);
        ch.autoTuneIterations();
        return {{"global atomics (scenario 2)",
                 ch.transmit(bench::payload(64))}};
    });
    jobs.push_back([&arch]() -> std::vector<NamedResult> {
        SyncL1Channel ch(arch);
        return {{"L1 synchronized", ch.transmit(bench::payload(256))}};
    });
    jobs.push_back([&arch]() -> std::vector<NamedResult> {
        SyncSfuChannel ch(arch);
        return {{"SFU synchronized", ch.transmit(bench::payload(256))}};
    });
    jobs.push_back([&arch]() -> std::vector<NamedResult> {
        SyncL2Channel ch(arch);
        return {{"L2 synchronized (inter-SM)",
                 ch.transmit(bench::payload(128))}};
    });
    jobs.push_back([&arch]() -> std::vector<NamedResult> {
        DuplexSyncChannel ch(arch);
        auto r = ch.exchange(bench::payload(128, 11),
                             bench::payload(128, 12));
        return {{"duplex forward (concurrent)", r.aToB},
                {"duplex reverse (concurrent)", r.bToA}};
    });
    jobs.push_back([&arch]() -> std::vector<NamedResult> {
        SyncChannelConfig cfg;
        cfg.dataSetsPerSm = 6;
        cfg.allSms = true;
        SyncL1Channel ch(arch, cfg);
        return {{"L1 sync, 6 sets x 15 SMs",
                 ch.transmit(bench::payload(2048))}};
    });
    jobs.push_back([&arch]() -> std::vector<NamedResult> {
        SfuParallelConfig cfg;
        cfg.acrossSms = true;
        SfuParallelChannel ch(arch, cfg);
        return {{"SFU parallel, 4 sched x 15 SMs",
                 ch.transmit(bench::payload(1024))}};
    });

    sim::exec::SweepRunner runner;
    auto results = runner.runSweep(jobs, [](const Job &j) { return j(); });

    Table table("channel capacity summary, Tesla K40C");
    table.header({"channel", "raw rate", "BER", "BSC capacity",
                  "symbol separation"});
    for (const auto &group : results) {
        for (const auto &nr : group)
            table.row(toRow(nr));
    }
    table.print();
    bench::JsonSink::instance().add(table);
    std::printf("Error-free channels carry their full raw rate; the "
                "symbol separation shows how much\nmargin each channel "
                "has before noise or defenses (timer fuzz, partitioning) "
                "bite.\n");
    bench::JsonSink::instance().write();
    return 0;
}

/**
 * @file
 * Figure 2: L1 constant-cache latency vs array size at 64-byte stride.
 * The staircase reveals the cache capacity (plateau end), the number of
 * sets (step count), and the line size (step width). The attack's
 * offline step then recovers the geometry automatically.
 */

#include "bench_util.h"
#include "covert/characterize/cache_characterizer.h"

using namespace gpucc;
using covert::CacheCharacterizer;

int
main()
{
    bench::banner("Figure 2: L1 constant cache, stride 64 bytes",
                  "Section 4.1, Figure 2");

    for (const auto &arch : gpu::allArchitectures()) {
        covert::CacheCharacterizer cc(arch);
        auto series = cc.figure2Sweep();

        Table t(strfmt("%s: avg load latency vs array size",
                       arch.name.c_str()));
        t.header({"array (bytes)", "latency (cycles)"});
        std::vector<double> values;
        for (const auto &p : series) {
            t.row({std::to_string(p.arrayBytes),
                   fmtDouble(p.avgLatencyCycles, 1)});
            values.push_back(p.avgLatencyCycles);
        }
        t.print();
        std::printf("shape: %s\n", bench::sparkline(values).c_str());

        auto g = CacheCharacterizer::recover(series,
                                             arch.constMem.l1.lineBytes);
        std::printf("recovered: %zu B cache, %zu B lines, %zu sets "
                    "(ground truth: %zu B, %zu B, %zu)\n",
                    g.sizeBytes, g.lineBytes, g.numSets,
                    arch.constMem.l1.sizeBytes, arch.constMem.l1.lineBytes,
                    arch.constMem.l1.numSets());
        std::printf("paper (Kepler/Maxwell): 2 KB, 4-way, 64 B lines; "
                    "Fermi: 4 KB, 4-way, 64 B lines\n");
    }
    return 0;
}

/**
 * @file
 * Section 3.1: reverse engineering the hardware schedulers from the
 * outside (smid + clock() observations only). Prints the recovered
 * policies per GPU.
 */

#include "bench_util.h"
#include "covert/characterize/scheduler_probe.h"

using namespace gpucc;

int
main()
{
    bench::banner("Section 3.1: reverse-engineered scheduling policies",
                  "Section 3, co-location methodology");

    Table t("Recovered hardware scheduling policies");
    t.header({"GPU", "block->SM", "2nd kernel", "saturated device",
              "warp->scheduler", "SMs seen", "schedulers seen"});
    for (const auto &arch : gpu::allArchitectures()) {
        covert::SchedulerProbe probe(arch);
        auto f = probe.run();
        t.row({arch.name,
               f.blockAssignmentRoundRobin ? "round-robin" : "other",
               f.secondKernelUsesLeftover ? "fills leftover" : "other",
               f.fullDeviceBlocksSecondKernel ? "queues blocks" : "other",
               f.warpAssignmentRoundRobin ? "round-robin" : "other",
               std::to_string(f.observedSms),
               std::to_string(f.observedSchedulers)});
    }
    t.print();
    std::printf("Co-location recipe derived from these findings: launch "
                "one block per SM from each\nkernel (they pair up on "
                "every SM), and use warp counts that are multiples of "
                "the\nscheduler count to pin warps to schedulers.\n");
    return 0;
}

/**
 * @file
 * Section 5.2's closing remark — "Similar channels can be constructed
 * using other resources" — made concrete: derive a channel plan from
 * the Figure 6/7 characterization for every operation class on every
 * GPU, and run the feasible ones. The infeasible cells are the paper's
 * own observations (192 SP units on Kepler never saturate; Maxwell has
 * no DP units).
 */

#include "bench_util.h"
#include "covert/channels/fu_channel_plan.h"
#include "covert/channels/sfu_channel.h"

using namespace gpucc;
using covert::deriveFuChannelPlan;

int
main()
{
    bench::banner("Generalized functional-unit channels",
                  "Section 5.2 ('similar channels ... other resources')");

    const gpu::OpClass ops[] = {gpu::OpClass::Sinf, gpu::OpClass::Sqrt,
                                gpu::OpClass::FAdd, gpu::OpClass::DAdd};
    auto msg = bench::payload(48);

    for (const auto &arch : gpu::allArchitectures()) {
        Table t(strfmt("%s: auto-derived FU channels", arch.name.c_str()));
        t.header({"op", "plan (spy+trojan warps)", "symbols (cycles)",
                  "bandwidth", "errors"});
        for (auto op : ops) {
            auto plan = deriveFuChannelPlan(arch, op);
            if (!plan.feasible) {
                const char *why =
                    !arch.supports(op)
                        ? "no units on this GPU"
                        : "units never saturate (no carrier)";
                t.row({gpu::opClassName(op), "infeasible", why, "-", "-"});
                continue;
            }
            covert::SfuChannel ch(arch, plan);
            auto r = ch.transmit(msg);
            t.row({gpu::opClassName(op),
                   strfmt("%u + %u", plan.spyWarpsPerBlock,
                          plan.trojanWarpsPerBlock),
                   strfmt("%.0f vs %.0f", plan.predictedBaseCycles,
                          plan.predictedContendedCycles),
                   fmtKbps(r.bandwidthBps),
                   fmtDouble(100.0 * r.report.errorRate(), 2) + " %"});
        }
        t.print();
    }
    std::printf("Paper-consistent negatives: Add/Mul carry no channel on "
                "the K40C (192 SP units),\nand the M4000 has no "
                "double-precision units at all.\n");
    return 0;
}

/**
 * @file
 * Table 3: improved SFU covert-channel bandwidth. Columns: baseline,
 * parallel through warp schedulers, parallel through warp schedulers
 * and SMs. Paper rows:
 *   Fermi   21 / 28 Kbps / 380 Kbps
 *   Kepler  24 / 84 Kbps / 1.2 Mbps
 *   Maxwell 28 / 100 Kbps / 1.3 Mbps
 */

#include "bench_util.h"
#include "covert/channels/sfu_channel.h"
#include "covert/parallel/sfu_parallel_channel.h"
#include "covert/sync/sync_sfu_channel.h"

using namespace gpucc;

int
main()
{
    bench::banner("Table 3: improved SFU channels",
                  "Section 7.2, Table 3");

    const char *paper[][3] = {
        {"21 Kbps", "28 Kbps", "380 Kbps"},
        {"24 Kbps", "84 Kbps", "1.2 Mbps"},
        {"28 Kbps", "100 Kbps", "1.3 Mbps"},
    };

    Table t("Improved SFU channel bandwidth (all error-free)");
    t.header({"GPU", "Baseline", "Parallel (warp schedulers)",
              "Parallel (schedulers x SMs)"});
    int i = 0;
    for (const auto &arch : gpu::allArchitectures()) {
        covert::SfuChannel baseline(arch);
        auto r0 = baseline.transmit(bench::payload(64));

        covert::SfuParallelChannel perSched(arch);
        auto r1 = perSched.transmit(bench::payload(128));

        covert::SfuParallelConfig cfg;
        cfg.acrossSms = true;
        covert::SfuParallelChannel all(arch, cfg);
        auto r2 = all.transmit(bench::payload(1024));

        GPUCC_ASSERT(r0.report.errorFree() && r1.report.errorFree() &&
                         r2.report.errorFree(),
                     "Table 3 requires error-free channels");

        t.row({arch.name, bench::vsPaper(r0.bandwidthBps, paper[i][0]),
               bench::vsPaper(r1.bandwidthBps, paper[i][1]),
               bench::vsPaper(r2.bandwidthBps, paper[i][2])});
        ++i;
    }
    t.print();
    std::printf("Contention is isolated per warp scheduler, so each "
                "scheduler carries an independent\nbit; each SM carries "
                "an independent channel instance on top.\n");

    // Extension: Section 7.1 suggests synchronizing the other channels
    // too; the persistent synchronized SFU channel removes the per-bit
    // launch overhead.
    Table s("extension: synchronized SFU channel (persistent kernels)");
    s.header({"GPU", "bandwidth", "speedup over baseline", "errors"});
    int j = 0;
    const double baselinePaper[] = {21e3, 24e3, 28e3};
    for (const auto &arch : gpu::allArchitectures()) {
        covert::SyncSfuChannel ch(arch);
        auto r = ch.transmit(bench::payload(256));
        s.row({arch.name, fmtKbps(r.bandwidthBps),
               fmtDouble(r.bandwidthBps / baselinePaper[j], 1) + "x",
               fmtDouble(100.0 * r.report.errorRate(), 2) + " %"});
        ++j;
    }
    s.print();
    return 0;
}

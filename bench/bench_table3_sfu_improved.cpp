/**
 * @file
 * Table 3: improved SFU covert-channel bandwidth. Columns: baseline,
 * parallel through warp schedulers, parallel through warp schedulers
 * and SMs. Paper rows:
 *   Fermi   21 / 28 Kbps / 380 Kbps
 *   Kepler  24 / 84 Kbps / 1.2 Mbps
 *   Maxwell 28 / 100 Kbps / 1.3 Mbps
 *
 * Measurement bodies are the verify/scenarios helpers shared with the
 * conformance suite, run here at the paper's full payload sizes. Every
 * (GPU, column) cell — including the synchronized-SFU extension table
 * — is an independent simulation, run in parallel through SweepRunner
 * and printed in order afterwards.
 */

#include <functional>

#include "bench_util.h"
#include "sim/exec/sweep_runner.h"

using namespace gpucc;
using verify::ChannelMeasurement;

int
main(int argc, char **argv)
{
    bench::JsonSink::instance().configure("table3_sfu_improved", argc,
                                          argv);
    bench::banner("Table 3: improved SFU channels",
                  "Section 7.2, Table 3");

    const char *paper[][3] = {
        {"21 Kbps", "28 Kbps", "380 Kbps"},
        {"24 Kbps", "84 Kbps", "1.2 Mbps"},
        {"28 Kbps", "100 Kbps", "1.3 Mbps"},
    };

    const auto archs = gpu::allArchitectures();

    // Row-major (GPU x 3 columns) cells, then one extension cell per GPU.
    std::vector<std::function<ChannelMeasurement()>> jobs;
    for (const auto &arch : archs) {
        jobs.push_back(
            [&arch] { return verify::measureSfuBaseline(arch, 64); });
        jobs.push_back([&arch] {
            return verify::measureSfuParallel(arch, 128, false);
        });
        jobs.push_back([&arch] {
            return verify::measureSfuParallel(arch, 1024, true);
        });
    }
    for (const auto &arch : archs) {
        jobs.push_back(
            [&arch] { return verify::measureSyncSfu(arch, 256); });
    }

    sim::exec::SweepRunner runner;
    auto results = runner.runSweep(
        jobs, [](const std::function<ChannelMeasurement()> &job) {
            return job();
        });

    Table t("Improved SFU channel bandwidth (all error-free)");
    t.header({"GPU", "Baseline", "Parallel (warp schedulers)",
              "Parallel (schedulers x SMs)"});
    for (std::size_t i = 0; i < archs.size(); ++i) {
        const ChannelMeasurement *row = &results[i * 3];
        GPUCC_ASSERT(row[0].errorFree && row[1].errorFree &&
                         row[2].errorFree,
                     "Table 3 requires error-free channels");
        t.row({archs[i].name, bench::vsPaper(row[0].bps, paper[i][0]),
               bench::vsPaper(row[1].bps, paper[i][1]),
               bench::vsPaper(row[2].bps, paper[i][2])});
    }
    t.print();
    bench::JsonSink::instance().add(t);
    std::printf("Contention is isolated per warp scheduler, so each "
                "scheduler carries an independent\nbit; each SM carries "
                "an independent channel instance on top.\n");

    // Extension: Section 7.1 suggests synchronizing the other channels
    // too; the persistent synchronized SFU channel removes the per-bit
    // launch overhead.
    Table s("extension: synchronized SFU channel (persistent kernels)");
    s.header({"GPU", "bandwidth", "speedup over baseline", "errors"});
    const double baselinePaper[] = {21e3, 24e3, 28e3};
    for (std::size_t j = 0; j < archs.size(); ++j) {
        const ChannelMeasurement &r = results[archs.size() * 3 + j];
        s.row({archs[j].name, fmtKbps(r.bps),
               fmtDouble(r.bps / baselinePaper[j], 1) + "x",
               fmtDouble(100.0 * r.errorRate, 2) + " %"});
    }
    s.print();
    bench::JsonSink::instance().add(s);
    bench::JsonSink::instance().write();
    return 0;
}

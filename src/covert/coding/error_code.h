/**
 * @file
 * Error-correcting codes for covert channels.
 *
 * Section 8 lists "transmit error correcting codes with the data
 * (sacrificing some of the bandwidth)" as the alternative to exclusive
 * co-location; the paper does not pursue it. These coders implement
 * that alternative:
 *
 *  - RepetitionCode(k): each bit sent k times back to back, majority
 *    decode. Cheap, but bursts of interference hit all copies of the
 *    same bit.
 *  - InterleavedRepetitionCode(k): the whole message sent k times,
 *    majority across copies — a burst corrupts different bits in each
 *    copy, so burst noise (the kind real interferers produce) is
 *    handled far better at the same rate.
 *  - Hamming74Code: classic Hamming(7,4), corrects one flipped bit per
 *    7-bit block.
 */

#ifndef GPUCC_COVERT_CODING_ERROR_CODE_H
#define GPUCC_COVERT_CODING_ERROR_CODE_H

#include <memory>
#include <string>

#include "common/bitstream.h"
#include "covert/channel.h"

namespace gpucc::covert
{

/** Interface of a bit-level error-correcting code. */
class ErrorCode
{
  public:
    virtual ~ErrorCode() = default;

    /** Name for tables. */
    virtual std::string name() const = 0;

    /** Expand @p payload into the transmitted stream. */
    virtual BitVec encode(const BitVec &payload) const = 0;

    /**
     * Recover the payload from @p received (same length encode()
     * produced; shorter input decodes the prefix).
     *
     * @param payloadBits Number of payload bits expected.
     */
    virtual BitVec decode(const BitVec &received,
                          std::size_t payloadBits) const = 0;

    /** Coded bits transmitted per payload bit. */
    virtual double rateOverhead() const = 0;
};

/** k-fold bit-adjacent repetition with majority decode. */
class RepetitionCode : public ErrorCode
{
  public:
    explicit RepetitionCode(unsigned k);

    std::string name() const override;
    BitVec encode(const BitVec &payload) const override;
    BitVec decode(const BitVec &received,
                  std::size_t payloadBits) const override;
    double rateOverhead() const override { return k; }

  private:
    unsigned k;
};

/** k-fold whole-message repetition with per-bit majority across copies. */
class InterleavedRepetitionCode : public ErrorCode
{
  public:
    explicit InterleavedRepetitionCode(unsigned k);

    std::string name() const override;
    BitVec encode(const BitVec &payload) const override;
    BitVec decode(const BitVec &received,
                  std::size_t payloadBits) const override;
    double rateOverhead() const override { return k; }

  private:
    unsigned k;
};

/** Hamming(7,4): single-error correction per 7-bit block. */
class Hamming74Code : public ErrorCode
{
  public:
    std::string name() const override { return "Hamming(7,4)"; }
    BitVec encode(const BitVec &payload) const override;
    BitVec decode(const BitVec &received,
                  std::size_t payloadBits) const override;
    double rateOverhead() const override { return 7.0 / 4.0; }
};

/**
 * Transmit @p payload through @p channel under @p coder: encode, send,
 * decode, and re-account the result against the *payload* (bandwidth =
 * payload bits / wall window; errors measured after correction).
 */
template <typename Channel>
ChannelResult
transmitCoded(Channel &channel, const ErrorCode &coder,
              const BitVec &payload)
{
    BitVec coded = coder.encode(payload);
    ChannelResult raw = channel.transmit(coded);
    ChannelResult res = raw;
    res.channelName += " + " + coder.name();
    res.sent = payload;
    res.received = coder.decode(raw.received, payload.size());
    res.report = compareBits(res.sent, res.received);
    res.bandwidthBps = raw.seconds > 0.0
                           ? static_cast<double>(payload.size()) /
                                 raw.seconds
                           : 0.0;
    return res;
}

} // namespace gpucc::covert

#endif // GPUCC_COVERT_CODING_ERROR_CODE_H

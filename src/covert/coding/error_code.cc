#include "covert/coding/error_code.h"

#include "common/log.h"

namespace gpucc::covert
{

RepetitionCode::RepetitionCode(unsigned k_) : k(k_)
{
    GPUCC_ASSERT(k >= 1 && k % 2 == 1,
                 "repetition factor must be odd (majority decode)");
}

std::string
RepetitionCode::name() const
{
    return strfmt("repetition x%u", k);
}

BitVec
RepetitionCode::encode(const BitVec &payload) const
{
    BitVec out;
    out.reserve(payload.size() * k);
    for (std::uint8_t b : payload) {
        for (unsigned i = 0; i < k; ++i)
            out.push_back(b);
    }
    return out;
}

BitVec
RepetitionCode::decode(const BitVec &received,
                       std::size_t payloadBits) const
{
    BitVec out;
    out.reserve(payloadBits);
    for (std::size_t i = 0; i < payloadBits; ++i) {
        unsigned ones = 0, seen = 0;
        for (unsigned c = 0; c < k; ++c) {
            std::size_t idx = i * k + c;
            if (idx < received.size()) {
                ones += received[idx] & 1;
                ++seen;
            }
        }
        out.push_back(seen && 2 * ones > seen ? 1 : 0);
    }
    return out;
}

InterleavedRepetitionCode::InterleavedRepetitionCode(unsigned k_) : k(k_)
{
    GPUCC_ASSERT(k >= 1 && k % 2 == 1,
                 "repetition factor must be odd (majority decode)");
}

std::string
InterleavedRepetitionCode::name() const
{
    return strfmt("interleaved repetition x%u", k);
}

BitVec
InterleavedRepetitionCode::encode(const BitVec &payload) const
{
    BitVec out;
    out.reserve(payload.size() * k);
    for (unsigned c = 0; c < k; ++c)
        out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

BitVec
InterleavedRepetitionCode::decode(const BitVec &received,
                                  std::size_t payloadBits) const
{
    BitVec out;
    out.reserve(payloadBits);
    for (std::size_t i = 0; i < payloadBits; ++i) {
        unsigned ones = 0, seen = 0;
        for (unsigned c = 0; c < k; ++c) {
            std::size_t idx = c * payloadBits + i;
            if (idx < received.size()) {
                ones += received[idx] & 1;
                ++seen;
            }
        }
        out.push_back(seen && 2 * ones > seen ? 1 : 0);
    }
    return out;
}

namespace
{

/** Encode one nibble into a Hamming(7,4) block: p1 p2 d1 p3 d2 d3 d4. */
void
hammingEncodeNibble(const std::uint8_t d[4], BitVec &out)
{
    std::uint8_t p1 = d[0] ^ d[1] ^ d[3];
    std::uint8_t p2 = d[0] ^ d[2] ^ d[3];
    std::uint8_t p3 = d[1] ^ d[2] ^ d[3];
    out.push_back(p1);
    out.push_back(p2);
    out.push_back(d[0]);
    out.push_back(p3);
    out.push_back(d[1]);
    out.push_back(d[2]);
    out.push_back(d[3]);
}

/** Decode one block with single-error correction into 4 data bits. */
void
hammingDecodeBlock(std::uint8_t b[7], BitVec &out)
{
    // Syndrome over positions 1..7.
    std::uint8_t s1 = b[0] ^ b[2] ^ b[4] ^ b[6];
    std::uint8_t s2 = b[1] ^ b[2] ^ b[5] ^ b[6];
    std::uint8_t s3 = b[3] ^ b[4] ^ b[5] ^ b[6];
    unsigned syndrome = static_cast<unsigned>(s1) |
                        (static_cast<unsigned>(s2) << 1) |
                        (static_cast<unsigned>(s3) << 2);
    if (syndrome != 0)
        b[syndrome - 1] ^= 1;
    out.push_back(b[2]);
    out.push_back(b[4]);
    out.push_back(b[5]);
    out.push_back(b[6]);
}

} // namespace

BitVec
Hamming74Code::encode(const BitVec &payload) const
{
    BitVec out;
    out.reserve((payload.size() + 3) / 4 * 7);
    for (std::size_t i = 0; i < payload.size(); i += 4) {
        std::uint8_t d[4] = {0, 0, 0, 0};
        for (std::size_t j = 0; j < 4 && i + j < payload.size(); ++j)
            d[j] = payload[i + j] & 1;
        hammingEncodeNibble(d, out);
    }
    return out;
}

BitVec
Hamming74Code::decode(const BitVec &received,
                      std::size_t payloadBits) const
{
    BitVec out;
    out.reserve(payloadBits);
    for (std::size_t i = 0; i + 7 <= received.size() &&
                            out.size() < payloadBits;
         i += 7) {
        std::uint8_t b[7];
        for (std::size_t j = 0; j < 7; ++j)
            b[j] = received[i + j] & 1;
        hammingDecodeBlock(b, out);
    }
    out.resize(payloadBits, 0);
    return out;
}

} // namespace gpucc::covert

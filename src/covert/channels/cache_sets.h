/**
 * @file
 * Cache-set address generation for the prime+probe channels.
 *
 * The Section 4 attack builds, per application, an array whose strided
 * accesses all hash into one chosen cache set: stride = numSets * line,
 * with as many lines as the set has ways. Both applications use the
 * same stride from their own base, so their lines collide in the shared
 * cache set without sharing any memory.
 */

#ifndef GPUCC_COVERT_CHANNELS_CACHE_SETS_H
#define GPUCC_COVERT_CHANNELS_CACHE_SETS_H

#include <vector>

#include "gpu/arch_params.h"
#include "mem/cache_geometry.h"

namespace gpucc::covert
{

/** Addresses (one per way) that fill set @p set of @p geom from @p base.
 *  @p base must be aligned to the set stride. */
inline std::vector<Addr>
setFillingAddrs(const mem::CacheGeometry &geom, Addr base, unsigned set)
{
    std::vector<Addr> addrs;
    Addr stride = geom.numSets() * geom.lineBytes;
    for (unsigned way = 0; way < geom.ways; ++way)
        addrs.push_back(base + Addr(set) * geom.lineBytes +
                        Addr(way) * stride);
    return addrs;
}

/** Alignment a base needs so set indices are preserved. */
inline std::size_t
setStride(const mem::CacheGeometry &geom)
{
    return geom.numSets() * geom.lineBytes;
}

/** Byte footprint of one application's probe array over @p geom. */
inline std::size_t
probeArrayBytes(const mem::CacheGeometry &geom)
{
    return geom.sizeBytes;
}

} // namespace gpucc::covert

#endif // GPUCC_COVERT_CHANNELS_CACHE_SETS_H

/**
 * @file
 * Baseline L2 constant-cache covert channel (Section 4.3).
 *
 * Used when the two kernels cannot co-reside on one SM: the L2 constant
 * cache is shared device-wide. Trojan and spy each use one block (the
 * round-robin block scheduler puts them on different SMs), fill one L2
 * set with stride numSets*line = 4096 B, and the spy decodes from its
 * per-access latency: L2 hits against L2 misses served by device
 * memory. The paper uses 2 contention iterations per bit for this
 * channel.
 */

#ifndef GPUCC_COVERT_CHANNELS_L2_CONST_CHANNEL_H
#define GPUCC_COVERT_CHANNELS_L2_CONST_CHANNEL_H

#include "covert/channel.h"

namespace gpucc::covert
{

/** Launch-per-bit prime+probe channel on the shared L2 constant cache. */
class L2ConstChannel : public LaunchPerBitChannel
{
  public:
    L2ConstChannel(const gpu::ArchParams &arch,
                   LaunchPerBitConfig cfg = makeDefaultConfig());

    /** Paper default: 2 iterations for the L2 channel. */
    static LaunchPerBitConfig
    makeDefaultConfig()
    {
        LaunchPerBitConfig cfg;
        cfg.iterations = 2;
        return cfg;
    }

  protected:
    void setup() override;
    gpu::KernelLaunch makeTrojanKernel(bool bit) override;
    gpu::KernelLaunch makeSpyKernel() override;
    double decodeMetric(const gpu::KernelInstance &spy) override;

  private:
    unsigned set = 0;
    std::vector<Addr> trojanAddrs;
    std::vector<Addr> spyAddrs;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_CHANNELS_L2_CONST_CHANNEL_H

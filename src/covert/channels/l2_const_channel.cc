#include "covert/channels/l2_const_channel.h"

#include "common/log.h"
#include "covert/channels/cache_sets.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

L2ConstChannel::L2ConstChannel(const gpu::ArchParams &arch,
                               LaunchPerBitConfig cfg)
    : LaunchPerBitChannel(arch, cfg, "L2 constant cache")
{
}

void
L2ConstChannel::setup()
{
    const auto &geom = arch().constMem.l2;
    auto &dev = harness().device();
    std::size_t align = setStride(geom);
    // As in the L1 channel, the trojan walks ways+1 lines of the target
    // set: the scan thrashes under LRU, so the prime keeps running (and
    // keeps evicting) across the spy's whole sampling window instead of
    // settling into cache hits after the first pass.
    Addr trojanBase = dev.allocConst(2 * probeArrayBytes(geom), align);
    Addr spyBase = dev.allocConst(probeArrayBytes(geom), align);
    trojanAddrs = setFillingAddrs(geom, trojanBase, set);
    trojanAddrs.push_back(
        setFillingAddrs(geom, trojanBase + probeArrayBytes(geom), set)
            .front());
    spyAddrs = setFillingAddrs(geom, spyBase, set);
}

gpu::KernelLaunch
L2ConstChannel::makeTrojanKernel(bool bit)
{
    gpu::KernelLaunch k;
    k.name = "l2-trojan";
    // A single block: the spy's block lands on a different SM, making
    // this the inter-SM variant of the attack.
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = warpSize;
    unsigned iters = config().iterations;
    auto addrs = trojanAddrs;
    k.body = [bit, iters, addrs](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (bit) {
            // With only 2 spy samples per bit (the paper's L2 setting)
            // and no handshake, the trojan must keep the set evicted
            // across the spy's whole spaced sampling window plus the
            // launch skew, hence the long prime.
            for (unsigned i = 0; i < 9 * iters; ++i)
                co_await ctx.constLoadSeq(addrs);
        }
        co_return;
    };
    return k;
}

gpu::KernelLaunch
L2ConstChannel::makeSpyKernel()
{
    gpu::KernelLaunch k;
    k.name = "l2-spy";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = warpSize;
    unsigned iters = config().iterations;
    auto addrs = spyAddrs;
    k.body = [iters, addrs](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        std::uint64_t total = 0;
        for (unsigned i = 0; i < iters; ++i) {
            total += co_await ctx.constLoadSeq(addrs);
            // Space the samples: without a handshake the spy cannot know
            // when the trojan's eviction lands, so the few samples are
            // spread across the expected contention window.
            if (i + 1 < iters)
                co_await ctx.sleep(4000);
        }
        ctx.out(total);
        co_return;
    };
    return k;
}

double
L2ConstChannel::decodeMetric(const gpu::KernelInstance &spy)
{
    const auto &out = spy.out(0);
    GPUCC_ASSERT(!out.empty(), "spy produced no measurement");
    double accesses = static_cast<double>(config().iterations) *
                      static_cast<double>(spyAddrs.size());
    return static_cast<double>(out[0]) / accesses;
}

} // namespace gpucc::covert

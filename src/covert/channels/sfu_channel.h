/**
 * @file
 * Baseline functional-unit (SFU) covert channel (Section 5.2).
 *
 * Trojan and spy co-reside on every SM. The spy continuously issues
 * __sinf and times each operation; when the trojan also issues __sinf,
 * the combined warp count on the spy's warp scheduler crosses the SFU
 * issue-port saturation point and the spy's per-op latency steps up
 * (41->48 Fermi, 18->24 Kepler, 15->20 Maxwell). The per-architecture
 * warp counts (3/12/10 per block) are the minimum that makes the step
 * observable, straight from the Figure 6 curves.
 */

#ifndef GPUCC_COVERT_CHANNELS_SFU_CHANNEL_H
#define GPUCC_COVERT_CHANNELS_SFU_CHANNEL_H

#include "covert/channel.h"
#include "covert/channels/fu_channel_plan.h"

namespace gpucc::covert
{

/** Launch-per-bit contention channel on the special function units —
 *  or, given a derived FuChannelPlan, on any functional-unit class. */
class SfuChannel : public LaunchPerBitChannel
{
  public:
    /**
     * @param arch Target architecture.
     * @param cfg Harness configuration. An iteration count of 0 selects
     *            the per-architecture default (tuned to the paper's
     *            21 / 24 / 28 Kbps baselines).
     * @param op Operation class to contend on (default __sinf).
     */
    SfuChannel(const gpu::ArchParams &arch,
               LaunchPerBitConfig cfg = makeDefaultConfig(),
               gpu::OpClass op = gpu::OpClass::Sinf);

    /**
     * Build a channel from a derived plan (Section 5.2 generalized to
     * any functional unit). Fatal if the plan is infeasible.
     */
    SfuChannel(const gpu::ArchParams &arch, const FuChannelPlan &plan,
               LaunchPerBitConfig cfg = makeDefaultConfig());

    /** Config requesting the per-architecture iteration default. */
    static LaunchPerBitConfig
    makeDefaultConfig()
    {
        LaunchPerBitConfig cfg;
        cfg.iterations = 0;
        return cfg;
    }

    /** Per-architecture default iteration count. */
    static unsigned defaultIterations(const gpu::ArchParams &arch);

    /** Warps per block each party launches on this architecture. */
    static unsigned warpsPerBlock(const gpu::ArchParams &arch);

  protected:
    gpu::KernelLaunch makeTrojanKernel(bool bit) override;
    gpu::KernelLaunch makeSpyKernel() override;
    double decodeMetric(const gpu::KernelInstance &spy) override;

  private:
    gpu::OpClass op;
    unsigned spyWarps;
    unsigned trojanWarps;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_CHANNELS_SFU_CHANNEL_H

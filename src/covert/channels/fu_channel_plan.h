/**
 * @file
 * Automatic functional-unit channel construction.
 *
 * Section 5.2 builds the __sinf channel by reading the Figure 6 curves:
 * pick a spy warp count inside the flat region and a trojan warp count
 * that lands the combined load on a visible latency step. "Similar
 * channels can be constructed using other resources" — this module
 * automates exactly that derivation for any operation class: it runs
 * the characterization sweep, finds the contention onset, sizes the spy
 * and trojan, and predicts the two symbol latencies. Operations whose
 * units never saturate (single-precision Add/Mul on the K40C's 192 SP
 * cores) are correctly reported as infeasible carriers.
 */

#ifndef GPUCC_COVERT_CHANNELS_FU_CHANNEL_PLAN_H
#define GPUCC_COVERT_CHANNELS_FU_CHANNEL_PLAN_H

#include "gpu/arch_params.h"

namespace gpucc::covert
{

/** A derived functional-unit channel configuration. */
struct FuChannelPlan
{
    gpu::OpClass op = gpu::OpClass::Sinf;
    bool feasible = false;           //!< the op's units can saturate
    unsigned spyWarpsPerBlock = 0;   //!< inside the flat region
    unsigned trojanWarpsPerBlock = 0; //!< lands on a latency step
    double predictedBaseCycles = 0.0;     //!< "0" symbol latency
    double predictedContendedCycles = 0.0; //!< "1" symbol latency
    unsigned onsetWarps = 0;         //!< first rising point of the curve
};

/**
 * Derive a channel plan for @p op on @p arch from the latency-vs-warps
 * characterization (the attack's offline step).
 */
FuChannelPlan deriveFuChannelPlan(const gpu::ArchParams &arch,
                                  gpu::OpClass op);

} // namespace gpucc::covert

#endif // GPUCC_COVERT_CHANNELS_FU_CHANNEL_PLAN_H

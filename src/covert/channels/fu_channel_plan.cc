#include "covert/channels/fu_channel_plan.h"

#include <algorithm>

#include "common/log.h"
#include "covert/characterize/fu_characterizer.h"

namespace gpucc::covert
{

FuChannelPlan
deriveFuChannelPlan(const gpu::ArchParams &arch, gpu::OpClass op)
{
    FuChannelPlan plan;
    plan.op = op;
    if (!arch.supports(op))
        return plan; // infeasible: no units at all

    FuCharacterizer fc(arch);
    auto curve = fc.curve(op, 32, 96);
    unsigned onset = FuCharacterizer::contentionOnset(curve, 0.12);
    plan.onsetWarps = onset;
    if (onset == 0)
        return plan; // flat over the whole sweep: no carrier

    unsigned n = arch.schedulersPerSm;
    auto roundDown = [n](unsigned w) { return std::max(n, w - w % n); };
    auto roundUp = [n](unsigned w) { return ((w + n - 1) / n) * n; };

    // Spy inside the flat region with some margin; trojan pushes the
    // combined count three scheduler rows past the onset — short-latency
    // ops (e.g. Add at ~6 cycles) need the extra rows because their
    // absolute per-step contrast is only a cycle or two.
    unsigned spy = onset > n + 1 ? roundDown((onset - 1) / 2 + 1) : n;
    spy = std::max(spy, n);
    unsigned trojan = roundUp(std::max(onset + 3 * n, spy + n) - spy);

    if (spy + trojan > arch.limits.maxWarps)
        return plan;

    plan.spyWarpsPerBlock = spy;
    plan.trojanWarpsPerBlock = trojan;
    plan.predictedBaseCycles = curve[spy - 1].warp0AvgCycles;
    plan.predictedContendedCycles =
        curve[std::min<unsigned>(spy + trojan, 32) - 1].warp0AvgCycles;

    // The channel needs a decodable contrast between the symbols.
    plan.feasible = plan.predictedContendedCycles >
                    plan.predictedBaseCycles * 1.12;
    return plan;
}

} // namespace gpucc::covert

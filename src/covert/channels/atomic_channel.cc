#include "covert/channels/atomic_channel.h"

#include "common/log.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

namespace
{
/** Per-application array footprint (covers 60+ warp slabs). */
constexpr std::size_t arrayBytes = 1024 * 1024;
/** Per-warp slab inside the array (keeps warps disjoint). */
constexpr Addr warpSlab = 16 * 1024;
/** The trojan storms this many times longer than the spy measures. */
constexpr unsigned stormFactor = 6;
} // namespace

const char *
atomicScenarioName(AtomicScenario s)
{
    switch (s) {
      case AtomicScenario::FixedPerThread:
        return "Scenario 1 (fixed per thread)";
      case AtomicScenario::StridedCoalesced:
        return "Scenario 2 (strided, coalesced)";
      case AtomicScenario::ConsecutiveUncoalesced:
        return "Scenario 3 (consecutive, un-coalesced)";
    }
    return "?";
}

AtomicChannel::AtomicChannel(const gpu::ArchParams &arch,
                             AtomicScenario scenario, LaunchPerBitConfig cfg)
    : LaunchPerBitChannel(arch, cfg,
                          strfmt("global atomics, %s",
                                 atomicScenarioName(scenario))),
      scen(scenario)
{
}

std::vector<Addr>
AtomicChannel::laneAddrs(AtomicScenario scenario, Addr base,
                         unsigned warpIdx, unsigned iter)
{
    std::vector<Addr> lanes;
    lanes.reserve(warpSize);
    Addr wbase = base + Addr(warpIdx) * warpSlab;
    for (unsigned t = 0; t < static_cast<unsigned>(warpSize); ++t) {
        switch (scenario) {
          case AtomicScenario::FixedPerThread:
            // One fixed word per thread; the warp's ops coalesce into a
            // single segment.
            lanes.push_back(wbase + Addr(t) * 4);
            break;
          case AtomicScenario::StridedCoalesced:
            // The warp walks one 128-byte segment per operation.
            lanes.push_back(wbase + (Addr(iter) * 128) % (warpSlab / 2) +
                            Addr(t) * 4);
            break;
          case AtomicScenario::ConsecutiveUncoalesced:
            // Each thread walks consecutive words in its own private
            // region: 32 segments per warp operation.
            lanes.push_back(wbase + Addr(t) * 512 + (Addr(iter) * 4) % 512);
            break;
        }
    }
    return lanes;
}

void
AtomicChannel::setup()
{
    auto &dev = harness().device();
    trojanBase = dev.allocGlobal(arrayBytes, 4096);
    spyBase = dev.allocGlobal(arrayBytes, 4096);
}

gpu::KernelLaunch
AtomicChannel::makeTrojanKernel(bool bit)
{
    gpu::KernelLaunch k;
    k.name = "atomic-trojan";
    // Four warps per SM: atomic chains are latency-bound, so the storm
    // needs concurrency to saturate the per-partition atomic units.
    k.config.gridBlocks = arch().numSms;
    k.config.threadsPerBlock = 4 * warpSize;
    unsigned iters = config().iterations * stormFactor;
    AtomicScenario s = scen;
    Addr base = trojanBase;
    k.body = [bit, iters, s, base](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (bit) {
            unsigned w = ctx.globalWarpId();
            for (unsigned i = 0; i < iters; ++i)
                co_await ctx.atomicAdd(laneAddrs(s, base, w, i), 1);
        }
        co_return;
    };
    return k;
}

gpu::KernelLaunch
AtomicChannel::makeSpyKernel()
{
    gpu::KernelLaunch k;
    k.name = "atomic-spy";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = warpSize;
    unsigned iters = config().iterations;
    AtomicScenario s = scen;
    Addr base = spyBase;
    k.body = [iters, s, base](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        std::uint64_t total = 0;
        for (unsigned i = 0; i < iters; ++i)
            total += co_await ctx.atomicAdd(laneAddrs(s, base, 0, i), 1);
        ctx.out(total);
        co_return;
    };
    return k;
}

double
AtomicChannel::decodeMetric(const gpu::KernelInstance &spy)
{
    const auto &out = spy.out(0);
    GPUCC_ASSERT(!out.empty(), "spy produced no measurement");
    return static_cast<double>(out[0]) /
           static_cast<double>(config().iterations);
}

unsigned
AtomicChannel::autoTuneIterations()
{
    // Probe increasing iteration counts with a short known pattern until
    // the decode is error-free and the symbol populations separate by a
    // comfortable margin; confirm the candidate on a random pattern
    // before accepting it.
    Rng rng(config().seed * 131 + 7);
    for (unsigned n : {8u, 12u, 16u, 24u, 32u, 48u, 64u}) {
        setIterations(n);
        ChannelResult r = transmit(alternatingBits(12));
        double gap = r.oneMetric.mean() - r.zeroMetric.mean();
        double spread = r.oneMetric.stddev() + r.zeroMetric.stddev();
        if (!r.report.errorFree() || gap <= 3.0 * (spread + 2.0))
            continue;
        ChannelResult verify = transmit(randomBits(96, rng));
        if (verify.report.errorFree())
            return n;
    }
    GPUCC_WARN("atomic channel auto-tune hit the iteration cap");
    return config().iterations;
}

} // namespace gpucc::covert

#include "covert/channels/sfu_channel.h"

#include <algorithm>

#include "common/log.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

SfuChannel::SfuChannel(const gpu::ArchParams &arch, LaunchPerBitConfig cfg,
                       gpu::OpClass op_)
    : LaunchPerBitChannel(arch, cfg, "SFU contention"), op(op_),
      spyWarps(warpsPerBlock(arch)), trojanWarps(warpsPerBlock(arch))
{
    if (cfg.iterations == 0)
        setIterations(defaultIterations(arch));
}

SfuChannel::SfuChannel(const gpu::ArchParams &arch,
                       const FuChannelPlan &plan, LaunchPerBitConfig cfg)
    : LaunchPerBitChannel(arch, cfg,
                          strfmt("FU contention (%s)",
                                 gpu::opClassName(plan.op))),
      op(plan.op), spyWarps(plan.spyWarpsPerBlock),
      trojanWarps(plan.trojanWarpsPerBlock)
{
    if (!plan.feasible) {
        GPUCC_FATAL("%s is not a feasible contention carrier on %s",
                    gpu::opClassName(plan.op), arch.name.c_str());
    }
    if (cfg.iterations == 0) {
        // Size the measurement window in *time*, not op count: short
        // ops need proportionally more iterations to span the launch
        // jitter that the overlap depends on.
        const auto &sinfT = arch.timing(gpu::OpClass::Sinf);
        double sinfBase = static_cast<double>(sinfT.latencyCycles) +
                          ticksToCyclesF(sinfT.occTicks);
        double scale = plan.predictedBaseCycles > 0.0
                           ? sinfBase / plan.predictedBaseCycles
                           : 1.0;
        scale = std::clamp(scale, 1.0, 4.0);
        setIterations(static_cast<unsigned>(defaultIterations(arch) *
                                            scale));
    }
}

unsigned
SfuChannel::defaultIterations(const gpu::ArchParams &arch)
{
    // The minimum iteration counts that give reliable decoding under
    // launch jitter on each architecture; they land the baseline
    // bandwidths on the paper's Section 5.2 numbers.
    switch (arch.generation) {
      case gpu::Generation::Fermi:
        return 620;
      case gpu::Generation::Kepler:
        return 800;
      case gpu::Generation::Maxwell:
        return 750;
    }
    return 500;
}

unsigned
SfuChannel::warpsPerBlock(const gpu::ArchParams &arch)
{
    // Section 5.2: 3 warps (Fermi), 12 (Kepler), 10 (Maxwell) per block
    // for each of the spy and the trojan.
    switch (arch.generation) {
      case gpu::Generation::Fermi:
        return 3;
      case gpu::Generation::Kepler:
        return 12;
      case gpu::Generation::Maxwell:
        return 10;
    }
    return 4;
}

gpu::KernelLaunch
SfuChannel::makeTrojanKernel(bool bit)
{
    gpu::KernelLaunch k;
    k.name = "sfu-trojan";
    k.config.gridBlocks = arch().numSms;
    k.config.threadsPerBlock = trojanWarps * warpSize;
    // The trojan runs 1.5x the spy's iterations so its contention window
    // covers the spy's whole measurement despite launch jitter.
    unsigned iters = config().iterations * 3 / 2;
    gpu::OpClass opc = op;
    k.body = [bit, iters, opc](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (bit) {
            for (unsigned i = 0; i < iters; ++i)
                co_await ctx.op(opc);
        }
        co_return;
    };
    return k;
}

gpu::KernelLaunch
SfuChannel::makeSpyKernel()
{
    gpu::KernelLaunch k;
    k.name = "sfu-spy";
    k.config.gridBlocks = arch().numSms;
    k.config.threadsPerBlock = spyWarps * warpSize;
    unsigned iters = config().iterations;
    gpu::OpClass opc = op;
    k.body = [iters, opc](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        std::uint64_t total = 0;
        for (unsigned i = 0; i < iters; ++i)
            total += co_await ctx.op(opc);
        if (ctx.warpInBlock() == 0)
            ctx.out(total);
        co_return;
    };
    return k;
}

double
SfuChannel::decodeMetric(const gpu::KernelInstance &spy)
{
    const auto &out = spy.out(0);
    GPUCC_ASSERT(!out.empty(), "spy produced no measurement");
    return static_cast<double>(out[0]) /
           static_cast<double>(config().iterations);
}

} // namespace gpucc::covert

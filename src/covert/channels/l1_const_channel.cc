#include "covert/channels/l1_const_channel.h"

#include "common/log.h"
#include "covert/channels/cache_sets.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

L1ConstChannel::L1ConstChannel(const gpu::ArchParams &arch,
                               LaunchPerBitConfig cfg)
    : LaunchPerBitChannel(arch, cfg, "L1 constant cache")
{
}

void
L1ConstChannel::setup()
{
    const auto &geom = arch().constMem.l1;
    auto &dev = harness().device();
    std::size_t align = setStride(geom);
    // The trojan walks ways+1 lines of the target set: one more
    // candidate than the set holds thrashes under LRU, so the prime
    // keeps missing — it stays active across the spy's whole probing
    // window and keeps evicting the spy's lines for the entire bit
    // period, instead of settling into hits after the first pass.
    trojanBase = dev.allocConst(2 * probeArrayBytes(geom), align);
    spyBase = dev.allocConst(probeArrayBytes(geom), align);
    trojanAddrs = setFillingAddrs(geom, trojanBase, set);
    trojanAddrs.push_back(
        setFillingAddrs(geom, trojanBase + probeArrayBytes(geom), set)
            .front());
    spyAddrs = setFillingAddrs(geom, spyBase, set);
}

gpu::KernelLaunch
L1ConstChannel::makeTrojanKernel(bool bit)
{
    gpu::KernelLaunch k;
    k.name = "l1-trojan";
    k.config.gridBlocks = arch().numSms;
    k.config.threadsPerBlock = warpSize;
    // The prime must cover the spy's probing window plus the launch
    // lead and jitter; Fermi's slower constant hierarchy needs extra.
    unsigned iters = config().iterations + config().iterations / 4;
    if (arch().generation == gpu::Generation::Fermi)
        iters += config().iterations / 4;
    auto addrs = trojanAddrs;
    k.body = [bit, iters, addrs](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (bit) {
            for (unsigned i = 0; i < iters; ++i)
                co_await ctx.constLoadSeq(addrs);
        }
        co_return;
    };
    return k;
}

gpu::KernelLaunch
L1ConstChannel::makeSpyKernel()
{
    gpu::KernelLaunch k;
    k.name = "l1-spy";
    k.config.gridBlocks = arch().numSms;
    k.config.threadsPerBlock = warpSize;
    unsigned iters = config().iterations;
    auto addrs = spyAddrs;
    k.body = [iters, addrs](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        std::uint64_t total = 0;
        for (unsigned i = 0; i < iters; ++i)
            total += co_await ctx.constLoadSeq(addrs);
        ctx.out(total);
        co_return;
    };
    return k;
}

double
L1ConstChannel::decodeMetric(const gpu::KernelInstance &spy)
{
    // Average per-access latency seen by block 0's warp.
    const auto &out = spy.out(0);
    GPUCC_ASSERT(!out.empty(), "spy produced no measurement");
    double accesses = static_cast<double>(config().iterations) *
                      static_cast<double>(spyAddrs.size());
    return static_cast<double>(out[0]) / accesses;
}

} // namespace gpucc::covert

/**
 * @file
 * Baseline L1 constant-cache covert channel (Section 4.2).
 *
 * Trojan and spy each launch one block per SM (guaranteeing
 * co-residency under the leftover policy). To send 1 the trojan
 * repeatedly fills one L1 set with its own lines, evicting the spy's;
 * to send 0 it stays idle. The spy times strided loads of its own
 * set-filling array: ~49 cycles per access (hits) decode as 0, ~112
 * cycles (L1 misses served by the L2) decode as 1. One kernel pair is
 * launched per bit, using stream synchronization to keep the pair
 * aligned — the overhead that Section 7's synchronized channel removes.
 */

#ifndef GPUCC_COVERT_CHANNELS_L1_CONST_CHANNEL_H
#define GPUCC_COVERT_CHANNELS_L1_CONST_CHANNEL_H

#include "covert/channel.h"

namespace gpucc::covert
{

/** Launch-per-bit prime+probe channel on the L1 constant cache. */
class L1ConstChannel : public LaunchPerBitChannel
{
  public:
    /**
     * @param arch Target architecture.
     * @param cfg Harness configuration; iterations defaults to the
     *            paper's 20 for the L1 channel.
     */
    L1ConstChannel(const gpu::ArchParams &arch,
                   LaunchPerBitConfig cfg = {});

    /** Cache set used for communication. */
    unsigned communicationSet() const { return set; }

  protected:
    void setup() override;
    gpu::KernelLaunch makeTrojanKernel(bool bit) override;
    gpu::KernelLaunch makeSpyKernel() override;
    double decodeMetric(const gpu::KernelInstance &spy) override;

  private:
    unsigned set = 0;
    Addr trojanBase = 0;
    Addr spyBase = 0;
    std::vector<Addr> trojanAddrs;
    std::vector<Addr> spyAddrs;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_CHANNELS_L1_CONST_CHANNEL_H

/**
 * @file
 * Global-memory atomic covert channel (Section 6).
 *
 * Normal loads/stores cannot create measurable contention against the
 * very wide DRAM bandwidth, so the channel funnels traffic through the
 * atomic units. The paper defines three access scenarios:
 *
 *  1. each thread hammers one fixed address (addresses differ per
 *     thread);
 *  2. strided addresses, warp-coalesced (one transaction per warp op,
 *     walking across memory);
 *  3. consecutive addresses per thread, un-coalesced (32 transactions
 *     per warp op) — the slowest channel, because poor coalescing
 *     defeats the fast L2 atomic path.
 *
 * The trojan storms atomics from every SM to send 1; the spy times its
 * own atomics. Iterations are auto-tuned to the minimum count that
 * separates the symbols, mirroring the paper's methodology.
 */

#ifndef GPUCC_COVERT_CHANNELS_ATOMIC_CHANNEL_H
#define GPUCC_COVERT_CHANNELS_ATOMIC_CHANNEL_H

#include "covert/channel.h"

namespace gpucc::covert
{

/** The three access scenarios of Figure 10. */
enum class AtomicScenario
{
    FixedPerThread,      //!< scenario 1
    StridedCoalesced,    //!< scenario 2
    ConsecutiveUncoalesced, //!< scenario 3
};

/** @return printable scenario name matching the paper's x axis. */
const char *atomicScenarioName(AtomicScenario s);

/** Launch-per-bit contention channel on the global atomic units. */
class AtomicChannel : public LaunchPerBitChannel
{
  public:
    AtomicChannel(const gpu::ArchParams &arch, AtomicScenario scenario,
                  LaunchPerBitConfig cfg = makeDefaultConfig());

    /**
     * Find the minimum iteration count whose calibration separation is
     * robust (paper: "we tune the number of iterations to the minimum
     * that will cause observable contention"). Applies the result to
     * this channel and returns it.
     */
    unsigned autoTuneIterations();

    /** Scenario accessor. */
    AtomicScenario scenario() const { return scen; }

    static LaunchPerBitConfig
    makeDefaultConfig()
    {
        LaunchPerBitConfig cfg;
        cfg.iterations = 16;
        return cfg;
    }

    /** Per-lane addresses for iteration @p iter of @p scenario. */
    static std::vector<Addr> laneAddrs(AtomicScenario scenario, Addr base,
                                       unsigned warpIdx, unsigned iter);

  protected:
    void setup() override;
    gpu::KernelLaunch makeTrojanKernel(bool bit) override;
    gpu::KernelLaunch makeSpyKernel() override;
    double decodeMetric(const gpu::KernelInstance &spy) override;

  private:
    AtomicScenario scen;
    Addr trojanBase = 0;
    Addr spyBase = 0;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_CHANNELS_ATOMIC_CHANNEL_H

/**
 * @file
 * The Section 8 noise experiment: run the synchronized L1 channel while
 * Rodinia-like workloads execute on a third stream, with and without
 * the exclusive co-location defense.
 *
 * Without mitigation, the interfering workloads co-locate with the
 * channel under the leftover policy; the constant-memory walker evicts
 * the protocol's cache sets and corrupts bits. With mitigation — the
 * spy saturating shared memory, the trojan claiming none, and silent
 * helper kernels exhausting the leftover thread slots — every
 * interferer is starved until the channel completes, restoring
 * error-free communication.
 */

#ifndef GPUCC_COVERT_COLOCATION_NOISE_EXPERIMENT_H
#define GPUCC_COVERT_COLOCATION_NOISE_EXPERIMENT_H

#include "covert/channel.h"
#include "covert/sync/sync_channel.h"

namespace gpucc::covert
{

/** Outcome of one noise-experiment run. */
struct NoiseOutcome
{
    ChannelResult channel;        //!< channel result under the scenario
    unsigned interferersLaunched = 0;
    /**
     * Interferer blocks that were co-resident (same SM, overlapping in
     * time) with the spy's active communication block. Exclusive
     * co-location succeeds when this is zero: blocks may still run on
     * SMs the channel does not use, but none share the channel's SM.
     */
    unsigned coResidentInterfererBlocks = 0;
    bool exclusiveUsed = false;

    /** @return true when no interferer touched the channel's SM. */
    bool exclusionHeld() const { return coResidentInterfererBlocks == 0; }
};

/**
 * Run the synchronized L1 channel transmitting @p message while the
 * Rodinia-like mix runs on a third application's streams.
 *
 * @param arch Target architecture.
 * @param message Payload bits.
 * @param exclusive Apply the Section 8 exclusive co-location defense.
 * @param seed Experiment seed.
 * @param dataSetsPerSm Channel data sets per SM (Table 2 variants).
 * @param allSms Run the channel on every SM (the full-rate variant;
 *        the paper's exclusive co-location protects it on all SMs at
 *        once, keeping multi-Mbps rates under interference).
 */
NoiseOutcome runNoiseExperiment(const gpu::ArchParams &arch,
                                const BitVec &message, bool exclusive,
                                std::uint64_t seed = 1,
                                unsigned dataSetsPerSm = 1,
                                bool allSms = false);

} // namespace gpucc::covert

#endif // GPUCC_COVERT_COLOCATION_NOISE_EXPERIMENT_H

/**
 * @file
 * Exclusive co-location strategies (Section 8).
 *
 * The leftover block-scheduling policy admits a block only when every
 * resource it asks for is available, and prioritizes earlier launches.
 * The attack exploits this to lock other workloads out of the SMs the
 * channel uses: the spy asks for the maximum per-block shared memory,
 * the trojan asks for none (Fermi/Kepler, where per-block max == per-SM
 * max), or both ask for the per-block max (Maxwell, where the SM holds
 * exactly two such allocations). Helper kernels that use no noisy
 * resources can additionally exhaust leftover thread slots.
 */

#ifndef GPUCC_COVERT_COLOCATION_EXCLUSIVE_H
#define GPUCC_COVERT_COLOCATION_EXCLUSIVE_H

#include "gpu/arch_params.h"
#include "gpu/kernel.h"

namespace gpucc::covert
{

/** Resource-request plan that locks out third-party blocks. */
struct ExclusivePlan
{
    std::size_t spySmemBytes = 0;
    std::size_t trojanSmemBytes = 0;
    bool needHelpers = false;       //!< thread slots remain -> exhaust them
    unsigned helperThreadsPerBlock = 0;
    unsigned helperBlocks = 0;
};

/**
 * Build the exclusive co-location plan for a channel whose spy and
 * trojan blocks use @p spyThreads / @p trojanThreads threads per SM.
 */
ExclusivePlan makeExclusivePlan(const gpu::ArchParams &arch,
                                unsigned spyThreads, unsigned trojanThreads);

/**
 * A helper kernel that occupies thread slots without touching caches,
 * SFUs, or memory (it only sleeps), for roughly @p durationCycles.
 */
gpu::KernelLaunch makeHelperKernel(const gpu::ArchParams &arch,
                                   const ExclusivePlan &plan,
                                   Cycle durationCycles);

} // namespace gpucc::covert

#endif // GPUCC_COVERT_COLOCATION_EXCLUSIVE_H

#include "covert/colocation/exclusive.h"

#include "common/log.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

ExclusivePlan
makeExclusivePlan(const gpu::ArchParams &arch, unsigned spyThreads,
                  unsigned trojanThreads)
{
    ExclusivePlan plan;
    const auto &lim = arch.limits;
    if (lim.smemBytes >= 2 * lim.smemPerBlockBytes) {
        // Maxwell-style: two per-block-max allocations saturate the SM.
        plan.spySmemBytes = lim.smemPerBlockBytes;
        plan.trojanSmemBytes = lim.smemPerBlockBytes;
    } else {
        // Fermi/Kepler: the spy takes all shared memory, the trojan
        // takes none and co-locates through the leftover policy.
        plan.spySmemBytes = lim.smemPerBlockBytes;
        plan.trojanSmemBytes = 0;
    }
    // Shared memory alone blocks every smem-using kernel; interferers
    // that use no smem still fit into spare thread slots, so helpers
    // exhaust those too.
    unsigned used = spyThreads + trojanThreads;
    GPUCC_ASSERT(used <= lim.maxThreads,
                 "channel blocks alone exceed SM thread capacity");
    unsigned spare = lim.maxThreads - used;
    if (spare >= warpSize) {
        plan.needHelpers = true;
        plan.helperThreadsPerBlock = spare - (spare % warpSize);
        plan.helperBlocks = arch.numSms;
    }
    return plan;
}

gpu::KernelLaunch
makeHelperKernel(const gpu::ArchParams &arch, const ExclusivePlan &plan,
                 Cycle durationCycles)
{
    GPUCC_ASSERT(plan.needHelpers, "plan has no helper role");
    gpu::KernelLaunch k;
    k.name = "colocation-helper";
    k.config.gridBlocks = plan.helperBlocks;
    k.config.threadsPerBlock = plan.helperThreadsPerBlock;
    // Helpers exist to claim *thread slots*; compile them register-lean
    // so the register file (32 K on Fermi) never binds first.
    k.config.regsPerThread = 16;
    (void)arch;
    k.body = [durationCycles](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        // Occupy the slots silently: sleep in slices so the block can be
        // sized against any duration without a single huge event gap.
        Cycle remaining = durationCycles;
        while (remaining > 0) {
            Cycle slice = remaining > 5000 ? 5000 : remaining;
            co_await ctx.sleep(slice);
            remaining -= slice;
        }
        co_return;
    };
    return k;
}

} // namespace gpucc::covert

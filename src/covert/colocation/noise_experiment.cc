#include "covert/colocation/noise_experiment.h"

#include <vector>

#include "common/log.h"
#include "covert/colocation/exclusive.h"
#include "workloads/interference.h"

namespace gpucc::covert
{

NoiseOutcome
runNoiseExperiment(const gpu::ArchParams &arch, const BitVec &message,
                   bool exclusive, std::uint64_t seed,
                   unsigned dataSetsPerSm, bool allSms)
{
    NoiseOutcome outcome;
    outcome.exclusiveUsed = exclusive;

    SyncChannelConfig cfg;
    cfg.seed = seed;
    cfg.dataSetsPerSm = dataSetsPerSm;
    cfg.allSms = allSms;

    std::vector<const gpu::KernelInstance *> interferers;
    gpu::HostContext *thirdApp = nullptr;
    std::unique_ptr<gpu::HostContext> thirdAppStorage;

    // Helpers/interferers are injected once the channel kernels are on
    // the device (launch-time priority is what the defense exploits).
    cfg.afterLaunch = [&](TwoPartyHarness &h) {
        gpu::Device &dev = h.device();
        unsigned chThreads = (dataSetsPerSm + 1) * warpSize;

        if (exclusive) {
            // Silent helpers exhaust the leftover thread slots so even
            // smem-free interferers cannot co-locate. Launched by the
            // trojan application on a fresh stream right after the
            // channel kernels (its own stream is busy with the trojan).
            auto plan = makeExclusivePlan(arch, chThreads, chThreads);
            if (plan.needHelpers) {
                auto helper =
                    makeHelperKernel(arch, plan, Cycle(6'000'000));
                h.trojanHost().launch(dev.createStream(), helper);
            }
        }

        // Third application: the Rodinia-like mix on its own streams,
        // arriving while the channel is already communicating.
        thirdAppStorage =
            std::make_unique<gpu::HostContext>(dev, seed + 777);
        thirdApp = thirdAppStorage.get();
        thirdApp->advanceUs(30.0);
        workloads::WorkloadSpec spec;
        spec.blocks = arch.numSms;
        spec.threadsPerBlock = 128;
        spec.iterations = 2500;
        for (auto &k : workloads::makeRodiniaLikeMix(dev, spec)) {
            auto &stream = dev.createStream();
            interferers.push_back(&thirdApp->launch(stream, std::move(k)));
        }
    };

    if (exclusive) {
        cfg.useArchTiming = true;
    }

    SyncL1Channel channel(arch, cfg);
    channel.enableExclusiveColocation(exclusive);
    outcome.channel = channel.transmit(message);

    // Drain the interferers, then check co-residency against the spy's
    // active (participating) communication blocks.
    channel.harness().device().runUntilIdle();
    std::vector<gpu::BlockRecord> spyBlocks;
    for (const auto &k : channel.harness().device().kernels()) {
        if (k->name() != "sync-spy")
            continue;
        for (const auto &b : k->blockRecords()) {
            // Non-participating blocks exit within a few hundred cycles;
            // the communication block spans the whole transmission.
            if (b.endTick - b.startTick > cyclesToTicks(Cycle(10000)))
                spyBlocks.push_back(b);
        }
    }
    outcome.interferersLaunched = static_cast<unsigned>(interferers.size());
    for (const auto *k : interferers) {
        GPUCC_ASSERT(k->done(), "interferer '%s' never completed",
                     k->name().c_str());
        for (const auto &ib : k->blockRecords()) {
            for (const auto &sb : spyBlocks) {
                if (ib.smId == sb.smId && ib.startTick < sb.endTick &&
                    sb.startTick < ib.endTick) {
                    ++outcome.coResidentInterfererBlocks;
                }
            }
        }
    }
    return outcome;
}

} // namespace gpucc::covert

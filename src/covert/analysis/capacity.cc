#include "covert/analysis/capacity.h"

#include <algorithm>
#include <cmath>

namespace gpucc::covert
{

double
binaryEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

CapacityEstimate
estimateCapacity(const ChannelResult &result)
{
    CapacityEstimate e;
    e.rawRateBps = result.bandwidthBps;
    e.errorRate = std::min(result.report.errorRate(), 0.5);
    e.bscCapacityBps = (1.0 - binaryEntropy(e.errorRate)) * e.rawRateBps;
    double spread =
        result.zeroMetric.stddev() + result.oneMetric.stddev() + 1.0;
    e.symbolSeparation =
        std::abs(result.oneMetric.mean() - result.zeroMetric.mean()) /
        spread;
    return e;
}

} // namespace gpucc::covert

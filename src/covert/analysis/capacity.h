/**
 * @file
 * Channel-capacity analysis, in the spirit of Hunger et al. (the paper
 * compares against their "theoretical upper bound on capacity of
 * practical channels", Section 10).
 *
 * Two estimates from a transmission's measured statistics:
 *
 *  - the binary-symmetric-channel capacity at the measured bit error
 *    rate, C = (1 - H2(p)) * rate — the information actually carried;
 *  - a symbol-separation (SNR-style) bound from the two latency
 *    populations: when the "0" and "1" latency distributions barely
 *    overlap, the channel is effectively noiseless and the raw rate is
 *    the capacity.
 */

#ifndef GPUCC_COVERT_ANALYSIS_CAPACITY_H
#define GPUCC_COVERT_ANALYSIS_CAPACITY_H

#include "covert/channel.h"

namespace gpucc::covert
{

/** Capacity estimates for one transmission. */
struct CapacityEstimate
{
    double rawRateBps = 0.0;       //!< transmitted bits / window
    double errorRate = 0.0;        //!< measured BER
    double bscCapacityBps = 0.0;   //!< (1 - H2(BER)) * rawRate
    double symbolSeparation = 0.0; //!< |mu1 - mu0| / (sigma0 + sigma1 + 1)
};

/** Binary entropy H2(p) in bits. */
double binaryEntropy(double p);

/** Analyze @p result. */
CapacityEstimate estimateCapacity(const ChannelResult &result);

} // namespace gpucc::covert

#endif // GPUCC_COVERT_ANALYSIS_CAPACITY_H

#include "covert/synth/synthesizer.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace gpucc::covert::synth
{

namespace
{

/** Rounds a substrate pays per decoded bit (prime + handshake pair +
 *  probe), shared by all three estimates so the comparison is fair. */
constexpr double roundsPerBit = 4.0;

/** Latency contrast a contention bit must integrate before the decode
 *  threshold clears the quantized-clock noise floor. */
constexpr double contrastBudgetCycles = 512.0;

SubstrateScore
scoreL1(const SynthesizedPlan &plan)
{
    SubstrateScore s;
    s.resource = ChannelResource::L1Const;
    if (!plan.thresholds.ok)
        return s; // populations overlapped: no decodable contrast
    // One bit = ~4 set-sized prime/probe pass pairs; a pass touches
    // every way once at the measured hit or miss latency.
    s.cyclesPerBit = roundsPerBit * static_cast<double>(plan.l1.ways) *
                     (plan.thresholds.hitCycles +
                      plan.thresholds.missCycles);
    s.usable = true;
    return s;
}

SubstrateScore
scoreContention(ChannelResource res, const ContentionProbe &p)
{
    SubstrateScore s;
    s.resource = res;
    double contrast = p.peakCycles - p.baseCycles;
    if (p.onsetWarps == 0 || contrast <= 0.0)
        return s; // curve never rose: nothing to modulate
    // Enough dependent ops per window to integrate the contrast into a
    // clean decision, bounded to keep degenerate contrasts sane.
    double iters = std::clamp(contrastBudgetCycles / contrast, 16.0,
                              4096.0);
    s.cyclesPerBit = roundsPerBit * iters * p.peakCycles;
    s.usable = true;
    return s;
}

} // namespace

ChannelResource
SynthesizedPlan::best() const
{
    GPUCC_ASSERT(!ranking.empty() && ranking.front().usable,
                 "no usable substrate was synthesized");
    return ranking.front().resource;
}

SynthesizedPlan
synthesize(AttackerLab &lab)
{
    SynthesizedPlan plan;

    BlindCacheProbe probe(lab);
    plan.l1 = probe.discover();
    plan.thresholds = thresholdFromEviction(lab, plan.l1);
    if (plan.thresholds.ok) {
        plan.evictionSet = findMinimalEvictionSet(
            lab, plan.l1, plan.thresholds.timing.dataThresholdCycles);
    }
    plan.sfu = probeSfu(lab);
    plan.atomic = probeAtomic(lab);

    plan.ranking.push_back(scoreL1(plan));
    plan.ranking.push_back(
        scoreContention(ChannelResource::Sfu, plan.sfu));
    plan.ranking.push_back(
        scoreContention(ChannelResource::GlobalAtomic, plan.atomic));
    std::stable_sort(plan.ranking.begin(), plan.ranking.end(),
                     [](const SubstrateScore &a, const SubstrateScore &b) {
                         if (a.usable != b.usable)
                             return a.usable;
                         return a.cyclesPerBit < b.cyclesPerBit;
                     });
    for (auto &s : plan.ranking) {
        if (s.usable && s.cyclesPerBit > 0.0)
            s.bitsPerMcycle = 1e6 / s.cyclesPerBit;
    }

    plan.discoveryDigest = lab.digest();
    plan.devicesUsed = lab.devicesRetired();
    return plan;
}

session::SessionConfig
planSessionConfig(const SynthesizedPlan &plan)
{
    session::SessionConfig cfg;
    cfg.resources.clear();
    for (const auto &s : plan.ranking) {
        if (s.usable)
            cfg.resources.push_back(s.resource);
    }
    GPUCC_ASSERT(!cfg.resources.empty(),
                 "synthesized plan has no usable substrate");
    return cfg;
}

} // namespace gpucc::covert::synth

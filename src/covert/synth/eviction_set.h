/**
 * @file
 * Blind eviction-set construction and threshold derivation (attack
 * synthesis step 2, the get_minimal_set / threshold_from_flush idiom).
 *
 * With the geometry from blind_probe in hand, the attacker still needs
 * (a) a latency threshold splitting the hit and miss populations it
 * will actually observe in the protocol's probe loop, and (b) proof
 * that a minimal set of addresses really evicts a victim line — the
 * group-reduction construction from the eviction-set literature, run
 * here against the discovered (not datasheet) set stride.
 *
 * thresholdFromEviction measures paired hit/miss populations with the
 * exact probe primitives the duplex protocol uses (primeSet /
 * probeSetAvg) and feeds them through the session calibrator's
 * population splitter, so the derived ProtocolTiming thresholds are
 * unit-compatible with live decode.
 *
 * findMinimalEvictionSet starts from a deliberately polluted candidate
 * pool (aliasing offsets mixed with same-stride decoys one line over)
 * and reduces it one element at a time: drop a candidate whenever the
 * remainder still evicts the victim past the measured threshold. The
 * survivor count equals the associativity if and only if the geometry
 * and threshold are both right — a self-check the synthesizer asserts.
 */

#ifndef GPUCC_COVERT_SYNTH_EVICTION_SET_H
#define GPUCC_COVERT_SYNTH_EVICTION_SET_H

#include <vector>

#include "covert/session/calibration.h"
#include "covert/synth/blind_probe.h"

namespace gpucc::covert::synth
{

/** Outcome of the group-reduction construction. */
struct EvictionSetResult
{
    /** Byte offsets (from the probe array base) of the minimal set. */
    std::vector<std::size_t> offsets;
    std::size_t poolSize = 0; //!< candidates before reduction
    unsigned trials = 0;      //!< eviction experiments (devices) spent
};

/**
 * Measure hit/miss populations over the discovered geometry's set 0 on
 * a fresh device and derive protocol thresholds from them. Uses the
 * duplex channel's own prime/probe primitives, @p rounds sample pairs.
 * The result's ok flag is false when the populations overlap (the
 * synthesizer treats that as "no usable L1 substrate").
 */
session::CalibrationResult thresholdFromEviction(AttackerLab &lab,
                                                 const DiscoveredCache &l1,
                                                 unsigned rounds = 12);

/**
 * Reduce a polluted candidate pool to a minimal eviction set for a
 * victim line in set 0 of the discovered geometry, classifying each
 * trial's victim-reload latency against @p thresholdCycles (use the
 * calibrated data threshold). One fresh device per trial keeps trials
 * independent and deterministic.
 */
EvictionSetResult findMinimalEvictionSet(AttackerLab &lab,
                                         const DiscoveredCache &l1,
                                         double thresholdCycles);

} // namespace gpucc::covert::synth

#endif // GPUCC_COVERT_SYNTH_EVICTION_SET_H

/**
 * @file
 * The no-oracle attacker facade.
 *
 * The paper's Section 3 methodology has the attacker reverse-engineer
 * cache geometry and timing thresholds with nothing but device
 * programs and clock() — no datasheet, no driver introspection. The
 * characterization code used to take ArchParams directly, which made
 * the "blind" claim unverifiable: nothing stopped a measurement from
 * peeking at the very numbers it was supposed to discover.
 *
 * AttackerDevice is the compile-time seam that enforces the contract.
 * It wraps a Device + HostContext pair but exposes only what a real
 * attacker process has: allocate buffers, launch kernels (which can
 * read clock(), time loads, and write results out()), and read the
 * completed kernel's outputs. There is deliberately no arch(), no
 * constMem(), no accessor that could leak geometry or latencies —
 * tests/synth_test.cc pins this with a detection-idiom static_assert.
 *
 * AttackerLab is the experimenter's side of the seam: it owns the
 * ArchParams (someone has to build the device) and hands out fresh
 * AttackerDevices, one per measurement, exactly like the
 * characterizers' fresh-device-per-point discipline. Every retired
 * device's architectural digest is folded into a rolling lab digest,
 * so a whole discovery run collapses to one 64-bit value that the
 * determinism and property tests can pin. A decorator hook lets the
 * metamorphic suite attach observers (e.g. a quiet fault injector) to
 * every device the attacker touches without the attacker knowing.
 */

#ifndef GPUCC_COVERT_SYNTH_ATTACKER_DEVICE_H
#define GPUCC_COVERT_SYNTH_ATTACKER_DEVICE_H

#include <cstdint>
#include <functional>
#include <memory>

#include "gpu/device.h"
#include "gpu/host.h"

namespace gpucc::covert::synth
{

class AttackerLab;

/**
 * One disposable device behind the no-oracle facade. Move-only; the
 * destructor drains the device and folds its digest into the lab.
 */
class AttackerDevice
{
  public:
    AttackerDevice(AttackerDevice &&) noexcept = default;
    AttackerDevice &operator=(AttackerDevice &&) = delete;
    AttackerDevice(const AttackerDevice &) = delete;
    AttackerDevice &operator=(const AttackerDevice &) = delete;
    ~AttackerDevice();

    /** Launch @p k on this device's stream and block until it
     *  completes; @return the instance (for out()/blockRecords()). */
    const gpu::KernelInstance &run(gpu::KernelLaunch k);

    /** Bump-allocate constant-space addresses. */
    Addr allocConst(std::size_t bytes, std::size_t align = 256);

    /** Bump-allocate global-space addresses. */
    Addr allocGlobal(std::size_t bytes, std::size_t align = 256);

  private:
    friend class AttackerLab;
    AttackerDevice(AttackerLab &lab, const gpu::ArchParams &arch,
                   std::uint64_t seed);

    AttackerLab *lab;
    std::unique_ptr<gpu::Device> dev;
    std::unique_ptr<gpu::HostContext> host;
    gpu::Stream *stream;
    /** Observer attachment from the lab's decorator (released before
     *  the retirement digest, mirroring measureSessionOverPlan's
     *  disarm-then-digest order). */
    std::shared_ptr<void> attachment;
};

/** Experimenter-side factory for attacker devices. */
class AttackerLab
{
  public:
    /**
     * @param arch Architecture the attacker is dropped onto (the
     *        attacker never sees this — only the devices built from it).
     * @param seed Host-context seed for every produced device (jitter
     *        is zeroed, matching the characterizers' discipline).
     */
    explicit AttackerLab(const gpu::ArchParams &arch,
                         std::uint64_t seed = 7);

    /** A fresh device behind the facade. */
    AttackerDevice fresh();

    /**
     * Observer decorator applied to every future device: returns an
     * attachment (e.g. an armed FaultInjector) kept alive until just
     * before the device retires. Property tests use this to pin that
     * discovery under a quiet fault plan equals no injector at all.
     */
    using Decoration = std::shared_ptr<void>;
    using Decorator = std::function<Decoration(gpu::Device &)>;
    void setDecorator(Decorator d) { decorator = std::move(d); }

    /** Rolling digest over every retired device's architectural end
     *  state — one value pinning an entire discovery run. */
    std::uint64_t digest() const { return rolling; }

    /** Devices retired so far (measurement-cost accounting). */
    unsigned devicesRetired() const { return retired; }

  private:
    friend class AttackerDevice;
    void retire(gpu::Device &dev);

    gpu::ArchParams arch;
    std::uint64_t seed;
    Decorator decorator;
    std::uint64_t rolling = 0x626c696e646c6162ULL; // "blindlab"
    unsigned retired = 0;
};

} // namespace gpucc::covert::synth

#endif // GPUCC_COVERT_SYNTH_ATTACKER_DEVICE_H

#include "covert/synth/fu_probe.h"

#include <algorithm>

#include "common/log.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert::synth
{

namespace
{

/** Fold a measured curve into the probe summary. */
ContentionProbe
summarize(std::vector<FuLatencyPoint> curve)
{
    GPUCC_ASSERT(!curve.empty(), "empty contention curve");
    ContentionProbe p;
    p.baseCycles = curve.front().warp0AvgCycles;
    p.peakCycles = p.baseCycles;
    for (const auto &pt : curve)
        p.peakCycles = std::max(p.peakCycles, pt.warp0AvgCycles);
    p.onsetWarps = FuCharacterizer::contentionOnset(curve);
    p.curve = std::move(curve);
    return p;
}

} // namespace

ContentionProbe
probeSfu(AttackerLab &lab, unsigned maxWarps, unsigned iterations)
{
    std::vector<FuLatencyPoint> curve;
    for (unsigned w = 1; w <= maxWarps; ++w) {
        AttackerDevice dev = lab.fresh();
        curve.push_back(FuLatencyPoint{
            w, FuCharacterizer::measureOn(dev, gpu::OpClass::Sinf, w,
                                          iterations)});
    }
    return summarize(std::move(curve));
}

ContentionProbe
probeAtomic(AttackerLab &lab, unsigned maxWarps, unsigned iterations)
{
    std::vector<FuLatencyPoint> curve;
    for (unsigned w = 1; w <= maxWarps; ++w) {
        AttackerDevice dev = lab.fresh();
        Addr target = dev.allocGlobal(sizeof(std::uint64_t), 256);
        std::vector<Addr> lanes(warpSize, target); // full serialization

        gpu::KernelLaunch k;
        k.name = "atomic-sweep";
        k.config.gridBlocks = 1;
        k.config.threadsPerBlock = w * warpSize;
        k.body = [lanes, iterations](gpu::WarpCtx &ctx)
            -> gpu::WarpProgram {
            std::uint64_t total = 0;
            for (unsigned i = 0; i < iterations; ++i)
                total += co_await ctx.atomicAdd(lanes);
            ctx.out(total);
            co_return;
        };

        const auto &inst = dev.run(std::move(k));
        double total = static_cast<double>(inst.out(0).at(0));
        curve.push_back(FuLatencyPoint{w, total / iterations});
    }
    return summarize(std::move(curve));
}

} // namespace gpucc::covert::synth

/**
 * @file
 * Blind cache-geometry discovery (attack synthesis step 1).
 *
 * Everything here sees only the AttackerDevice facade: timed strided
 * loads are the sole instrument, exactly the Section 3 position of an
 * attacker with device programs and clock(). Discovery proceeds in
 * three stride probes, each on a fresh device:
 *
 *  1. capacity — double the array size at a minimal stride until the
 *     per-access latency leaves the plateau; the last flat size is the
 *     L1 capacity (constant caches are power-of-two sized, so the
 *     doubling lands on it exactly);
 *  2. line size — on a 2x-capacity array (every access misses L1 and
 *     hits L2) the per-access average rises linearly with the stride
 *     until one access per line, then flattens: the knee is the line;
 *  3. associativity — k lines spaced a whole capacity apart alias into
 *     one set; the largest k that still fits (plateau latency) is the
 *     way count. Set count follows as capacity / (line * ways).
 *
 * The same measure() primitive backs CacheCharacterizer::measurePoint,
 * so the paper-figure sweeps are now provably oracle-free too: the
 * characterizer may frame its sweep axes from known geometry, but the
 * numbers on the curve all come through this facade.
 */

#ifndef GPUCC_COVERT_SYNTH_BLIND_PROBE_H
#define GPUCC_COVERT_SYNTH_BLIND_PROBE_H

#include <cstddef>
#include <vector>

#include "covert/synth/attacker_device.h"
#include "mem/cache_geometry.h"

namespace gpucc::covert::synth
{

/** One sample of a latency-vs-size (or -stride) probe. */
struct ProbePoint
{
    std::size_t arrayBytes = 0;
    double avgLatencyCycles = 0.0;
};

/** Cache parameters recovered without an oracle. */
struct DiscoveredCache
{
    std::size_t sizeBytes = 0;
    std::size_t lineBytes = 0;
    std::size_t numSets = 0;
    unsigned ways = 0;
    double plateauCycles = 0.0; //!< measured per-access hit latency
    double ceilingCycles = 0.0; //!< measured per-access miss latency

    /** The discovered geometry in the channels' native shape. */
    mem::CacheGeometry
    geometry() const
    {
        return mem::CacheGeometry{sizeBytes, lineBytes, ways};
    }
};

/** Timed strided-load probes over an AttackerLab's devices. */
class BlindCacheProbe
{
  public:
    explicit BlindCacheProbe(AttackerLab &lab);

    /**
     * Average per-access latency (cycles) of repeated sequential
     * traversals of an @p arrayBytes constant array at @p strideBytes:
     * one warm pass, then four timed passes, on a fresh device (the
     * paper reruns the experiment per point).
     */
    double measure(std::size_t arrayBytes, std::size_t strideBytes);

    /** Latency series over sizes [@p fromBytes, @p toBytes] stepping
     *  @p stepBytes at a fixed @p strideBytes. */
    std::vector<ProbePoint> sweep(std::size_t fromBytes,
                                  std::size_t toBytes,
                                  std::size_t stepBytes,
                                  std::size_t strideBytes);

    /** Run the full three-probe discovery. Fatal when no capacity edge
     *  shows up in the probed envelope (no L1 to attack). */
    DiscoveredCache discover();

    /** Smallest/largest array sizes the capacity probe tries. */
    static constexpr std::size_t minCapacityBytes = 256;
    static constexpr std::size_t maxCapacityBytes = 256 * 1024;

  private:
    AttackerLab *lab;
};

} // namespace gpucc::covert::synth

#endif // GPUCC_COVERT_SYNTH_BLIND_PROBE_H

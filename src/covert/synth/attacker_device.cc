#include "covert/synth/attacker_device.h"

#include "verify/digest.h"

namespace gpucc::covert::synth
{

AttackerDevice::AttackerDevice(AttackerLab &lab_,
                               const gpu::ArchParams &arch,
                               std::uint64_t seed)
    : lab(&lab_)
{
    dev = std::make_unique<gpu::Device>(arch);
    host = std::make_unique<gpu::HostContext>(*dev, seed);
    host->setJitterUs(0.0);
    stream = &host->createStream();
}

AttackerDevice::~AttackerDevice()
{
    if (dev == nullptr)
        return; // moved-from
    // Observer first (a fault injector disarms on release), then the
    // drain + digest — the measureSessionOverPlan retirement order.
    attachment.reset();
    lab->retire(*dev);
}

const gpu::KernelInstance &
AttackerDevice::run(gpu::KernelLaunch k)
{
    auto &inst = host->launch(*stream, std::move(k));
    host->sync(inst);
    return inst;
}

Addr
AttackerDevice::allocConst(std::size_t bytes, std::size_t align)
{
    return dev->allocConst(bytes, align);
}

Addr
AttackerDevice::allocGlobal(std::size_t bytes, std::size_t align)
{
    return dev->allocGlobal(bytes, align);
}

AttackerLab::AttackerLab(const gpu::ArchParams &arch_, std::uint64_t seed_)
    : arch(arch_), seed(seed_)
{
}

AttackerDevice
AttackerLab::fresh()
{
    AttackerDevice d(*this, arch, seed);
    if (decorator)
        d.attachment = decorator(*d.dev);
    return d;
}

void
AttackerLab::retire(gpu::Device &dev)
{
    dev.runUntilIdle();
    verify::StateDigest d(rolling);
    d.u64(verify::deviceDigest(dev));
    rolling = d.value();
    ++retired;
}

} // namespace gpucc::covert::synth

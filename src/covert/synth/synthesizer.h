/**
 * @file
 * Attack synthesis driver: from a bare device handle to a ready-to-run
 * channel plan.
 *
 * synthesize() chains the blind probes — cache geometry (blind_probe),
 * eviction sets + thresholds (eviction_set), SFU and atomic contention
 * (fu_probe) — and ranks the three candidate substrates by a measured
 * cycles-per-bit estimate. The resulting SynthesizedPlan replaces the
 * hand-written per-arch configuration: planSessionConfig() turns it
 * into a ChannelSession failover ladder ordered by measured merit, and
 * timing() yields calibrated ProtocolTiming thresholds, so the session
 * opens on the substrate the measurements picked with thresholds the
 * measurements derived. Nothing in this pipeline reads ArchParams —
 * the AttackerDevice facade makes that a compile-time guarantee.
 *
 * The per-bit model mirrors the protocol's round structure: an L1 bit
 * costs ~4 set-sized prime/probe passes (prime, RTS/RTR handshakes,
 * probe), a contention bit costs ~4 windows of enough dependent ops to
 * integrate the base-vs-peak latency contrast into a decodable signal.
 * The absolute numbers are estimates; only their order matters, and
 * the order is what the conformance bands pin.
 */

#ifndef GPUCC_COVERT_SYNTH_SYNTHESIZER_H
#define GPUCC_COVERT_SYNTH_SYNTHESIZER_H

#include <cstdint>
#include <vector>

#include "covert/session/session.h"
#include "covert/synth/blind_probe.h"
#include "covert/synth/eviction_set.h"
#include "covert/synth/fu_probe.h"

namespace gpucc::covert::synth
{

/** Measured merit of one candidate substrate. */
struct SubstrateScore
{
    ChannelResource resource = ChannelResource::L1Const;
    double cyclesPerBit = 0.0; //!< estimated cost of one raw bit
    double bitsPerMcycle = 0.0; //!< the same, as a rate
    bool usable = false; //!< substrate shows a decodable contrast
};

/** Everything the blind pipeline discovered, ready to install. */
struct SynthesizedPlan
{
    DiscoveredCache l1;
    session::CalibrationResult thresholds; //!< from eviction populations
    EvictionSetResult evictionSet;
    ContentionProbe sfu;
    ContentionProbe atomic;
    std::vector<SubstrateScore> ranking; //!< best first; usable prefix
    std::uint64_t discoveryDigest = 0;   //!< lab digest after synthesis
    unsigned devicesUsed = 0;            //!< measurement devices spent

    /** The top-ranked substrate. */
    ChannelResource best() const;

    /** Calibrated thresholds (pacing fields 0: they overlay the
     *  per-arch defaults when installed via setTiming). */
    const ProtocolTiming &timing() const { return thresholds.timing; }
};

/** Run the full blind pipeline over @p lab's devices. */
SynthesizedPlan synthesize(AttackerLab &lab);

/** Session configuration whose failover ladder is the plan's usable
 *  substrates in measured-merit order. */
session::SessionConfig planSessionConfig(const SynthesizedPlan &plan);

} // namespace gpucc::covert::synth

#endif // GPUCC_COVERT_SYNTH_SYNTHESIZER_H

#include "covert/synth/eviction_set.h"

#include <cstdint>
#include <utility>

#include "common/log.h"
#include "common/rng.h"
#include "covert/channels/cache_sets.h"
#include "covert/sync/handshake.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert::synth
{

namespace
{

constexpr double outScale = 256.0; //!< fixed-point scale for out()

/** Pause between sample pairs; the blind attacker has no settle figure
 *  from an arch table, so a fixed spread in the same order of magnitude
 *  does the job of representing distinct jitter windows. */
constexpr Cycle samplePairSpacing = 64;

/** Single-warp launch shell shared by both experiments. */
gpu::KernelLaunch
singleWarpKernel(const char *name)
{
    gpu::KernelLaunch k;
    k.name = name;
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = warpSize;
    return k;
}

} // namespace

session::CalibrationResult
thresholdFromEviction(AttackerLab &lab, const DiscoveredCache &l1,
                      unsigned rounds)
{
    GPUCC_ASSERT(rounds >= 4, "threshold probe needs >= 4 sample pairs");
    mem::CacheGeometry geom = l1.geometry();
    geom.validate("discovered L1");

    AttackerDevice dev = lab.fresh();
    std::size_t align = setStride(geom);
    Addr mainBase = dev.allocConst(probeArrayBytes(geom), align);
    Addr aliasBase = dev.allocConst(probeArrayBytes(geom), align);
    std::vector<Addr> main = setFillingAddrs(geom, mainBase, 0);
    std::vector<Addr> alias = setFillingAddrs(geom, aliasBase, 0);

    gpu::KernelLaunch k = singleWarpKernel("synth-threshold-probe");
    k.body = [main, alias, rounds](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        // Cold fills (DRAM-deep) are not part of either population.
        co_await primeSet(ctx, main);
        co_await primeSet(ctx, alias);
        for (unsigned i = 0; i < rounds; ++i) {
            co_await primeSet(ctx, main);
            double hit = co_await probeSetAvg(ctx, main);
            ctx.out(static_cast<std::uint64_t>(hit * outScale));
            co_await primeSet(ctx, alias); // evict main from L1
            double miss = co_await probeSetAvg(ctx, main);
            ctx.out(static_cast<std::uint64_t>(miss * outScale));
            co_await ctx.sleep(samplePairSpacing);
        }
        co_return;
    };

    const auto &inst = dev.run(std::move(k));
    const auto &vals = inst.out(0);
    std::vector<double> hits, misses;
    for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
        hits.push_back(static_cast<double>(vals[i]) / outScale);
        misses.push_back(static_cast<double>(vals[i + 1]) / outScale);
    }
    return session::thresholdsFromPopulations(hits, misses);
}

namespace
{

/** One eviction experiment on a fresh device: warm the victim line,
 *  walk the candidate offsets, reload the victim; evicted when the
 *  reload latency lands past @p thresholdCycles. */
bool
evicts(AttackerLab &lab, const mem::CacheGeometry &geom,
       std::size_t allocBytes, const std::vector<std::size_t> &offsets,
       double thresholdCycles)
{
    AttackerDevice dev = lab.fresh();
    Addr base = dev.allocConst(allocBytes, setStride(geom));
    std::vector<Addr> cands;
    cands.reserve(offsets.size());
    for (std::size_t off : offsets)
        cands.push_back(base + off);
    std::vector<Addr> victim{base};

    gpu::KernelLaunch k = singleWarpKernel("synth-eviction-trial");
    k.body = [victim, cands](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        co_await primeSet(ctx, victim);
        co_await primeSet(ctx, cands);
        double lat = co_await probeSetAvg(ctx, victim);
        ctx.out(static_cast<std::uint64_t>(lat * outScale));
        co_return;
    };

    const auto &inst = dev.run(std::move(k));
    double lat = static_cast<double>(inst.out(0).at(0)) / outScale;
    return lat > thresholdCycles;
}

} // namespace

EvictionSetResult
findMinimalEvictionSet(AttackerLab &lab, const DiscoveredCache &l1,
                       double thresholdCycles)
{
    mem::CacheGeometry geom = l1.geometry();
    geom.validate("discovered L1");
    std::size_t stride = setStride(geom);

    // Candidate pool: 2x the aliasing offsets needed, polluted with the
    // same count of decoys one line over (they stride into a different
    // set, so a correct reduction must discard every one of them). The
    // victim sits at offset 0 and is not a candidate.
    std::vector<std::size_t> pool;
    for (unsigned k = 1; k <= 2 * geom.ways; ++k) {
        pool.push_back(std::size_t{k} * stride);
        pool.push_back(std::size_t{k} * stride + geom.lineBytes);
    }
    std::size_t allocBytes = (2 * std::size_t{geom.ways} + 2) * stride;

    // Deterministic shuffle so the reduction order is not accidentally
    // presorted into aliases-first.
    Rng rng(0x657669637473ULL); // "evicts"
    for (std::size_t i = pool.size(); i > 1; --i) {
        auto j = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(i) - 1));
        std::swap(pool[i - 1], pool[j]);
    }

    EvictionSetResult res;
    res.poolSize = pool.size();

    auto trial = [&](const std::vector<std::size_t> &offs) {
        ++res.trials;
        return evicts(lab, geom, allocBytes, offs, thresholdCycles);
    };

    GPUCC_ASSERT(trial(pool),
                 "candidate pool fails to evict the victim — geometry or "
                 "threshold is wrong");

    // Group reduction (get_minimal_set): drop any candidate the rest of
    // the pool can evict without.
    std::vector<std::size_t> current = pool;
    std::size_t idx = 0;
    while (idx < current.size()) {
        std::vector<std::size_t> without = current;
        without.erase(without.begin() + static_cast<std::ptrdiff_t>(idx));
        if (trial(without))
            current = std::move(without);
        else
            ++idx;
    }
    res.offsets = std::move(current);
    return res;
}

} // namespace gpucc::covert::synth

#include "covert/synth/blind_probe.h"

#include <vector>

#include "common/log.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert::synth
{

namespace
{

/** Per-access latency separating "still flat" from "overflowed" in the
 *  capacity doubling sweep. The first doubling past capacity turns at
 *  least a quarter of the accesses into misses (stride 32, line <= 128),
 *  which lifts the average by >= 12 cycles on every supported latency
 *  envelope; intra-plateau wobble stays under ~3. */
constexpr double capacityEpsilonCycles = 5.0;

/** A stride resolves to the line size once its per-access average
 *  reaches 97% of the one-access-per-line ceiling; a stride of half a
 *  line sits at ~72% on the worst envelope. */
constexpr double lineKneeFraction = 0.97;

/** Largest way count the associativity probe resolves. */
constexpr unsigned maxWaysProbed = 10;

} // namespace

BlindCacheProbe::BlindCacheProbe(AttackerLab &lab_) : lab(&lab_) {}

double
BlindCacheProbe::measure(std::size_t arrayBytes, std::size_t strideBytes)
{
    GPUCC_ASSERT(arrayBytes > 0 && strideBytes > 0 &&
                     strideBytes <= arrayBytes,
                 "bad probe parameters");
    AttackerDevice dev = lab->fresh();

    Addr base = dev.allocConst(arrayBytes, 4096);
    std::vector<Addr> addrs;
    for (std::size_t off = 0; off < arrayBytes; off += strideBytes)
        addrs.push_back(base + off);

    // Timed passes: the paper warms the cache with a first traversal,
    // then times subsequent traversals of the same array.
    const unsigned timedPasses = 4;
    gpu::KernelLaunch k;
    k.name = "blind-wong-microbenchmark";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = warpSize;
    k.body = [addrs, timedPasses](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        co_await ctx.constLoadSeq(addrs); // warm-up pass
        std::uint64_t total = 0;
        for (unsigned p = 0; p < timedPasses; ++p)
            total += co_await ctx.constLoadSeq(addrs);
        ctx.out(total);
        co_return;
    };

    const auto &inst = dev.run(std::move(k));
    double total = static_cast<double>(inst.out(0).at(0));
    return total / (timedPasses * static_cast<double>(addrs.size()));
}

std::vector<ProbePoint>
BlindCacheProbe::sweep(std::size_t fromBytes, std::size_t toBytes,
                       std::size_t stepBytes, std::size_t strideBytes)
{
    GPUCC_ASSERT(stepBytes > 0 && strideBytes > 0, "bad sweep parameters");
    std::vector<ProbePoint> series;
    for (std::size_t size = fromBytes; size <= toBytes; size += stepBytes)
        series.push_back(ProbePoint{size, measure(size, strideBytes)});
    return series;
}

DiscoveredCache
BlindCacheProbe::discover()
{
    DiscoveredCache d;

    // Probe 1: capacity. Double the array at the smallest plausible
    // stride; the plateau is wherever the smallest array sits (256 B is
    // below any real L1), and the first size that leaves it has
    // overflowed. Power-of-two capacities make the previous size exact.
    const std::size_t probeStride = 32;
    d.plateauCycles = measure(minCapacityBytes, probeStride);
    std::size_t lastInside = 0;
    for (std::size_t size = minCapacityBytes; size <= maxCapacityBytes;
         size *= 2) {
        double m = size == minCapacityBytes
                       ? d.plateauCycles
                       : measure(size, probeStride);
        if (m > d.plateauCycles + capacityEpsilonCycles)
            break;
        lastInside = size;
    }
    GPUCC_ASSERT(lastInside > 0, "smallest probe array already misses");
    GPUCC_ASSERT(lastInside < maxCapacityBytes,
                 "no capacity edge below %zu bytes — nothing to attack",
                 maxCapacityBytes);
    d.sizeBytes = lastInside;

    // Probe 2: line size. On a 2x-capacity array a sequential LRU
    // traversal misses on every line it touches, so the per-access
    // average scales with accesses-per-line: stride >= line is all
    // misses (the ceiling), stride = line/2 only half. The knee —
    // smallest stride within 3% of the widest stride's average — is
    // the line. 2x capacity keeps the spill inside the L2, so misses
    // are a uniform population.
    double ceiling = measure(2 * d.sizeBytes, 256);
    d.ceilingCycles = ceiling;
    GPUCC_ASSERT(ceiling > d.plateauCycles + capacityEpsilonCycles,
                 "no hit/miss contrast at 2x capacity");
    for (std::size_t stride : {std::size_t{32}, std::size_t{64},
                               std::size_t{128}}) {
        double m = measure(2 * d.sizeBytes, stride);
        if (m >= lineKneeFraction * ceiling) {
            d.lineBytes = stride;
            d.ceilingCycles = m;
            break;
        }
    }
    if (d.lineBytes == 0)
        d.lineBytes = 256;

    // Probe 3: associativity. k lines spaced a whole capacity apart all
    // decode to set 0. While k <= ways they co-reside (plateau); past
    // that a sequential LRU traversal thrashes the set and every access
    // pays at least the next level. Classify each k against the hit/miss
    // midpoint from probes 1+2 — NOT against a deep-thrash reference:
    // capacity-spaced lines can also alias in the L2 (on the Fermi the
    // L2 set stride equals the L1 capacity), so large k may escalate to
    // memory latency and a thrash-referenced midpoint would misread the
    // intermediate L2-hit levels as fits.
    double midpoint = 0.5 * (d.plateauCycles + d.ceilingCycles);
    unsigned ways = 0;
    for (unsigned k = 1; k <= maxWaysProbed; ++k) {
        double m = measure(std::size_t{k} * d.sizeBytes, d.sizeBytes);
        if (m < midpoint)
            ways = k;
        else
            break;
    }
    GPUCC_ASSERT(ways > 0, "single line already thrashes its set");
    d.ways = ways;

    GPUCC_ASSERT(d.sizeBytes % (d.lineBytes * d.ways) == 0,
                 "discovered capacity %zu not divisible by line %zu x "
                 "ways %u",
                 d.sizeBytes, d.lineBytes, d.ways);
    d.numSets = d.sizeBytes / (d.lineBytes * d.ways);
    return d;
}

} // namespace gpucc::covert::synth

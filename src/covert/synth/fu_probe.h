/**
 * @file
 * Blind functional-unit and atomic contention probes (attack synthesis
 * step 3). Reruns the Section 5/6 characterization sweeps through the
 * attacker facade: latency-vs-warp-count curves for the SFU and for
 * global atomics, reduced to the base latency, the saturated peak, and
 * the contention onset the launch-per-bit channels key on.
 */

#ifndef GPUCC_COVERT_SYNTH_FU_PROBE_H
#define GPUCC_COVERT_SYNTH_FU_PROBE_H

#include <vector>

#include "covert/characterize/fu_characterizer.h"
#include "covert/synth/attacker_device.h"

namespace gpucc::covert::synth
{

/** Contention summary of one candidate substrate. */
struct ContentionProbe
{
    double baseCycles = 0.0; //!< per-op latency of a lone warp
    double peakCycles = 0.0; //!< per-op latency at the sweep maximum
    /** Warp count where the curve first rises 15% above base; 0 when it
     *  never does (contention-free over the sweep — unusable). */
    unsigned onsetWarps = 0;
    std::vector<FuLatencyPoint> curve;
};

/** Sweep dependent-SFU-chain latency over 1..@p maxWarps warps, one
 *  fresh device per point. The default sweep reaches 32 warps: on
 *  SFU-rich parts (8 units/scheduler) the knee sits past 16. */
ContentionProbe probeSfu(AttackerLab &lab, unsigned maxWarps = 32,
                         unsigned iterations = 64);

/** Sweep same-address global-atomic latency over 1..@p maxWarps warps,
 *  one fresh device per point. */
ContentionProbe probeAtomic(AttackerLab &lab, unsigned maxWarps = 16,
                            unsigned iterations = 32);

} // namespace gpucc::covert::synth

#endif // GPUCC_COVERT_SYNTH_FU_PROBE_H

#include "covert/parallel/multi_resource_channel.h"

#include "common/log.h"
#include "covert/channels/cache_sets.h"
#include "covert/channels/sfu_channel.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

MultiResourceChannel::MultiResourceChannel(const gpu::ArchParams &arch_,
                                           MultiResourceConfig cfg_)
    : arch(arch_), cfg(cfg_)
{
    parties = std::make_unique<TwoPartyHarness>(arch, cfg.seed);
    parties->setJitterUs(cfg.jitterUs);
    const auto &geom = arch.constMem.l1;
    auto &dev = parties->device();
    std::size_t align = setStride(geom);
    // ways+1 trojan lines: the prime thrashes under LRU and stays active
    // across the spy's probing window (see L1ConstChannel::setup).
    Addr trojanBase = dev.allocConst(2 * probeArrayBytes(geom), align);
    trojanAddrs = setFillingAddrs(geom, trojanBase, 0);
    trojanAddrs.push_back(
        setFillingAddrs(geom, trojanBase + probeArrayBytes(geom), 0)
            .front());
    spyAddrs =
        setFillingAddrs(geom, dev.allocConst(probeArrayBytes(geom), align),
                        0);
    sfuWarps = SfuChannel::warpsPerBlock(arch);
    if (cfg.sfuIterations == 0)
        cfg.sfuIterations = SfuChannel::defaultIterations(arch);
}

MultiResourceChannel::~MultiResourceChannel() = default;

void
MultiResourceChannel::runRound(bool cacheBit, bool sfuBit,
                               double &cacheMetric, double &sfuMetric)
{
    unsigned cacheIters = cfg.cacheIterations;
    unsigned sfuIters = cfg.sfuIterations;
    // The trojan covers the spy's full window despite launch jitter.
    unsigned tCacheIters = cacheIters + cacheIters / 2;
    unsigned tSfuIters = sfuIters + sfuIters / 2;

    // Warp 0 runs the cache side; warps 1..sfuWarps run the SFU side.
    gpu::KernelLaunch trojanK;
    trojanK.name = "multires-trojan";
    trojanK.config.gridBlocks = arch.numSms;
    trojanK.config.threadsPerBlock = (sfuWarps + 1) * warpSize;
    auto tAddrs = trojanAddrs;
    trojanK.body = [cacheBit, sfuBit, tCacheIters, tSfuIters,
                    tAddrs](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.warpInBlock() == 0) {
            if (cacheBit) {
                for (unsigned i = 0; i < tCacheIters; ++i)
                    co_await ctx.constLoadSeq(tAddrs);
            }
        } else {
            if (sfuBit) {
                for (unsigned i = 0; i < tSfuIters; ++i)
                    co_await ctx.op(gpu::OpClass::Sinf);
            }
        }
        co_return;
    };

    gpu::KernelLaunch spyK;
    spyK.name = "multires-spy";
    spyK.config.gridBlocks = arch.numSms;
    spyK.config.threadsPerBlock = (sfuWarps + 1) * warpSize;
    auto sAddrs = spyAddrs;
    spyK.body = [cacheIters, sfuIters,
                 sAddrs](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.warpInBlock() == 0) {
            std::uint64_t total = 0;
            for (unsigned i = 0; i < cacheIters; ++i)
                total += co_await ctx.constLoadSeq(sAddrs);
            ctx.out(total);
        } else {
            std::uint64_t total = 0;
            for (unsigned i = 0; i < sfuIters; ++i)
                total += co_await ctx.op(gpu::OpClass::Sinf);
            ctx.out(total);
        }
        co_return;
    };

    auto &tHost = parties->trojanHost();
    auto &sHost = parties->spyHost();
    auto &trojan = tHost.launch(parties->trojanStream(), trojanK);
    if (cfg.trojanLeadUs > 0.0) {
        // Lead measured against the trojan application's clock so the
        // spy's launch trails the trojan's by the full lead regardless
        // of how the two hosts' sync overheads drifted apart.
        sHost.catchUpTo(tHost.now());
        sHost.advanceUs(cfg.trojanLeadUs);
    }
    auto &spy = sHost.launch(parties->spyStream(), spyK);
    sHost.sync(spy);
    tHost.sync(trojan);

    unsigned wpb = spy.config().warpsPerBlock();
    const auto &cacheOut = spy.out(0);
    GPUCC_ASSERT(!cacheOut.empty(), "no cache measurement");
    cacheMetric = static_cast<double>(cacheOut[0]) /
                  (static_cast<double>(cacheIters) * spyAddrs.size());
    double sfuSum = 0.0;
    unsigned sfuCnt = 0;
    for (unsigned w = 1; w < wpb; ++w) {
        const auto &o = spy.out(w);
        if (!o.empty()) {
            sfuSum += static_cast<double>(o[0]) / sfuIters;
            ++sfuCnt;
        }
    }
    GPUCC_ASSERT(sfuCnt > 0, "no SFU measurement");
    sfuMetric = sfuSum / sfuCnt;
}

ChannelResult
MultiResourceChannel::transmit(const BitVec &message)
{
    BitVec payload = message;
    if (payload.size() % 2)
        payload.push_back(0);

    // Calibrate both resources with one all-zeros and one all-ones round.
    double c0, s0, c1, s1;
    runRound(false, false, c0, s0);
    runRound(true, true, c1, s1);
    double cacheThresh = 0.5 * (c0 + c1);
    double sfuThresh = 0.5 * (s0 + s1);

    ChannelResult res;
    res.channelName = "multi-resource (L1 + SFU)";
    res.sent = message;
    res.threshold = cacheThresh;

    Tick start = parties->spyHost().now();
    for (std::size_t i = 0; i < payload.size(); i += 2) {
        double cm = 0.0, sm = 0.0;
        runRound(payload[i] != 0, payload[i + 1] != 0, cm, sm);
        res.received.push_back(cm > cacheThresh ? 1 : 0);
        res.received.push_back(sm > sfuThresh ? 1 : 0);
        (payload[i] ? res.oneMetric : res.zeroMetric).add(cm);
    }
    Tick end = parties->spyHost().now();

    res.received.resize(message.size());
    res.report = compareBits(res.sent, res.received);
    finalizeResult(res, arch, end - start);
    return res;
}

} // namespace gpucc::covert

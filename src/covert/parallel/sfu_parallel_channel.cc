#include "covert/parallel/sfu_parallel_channel.h"

#include <algorithm>

#include "common/log.h"
#include "covert/channels/sfu_channel.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

namespace
{

/** Spy/trojan warp counts per block: spy alone sits in the flat region
 *  of the __sinf curve, spy+trojan lands on a visible step (Figure 6). */
void
warpCounts(const gpu::ArchParams &arch, unsigned &spy, unsigned &trojan)
{
    switch (arch.generation) {
      case gpu::Generation::Fermi:
        spy = 2;
        trojan = 4;
        return;
      case gpu::Generation::Kepler:
        spy = 12;
        trojan = 12;
        return;
      case gpu::Generation::Maxwell:
        spy = 8;
        trojan = 12;
        return;
    }
    spy = 4;
    trojan = 8;
}

} // namespace

SfuParallelChannel::SfuParallelChannel(const gpu::ArchParams &arch_,
                                       SfuParallelConfig cfg_)
    : arch(arch_), cfg(cfg_)
{
    parties = std::make_unique<TwoPartyHarness>(arch, cfg.seed);
    parties->setJitterUs(cfg.jitterUs);
    parties->device().setMitigations(cfg.mitigations);
    warpCounts(arch, spyWarps, trojanWarps);
    if (cfg.iterations == 0) {
        cfg.iterations = SfuChannel::defaultIterations(arch);
        // The Fermi parallel variant pays a larger per-op latency (its
        // SFU ports saturate with the extra warps), and the paper's
        // measurement shows a correspondingly slower round.
        if (arch.generation == gpu::Generation::Fermi)
            cfg.iterations += cfg.iterations / 2;
    }
}

SfuParallelChannel::~SfuParallelChannel() = default;

unsigned
SfuParallelChannel::bitsPerLaunch() const
{
    return arch.schedulersPerSm * (cfg.acrossSms ? arch.numSms : 1);
}

void
SfuParallelChannel::runRound(const BitVec &roundBits,
                             std::vector<double> &metrics)
{
    unsigned N = arch.schedulersPerSm;
    bool acrossSms = cfg.acrossSms;
    unsigned iters = cfg.iterations;

    gpu::KernelLaunch trojanK;
    trojanK.name = "sfu-par-trojan";
    trojanK.config.gridBlocks = arch.numSms;
    trojanK.config.threadsPerBlock = trojanWarps * warpSize;
    BitVec bits = roundBits;
    unsigned trojanIters = iters + iters / 2; // cover the spy's window
    trojanK.body = [bits, N, acrossSms,
                    trojanIters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (!acrossSms && ctx.smid() != 0)
            co_return;
        unsigned smSlot = acrossSms ? ctx.smid() : 0;
        std::size_t idx = std::size_t(smSlot) * N + ctx.schedulerId();
        if (idx < bits.size() && bits[idx]) {
            for (unsigned i = 0; i < trojanIters; ++i)
                co_await ctx.op(gpu::OpClass::Sinf);
        }
        co_return;
    };

    gpu::KernelLaunch spyK;
    spyK.name = "sfu-par-spy";
    spyK.config.gridBlocks = arch.numSms;
    spyK.config.threadsPerBlock = spyWarps * warpSize;
    spyK.body = [iters, acrossSms](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (!acrossSms && ctx.smid() != 0)
            co_return;
        std::uint64_t total = 0;
        for (unsigned i = 0; i < iters; ++i)
            total += co_await ctx.op(gpu::OpClass::Sinf);
        ctx.out(ctx.schedulerId());
        ctx.out(total);
        co_return;
    };

    auto &tHost = parties->trojanHost();
    auto &sHost = parties->spyHost();
    auto &trojan = tHost.launch(parties->trojanStream(), trojanK);
    if (cfg.trojanLeadUs > 0.0) {
        // Lead measured against the trojan application's clock so the
        // spy's launch trails the trojan's by the full lead regardless
        // of how the two hosts' sync overheads drifted apart.
        sHost.catchUpTo(tHost.now());
        sHost.advanceUs(cfg.trojanLeadUs);
    }
    auto &spy = sHost.launch(parties->spyStream(), spyK);
    sHost.sync(spy);
    tHost.sync(trojan);

    // Aggregate spy warp latencies per (SM slot, scheduler) lane.
    std::vector<double> sum(metrics.size(), 0.0);
    std::vector<unsigned> cnt(metrics.size(), 0);
    unsigned wpb = spy.config().warpsPerBlock();
    for (const auto &rec : spy.blockRecords()) {
        if (!acrossSms && rec.smId != 0)
            continue;
        unsigned smSlot = acrossSms ? rec.smId : 0;
        for (unsigned w = 0; w < wpb; ++w) {
            const auto &out = spy.out(rec.blockId * wpb + w);
            if (out.size() < 2)
                continue;
            std::size_t idx = std::size_t(smSlot) * N + out[0];
            if (idx < sum.size()) {
                sum[idx] += static_cast<double>(out[1]) / cfg.iterations;
                cnt[idx] += 1;
            }
        }
    }
    for (std::size_t i = 0; i < metrics.size(); ++i)
        metrics[i] = cnt[i] ? sum[i] / cnt[i] : 0.0;
}

ChannelResult
SfuParallelChannel::transmit(const BitVec &message)
{
    unsigned perLaunch = bitsPerLaunch();
    unsigned rounds = (static_cast<unsigned>(message.size()) + perLaunch -
                       1) / perLaunch;
    BitVec payload = message;
    payload.resize(std::size_t(rounds) * perLaunch, 0);

    // Calibration: one all-zeros and one all-ones round fix per-lane
    // thresholds.
    std::vector<double> zeroRef(perLaunch, 0.0), oneRef(perLaunch, 0.0);
    runRound(BitVec(perLaunch, 0), zeroRef);
    runRound(BitVec(perLaunch, 1), oneRef);
    std::vector<double> thresh(perLaunch);
    for (unsigned i = 0; i < perLaunch; ++i)
        thresh[i] = 0.5 * (zeroRef[i] + oneRef[i]);

    ChannelResult res;
    res.channelName = cfg.acrossSms
                          ? "SFU parallel (schedulers x SMs)"
                          : "SFU parallel (schedulers)";
    res.sent = message;
    res.threshold = thresh.empty() ? 0.0 : thresh[0];

    Tick start = parties->spyHost().now();
    std::vector<double> metrics(perLaunch, 0.0);
    res.received.assign(payload.size(), 0);
    for (unsigned r = 0; r < rounds; ++r) {
        BitVec roundBits(payload.begin() + std::size_t(r) * perLaunch,
                         payload.begin() + std::size_t(r + 1) * perLaunch);
        runRound(roundBits, metrics);
        for (unsigned i = 0; i < perLaunch; ++i) {
            bool bit = metrics[i] > thresh[i];
            res.received[std::size_t(r) * perLaunch + i] = bit ? 1 : 0;
            (roundBits[i] ? res.oneMetric : res.zeroMetric).add(metrics[i]);
        }
    }
    Tick end = parties->spyHost().now();

    res.received.resize(message.size());
    res.report = compareBits(res.sent, res.received);
    finalizeResult(res, arch, end - start);
    return res;
}

} // namespace gpucc::covert

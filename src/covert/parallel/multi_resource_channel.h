/**
 * @file
 * Multi-resource covert channel (Section 7): one bit through the L1
 * constant cache and one bit through the SFUs simultaneously, from the
 * same kernel pair. The paper measures 56 Kbps on Kepler and Maxwell
 * with this combination; it composes with the other optimizations since
 * the two resources contend independently.
 */

#ifndef GPUCC_COVERT_PARALLEL_MULTI_RESOURCE_CHANNEL_H
#define GPUCC_COVERT_PARALLEL_MULTI_RESOURCE_CHANNEL_H

#include <memory>

#include "covert/channel.h"

namespace gpucc::covert
{

/** Configuration of the combined L1+SFU channel. */
struct MultiResourceConfig
{
    unsigned cacheIterations = 20; //!< prime/probe iterations per launch
    /** __sinf iterations per launch; 0 = per-architecture default. */
    unsigned sfuIterations = 0;
    double trojanLeadUs = 5.0; //!< launch-timing overlap control
    double jitterUs = -1.0;
    std::uint64_t seed = 1;
};

/** Two bits per kernel-pair launch: (L1 set, SFU port). */
class MultiResourceChannel
{
  public:
    MultiResourceChannel(const gpu::ArchParams &arch,
                         MultiResourceConfig cfg = {});
    ~MultiResourceChannel();

    /** Transmit @p message, two bits per launch (even: L1, odd: SFU). */
    ChannelResult transmit(const BitVec &message);

    /** Harness accessor (tests inspect device state). */
    TwoPartyHarness &harness() { return *parties; }

  private:
    void runRound(bool cacheBit, bool sfuBit, double &cacheMetric,
                  double &sfuMetric);

    gpu::ArchParams arch;
    MultiResourceConfig cfg;
    std::unique_ptr<TwoPartyHarness> parties;
    std::vector<Addr> trojanAddrs;
    std::vector<Addr> spyAddrs;
    unsigned sfuWarps = 0;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_PARALLEL_MULTI_RESOURCE_CHANNEL_H

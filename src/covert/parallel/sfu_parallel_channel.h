/**
 * @file
 * Parallelized SFU covert channel (Section 7.2, Table 3).
 *
 * Contention on the SFUs is isolated per warp scheduler, so each
 * scheduler carries an independent bit: the trojan activates __sinf
 * traffic on scheduler s iff bit s is 1, and the spy decodes from the
 * per-scheduler latencies of its own warps. Enabling all SMs multiplies
 * the parallelism again by the SM count, giving the paper's
 * 380 Kbps / 1.2 Mbps / 1.3 Mbps results.
 */

#ifndef GPUCC_COVERT_PARALLEL_SFU_PARALLEL_CHANNEL_H
#define GPUCC_COVERT_PARALLEL_SFU_PARALLEL_CHANNEL_H

#include <memory>

#include "covert/channel.h"

namespace gpucc::covert
{

/** Configuration of the parallel SFU channel. */
struct SfuParallelConfig
{
    bool acrossSms = false;   //!< one channel instance per SM
    /** __sinf loop length per launch; 0 = per-architecture default. */
    unsigned iterations = 0;
    unsigned calibrationBits = 2; //!< calibration rounds (per lane)
    double trojanLeadUs = 5.0; //!< launch-timing overlap control
    double jitterUs = -1.0;
    std::uint64_t seed = 1;
    /** Section 9 defenses active on the device (ablation studies). */
    gpu::MitigationConfig mitigations;
};

/** Multi-bit-per-launch SFU channel (one bit per warp scheduler). */
class SfuParallelChannel
{
  public:
    SfuParallelChannel(const gpu::ArchParams &arch,
                       SfuParallelConfig cfg = {});
    ~SfuParallelChannel();

    /** Transmit @p message; bits are striped over schedulers (and SMs). */
    ChannelResult transmit(const BitVec &message);

    /** Bits carried per kernel-pair launch. */
    unsigned bitsPerLaunch() const;

  private:
    /** Run one launch round; fills metrics[lane]. */
    void runRound(const BitVec &roundBits, std::vector<double> &metrics);

    gpu::ArchParams arch;
    SfuParallelConfig cfg;
    std::unique_ptr<TwoPartyHarness> parties;
    unsigned spyWarps;
    unsigned trojanWarps;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_PARALLEL_SFU_PARALLEL_CHANNEL_H

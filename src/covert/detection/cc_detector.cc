#include "covert/detection/cc_detector.h"

#include <algorithm>
#include <map>

namespace gpucc::covert
{

DetectionResult
analyzeEvictionTrace(const std::vector<mem::EvictionEvent> &trace,
                     const DetectorConfig &cfg)
{
    struct Train
    {
        unsigned cross = 0;
        unsigned turnTransitions = 0;
        unsigned flips = 0;
        int turnBy = -1;
        int turnVictim = -1;
        bool haveTurn = false;
    };
    std::map<std::pair<unsigned, unsigned>, Train> trains;

    for (const auto &e : trace) {
        // Self-evictions are capacity misses: benign by construction.
        if (e.byApp < 0 || e.victimApp < 0 || e.byApp == e.victimApp)
            continue;
        Train &t = trains[{e.smId, e.set}];
        ++t.cross;
        // Burst granularity: a prime evicts several victim lines in a
        // row; consecutive evictions in the same direction are one
        // "turn". The channel's signature is near-perfect alternation
        // of turn direction (trojan burst, spy burst, trojan burst...).
        bool sameDirection = t.haveTurn && e.byApp == t.turnBy &&
                             e.victimApp == t.turnVictim;
        if (sameDirection)
            continue;
        if (t.haveTurn) {
            ++t.turnTransitions;
            if (e.byApp == t.turnVictim && e.victimApp == t.turnBy)
                ++t.flips;
        }
        t.turnBy = e.byApp;
        t.turnVictim = e.victimApp;
        t.haveTurn = true;
    }

    DetectionResult res;
    for (const auto &[key, t] : trains) {
        SetConflictScore s;
        s.smId = key.first;
        s.set = key.second;
        s.crossAppEvictions = t.cross;
        s.oscillationFraction =
            t.turnTransitions > 0
                ? static_cast<double>(t.flips) / t.turnTransitions
                : 0.0;
        res.scores.push_back(s);
    }
    std::sort(res.scores.begin(), res.scores.end(),
              [](const SetConflictScore &a, const SetConflictScore &b) {
                  if (a.oscillationFraction != b.oscillationFraction)
                      return a.oscillationFraction > b.oscillationFraction;
                  return a.crossAppEvictions > b.crossAppEvictions;
              });
    for (const auto &s : res.scores) {
        if (s.crossAppEvictions >= cfg.minCrossEvictions &&
            s.oscillationFraction >= cfg.oscillationThreshold) {
            res.covertChannelSuspected = true;
            res.topSet = s;
            break;
        }
    }
    if (!res.covertChannelSuspected && !res.scores.empty())
        res.topSet = res.scores.front();
    return res;
}

} // namespace gpucc::covert

/**
 * @file
 * Contention-anomaly detector (Section 9: "attempt to detect anomalous
 * contention", in the spirit of CC-Hunter).
 *
 * A cache covert channel leaves a distinctive footprint in the eviction
 * stream: on the communication set, two applications evict *each
 * other's* lines in a sustained, oscillating train (trojan evicts spy,
 * spy's probe re-installs and evicts trojan, ...). Benign workloads
 * evict mostly their own lines (capacity misses), spread their conflict
 * misses over many sets, and rarely oscillate.
 *
 * The detector consumes the ConstMemory eviction trace and scores each
 * (SM, set) conflict train on (a) cross-application eviction count and
 * (b) oscillation fraction — the fraction of consecutive cross-app
 * evictions whose direction flips (A evicts B followed by B evicts A).
 */

#ifndef GPUCC_COVERT_DETECTION_CC_DETECTOR_H
#define GPUCC_COVERT_DETECTION_CC_DETECTOR_H

#include <vector>

#include "mem/const_memory.h"

namespace gpucc::covert
{

/** Score of one (SM, set) conflict train. */
struct SetConflictScore
{
    unsigned smId = 0;
    unsigned set = 0;
    unsigned crossAppEvictions = 0; //!< evictions with byApp != victimApp
    double oscillationFraction = 0.0; //!< direction flips / transitions
};

/** Detector configuration. */
struct DetectorConfig
{
    /** Minimum cross-app evictions on one set to consider it at all. */
    unsigned minCrossEvictions = 64;
    /** Oscillation fraction above which a set looks like a channel. */
    double oscillationThreshold = 0.55;
};

/** Verdict over one trace. */
struct DetectionResult
{
    bool covertChannelSuspected = false;
    SetConflictScore topSet;              //!< highest-scoring set
    std::vector<SetConflictScore> scores; //!< all sets with conflicts
};

/** Analyze an eviction trace. */
DetectionResult analyzeEvictionTrace(
    const std::vector<mem::EvictionEvent> &trace,
    const DetectorConfig &cfg = {});

} // namespace gpucc::covert

#endif // GPUCC_COVERT_DETECTION_CC_DETECTOR_H

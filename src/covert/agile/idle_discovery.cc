#include "covert/agile/idle_discovery.h"

#include <limits>

#include "common/log.h"
#include "covert/channels/cache_sets.h"
#include "covert/sync/handshake.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

std::vector<SetActivity>
probeSetActivity(gpu::Device &dev, gpu::HostContext &host, unsigned rounds,
                 Cycle idleCycles)
{
    const auto &geom = dev.arch().constMem.l1;
    unsigned numSets = static_cast<unsigned>(geom.numSets());
    Addr base = dev.allocConst(probeArrayBytes(geom), setStride(geom));
    double missThresh = ProtocolTiming::forArch(dev.arch())
                            .dataThresholdCycles;

    gpu::KernelLaunch k;
    k.name = "set-activity-scan";
    k.config.gridBlocks = dev.numSms();
    k.config.threadsPerBlock = warpSize;
    k.body = [base, geom, numSets, rounds, idleCycles,
              missThresh](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        for (unsigned set = 0; set < numSets; ++set) {
            auto lines = setFillingAddrs(geom, base, set);
            unsigned evicted = 0;
            co_await ctx.constLoadSeq(lines); // own the set
            for (unsigned r = 0; r < rounds; ++r) {
                co_await ctx.sleep(idleCycles);
                std::uint64_t total = co_await ctx.constLoadSeq(lines);
                double avg = static_cast<double>(total) / lines.size();
                if (avg > missThresh)
                    ++evicted;
            }
            ctx.out(set);
            ctx.out(evicted);
        }
        co_return;
    };

    auto &stream = dev.createStream();
    auto &inst = host.launch(stream, k);
    host.sync(inst);

    std::vector<SetActivity> activity;
    unsigned wpb = inst.config().warpsPerBlock();
    for (const auto &rec : inst.blockRecords()) {
        if (rec.smId != 0)
            continue;
        const auto &out = inst.out(rec.blockId * wpb);
        for (std::size_t i = 0; i + 1 < out.size(); i += 2) {
            activity.push_back(SetActivity{
                static_cast<unsigned>(out[i]),
                static_cast<double>(out[i + 1]) / rounds});
        }
    }
    GPUCC_ASSERT(activity.size() == numSets,
                 "scan produced %zu sets, expected %u", activity.size(),
                 numSets);
    return activity;
}

unsigned
pickQuietDataSet(const std::vector<SetActivity> &activity,
                 unsigned dataSets, unsigned reservedSignalSets)
{
    GPUCC_ASSERT(!activity.empty(), "empty activity scan");
    unsigned usable = static_cast<unsigned>(activity.size()) -
                      reservedSignalSets;
    GPUCC_ASSERT(dataSets <= usable, "window larger than usable sets");
    double best = std::numeric_limits<double>::max();
    unsigned bestStart = 0;
    for (unsigned start = 0; start + dataSets <= usable; ++start) {
        double sum = 0.0;
        for (unsigned i = 0; i < dataSets; ++i)
            sum += activity[start + i].missFraction;
        if (sum < best) {
            best = sum;
            bestStart = start;
        }
    }
    return bestStart;
}

} // namespace gpucc::covert

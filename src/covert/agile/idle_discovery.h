/**
 * @file
 * Idle-resource discovery (Section 8, "dynamically identifying idle
 * resources").
 *
 * The paper sketches a whitespace-networking-style alternative to
 * exclusive co-location: instead of locking interferers out, the two
 * parties scan the shared resource (cache sets) for quiet ones and move
 * the channel there. This module implements the scan: a probe kernel
 * repeatedly primes each L1 set, idles, and re-probes; sets that a
 * third workload is hammering show evictions, quiet sets do not. The
 * attacker pair runs the scan independently (both see the same
 * interferer) and configures the channel's data sets on the quiet
 * window.
 */

#ifndef GPUCC_COVERT_AGILE_IDLE_DISCOVERY_H
#define GPUCC_COVERT_AGILE_IDLE_DISCOVERY_H

#include <vector>

#include "gpu/device.h"
#include "gpu/host.h"

namespace gpucc::covert
{

/** Observed activity of one L1 cache set. */
struct SetActivity
{
    unsigned set = 0;
    double missFraction = 0.0; //!< re-probe misses / probes (0 = quiet)
};

/**
 * Scan every L1 set on SM 0 for third-party eviction activity.
 *
 * @param dev Device shared with the (already running) interferers.
 * @param host Application performing the scan.
 * @param rounds Prime/idle/probe rounds per set.
 * @param idleCycles Idle window between prime and probe.
 */
std::vector<SetActivity> probeSetActivity(gpu::Device &dev,
                                          gpu::HostContext &host,
                                          unsigned rounds = 16,
                                          Cycle idleCycles = 4000);

/**
 * Choose the quietest contiguous window of @p dataSets sets, keeping
 * the top @p reservedSignalSets sets free for the handshake.
 */
unsigned pickQuietDataSet(const std::vector<SetActivity> &activity,
                          unsigned dataSets,
                          unsigned reservedSignalSets = 2);

} // namespace gpucc::covert

#endif // GPUCC_COVERT_AGILE_IDLE_DISCOVERY_H

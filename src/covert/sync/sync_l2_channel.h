/**
 * @file
 * Synchronized L2 covert channel (Section 7.1: "We illustrate the
 * synchronization process for the L1 and L2 covert channels").
 *
 * The inter-SM variant of the persistent synchronized channel: trojan
 * and spy occupy different SMs and communicate entirely through the
 * device-wide L2 constant cache. Three L2 sets carry the protocol
 * (data, ready-to-send, ready-to-receive); each side is driven by a
 * single warp, so no block barrier is involved. Signal detection uses
 * L2-level latencies: a set the peer filled reads at device-memory
 * latency instead of the L2 hit latency.
 */

#ifndef GPUCC_COVERT_SYNC_SYNC_L2_CHANNEL_H
#define GPUCC_COVERT_SYNC_SYNC_L2_CHANNEL_H

#include <memory>

#include "covert/channel.h"
#include "covert/sync/handshake.h"

namespace gpucc::covert
{

/** Configuration of the synchronized L2 channel. */
struct SyncL2Config
{
    double jitterUs = -1.0;
    std::uint64_t seed = 1;
    gpu::MitigationConfig mitigations;
};

/** Persistent-kernel synchronized channel on the shared L2. */
class SyncL2Channel
{
  public:
    SyncL2Channel(const gpu::ArchParams &arch, SyncL2Config cfg = {});
    ~SyncL2Channel();

    /** Transmit @p message; both kernels launch exactly once. */
    ChannelResult transmit(const BitVec &message);

    /** The L2-level protocol timing in use. */
    const ProtocolTiming &protocolTiming() const { return timing; }

    /** Derive L2-level thresholds/pacing for @p arch. */
    static ProtocolTiming l2TimingFor(const gpu::ArchParams &arch);

    /** Harness accessor. */
    TwoPartyHarness &harness() { return *parties; }

  private:
    gpu::ArchParams arch;
    SyncL2Config cfg;
    ProtocolTiming timing;
    std::unique_ptr<TwoPartyHarness> parties;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_SYNC_SYNC_L2_CHANNEL_H

#include "covert/sync/sync_l2_channel.h"

#include "common/log.h"
#include "covert/channels/cache_sets.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

namespace
{
constexpr double outScale = 256.0;
}

ProtocolTiming
SyncL2Channel::l2TimingFor(const gpu::ArchParams &arch)
{
    // Same protocol, L2-level symbols: a set the peer filled reads at
    // device-memory latency instead of the L2 hit latency. (The L2-set
    // strides alias into a single L1 set and thrash it, so every access
    // structurally bypasses the L1 — no L1 masking to worry about.)
    ProtocolTiming t;
    double hit = static_cast<double>(arch.constMem.l2HitCycles);
    double miss = static_cast<double>(arch.constMem.memCycles);
    t.missThresholdCycles = hit + 0.85 * (miss - hit);
    t.dataThresholdCycles = 0.5 * (hit + miss);
    t.maxPolls = 48;
    t.maxRetries = 3;
    t.pollBackoffCycles = 700;
    t.settleCycles = 7000;
    t.roundGuardCycles = 3000;
    return t;
}

SyncL2Channel::SyncL2Channel(const gpu::ArchParams &arch_,
                             SyncL2Config cfg_)
    : arch(arch_), cfg(cfg_), timing(l2TimingFor(arch_))
{
    parties = std::make_unique<TwoPartyHarness>(arch, cfg.seed);
    parties->setJitterUs(cfg.jitterUs);
    parties->device().setMitigations(cfg.mitigations);
}

SyncL2Channel::~SyncL2Channel() = default;

ChannelResult
SyncL2Channel::transmit(const BitVec &message)
{
    const auto &geom = arch.constMem.l2;
    unsigned sets = static_cast<unsigned>(geom.numSets());
    auto &dev = parties->device();
    std::size_t align = setStride(geom);
    Addr tBase = dev.allocConst(probeArrayBytes(geom), align);
    Addr sBase = dev.allocConst(probeArrayBytes(geom), align);

    auto dataT = setFillingAddrs(geom, tBase, 0);
    auto rtsT = setFillingAddrs(geom, tBase, sets - 2);
    auto rtrT = setFillingAddrs(geom, tBase, sets - 1);
    auto dataS = setFillingAddrs(geom, sBase, 0);
    auto rtsS = setFillingAddrs(geom, sBase, sets - 2);
    auto rtrS = setFillingAddrs(geom, sBase, sets - 1);

    ProtocolTiming t = timing;
    BitVec payload = message;
    unsigned rounds = static_cast<unsigned>(payload.size());

    // Single-warp protocol drivers; one block each, so the leftover
    // policy puts the two kernels on different SMs (the inter-SM
    // scenario this channel exists for).
    gpu::KernelLaunch trojanK;
    trojanK.name = "sync-l2-trojan";
    trojanK.config.gridBlocks = 1;
    trojanK.config.threadsPerBlock = warpSize;
    trojanK.body = [rtsT, rtrT, dataT, payload, rounds,
                    t](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        co_await primeSet(ctx, rtrT);
        co_await ctx.sleep(t.settleCycles);
        for (unsigned r = 0; r < rounds; ++r) {
            for (unsigned attempt = 0; attempt < t.maxRetries;
                 ++attempt) {
                co_await primeSet(ctx, rtsT);
                if (co_await waitForSignal(ctx, rtrT, t))
                    break;
            }
            if (payload[r])
                co_await primeSet(ctx, dataT);
            co_await ctx.sleep(t.roundGuardCycles);
        }
        co_return;
    };

    gpu::KernelLaunch spyK;
    spyK.name = "sync-l2-spy";
    spyK.config.gridBlocks = 1;
    spyK.config.threadsPerBlock = warpSize;
    spyK.body = [rtsS, rtrS, dataS, rounds,
                 t](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        co_await primeSet(ctx, rtsS);
        co_await primeSet(ctx, dataS);
        for (unsigned r = 0; r < rounds; ++r) {
            for (unsigned attempt = 0; attempt < t.maxRetries;
                 ++attempt) {
                if (co_await waitForSignal(ctx, rtsS, t))
                    break;
            }
            co_await primeSet(ctx, rtrS);
            co_await ctx.sleep(t.settleCycles);
            double avg = co_await probeSetAvg(ctx, dataS);
            ctx.out(static_cast<std::uint64_t>(avg * outScale));
        }
        co_return;
    };

    auto &tHost = parties->trojanHost();
    auto &sHost = parties->spyHost();
    auto &trojan = tHost.launch(parties->trojanStream(), trojanK);
    auto &spy = sHost.launch(parties->spyStream(), spyK);
    sHost.sync(spy);
    tHost.sync(trojan);

    ChannelResult res;
    res.channelName = "sync L2 (inter-SM)";
    res.sent = message;
    res.threshold = t.dataThresholdCycles;
    const auto &vals = spy.out(0);
    for (std::size_t r = 0; r < vals.size() && r < payload.size(); ++r) {
        double avg = static_cast<double>(vals[r]) / outScale;
        res.received.push_back(avg > t.dataThresholdCycles ? 1 : 0);
        (payload[r] ? res.oneMetric : res.zeroMetric).add(avg);
    }
    res.report = compareBits(res.sent, res.received);
    finalizeResult(res, arch, spy.endTick() - spy.startTick());
    return res;
}

} // namespace gpucc::covert

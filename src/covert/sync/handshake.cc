#include "covert/sync/handshake.h"

#include "common/log.h"

namespace gpucc::covert
{

ProtocolTiming
ProtocolTiming::forArch(const gpu::ArchParams &arch)
{
    ProtocolTiming t;
    const auto &cm = arch.constMem;
    double hit = static_cast<double>(cm.l1HitCycles);
    double miss = static_cast<double>(cm.l2HitCycles);
    t.missThresholdCycles = hit + 0.85 * (miss - hit);
    t.dataThresholdCycles = 0.5 * (hit + miss);
    switch (arch.generation) {
      case gpu::Generation::Fermi:
        // The Fermi protocol pays more per round (higher constant-cache
        // latencies and one dispatch unit per scheduler).
        t.pollBackoffCycles = 700;
        t.settleCycles = 16600;
        t.roundGuardCycles = 5400;
        t.setStaggerCycles = 2900;
        break;
      case gpu::Generation::Kepler:
        t.pollBackoffCycles = 400;
        t.settleCycles = 8600;
        t.roundGuardCycles = 3000;
        t.setStaggerCycles = 1150;
        break;
      case gpu::Generation::Maxwell:
        t.pollBackoffCycles = 400;
        t.settleCycles = 9000;
        t.roundGuardCycles = 3200;
        t.setStaggerCycles = 1200;
        break;
    }
    return t;
}

ProtocolTiming
ProtocolTiming::withDefaultsFrom(const ProtocolTiming &defaults) const
{
    ProtocolTiming t = *this;
    if (t.missThresholdCycles <= 0.0)
        t.missThresholdCycles = defaults.missThresholdCycles;
    if (t.dataThresholdCycles <= 0.0)
        t.dataThresholdCycles = defaults.dataThresholdCycles;
    if (t.maxPolls == 0)
        t.maxPolls = defaults.maxPolls;
    if (t.maxRetries == 0)
        t.maxRetries = defaults.maxRetries;
    if (t.pollBackoffCycles == 0)
        t.pollBackoffCycles = defaults.pollBackoffCycles;
    if (t.settleCycles == 0)
        t.settleCycles = defaults.settleCycles;
    if (t.roundGuardCycles == 0)
        t.roundGuardCycles = defaults.roundGuardCycles;
    if (t.setStaggerCycles == 0)
        t.setStaggerCycles = defaults.setStaggerCycles;
    return t;
}

gpu::DeviceTask<void>
primeSet(gpu::WarpCtx &ctx, const std::vector<Addr> &addrs)
{
    co_await ctx.constLoadSeq(addrs);
    co_return;
}

gpu::DeviceTask<double>
probeSetAvg(gpu::WarpCtx &ctx, const std::vector<Addr> &addrs)
{
    std::uint64_t total = co_await ctx.constLoadSeq(addrs);
    co_return static_cast<double>(total) /
        static_cast<double>(addrs.size());
}

gpu::DeviceTask<bool>
waitForSignal(gpu::WarpCtx &ctx, const std::vector<Addr> &mine,
              const ProtocolTiming &timing, RobustnessCounters *counters)
{
    GPUCC_ASSERT(timing.missThresholdCycles > 0.0,
                 "ProtocolTiming has no signal threshold: derive it via "
                 "forArch()/withDefaultsFrom() or calibrate online");
    for (unsigned poll = 0; poll < timing.maxPolls; ++poll) {
        double avg = co_await probeSetAvg(ctx, mine);
        if (avg > timing.missThresholdCycles) {
            // Re-arm: if the detecting probe interleaved with the
            // peer's in-flight prime, the peer's tail re-evicted our
            // refills and the set would spuriously signal again next
            // round. One confirming pass restores ownership (pure hits
            // when the detection was clean).
            if (counters)
                ++counters->rearms;
            co_await probeSetAvg(ctx, mine);
            co_return true;
        }
        co_await ctx.sleep(timing.pollBackoffCycles);
    }
    if (counters)
        ++counters->timeouts;
    co_return false;
}

} // namespace gpucc::covert

/**
 * @file
 * Synchronized SFU channel (the Section 7.1 suggestion "it is possible
 * to implement synchronization for other channels as well", realized).
 *
 * Persistent kernels communicate one bit per protocol round: the
 * Figure 11 three-way handshake runs over two L1 constant-cache sets
 * exactly as in the synchronized L1 channel, but the data phase carries
 * the bit through SFU issue-port contention — the trojan's data warps
 * spin __sinf during the agreed window iff the bit is 1, and the spy's
 * data warps measure their own __sinf latency. Removing the per-bit
 * kernel launches multiplies the Section 5.2 baseline severalfold.
 */

#ifndef GPUCC_COVERT_SYNC_SYNC_SFU_CHANNEL_H
#define GPUCC_COVERT_SYNC_SYNC_SFU_CHANNEL_H

#include <memory>

#include "covert/channel.h"
#include "covert/sync/handshake.h"

namespace gpucc::covert
{

/** Configuration of the synchronized SFU channel. */
struct SyncSfuConfig
{
    unsigned dataOpsPerBit = 64; //!< spy __sinf samples per bit
    double jitterUs = -1.0;
    std::uint64_t seed = 1;
    gpu::MitigationConfig mitigations;
};

/** Persistent-kernel synchronized channel on the SFU issue ports. */
class SyncSfuChannel
{
  public:
    SyncSfuChannel(const gpu::ArchParams &arch, SyncSfuConfig cfg = {});
    ~SyncSfuChannel();

    /** Transmit @p message; both kernels launch exactly once. */
    ChannelResult transmit(const BitVec &message);

    /** Harness accessor. */
    TwoPartyHarness &harness() { return *parties; }

  private:
    gpu::ArchParams arch;
    SyncSfuConfig cfg;
    ProtocolTiming timing;
    std::unique_ptr<TwoPartyHarness> parties;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_SYNC_SYNC_SFU_CHANNEL_H

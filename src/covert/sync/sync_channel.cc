#include "covert/sync/sync_channel.h"

#include <algorithm>

#include "common/log.h"
#include "covert/channels/cache_sets.h"
#include "gpu/warp.h"

namespace gpucc::covert
{

namespace
{

/** Fixed-point scale for latencies reported through out(). */
constexpr double outScale = 256.0;

/** Per-party, per-set line addresses. */
struct SetPlan
{
    std::vector<std::vector<Addr>> data; //!< [m] -> lines of data set m
    std::vector<Addr> rts;               //!< ready-to-send set lines
    std::vector<Addr> rtr;               //!< ready-to-receive set lines
};

SetPlan
makePlan(const mem::CacheGeometry &geom, Addr base, unsigned dataSets,
         unsigned firstDataSet)
{
    SetPlan p;
    unsigned sets = static_cast<unsigned>(geom.numSets());
    GPUCC_ASSERT(dataSets + 2 <= sets,
                 "L1 has %u sets; cannot carry %u data bits + 2 signals",
                 sets, dataSets);
    GPUCC_ASSERT(firstDataSet + dataSets <= sets - 2,
                 "data sets [%u, %u) collide with the signalling sets",
                 firstDataSet, firstDataSet + dataSets);
    for (unsigned m = 0; m < dataSets; ++m)
        p.data.push_back(setFillingAddrs(geom, base, firstDataSet + m));
    p.rts = setFillingAddrs(geom, base, sets - 2);
    p.rtr = setFillingAddrs(geom, base, sets - 1);
    return p;
}

} // namespace

SyncL1Channel::SyncL1Channel(const gpu::ArchParams &arch_,
                             SyncChannelConfig cfg_)
    : arch(arch_), cfg(cfg_)
{
    // Zero-valued fields of a caller-supplied timing fall back to the
    // per-arch defaults (the struct itself carries no tuned literals).
    timing = cfg.useArchTiming
                 ? ProtocolTiming::forArch(arch)
                 : cfg.timing.withDefaultsFrom(ProtocolTiming::forArch(arch));
    parties = std::make_unique<TwoPartyHarness>(arch, cfg.seed);
    parties->setJitterUs(cfg.jitterUs);
    parties->device().setMitigations(cfg.mitigations);
}

SyncL1Channel::~SyncL1Channel() = default;

unsigned
SyncL1Channel::bitsPerRound() const
{
    unsigned sms = cfg.allSms ? arch.numSms : 1;
    return sms * cfg.dataSetsPerSm;
}

ChannelResult
SyncL1Channel::transmit(const BitVec &message)
{
    const auto &geom = arch.constMem.l1;
    auto &dev = parties->device();
    unsigned M = cfg.dataSetsPerSm;
    unsigned participants = cfg.allSms ? arch.numSms : 1;
    unsigned perRound = bitsPerRound();
    unsigned rounds =
        (static_cast<unsigned>(message.size()) + perRound - 1) / perRound;

    std::size_t align = setStride(geom);
    SetPlan trojanPlan = makePlan(
        geom, dev.allocConst(probeArrayBytes(geom), align), M,
        cfg.firstDataSet);
    SetPlan spyPlan = makePlan(
        geom, dev.allocConst(probeArrayBytes(geom), align), M,
        cfg.firstDataSet);

    ProtocolTiming t = timing;
    BitVec payload = message;
    payload.resize(static_cast<std::size_t>(rounds) * perRound, 0);

    // Both kernels record their recovery events into one shared
    // instance (the event loop is single-threaded, so plain increments
    // are safe); the result carries a copy.
    auto counters = std::make_shared<RobustnessCounters>();

    // ---- Trojan kernel -------------------------------------------------
    gpu::KernelLaunch trojanK;
    trojanK.name = "sync-trojan";
    trojanK.config.gridBlocks = arch.numSms;
    trojanK.config.threadsPerBlock = (M + 1) * warpSize;
    if (exclusive &&
        arch.limits.smemBytes >= 2 * arch.limits.smemPerBlockBytes) {
        // Maxwell-style: both parties can claim a full per-block
        // allocation and still co-locate.
        trojanK.config.smemBytesPerBlock = arch.limits.smemPerBlockBytes;
    }
    bool allSms = cfg.allSms;
    trojanK.body = [trojanPlan, payload, rounds, M, participants, t,
                    allSms, counters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        unsigned smSlot = allSms ? ctx.smid() : 0;
        if (!allSms && ctx.smid() != 0)
            co_return; // only the SM-0 pair participates
        unsigned w = ctx.warpInBlock();

        // Warm-up: a party pre-loads only the lines it will *poll* —
        // priming a set it signals on would send a spurious signal and
        // permanently skew the round alignment.
        if (w == 0)
            co_await primeSet(ctx, trojanPlan.rtr);
        co_await ctx.syncthreads();
        co_await ctx.sleep(t.settleCycles);

        for (unsigned r = 0; r < rounds; ++r) {
            if (w == 0) {
                // Handshake: announce, then wait for the spy.
                for (unsigned attempt = 0; attempt < t.maxRetries;
                     ++attempt) {
                    if (attempt > 0)
                        ++counters->retries;
                    co_await primeSet(ctx, trojanPlan.rts);
                    bool ok = co_await waitForSignal(ctx, trojanPlan.rtr,
                                                     t, counters.get());
                    if (ok)
                        break;
                }
            }
            co_await ctx.syncthreads();
            if (w != 0) {
                // Divergent constant accesses replay serially: data sets
                // are handled with a per-set stagger (see ProtocolTiming).
                if (w > 1)
                    co_await ctx.sleep((w - 1) * t.setStaggerCycles);
                std::size_t idx = std::size_t(r) * (participants * M) +
                                  std::size_t(smSlot) * M + (w - 1);
                if (payload[idx])
                    co_await primeSet(ctx, trojanPlan.data[w - 1]);
            }
            co_await ctx.syncthreads();
            co_await ctx.sleep(t.roundGuardCycles);
        }
        // Linger until the spy's final settle+probe completes: if the
        // trojan's block retired first, the leftover scheduler would
        // admit a queued interferer onto this SM mid-probe and corrupt
        // the last round (the exclusive co-location seal must outlive
        // the receiver, not the sender).
        co_await ctx.sleep(t.settleCycles + 6 * t.setStaggerCycles + 4000);
        co_return;
    };

    // ---- Spy kernel ----------------------------------------------------
    gpu::KernelLaunch spyK;
    spyK.name = "sync-spy";
    spyK.config.gridBlocks = arch.numSms;
    spyK.config.threadsPerBlock = (M + 1) * warpSize;
    if (exclusive)
        spyK.config.smemBytesPerBlock = arch.limits.smemPerBlockBytes;
    spyK.body = [spyPlan, rounds, M, t, allSms,
                 counters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (!allSms && ctx.smid() != 0)
            co_return;
        unsigned w = ctx.warpInBlock();

        // Warm the polled sets only: RTS for the handshake warp, the
        // data sets for the receiver warps.
        if (w == 0) {
            co_await primeSet(ctx, spyPlan.rts);
        } else {
            co_await primeSet(ctx, spyPlan.data[w - 1]);
        }
        co_await ctx.syncthreads();

        for (unsigned r = 0; r < rounds; ++r) {
            if (w == 0) {
                // Bounded wait; on timeout proceed anyway so both sides
                // stay aligned on round count.
                for (unsigned attempt = 0; attempt < t.maxRetries;
                     ++attempt) {
                    if (attempt > 0)
                        ++counters->retries;
                    bool ok = co_await waitForSignal(ctx, spyPlan.rts, t,
                                                     counters.get());
                    if (ok)
                        break;
                }
                co_await primeSet(ctx, spyPlan.rtr);
            }
            co_await ctx.syncthreads();
            co_await ctx.sleep(t.settleCycles);
            if (w != 0) {
                if (w > 1)
                    co_await ctx.sleep((w - 1) * t.setStaggerCycles);
                double avg = co_await probeSetAvg(ctx, spyPlan.data[w - 1]);
                ctx.out(static_cast<std::uint64_t>(avg * outScale));
            }
            co_await ctx.syncthreads();
        }
        co_return;
    };

    // ---- Run -------------------------------------------------------------
    auto &tHost = parties->trojanHost();
    auto &sHost = parties->spyHost();
    auto &trojan = tHost.launch(parties->trojanStream(), trojanK);
    auto &spy = sHost.launch(parties->spyStream(), spyK);
    if (cfg.afterLaunch)
        cfg.afterLaunch(*parties);
    sHost.sync(spy);
    tHost.sync(trojan);

    // ---- Decode ----------------------------------------------------------
    ChannelResult res;
    res.channelName = strfmt("sync L1 (M=%u%s)", M, allSms ? ", all SMs" : "");
    res.sent = message;
    res.threshold = t.dataThresholdCycles;
    res.received.assign(payload.size(), 0);

    unsigned wpb = spy.config().warpsPerBlock();
    for (const auto &rec : spy.blockRecords()) {
        if (!allSms && rec.smId != 0)
            continue;
        unsigned smSlot = allSms ? rec.smId : 0;
        for (unsigned m = 0; m < M; ++m) {
            const auto &vals = spy.out(rec.blockId * wpb + (m + 1));
            for (unsigned r = 0; r < rounds && r < vals.size(); ++r) {
                double avg = static_cast<double>(vals[r]) / outScale;
                std::size_t idx = std::size_t(r) * (participants * M) +
                                  std::size_t(smSlot) * M + m;
                bool bit = avg > t.dataThresholdCycles;
                res.received[idx] = bit ? 1 : 0;
                (payload[idx] ? res.oneMetric : res.zeroMetric).add(avg);
                if (cfg.recorder != nullptr && idx < message.size()) {
                    trace::SymbolRecord rec;
                    rec.index = idx;
                    rec.round = r;
                    rec.tick = spy.endTick();
                    rec.metric = avg;
                    rec.threshold = t.dataThresholdCycles;
                    rec.decoded = bit;
                    rec.truth = payload[idx] != 0;
                    cfg.recorder->record(rec);
                }
            }
        }
    }
    res.received.resize(message.size());
    res.report = compareBits(res.sent, res.received);
    res.robustness = *counters;
    if (cfg.recorder != nullptr)
        cfg.recorder->setChannel(res.channelName);
    finalizeResult(res, arch, spy.endTick() - spy.startTick());
    return res;
}

} // namespace gpucc::covert

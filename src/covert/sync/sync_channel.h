/**
 * @file
 * Synchronized persistent-kernel L1 covert channel (Section 7.1,
 * Table 2).
 *
 * Both kernels are launched once and communicate continuously through
 * the Figure 11 three-way handshake, removing the per-bit kernel launch
 * overhead of the baseline channel. Three configurations reproduce the
 * Table 2 columns:
 *
 *  - dataSetsPerSm = 1            -> "Sync."
 *  - dataSetsPerSm = 6            -> "Sync. and multi-bits" (SIMT: one
 *    warp per data set in parallel; the two remaining sets carry the
 *    handshake signals)
 *  - allSms = true                -> "Sync., multi-bits and parallel"
 *    (an independent instance of the channel on every SM)
 */

#ifndef GPUCC_COVERT_SYNC_SYNC_CHANNEL_H
#define GPUCC_COVERT_SYNC_SYNC_CHANNEL_H

#include <memory>

#include "covert/channel.h"
#include "covert/sync/handshake.h"
#include "covert/trace/flight_recorder.h"

namespace gpucc::covert
{

/** Configuration of the synchronized L1 channel. */
struct SyncChannelConfig
{
    unsigned dataSetsPerSm = 1; //!< bits carried per SM per round
    /** First L1 set carrying data (agile channels relocate the data
     *  sets away from sets a third workload is hammering, Section 8's
     *  "dynamically identifying idle resources"). */
    unsigned firstDataSet = 0;
    bool allSms = false;        //!< one channel instance per SM
    double jitterUs = -1.0;     //!< launch jitter (launches happen once)
    std::uint64_t seed = 1;
    /** Timing knobs; zero-initialized fields fall back to per-arch
     *  defaults. */
    ProtocolTiming timing;
    bool useArchTiming = true;
    /** Section 9 defenses active on the device (ablation studies). */
    gpu::MitigationConfig mitigations;
    /**
     * Invoked right after the trojan and spy kernels are launched,
     * before the device runs to completion. The Section 8 experiments
     * use it to inject helper launches and interfering workloads that
     * arrive while the channel is running.
     */
    std::function<void(TwoPartyHarness &)> afterLaunch;
    /** Optional per-symbol flight recorder (null = no recording). */
    trace::FlightRecorder *recorder = nullptr;
};

/** Persistent-kernel synchronized channel on the L1 constant cache. */
class SyncL1Channel
{
  public:
    SyncL1Channel(const gpu::ArchParams &arch, SyncChannelConfig cfg = {});
    ~SyncL1Channel();

    /** Transmit @p message; both kernels launch exactly once. */
    ChannelResult transmit(const BitVec &message);

    /** Bits moved per protocol round (dataSets * participating SMs). */
    unsigned bitsPerRound() const;

    /** Harness accessor (the Section 8 experiments add interferers). */
    TwoPartyHarness &harness() { return *parties; }

    /**
     * Request exclusive co-location (Section 8): the spy claims the full
     * per-block shared memory; on architectures where that cannot
     * saturate the SM, helper launches are added by the caller.
     */
    void enableExclusiveColocation(bool on) { exclusive = on; }

    /** Decode threshold used for the data sets (cycles per access). */
    double dataThreshold() const { return timing.dataThresholdCycles; }

  private:
    gpu::ArchParams arch;
    SyncChannelConfig cfg;
    ProtocolTiming timing;
    std::unique_ptr<TwoPartyHarness> parties;
    bool exclusive = false;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_SYNC_SYNC_CHANNEL_H

#include "covert/sync/duplex_channel.h"

#include <algorithm>

#include "common/log.h"
#include "covert/channels/cache_sets.h"
#include "gpu/device_task.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

namespace
{

constexpr double outScale = 256.0;

/** The line groups one direction of the protocol uses: one handshake
 *  pair plus one or two data sets (multi-bit rung). */
struct DirectionSets
{
    std::vector<Addr> rts;
    std::vector<Addr> rtr;
    std::vector<std::vector<Addr>> data; //!< one group per data set
};

DirectionSets
makeDirection(const mem::CacheGeometry &geom, Addr base,
              const std::vector<unsigned> &dataSets, unsigned rtsSet,
              unsigned rtrSet)
{
    DirectionSets d{setFillingAddrs(geom, base, rtsSet),
                    setFillingAddrs(geom, base, rtrSet),
                    {}};
    for (unsigned s : dataSets)
        d.data.push_back(setFillingAddrs(geom, base, s));
    return d;
}

/**
 * One sender round: announce, await the receiver, transmit the round's
 * bits — one per data set, staggered like the Table 2 multi-bit
 * channel (no stagger before the first set, so the single-set path is
 * event-identical to the original single-bit protocol).
 */
gpu::DeviceTask<void>
senderRound(gpu::WarpCtx &ctx, const DirectionSets &mine,
            const BitVec &bits, std::size_t at, const ProtocolTiming &t,
            RobustnessCounters *c)
{
    for (unsigned attempt = 0; attempt < t.maxRetries; ++attempt) {
        if (attempt > 0 && c)
            ++c->retries;
        co_await primeSet(ctx, mine.rts);
        if (co_await waitForSignal(ctx, mine.rtr, t, c))
            break;
    }
    for (std::size_t j = 0; j < mine.data.size(); ++j) {
        if (j > 0)
            co_await ctx.sleep(t.setStaggerCycles);
        if (at + j < bits.size() && bits[at + j])
            co_await primeSet(ctx, mine.data[j]);
    }
    co_await ctx.sleep(t.roundGuardCycles);
    co_return;
}

/** One receiver round: await the sender, acknowledge, sample every
 *  data set (one output value per set, in set order). */
gpu::DeviceTask<void>
receiverRound(gpu::WarpCtx &ctx, const DirectionSets &mine,
              const ProtocolTiming &t, RobustnessCounters *c)
{
    for (unsigned attempt = 0; attempt < t.maxRetries; ++attempt) {
        if (attempt > 0 && c)
            ++c->retries;
        if (co_await waitForSignal(ctx, mine.rts, t, c))
            break;
    }
    co_await primeSet(ctx, mine.rtr);
    co_await ctx.sleep(t.settleCycles);
    for (std::size_t j = 0; j < mine.data.size(); ++j) {
        if (j > 0)
            co_await ctx.sleep(t.setStaggerCycles);
        double avg = co_await probeSetAvg(ctx, mine.data[j]);
        ctx.out(static_cast<std::uint64_t>(avg * outScale));
    }
    co_return;
}

} // namespace

DuplexSyncChannel::DuplexSyncChannel(const gpu::ArchParams &arch_,
                                     DuplexConfig cfg_)
    : arch(arch_), cfg(cfg_), protoTiming(ProtocolTiming::forArch(arch_))
{
    parties = std::make_unique<TwoPartyHarness>(arch, cfg.seed);
    parties->setJitterUs(cfg.jitterUs);
    parties->device().setMitigations(cfg.mitigations);
}

DuplexSyncChannel::~DuplexSyncChannel() = default;

void
DuplexSyncChannel::setPeriodScale(double s)
{
    GPUCC_ASSERT(s >= 1.0, "period scale must be >= 1 (got %f)", s);
    scale = s;
}

void
DuplexSyncChannel::setTiming(const ProtocolTiming &t)
{
    protoTiming = t.withDefaultsFrom(ProtocolTiming::forArch(arch));
}

void
DuplexSyncChannel::setDataSetsPerDirection(unsigned k)
{
    GPUCC_ASSERT(k >= 1 && k <= 2,
                 "duplex link supports 1 or 2 data sets per direction "
                 "(got %u)",
                 k);
    dataSets = k;
}

DuplexResult
DuplexSyncChannel::exchange(const BitVec &aToB, const BitVec &bToA)
{
    const auto &geom = arch.constMem.l1;
    unsigned sets = static_cast<unsigned>(geom.numSets());
    GPUCC_ASSERT(sets >= 8, "duplex link needs at least 8 L1 sets");
    auto &dev = parties->device();
    std::size_t align = setStride(geom);
    Addr aBase = dev.allocConst(probeArrayBytes(geom), align);
    Addr bBase = dev.allocConst(probeArrayBytes(geom), align);

    // Forward (A sends): data 0 (+2 multi-bit), RTS sets-2, RTR sets-1.
    // Reverse (B sends): data 1 (+3 multi-bit), RTS sets-4, RTR sets-3.
    std::vector<unsigned> fwdData{0}, revData{1};
    if (dataSets > 1) {
        fwdData.push_back(2);
        revData.push_back(3);
    }
    DirectionSets fwdA =
        makeDirection(geom, aBase, fwdData, sets - 2, sets - 1);
    DirectionSets fwdB =
        makeDirection(geom, bBase, fwdData, sets - 2, sets - 1);
    DirectionSets revA =
        makeDirection(geom, aBase, revData, sets - 4, sets - 3);
    DirectionSets revB =
        makeDirection(geom, bBase, revData, sets - 4, sets - 3);

    // Adaptive rate: stretch every pacing interval by the current
    // scale. The detection thresholds are latency populations, not
    // pacing, so they stay put.
    ProtocolTiming t = protoTiming;
    t.pollBackoffCycles = static_cast<Cycle>(t.pollBackoffCycles * scale);
    t.settleCycles = static_cast<Cycle>(t.settleCycles * scale);
    t.roundGuardCycles = static_cast<Cycle>(t.roundGuardCycles * scale);
    t.setStaggerCycles = static_cast<Cycle>(t.setStaggerCycles * scale);

    BitVec fwdBits = aToB;
    BitVec revBits = bToA;
    const unsigned k = dataSets;
    auto roundsFor = [k](const BitVec &bits) {
        return static_cast<unsigned>((bits.size() + k - 1) / k);
    };
    unsigned fwdRounds = roundsFor(fwdBits);
    unsigned revRounds = roundsFor(revBits);

    // One counters instance per direction, shared by that direction's
    // sender and receiver warps across both kernels.
    auto fwdCounters = std::make_shared<RobustnessCounters>();
    auto revCounters = std::make_shared<RobustnessCounters>();

    // Application A: warp 0 sends forward, warp 1 receives reverse.
    gpu::KernelLaunch appA;
    appA.name = "duplex-A";
    appA.config.gridBlocks = arch.numSms;
    appA.config.threadsPerBlock = 2 * warpSize;
    appA.body = [fwdA, revA, fwdBits, fwdRounds, revRounds, k, t,
                 fwdCounters,
                 revCounters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        if (ctx.warpInBlock() == 0) {
            co_await primeSet(ctx, fwdA.rtr); // poll lines (sender waits)
            for (unsigned r = 0; r < fwdRounds; ++r)
                co_await senderRound(ctx, fwdA, fwdBits,
                                     std::size_t(r) * k, t,
                                     fwdCounters.get());
        } else {
            co_await primeSet(ctx, revA.rts); // poll lines (receiver)
            for (const auto &set : revA.data)
                co_await primeSet(ctx, set);
            for (unsigned r = 0; r < revRounds; ++r)
                co_await receiverRound(ctx, revA, t, revCounters.get());
        }
        co_return;
    };

    // Application B: warp 0 receives forward, warp 1 sends reverse.
    gpu::KernelLaunch appB;
    appB.name = "duplex-B";
    appB.config.gridBlocks = arch.numSms;
    appB.config.threadsPerBlock = 2 * warpSize;
    appB.body = [fwdB, revB, revBits, fwdRounds, revRounds, k, t,
                 fwdCounters,
                 revCounters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        if (ctx.warpInBlock() == 0) {
            co_await primeSet(ctx, fwdB.rts);
            for (const auto &set : fwdB.data)
                co_await primeSet(ctx, set);
            for (unsigned r = 0; r < fwdRounds; ++r)
                co_await receiverRound(ctx, fwdB, t, fwdCounters.get());
        } else {
            co_await primeSet(ctx, revB.rtr);
            for (unsigned r = 0; r < revRounds; ++r)
                co_await senderRound(ctx, revB, revBits,
                                     std::size_t(r) * k, t,
                                     revCounters.get());
        }
        co_return;
    };

    auto &hostA = parties->trojanHost();
    auto &hostB = parties->spyHost();
    auto &instA = hostA.launch(parties->trojanStream(), appA);
    auto &instB = hostB.launch(parties->spyStream(), appB);
    hostB.sync(instB);
    hostA.sync(instA);

    // Decode both directions. With k data sets the receiver emits k
    // values per round in set order, so output index == bit index.
    auto decode = [&](const gpu::KernelInstance &inst, unsigned warp,
                      const BitVec &sent) {
        ChannelResult res;
        res.sent = sent;
        res.threshold = t.dataThresholdCycles;
        unsigned wpb = inst.config().warpsPerBlock();
        for (const auto &rec : inst.blockRecords()) {
            if (rec.smId != 0)
                continue;
            const auto &vals = inst.out(rec.blockId * wpb + warp);
            for (std::size_t v = 0; v < vals.size() && v < sent.size();
                 ++v) {
                double avg = static_cast<double>(vals[v]) / outScale;
                res.received.push_back(avg > t.dataThresholdCycles ? 1
                                                                   : 0);
                (sent[v] ? res.oneMetric : res.zeroMetric).add(avg);
            }
        }
        res.report = compareBits(res.sent, res.received);
        return res;
    };

    DuplexResult out;
    out.aToB = decode(instB, 0, fwdBits);
    out.aToB.channelName = "duplex forward (A->B)";
    out.aToB.robustness = *fwdCounters;
    out.bToA = decode(instA, 1, revBits);
    out.bToA.channelName = "duplex reverse (B->A)";
    out.bToA.robustness = *revCounters;

    Tick window = std::max(instA.endTick(), instB.endTick()) -
                  std::min(instA.startTick(), instB.startTick());
    finalizeResult(out.aToB, arch, window);
    finalizeResult(out.bToA, arch, window);
    out.aggregateBps =
        arch.secondsFromTicks(window) > 0.0
            ? static_cast<double>(aToB.size() + bToA.size()) /
                  arch.secondsFromTicks(window)
            : 0.0;
    return out;
}

} // namespace gpucc::covert

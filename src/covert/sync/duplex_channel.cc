#include "covert/sync/duplex_channel.h"

#include <algorithm>

#include "common/log.h"
#include "covert/channels/cache_sets.h"
#include "gpu/device_task.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

namespace
{

constexpr double outScale = 256.0;

/** The line groups one direction of the protocol uses: one handshake
 *  pair plus one or two data sets (multi-bit rung). */
struct DirectionSets
{
    std::vector<Addr> rts;
    std::vector<Addr> rtr;
    std::vector<std::vector<Addr>> data; //!< one group per data set
};

DirectionSets
makeDirection(const mem::CacheGeometry &geom, Addr base,
              const std::vector<unsigned> &dataSets, unsigned rtsSet,
              unsigned rtrSet)
{
    DirectionSets d{setFillingAddrs(geom, base, rtsSet),
                    setFillingAddrs(geom, base, rtrSet),
                    {}};
    for (unsigned s : dataSets)
        d.data.push_back(setFillingAddrs(geom, base, s));
    return d;
}

/**
 * One sender round: announce, await the receiver, transmit the round's
 * bits — one per data set, staggered like the Table 2 multi-bit
 * channel (no stagger before the first set, so the single-set path is
 * event-identical to the original single-bit protocol).
 */
gpu::DeviceTask<void>
senderRound(gpu::WarpCtx &ctx, const DirectionSets &mine,
            const BitVec &bits, std::size_t at, const ProtocolTiming &t,
            RobustnessCounters *c)
{
    for (unsigned attempt = 0; attempt < t.maxRetries; ++attempt) {
        if (attempt > 0 && c)
            ++c->retries;
        co_await primeSet(ctx, mine.rts);
        if (co_await waitForSignal(ctx, mine.rtr, t, c))
            break;
    }
    for (std::size_t j = 0; j < mine.data.size(); ++j) {
        if (j > 0)
            co_await ctx.sleep(t.setStaggerCycles);
        if (at + j < bits.size() && bits[at + j])
            co_await primeSet(ctx, mine.data[j]);
    }
    co_await ctx.sleep(t.roundGuardCycles);
    co_return;
}

/** One receiver round: await the sender, acknowledge, sample every
 *  data set (one output value per set, in set order). */
gpu::DeviceTask<void>
receiverRound(gpu::WarpCtx &ctx, const DirectionSets &mine,
              const ProtocolTiming &t, RobustnessCounters *c)
{
    for (unsigned attempt = 0; attempt < t.maxRetries; ++attempt) {
        if (attempt > 0 && c)
            ++c->retries;
        if (co_await waitForSignal(ctx, mine.rts, t, c))
            break;
    }
    co_await primeSet(ctx, mine.rtr);
    co_await ctx.sleep(t.settleCycles);
    for (std::size_t j = 0; j < mine.data.size(); ++j) {
        if (j > 0)
            co_await ctx.sleep(t.setStaggerCycles);
        double avg = co_await probeSetAvg(ctx, mine.data[j]);
        ctx.out(static_cast<std::uint64_t>(avg * outScale));
    }
    co_return;
}

// ---------------------------------------------------------------------
// Contention substrates (cross-resource failover).
//
// The L1 protocol above needs cross-application evictions; way
// partitioning removes those while leaving execution-unit contention
// intact. The failover substrates signal through that contention:
// half-duplex time division per exchange (full forward direction, then
// full reverse), one bit per fixed cycle-counted slot. The receiver
// anchors the slot grid on the falling edge of a long sender preamble
// burst (matched filter over own-latency sample windows) and derives
// its decode threshold from the quiet/burst populations of the same
// exchange — nothing is carried over from the L1 calibration.
// ---------------------------------------------------------------------

/** Per-warp global-memory slab for the atomic substrate; the address
 *  walk strides partition-interleave granules so every memory
 *  partition's atomic unit sees traffic. */
constexpr std::size_t atomicSlabBytes = 4096;

/** Derived pacing/measurement plan of one contention exchange. */
struct ContentionPlan
{
    ChannelResource resource = ChannelResource::Sfu;
    Addr slabBase = 0;        //!< kernel's atomic slab array (0 on SFU)
    unsigned senderWarps = 4; //!< warps spinning per bit=1
    unsigned pollOps = 8;     //!< ops per preamble sample window
    unsigned dataOps = 48;    //!< ops per bit measurement
    unsigned parts = 1;       //!< gmem partition count (atomic only)
    unsigned interleave = 256;//!< partition interleave bytes
    unsigned targetPart = 0;  //!< partition of the peer's probe segment
    Cycle pollBackoff = 0;    //!< sleep between sample windows
    Cycle preGuard = 0;       //!< sender silence before the preamble
    Cycle preamble = 0;       //!< preamble burst length
    Cycle gap = 0;            //!< silence between burst end and slot 0
    Cycle slot = 0;           //!< per-bit slot length
    Cycle margin = 0;         //!< receiver offset into each slot
    Cycle tailGuard = 0;      //!< sender stops this early in a slot
    Cycle sampleBudget = 0;   //!< receiver preamble-capture duration
};

ContentionPlan
makeContentionPlan(const gpu::ArchParams &arch, ChannelResource r,
                   double scale)
{
    ContentionPlan p;
    p.resource = r;
    // The signal is queueing delay, so the sender must overcommit the
    // resource: competing warps times per-op service (occupancy) time
    // has to exceed the op's unloaded latency, or ops never queue and
    // the receiver sees only the quiet level plus noise. opQuiet is
    // the unloaded per-op estimate, opBusy the saturated one; every
    // budget that can overlap a burst is sized from opBusy.
    double opQuiet, opBusy;
    if (r == ChannelResource::Sfu) {
        // Sqrt has the largest SFU service time: saturation needs the
        // fewest warps and the contended latency clears the timer-fuzz
        // noise floor.
        const auto &ot = arch.timing(gpu::OpClass::Sqrt);
        double occ = ticksToCyclesF(ot.occTicks);
        opQuiet = static_cast<double>(ot.latencyCycles) + occ;
        // Half the SM's warp capacity per application — the two blocks
        // must co-reside, and the register file binds first on Fermi
        // (32 regs/thread default) — warps rounded onto all ports.
        unsigned warpCap = std::min(
            {arch.limits.maxWarps,
             arch.limits.maxThreads / static_cast<unsigned>(warpSize),
             arch.limits.numRegs /
                 (32u * static_cast<unsigned>(warpSize))});
        p.senderWarps = std::min(warpCap / 2, 32u);
        p.senderWarps -= p.senderWarps % arch.schedulersPerSm;
        double perPort =
            static_cast<double>(p.senderWarps) / arch.schedulersPerSm + 1;
        opBusy = static_cast<double>(ot.latencyCycles) + perPort * occ;
        p.pollOps = 6;
        p.dataOps = 48;
    } else {
        const auto &g = arch.gmem;
        double occ = static_cast<double>(g.atomicTxnOverheadCycles) +
                     static_cast<double>(g.atomicOccCycles) * warpSize;
        opQuiet = static_cast<double>(g.atomicLatencyCycles) + occ;
        p.senderWarps = 12;
        opBusy = opQuiet + p.senderWarps * occ;
        p.pollOps = 3;
        p.dataOps = 24;
        p.parts = g.numPartitions;
        p.interleave = static_cast<unsigned>(g.interleaveBytes);
    }
    auto cyc = [](double c) { return static_cast<Cycle>(c + 0.5); };
    p.pollBackoff = 150;
    // Worst-case sample-window durations (quiet vs. in-burst).
    Cycle pollQuiet = cyc(p.pollOps * opQuiet) + p.pollBackoff;
    Cycle pollBusy = cyc(p.pollOps * opBusy * 1.2) + p.pollBackoff;
    // Launch jitter plus block-dispatch skew between the two kernels.
    constexpr Cycle skewMax = 6000;
    // The matched filter locates the falling edge to within one
    // in-burst window plus the backoff (either direction).
    Cycle anchorErr = pollBusy + 600;
    Cycle measBudget = cyc(p.dataOps * opBusy * 1.25);
    p.margin = anchorErr + 600;
    p.tailGuard = cyc(3 * opBusy) + 200;
    p.slot = p.margin + anchorErr + measBudget + p.tailGuard + 600;
    // Preamble: >= 2k+3 in-burst windows for the k=3 matched filter.
    p.preamble = std::max<Cycle>(9 * pollBusy + 2000, 8000);
    // Quiet floor: >= k+1 quiet windows even if the receiver starts
    // skewMax late.
    p.preGuard = skewMax + 4 * pollQuiet + 1500;
    // Sampling must cover the falling edge plus k quiet windows after
    // it even if the receiver starts skewMax early...
    p.sampleBudget =
        skewMax + p.preGuard + p.preamble + 4 * pollQuiet + 1000;
    // ...and slot 0 must start only after sampling has ended even if
    // the receiver started skewMax late.
    p.gap = 2 * skewMax + 4 * pollQuiet + pollBusy + 2000;
    if (scale > 1.0) {
        auto stretch = [scale, cyc](Cycle &c) {
            c = cyc(static_cast<double>(c) * scale);
        };
        stretch(p.preGuard);
        stretch(p.preamble);
        stretch(p.gap);
        stretch(p.slot);
        stretch(p.margin);
        stretch(p.tailGuard);
        stretch(p.sampleBudget);
        stretch(p.pollBackoff);
    }
    return p;
}

/**
 * Sender-side atomic lanes: one 128-byte segment per op, chosen from
 * the granules of the warp's own slab that map to the PEER receiver's
 * memory partition (computed host-side into the plan). Concentrating
 * every sender warp on the one atomic unit the receiver measures is
 * what saturates it; spreading traffic across all partitions leaves
 * per-unit utilization too low to queue anything.
 */
std::vector<Addr>
atomicSendLanes(const ContentionPlan &p, Addr slab, unsigned iter)
{
    unsigned granule =
        static_cast<unsigned>(slab / p.interleave) % p.parts;
    unsigned i0 = (p.targetPart + p.parts - granule) % p.parts;
    unsigned granules = static_cast<unsigned>(atomicSlabBytes) / p.interleave;
    unsigned count = (granules - 1 - i0) / p.parts + 1;
    unsigned k = iter % (2 * count);
    Addr seg = slab + Addr(i0 + (k / 2) * p.parts) * p.interleave +
               Addr(k % 2) * 128;
    std::vector<Addr> lanes;
    lanes.reserve(warpSize);
    for (unsigned t = 0; t < static_cast<unsigned>(warpSize); ++t)
        lanes.push_back(seg + Addr(t) * 4);
    return lanes;
}

/** Receiver-side atomic lanes: the slab's first 128-byte segment, one
 *  fixed word per thread (the peer targets this segment's partition). */
std::vector<Addr>
atomicMeasureLanes(Addr slab)
{
    std::vector<Addr> lanes;
    lanes.reserve(warpSize);
    for (unsigned t = 0; t < static_cast<unsigned>(warpSize); ++t)
        lanes.push_back(slab + Addr(t) * 4);
    return lanes;
}

/** One contention op on the plan's substrate; returns observed cycles.
 *  @p iter advances the sender's atomic address walk. */
gpu::DeviceTask<std::uint64_t>
contentionOp(gpu::WarpCtx &ctx, const ContentionPlan &p, Addr slab,
             unsigned &iter, bool sending)
{
    if (p.resource == ChannelResource::Sfu)
        co_return co_await ctx.op(gpu::OpClass::Sqrt);
    if (sending)
        co_return co_await ctx.atomicAdd(atomicSendLanes(p, slab, iter++),
                                         1);
    co_return co_await ctx.atomicAdd(atomicMeasureLanes(slab), 1);
}

/** Average observed latency over @p ops contention ops. */
gpu::DeviceTask<double>
measureOps(gpu::WarpCtx &ctx, const ContentionPlan &p, Addr slab,
           unsigned &iter, unsigned ops)
{
    std::uint64_t total = 0;
    for (unsigned i = 0; i < ops; ++i)
        total += co_await contentionOp(ctx, p, slab, iter, false);
    co_return ops ? static_cast<double>(total) / ops : 0.0;
}

double
nthValue(std::vector<double> v, double frac)
{
    if (v.empty())
        return 0.0;
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(v.size() - 1) + 0.5);
    std::nth_element(v.begin(), v.begin() + static_cast<long>(idx),
                     v.end());
    return v[idx];
}

/**
 * Sender half of one direction: silence, preamble burst, then one slot
 * per bit (spin = 1, sleep = 0). Slot boundaries are re-anchored on
 * the warp's own clock every slot, so spin-duration variance never
 * accumulates into drift.
 */
gpu::DeviceTask<void>
contentionSend(gpu::WarpCtx &ctx, const ContentionPlan &p, Addr slab,
               BitVec bits)
{
    unsigned iter = 0;
    co_await ctx.sleep(p.preGuard);
    Cycle t0 = co_await ctx.clock();
    Cycle burstEnd = t0 + p.preamble;
    while ((co_await ctx.clock()) < burstEnd) {
        co_await contentionOp(ctx, p, slab, iter, true);
        co_await contentionOp(ctx, p, slab, iter, true);
    }
    Cycle edge = co_await ctx.clock(); // the receiver's timing anchor
    for (std::size_t r = 0; r < bits.size(); ++r) {
        Cycle slotStart = edge + p.gap + Cycle(r) * p.slot;
        Cycle busyEnd = slotStart + p.slot - p.tailGuard;
        Cycle t = co_await ctx.clock();
        if (t < slotStart)
            co_await ctx.sleep(slotStart - t);
        if (bits[r]) {
            while ((co_await ctx.clock()) < busyEnd) {
                co_await contentionOp(ctx, p, slab, iter, true);
                co_await contentionOp(ctx, p, slab, iter, true);
            }
        } else {
            t = co_await ctx.clock();
            if (t < busyEnd)
                co_await ctx.sleep(busyEnd - t);
        }
    }
    co_return;
}

/**
 * Receiver half of one direction. Samples own-latency windows across
 * the whole preamble region, locates the burst's falling edge with a
 * matched filter (max step contrast of k-window means), then measures
 * one window per slot against the grid anchored at that edge. Emits
 * quiet level, burst level, then one value per slot; the host decodes
 * against the midpoint of the two levels.
 */
gpu::DeviceTask<void>
contentionReceive(gpu::WarpCtx &ctx, const ContentionPlan &p, Addr slab,
                  unsigned rounds)
{
    unsigned iter = 0;
    std::vector<double> win;
    std::vector<Cycle> winEnd;
    Cycle t = co_await ctx.clock();
    const Cycle tStart = t;
    while (t < tStart + p.sampleBudget) {
        double a = co_await measureOps(ctx, p, slab, iter, p.pollOps);
        t = co_await ctx.clock();
        win.push_back(a);
        winEnd.push_back(t);
        co_await ctx.sleep(p.pollBackoff);
        t = co_await ctx.clock();
    }
    // Falling-edge matched filter: the index whose k preceding windows
    // (burst plateau) most exceed its k following windows (gap quiet).
    constexpr std::size_t k = 3;
    std::size_t bestIdx = 0;
    double bestScore = -1e300;
    double quietLvl = nthValue(win, 0.3);
    double burstLvl = quietLvl;
    if (win.size() >= 2 * k) {
        for (std::size_t e = k; e + k <= win.size(); ++e) {
            double before = 0.0, after = 0.0;
            for (std::size_t j = 0; j < k; ++j) {
                before += win[e - 1 - j];
                after += win[e + j];
            }
            double score = (before - after) / static_cast<double>(k);
            if (score > bestScore) {
                bestScore = score;
                bestIdx = e;
            }
        }
        double plateau = 0.0;
        for (std::size_t j = 0; j < k; ++j)
            plateau += win[bestIdx - 1 - j];
        burstLvl = plateau / static_cast<double>(k);
    }
    Cycle t0 = win.empty() ? tStart : winEnd[bestIdx > 0 ? bestIdx - 1 : 0];
    ctx.out(static_cast<std::uint64_t>(quietLvl * outScale));
    ctx.out(static_cast<std::uint64_t>(burstLvl * outScale));
    for (unsigned r = 0; r < rounds; ++r) {
        Cycle target = t0 + p.gap + Cycle(r) * p.slot + p.margin;
        t = co_await ctx.clock();
        if (t < target)
            co_await ctx.sleep(target - t);
        double a = co_await measureOps(ctx, p, slab, iter, p.dataOps);
        ctx.out(static_cast<std::uint64_t>(a * outScale));
    }
    co_return;
}

} // namespace

DuplexSyncChannel::DuplexSyncChannel(const gpu::ArchParams &arch_,
                                     DuplexConfig cfg_)
    : arch(arch_), cfg(cfg_), protoTiming(ProtocolTiming::forArch(arch_))
{
    parties = std::make_unique<TwoPartyHarness>(arch, cfg.seed);
    parties->setJitterUs(cfg.jitterUs);
    parties->device().setMitigations(cfg.mitigations);
}

DuplexSyncChannel::~DuplexSyncChannel() = default;

void
DuplexSyncChannel::setPeriodScale(double s)
{
    GPUCC_ASSERT(s >= 1.0, "period scale must be >= 1 (got %f)", s);
    scale = s;
}

void
DuplexSyncChannel::setTiming(const ProtocolTiming &t)
{
    protoTiming = t.withDefaultsFrom(ProtocolTiming::forArch(arch));
}

void
DuplexSyncChannel::setDataSetsPerDirection(unsigned k)
{
    GPUCC_ASSERT(k >= 1 && k <= 2,
                 "duplex link supports 1 or 2 data sets per direction "
                 "(got %u)",
                 k);
    dataSets = k;
}

const char *
channelResourceName(ChannelResource r)
{
    switch (r) {
      case ChannelResource::L1Const:
        return "l1";
      case ChannelResource::Sfu:
        return "sfu";
      case ChannelResource::GlobalAtomic:
        return "atomic";
    }
    return "?";
}

DuplexResult
DuplexSyncChannel::exchange(const BitVec &aToB, const BitVec &bToA)
{
    if (res != ChannelResource::L1Const)
        return exchangeContention(aToB, bToA);
    const auto &geom = arch.constMem.l1;
    unsigned sets = static_cast<unsigned>(geom.numSets());
    GPUCC_ASSERT(sets >= 8, "duplex link needs at least 8 L1 sets");
    auto &dev = parties->device();
    std::size_t align = setStride(geom);
    Addr aBase = dev.allocConst(probeArrayBytes(geom), align);
    Addr bBase = dev.allocConst(probeArrayBytes(geom), align);

    // Forward (A sends): data 0 (+2 multi-bit), RTS sets-2, RTR sets-1.
    // Reverse (B sends): data 1 (+3 multi-bit), RTS sets-4, RTR sets-3.
    std::vector<unsigned> fwdData{0}, revData{1};
    if (dataSets > 1) {
        fwdData.push_back(2);
        revData.push_back(3);
    }
    DirectionSets fwdA =
        makeDirection(geom, aBase, fwdData, sets - 2, sets - 1);
    DirectionSets fwdB =
        makeDirection(geom, bBase, fwdData, sets - 2, sets - 1);
    DirectionSets revA =
        makeDirection(geom, aBase, revData, sets - 4, sets - 3);
    DirectionSets revB =
        makeDirection(geom, bBase, revData, sets - 4, sets - 3);

    // Adaptive rate: stretch every pacing interval by the current
    // scale. The detection thresholds are latency populations, not
    // pacing, so they stay put.
    ProtocolTiming t = protoTiming;
    t.pollBackoffCycles = static_cast<Cycle>(t.pollBackoffCycles * scale);
    t.settleCycles = static_cast<Cycle>(t.settleCycles * scale);
    t.roundGuardCycles = static_cast<Cycle>(t.roundGuardCycles * scale);
    t.setStaggerCycles = static_cast<Cycle>(t.setStaggerCycles * scale);

    BitVec fwdBits = aToB;
    BitVec revBits = bToA;
    const unsigned k = dataSets;
    auto roundsFor = [k](const BitVec &bits) {
        return static_cast<unsigned>((bits.size() + k - 1) / k);
    };
    unsigned fwdRounds = roundsFor(fwdBits);
    unsigned revRounds = roundsFor(revBits);

    // One counters instance per direction, shared by that direction's
    // sender and receiver warps across both kernels.
    auto fwdCounters = std::make_shared<RobustnessCounters>();
    auto revCounters = std::make_shared<RobustnessCounters>();

    // Application A: warp 0 sends forward, warp 1 receives reverse.
    gpu::KernelLaunch appA;
    appA.name = "duplex-A";
    appA.config.gridBlocks = arch.numSms;
    appA.config.threadsPerBlock = 2 * warpSize;
    appA.body = [fwdA, revA, fwdBits, fwdRounds, revRounds, k, t,
                 fwdCounters,
                 revCounters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        if (ctx.warpInBlock() == 0) {
            co_await primeSet(ctx, fwdA.rtr); // poll lines (sender waits)
            for (unsigned r = 0; r < fwdRounds; ++r)
                co_await senderRound(ctx, fwdA, fwdBits,
                                     std::size_t(r) * k, t,
                                     fwdCounters.get());
        } else {
            co_await primeSet(ctx, revA.rts); // poll lines (receiver)
            for (const auto &set : revA.data)
                co_await primeSet(ctx, set);
            for (unsigned r = 0; r < revRounds; ++r)
                co_await receiverRound(ctx, revA, t, revCounters.get());
        }
        co_return;
    };

    // Application B: warp 0 receives forward, warp 1 sends reverse.
    gpu::KernelLaunch appB;
    appB.name = "duplex-B";
    appB.config.gridBlocks = arch.numSms;
    appB.config.threadsPerBlock = 2 * warpSize;
    appB.body = [fwdB, revB, revBits, fwdRounds, revRounds, k, t,
                 fwdCounters,
                 revCounters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        if (ctx.warpInBlock() == 0) {
            co_await primeSet(ctx, fwdB.rts);
            for (const auto &set : fwdB.data)
                co_await primeSet(ctx, set);
            for (unsigned r = 0; r < fwdRounds; ++r)
                co_await receiverRound(ctx, fwdB, t, fwdCounters.get());
        } else {
            co_await primeSet(ctx, revB.rtr);
            for (unsigned r = 0; r < revRounds; ++r)
                co_await senderRound(ctx, revB, revBits,
                                     std::size_t(r) * k, t,
                                     revCounters.get());
        }
        co_return;
    };

    auto &hostA = parties->trojanHost();
    auto &hostB = parties->spyHost();
    auto &instA = hostA.launch(parties->trojanStream(), appA);
    auto &instB = hostB.launch(parties->spyStream(), appB);
    hostB.sync(instB);
    hostA.sync(instA);

    // Decode both directions. With k data sets the receiver emits k
    // values per round in set order, so output index == bit index.
    auto decode = [&](const gpu::KernelInstance &inst, unsigned warp,
                      const BitVec &sent) {
        ChannelResult res;
        res.sent = sent;
        res.threshold = t.dataThresholdCycles;
        unsigned wpb = inst.config().warpsPerBlock();
        for (const auto &rec : inst.blockRecords()) {
            if (rec.smId != 0)
                continue;
            const auto &vals = inst.out(rec.blockId * wpb + warp);
            for (std::size_t v = 0; v < vals.size() && v < sent.size();
                 ++v) {
                double avg = static_cast<double>(vals[v]) / outScale;
                res.received.push_back(avg > t.dataThresholdCycles ? 1
                                                                   : 0);
                (sent[v] ? res.oneMetric : res.zeroMetric).add(avg);
            }
        }
        res.report = compareBits(res.sent, res.received);
        return res;
    };

    DuplexResult out;
    out.aToB = decode(instB, 0, fwdBits);
    out.aToB.channelName = "duplex forward (A->B)";
    out.aToB.robustness = *fwdCounters;
    out.bToA = decode(instA, 1, revBits);
    out.bToA.channelName = "duplex reverse (B->A)";
    out.bToA.robustness = *revCounters;

    Tick window = std::max(instA.endTick(), instB.endTick()) -
                  std::min(instA.startTick(), instB.startTick());
    finalizeResult(out.aToB, arch, window);
    finalizeResult(out.bToA, arch, window);
    out.aggregateBps =
        arch.secondsFromTicks(window) > 0.0
            ? static_cast<double>(aToB.size() + bToA.size()) /
                  arch.secondsFromTicks(window)
            : 0.0;
    return out;
}

DuplexResult
DuplexSyncChannel::exchangeContention(const BitVec &aToB,
                                      const BitVec &bToA)
{
    auto &dev = parties->device();
    ContentionPlan plan = makeContentionPlan(arch, res, scale);
    unsigned warps = plan.senderWarps;
    Addr aBase = 0, bBase = 0;
    unsigned aPart = 0, bPart = 0;
    if (res == ChannelResource::GlobalAtomic) {
        aBase = dev.allocGlobal(atomicSlabBytes * warps, 4096);
        bBase = dev.allocGlobal(atomicSlabBytes * warps, 4096);
        // Each side's receiver measures the first segment of its own
        // warp-0 slab; the peer's senders aim at that partition.
        auto partOf = [&](Addr a) {
            return static_cast<unsigned>(a / arch.gmem.interleaveBytes) %
                   arch.gmem.numPartitions;
        };
        aPart = partOf(aBase);
        bPart = partOf(bBase);
    }
    BitVec fwdBits = aToB;
    BitVec revBits = bToA;
    unsigned fwdRounds = static_cast<unsigned>(fwdBits.size());
    unsigned revRounds = static_cast<unsigned>(revBits.size());

    // Half-duplex time division: phase 1 carries the full forward
    // payload (A sends, B's warp 0 receives), a block barrier on each
    // side flips the roles, phase 2 carries the reverse payload. All
    // of a kernel's warps spin in its send phase (covering every
    // scheduler port / memory partition); only warp 0 measures in its
    // receive phase, anchored by the phase's own preamble.
    gpu::KernelLaunch appA;
    appA.name = strfmt("agile-A-%s", channelResourceName(res));
    appA.config.gridBlocks = arch.numSms;
    appA.config.threadsPerBlock = warps * warpSize;
    ContentionPlan planA = plan;
    planA.slabBase = aBase;
    planA.targetPart = bPart; // A's senders aim at B's probe partition
    appA.body = [planA, fwdBits,
                 revRounds](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        Addr slab = planA.slabBase +
                    Addr(ctx.warpInBlock()) * atomicSlabBytes;
        co_await contentionSend(ctx, planA, slab, fwdBits);
        co_await ctx.syncthreads();
        if (ctx.warpInBlock() == 0 && revRounds > 0)
            co_await contentionReceive(ctx, planA, slab, revRounds);
        co_return;
    };

    gpu::KernelLaunch appB;
    appB.name = strfmt("agile-B-%s", channelResourceName(res));
    appB.config.gridBlocks = arch.numSms;
    appB.config.threadsPerBlock = warps * warpSize;
    ContentionPlan planB = plan;
    planB.slabBase = bBase;
    planB.targetPart = aPart; // B's senders aim at A's probe partition
    appB.body = [planB, revBits,
                 fwdRounds](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        Addr slab = planB.slabBase +
                    Addr(ctx.warpInBlock()) * atomicSlabBytes;
        if (ctx.warpInBlock() == 0 && fwdRounds > 0)
            co_await contentionReceive(ctx, planB, slab, fwdRounds);
        co_await ctx.syncthreads();
        co_await contentionSend(ctx, planB, slab, revBits);
        co_return;
    };

    auto &hostA = parties->trojanHost();
    auto &hostB = parties->spyHost();
    auto &instA = hostA.launch(parties->trojanStream(), appA);
    auto &instB = hostB.launch(parties->spyStream(), appB);
    hostB.sync(instB);
    hostA.sync(instA);

    // Decode: the receiver's first two outputs are its measured quiet
    // and burst levels; the bit threshold is their midpoint — derived
    // entirely inside this exchange, so the decode survives resource
    // switches and slow drifts with no carried calibration state.
    auto decode = [&](const gpu::KernelInstance &inst, const BitVec &sent) {
        ChannelResult r;
        r.sent = sent;
        unsigned wpb = inst.config().warpsPerBlock();
        for (const auto &rec : inst.blockRecords()) {
            if (rec.smId != 0)
                continue;
            const auto &vals = inst.out(rec.blockId * wpb);
            if (vals.size() < 2)
                continue;
            double quiet = static_cast<double>(vals[0]) / outScale;
            double burst = static_cast<double>(vals[1]) / outScale;
            r.threshold = 0.5 * (quiet + burst);
            for (std::size_t v = 2;
                 v < vals.size() && v - 2 < sent.size(); ++v) {
                double avg = static_cast<double>(vals[v]) / outScale;
                r.received.push_back(avg > r.threshold ? 1 : 0);
                (sent[v - 2] ? r.oneMetric : r.zeroMetric).add(avg);
            }
        }
        r.report = compareBits(r.sent, r.received);
        return r;
    };

    DuplexResult out;
    out.aToB = decode(instB, fwdBits);
    out.aToB.channelName =
        strfmt("agile forward (A->B, %s)", channelResourceName(res));
    out.bToA = decode(instA, revBits);
    out.bToA.channelName =
        strfmt("agile reverse (B->A, %s)", channelResourceName(res));

    Tick window = std::max(instA.endTick(), instB.endTick()) -
                  std::min(instA.startTick(), instB.startTick());
    finalizeResult(out.aToB, arch, window);
    finalizeResult(out.bToA, arch, window);
    out.aggregateBps =
        arch.secondsFromTicks(window) > 0.0
            ? static_cast<double>(aToB.size() + bToA.size()) /
                  arch.secondsFromTicks(window)
            : 0.0;
    return out;
}

} // namespace gpucc::covert

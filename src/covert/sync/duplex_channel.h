/**
 * @file
 * Full-duplex covert link.
 *
 * The Section 7.1 synchronized channel is one-directional. The L1
 * constant cache has sets to spare, so two independent instances of the
 * three-set protocol can run concurrently in opposite directions:
 *
 *   forward  (A -> B): data set 0, RTS set 6, RTR set 7
 *   reverse  (B -> A): data set 1, RTS set 4, RTR set 5
 *
 * Each direction is driven by a single warp per side (the handshake and
 * the data transfer are sequential within the protocol, so no block
 * barrier is needed), which lets both directions progress fully
 * independently. This is the substrate the related work builds
 * interactive sessions on (Maurice et al. run ssh over their CPU cache
 * channel); examples/covert_chat.cpp shows a request/response exchange.
 *
 * Cross-resource failover (PROTOCOL.md): when a defense kills the L1
 * substrate mid-session (way partitioning makes cross-application
 * evictions impossible, so handshakes and pilots die while private
 * calibration still succeeds), the session layer re-handshakes the
 * same duplex contract onto a contention resource — SFU pipes or the
 * global-memory atomic units — via setResource(). The contention
 * exchange is half-duplex time-division: per direction the sender
 * stays silent (the receiver samples its own-operation latency for a
 * quiet baseline), bursts a long preamble (the receiver's amplitude
 * and timing anchor, located with a falling-edge matched filter), and
 * then signals one bit per fixed cycle-counted slot by spinning (1) or
 * sleeping (0); the receiver re-derives its decode threshold from the
 * quiet/burst populations of the same exchange, so no cross-resource
 * calibration state is carried over.
 */

#ifndef GPUCC_COVERT_SYNC_DUPLEX_CHANNEL_H
#define GPUCC_COVERT_SYNC_DUPLEX_CHANNEL_H

#include <memory>

#include "covert/channel.h"
#include "covert/sync/handshake.h"

namespace gpucc::covert
{

/** Hardware substrate a duplex exchange runs over (failover ladder;
 *  Table 1's exploitable resources, in session preference order). */
enum class ChannelResource
{
    L1Const = 0,      //!< constant-cache eviction protocol (default)
    Sfu = 1,          //!< SFU-pipe contention (per-SM, per-scheduler)
    GlobalAtomic = 2, //!< atomic-unit contention (device-wide)
};

/** Short stable name ("l1" / "sfu" / "atomic") for logs and JSON. */
const char *channelResourceName(ChannelResource r);

/** Result of one full-duplex exchange. */
struct DuplexResult
{
    ChannelResult aToB; //!< forward direction
    ChannelResult bToA; //!< reverse direction
    double aggregateBps = 0.0; //!< both payloads over the common window
};

/** Configuration of the duplex link. */
struct DuplexConfig
{
    double jitterUs = -1.0;
    std::uint64_t seed = 1;
    gpu::MitigationConfig mitigations;
};

/** Two applications exchanging bits in both directions at once. */
class DuplexSyncChannel
{
  public:
    DuplexSyncChannel(const gpu::ArchParams &arch, DuplexConfig cfg = {});
    ~DuplexSyncChannel();

    /**
     * Run both directions concurrently: application A sends @p aToB
     * while application B sends @p bToA.
     */
    DuplexResult exchange(const BitVec &aToB, const BitVec &bToA);

    /** Harness accessor. */
    TwoPartyHarness &harness() { return *parties; }

    /**
     * Replace the protocol timing (session layer installs online-
     * calibrated thresholds here). Zero-valued fields of @p t fall
     * back to the per-arch defaults; takes effect on the next
     * exchange().
     */
    void setTiming(const ProtocolTiming &t);

    /** Timing currently in force (unscaled). */
    const ProtocolTiming &timing() const { return protoTiming; }

    /**
     * Data cache sets per direction (1 or 2). At 2 — the session
     * ladder's "multi-bit" rung — each protocol round moves two bits
     * per direction through two data sets (forward {0, 2}, reverse
     * {1, 3}), serialized by the per-set stagger exactly like the
     * Table 2 multi-bit channel. Takes effect on the next exchange().
     */
    void setDataSetsPerDirection(unsigned k);

    /** Current bits-per-round per direction. */
    unsigned dataSetsPerDirection() const { return dataSets; }

    /**
     * Stretch the protocol's pacing intervals (poll backoff, settle,
     * round guard, stagger) by @p scale >= 1. The link layer's adaptive
     * rate control widens the symbol period when the frame-error rate
     * rises and narrows it back when the channel runs clean; takes
     * effect on the next exchange().
     */
    void setPeriodScale(double scale);

    /** Current pacing scale (1.0 = the per-arch calibrated timing). */
    double periodScale() const { return scale; }

    /**
     * Move the link onto a different hardware substrate (session-layer
     * cross-resource failover). Takes effect on the next exchange();
     * L1-calibrated thresholds are ignored off-L1 (the contention
     * paths self-calibrate per exchange), and the multi-bit rung
     * (dataSetsPerDirection) only applies on L1Const.
     */
    void setResource(ChannelResource r) { res = r; }

    /** Substrate currently in force. */
    ChannelResource resource() const { return res; }

  private:
    DuplexResult exchangeContention(const BitVec &aToB,
                                    const BitVec &bToA);

    gpu::ArchParams arch;
    DuplexConfig cfg;
    ProtocolTiming protoTiming; //!< baseline (unscaled) timing in force
    double scale = 1.0;
    unsigned dataSets = 1; //!< data sets (bits per round) per direction
    ChannelResource res = ChannelResource::L1Const;
    std::unique_ptr<TwoPartyHarness> parties;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_SYNC_DUPLEX_CHANNEL_H

/**
 * @file
 * Device-side building blocks of the synchronized covert-channel
 * protocol (Section 7.1, Figure 11).
 *
 * Three cache sets synchronize the two kernels: one carries data, one
 * carries ready-to-send (trojan -> spy), one carries ready-to-receive
 * (spy -> trojan). A party signals by filling the pre-agreed set with
 * its own lines; the other party detects the signal by timing loads of
 * *its* lines in that set — evictions (misses) mean the peer signaled.
 * Signals are durable (cache state), and every poll re-installs the
 * poller's lines, re-arming the set.
 *
 * All waits are bounded: on timeout the caller repeats the step before
 * the wait (the paper's deadlock-recovery rule).
 */

#ifndef GPUCC_COVERT_SYNC_HANDSHAKE_H
#define GPUCC_COVERT_SYNC_HANDSHAKE_H

#include <vector>

#include "covert/counters.h"
#include "gpu/arch_params.h"
#include "gpu/device_task.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

/**
 * Tunable timing of the synchronized protocol.
 *
 * Cycle-valued fields default to 0, meaning *unset*: real values are
 * always derived from an architecture via forArch() (or measured
 * online by session::calibrateThresholds). Earlier revisions shipped
 * Fermi-tuned literals as in-class defaults, which meant a
 * default-constructed ProtocolTiming silently ran Fermi thresholds on
 * Kepler/Maxwell; withDefaultsFrom() is the supported way to overlay
 * a partially-filled struct onto the per-arch values.
 */
struct ProtocolTiming
{
    /**
     * Signal-detection threshold (per-access cycles). Set close to the
     * all-ways-missing latency: a poll that interleaves with an
     * in-flight prime reads a *partial* eviction, and accepting those
     * leaves residue in the set that fires a spurious detection one
     * round later, permanently skewing the two parties. Only complete
     * evictions count; a partial read is simply re-polled.
     */
    double missThresholdCycles = 0.0;
    /** Data-bit decode threshold (midpoint of hit/miss populations);
     *  the settle interval guarantees the data prime never interleaves
     *  with the probe, so the midpoint is safe and more noise-robust. */
    double dataThresholdCycles = 0.0;
    unsigned maxPolls = 48;       //!< bounded wait (timeout -> resend)
    unsigned maxRetries = 3;      //!< resend attempts per handshake
    Cycle pollBackoffCycles = 0;  //!< idle time between polls
    Cycle settleCycles = 0;       //!< RTR -> data-probe guard interval
    Cycle roundGuardCycles = 0;   //!< end-of-round pacing
    /**
     * Per-data-set serialization in the multi-bit channel. The paper's
     * multi-bit variant sends one bit per cache set from different
     * threads of the same warp; divergent constant-memory addresses
     * within a warp are replayed serially by the constant cache, which
     * is why the 6-set channel yields 3.8x rather than 6x. Modeled as a
     * stagger between consecutive data sets' prime/probe windows.
     */
    Cycle setStaggerCycles = 0;

    /** Defaults derived from an architecture's cache latencies and the
     *  per-generation protocol costs. */
    static ProtocolTiming forArch(const gpu::ArchParams &arch);

    /** Overlay onto @p defaults: every zero (unset) field of this
     *  struct takes the corresponding value from @p defaults. */
    ProtocolTiming withDefaultsFrom(const ProtocolTiming &defaults) const;

    /** @return true when both decode thresholds are set (> 0). */
    bool
    thresholdsSet() const
    {
        return missThresholdCycles > 0.0 && dataThresholdCycles > 0.0;
    }
};

/** Fill a set with the caller's lines (send a durable signal). */
gpu::DeviceTask<void> primeSet(gpu::WarpCtx &ctx,
                               const std::vector<Addr> &addrs);

/**
 * Time one pass over the caller's lines in a set.
 * @return average per-access latency in cycles; also re-installs the
 *         lines, re-arming the set for the next signal.
 */
gpu::DeviceTask<double> probeSetAvg(gpu::WarpCtx &ctx,
                                    const std::vector<Addr> &addrs);

/**
 * Poll the caller's lines until an eviction shows up.
 *
 * @param counters Optional robustness accounting: timeouts and re-arm
 *        passes are recorded here (callers count their own retries).
 * @return true when the peer's signal was detected, false on timeout.
 */
gpu::DeviceTask<bool> waitForSignal(gpu::WarpCtx &ctx,
                                    const std::vector<Addr> &mine,
                                    const ProtocolTiming &timing,
                                    RobustnessCounters *counters = nullptr);

} // namespace gpucc::covert

#endif // GPUCC_COVERT_SYNC_HANDSHAKE_H

#include "covert/sync/sync_sfu_channel.h"

#include "common/log.h"
#include "covert/channels/cache_sets.h"
#include "covert/channels/sfu_channel.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

namespace
{
constexpr double outScale = 256.0;
}

SyncSfuChannel::SyncSfuChannel(const gpu::ArchParams &arch_,
                               SyncSfuConfig cfg_)
    : arch(arch_), cfg(cfg_), timing(ProtocolTiming::forArch(arch_))
{
    parties = std::make_unique<TwoPartyHarness>(arch, cfg.seed);
    parties->setJitterUs(cfg.jitterUs);
    parties->device().setMitigations(cfg.mitigations);
}

SyncSfuChannel::~SyncSfuChannel() = default;

ChannelResult
SyncSfuChannel::transmit(const BitVec &message)
{
    const auto &geom = arch.constMem.l1;
    auto &dev = parties->device();
    unsigned rounds = static_cast<unsigned>(message.size());
    unsigned dataWarps = SfuChannel::warpsPerBlock(arch);
    unsigned sets = static_cast<unsigned>(geom.numSets());

    std::size_t align = setStride(geom);
    Addr tBase = dev.allocConst(probeArrayBytes(geom), align);
    Addr sBase = dev.allocConst(probeArrayBytes(geom), align);
    auto rtsT = setFillingAddrs(geom, tBase, sets - 2);
    auto rtrT = setFillingAddrs(geom, tBase, sets - 1);
    auto rtsS = setFillingAddrs(geom, sBase, sets - 2);
    auto rtrS = setFillingAddrs(geom, sBase, sets - 1);

    ProtocolTiming t = timing;
    unsigned dataOps = cfg.dataOpsPerBit;
    BitVec payload = message;
    // Spy waits this long after sending RTR before measuring (covers
    // the trojan's RTR-detection poll plus the barrier).
    Cycle dataSettle = t.settleCycles / 4;
    // Unlike cache evictions, SFU contention is transient: the trojan
    // must keep spinning across the spy's settle AND its whole
    // measurement window.
    const auto &sinfT = arch.timing(gpu::OpClass::Sinf);
    double sinfBase = static_cast<double>(sinfT.latencyCycles) +
                      ticksToCyclesF(sinfT.occTicks);
    unsigned trojanOps =
        2 * dataOps +
        static_cast<unsigned>((dataSettle + 1200) / sinfBase);

    gpu::KernelLaunch trojanK;
    trojanK.name = "sync-sfu-trojan";
    trojanK.config.gridBlocks = arch.numSms;
    trojanK.config.threadsPerBlock = (dataWarps + 1) * warpSize;
    trojanK.body = [rtsT, rtrT, payload, rounds, t, trojanOps,
                    dataSettle](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        unsigned w = ctx.warpInBlock();
        if (w == 0)
            co_await primeSet(ctx, rtrT);
        co_await ctx.syncthreads();
        co_await ctx.sleep(t.settleCycles);

        for (unsigned r = 0; r < rounds; ++r) {
            if (w == 0) {
                for (unsigned attempt = 0; attempt < t.maxRetries;
                     ++attempt) {
                    co_await primeSet(ctx, rtsT);
                    if (co_await waitForSignal(ctx, rtrT, t))
                        break;
                }
            }
            co_await ctx.syncthreads();
            if (w != 0 && payload[r]) {
                for (unsigned i = 0; i < trojanOps; ++i)
                    co_await ctx.op(gpu::OpClass::Sinf);
            }
            co_await ctx.syncthreads();
            co_await ctx.sleep(t.roundGuardCycles / 2 + dataSettle);
        }
        // Keep the SM sealed until the spy's final measurement ends
        // (see the matching comment in sync_channel.cc).
        co_await ctx.sleep(dataSettle + 4000);
        co_return;
    };

    gpu::KernelLaunch spyK;
    spyK.name = "sync-sfu-spy";
    spyK.config.gridBlocks = arch.numSms;
    spyK.config.threadsPerBlock = (dataWarps + 1) * warpSize;
    spyK.body = [rtsS, rtrS, rounds, t, dataOps,
                 dataSettle](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        unsigned w = ctx.warpInBlock();
        if (w == 0)
            co_await primeSet(ctx, rtsS);
        co_await ctx.syncthreads();

        for (unsigned r = 0; r < rounds; ++r) {
            if (w == 0) {
                for (unsigned attempt = 0; attempt < t.maxRetries;
                     ++attempt) {
                    if (co_await waitForSignal(ctx, rtsS, t))
                        break;
                }
                co_await primeSet(ctx, rtrS);
            }
            co_await ctx.syncthreads();
            // Every spy warp waits out the settle, then all run the
            // measurement window together: warp 1 records, the others
            // supply the Section 5.2 baseline SFU load for the whole
            // window (a partial baseline would shift the symbols).
            co_await ctx.sleep(dataSettle);
            if (w == 1) {
                std::uint64_t total = 0;
                for (unsigned i = 0; i < dataOps; ++i)
                    total += co_await ctx.op(gpu::OpClass::Sinf);
                double avg = static_cast<double>(total) / dataOps;
                ctx.out(static_cast<std::uint64_t>(avg * outScale));
            } else if (w > 1) {
                for (unsigned i = 0; i < dataOps; ++i)
                    co_await ctx.op(gpu::OpClass::Sinf);
            }
            co_await ctx.syncthreads();
        }
        co_return;
    };

    auto &tHost = parties->trojanHost();
    auto &sHost = parties->spyHost();
    auto &trojan = tHost.launch(parties->trojanStream(), trojanK);
    auto &spy = sHost.launch(parties->spyStream(), spyK);
    sHost.sync(spy);
    tHost.sync(trojan);

    // Decode against the Section 5.2 symbol midpoint.
    const auto &ot = arch.timing(gpu::OpClass::Sinf);
    double base = static_cast<double>(ot.latencyCycles) +
                  ticksToCyclesF(ot.occTicks);
    // Contended symbol: roughly (spy+trojan warps per scheduler) x occ.
    double perSched = static_cast<double>(2 * SfuChannel::warpsPerBlock(
                                              arch)) /
                      arch.schedulersPerSm;
    double contended =
        std::max(base + 2.0, perSched * ticksToCyclesF(ot.occTicks));
    double threshold = 0.5 * (base + contended);

    ChannelResult res;
    res.channelName = "sync SFU";
    res.sent = message;
    res.threshold = threshold;
    res.received.assign(message.size(), 0);
    unsigned wpb = spy.config().warpsPerBlock();
    for (const auto &rec : spy.blockRecords()) {
        if (rec.smId != 0)
            continue;
        const auto &vals = spy.out(rec.blockId * wpb + 1);
        for (unsigned r = 0; r < rounds && r < vals.size(); ++r) {
            double avg = static_cast<double>(vals[r]) / outScale;
            bool bit = avg > threshold;
            res.received[r] = bit ? 1 : 0;
            (message[r] ? res.oneMetric : res.zeroMetric).add(avg);
        }
    }
    res.report = compareBits(res.sent, res.received);
    finalizeResult(res, arch, spy.endTick() - spy.startTick());
    return res;
}

} // namespace gpucc::covert

/**
 * @file
 * Online threshold calibration and drift tracking.
 *
 * ProtocolTiming::forArch derives thresholds from the architecture's
 * *nominal* cache latencies — correct on a quiet device, and wrong the
 * moment a fault plan biases observed latencies (thermal drift, timer
 * degradation) away from the datasheet numbers. A real attacker never
 * has the datasheet anyway: both parties measure the device they are
 * actually on.
 *
 * calibrateThresholds() runs a measurement kernel pair on the duplex
 * channel's own harness. Each party owns two L1-aliased line arrays in
 * a private cache set and alternates prime/probe over them: probing a
 * just-primed array samples the *hit* population, probing after the
 * alias array evicted it samples the *miss* population (an L2 hit —
 * exactly what an evicted signal line costs in the protocol). Samples
 * are spread over time so active jitter/drift windows are represented,
 * and medians are used so a burst polluting a few samples cannot move
 * the thresholds. The derived timing carries only the two thresholds;
 * pacing fields stay 0 and fall back per-arch when installed with
 * DuplexSyncChannel::setTiming.
 *
 * DriftTracker watches the decode margins of live traffic (see
 * TransportResult::worstMargin) with an EWMA; when the smoothed margin
 * falls below a guard-band fraction of the margin measured at
 * calibration time, the session recalibrates *before* bits start
 * flipping.
 */

#ifndef GPUCC_COVERT_SESSION_CALIBRATION_H
#define GPUCC_COVERT_SESSION_CALIBRATION_H

#include <vector>

#include "covert/sync/handshake.h"

namespace gpucc::covert
{
class DuplexSyncChannel;
} // namespace gpucc::covert

namespace gpucc::covert::session
{

/** What the measurement produced. */
struct CalibrationResult
{
    double hitCycles = 0.0;    //!< median per-access hit latency
    double missCycles = 0.0;   //!< median per-access miss latency
    double marginCycles = 0.0; //!< half the hit/miss separation
    /** Thresholds derived from the measured populations (pacing fields
     *  unset — they overlay the per-arch defaults on install). When
     *  !ok this is the plain per-arch fallback. */
    ProtocolTiming timing;
    bool ok = false;       //!< populations separated cleanly
    unsigned samples = 0;  //!< hit+miss samples used (both parties)
};

/**
 * Measure the hit/miss latency populations on @p ch's device and
 * derive protocol thresholds from them.
 *
 * Runs one measurement kernel per party (concurrently, SM 0, private
 * cache sets) taking @p rounds hit/miss sample pairs each. Falls back
 * to ProtocolTiming::forArch (ok=false) when the measured populations
 * overlap — a calibration run swamped by faults must not install
 * nonsense thresholds.
 */
CalibrationResult calibrateThresholds(DuplexSyncChannel &ch,
                                      unsigned rounds = 12);

/**
 * The population-split core of calibrateThresholds(), usable by any
 * measurement that produced hit/miss latency populations (the blind
 * synthesizer feeds eviction-probe samples through here). Medians both
 * populations and, when they separate cleanly, derives the two
 * protocol thresholds (signal near the miss population, data at the
 * midpoint); pacing fields stay 0. When the populations overlap
 * (missing, or miss median within 4 cycles of the hit median) the
 * result has ok=false and an untouched default timing — the caller
 * owns the fallback policy.
 */
CalibrationResult thresholdsFromPopulations(
    const std::vector<double> &hits, const std::vector<double> &misses);

/** EWMA drift watchdog over live decode margins. */
class DriftTracker
{
  public:
    /**
     * @param calibratedMargin Margin measured at calibration time.
     * @param guardFraction Recalibrate when the smoothed margin drops
     *        below this fraction of the calibrated margin.
     * @param alpha EWMA weight of the newest observation.
     */
    explicit DriftTracker(double calibratedMargin,
                          double guardFraction = 0.35,
                          double alpha = 0.4);

    /** Feed one observed margin (ignores non-finite values). */
    void observe(double margin);

    /** @return true when the smoothed margin has entered the guard
     *  band (time to recalibrate). */
    bool belowGuard() const;

    /** Reset against a fresh calibration. */
    void rebase(double calibratedMargin);

    /** Current smoothed margin (calibrated margin until observed). */
    double smoothed() const { return ewma; }

  private:
    double reference; //!< margin at calibration time
    double guard;     //!< guard-band fraction
    double alpha;     //!< EWMA weight
    double ewma;      //!< smoothed observed margin
};

} // namespace gpucc::covert::session

#endif // GPUCC_COVERT_SESSION_CALIBRATION_H

#include "covert/session/session.h"

#include <algorithm>
#include <memory>

#include <chrono>

#include "common/log.h"
#include "common/metrics/metrics.h"
#include "covert/agile/idle_discovery.h"
#include "covert/session/pilot.h"
#include "covert/trace/flight_recorder.h"
#include "obs/profiler.h"
#include "sim/trace/trace.h"

namespace gpucc::covert::session
{

namespace
{

/**
 * Transport decorator enforcing the ladder rung's period floor: the
 * ARQ layer's adaptive rate control keeps narrowing toward scale 1.0
 * on clean streaks, which would silently undo a degradation step. The
 * floor clamps every scale the link installs.
 */
class FlooredTransport : public link::LinkTransport
{
  public:
    explicit FlooredTransport(link::LinkTransport &inner_) : inner(inner_)
    {
    }

    link::TransportResult
    exchange(const BitVec &aToB, const BitVec &bToA) override
    {
        return inner.exchange(aToB, bToA);
    }

    void
    setPeriodScale(double scale) override
    {
        inner.setPeriodScale(std::max(scale, floor));
    }

    double periodScale() const override { return inner.periodScale(); }
    std::string name() const override { return inner.name(); }
    sim::trace::Shard *traceShard() const override
    {
        return inner.traceShard();
    }
    Tick nowTick() const override { return inner.nowTick(); }

    void
    setFloor(double f)
    {
        floor = f;
        if (inner.periodScale() < floor)
            inner.setPeriodScale(floor);
    }

  private:
    link::LinkTransport &inner;
    double floor = 1.0;
};

} // namespace

std::vector<SessionRung>
defaultLadder(std::size_t payloadBits)
{
    std::size_t small = std::max<std::size_t>(payloadBits / 2, 8);
    return {
        {2, 1.0, payloadBits}, //!< multi-bit: two data sets per direction
        {1, 1.0, payloadBits}, //!< single-bit at full rate
        {1, 2.0, payloadBits}, //!< single-bit, doubled symbol period
        {1, 4.0, small},       //!< crawl: 4x period, half-size frames
    };
}

ChannelSession::ChannelSession(const gpu::ArchParams &arch_,
                               SessionConfig cfg_, DuplexConfig duplexCfg)
    : arch(arch_), cfg(std::move(cfg_))
{
    rungs = cfg.ladder.empty() ? defaultLadder(cfg.link.payloadBits)
                               : cfg.ladder;
    GPUCC_ASSERT(!rungs.empty(), "session ladder cannot be empty");
    GPUCC_ASSERT(rungs.size() <= auditRungMarker,
                 "ladder too tall: rung 0xF is the audit marker");
    GPUCC_ASSERT(!cfg.resources.empty(),
                 "session resource ladder cannot be empty");
    auto bootWallStart = std::chrono::steady_clock::now();
    chan = std::make_unique<DuplexSyncChannel>(arch, duplexCfg);
    chan->setResource(cfg.resources.front());
    if (cfg.profiler != nullptr) {
        auto wallNs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - bootWallStart)
                .count());
        // A fresh device starts at tick 0, so its clock after
        // construction is exactly the boot cost in cycles.
        cfg.profiler->add(
            obs::phase::kBoot,
            static_cast<std::uint64_t>(chan->harness().device().now()),
            wallNs);
    }
}

ChannelSession::~ChannelSession() = default;

SessionResult
ChannelSession::run(const BitVec &payload)
{
    SessionResult out;
    auto &dev = chan->harness().device();
    auto &reg = dev.metricsRegistry();
    auto *shard = dev.traceShard();

    auto &cRecal = reg.counter("session.recalibrations");
    auto &cDesync = reg.counter("session.desyncs");
    auto &cResync = reg.counter("session.resyncs");
    auto &cDegrade = reg.counter("session.degradeSteps");
    auto &cUpgrade = reg.counter("session.upgradeSteps");
    auto &cResumed = reg.counter("session.resumedFrames");
    auto &cPilots = reg.counter("session.pilotsSent");
    auto &cPilotFail = reg.counter("session.pilotFailures");
    auto &cAuditFail = reg.counter("session.auditFailures");
    auto &cSegments = reg.counter("session.segments");
    auto &cFailovers = reg.counter("session.failovers");

    // The rung gauge outlives this call (pull callbacks are sampled at
    // snapshot time), so it owns its backing value.
    auto rungValue = std::make_shared<double>(0.0);
    reg.gauge("session.rung", [rungValue] { return *rungValue; });

    // Phase attribution: cycles come from the device clock, so totals
    // are a pure function of the simulation (worker-count invariant).
    obs::Profiler *prof = cfg.profiler;
    auto tick = [&dev]() -> std::uint64_t {
        return static_cast<std::uint64_t>(dev.now());
    };

    auto note = [&](const std::string &label) {
        if (shard != nullptr && shard->wants(sim::trace::Cat::Link)) {
            shard->nameRow(7000, "session events");
            shard->instant(sim::trace::Cat::Link, 7000, label, dev.now());
        }
        if (cfg.recorder != nullptr)
            cfg.recorder->annotate(dev.now(), label);
    };

    link::DuplexLinkTransport base(*chan);
    FlooredTransport floored(base);

    unsigned rung = cfg.startMultiBit ? 0u : std::min<unsigned>(
                                                 1u, rungs.size() - 1);
    std::uint16_t epoch = 0;

    auto applyRung = [&] {
        const SessionRung &R = rungs[rung];
        chan->setDataSetsPerDirection(R.dataSets);
        floored.setFloor(R.periodFloor);
        *rungValue = static_cast<double>(rung);
    };
    auto stepDown = [&] {
        if (rung + 1 >= rungs.size())
            return;
        ++rung;
        applyRung();
        ++out.degradeSteps;
        cDegrade.inc();
        note(strfmt("degrade:%u", rung));
    };
    auto stepUp = [&] {
        if (rung == 0)
            return;
        --rung;
        applyRung();
        ++out.upgradeSteps;
        cUpgrade.inc();
        note(strfmt("upgrade:%u", rung));
    };
    applyRung();

    // ---- Online calibration: no hand-tuned threshold enters the
    // session; the device is measured, the thresholds derived. ----
    {
        obs::PhaseScope ps(prof, obs::phase::kCalibrate, tick);
        out.calibration =
            calibrateThresholds(*chan, cfg.calibrationRounds);
        chan->setTiming(out.calibration.timing);
    }
    DriftTracker tracker(out.calibration.marginCycles, cfg.guardFraction);
    note("calibrate");

    auto recalibrate = [&] {
        // Off the L1 substrate the contention exchange derives its
        // threshold from the quiet/burst populations of every exchange;
        // an L1 eviction calibration would measure the wrong resource.
        if (chan->resource() != ChannelResource::L1Const)
            return;
        obs::PhaseScope ps(prof, obs::phase::kCalibrate, tick);
        CalibrationResult c =
            calibrateThresholds(*chan, cfg.calibrationRounds);
        chan->setTiming(c.timing);
        tracker.rebase(c.marginCycles);
        ++out.recalibrations;
        cRecal.inc();
        note("recalibrate");
    };

    // ---- Pilot exchange: one epoch-numbered pilot each way, riding a
    // normal Figure-11 duplex exchange. ----
    auto pilotOk = [&]() -> bool {
        obs::PhaseScope ps(prof, obs::phase::kHandshake, tick);
        Pilot p{epoch, static_cast<std::uint8_t>(rung)};
        BitVec wire = encodePilot(p);
        link::TransportResult ex = floored.exchange(wire, wire);
        out.pilotsSent += 2;
        cPilots.inc(2);
        ++out.rounds;
        out.seconds += ex.seconds;
        tracker.observe(ex.worstMargin);
        PilotParse atB = parsePilot(ex.atB);
        PilotParse atA = parsePilot(ex.atA);
        bool ok = atB.valid && atA.valid &&
                  !staleEpoch(atB.pilot.epoch, epoch) &&
                  !staleEpoch(atA.pilot.epoch, epoch) &&
                  atB.pilot.epoch == epoch && atA.pilot.epoch == epoch &&
                  atB.pilot.rung == rung && atA.pilot.rung == rung;
        if (!ok) {
            ++out.pilotFailures;
            cPilotFail.inc();
            note("pilot-fail");
        }
        return ok;
    };

    // ---- Cross-resource failover: taken only when a resync attempt
    // fails with the degradation ladder already exhausted. Noise makes
    // slower rungs work; a defense that killed the substrate (way
    // partitioning walls the cache off entirely) makes every rung fail
    // identically, and the only move left is a different resource. ----
    std::size_t resourceIdx = 0;
    auto failover = [&]() -> bool {
        if (resourceIdx + 1 >= cfg.resources.size())
            return false;
        obs::PhaseScope ps(prof, obs::phase::kFailover, tick);
        if (chan->resource() == ChannelResource::L1Const) {
            // Record what the L1 looked like when it was abandoned: a
            // walled-off cache shows every set quiet from this side
            // (nothing crosses the partition), while plain third-party
            // interference shows hot sets instead.
            auto act =
                probeSetActivity(dev, chan->harness().trojanHost(), 4);
            double avg = 0.0;
            for (const auto &s : act)
                avg += s.missFraction;
            if (!act.empty())
                avg /= static_cast<double>(act.size());
            note(strfmt("l1-activity:%.2f", avg));
        }
        ++resourceIdx;
        chan->setResource(cfg.resources[resourceIdx]);
        ++epoch; // pilots from the dead substrate must not resync us
        ++out.failovers;
        cFailovers.inc();
        // A fresh substrate earns a fresh start: single-bit, full rate
        // (multi-bit set pairs only exist on L1 anyway).
        rung = std::min<unsigned>(1, static_cast<unsigned>(rungs.size()) -
                                         1);
        applyRung();
        note(strfmt("failover:%s",
                    channelResourceName(cfg.resources[resourceIdx])));
        return true;
    };

    // ---- Resync: new epoch, fresh calibration, pilot handshakes until
    // the parties agree again (all bounded; a failed attempt steps down
    // the ladder before retrying, and once the ladder is exhausted it
    // fails over to the next resource). ----
    auto resync = [&]() -> bool {
        // Self-time: the embedded recalibrations and pilot handshakes
        // bill their own phases; "resync" keeps the orchestration cost
        // and, through its call count, the number of desync recoveries.
        obs::PhaseScope ps(prof, obs::phase::kResync, tick);
        ++out.desyncs;
        cDesync.inc();
        note("desync");
        for (unsigned attempt = 0; attempt < cfg.maxResyncAttempts;
             ++attempt) {
            ++epoch; // stale pilots from before the desync are rejected
            recalibrate();
            unsigned clean = 0;
            for (unsigned t = 0; t < cfg.resyncCleanPilots + 4; ++t) {
                if (pilotOk()) {
                    if (++clean >= cfg.resyncCleanPilots) {
                        ++out.resyncs;
                        cResync.inc();
                        note("resync");
                        return true;
                    }
                } else {
                    clean = 0;
                }
            }
            if (rung + 1 < rungs.size())
                stepDown();
            else if (!failover())
                continue; // everything exhausted; keep trying at bottom
        }
        return false; // proceed anyway; the segment loop stays bounded
    };

    // ---- Transfer loop: pilot, then one bounded data segment, resumed
    // from the last ARQ-acknowledged frame after any interruption. ----
    std::size_t cursor = 0;
    unsigned consecPilotFails = 0;
    unsigned cleanStreak = 0;
    unsigned iters = 0;
    const unsigned maxIters = 4 * cfg.maxSegments;

    while (cursor < payload.size() && out.segments < cfg.maxSegments &&
           iters < maxIters) {
        ++iters;

        if (!pilotOk()) {
            if (++consecPilotFails >= cfg.pilotFailLimit) {
                consecPilotFails = 0;
                resync();
            }
            continue;
        }
        consecPilotFails = 0;

        const SessionRung &R = rungs[rung];
        std::size_t chunkBits = std::min<std::size_t>(
            std::size_t(cfg.segmentFrames) * R.payloadBits,
            payload.size() - cursor);
        BitVec chunk(payload.begin() + static_cast<long>(cursor),
                     payload.begin() +
                         static_cast<long>(cursor + chunkBits));

        link::LinkConfig lc = cfg.link;
        lc.payloadBits = R.payloadBits;
        lc.registry = &reg;
        link::ReliableLink link(floored, lc);
        link::LinkResult res = [&] {
            obs::PhaseScope ps(prof, obs::phase::kTransfer, tick);
            return link.send(chunk);
        }();

        ++out.segments;
        cSegments.inc();
        out.rounds += res.rounds;
        out.seconds += res.seconds;

        // The link delivers the receiver's in-order prefix: everything
        // in it is ARQ-acknowledged, and the ack counts are protocol-
        // visible to both sides, so the sender can checksum the same
        // prefix from its own copy. The audit exchange commits the
        // prefix only when both checksums survive the channel and
        // agree — an undetected CRC-8 collision inside a frame costs a
        // retransmitted segment, never a flipped delivered bit.
        bool keep = !res.payload.empty();
        if (keep) {
            // The audit verifies what the receiver *decoded*, so its
            // exchanges are attributed to the decode phase.
            obs::PhaseScope ps(prof, obs::phase::kDecode, tick);
            BitVec acked(chunk.begin(),
                         chunk.begin() +
                             static_cast<long>(res.payload.size()));
            Pilot aAudit{segmentChecksum(acked), auditRungMarker};
            Pilot bAudit{segmentChecksum(res.payload), auditRungMarker};
            keep = false;
            for (unsigned t = 0; t <= cfg.auditRetries; ++t) {
                link::TransportResult ax = floored.exchange(
                    encodePilot(aAudit), encodePilot(bAudit));
                ++out.rounds;
                out.seconds += ax.seconds;
                tracker.observe(ax.worstMargin);
                PilotParse atB = parsePilot(ax.atB);
                PilotParse atA = parsePilot(ax.atA);
                bool readable = atB.valid && atA.valid &&
                                atB.pilot.rung == auditRungMarker &&
                                atA.pilot.rung == auditRungMarker;
                if (!readable)
                    continue; // the audit itself was garbled: re-send
                keep = atB.pilot.epoch == bAudit.epoch &&
                       atA.pilot.epoch == aAudit.epoch;
                break; // a readable verdict is final either way
            }
            if (!keep) {
                ++out.auditFailures;
                cAuditFail.inc();
                note("audit-fail");
            }
        }

        if (keep) {
            // Committed: the next segment starts right after the
            // audited prefix — an eviction mid-segment costs the
            // unfinished tail, never the transfer.
            cursor += res.payload.size();
            out.delivered.insert(out.delivered.end(),
                                 res.payload.begin(),
                                 res.payload.end());
            if (!res.complete) {
                auto kept = static_cast<unsigned>(res.payload.size() /
                                                  R.payloadBits);
                out.resumedFrames += kept;
                cResumed.inc(kept);
                note("resume");
            }
        }

        tracker.observe(res.worstMargin);
        if (tracker.belowGuard())
            recalibrate();

        bool bad = !keep || !res.complete ||
                   res.frameErrorRate > cfg.degradeFer;
        if (bad) {
            cleanStreak = 0;
            stepDown();
        } else if (++cleanStreak >= cfg.cleanSegmentsToUpgrade) {
            cleanStreak = 0;
            stepUp();
        }
    }

    out.finalRung = rung;
    out.finalResource = chan->resource();
    out.complete = cursor >= payload.size() &&
                   out.delivered.size() == payload.size();
    std::size_t common = std::min(out.delivered.size(), payload.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (out.delivered[i] != payload[i])
            ++out.residualBitErrors;
    }
    out.residualBitErrors +=
        std::max(out.delivered.size(), payload.size()) - common;
    if (!payload.empty()) {
        out.residualBer = static_cast<double>(out.residualBitErrors) /
                          static_cast<double>(payload.size());
    }
    if (out.seconds > 0.0) {
        out.goodputBps =
            static_cast<double>(out.delivered.size()) / out.seconds;
    }
    return out;
}

} // namespace gpucc::covert::session

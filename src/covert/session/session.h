/**
 * @file
 * Self-calibrating, self-healing channel sessions.
 *
 * The layers below this one each solve a local problem: the Figure-11
 * handshake synchronizes rounds, the ARQ link redelivers lost frames,
 * adaptive rate control rides out interference bursts. What none of
 * them handle is *session-scale* failure: thresholds tuned for a
 * device the channel is not actually running on, slow latency drift
 * that erodes a once-correct threshold, or a mid-transfer kernel
 * eviction that restarts one party with no memory of where the
 * transfer stood. ChannelSession closes these gaps:
 *
 *  - **Online calibration** (calibration.h): both parties measure the
 *    hit/miss populations on the live device at session start and
 *    derive the thresholds from data; no ProtocolTiming literal is
 *    trusted. An EWMA drift tracker watches decode margins during the
 *    transfer and recalibrates when they erode into a guard band.
 *  - **Desync detection** (pilot.h): epoch-numbered pilot symbols are
 *    interleaved between data segments; N consecutive pilot failures
 *    declare desynchronization and trigger resync — a fresh epoch, a
 *    fresh calibration, and repeated pilot handshakes (each pilot
 *    rides the Figure-11 exchange) until the parties agree again.
 *  - **Eviction-survivable transfer**: payload moves in bounded
 *    segments; each segment's ARQ result reports the receiver's
 *    in-order delivered prefix, so after any interruption the session
 *    resumes from the last acknowledged frame instead of resending
 *    the transfer. Before a prefix is committed the parties exchange
 *    a 16-bit audit checksum of it (pilot.h): the link's per-frame
 *    CRC-8 admits rare undetected corruption under dense interference,
 *    and an audit disagreement discards the segment for retransmission
 *    instead of silently delivering a flipped bit.
 *  - **Graceful degradation ladder**: under persistent frame errors
 *    the session steps down — two data sets per direction, then one,
 *    then progressively longer symbol periods — and steps back up
 *    after a streak of clean segments. Every transition is counted in
 *    the device metrics registry and visible on the trace timeline.
 *  - **Cross-resource failover**: when resyncs keep failing with the
 *    ladder already at its bottom rung — the signature of an adaptive
 *    defense (way partitioning, cache flushing) that killed the
 *    substrate outright rather than just adding noise — a channel-
 *    agile session re-handshakes onto the next resource of its
 *    configured ladder (SFU pipes, then global atomic units), bumping
 *    the pilot epoch so stale frames die, and resumes the transfer
 *    from the last ARQ-acknowledged prefix.
 */

#ifndef GPUCC_COVERT_SESSION_SESSION_H
#define GPUCC_COVERT_SESSION_SESSION_H

#include <memory>
#include <vector>

#include "common/bitstream.h"
#include "covert/link/reliable_link.h"
#include "covert/session/calibration.h"
#include "covert/sync/duplex_channel.h"

namespace gpucc::covert::trace
{
class FlightRecorder;
} // namespace gpucc::covert::trace

namespace gpucc::obs
{
class Profiler;
} // namespace gpucc::obs

namespace gpucc::covert::session
{

/** One rung of the degradation ladder. */
struct SessionRung
{
    unsigned dataSets = 1;   //!< data cache sets per direction (1-2)
    double periodFloor = 1.0; //!< minimum symbol-period stretch
    std::size_t payloadBits = 32; //!< frame payload field at this rung
};

/** Session-layer tuning knobs. */
struct SessionConfig
{
    /** Base link configuration (window, retry budget, rate control);
     *  payloadBits is overridden per rung. */
    link::LinkConfig link;

    /** Ladder from fastest (index 0) to most conservative. Empty uses
     *  the default 4-rung ladder. */
    std::vector<SessionRung> ladder;
    bool startMultiBit = true; //!< start at rung 0 (else rung 1)

    /**
     * Cross-resource failover ladder (PROTOCOL.md "Cross-resource
     * failover"). The session opens on resources[0]; when resync
     * attempts keep failing with the degradation ladder already at its
     * bottom rung — the signature of a defense that killed the
     * substrate rather than mere noise — it re-handshakes the same
     * session (fresh epoch, same cursor) on the next resource. The
     * default pins the session to the L1 protocol, preserving the
     * historical single-substrate behavior; channel-agile attackers
     * append Sfu / GlobalAtomic.
     */
    std::vector<ChannelResource> resources = {ChannelResource::L1Const};

    unsigned segmentFrames = 3;   //!< data frames per segment (pilot cadence)
    unsigned pilotFailLimit = 2;  //!< consecutive failures -> desync
    unsigned resyncCleanPilots = 2; //!< clean pilots to declare resync
    unsigned maxResyncAttempts = 6;
    /** Re-sends of a *garbled* audit exchange before the segment is
     *  dropped (a readable checksum mismatch drops it immediately —
     *  retrying cannot change the verdict, only noise can). */
    unsigned auditRetries = 2;
    unsigned maxSegments = 256;   //!< hard bound on data segments

    unsigned calibrationRounds = 12; //!< sample pairs per party
    double guardFraction = 0.35;  //!< drift guard band (of cal. margin)
    double degradeFer = 0.25;     //!< segment FER that forces a step down
    unsigned cleanSegmentsToUpgrade = 3;

    /** Optional session-event annotation sink (non-owning). */
    trace::FlightRecorder *recorder = nullptr;

    /**
     * Optional phase profiler (non-owning; null = no profiling, the
     * fault-hook pattern). When attached, the session attributes
     * simulated cycles and wall time to the canonical phases — boot,
     * calibrate, handshake, transfer, decode, resync, failover — with
     * self-time semantics (a resync's embedded recalibration bills
     * "calibrate"). Attachment never perturbs the simulation: the
     * profiler only *reads* the device clock (property_test pins
     * digest-equality of profiled vs unprofiled runs).
     */
    obs::Profiler *profiler = nullptr;
};

/** Outcome of one session transfer. */
struct SessionResult
{
    BitVec delivered;      //!< receiver's assembled payload
    bool complete = false; //!< delivered == payload, in full
    std::size_t residualBitErrors = 0; //!< mismatches vs ground truth
    double residualBer = 0.0;

    CalibrationResult calibration; //!< initial calibration
    unsigned recalibrations = 0;   //!< drift/resync-triggered re-runs
    unsigned desyncs = 0;          //!< desync declarations
    unsigned resyncs = 0;          //!< successful resynchronizations
    unsigned degradeSteps = 0;     //!< ladder steps down
    unsigned upgradeSteps = 0;     //!< ladder steps up
    unsigned resumedFrames = 0;    //!< frames kept across interruptions
    unsigned pilotsSent = 0;       //!< pilot symbols transmitted
    unsigned pilotFailures = 0;    //!< pilot exchanges that failed
    unsigned auditFailures = 0;    //!< segment checksums that disagreed
    unsigned segments = 0;         //!< data segments attempted
    unsigned finalRung = 0;        //!< ladder rung at session end
    unsigned failovers = 0;        //!< cross-resource re-handshakes
    /** Substrate carrying traffic when the session ended. */
    ChannelResource finalResource = ChannelResource::L1Const;

    unsigned rounds = 0;   //!< physical exchanges (data + pilots)
    double seconds = 0.0;  //!< device time consumed
    double goodputBps = 0.0; //!< delivered bits / seconds
};

/** A calibrated, self-healing transfer session over the duplex link. */
class ChannelSession
{
  public:
    /** Owns its duplex channel (and through it the device). */
    explicit ChannelSession(const gpu::ArchParams &arch,
                            SessionConfig cfg = {},
                            DuplexConfig duplexCfg = {});
    ~ChannelSession();

    /** Deliver @p payload A -> B. Never deadlocks: every wait, retry,
     *  resync attempt and segment count is bounded. */
    SessionResult run(const BitVec &payload);

    /** Underlying channel (tests arm fault injectors on its device). */
    DuplexSyncChannel &channel() { return *chan; }

    const SessionConfig &config() const { return cfg; }

    /** The ladder in force (defaulted when the config left it empty). */
    const std::vector<SessionRung> &ladder() const { return rungs; }

  private:
    gpu::ArchParams arch;
    SessionConfig cfg;
    std::vector<SessionRung> rungs;
    std::unique_ptr<DuplexSyncChannel> chan;
};

/** The default 4-rung ladder: multi-bit, single-bit, then single-bit
 *  at 2x and 4x symbol period (the last rung also halves the frame). */
std::vector<SessionRung> defaultLadder(std::size_t payloadBits);

} // namespace gpucc::covert::session

#endif // GPUCC_COVERT_SESSION_SESSION_H

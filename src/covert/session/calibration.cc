#include "covert/session/calibration.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.h"
#include "covert/channels/cache_sets.h"
#include "covert/sync/duplex_channel.h"
#include "gpu/device_task.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert::session
{

namespace
{

constexpr double outScale = 256.0; //!< fixed-point scale for out()

/** Median of @p v (0 when empty); sorts a copy. */
double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + mid, v.end());
    return v[mid];
}

/**
 * Measurement kernel of one party: alternate hit and miss probes over
 * two arrays aliased into the same private cache set, emitting one
 * (hit, miss) sample pair per round.
 */
gpu::KernelLaunch
makeCalibrationKernel(const gpu::ArchParams &arch,
                      const std::vector<Addr> &main,
                      const std::vector<Addr> &alias, unsigned rounds,
                      Cycle spacing, const char *name)
{
    gpu::KernelLaunch k;
    k.name = name;
    k.config.gridBlocks = arch.numSms;
    k.config.threadsPerBlock = warpSize;
    k.body = [main, alias, rounds,
              spacing](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.smid() != 0)
            co_return;
        // Cold fills (DRAM-deep) are not part of either population.
        co_await primeSet(ctx, main);
        co_await primeSet(ctx, alias);
        for (unsigned i = 0; i < rounds; ++i) {
            co_await primeSet(ctx, main);
            double hit = co_await probeSetAvg(ctx, main);
            ctx.out(static_cast<std::uint64_t>(hit * outScale));
            co_await primeSet(ctx, alias); // evict main from L1
            double miss = co_await probeSetAvg(ctx, main);
            ctx.out(static_cast<std::uint64_t>(miss * outScale));
            // Spread the pairs so drift/jitter windows active right now
            // are represented in the populations.
            co_await ctx.sleep(spacing);
        }
        co_return;
    };
    return k;
}

/** Collect the SM-0 warp's samples into hit/miss vectors. */
void
collectSamples(const gpu::KernelInstance &inst, std::vector<double> &hits,
               std::vector<double> &misses)
{
    unsigned wpb = inst.config().warpsPerBlock();
    for (const auto &rec : inst.blockRecords()) {
        if (rec.smId != 0)
            continue;
        const auto &vals = inst.out(rec.blockId * wpb);
        for (std::size_t i = 0; i + 1 < vals.size(); i += 2) {
            hits.push_back(static_cast<double>(vals[i]) / outScale);
            misses.push_back(static_cast<double>(vals[i + 1]) / outScale);
        }
    }
}

} // namespace

CalibrationResult
calibrateThresholds(DuplexSyncChannel &ch, unsigned rounds)
{
    GPUCC_ASSERT(rounds >= 4, "calibration needs >= 4 sample pairs");
    TwoPartyHarness &parties = ch.harness();
    auto &dev = parties.device();
    const gpu::ArchParams &arch = dev.arch();
    const auto &geom = arch.constMem.l1;

    // Party A samples in set 0, party B in set 1 — the channel's data
    // sets, quiet before and between transfers, so calibration probes
    // the very sets the signals will ride.
    std::size_t align = setStride(geom);
    auto lines = [&](unsigned set) {
        Addr base = dev.allocConst(probeArrayBytes(geom), align);
        return setFillingAddrs(geom, base, set);
    };
    std::vector<Addr> aMain = lines(0), aAlias = lines(0);
    std::vector<Addr> bMain = lines(1), bAlias = lines(1);

    ProtocolTiming nominal = ProtocolTiming::forArch(arch);
    Cycle spacing = nominal.settleCycles;

    auto ka = makeCalibrationKernel(arch, aMain, aAlias, rounds, spacing,
                                    "calibrate-A");
    auto kb = makeCalibrationKernel(arch, bMain, bAlias, rounds, spacing,
                                    "calibrate-B");
    auto &instA = parties.trojanHost().launch(parties.trojanStream(), ka);
    auto &instB = parties.spyHost().launch(parties.spyStream(), kb);
    parties.spyHost().sync(instB);
    parties.trojanHost().sync(instA);

    std::vector<double> hits, misses;
    collectSamples(instA, hits, misses);
    collectSamples(instB, hits, misses);

    CalibrationResult res = thresholdsFromPopulations(hits, misses);
    if (!res.ok) {
        res.timing = nominal;
        res.marginCycles =
            0.5 * (static_cast<double>(arch.constMem.l2HitCycles) -
                   static_cast<double>(arch.constMem.l1HitCycles));
    }
    return res;
}

CalibrationResult
thresholdsFromPopulations(const std::vector<double> &hits,
                          const std::vector<double> &misses)
{
    CalibrationResult res;
    res.samples = static_cast<unsigned>(hits.size() + misses.size());
    res.hitCycles = median(hits);
    res.missCycles = median(misses);

    // Reject populations that overlap (e.g. every probe landed inside a
    // thrash train): installing a threshold between two
    // indistinguishable populations would decode noise.
    if (hits.empty() || misses.empty() ||
        res.missCycles <= res.hitCycles + 4.0) {
        res.ok = false;
        return res;
    }

    res.ok = true;
    double gap = res.missCycles - res.hitCycles;
    res.marginCycles = 0.5 * gap;
    // Same shape as forArch, anchored to the measured populations: the
    // signal threshold sits near the miss population (partial evictions
    // must re-poll), the data threshold at the midpoint.
    res.timing.missThresholdCycles = res.hitCycles + 0.85 * gap;
    res.timing.dataThresholdCycles = 0.5 * (res.hitCycles + res.missCycles);
    return res;
}

DriftTracker::DriftTracker(double calibratedMargin, double guardFraction,
                           double alpha_)
    : reference(calibratedMargin), guard(guardFraction), alpha(alpha_),
      ewma(calibratedMargin)
{
}

void
DriftTracker::observe(double margin)
{
    if (!std::isfinite(margin))
        return;
    ewma = alpha * margin + (1.0 - alpha) * ewma;
}

bool
DriftTracker::belowGuard() const
{
    return ewma < guard * reference;
}

void
DriftTracker::rebase(double calibratedMargin)
{
    reference = calibratedMargin;
    ewma = calibratedMargin;
}

} // namespace gpucc::covert::session

/**
 * @file
 * Epoch-numbered pilot symbols for desync detection.
 *
 * The link layer recovers from *lost or corrupted frames*; it cannot
 * tell when the two parties have lost their common view of the session
 * — after a kernel eviction one side restarts with stale thresholds,
 * a stale rate ladder rung, or a stale frame position. The session
 * layer interleaves pilot exchanges into the data stream: each party
 * sends a small self-checking pilot carrying the session epoch and the
 * current degradation rung. A pilot that fails to decode, carries a
 * *stale* epoch (a replayed symbol from before a resync), or disagrees
 * on the rung is evidence of desynchronization; N consecutive failures
 * trigger the full resynchronization procedure (a Figure-11 handshake
 * cycle that re-establishes a common epoch).
 *
 * Wire format (36 bits):
 *
 *   | sync 8 | epoch 16 | rung 4 | crc 8 |
 *
 * The sync pattern (11100010) is distinct from the link layer's frame
 * preamble so a pilot never parses as a data frame or vice versa.
 * Decoding is total: any bit stream yields either a valid pilot or a
 * rejection, never UB — the decoder is fuzzed alongside the frame
 * parser (tests/fuzz_test.cc).
 */

#ifndef GPUCC_COVERT_SESSION_PILOT_H
#define GPUCC_COVERT_SESSION_PILOT_H

#include <cstdint>

#include "common/bitstream.h"

namespace gpucc::covert::session
{

constexpr unsigned pilotSyncBits = 8;
constexpr unsigned pilotEpochBits = 16;
constexpr unsigned pilotRungBits = 4;
constexpr unsigned pilotCrcBits = 8;
constexpr unsigned pilotWireBits =
    pilotSyncBits + pilotEpochBits + pilotRungBits + pilotCrcBits;

/** The 11100010 pilot sync pattern. */
BitVec pilotSyncPattern();

/** One pilot symbol (the fields both parties must agree on). */
struct Pilot
{
    std::uint16_t epoch = 0; //!< session epoch (bumped by every resync)
    std::uint8_t rung = 0;   //!< degradation-ladder rung in force
};

/** Serialize @p p into its 36 wire bits. */
BitVec encodePilot(const Pilot &p);

/** Outcome of scanning a received bit stream for a pilot. */
struct PilotParse
{
    bool valid = false; //!< a sync+CRC-clean pilot was found
    Pilot pilot;        //!< meaningful only when valid
};

/**
 * Scan @p stream for a pilot. Total: truncated, flipped, duplicated or
 * garbage input yields valid=false (or the first CRC-clean candidate).
 * Invalid sync candidates advance the scan by one bit.
 */
PilotParse parsePilot(const BitVec &stream);

/**
 * Replay check: @p got is stale relative to @p expect when it lies in
 * the half-space *behind* expect under 16-bit wraparound arithmetic.
 * An equal or slightly-ahead epoch is not stale (the peer may have
 * advanced first during a resync race).
 */
bool staleEpoch(std::uint16_t got, std::uint16_t expect);

/**
 * Segment-audit checksum (CRC-16/CCITT over the raw bits). The link
 * layer's per-frame CRC-8 leaves a ~2^-8 undetected-corruption chance
 * per damaged frame; before a session commits a delivered prefix, the
 * parties exchange this 16-bit checksum of it in an audit pilot (the
 * epoch field carries the checksum, the rung field the marker below)
 * and discard the segment on any disagreement.
 */
std::uint16_t segmentChecksum(const BitVec &bits);

/** Rung-field marker distinguishing audit pilots from epoch pilots
 *  (the ladder is asserted to stay below this value). */
constexpr std::uint8_t auditRungMarker = 0xF;

} // namespace gpucc::covert::session

#endif // GPUCC_COVERT_SESSION_PILOT_H

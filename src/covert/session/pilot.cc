#include "covert/session/pilot.h"

#include "covert/link/frame.h"

namespace gpucc::covert::session
{

namespace
{

/** Append @p value LSB-first as @p bits wire bits. */
void
appendField(BitVec &out, std::uint32_t value, unsigned bits)
{
    for (unsigned i = 0; i < bits; ++i)
        out.push_back((value >> i) & 1u);
}

/** Read @p bits LSB-first from @p in at @p at. */
std::uint32_t
readField(const BitVec &in, std::size_t at, unsigned bits)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < bits; ++i) {
        if (in[at + i])
            v |= 1u << i;
    }
    return v;
}

} // namespace

BitVec
pilotSyncPattern()
{
    return {1, 1, 1, 0, 0, 0, 1, 0};
}

BitVec
encodePilot(const Pilot &p)
{
    BitVec out = pilotSyncPattern();
    BitVec body;
    appendField(body, p.epoch, pilotEpochBits);
    appendField(body, p.rung & 0xF, pilotRungBits);
    std::uint8_t crc = link::crc8(body);
    out.insert(out.end(), body.begin(), body.end());
    appendField(out, crc, pilotCrcBits);
    return out;
}

PilotParse
parsePilot(const BitVec &stream)
{
    PilotParse res;
    const BitVec sync = pilotSyncPattern();
    if (stream.size() < pilotWireBits)
        return res;
    for (std::size_t at = 0; at + pilotWireBits <= stream.size(); ++at) {
        bool hit = true;
        for (unsigned i = 0; i < pilotSyncBits; ++i) {
            if (stream[at + i] != sync[i]) {
                hit = false;
                break;
            }
        }
        if (!hit)
            continue;
        std::size_t bodyAt = at + pilotSyncBits;
        BitVec body(stream.begin() + bodyAt,
                    stream.begin() + bodyAt + pilotEpochBits +
                        pilotRungBits);
        auto crc = static_cast<std::uint8_t>(readField(
            stream, bodyAt + pilotEpochBits + pilotRungBits,
            pilotCrcBits));
        if (link::crc8(body) != crc)
            continue; // CRC reject: resume the scan one bit on
        res.valid = true;
        res.pilot.epoch = static_cast<std::uint16_t>(
            readField(stream, bodyAt, pilotEpochBits));
        res.pilot.rung = static_cast<std::uint8_t>(readField(
            stream, bodyAt + pilotEpochBits, pilotRungBits));
        return res;
    }
    return res;
}

std::uint16_t
segmentChecksum(const BitVec &bits)
{
    // CRC-16/CCITT, bit at a time (segments are short; simplicity
    // beats a table here).
    std::uint16_t crc = 0xFFFF;
    for (std::uint8_t b : bits) {
        bool top = (((crc >> 15) & 1u) != 0) != (b != 0);
        crc = static_cast<std::uint16_t>(crc << 1);
        if (top)
            crc ^= 0x1021;
    }
    return crc;
}

bool
staleEpoch(std::uint16_t got, std::uint16_t expect)
{
    // Signed distance under mod-2^16 arithmetic: got strictly behind
    // expect (distance in [1, 2^15)) is a replay; equal or ahead is
    // current.
    auto delta = static_cast<std::uint16_t>(expect - got);
    return delta != 0 && delta < 0x8000;
}

} // namespace gpucc::covert::session

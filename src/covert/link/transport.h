/**
 * @file
 * The physical layer under the reliable link: one simultaneous
 * bidirectional bit exchange per call.
 *
 * DuplexLinkTransport adapts the Section 7 duplex L1 channel; the ARQ
 * layer sends its DATA frame forward while the receiver's ACK frame
 * travels the reverse direction of the same exchange. LossyTransport is
 * a channel *model* — deterministic bit flips, truncation, duplication
 * and outright drops — for exercising the link-layer state machine (and
 * fuzzing it) without simulating a GPU.
 */

#ifndef GPUCC_COVERT_LINK_TRANSPORT_H
#define GPUCC_COVERT_LINK_TRANSPORT_H

#include <limits>
#include <string>

#include "common/bitstream.h"
#include "common/rng.h"
#include "common/types.h"
#include "covert/counters.h"

namespace gpucc::covert
{
class DuplexSyncChannel;
} // namespace gpucc::covert

namespace gpucc::sim::trace
{
class Shard;
} // namespace gpucc::sim::trace

namespace gpucc::covert::link
{

/** What one physical exchange delivered. */
struct TransportResult
{
    BitVec atB; //!< forward bits as B received them
    BitVec atA; //!< reverse bits as A received them
    Tick ticks = 0;       //!< device-time cost of the exchange
    double seconds = 0.0; //!< same, in seconds
    RobustnessCounters robustness; //!< physical-layer recovery events
    /**
     * Smallest decode-metric distance to the decision threshold over
     * every symbol of the exchange (cycles; negative when a symbol sat
     * on the wrong side). Infinity when the transport has no decode
     * metric (e.g. the lossy model). The session layer's drift tracker
     * watches this to decide when to recalibrate.
     */
    double worstMargin = std::numeric_limits<double>::infinity();
};

/** A full-duplex unreliable bit pipe. */
class LinkTransport
{
  public:
    virtual ~LinkTransport() = default;

    /** Send @p aToB forward and @p bToA in reverse, simultaneously. */
    virtual TransportResult exchange(const BitVec &aToB,
                                     const BitVec &bToA) = 0;

    /**
     * Rate-control hook: stretch the symbol period by @p scale >= 1
     * (slower but more noise-tolerant). Default: no-op.
     */
    virtual void setPeriodScale(double scale) { (void)scale; }

    /** Current symbol-period stretch. */
    virtual double periodScale() const { return 1.0; }

    /** Transport name for tables. */
    virtual std::string name() const = 0;

    /**
     * Trace shard of the device carrying this transport (null when the
     * transport has no device or tracing is off). The ARQ layer emits
     * its frame/ack/retry events here so they line up with the kernel
     * spans on the same timeline.
     */
    virtual sim::trace::Shard *traceShard() const { return nullptr; }

    /** Current device tick under the transport (0 when deviceless). */
    virtual Tick nowTick() const { return 0; }
};

/** The real thing: frames ride the duplex L1 constant-cache channel. */
class DuplexLinkTransport : public LinkTransport
{
  public:
    /** @param ch Underlying channel (must outlive the transport). */
    explicit DuplexLinkTransport(DuplexSyncChannel &ch) : chan(ch) {}

    TransportResult exchange(const BitVec &aToB,
                             const BitVec &bToA) override;
    void setPeriodScale(double scale) override;
    double periodScale() const override;
    std::string name() const override { return "duplex-l1-const"; }
    sim::trace::Shard *traceShard() const override;
    Tick nowTick() const override;

  private:
    DuplexSyncChannel &chan;
};

/** Corruption model of the LossyTransport. */
struct LossyConfig
{
    double flipProb = 0.0;      //!< per-bit flip probability
    double truncateProb = 0.0;  //!< per-direction: lose a random tail
    double duplicateProb = 0.0; //!< per-direction: re-deliver a chunk
    double dropProb = 0.0;      //!< per-direction: deliver nothing
    /**
     * Model rate control: an exchange at periodScale s suffers
     * flipProb/s (wider symbols integrate more samples). Truncation,
     * duplication and drops are timing faults and stay unscaled.
     */
    bool scaleFlipsWithPeriod = true;
    double secondsPerBit = 1e-5; //!< synthetic timing for goodput math
};

/** Deterministic in-memory channel model (tests and fuzzing). */
class LossyTransport : public LinkTransport
{
  public:
    explicit LossyTransport(LossyConfig cfg = {}, std::uint64_t seed = 1)
        : cfg(cfg), rng(seed)
    {
    }

    TransportResult exchange(const BitVec &aToB,
                             const BitVec &bToA) override;
    void setPeriodScale(double s) override { scale = s < 1.0 ? 1.0 : s; }
    double periodScale() const override { return scale; }
    std::string name() const override { return "lossy-model"; }

    /** Exchanges performed so far. */
    unsigned exchanges() const { return count; }

  private:
    BitVec corrupt(const BitVec &bits);

    LossyConfig cfg;
    Rng rng;
    double scale = 1.0;
    unsigned count = 0;
};

} // namespace gpucc::covert::link

#endif // GPUCC_COVERT_LINK_TRANSPORT_H

#include "covert/link/frame.h"

#include <algorithm>

#include "covert/coding/error_code.h"

namespace gpucc::covert::link
{

BitVec
preamblePattern()
{
    return {1, 0, 1, 0, 1, 0, 1, 1};
}

std::uint8_t
crc8(const BitVec &bits)
{
    std::uint8_t crc = 0;
    for (std::uint8_t b : bits) {
        std::uint8_t fb = static_cast<std::uint8_t>(((crc >> 7) & 1) ^
                                                    (b & 1));
        crc = static_cast<std::uint8_t>(crc << 1);
        if (fb)
            crc ^= 0x07;
    }
    return crc;
}

namespace
{

void
appendField(BitVec &out, unsigned value, unsigned width)
{
    for (unsigned i = width; i-- > 0;)
        out.push_back((value >> i) & 1);
}

unsigned
readField(const BitVec &bits, std::size_t at, unsigned width)
{
    unsigned v = 0;
    for (unsigned i = 0; i < width; ++i)
        v = (v << 1) | (bits[at + i] & 1);
    return v;
}

/** Body bits (everything the CRC covers, plus the CRC itself). */
std::size_t
bodyBits(std::size_t payloadBits)
{
    return typeBits + seqBits + lenBits + payloadBits + crcBits;
}

} // namespace

BitVec
encodeFrame(const Frame &f, std::size_t payloadBits, const ErrorCode *fec)
{
    BitVec body;
    body.reserve(bodyBits(payloadBits));
    appendField(body, static_cast<unsigned>(f.type), typeBits);
    appendField(body, f.seq % seqSpace, seqBits);
    std::size_t len = std::min(f.payload.size(), payloadBits);
    appendField(body, static_cast<unsigned>(len), lenBits);
    for (std::size_t i = 0; i < payloadBits; ++i)
        body.push_back(i < len ? (f.payload[i] & 1) : 0);
    appendField(body, crc8(body), crcBits);

    if (fec)
        body = fec->encode(body);

    BitVec wire = preamblePattern();
    wire.insert(wire.end(), body.begin(), body.end());
    return wire;
}

std::size_t
frameWireBits(std::size_t payloadBits, const ErrorCode *fec)
{
    std::size_t body = bodyBits(payloadBits);
    if (fec)
        body = fec->encode(BitVec(body, 0)).size();
    return preambleBits + body;
}

FrameParse
parseFrames(const BitVec &stream, std::size_t payloadBits,
            const ErrorCode *fec)
{
    FrameParse out;
    const BitVec pre = preamblePattern();
    const std::size_t plain = bodyBits(payloadBits);
    const std::size_t coded = frameWireBits(payloadBits, fec) - preambleBits;
    if (stream.size() < preambleBits + coded)
        return out;

    std::size_t i = 0;
    while (i + preambleBits + coded <= stream.size()) {
        bool sync = true;
        for (std::size_t j = 0; j < preambleBits; ++j) {
            if ((stream[i + j] & 1) != pre[j]) {
                sync = false;
                break;
            }
        }
        if (!sync) {
            ++i;
            continue;
        }

        BitVec body(stream.begin() + i + preambleBits,
                    stream.begin() + i + preambleBits + coded);
        if (fec)
            body = fec->decode(body, plain);
        // A decoder returning a short vector (defensive) is a reject.
        if (body.size() < plain) {
            ++out.crcFailures;
            ++i;
            continue;
        }

        BitVec covered(body.begin(), body.begin() + (plain - crcBits));
        unsigned crc = readField(body, plain - crcBits, crcBits);
        if (crc8(covered) != crc) {
            ++out.crcFailures;
            ++i;
            continue;
        }

        Frame f;
        f.type = static_cast<FrameType>(readField(body, 0, typeBits));
        f.seq = readField(body, typeBits, seqBits);
        std::size_t len = readField(body, typeBits + seqBits, lenBits);
        len = std::min(len, payloadBits);
        std::size_t at = typeBits + seqBits + lenBits;
        f.payload.assign(body.begin() + at, body.begin() + at + len);
        out.frames.push_back(std::move(f));
        i += preambleBits + coded;
    }
    return out;
}

} // namespace gpucc::covert::link

/**
 * @file
 * Reliable ARQ link over an unreliable covert transport.
 *
 * The raw channels tolerate noise statistically (thresholds, FEC); this
 * layer makes delivery *reliable*: payload is chunked into CRC-framed
 * segments (frame.h), sent with selective-repeat ARQ (window 1 =
 * stop-and-wait), acknowledged on the reverse direction of the same
 * duplex exchange, and retransmitted under exponential backoff until
 * delivered — or until the retry budget runs out, in which case the
 * link *proceeds anyway* and reports the transfer incomplete, honoring
 * the PROTOCOL.md no-deadlock invariant end to end.
 *
 * Because each exchange is simultaneous, an ACK always describes the
 * receiver's state *before* the round it travels in; the sender's
 * picture lags one round, which the eligibility schedule accounts for.
 *
 * Adaptive rate control closes the loop with the physical layer: frame
 * errors widen the symbol period (LinkTransport::setPeriodScale), clean
 * rounds narrow it back — the link slows down through an interference
 * burst instead of burning its retry budget at full speed.
 */

#ifndef GPUCC_COVERT_LINK_RELIABLE_LINK_H
#define GPUCC_COVERT_LINK_RELIABLE_LINK_H

#include <cstdint>

#include "common/bitstream.h"
#include "covert/counters.h"
#include "covert/link/frame.h"
#include "covert/link/transport.h"

namespace gpucc::metrics
{
class Registry;
} // namespace gpucc::metrics

namespace gpucc::covert::link
{

/** Link-layer tuning knobs. */
struct LinkConfig
{
    std::size_t payloadBits = 32; //!< payload field per frame
    unsigned window = 4;          //!< <= 8; 1 = stop-and-wait
    unsigned maxRetries = 12;     //!< per-frame resends before giving up
    unsigned maxRounds = 600;     //!< hard bound on exchanges
    const ErrorCode *innerFec = nullptr; //!< optional body FEC (non-owning)
    /** Optional metrics sink: send() accumulates link.* counters here
     *  (null = no metrics; non-owning). */
    metrics::Registry *registry = nullptr;

    // Adaptive rate control.
    bool adaptiveRate = true;
    double rateBackoff = 1.4;  //!< period multiplier on an errored round
    double rateRecovery = 0.8; //!< multiplier after a clean streak
    unsigned cleanRoundsToNarrow = 4;
    double maxPeriodScale = 8.0;
};

/** Outcome of one reliable transfer. */
struct LinkResult
{
    BitVec payload;        //!< what the receiver assembled
    bool complete = false; //!< every frame delivered and acknowledged
    unsigned rounds = 0;          //!< physical exchanges performed
    unsigned dataFramesSent = 0;  //!< DATA frames (incl. retransmits)
    unsigned retransmissions = 0; //!< DATA frames sent more than once
    unsigned ackFramesSent = 0;
    unsigned frameErrors = 0;     //!< CRC rejects seen at either end
    unsigned framesGivenUp = 0;   //!< frames whose retry budget drained
    double seconds = 0.0;         //!< total device time
    double goodputBps = 0.0;      //!< payload bits / seconds
    double rawBandwidthBps = 0.0; //!< wire bits pushed / seconds
    double frameErrorRate = 0.0;  //!< rejects / frames sent (both dirs)
    double finalPeriodScale = 1.0;
    RobustnessCounters phy; //!< physical-layer recovery, aggregated
    /** Worst decode margin seen across all rounds (see
     *  TransportResult::worstMargin; infinity when unavailable). */
    double worstMargin = std::numeric_limits<double>::infinity();
};

/** Selective-repeat ARQ endpoint pair driving one transport. */
class ReliableLink
{
  public:
    /** @param t Physical layer (must outlive the link). */
    explicit ReliableLink(LinkTransport &t, LinkConfig cfg = {});

    /** Deliver @p payload from A to B. Never deadlocks: bounded by
     *  config().maxRounds and the per-frame retry budget. */
    LinkResult send(const BitVec &payload);

    const LinkConfig &config() const { return cfg; }

  private:
    LinkTransport &transport;
    LinkConfig cfg;
};

} // namespace gpucc::covert::link

#endif // GPUCC_COVERT_LINK_RELIABLE_LINK_H

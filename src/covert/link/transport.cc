#include "covert/link/transport.h"

#include <algorithm>

#include "covert/sync/duplex_channel.h"

namespace gpucc::covert::link
{

TransportResult
DuplexLinkTransport::exchange(const BitVec &aToB, const BitVec &bToA)
{
    DuplexResult r = chan.exchange(aToB, bToA);
    TransportResult out;
    out.atB = r.aToB.received;
    out.atA = r.bToA.received;
    out.ticks = std::max(r.aToB.windowTicks, r.bToA.windowTicks);
    out.seconds = std::max(r.aToB.seconds, r.bToA.seconds);
    out.robustness = r.aToB.robustness;
    out.robustness.add(r.bToA.robustness);
    auto margin = [](const ChannelResult &c, double &worst) {
        if (c.zeroMetric.count() > 0)
            worst = std::min(worst, c.threshold - c.zeroMetric.max());
        if (c.oneMetric.count() > 0)
            worst = std::min(worst, c.oneMetric.min() - c.threshold);
    };
    margin(r.aToB, out.worstMargin);
    margin(r.bToA, out.worstMargin);
    return out;
}

void
DuplexLinkTransport::setPeriodScale(double scale)
{
    chan.setPeriodScale(scale);
}

double
DuplexLinkTransport::periodScale() const
{
    return chan.periodScale();
}

sim::trace::Shard *
DuplexLinkTransport::traceShard() const
{
    return chan.harness().device().traceShard();
}

Tick
DuplexLinkTransport::nowTick() const
{
    return chan.harness().device().now();
}

BitVec
LossyTransport::corrupt(const BitVec &bits)
{
    if (cfg.dropProb > 0.0 && rng.bernoulli(cfg.dropProb))
        return {};

    BitVec out = bits;
    double flip = cfg.flipProb;
    if (cfg.scaleFlipsWithPeriod && scale > 1.0)
        flip /= scale;
    if (flip > 0.0) {
        for (auto &b : out) {
            if (rng.bernoulli(flip))
                b ^= 1;
        }
    }
    if (!out.empty() && cfg.duplicateProb > 0.0 &&
        rng.bernoulli(cfg.duplicateProb)) {
        // Re-deliver a chunk in place (a repeated symbol run).
        std::size_t at = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(out.size() - 1)));
        std::size_t n = std::min<std::size_t>(
            static_cast<std::size_t>(rng.uniformInt(1, 16)),
            out.size() - at);
        BitVec chunk(out.begin() + at, out.begin() + at + n);
        out.insert(out.begin() + at, chunk.begin(), chunk.end());
    }
    if (!out.empty() && cfg.truncateProb > 0.0 &&
        rng.bernoulli(cfg.truncateProb)) {
        std::size_t keep = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(out.size())));
        out.resize(keep);
    }
    return out;
}

TransportResult
LossyTransport::exchange(const BitVec &aToB, const BitVec &bToA)
{
    ++count;
    TransportResult out;
    out.atB = corrupt(aToB);
    out.atA = corrupt(bToA);
    double bits = static_cast<double>(std::max(aToB.size(), bToA.size()));
    out.seconds = bits * cfg.secondsPerBit * scale;
    out.ticks = static_cast<Tick>(bits) * 1000;
    return out;
}

} // namespace gpucc::covert::link

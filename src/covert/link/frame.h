/**
 * @file
 * Link-layer framing for the covert channels.
 *
 * The physical layers (Sections 4-7) move raw bits and lose or flip
 * some of them under contention. The link layer packages payload into
 * self-delimiting frames the receiver can validate:
 *
 *   | preamble 8 | type 2 | seq 4 | len 8 | payload P | crc 8 |
 *
 * The preamble (10101011) lets a receiver resynchronize after bit
 * slips; type distinguishes DATA from the ACK/NACK control frames the
 * ARQ layer returns on the duplex reverse direction; seq numbers frames
 * modulo 16 (window <= 8 keeps the mapping unambiguous); len is the
 * count of meaningful payload bits (the payload field itself is a fixed
 * P bits per link, so frames never vary in size); CRC-8 (poly 0x07)
 * covers type through payload.
 *
 * An optional inner error-correcting code protects everything after the
 * preamble, trading rate for fewer retransmissions (the ARQ+FEC mode of
 * bench_sec8_arq_link).
 *
 * Frame decoding is total: any bit stream — truncated, bit-flipped,
 * duplicated, or pure garbage — yields a (possibly empty) list of
 * CRC-valid frames and a count of rejected candidates.
 */

#ifndef GPUCC_COVERT_LINK_FRAME_H
#define GPUCC_COVERT_LINK_FRAME_H

#include <cstdint>
#include <vector>

#include "common/bitstream.h"

namespace gpucc::covert
{
class ErrorCode;
} // namespace gpucc::covert

namespace gpucc::covert::link
{

/** Frame types (2-bit field). */
enum class FrameType : unsigned
{
    Data = 0, //!< carries payload chunk `seq`
    Ack = 1,  //!< seq = next needed; payload = out-of-order bitmap
    Nack = 2, //!< seq = a frame known corrupt (advisory)
    Idle = 3, //!< keepalive (sender waiting out a backoff)
};

constexpr unsigned preambleBits = 8;
constexpr unsigned typeBits = 2;
constexpr unsigned seqBits = 4;
constexpr unsigned seqSpace = 1u << seqBits;
constexpr unsigned lenBits = 8;
constexpr unsigned crcBits = 8;

/** The 10101011 sync pattern. */
BitVec preamblePattern();

/** Bit-serial CRC-8, polynomial x^8+x^2+x+1 (0x07), init 0. */
std::uint8_t crc8(const BitVec &bits);

/** One link-layer frame (payload length varies 0..payloadBits). */
struct Frame
{
    FrameType type = FrameType::Idle;
    unsigned seq = 0; //!< modulo seqSpace
    BitVec payload;   //!< meaningful bits only (encode pads to P)
};

/**
 * Serialize @p f into wire bits with a fixed payload field of
 * @p payloadBits (payload is truncated/zero-padded to fit). When
 * @p fec is non-null everything after the preamble is passed through
 * it.
 */
BitVec encodeFrame(const Frame &f, std::size_t payloadBits,
                   const ErrorCode *fec = nullptr);

/** Wire size of any frame of a link with @p payloadBits / @p fec. */
std::size_t frameWireBits(std::size_t payloadBits,
                          const ErrorCode *fec = nullptr);

/** Outcome of scanning a received bit stream. */
struct FrameParse
{
    std::vector<Frame> frames;   //!< CRC-valid frames, in stream order
    std::size_t crcFailures = 0; //!< preamble hits that failed the CRC
};

/**
 * Scan @p stream for frames of a link with @p payloadBits / @p fec.
 * Total: never fails, never reads out of bounds; invalid candidates
 * advance the scan by one bit (resynchronization).
 */
FrameParse parseFrames(const BitVec &stream, std::size_t payloadBits,
                       const ErrorCode *fec = nullptr);

} // namespace gpucc::covert::link

#endif // GPUCC_COVERT_LINK_FRAME_H

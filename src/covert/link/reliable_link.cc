#include "covert/link/reliable_link.h"

#include <algorithm>

#include "common/log.h"
#include "common/metrics/metrics.h"
#include "covert/coding/error_code.h"
#include "sim/trace/trace.h"

namespace gpucc::covert::link
{

namespace
{

/**
 * Map a wire sequence number to an absolute frame index within the
 * candidate range [lo, hi]. Window <= seqSpace/2 keeps at most one
 * match. @return -1 when nothing in range carries @p seq.
 */
long
absFromSeq(unsigned seq, std::size_t lo, std::size_t hi)
{
    for (std::size_t a = lo; a <= hi; ++a) {
        if (a % seqSpace == seq)
            return static_cast<long>(a);
    }
    return -1;
}

} // namespace

ReliableLink::ReliableLink(LinkTransport &t, LinkConfig cfg_)
    : transport(t), cfg(cfg_)
{
    GPUCC_ASSERT(cfg.payloadBits > 0 && cfg.payloadBits <= 255,
                 "frame payload must fit the 8-bit len field");
    GPUCC_ASSERT(cfg.window >= 1 && cfg.window <= seqSpace / 2,
                 "ARQ window must be in [1, %u]", seqSpace / 2);
}

LinkResult
ReliableLink::send(const BitVec &payload)
{
    LinkResult res;
    res.finalPeriodScale = transport.periodScale();
    if (payload.empty()) {
        res.complete = true;
        return res;
    }

    // Chunk the payload; every frame is payloadBits on the wire, the
    // len field marks how much of the last one is real.
    const std::size_t P = cfg.payloadBits;
    const std::size_t nFrames = (payload.size() + P - 1) / P;
    std::vector<BitVec> chunks(nFrames);
    for (std::size_t i = 0; i < nFrames; ++i) {
        std::size_t at = i * P;
        std::size_t n = std::min(P, payload.size() - at);
        chunks[i].assign(payload.begin() + at, payload.begin() + at + n);
    }

    // Sender A state.
    struct TxState
    {
        bool acked = false;
        unsigned sends = 0;
        unsigned eligibleRound = 0;
    };
    std::vector<TxState> tx(nFrames);
    std::size_t base = 0; //!< first unacked frame

    // Receiver B state (ground truth of delivery; A learns via ACKs).
    std::vector<bool> got(nFrames, false);
    std::vector<BitVec> rxChunks(nFrames);
    std::size_t nextNeeded = 0;

    double scale = transport.periodScale();
    unsigned cleanStreak = 0;
    bool aborted = false;

    for (unsigned round = 0; base < nFrames && round < cfg.maxRounds;
         ++round) {
        // --- A picks what to transmit this round. ---
        Frame down;
        long sending = -1;
        std::size_t hi = std::min(base + cfg.window,
                                  static_cast<std::size_t>(nFrames));
        for (std::size_t i = base; i < hi; ++i) {
            if (!tx[i].acked && tx[i].eligibleRound <= round) {
                sending = static_cast<long>(i);
                break;
            }
        }
        if (sending >= 0) {
            auto &s = tx[sending];
            if (s.sends > cfg.maxRetries) {
                // Retry budget drained: proceed anyway — give up on
                // the transfer rather than hammer a dead channel.
                aborted = true;
                break;
            }
            ++s.sends;
            // The ACK for this send can arrive one round later at the
            // earliest; back off exponentially past that.
            s.eligibleRound =
                round + (1u << std::min(s.sends, 6u));
            down.type = FrameType::Data;
            down.seq = static_cast<unsigned>(sending) % seqSpace;
            down.payload = chunks[sending];
            ++res.dataFramesSent;
            if (s.sends > 1)
                ++res.retransmissions;
        } else {
            down.type = FrameType::Idle;
        }

        // --- B's ACK describes its state before this round. ---
        Frame up;
        up.type = FrameType::Ack;
        up.seq = static_cast<unsigned>(nextNeeded) % seqSpace;
        up.payload.assign(std::min<std::size_t>(P, cfg.window), 0);
        for (std::size_t i = 0; i < up.payload.size(); ++i) {
            std::size_t a = nextNeeded + 1 + i;
            if (a < nFrames && got[a])
                up.payload[i] = 1;
        }
        ++res.ackFramesSent;

        // --- One simultaneous physical exchange. ---
        Tick exchangeStart = transport.nowTick();
        TransportResult ex = transport.exchange(
            encodeFrame(down, P, cfg.innerFec),
            encodeFrame(up, P, cfg.innerFec));
        ++res.rounds;
        res.seconds += ex.seconds;
        res.phy.add(ex.robustness);
        res.worstMargin = std::min(res.worstMargin, ex.worstMargin);

        auto *tr = transport.traceShard();
        if (tr != nullptr && tr->wants(sim::trace::Cat::Link)) {
            Tick exchangeEnd = transport.nowTick();
            tr->nameRow(6000, "link rounds");
            tr->nameRow(6001, "link events");
            std::string label =
                down.type == FrameType::Data
                    ? strfmt("data seq=%u", down.seq)
                    : std::string("idle");
            tr->span(sim::trace::Cat::Link, 6000, std::move(label),
                     exchangeStart, exchangeEnd, "round", round);
            if (down.type == FrameType::Data &&
                tx[sending].sends > 1) {
                tr->instant(sim::trace::Cat::Link, 6001, "retry",
                            exchangeStart, "seq", down.seq);
            }
        }

        // --- B parses the forward stream. ---
        FrameParse atB = parseFrames(ex.atB, P, cfg.innerFec);
        res.frameErrors += static_cast<unsigned>(atB.crcFailures);
        if (tr != nullptr && tr->wants(sim::trace::Cat::Link) &&
            atB.crcFailures > 0) {
            tr->instant(sim::trace::Cat::Link, 6001, "crc-reject fwd",
                        transport.nowTick(), "count",
                        static_cast<std::uint64_t>(atB.crcFailures));
        }
        for (const Frame &f : atB.frames) {
            if (f.type != FrameType::Data)
                continue;
            long a = absFromSeq(f.seq, nextNeeded,
                                std::min(nextNeeded + cfg.window - 1,
                                         nFrames - 1));
            if (a < 0 || got[a])
                continue; // stale duplicate or out of window
            got[a] = true;
            rxChunks[a] = f.payload;
            while (nextNeeded < nFrames && got[nextNeeded])
                ++nextNeeded;
        }

        // --- A parses the reverse stream. ---
        FrameParse atA = parseFrames(ex.atA, P, cfg.innerFec);
        res.frameErrors += static_cast<unsigned>(atA.crcFailures);
        if (tr != nullptr && tr->wants(sim::trace::Cat::Link) &&
            atA.crcFailures > 0) {
            tr->instant(sim::trace::Cat::Link, 6001, "crc-reject rev",
                        transport.nowTick(), "count",
                        static_cast<std::uint64_t>(atA.crcFailures));
        }
        for (const Frame &f : atA.frames) {
            if (f.type != FrameType::Ack)
                continue;
            long a = absFromSeq(f.seq, base,
                                std::min(base + cfg.window, nFrames));
            if (a < 0)
                continue; // stale beyond ambiguity range
            for (std::size_t i = base; i < static_cast<std::size_t>(a);
                 ++i)
                tx[i].acked = true;
            for (std::size_t i = 0; i < f.payload.size(); ++i) {
                std::size_t sel = static_cast<std::size_t>(a) + 1 + i;
                if (f.payload[i] && sel < nFrames)
                    tx[sel].acked = true;
            }
            while (base < nFrames && tx[base].acked)
                ++base;
        }

        // --- Rate control: errors stretch the period, clean rounds
        // win it back. A lost frame parses as an empty frame list. ---
        bool errored = atB.crcFailures > 0 || atA.crcFailures > 0 ||
                       atB.frames.empty() || atA.frames.empty();
        if (atB.frames.empty())
            ++res.frameErrors;
        if (atA.frames.empty())
            ++res.frameErrors;
        if (cfg.adaptiveRate) {
            if (errored) {
                cleanStreak = 0;
                scale = std::min(scale * cfg.rateBackoff,
                                 cfg.maxPeriodScale);
                transport.setPeriodScale(scale);
            } else if (++cleanStreak >= cfg.cleanRoundsToNarrow) {
                cleanStreak = 0;
                scale = std::max(1.0, scale * cfg.rateRecovery);
                transport.setPeriodScale(scale);
            }
        }
    }

    res.complete = base >= nFrames && !aborted;
    res.framesGivenUp =
        static_cast<unsigned>(nFrames - std::min(base, nFrames));
    res.finalPeriodScale = transport.periodScale();

    // B delivers the in-order prefix (selective-repeat reassembly).
    for (std::size_t i = 0; i < nextNeeded; ++i)
        res.payload.insert(res.payload.end(), rxChunks[i].begin(),
                           rxChunks[i].end());

    std::size_t wire = frameWireBits(P, cfg.innerFec);
    if (res.seconds > 0.0) {
        res.goodputBps =
            static_cast<double>(res.payload.size()) / res.seconds;
        res.rawBandwidthBps =
            static_cast<double>(res.rounds) * 2.0 *
            static_cast<double>(wire) / res.seconds;
    }
    unsigned framesOnWire = res.dataFramesSent + res.ackFramesSent +
                            (res.rounds - res.dataFramesSent);
    if (framesOnWire > 0)
        res.frameErrorRate = static_cast<double>(res.frameErrors) /
                             static_cast<double>(framesOnWire);

    if (cfg.registry != nullptr) {
        auto &reg = *cfg.registry;
        reg.counter("link.rounds").inc(res.rounds);
        reg.counter("link.dataFrames").inc(res.dataFramesSent);
        reg.counter("link.retransmissions").inc(res.retransmissions);
        reg.counter("link.ackFrames").inc(res.ackFramesSent);
        reg.counter("link.frameErrors").inc(res.frameErrors);
        reg.counter("link.framesGivenUp").inc(res.framesGivenUp);
        reg.histogram("link.periodScale").add(res.finalPeriodScale);
    }
    return res;
}

} // namespace gpucc::covert::link

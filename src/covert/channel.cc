#include "covert/channel.h"

#include "common/log.h"
#include "obs/profiler.h"

namespace gpucc::covert
{

TwoPartyHarness::TwoPartyHarness(const gpu::ArchParams &arch,
                                 std::uint64_t seed)
{
    dev = std::make_unique<gpu::Device>(arch);
    trojan = std::make_unique<gpu::HostContext>(*dev, seed * 2654435761ULL +
                                                          101);
    spy = std::make_unique<gpu::HostContext>(*dev, seed * 2654435761ULL +
                                                       202);
    tStream = &dev->createStream();
    sStream = &dev->createStream();
}

void
TwoPartyHarness::setJitterUs(double us)
{
    if (us >= 0.0) {
        trojan->setJitterUs(us);
        spy->setJitterUs(us);
    }
}

HarnessCheckpoint
TwoPartyHarness::checkpoint() const
{
    HarnessCheckpoint ck;
    ck.device = dev->snapshot();
    ck.trojan = trojan->captureState();
    ck.spy = spy->captureState();
    return ck;
}

void
TwoPartyHarness::restore(const HarnessCheckpoint &ck)
{
    dev = gpu::Device::fork(ck.device);
    GPUCC_ASSERT(dev->numStreams() >= 2,
                 "harness checkpoint without trojan+spy streams");
    // Seeds are irrelevant: restoreState overwrites the RNG position.
    trojan = std::make_unique<gpu::HostContext>(*dev, 1);
    trojan->restoreState(ck.trojan);
    spy = std::make_unique<gpu::HostContext>(*dev, 2);
    spy->restoreState(ck.spy);
    tStream = &dev->stream(0);
    sStream = &dev->stream(1);
}

LaunchPerBitChannel::LaunchPerBitChannel(const gpu::ArchParams &arch,
                                         const LaunchPerBitConfig &cfg_,
                                         std::string name)
    : archParams(arch), cfg(cfg_), channelName(std::move(name))
{
    parties = std::make_unique<TwoPartyHarness>(archParams, cfg.seed);
    parties->setJitterUs(cfg.jitterUs);
    parties->device().setMitigations(cfg.mitigations);
}

LaunchPerBitChannel::~LaunchPerBitChannel() = default;

double
LaunchPerBitChannel::runBit(bool bit)
{
    auto &tHost = parties->trojanHost();
    auto &sHost = parties->spyHost();
    auto &trojan = tHost.launch(parties->trojanStream(),
                                makeTrojanKernel(bit));
    // Launch-timing overlap control (Section 4.2): the spy lags the
    // trojan so the trojan's contention window covers the probe window.
    if (cfg.trojanLeadUs > 0.0) {
        // Lead measured against the trojan application's clock so the
        // spy's launch trails the trojan's by the full lead regardless
        // of how the two hosts' sync overheads drifted apart.
        sHost.catchUpTo(tHost.now());
        sHost.advanceUs(cfg.trojanLeadUs);
    }
    auto &spy = sHost.launch(parties->spyStream(), makeSpyKernel());
    sHost.sync(spy);
    tHost.sync(trojan);
    return decodeMetric(spy);
}

double
LaunchPerBitChannel::runPreamble()
{
    // Calibration preamble: alternating known bits pick the threshold,
    // exactly how an attacker pair would agree on one in the field.
    Accumulator calZeros, calOnes;
    BitVec preamble = alternatingBits(cfg.calibrationBits);
    for (std::uint8_t b : preamble) {
        double m = runBit(b != 0);
        (b ? calOnes : calZeros).add(m);
    }
    GPUCC_ASSERT(calZeros.count() > 0 && calOnes.count() > 0,
                 "calibration needs both symbols");
    return separationThreshold(calZeros, calOnes);
}

double
LaunchPerBitChannel::calibrate()
{
    obs::PhaseScope ps(cfg.profiler, obs::phase::kCalibrate, [this] {
        return static_cast<std::uint64_t>(parties->device().now());
    });
    if (!isSetup) {
        setup();
        isSetup = true;
    }
    calibratedThreshold = runPreamble();
    return *calibratedThreshold;
}

void
LaunchPerBitChannel::adoptThreshold(double threshold)
{
    if (!isSetup) {
        setup();
        isSetup = true;
    }
    calibratedThreshold = threshold;
}

LaunchPerBitChannel::Checkpoint
LaunchPerBitChannel::checkpoint()
{
    GPUCC_ASSERT(calibratedThreshold.has_value(),
                 "checkpoint() before calibrate()");
    // Quiesce: post-sync cleanup events may still be queued, and the
    // hosts' clocks already lead the device's (sync overhead), so
    // draining the queue never moves them backwards.
    parties->device().runUntilIdle();
    return Checkpoint{parties->checkpoint(), *calibratedThreshold};
}

void
LaunchPerBitChannel::restore(const Checkpoint &ck)
{
    GPUCC_ASSERT(!isSetup, "restore() on a channel that already ran");
    // The fork adopts the checkpoint's clock, so a device-tick delta
    // would bill the skipped boot+calibration as if re-run; restore
    // cost is wall time only (its whole point is costing ~0 cycles).
    obs::PhaseScope ps(cfg.profiler, obs::phase::kFork);
    // Run setup() against this channel's own fresh device first: setup
    // is deterministic allocation, so every buffer lands at the same
    // address it occupies inside the checkpointed device.
    setup();
    isSetup = true;
    Addr constTop = parties->device().constAllocTop();
    Addr globalTop = parties->device().globalAllocTop();
    parties->restore(ck.harness);
    GPUCC_ASSERT(parties->device().constAllocTop() == constTop &&
                     parties->device().globalAllocTop() == globalTop,
                 "%s: setup() allocation diverged from checkpoint",
                 channelName.c_str());
    calibratedThreshold = ck.threshold;
}

ChannelResult
LaunchPerBitChannel::transmit(const BitVec &message)
{
    if (!isSetup) {
        setup();
        isSetup = true;
    }

    ChannelResult res;
    res.channelName = channelName;
    res.sent = message;
    // A calibrated channel (calibrate()/restore()) already agreed on a
    // threshold; uncalibrated transmissions run the preamble inline.
    res.threshold =
        calibratedThreshold ? *calibratedThreshold : runPreamble();

    // Payload transmission.
    Tick windowStart = parties->spyHost().now();
    for (std::size_t i = 0; i < message.size(); ++i) {
        bool b = message[i] != 0;
        double m = runBit(b);
        bool decoded = m > res.threshold;
        res.received.push_back(decoded ? 1 : 0);
        (b ? res.oneMetric : res.zeroMetric).add(m);
        if (cfg.recorder != nullptr) {
            trace::SymbolRecord rec;
            rec.index = i;
            rec.round = static_cast<std::uint32_t>(i);
            rec.tick = parties->spyHost().now();
            rec.metric = m;
            rec.threshold = res.threshold;
            rec.decoded = decoded;
            rec.truth = b;
            cfg.recorder->record(rec);
        }
    }
    Tick windowEnd = parties->spyHost().now();
    if (cfg.recorder != nullptr)
        cfg.recorder->setChannel(channelName);

    res.report = compareBits(res.sent, res.received);
    finalizeResult(res, archParams, windowEnd - windowStart);
    return res;
}

void
finalizeResult(ChannelResult &r, const gpu::ArchParams &arch,
               Tick windowTicks)
{
    r.windowTicks = windowTicks;
    r.seconds = arch.secondsFromTicks(windowTicks);
    r.bandwidthBps = r.seconds > 0.0
                         ? static_cast<double>(r.sent.size()) / r.seconds
                         : 0.0;
}

} // namespace gpucc::covert

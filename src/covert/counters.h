/**
 * @file
 * Robustness counters shared by the synchronized protocols and the
 * link layer.
 *
 * The handshake's bounded waits hide their outcomes inside device-side
 * coroutines; before these counters existed, a test could only infer
 * "the channel struggled" from a raised BER. Every protocol variant now
 * counts its recoveries explicitly so link-layer policies (and tests)
 * can react to *why* a transfer degraded, not just that it did.
 */

#ifndef GPUCC_COVERT_COUNTERS_H
#define GPUCC_COVERT_COUNTERS_H

namespace gpucc::covert
{

/**
 * Recovery-path event counts of one transmission, aggregated over both
 * parties (trojan and spy increment the same instance; the event-driven
 * simulation is single-threaded, so plain fields suffice).
 */
struct RobustnessCounters
{
    /** Bounded waits (waitForSignal) that expired without a signal. */
    unsigned timeouts = 0;

    /** Handshake steps repeated after a timeout (the paper's
     *  deadlock-recovery rule: on timeout, redo the step before the
     *  wait). */
    unsigned retries = 0;

    /** Re-arm confirming passes run after a detected signal (see
     *  handshake.cc: one extra probe pass re-takes set ownership). */
    unsigned rearms = 0;

    /** Merge @p o into this instance (link layer aggregates rounds). */
    void
    add(const RobustnessCounters &o)
    {
        timeouts += o.timeouts;
        retries += o.retries;
        rearms += o.rearms;
    }

    /** @return true when no recovery path was ever taken. */
    bool
    clean() const
    {
        return timeouts == 0 && retries == 0 && rearms == 0;
    }
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_COUNTERS_H

/**
 * @file
 * Common covert-channel framework.
 *
 * Every channel in the paper follows the same outer shape: a trojan
 * application modulates contention on a shared resource, a spy
 * application times its own accesses to that resource, and a threshold
 * separates the "0" and "1" latency populations. This header provides:
 *
 *  - TwoPartyHarness: a device shared by two independent host
 *    applications (trojan and spy), each with its own launch jitter;
 *  - ChannelResult: bits sent/received, error report, and bandwidth
 *    accounting over the transmission window;
 *  - LaunchPerBitChannel: the Section 4/5/6 baseline pattern that
 *    launches one kernel pair per bit and decodes a latency metric,
 *    with an alternating-bit calibration preamble to pick the
 *    threshold (as a real attacker would).
 */

#ifndef GPUCC_COVERT_CHANNEL_H
#define GPUCC_COVERT_CHANNEL_H

#include <memory>
#include <optional>
#include <string>

#include "common/bitstream.h"
#include "common/stats.h"
#include "common/types.h"
#include "covert/counters.h"
#include "covert/trace/flight_recorder.h"
#include "gpu/device.h"
#include "gpu/host.h"
#include "gpu/mitigations.h"

namespace gpucc::obs
{
class Profiler;
} // namespace gpucc::obs

namespace gpucc::covert
{

/** Outcome of transmitting one message through a channel. */
struct ChannelResult
{
    std::string channelName;
    BitVec sent;
    BitVec received;
    BitErrorReport report;     //!< errors/missing vs ground truth
    Tick windowTicks = 0;      //!< transmission wall window (device ticks)
    double seconds = 0.0;      //!< window in seconds on the device clock
    double bandwidthBps = 0.0; //!< sent bits / window
    Accumulator zeroMetric;    //!< decode metric samples for 0 bits
    Accumulator oneMetric;     //!< decode metric samples for 1 bits
    double threshold = 0.0;    //!< decision threshold used
    /** Recovery-path accounting (synchronized protocols only; the
     *  launch-per-bit channels have no waits and leave this zeroed). */
    RobustnessCounters robustness;
};

/**
 * Frozen state of a quiescent two-party harness: the device snapshot
 * plus both host applications' clocks and jitter-RNG positions.
 * Immutable and cheap to copy (the device payload is shared).
 */
struct HarnessCheckpoint
{
    gpu::DeviceSnapshot device;
    gpu::HostContext::State trojan;
    gpu::HostContext::State spy;
};

/** Device plus two independent host applications (trojan and spy). */
class TwoPartyHarness
{
  public:
    /**
     * @param arch Architecture to instantiate.
     * @param seed Base RNG seed; trojan/spy derive distinct streams.
     */
    explicit TwoPartyHarness(const gpu::ArchParams &arch,
                             std::uint64_t seed = 1);

    gpu::Device &device() { return *dev; }
    gpu::HostContext &trojanHost() { return *trojan; }
    gpu::HostContext &spyHost() { return *spy; }
    gpu::Stream &trojanStream() { return *tStream; }
    gpu::Stream &spyStream() { return *sStream; }

    /** Set both applications' launch jitter (us); <0 keeps defaults. */
    void setJitterUs(double us);

    /** Freeze the harness (device must be quiescent — run it dry). */
    HarnessCheckpoint checkpoint() const;

    /**
     * Replace this harness's device with a fork of @p ck and restore
     * both hosts to their checkpointed clocks and RNG positions. The
     * previous device (and any addresses allocated on it) is destroyed;
     * callers re-derive device pointers afterwards.
     */
    void restore(const HarnessCheckpoint &ck);

  private:
    std::unique_ptr<gpu::Device> dev;
    std::unique_ptr<gpu::HostContext> trojan;
    std::unique_ptr<gpu::HostContext> spy;
    gpu::Stream *tStream;
    gpu::Stream *sStream;
};

/** Configuration shared by the launch-per-bit baseline channels. */
struct LaunchPerBitConfig
{
    unsigned iterations = 20;   //!< contention iterations per bit
    unsigned calibrationBits = 8; //!< preamble length (alternating 1010..)
    double jitterUs = -1.0;     //!< launch jitter; <0 = arch default
    /**
     * Deliberate trojan head start per bit (us). The paper's baseline
     * channels "force overlap between the trojan and the spy by timing
     * the launch of the kernel": the trojan is launched early enough
     * that its contention window covers the spy's probing window.
     */
    double trojanLeadUs = 5.0;
    std::uint64_t seed = 1;     //!< harness seed
    /** Section 9 defenses active on the device (ablation studies). */
    gpu::MitigationConfig mitigations;
    /** Optional per-symbol flight recorder (null = no recording). */
    trace::FlightRecorder *recorder = nullptr;
    /** Optional phase profiler (null = no profiling): calibrate() bills
     *  the "calibrate" phase, restore() the "fork_restore" phase. */
    obs::Profiler *profiler = nullptr;
};

/**
 * Base class for the Section 4-6 baseline channels: one trojan kernel
 * and one spy kernel launched per transmitted bit.
 */
class LaunchPerBitChannel
{
  public:
    LaunchPerBitChannel(const gpu::ArchParams &arch,
                        const LaunchPerBitConfig &cfg, std::string name);
    virtual ~LaunchPerBitChannel();

    /**
     * Transmit @p message: runs the calibration preamble, then one
     * kernel pair per bit, and decodes the spy's latency metric. After
     * calibrate() (or restore()), the preamble is skipped and the
     * stored threshold reused.
     */
    ChannelResult transmit(const BitVec &message);

    /**
     * Post-calibration channel state: the harness checkpoint plus the
     * agreed threshold. Forking per sweep cell from one of these skips
     * device boot + setup + the calibration preamble.
     */
    struct Checkpoint
    {
        HarnessCheckpoint harness;
        double threshold = 0.0;
    };

    /**
     * Run setup and the calibration preamble only (the identical
     * kernel-pair sequence transmit() would run) and store the
     * threshold. @return the threshold.
     */
    double calibrate();

    /** Freeze the calibrated channel. Requires calibrate() first. */
    Checkpoint checkpoint();

    /**
     * Adopt @p ck on a freshly constructed channel with the same
     * configuration: setup() runs on this channel's own device first
     * (deterministic allocation reproduces the original addresses),
     * then the device is replaced by a fork of the checkpoint.
     * Afterwards transmit() skips calibration and evolves bit-for-bit
     * like the original channel would have.
     */
    void restore(const Checkpoint &ck);

    /**
     * Install an externally derived decision threshold (e.g. from a
     * blind SynthesizedPlan) instead of running the preamble: setup()
     * runs if it has not yet, then transmit() behaves exactly as after
     * calibrate(), using @p threshold to decode.
     */
    void adoptThreshold(double threshold);

    /** Calibrated threshold, when calibrate()/restore() ran. */
    std::optional<double> threshold() const { return calibratedThreshold; }

    /** Channel name (tables/diagnostics). */
    const std::string &name() const { return channelName; }

    /** Harness accessor (tests inspect device state). */
    TwoPartyHarness &harness() { return *parties; }

  protected:
    /** Build the trojan kernel encoding @p bit. */
    virtual gpu::KernelLaunch makeTrojanKernel(bool bit) = 0;

    /** Build the spy (receiver) kernel. */
    virtual gpu::KernelLaunch makeSpyKernel() = 0;

    /**
     * Extract the decode metric (e.g. average probe latency in cycles)
     * from a completed spy kernel.
     */
    virtual double decodeMetric(const gpu::KernelInstance &spy) = 0;

    /** One-time channel setup (allocate arrays) before any launches. */
    virtual void setup() {}

    const gpu::ArchParams &arch() const { return archParams; }
    const LaunchPerBitConfig &config() const { return cfg; }

    /** Adjust the per-bit iteration count (auto-tuning channels). */
    void setIterations(unsigned n) { cfg.iterations = n; }

  private:
    /** Launch trojan+spy for one bit and return the decode metric. */
    double runBit(bool bit);

    /** Run the alternating-bit preamble; @return the threshold. */
    double runPreamble();

    gpu::ArchParams archParams;
    LaunchPerBitConfig cfg;
    std::string channelName;
    std::unique_ptr<TwoPartyHarness> parties;
    bool isSetup = false;
    std::optional<double> calibratedThreshold;
};

/** Fill bandwidth/seconds fields of @p r from a tick window. */
void finalizeResult(ChannelResult &r, const gpu::ArchParams &arch,
                    Tick windowTicks);

} // namespace gpucc::covert

#endif // GPUCC_COVERT_CHANNEL_H

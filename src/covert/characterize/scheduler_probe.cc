#include "covert/characterize/scheduler_probe.h"

#include <algorithm>
#include <set>

#include "common/log.h"
#include "gpu/host.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

namespace
{

/** Probe kernel: warp 0 of each block records smid and start/stop clock,
 *  padded with compute so blocks measurably overlap. */
gpu::KernelLaunch
probeKernel(const char *name, unsigned blocks, unsigned threads,
            unsigned workIters)
{
    gpu::KernelLaunch k;
    k.name = name;
    k.config.gridBlocks = blocks;
    k.config.threadsPerBlock = threads;
    // The saturating probe maximizes threads per block; compile it lean
    // on registers so the thread limit binds before the register file
    // (matters on Fermi's 32 K-register SMs).
    k.config.regsPerThread = 16;
    k.body = [workIters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        std::uint64_t t0 = co_await ctx.clock();
        for (unsigned i = 0; i < workIters; ++i)
            co_await ctx.op(gpu::OpClass::FAdd);
        std::uint64_t t1 = co_await ctx.clock();
        if (ctx.warpInBlock() == 0) {
            ctx.out(ctx.smid());
            ctx.out(t0);
            ctx.out(t1);
        }
        co_return;
    };
    return k;
}

KernelObservation
collect(const gpu::KernelInstance &inst)
{
    KernelObservation obs;
    unsigned wpb = inst.config().warpsPerBlock();
    for (unsigned b = 0; b < inst.config().gridBlocks; ++b) {
        const auto &out = inst.out(b * wpb);
        GPUCC_ASSERT(out.size() >= 3, "probe block %u produced no output",
                     b);
        obs.blocks.push_back(BlockObservation{
            b, static_cast<unsigned>(out[0]), out[1], out[2]});
    }
    return obs;
}

} // namespace

SchedulerProbe::SchedulerProbe(const gpu::ArchParams &arch_) : arch(arch_) {}

std::pair<KernelObservation, KernelObservation>
SchedulerProbe::observeTwoKernels(unsigned blocks1, unsigned blocks2,
                                  unsigned threads)
{
    gpu::Device dev(arch);
    gpu::HostContext host(dev, 3);
    host.setJitterUs(0.0);
    auto &s1 = dev.createStream();
    auto &s2 = dev.createStream();
    auto &k1 = host.launch(s1, probeKernel("probe1", blocks1, threads, 600));
    auto &k2 = host.launch(s2, probeKernel("probe2", blocks2, threads, 600));
    host.sync(k1);
    host.sync(k2);
    return {collect(k1), collect(k2)};
}

std::vector<unsigned>
SchedulerProbe::observeWarpSchedulers(unsigned warps)
{
    gpu::Device dev(arch);
    gpu::HostContext host(dev, 5);
    host.setJitterUs(0.0);
    gpu::KernelLaunch k;
    k.name = "warp-sched-probe";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = warps * warpSize;
    k.body = [](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        // One op so the warp actually executes before reporting.
        co_await ctx.op(gpu::OpClass::FAdd);
        ctx.out(ctx.schedulerId());
        co_return;
    };
    auto &s = dev.createStream();
    auto &inst = host.launch(s, k);
    host.sync(inst);
    std::vector<unsigned> scheds;
    for (unsigned w = 0; w < warps; ++w)
        scheds.push_back(static_cast<unsigned>(inst.out(w).at(0)));
    return scheds;
}

SchedulerFindings
SchedulerProbe::run()
{
    SchedulerFindings f;

    // Experiment 1: one block per SM from each of two kernels.
    auto [k1, k2] = observeTwoKernels(arch.numSms, arch.numSms, 128);
    std::set<unsigned> sms1;
    f.blockAssignmentRoundRobin = true;
    for (const auto &b : k1.blocks) {
        sms1.insert(b.smId);
        if (b.smId != b.blockId % arch.numSms)
            f.blockAssignmentRoundRobin = false;
    }
    f.observedSms = static_cast<unsigned>(sms1.size());

    // Leftover co-residency: kernel 2 blocks landed on SMs while kernel 1
    // blocks were still running there.
    f.secondKernelUsesLeftover = false;
    for (const auto &b2 : k2.blocks) {
        for (const auto &b1 : k1.blocks) {
            if (b1.smId == b2.smId && b2.startClock < b1.endClock) {
                f.secondKernelUsesLeftover = true;
                break;
            }
        }
    }

    // Experiment 2: saturate the device with kernel 1; kernel 2 queues.
    {
        gpu::Device dev(arch);
        gpu::HostContext host(dev, 9);
        host.setJitterUs(0.0);
        auto &s1 = dev.createStream();
        auto &s2 = dev.createStream();
        auto &big = host.launch(
            s1, probeKernel("big", arch.numSms, arch.limits.maxThreads,
                            600));
        auto &late = host.launch(s2, probeKernel("late", 1, 64, 10));
        host.sync(late);
        host.sync(big);
        f.fullDeviceBlocksSecondKernel =
            late.startTick() >= big.blockRecords().front().endTick;
    }

    // Experiment 3: warp -> scheduler round-robin.
    auto scheds = observeWarpSchedulers(2 * arch.schedulersPerSm);
    f.warpAssignmentRoundRobin = true;
    std::set<unsigned> uniq;
    for (unsigned w = 0; w < scheds.size(); ++w) {
        uniq.insert(scheds[w]);
        if (scheds[w] != w % arch.schedulersPerSm)
            f.warpAssignmentRoundRobin = false;
    }
    f.observedSchedulers = static_cast<unsigned>(uniq.size());
    return f;
}

} // namespace gpucc::covert

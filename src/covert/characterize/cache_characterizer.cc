#include "covert/characterize/cache_characterizer.h"

#include <algorithm>

#include "common/log.h"
#include "covert/synth/blind_probe.h"

namespace gpucc::covert
{

CacheCharacterizer::CacheCharacterizer(const gpu::ArchParams &arch_)
    : arch(arch_)
{
}

double
CacheCharacterizer::measurePoint(CacheLevel level, std::size_t arrayBytes,
                                 std::size_t strideBytes)
{
    // For the L2 sweep the L1 still caches a handful of lines; that is
    // physical reality on the GPU as well and shows up as a slightly
    // lower plateau, not a different staircase.
    (void)level;

    // The measurement goes through the no-oracle facade: ArchParams is
    // only used here to *build* the throwaway device (same host seed as
    // the historical direct construction). The sweep axes above may be
    // framed from known geometry — the paper-figure reproduction needs
    // the right window — but every number on the curve is blind.
    synth::AttackerLab lab(arch, 7);
    synth::BlindCacheProbe probe(lab);
    return probe.measure(arrayBytes, strideBytes);
}

std::vector<CacheLatencyPoint>
CacheCharacterizer::sweep(CacheLevel level, std::size_t fromBytes,
                          std::size_t toBytes, std::size_t stepBytes,
                          std::size_t strideBytes)
{
    GPUCC_ASSERT(stepBytes > 0 && strideBytes > 0, "bad sweep parameters");
    std::vector<CacheLatencyPoint> series;
    for (std::size_t size = fromBytes; size <= toBytes; size += stepBytes) {
        series.push_back(
            CacheLatencyPoint{size, measurePoint(level, size, strideBytes)});
    }
    return series;
}

std::vector<CacheLatencyPoint>
CacheCharacterizer::figure2Sweep()
{
    std::size_t cap = arch.constMem.l1.sizeBytes;
    std::size_t line = arch.constMem.l1.lineBytes;
    // Paper axis: 1800..3000 bytes for the 2 KB Kepler L1; generalize to
    // [0.88*cap, 1.5*cap] so the Fermi 4 KB L1 sweeps its own capacity.
    return sweep(CacheLevel::L1, cap - 4 * line, cap + cap / 2, line, line);
}

std::vector<CacheLatencyPoint>
CacheCharacterizer::figure3Sweep()
{
    std::size_t cap = arch.constMem.l2.sizeBytes;
    std::size_t line = arch.constMem.l2.lineBytes;
    return sweep(CacheLevel::L2, cap - 4 * line, cap + 20 * line, line,
                 line);
}

RecoveredGeometry
CacheCharacterizer::recover(const std::vector<CacheLatencyPoint> &series,
                            std::size_t lineStride)
{
    GPUCC_ASSERT(series.size() >= 4, "series too short to recover geometry");
    RecoveredGeometry g;
    g.plateauCycles = series.front().avgLatencyCycles;
    g.ceilingCycles = series.back().avgLatencyCycles;
    double span = g.ceilingCycles - g.plateauCycles;
    GPUCC_ASSERT(span > 1.0, "no staircase in series (all flat)");

    // A point is still "inside the cache" while its latency stays within
    // 5% of the span above the plateau (the first overflowing set
    // already lifts the average by one step ~ span/numSets).
    double insideThresh = g.plateauCycles + 0.05 * span;
    std::size_t lastInside = series.front().arrayBytes;
    for (const auto &p : series) {
        if (p.avgLatencyCycles <= insideThresh)
            lastInside = std::max(lastInside, p.arrayBytes);
    }
    g.sizeBytes = lastInside;

    // Count upward jumps after the plateau: one per overflowing set.
    double jumpThresh = 0.04 * span;
    std::size_t jumps = 0;
    std::vector<std::size_t> jumpPositions;
    for (std::size_t i = 1; i < series.size(); ++i) {
        double d = series[i].avgLatencyCycles -
                   series[i - 1].avgLatencyCycles;
        if (d > jumpThresh && series[i].arrayBytes > g.sizeBytes) {
            ++jumps;
            jumpPositions.push_back(series[i].arrayBytes);
        }
    }
    g.numSets = jumps;

    // Step width = distance between consecutive jumps = line size.
    if (jumpPositions.size() >= 2) {
        std::vector<std::size_t> gaps;
        for (std::size_t i = 1; i < jumpPositions.size(); ++i)
            gaps.push_back(jumpPositions[i] - jumpPositions[i - 1]);
        std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2,
                         gaps.end());
        g.lineBytes = gaps[gaps.size() / 2];
    } else {
        g.lineBytes = lineStride;
    }
    return g;
}

} // namespace gpucc::covert

/**
 * @file
 * Functional-unit contention characterization (Section 5.1).
 *
 * Launches one kernel with an increasing number of warps, all issuing
 * dependent chains of one operation class, and reports the average
 * per-operation latency observed by warp 0. Reproduces the
 * latency-vs-warp-count curves of Figures 6 (single precision) and 7
 * (double precision): flat until the per-scheduler issue port
 * saturates, then a step each time warp 0's scheduler gains a warp.
 */

#ifndef GPUCC_COVERT_CHARACTERIZE_FU_CHARACTERIZER_H
#define GPUCC_COVERT_CHARACTERIZE_FU_CHARACTERIZER_H

#include <vector>

#include "gpu/arch_params.h"

namespace gpucc::covert
{

namespace synth
{
class AttackerDevice;
} // namespace synth

/** One sample of a latency-vs-warps curve. */
struct FuLatencyPoint
{
    unsigned warps = 0;
    double warp0AvgCycles = 0.0;
};

/** Runs the warp-count sweeps of Figures 6 and 7. */
class FuCharacterizer
{
  public:
    explicit FuCharacterizer(const gpu::ArchParams &arch);

    /** Average per-op latency of warp 0 with @p warps resident warps. */
    double measure(gpu::OpClass op, unsigned warps,
                   unsigned iterations = 128);

    /**
     * The measurement itself, phrased against the no-oracle attacker
     * facade: @p warps warps of dependent @p op chains on @p dev, warp
     * 0's average per-op latency. measure() delegates here (after its
     * ArchParams legality checks); the blind synthesizer calls it
     * directly, so the number on the curve never came from a table.
     */
    static double measureOn(synth::AttackerDevice &dev, gpu::OpClass op,
                            unsigned warps, unsigned iterations = 128);

    /** Full curve for @p op over 1..@p maxWarps warps. */
    std::vector<FuLatencyPoint> curve(gpu::OpClass op,
                                      unsigned maxWarps = 32,
                                      unsigned iterations = 128);

    /**
     * Number of warps at which the curve first rises noticeably above
     * its base latency (the contention onset the channels exploit).
     */
    static unsigned contentionOnset(const std::vector<FuLatencyPoint> &c,
                                    double riseFraction = 0.15);

  private:
    gpu::ArchParams arch;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_CHARACTERIZE_FU_CHARACTERIZER_H

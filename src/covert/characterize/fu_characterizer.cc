#include "covert/characterize/fu_characterizer.h"

#include "common/log.h"
#include "covert/synth/attacker_device.h"
#include "gpu/warp_ctx.h"

namespace gpucc::covert
{

FuCharacterizer::FuCharacterizer(const gpu::ArchParams &arch_) : arch(arch_)
{
}

double
FuCharacterizer::measure(gpu::OpClass op, unsigned warps,
                         unsigned iterations)
{
    GPUCC_ASSERT(warps >= 1 && warps <= arch.limits.maxWarps,
                 "warp count %u out of range", warps);
    if (!arch.supports(op)) {
        GPUCC_FATAL("%s does not execute %s", arch.name.c_str(),
                    gpu::opClassName(op));
    }

    // The measurement itself runs blind: build a throwaway lab around
    // the arch (same host seed as the historical direct construction)
    // and hand measureOn a facade, not the params.
    synth::AttackerLab lab(arch, 11);
    synth::AttackerDevice dev = lab.fresh();
    return measureOn(dev, op, warps, iterations);
}

double
FuCharacterizer::measureOn(synth::AttackerDevice &dev, gpu::OpClass op,
                           unsigned warps, unsigned iterations)
{
    GPUCC_ASSERT(warps >= 1 && iterations >= 1, "empty FU measurement");
    gpu::KernelLaunch k;
    k.name = "fu-sweep";
    k.config.gridBlocks = 1;
    k.config.threadsPerBlock = warps * warpSize;
    k.body = [op, iterations](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        std::uint64_t total = 0;
        for (unsigned i = 0; i < iterations; ++i)
            total += co_await ctx.op(op);
        ctx.out(total);
        co_return;
    };

    const auto &inst = dev.run(std::move(k));
    double total = static_cast<double>(inst.out(0).at(0));
    return total / iterations;
}

std::vector<FuLatencyPoint>
FuCharacterizer::curve(gpu::OpClass op, unsigned maxWarps,
                       unsigned iterations)
{
    std::vector<FuLatencyPoint> c;
    for (unsigned w = 1; w <= maxWarps; ++w)
        c.push_back(FuLatencyPoint{w, measure(op, w, iterations)});
    return c;
}

unsigned
FuCharacterizer::contentionOnset(const std::vector<FuLatencyPoint> &c,
                                 double riseFraction)
{
    GPUCC_ASSERT(!c.empty(), "empty curve");
    double base = c.front().warp0AvgCycles;
    for (const auto &p : c) {
        if (p.warp0AvgCycles > base * (1.0 + riseFraction))
            return p.warps;
    }
    return 0; // never rose: contention-free over the sweep (e.g. Kepler Add)
}

} // namespace gpucc::covert

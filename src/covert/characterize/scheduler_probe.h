/**
 * @file
 * Reverse engineering of the hardware schedulers (Section 3.1).
 *
 * Reproduces the paper's methodology from the *outside*: launch kernels
 * with varying grid configurations, read the smid register and clock()
 * from each block, and infer the placement policies. The probes only
 * use information a real kernel can observe, so the inference logic is
 * exactly what an attacker would run.
 */

#ifndef GPUCC_COVERT_CHARACTERIZE_SCHEDULER_PROBE_H
#define GPUCC_COVERT_CHARACTERIZE_SCHEDULER_PROBE_H

#include <cstdint>
#include <vector>

#include "gpu/arch_params.h"

namespace gpucc::covert
{

/** Observation from one block of a probe kernel. */
struct BlockObservation
{
    unsigned blockId = 0;
    unsigned smId = 0;
    std::uint64_t startClock = 0;
    std::uint64_t endClock = 0;
};

/** Observations from one probe kernel. */
struct KernelObservation
{
    std::vector<BlockObservation> blocks;
};

/** Summary of the reverse-engineered policies. */
struct SchedulerFindings
{
    bool blockAssignmentRoundRobin = false;   //!< block b -> SM b mod #SM
    bool secondKernelUsesLeftover = false;    //!< co-residency achieved
    bool fullDeviceBlocksSecondKernel = false; //!< queued when saturated
    bool warpAssignmentRoundRobin = false;    //!< warp w -> scheduler w mod N
    unsigned observedSms = 0;                 //!< distinct SMs seen
    unsigned observedSchedulers = 0;          //!< distinct schedulers seen
};

/** Scheduler reverse-engineering probe suite. */
class SchedulerProbe
{
  public:
    explicit SchedulerProbe(const gpu::ArchParams &arch);

    /**
     * Launch two concurrent kernels with @p blocks1/@p blocks2 blocks of
     * @p threads threads and record per-block smid/clock observations.
     */
    std::pair<KernelObservation, KernelObservation> observeTwoKernels(
        unsigned blocks1, unsigned blocks2, unsigned threads);

    /**
     * Launch one kernel with @p warps warps and record each warp's
     * scheduler via contention probing (the paper infers the mapping
     * from latency; the model exposes it via per-warp observation).
     */
    std::vector<unsigned> observeWarpSchedulers(unsigned warps);

    /** Run the full methodology and summarize the findings. */
    SchedulerFindings run();

  private:
    gpu::ArchParams arch;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_CHARACTERIZE_SCHEDULER_PROBE_H

/**
 * @file
 * Offline constant-memory characterization (attack step I, Section 4.1).
 *
 * Reimplements the Wong et al. microbenchmark: load arrays of increasing
 * size from constant memory with a fixed stride, timing the accesses.
 * While the array fits in a cache level the latency is flat; once it
 * spills, sets overflow one by one, producing a staircase whose step
 * count equals the number of sets and whose step width equals the line
 * size (Figures 2 and 3). The recovered geometry feeds the channel
 * construction step.
 */

#ifndef GPUCC_COVERT_CHARACTERIZE_CACHE_CHARACTERIZER_H
#define GPUCC_COVERT_CHARACTERIZE_CACHE_CHARACTERIZER_H

#include <cstddef>
#include <vector>

#include "gpu/arch_params.h"

namespace gpucc::covert
{

/** One sample of the latency-vs-array-size sweep. */
struct CacheLatencyPoint
{
    std::size_t arrayBytes = 0; //!< array size for this experiment
    double avgLatencyCycles = 0.0; //!< mean per-access latency
};

/** Which constant-cache level a sweep targets. */
enum class CacheLevel
{
    L1,
    L2,
};

/** Result of recovering geometry from a staircase. */
struct RecoveredGeometry
{
    std::size_t sizeBytes = 0;
    std::size_t lineBytes = 0;
    std::size_t numSets = 0;
    double plateauCycles = 0.0; //!< flat-region latency
    double ceilingCycles = 0.0; //!< latency once every set thrashes
};

/** Runs the strided-load sweeps and geometry recovery. */
class CacheCharacterizer
{
  public:
    explicit CacheCharacterizer(const gpu::ArchParams &arch);

    /**
     * Sweep array sizes [@p fromBytes, @p toBytes] with @p stepBytes,
     * loading at @p strideBytes, one fresh device per point (the paper
     * reruns the experiment per size).
     */
    std::vector<CacheLatencyPoint> sweep(CacheLevel level,
                                         std::size_t fromBytes,
                                         std::size_t toBytes,
                                         std::size_t stepBytes,
                                         std::size_t strideBytes);

    /** Figure 2 sweep: L1, stride 64 B, around the L1 capacity. */
    std::vector<CacheLatencyPoint> figure2Sweep();

    /** Figure 3 sweep: L2, stride 256 B, around the L2 capacity. */
    std::vector<CacheLatencyPoint> figure3Sweep();

    /**
     * Recover cache geometry from a fine-grained sweep (the attack's
     * offline analysis). @p lineStride must equal the sweep step.
     */
    static RecoveredGeometry recover(
        const std::vector<CacheLatencyPoint> &series,
        std::size_t lineStride);

  private:
    /** Measure one (arraySize, stride) point on a fresh device. */
    double measurePoint(CacheLevel level, std::size_t arrayBytes,
                        std::size_t strideBytes);

    gpu::ArchParams arch;
};

} // namespace gpucc::covert

#endif // GPUCC_COVERT_CHARACTERIZE_CACHE_CHARACTERIZER_H

/**
 * @file
 * Channel flight recorder: the per-symbol ground truth log.
 *
 * Aggregate bit-error rates (ChannelResult::report) say *how often* a
 * channel fails; they cannot say *which* symbols failed or how close
 * the decode metric sat to the threshold when they did. The flight
 * recorder captures one record per transmitted symbol — send tick,
 * measured latency metric, the decision threshold in force, the
 * decoded bit, and the ground-truth bit — so an error burst can be
 * lined up against the trace timeline (fault windows, ARQ retries,
 * interferer launches) that caused it.
 *
 * Opt-in by pointer: channels carry a null FlightRecorder* by default
 * (the fault-hook pattern), so recording costs nothing unless a bench
 * or example attaches one.
 *
 * Retention mirrors the tracer's contract: at most 2^20 symbol records
 * are kept (settable via setCap); further record() calls are counted
 * in dropped() and exported in the summary, never silently lost.
 */

#ifndef GPUCC_COVERT_TRACE_FLIGHT_RECORDER_H
#define GPUCC_COVERT_TRACE_FLIGHT_RECORDER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace gpucc::covert::trace
{

/** One transmitted symbol as the decoder saw it. */
struct SymbolRecord
{
    std::uint64_t index = 0; //!< position in the transmitted message
    std::uint32_t round = 0; //!< protocol round (launch-per-bit: == index)
    Tick tick = 0;           //!< device tick the symbol was decoded at
    double metric = 0.0;     //!< decode metric (avg probe cycles)
    double threshold = 0.0;  //!< decision threshold in force
    bool decoded = false;    //!< bit the decoder produced
    bool truth = false;      //!< bit the sender encoded
    bool error() const { return decoded != truth; }
};

/** Margin between the metric and the threshold, signed toward the
 *  decoded side (negative = the decode was wrong side of truth). */
double decisionMargin(const SymbolRecord &r);

/** A session-layer event pinned to the symbol timeline (calibration,
 *  desync, resync, ladder transition). */
struct AnnotationRecord
{
    Tick tick = 0;     //!< device tick of the event
    std::string label; //!< e.g. "recalibrate", "desync", "degrade:2"
};

/** Per-transmission log of SymbolRecords with JSON export. */
class FlightRecorder
{
  public:
    /** @param channel Channel name stamped into the export. */
    explicit FlightRecorder(std::string channel = "");

    /** Append one symbol record (called from the decode loop). Once
     *  the retention cap is reached the record is dropped and counted
     *  in dropped() instead — same policy as trace::TraceShard. */
    void record(const SymbolRecord &r);

    /** Pin a session event to the timeline (exported alongside the
     *  symbols so error bursts line up with what the session did). */
    void annotate(Tick tick, std::string label);

    const std::vector<AnnotationRecord> &annotations() const
    {
        return events;
    }

    /** Set/replace the channel name (channels stamp their own). */
    void setChannel(const std::string &name) { channelName = name; }

    const std::vector<SymbolRecord> &records() const { return symbols; }
    std::uint64_t errorCount() const { return errors; }

    /** Symbols not retained because the cap was reached. */
    std::uint64_t dropped() const { return droppedCount; }

    /** Retention cap (symbol records); settable before recording. */
    void setCap(std::size_t n) { cap = n; }

    /** Current retention cap. */
    std::size_t capacity() const { return cap; }

    /** Fraction of recorded symbols decoded incorrectly. */
    double errorRate() const;

    /** Smallest decision margin over all correct decodes: how close
     *  the channel came to flipping a bit. 0 when nothing recorded. */
    double worstMargin() const;

    /** Drop all records (recorder reuse across transmissions). */
    void clear();

    /**
     * Serialize: {"channel": ..., "symbols": [...], "summary": {...}}.
     * Symbol rows are flat objects, one per record, in record order.
     */
    std::string toJson() const;

    /** Write toJson() to @p path (fatal on I/O failure). */
    void writeJson(const std::string &path) const;

  private:
    std::string channelName;
    std::vector<SymbolRecord> symbols;
    std::vector<AnnotationRecord> events;
    std::uint64_t errors = 0;
    std::size_t cap = std::size_t{1} << 20;
    std::uint64_t droppedCount = 0;
};

} // namespace gpucc::covert::trace

#endif // GPUCC_COVERT_TRACE_FLIGHT_RECORDER_H

#include "covert/trace/flight_recorder.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/metrics/json_writer.h"

namespace gpucc::covert::trace
{

double
decisionMargin(const SymbolRecord &r)
{
    double margin = r.metric - r.threshold;
    // A "1" decodes above threshold, a "0" below; flip the sign so a
    // positive margin always means "the correct side".
    if (!r.truth)
        margin = -margin;
    return margin;
}

FlightRecorder::FlightRecorder(std::string channel)
    : channelName(std::move(channel))
{
}

void
FlightRecorder::record(const SymbolRecord &r)
{
    if (symbols.size() >= cap) {
        ++droppedCount;
        return;
    }
    symbols.push_back(r);
    if (r.error())
        ++errors;
}

double
FlightRecorder::errorRate() const
{
    return symbols.empty()
               ? 0.0
               : static_cast<double>(errors) /
                     static_cast<double>(symbols.size());
}

double
FlightRecorder::worstMargin() const
{
    double worst = 0.0;
    bool any = false;
    for (const auto &r : symbols) {
        if (r.error())
            continue;
        double m = decisionMargin(r);
        if (!any || m < worst) {
            worst = m;
            any = true;
        }
    }
    return any ? worst : 0.0;
}

void
FlightRecorder::annotate(Tick tick, std::string label)
{
    events.push_back({tick, std::move(label)});
}

void
FlightRecorder::clear()
{
    symbols.clear();
    events.clear();
    errors = 0;
    droppedCount = 0;
}

std::string
FlightRecorder::toJson() const
{
    std::ostringstream os;
    metrics::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("channel", channelName);
    w.beginArray("symbols");
    for (const auto &r : symbols) {
        w.beginObject();
        w.field("index", r.index);
        w.field("round", static_cast<std::uint64_t>(r.round));
        w.field("tick", static_cast<std::uint64_t>(r.tick));
        w.field("metric", r.metric);
        w.field("threshold", r.threshold);
        w.field("decoded", r.decoded);
        w.field("truth", r.truth);
        w.field("error", r.error());
        w.endObject();
    }
    w.endArray();
    w.beginArray("annotations");
    for (const auto &a : events) {
        w.beginObject();
        w.field("tick", static_cast<std::uint64_t>(a.tick));
        w.field("label", a.label);
        w.endObject();
    }
    w.endArray();
    w.beginObject("summary");
    w.field("symbols", static_cast<std::uint64_t>(symbols.size()));
    w.field("errors", errors);
    w.field("dropped", droppedCount);
    w.field("errorRate", errorRate());
    w.field("worstMargin", worstMargin());
    w.endObject();
    w.endObject();
    return os.str();
}

void
FlightRecorder::writeJson(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        GPUCC_FATAL("cannot open flight-recorder output '%s'", path.c_str());
    f << toJson() << "\n";
}

} // namespace gpucc::covert::trace

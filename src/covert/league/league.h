/**
 * @file
 * Attacker/defender co-evolution league (Section 9 extension).
 *
 * The mitigation study in bench_sec9_mitigations scores *static*
 * defenses against *fixed* channels. Real deployments are a moving
 * fight: defenses activate reactively (Karimi et al.), and a capable
 * attacker answers by migrating to an undefended resource (the
 * session layer's cross-resource failover). The league pits the two
 * adaptive sides against each other systematically:
 *
 *  - every (attacker, defender, architecture, seed) cell runs one
 *    complete ChannelSession transfer with the defender armed on the
 *    same device, and scores the *residual capacity* the attacker
 *    retained: goodput x (1 - H2(residual BER));
 *  - alongside the cells, a detector ROC population scores the
 *    Section 9 detector at its default operating point: true positives
 *    over the cache-channel families, false positives over the
 *    Rodinia-like interference workloads;
 *  - the whole table folds into a single 64-bit digest, a pure
 *    function of (specs, seedBase) — bit-identical at any
 *    GPUCC_THREADS, so CI can pin the tournament outcome the same way
 *    the conformance bands pin channel bandwidths.
 *
 * Determinism contract: a cell's seed derives from (seedBase, cell
 * index) through SweepRunner::deriveSeed; the reactive defender's
 * sample-jitter seed and the payload both derive from the cell seed.
 * Nothing reads the wall clock or shares simulated state across cells.
 */

#ifndef GPUCC_COVERT_LEAGUE_LEAGUE_H
#define GPUCC_COVERT_LEAGUE_LEAGUE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "covert/detection/cc_detector.h"
#include "covert/sync/duplex_channel.h"
#include "gpu/arch_params.h"
#include "gpu/mitigations.h"

namespace gpucc::obs
{
class Profiler;
} // namespace gpucc::obs

namespace gpucc::covert::league
{

/** One attacker archetype: a session shape and a failover ladder. */
struct AttackerSpec
{
    std::string name;

    /** Session resource ladder (session.h "Cross-resource failover").
     *  A single entry pins the attacker to that substrate. */
    std::vector<ChannelResource> resources = {ChannelResource::L1Const};

    std::size_t payloadBits = 96;
    bool startMultiBit = true; //!< open at the two-set rung
};

/** How a defender applies its mitigations. */
enum class DefenderKind
{
    None = 0,      //!< undefended baseline
    Static = 1,    //!< fixed MitigationConfig for the whole run
    Scheduled = 2, //!< pre-planned MitigationScheduler steps
    Reactive = 3,  //!< detector-driven ReactiveDefender ladder
};

/** One defender archetype. */
struct DefenderSpec
{
    std::string name;
    DefenderKind kind = DefenderKind::None;

    gpu::MitigationConfig staticCfg;        //!< kind == Static
    gpu::MitigationSchedule schedule;       //!< kind == Scheduled
    gpu::ReactiveDefenderConfig reactive;   //!< kind == Reactive
};

/** Outcome of one (attacker, defender, arch, seed) cell. */
struct CellResult
{
    std::string attacker;
    std::string defender;
    std::string arch;
    std::uint64_t seed = 0;

    // Attacker side.
    bool complete = false;
    std::size_t residualBitErrors = 0;
    double residualBer = 0.0;
    double goodputBps = 0.0;
    /** Error-adjusted capacity the attacker kept despite the defense:
     *  goodput x (1 - H2(residual BER)). */
    double residualCapacityBps = 0.0;
    double seconds = 0.0;
    unsigned failovers = 0;
    std::string finalResource; //!< substrate at session end ("l1"...)
    unsigned desyncs = 0;
    unsigned resyncs = 0;
    unsigned segments = 0;

    // Defender side.
    std::uint64_t defSamples = 0;
    std::uint64_t defAlarms = 0;
    std::uint64_t defEscalations = 0;
    std::uint64_t defDeescalations = 0;
    int defPeakRung = -1;     //!< Reactive only (-1 = never escalated)
    unsigned defStepsApplied = 0; //!< Scheduled only
    /** Detector verdict on this cell's traffic: reactive defenders
     *  report alarms > 0; all other kinds run the detector post-hoc
     *  over the cell's eviction trace. */
    bool detected = false;

    /** Architectural end-state digest of the cell's device. */
    std::uint64_t deviceDigest = 0;
};

/** One member of the detector ROC population. */
struct RocSample
{
    std::string name; //!< channel family or workload name
    std::string arch;
    bool isAttack = false; //!< ground truth
    bool flagged = false;  //!< detector verdict
};

/** Tournament shape. Empty vectors select the default pools. */
struct LeagueConfig
{
    std::vector<AttackerSpec> attackers;  //!< empty -> defaultAttackerPool()
    std::vector<DefenderSpec> defenders;  //!< empty -> defaultDefenderPool()
    std::vector<gpu::ArchParams> archs;   //!< empty -> allArchitectures()
    unsigned seedsPerCell = 2;
    std::uint64_t seedBase = 2017;

    bool roc = true; //!< also run the detector ROC population
    DetectorConfig detector; //!< ROC operating point (paper defaults)

    /** SweepRunner workers (0 = GPUCC_THREADS / hardware). Results and
     *  digest are identical for every value. */
    unsigned threads = 0;

    /** Optional phase profiler (non-owning). Every cell runs with its
     *  own profiler; the per-cell totals are merged into this one in
     *  cell-index order after the fan-out, so the merged cycle totals
     *  are worker-count invariant like the digest. */
    obs::Profiler *profiler = nullptr;
};

/** The assembled league table. */
struct LeagueTable
{
    std::vector<CellResult> cells; //!< cell order: atk x def x arch x seed
    std::vector<RocSample> roc;
    double tpRate = 0.0; //!< flagged attacks / attacks
    double fpRate = 0.0; //!< flagged benign runs / benign runs
    /** Order-sensitive digest over every cell and ROC sample. */
    std::uint64_t digest = 0;
};

/** The channel-agile attacker: opens on L1, fails over to the global
 *  atomic units when a defense kills the cache substrate. */
AttackerSpec agileAttacker();

/** The historical single-substrate attacker (L1 only, no failover). */
AttackerSpec l1PinnedAttacker();

DefenderSpec noDefense();
DefenderSpec staticDefense(std::string name, gpu::MitigationConfig cfg);
DefenderSpec scheduledDefense(std::string name,
                              gpu::MitigationSchedule schedule);
DefenderSpec reactiveDefense(std::string name,
                             gpu::ReactiveDefenderConfig cfg);

/**
 * The acceptance-cell defender: a ReactiveDefender whose ladder stops
 * at timer fuzzing + way partitioning (the two defenses the paper
 * discusses as deployable without scheduler support). Escalating to it
 * mid-transfer kills the L1 substrate outright, forcing the agile
 * attacker through exactly the failover path PROTOCOL.md specifies.
 */
DefenderSpec cappedReactiveDefense();

std::vector<AttackerSpec> defaultAttackerPool();
std::vector<DefenderSpec> defaultDefenderPool();

/** Run one cell. Deterministic per (specs, arch, seed). The optional
 *  profiler receives the cell's session phase costs (boot, calibrate,
 *  handshake, transfer, ...); attaching one never changes the result
 *  or the device digest. */
CellResult runLeagueCell(const gpu::ArchParams &arch,
                         const AttackerSpec &attacker,
                         const DefenderSpec &defender, std::uint64_t seed,
                         obs::Profiler *profiler = nullptr);

/** Run the full tournament (cells fanned through SweepRunner). */
LeagueTable runLeague(const LeagueConfig &cfg = {});

/** Recompute a table's digest (exposed so tests can cross-check). */
std::uint64_t leagueDigest(const LeagueTable &t);

/** Serialize the table as JSON (schema: {"league": ..., "cells": [...],
 *  "roc": [...], "tp_rate", "fp_rate", "digest"}). */
void writeLeagueJson(const LeagueTable &t, std::ostream &os);

} // namespace gpucc::covert::league

#endif // GPUCC_COVERT_LEAGUE_LEAGUE_H

#include "covert/league/league.h"

#include <ostream>
#include <utility>

#include "common/metrics/json_writer.h"
#include "common/rng.h"
#include "covert/analysis/capacity.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/session/session.h"
#include "covert/sync/sync_channel.h"
#include "gpu/device.h"
#include "gpu/host.h"
#include "obs/profiler.h"
#include "sim/exec/sweep_runner.h"
#include "verify/digest.h"
#include "workloads/interference.h"

namespace gpucc::covert::league
{
namespace
{

using sim::exec::deriveSeed;

/** Domain-separation tags for the per-cell seed derivations. */
constexpr std::uint64_t kPayloadTag = 0x7061796c;  // "payl"
constexpr std::uint64_t kDefenderTag = 0x64656664; // "defd"
constexpr std::uint64_t kDuplexTag = 0x6475706c;   // "dupl"
constexpr std::uint64_t kRocTag = 0x726f63;        // "roc"

BitVec
cellPayload(const AttackerSpec &atk, std::uint64_t seed)
{
    Rng rng(deriveSeed(seed, kPayloadTag));
    return randomBits(atk.payloadBits, rng);
}

} // namespace

AttackerSpec
agileAttacker()
{
    AttackerSpec a;
    a.name = "agile";
    a.resources = {ChannelResource::L1Const,
                   ChannelResource::GlobalAtomic};
    return a;
}

AttackerSpec
l1PinnedAttacker()
{
    AttackerSpec a;
    a.name = "l1_pinned";
    a.resources = {ChannelResource::L1Const};
    return a;
}

DefenderSpec
noDefense()
{
    DefenderSpec d;
    d.name = "none";
    d.kind = DefenderKind::None;
    return d;
}

DefenderSpec
staticDefense(std::string name, gpu::MitigationConfig cfg)
{
    DefenderSpec d;
    d.name = std::move(name);
    d.kind = DefenderKind::Static;
    d.staticCfg = cfg;
    return d;
}

DefenderSpec
scheduledDefense(std::string name, gpu::MitigationSchedule schedule)
{
    DefenderSpec d;
    d.name = std::move(name);
    d.kind = DefenderKind::Scheduled;
    d.schedule = std::move(schedule);
    return d;
}

DefenderSpec
reactiveDefense(std::string name, gpu::ReactiveDefenderConfig cfg)
{
    DefenderSpec d;
    d.name = std::move(name);
    d.kind = DefenderKind::Reactive;
    d.reactive = cfg;
    return d;
}

DefenderSpec
cappedReactiveDefense()
{
    gpu::ReactiveDefenderConfig rc;
    // Sample fast enough to escalate within the first data segments,
    // and stay escalated once the attacker has been driven off L1 (the
    // atomic substrate leaves the eviction trace quiet, so a short
    // de-escalation fuse would hand L1 right back).
    rc.samplePeriodCycles = 40000;
    rc.quietToDeescalate = 64;
    // The per-sample trace window is one period, not a whole transfer:
    // a session moves only a handful of frames per 40k cycles, so the
    // whole-trace default floor (48) would never fire.
    rc.minCrossEvictions = 12;
    auto full = gpu::defaultDefenseLadder();
    // Rungs 0-2 of the canonical ladder: fuzz64, fuzz256,
    // fuzz256 + way partitioning.
    rc.ladder.assign(full.begin(), full.begin() + 3);
    return reactiveDefense("reactive_fuzz_waypart", rc);
}

std::vector<AttackerSpec>
defaultAttackerPool()
{
    return {l1PinnedAttacker(), agileAttacker()};
}

std::vector<DefenderSpec>
defaultDefenderPool()
{
    gpu::MitigationConfig fuzz;
    fuzz.timerFuzzCycles = 256;
    gpu::MitigationConfig wall = fuzz;
    wall.cacheWayPartitioning = true;
    return {noDefense(), staticDefense("static_fuzz256", fuzz),
            staticDefense("static_fuzz_waypart", wall),
            cappedReactiveDefense()};
}

CellResult
runLeagueCell(const gpu::ArchParams &arch, const AttackerSpec &attacker,
              const DefenderSpec &defender, std::uint64_t seed,
              obs::Profiler *profiler)
{
    session::SessionConfig scfg;
    scfg.resources = attacker.resources;
    scfg.startMultiBit = attacker.startMultiBit;
    scfg.profiler = profiler;

    DuplexConfig dc;
    dc.seed = deriveSeed(seed, kDuplexTag);
    if (defender.kind == DefenderKind::Static)
        dc.mitigations = defender.staticCfg;

    session::ChannelSession s(arch, scfg, dc);
    gpu::Device &dev = s.channel().harness().device();

    // Non-reactive defenders don't watch the eviction stream, so the
    // league scores the detector on their cells post-hoc. The reactive
    // defender owns the trace while armed (it clears per sample).
    if (defender.kind != DefenderKind::Reactive)
        dev.constMem().setEvictionTracing(true);

    gpu::MitigationScheduler sched(dev, defender.schedule);
    if (defender.kind == DefenderKind::Scheduled)
        sched.arm();

    gpu::ReactiveDefenderConfig rc = defender.reactive;
    rc.seed = deriveSeed(seed, kDefenderTag);
    gpu::ReactiveDefender rd(dev, rc);
    if (defender.kind == DefenderKind::Reactive)
        rd.arm();

    const BitVec payload = cellPayload(attacker, seed);
    session::SessionResult r = s.run(payload);

    CellResult out;
    out.attacker = attacker.name;
    out.defender = defender.name;
    out.arch = arch.name;
    out.seed = seed;
    out.complete = r.complete;
    out.residualBitErrors = r.residualBitErrors;
    out.residualBer = r.residualBer;
    out.goodputBps = r.goodputBps;
    out.residualCapacityBps =
        r.goodputBps * (1.0 - binaryEntropy(r.residualBer));
    out.seconds = r.seconds;
    out.failovers = r.failovers;
    out.finalResource = channelResourceName(r.finalResource);
    out.desyncs = r.desyncs;
    out.resyncs = r.resyncs;
    out.segments = r.segments;

    if (defender.kind == DefenderKind::Reactive) {
        const gpu::ReactiveDefenderStats &st = rd.stats();
        out.defSamples = st.samples;
        out.defAlarms = st.alarms;
        out.defEscalations = st.escalations;
        out.defDeescalations = st.deescalations;
        out.defPeakRung = st.peakRung;
        out.detected = st.alarms > 0;
        rd.disarm();
    } else {
        out.detected = analyzeEvictionTrace(
                           dev.constMem().evictionTrace())
                           .covertChannelSuspected;
        dev.constMem().clearEvictionTrace();
        dev.constMem().setEvictionTracing(false);
    }
    if (defender.kind == DefenderKind::Scheduled)
        out.defStepsApplied = sched.applied();

    dev.runUntilIdle();
    out.deviceDigest = verify::deviceDigest(dev);
    return out;
}

namespace
{

/** One member of the ROC population, pre-fan. */
struct RocSpec
{
    const char *name;
    bool isAttack;
    std::size_t archIdx;
};

RocSample
runRocSample(const gpu::ArchParams &arch, const RocSpec &spec,
             const DetectorConfig &det, std::uint64_t seed)
{
    RocSample out;
    out.name = spec.name;
    out.arch = arch.name;
    out.isAttack = spec.isAttack;

    const std::string name = spec.name;
    std::vector<mem::EvictionEvent> trace;
    Rng rng(deriveSeed(seed, kRocTag));
    if (name == "l1_launch") {
        L1ConstChannel ch(arch);
        ch.harness().device().constMem().setEvictionTracing(true);
        ch.transmit(randomBits(48, rng));
        trace = ch.harness().device().constMem().evictionTrace();
    } else if (name == "l1_sync") {
        SyncL1Channel ch(arch);
        ch.harness().device().constMem().setEvictionTracing(true);
        ch.transmit(randomBits(128, rng));
        trace = ch.harness().device().constMem().evictionTrace();
    } else if (name == "duplex") {
        DuplexSyncChannel ch(arch);
        ch.harness().device().constMem().setEvictionTracing(true);
        ch.exchange(randomBits(48, rng), randomBits(48, rng));
        trace = ch.harness().device().constMem().evictionTrace();
    } else {
        gpu::Device dev(arch);
        dev.constMem().setEvictionTracing(true);
        gpu::HostContext host(dev);
        workloads::WorkloadSpec spec8;
        spec8.blocks = 8;
        spec8.iterations = 800;
        if (name == "const_walker") {
            host.launch(dev.createStream(),
                        workloads::makeConstantMemoryWorkload(dev, spec8));
        } else if (name == "compute") {
            host.launch(dev.createStream(),
                        workloads::makeComputeWorkload(spec8));
        } else if (name == "streaming") {
            host.launch(dev.createStream(),
                        workloads::makeStreamingWorkload(dev, spec8));
        } else { // rodinia_mix
            for (auto &k : workloads::makeRodiniaLikeMix(dev, spec8))
                host.launch(dev.createStream(), std::move(k));
        }
        host.syncAll();
        trace = dev.constMem().evictionTrace();
    }
    out.flagged = analyzeEvictionTrace(trace, det).covertChannelSuspected;
    return out;
}

} // namespace

LeagueTable
runLeague(const LeagueConfig &cfg)
{
    const std::vector<AttackerSpec> attackers =
        cfg.attackers.empty() ? defaultAttackerPool() : cfg.attackers;
    const std::vector<DefenderSpec> defenders =
        cfg.defenders.empty() ? defaultDefenderPool() : cfg.defenders;
    const std::vector<gpu::ArchParams> archs =
        cfg.archs.empty() ? gpu::allArchitectures() : cfg.archs;
    const unsigned seeds = cfg.seedsPerCell > 0 ? cfg.seedsPerCell : 1;

    sim::exec::SweepRunner runner(cfg.threads);
    LeagueTable table;

    // Cell index order: attacker-major, then defender, arch, seed —
    // the seed of a cell depends only on its position in this grid.
    const std::size_t nCells =
        attackers.size() * defenders.size() * archs.size() * seeds;
    // Each cell profiles into its own slot (one profiler per thread of
    // control); merging in cell-index order afterwards makes the
    // combined totals independent of worker count and scheduling.
    std::vector<obs::Profiler> cellProfs(
        cfg.profiler != nullptr ? nCells : 0);
    table.cells = runner.runTrials(
        nCells, cfg.seedBase,
        [&](std::size_t i, std::uint64_t seed) {
            std::size_t rest = i;
            const std::size_t si = rest % seeds;
            rest /= seeds;
            const std::size_t ai = rest % archs.size();
            rest /= archs.size();
            const std::size_t di = rest % defenders.size();
            rest /= defenders.size();
            (void)si;
            return runLeagueCell(archs[ai], attackers[rest],
                                 defenders[di], seed,
                                 cellProfs.empty() ? nullptr
                                                   : &cellProfs[i]);
        });
    for (const obs::Profiler &p : cellProfs)
        cfg.profiler->merge(p);

    if (cfg.roc) {
        static constexpr const char *kAttacks[] = {"l1_launch", "l1_sync",
                                                   "duplex"};
        static constexpr const char *kBenign[] = {
            "const_walker", "compute", "streaming", "rodinia_mix"};
        std::vector<RocSpec> specs;
        for (std::size_t ai = 0; ai < archs.size(); ++ai) {
            for (const char *n : kAttacks)
                specs.push_back({n, true, ai});
            for (const char *n : kBenign)
                specs.push_back({n, false, ai});
        }
        table.roc = runner.runTrials(
            specs.size(), deriveSeed(cfg.seedBase, kRocTag),
            [&](std::size_t i, std::uint64_t seed) {
                return runRocSample(archs[specs[i].archIdx], specs[i],
                                    cfg.detector, seed);
            });
        std::size_t attacks = 0, benign = 0, tp = 0, fp = 0;
        for (const RocSample &s : table.roc) {
            if (s.isAttack) {
                ++attacks;
                tp += s.flagged ? 1 : 0;
            } else {
                ++benign;
                fp += s.flagged ? 1 : 0;
            }
        }
        table.tpRate = attacks ? double(tp) / double(attacks) : 0.0;
        table.fpRate = benign ? double(fp) / double(benign) : 0.0;
    }

    table.digest = leagueDigest(table);
    return table;
}

std::uint64_t
leagueDigest(const LeagueTable &t)
{
    verify::StateDigest d(0x6c656167ULL); // "leag"
    d.u64(t.cells.size());
    for (const CellResult &c : t.cells) {
        d.str(c.attacker);
        d.str(c.defender);
        d.str(c.arch);
        d.u64(c.seed);
        d.u64(c.complete ? 1 : 0);
        d.u64(c.residualBitErrors);
        d.f64(c.residualBer);
        d.f64(c.goodputBps);
        d.f64(c.seconds);
        d.u64(c.failovers);
        d.str(c.finalResource);
        d.u64(c.desyncs);
        d.u64(c.resyncs);
        d.u64(c.segments);
        d.u64(c.defSamples);
        d.u64(c.defAlarms);
        d.u64(c.defEscalations);
        d.u64(c.defDeescalations);
        d.i64(c.defPeakRung);
        d.u64(c.defStepsApplied);
        d.u64(c.detected ? 1 : 0);
        d.u64(c.deviceDigest);
    }
    d.u64(t.roc.size());
    for (const RocSample &s : t.roc) {
        d.str(s.name);
        d.str(s.arch);
        d.u64(s.isAttack ? 1 : 0);
        d.u64(s.flagged ? 1 : 0);
    }
    return d.value();
}

void
writeLeagueJson(const LeagueTable &t, std::ostream &os)
{
    metrics::JsonWriter w(os, true);
    w.beginObject();
    w.field("league", "attacker_defender_coevolution");
    w.beginArray("cells");
    for (const CellResult &c : t.cells) {
        w.beginObject();
        w.field("attacker", c.attacker);
        w.field("defender", c.defender);
        w.field("arch", c.arch);
        w.field("seed", c.seed);
        w.field("complete", c.complete);
        w.field("residual_bit_errors",
                std::uint64_t(c.residualBitErrors));
        w.field("residual_ber", c.residualBer);
        w.field("goodput_bps", c.goodputBps);
        w.field("residual_capacity_bps", c.residualCapacityBps);
        w.field("seconds", c.seconds);
        w.field("failovers", c.failovers);
        w.field("final_resource", c.finalResource);
        w.field("desyncs", c.desyncs);
        w.field("resyncs", c.resyncs);
        w.field("segments", c.segments);
        w.field("def_samples", c.defSamples);
        w.field("def_alarms", c.defAlarms);
        w.field("def_escalations", c.defEscalations);
        w.field("def_deescalations", c.defDeescalations);
        w.field("def_peak_rung", c.defPeakRung);
        w.field("def_steps_applied", c.defStepsApplied);
        w.field("detected", c.detected);
        w.field("device_digest", c.deviceDigest);
        w.endObject();
    }
    w.endArray();
    w.beginArray("roc");
    for (const RocSample &s : t.roc) {
        w.beginObject();
        w.field("name", s.name);
        w.field("arch", s.arch);
        w.field("is_attack", s.isAttack);
        w.field("flagged", s.flagged);
        w.endObject();
    }
    w.endArray();
    w.field("tp_rate", t.tpRate);
    w.field("fp_rate", t.fpRate);
    w.field("digest", t.digest);
    w.endObject();
    os << "\n";
}

} // namespace gpucc::covert::league

#include "obs/profiler.h"

#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/metrics/json_writer.h"

namespace gpucc::obs
{

void
Profiler::add(const std::string &phaseName, std::uint64_t cycles,
              std::uint64_t wallNs, std::uint64_t calls)
{
    PhaseTotals &t = totals[phaseName];
    t.calls += calls;
    t.cycles += cycles;
    t.wallNs += wallNs;
}

void
Profiler::merge(const Profiler &other)
{
    for (const auto &[name, t] : other.totals)
        add(name, t.cycles, t.wallNs, t.calls);
}

PhaseTotals
Profiler::phase(const std::string &phaseName) const
{
    auto it = totals.find(phaseName);
    return it == totals.end() ? PhaseTotals{} : it->second;
}

std::uint64_t
Profiler::totalCycles() const
{
    std::uint64_t n = 0;
    for (const auto &[name, t] : totals)
        n += t.cycles;
    return n;
}

void
Profiler::clear()
{
    GPUCC_ASSERT(stack.empty(),
                 "Profiler::clear() with %zu open phase scopes",
                 stack.size());
    totals.clear();
}

void
Profiler::billTop()
{
    Active &a = stack.back();
    auto nowWall = std::chrono::steady_clock::now();
    std::uint64_t wallNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            nowWall - a.wallStart)
            .count());
    std::uint64_t cycles = 0;
    if (a.tick) {
        std::uint64_t nowTick = a.tick();
        cycles = nowTick >= a.tickStart ? nowTick - a.tickStart : 0;
        a.tickStart = nowTick;
    }
    a.wallStart = nowWall;
    add(a.name, cycles, wallNs, 0);
}

std::string
Profiler::toJson(bool includeWall) const
{
    std::ostringstream os;
    metrics::JsonWriter w(os, true);
    w.beginObject();
    w.beginObject("phases");
    for (const auto &[name, t] : totals) {
        w.beginObject(name);
        w.field("calls", t.calls);
        w.field("cycles", t.cycles);
        if (includeWall)
            w.field("wall_ns", t.wallNs);
        w.endObject();
    }
    w.endObject();
    w.field("total_cycles", totalCycles());
    w.endObject();
    return os.str();
}

void
Profiler::writeJson(const std::string &path, bool includeWall) const
{
    std::ofstream os(path);
    GPUCC_ASSERT(os.good(), "cannot open profiler export path '%s'",
                 path.c_str());
    os << toJson(includeWall) << "\n";
    GPUCC_ASSERT(os.good(), "write to profiler export path '%s' failed",
                 path.c_str());
}

PhaseScope::PhaseScope(Profiler *p, std::string phaseName,
                       Profiler::TickFn tick)
    : prof(p)
{
    if (prof == nullptr)
        return;
    // Self-time: the parent stops accumulating while the child runs.
    if (!prof->stack.empty())
        prof->billTop();
    Profiler::Active a;
    a.name = std::move(phaseName);
    a.tick = std::move(tick);
    a.tickStart = a.tick ? a.tick() : 0;
    a.wallStart = std::chrono::steady_clock::now();
    prof->add(a.name, 0, 0, 1); // count the entry even if cost is 0
    prof->stack.push_back(std::move(a));
    open = true;
}

PhaseScope::~PhaseScope()
{
    close();
}

void
PhaseScope::close()
{
    if (!open)
        return;
    open = false;
    prof->billTop();
    prof->stack.pop_back();
    // The parent resumes from "now": refresh its start marks so the
    // child's span is not billed to it as well.
    if (!prof->stack.empty()) {
        Profiler::Active &parent = prof->stack.back();
        if (parent.tick)
            parent.tickStart = parent.tick();
        parent.wallStart = std::chrono::steady_clock::now();
    }
}

} // namespace gpucc::obs

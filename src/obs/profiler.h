/**
 * @file
 * Deterministic phase profiler: run-scale cost attribution.
 *
 * The in-run observability layers (tracing, metrics, flight recorder)
 * answer "what happened inside this simulation"; the profiler answers
 * "where did this *run* spend its budget" — how many simulated cycles
 * and how much wall time went into booting devices, calibrating
 * thresholds, pilot handshakes, data transfer, audits, resyncs,
 * failovers, and snapshot forks, across every cell of a sweep.
 *
 * Two cost dimensions per phase:
 *
 *  - **cycles** — simulated device ticks, read from a tick source the
 *    scope is given. A pure function of the simulation, so per-phase
 *    cycle totals are bit-identical at any GPUCC_THREADS (obs_test
 *    pins this) and safe to persist in the run ledger.
 *  - **wall_ns** — std::chrono::steady_clock host time. Machine- and
 *    load-dependent, useful for "what's slow on *this* box"; excluded
 *    from the deterministic export and from ledger keys.
 *
 * Attribution is *self-time*: PhaseScopes nest, and entering a child
 * phase pauses the parent, so the per-phase totals always sum to the
 * instrumented span with nothing double-counted (a resync's embedded
 * recalibration bills "calibrate", not "resync").
 *
 * Threading follows the Device/Registry ownership contract: one
 * Profiler belongs to one trial/session/cell and is touched by one
 * thread. Parallel sweeps give every cell its own profiler and merge
 * them in cell-index order afterwards — merge order only affects
 * nothing (totals are sums), so the merged export is worker-count
 * invariant. Attachment is opt-in by pointer (the fault-hook pattern):
 * a null Profiler* makes every scope a no-op.
 */

#ifndef GPUCC_OBS_PROFILER_H
#define GPUCC_OBS_PROFILER_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace gpucc::obs
{

/** Accumulated cost of one named phase. */
struct PhaseTotals
{
    std::uint64_t calls = 0;   //!< scopes entered
    std::uint64_t cycles = 0;  //!< simulated ticks (deterministic)
    std::uint64_t wallNs = 0;  //!< host wall time (machine-dependent)
};

/** The canonical phase names the instrumented layers use. Free-form
 *  strings are allowed everywhere; these constants just keep the
 *  session, league, conformance and sweep layers telling one story. */
namespace phase
{
inline constexpr const char *kBoot = "boot";
inline constexpr const char *kCalibrate = "calibrate";
inline constexpr const char *kHandshake = "handshake";
inline constexpr const char *kTransfer = "transfer";
inline constexpr const char *kDecode = "decode";
inline constexpr const char *kResync = "resync";
inline constexpr const char *kFailover = "failover";
inline constexpr const char *kFork = "fork_restore";
inline constexpr const char *kCell = "cell";
} // namespace phase

class PhaseScope;

/** Per-run (or per-cell) phase cost accumulator. */
class Profiler
{
  public:
    /** Tick source for cycle attribution (e.g. a Device::now()
     *  binding). Scopes without one record wall time only. */
    using TickFn = std::function<std::uint64_t()>;

    Profiler() = default;
    Profiler(const Profiler &) = delete;
    Profiler &operator=(const Profiler &) = delete;

    /** Add raw totals to @p phaseName (merging, manual attribution). */
    void add(const std::string &phaseName, std::uint64_t cycles,
             std::uint64_t wallNs, std::uint64_t calls = 1);

    /** Fold @p other's totals into this profiler. Addition is
     *  commutative, so any merge order yields identical totals;
     *  callers still merge in cell-index order by convention. */
    void merge(const Profiler &other);

    /** Totals per phase, sorted by phase name (stable export order). */
    const std::map<std::string, PhaseTotals> &phases() const
    {
        return totals;
    }

    /** Totals of @p phaseName (zeros when the phase never ran). */
    PhaseTotals phase(const std::string &phaseName) const;

    /** Sum of cycles over every phase. */
    std::uint64_t totalCycles() const;

    /** @return true when no phase has been recorded. */
    bool empty() const { return totals.empty(); }

    /** Drop all totals (scope stack must be empty). */
    void clear();

    /**
     * Serialize as {"phases": {name: {"calls", "cycles"[, "wall_ns"]},
     * ...}, "total_cycles": N}. With @p includeWall false the output is
     * a pure function of the simulation — byte-identical across
     * machines, runs, and GPUCC_THREADS values — which is the form the
     * ledger stores and the determinism tests compare.
     */
    std::string toJson(bool includeWall = true) const;

    /** Write toJson() to @p path (fatal on I/O failure). */
    void writeJson(const std::string &path, bool includeWall = true) const;

  private:
    friend class PhaseScope;

    struct Active
    {
        std::string name;
        TickFn tick;
        std::uint64_t tickStart = 0;
        std::chrono::steady_clock::time_point wallStart;
    };

    /** Bill the currently running interval of the top frame and reset
     *  its start marks (used when pausing for a child / popping). */
    void billTop();

    std::map<std::string, PhaseTotals> totals;
    std::vector<Active> stack;
};

/**
 * RAII phase scope. Entering pauses the enclosing scope (self-time
 * attribution); leaving bills this phase and resumes the parent. A
 * null profiler makes construction and destruction no-ops, so call
 * sites need no branches.
 */
class PhaseScope
{
  public:
    /** @param tick Optional simulated-clock source; sampled at entry,
     *  exit, and around child scopes. */
    PhaseScope(Profiler *p, std::string phaseName,
               Profiler::TickFn tick = {});
    ~PhaseScope();

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

    /** End the scope early (idempotent). */
    void close();

  private:
    Profiler *prof;
    bool open = false;
};

} // namespace gpucc::obs

#endif // GPUCC_OBS_PROFILER_H

#include "obs/ledger.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/log.h"
#include "common/metrics/json_writer.h"
#include "verify/digest.h"
#include "verify/json.h"

namespace gpucc::obs
{

namespace
{

/** u64 <-> hex string: JSON numbers round-trip only 53 bits, and keys,
 *  seeds and digests use all 64, so they travel as "0x..." strings. */
std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
parseHex64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 16);
    return end != nullptr && *end == '\0';
}

/**
 * Split a serialized line into its checksummed body and the stored CRC.
 * The writer always emits ...,"crc":"0x<8 hex>"} as the final field;
 * the CRC covers the body with that suffix removed and the object
 * re-closed. @return false for lines without a CRC suffix (legacy
 * records from before the field existed — accepted unvalidated).
 */
bool
splitCrcSuffix(const std::string &line, std::string &body,
               std::uint32_t &stored)
{
    static const std::string kMarker = ",\"crc\":\"0x";
    // suffix = marker + 8 hex digits + "\"}"
    const std::size_t suffixLen = kMarker.size() + 8 + 2;
    if (line.size() < suffixLen || line.back() != '}' ||
        line[line.size() - 2] != '"')
        return false;
    const std::size_t pos = line.size() - suffixLen;
    if (line.compare(pos, kMarker.size(), kMarker) != 0)
        return false;
    const std::string hexDigits = line.substr(pos + kMarker.size(), 8);
    char *end = nullptr;
    unsigned long v = std::strtoul(hexDigits.c_str(), &end, 16);
    if (end == nullptr || *end != '\0')
        return false;
    stored = static_cast<std::uint32_t>(v);
    body = line.substr(0, pos) + "}";
    return true;
}

} // namespace

std::uint32_t
Ledger::lineCrc(const std::string &s)
{
    std::uint32_t c = 0xffffffffu;
    for (unsigned char ch : s) {
        c ^= ch;
        for (int k = 0; k < 8; ++k)
            c = (c >> 1) ^ (0xedb88320u & (0u - (c & 1u)));
    }
    return c ^ 0xffffffffu;
}

std::uint64_t
LedgerRecord::key() const
{
    // Keyed splitmix64 sponge over exactly the identity fields: two
    // cells agree on the key iff they are the same (scenario, arch,
    // plan, seed, config, revision) point.
    verify::StateDigest d(0x6c656467ULL); // "ledg"
    d.str(scenario);
    d.str(arch);
    d.str(plan);
    d.str(config);
    d.u64(seed);
    d.str(gitDescribe);
    return d.value();
}

void
LedgerRecord::takePhases(const Profiler &p)
{
    phaseCycles.clear();
    phaseCalls.clear();
    for (const auto &[name, t] : p.phases()) {
        phaseCycles[name] = t.cycles;
        phaseCalls[name] = t.calls;
    }
}

Ledger::Ledger(std::string path) : filePath(std::move(path))
{
    std::error_code ec;
    auto dir = std::filesystem::path(filePath).parent_path();
    if (!dir.empty())
        std::filesystem::create_directories(dir, ec);
    if (ec)
        errors.push_back(filePath + ": " + ec.message());

    adopt(load(filePath));
}

Ledger::Ledger(std::string path, const LedgerLoadResult &preloaded)
    : filePath(std::move(path))
{
    std::error_code ec;
    auto dir = std::filesystem::path(filePath).parent_path();
    if (!dir.empty())
        std::filesystem::create_directories(dir, ec);
    if (ec)
        errors.push_back(filePath + ": " + ec.message());

    adopt(preloaded);
}

void
Ledger::adopt(const LedgerLoadResult &loaded)
{
    for (const LedgerRecord &r : loaded.records)
        keys.insert(r.key());
    loadedCount = loaded.records.size();
    repairNeeded = loaded.tornTail;
    for (const std::string &e : loaded.errors)
        errors.push_back(e);
}

bool
Ledger::append(const LedgerRecord &r)
{
    const std::uint64_t k = r.key();
    if (!keys.insert(k).second) {
        ++skippedCount;
        return false;
    }
    std::ofstream os(filePath, std::ios::app | std::ios::binary);
    if (!os.good()) {
        keys.erase(k);
        errors.push_back(filePath + ": cannot open for append");
        return false;
    }
    // Repair a torn tail before writing: terminating the dangling
    // partial line keeps it isolated (and reported on every load)
    // instead of letting this record fuse onto it.
    if (repairNeeded)
        os << "\n";
    os << toJsonLine(r) << "\n";
    if (!os.good()) {
        keys.erase(k);
        errors.push_back(filePath + ": append write failed");
        return false;
    }
    repairNeeded = false;
    ++appendedCount;
    return true;
}

LedgerLoadResult
Ledger::load(const std::string &path)
{
    LedgerLoadResult out;
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        return out; // absent file == empty ledger, not an error
    std::string content{std::istreambuf_iterator<char>(is),
                        std::istreambuf_iterator<char>()};
    out.tornTail = !content.empty() && content.back() != '\n';

    std::size_t lineNo = 0;
    std::size_t start = 0;
    while (start < content.size()) {
        const std::size_t nl = content.find('\n', start);
        const bool isTail = nl == std::string::npos;
        std::string line = content.substr(
            start, isTail ? std::string::npos : nl - start);
        start = isTail ? content.size() : nl + 1;
        ++lineNo;
        if (line.empty())
            continue;
        LedgerRecord r;
        std::string err;
        if (parseLine(line, r, err)) {
            // A tail line whose CRC validates is a complete record
            // that only lost its newline: keep it (append() restores
            // the framing before the next record).
            out.records.push_back(std::move(r));
        } else {
            if (isTail && out.tornTail)
                err = "torn tail (writer killed mid-append): " + err;
            out.errors.push_back(path + ":" + std::to_string(lineNo) +
                                 ": " + err);
        }
    }
    return out;
}

std::string
Ledger::toJsonLine(const LedgerRecord &r)
{
    std::ostringstream os;
    metrics::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("key", hex64(r.key()));
    w.field("scenario", r.scenario);
    w.field("arch", r.arch);
    w.field("plan", r.plan);
    w.field("config", r.config);
    w.field("seed", hex64(r.seed));
    w.field("git", r.gitDescribe);
    w.field("outcome", r.outcome);
    w.field("digest", hex64(r.digest));
    w.beginObject("metrics");
    for (const auto &[name, v] : r.metrics)
        w.field(name, v);
    w.endObject();
    w.beginObject("phases");
    for (const auto &[name, cycles] : r.phaseCycles) {
        w.beginObject(name);
        auto it = r.phaseCalls.find(name);
        w.field("calls", it == r.phaseCalls.end() ? std::uint64_t(0)
                                                  : it->second);
        w.field("cycles", cycles);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    // Seal the line with a CRC over everything serialized so far: a
    // torn or bit-rotted line fails validation even if it happens to
    // still parse as JSON.
    std::string body = os.str();
    char crc[24];
    std::snprintf(crc, sizeof crc, ",\"crc\":\"0x%08x\"}",
                  lineCrc(body));
    body.pop_back(); // drop the closing '}'; the crc suffix re-closes
    return body + crc;
}

bool
Ledger::parseLine(const std::string &line, LedgerRecord &out,
                  std::string &error)
{
    // Byte-level integrity first: lines written since the CRC field
    // existed must checksum; a mismatch means a torn or corrupted
    // write, regardless of whether the remains still parse.
    {
        std::string body;
        std::uint32_t stored = 0;
        if (splitCrcSuffix(line, body, stored)) {
            const std::uint32_t computed = lineCrc(body);
            if (computed != stored) {
                char msg[96];
                std::snprintf(msg, sizeof msg,
                              "line CRC mismatch (stored 0x%08x, "
                              "computed 0x%08x)",
                              stored, computed);
                error = msg;
                return false;
            }
        }
    }
    verify::JsonParseResult p = verify::parseJson(line);
    if (!p.ok) {
        error = p.error;
        return false;
    }
    const verify::JsonValue &v = p.value;
    if (!v.isObject()) {
        error = "ledger line is not a JSON object";
        return false;
    }
    out = LedgerRecord{};
    out.scenario = v.stringOr("scenario", "");
    out.arch = v.stringOr("arch", "");
    out.plan = v.stringOr("plan", "");
    out.config = v.stringOr("config", "");
    out.gitDescribe = v.stringOr("git", "");
    out.outcome = v.stringOr("outcome", "");
    if (out.scenario.empty()) {
        error = "missing \"scenario\"";
        return false;
    }
    if (!parseHex64(v.stringOr("seed", ""), out.seed)) {
        error = "missing or malformed \"seed\"";
        return false;
    }
    std::uint64_t digest = 0;
    if (parseHex64(v.stringOr("digest", ""), digest))
        out.digest = digest;
    for (const auto &[name, mv] : v.get("metrics").members) {
        if (mv.isNumber())
            out.metrics[name] = mv.number;
    }
    for (const auto &[name, ph] : v.get("phases").members) {
        if (!ph.isObject())
            continue;
        out.phaseCycles[name] =
            static_cast<std::uint64_t>(ph.numberOr("cycles", 0.0));
        out.phaseCalls[name] =
            static_cast<std::uint64_t>(ph.numberOr("calls", 0.0));
    }
    // The stored key is advisory (humans grep it); the authoritative
    // key is recomputed from the identity fields. A mismatch means the
    // line was hand-edited — surface it.
    std::uint64_t stored = 0;
    if (parseHex64(v.stringOr("key", ""), stored) &&
        stored != out.key()) {
        error = "stored key " + hex64(stored) +
                " does not match identity hash " + hex64(out.key());
        return false;
    }
    return true;
}

bool
Ledger::tornTruncateForTest(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        return false;
    std::string content{std::istreambuf_iterator<char>(is),
                        std::istreambuf_iterator<char>()};
    is.close();
    while (!content.empty() && content.back() == '\n')
        content.pop_back();
    if (content.empty())
        return false;
    // Keep the first half of the final line and drop its newline: the
    // shape a writer killed inside ::write() leaves behind.
    std::size_t lineStart = content.rfind('\n');
    lineStart = lineStart == std::string::npos ? 0 : lineStart + 1;
    const std::size_t keep =
        lineStart + (content.size() - lineStart) / 2;
    std::error_code ec;
    std::filesystem::resize_file(path, keep, ec);
    return !ec;
}

std::string
gitDescribe(const std::string &repoRoot)
{
    static std::map<std::string, std::string> cache;
    auto it = cache.find(repoRoot);
    if (it != cache.end())
        return it->second;

    std::string result;
    std::string cmd = "git ";
    if (!repoRoot.empty())
        cmd += "-C '" + repoRoot + "' ";
    cmd += "describe --always --dirty 2>/dev/null";
    if (FILE *pipe = ::popen(cmd.c_str(), "r")) {
        char buf[256];
        if (std::fgets(buf, sizeof buf, pipe) != nullptr) {
            result = buf;
            while (!result.empty() && (result.back() == '\n' ||
                                       result.back() == '\r'))
                result.pop_back();
        }
        ::pclose(pipe);
    }
    if (result.empty()) {
        if (const char *env = std::getenv("GPUCC_GIT_DESCRIBE"))
            result = env;
    }
    if (result.empty())
        result = "unknown";
    cache[repoRoot] = result;
    return result;
}

} // namespace gpucc::obs

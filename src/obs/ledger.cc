#include "obs/ledger.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/log.h"
#include "common/metrics/json_writer.h"
#include "verify/digest.h"
#include "verify/json.h"

namespace gpucc::obs
{

namespace
{

/** u64 <-> hex string: JSON numbers round-trip only 53 bits, and keys,
 *  seeds and digests use all 64, so they travel as "0x..." strings. */
std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
parseHex64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 16);
    return end != nullptr && *end == '\0';
}

} // namespace

std::uint64_t
LedgerRecord::key() const
{
    // Keyed splitmix64 sponge over exactly the identity fields: two
    // cells agree on the key iff they are the same (scenario, arch,
    // plan, seed, config, revision) point.
    verify::StateDigest d(0x6c656467ULL); // "ledg"
    d.str(scenario);
    d.str(arch);
    d.str(plan);
    d.str(config);
    d.u64(seed);
    d.str(gitDescribe);
    return d.value();
}

void
LedgerRecord::takePhases(const Profiler &p)
{
    phaseCycles.clear();
    phaseCalls.clear();
    for (const auto &[name, t] : p.phases()) {
        phaseCycles[name] = t.cycles;
        phaseCalls[name] = t.calls;
    }
}

Ledger::Ledger(std::string path) : filePath(std::move(path))
{
    std::error_code ec;
    auto dir = std::filesystem::path(filePath).parent_path();
    if (!dir.empty())
        std::filesystem::create_directories(dir, ec);
    if (ec)
        errors.push_back(filePath + ": " + ec.message());

    LedgerLoadResult loaded = load(filePath);
    for (const LedgerRecord &r : loaded.records)
        keys.insert(r.key());
    loadedCount = loaded.records.size();
    for (std::string &e : loaded.errors)
        errors.push_back(std::move(e));
}

bool
Ledger::append(const LedgerRecord &r)
{
    const std::uint64_t k = r.key();
    if (!keys.insert(k).second) {
        ++skippedCount;
        return false;
    }
    std::ofstream os(filePath, std::ios::app);
    if (!os.good()) {
        keys.erase(k);
        errors.push_back(filePath + ": cannot open for append");
        return false;
    }
    os << toJsonLine(r) << "\n";
    if (!os.good()) {
        keys.erase(k);
        errors.push_back(filePath + ": append write failed");
        return false;
    }
    ++appendedCount;
    return true;
}

LedgerLoadResult
Ledger::load(const std::string &path)
{
    LedgerLoadResult out;
    std::ifstream is(path);
    if (!is.good())
        return out; // absent file == empty ledger, not an error
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        LedgerRecord r;
        std::string err;
        if (parseLine(line, r, err)) {
            out.records.push_back(std::move(r));
        } else {
            out.errors.push_back(path + ":" + std::to_string(lineNo) +
                                 ": " + err);
        }
    }
    return out;
}

std::string
Ledger::toJsonLine(const LedgerRecord &r)
{
    std::ostringstream os;
    metrics::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("key", hex64(r.key()));
    w.field("scenario", r.scenario);
    w.field("arch", r.arch);
    w.field("plan", r.plan);
    w.field("config", r.config);
    w.field("seed", hex64(r.seed));
    w.field("git", r.gitDescribe);
    w.field("outcome", r.outcome);
    w.field("digest", hex64(r.digest));
    w.beginObject("metrics");
    for (const auto &[name, v] : r.metrics)
        w.field(name, v);
    w.endObject();
    w.beginObject("phases");
    for (const auto &[name, cycles] : r.phaseCycles) {
        w.beginObject(name);
        auto it = r.phaseCalls.find(name);
        w.field("calls", it == r.phaseCalls.end() ? std::uint64_t(0)
                                                  : it->second);
        w.field("cycles", cycles);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return os.str();
}

bool
Ledger::parseLine(const std::string &line, LedgerRecord &out,
                  std::string &error)
{
    verify::JsonParseResult p = verify::parseJson(line);
    if (!p.ok) {
        error = p.error;
        return false;
    }
    const verify::JsonValue &v = p.value;
    if (!v.isObject()) {
        error = "ledger line is not a JSON object";
        return false;
    }
    out = LedgerRecord{};
    out.scenario = v.stringOr("scenario", "");
    out.arch = v.stringOr("arch", "");
    out.plan = v.stringOr("plan", "");
    out.config = v.stringOr("config", "");
    out.gitDescribe = v.stringOr("git", "");
    out.outcome = v.stringOr("outcome", "");
    if (out.scenario.empty()) {
        error = "missing \"scenario\"";
        return false;
    }
    if (!parseHex64(v.stringOr("seed", ""), out.seed)) {
        error = "missing or malformed \"seed\"";
        return false;
    }
    std::uint64_t digest = 0;
    if (parseHex64(v.stringOr("digest", ""), digest))
        out.digest = digest;
    for (const auto &[name, mv] : v.get("metrics").members) {
        if (mv.isNumber())
            out.metrics[name] = mv.number;
    }
    for (const auto &[name, ph] : v.get("phases").members) {
        if (!ph.isObject())
            continue;
        out.phaseCycles[name] =
            static_cast<std::uint64_t>(ph.numberOr("cycles", 0.0));
        out.phaseCalls[name] =
            static_cast<std::uint64_t>(ph.numberOr("calls", 0.0));
    }
    // The stored key is advisory (humans grep it); the authoritative
    // key is recomputed from the identity fields. A mismatch means the
    // line was hand-edited — surface it.
    std::uint64_t stored = 0;
    if (parseHex64(v.stringOr("key", ""), stored) &&
        stored != out.key()) {
        error = "stored key " + hex64(stored) +
                " does not match identity hash " + hex64(out.key());
        return false;
    }
    return true;
}

std::string
gitDescribe(const std::string &repoRoot)
{
    static std::map<std::string, std::string> cache;
    auto it = cache.find(repoRoot);
    if (it != cache.end())
        return it->second;

    std::string result;
    std::string cmd = "git ";
    if (!repoRoot.empty())
        cmd += "-C '" + repoRoot + "' ";
    cmd += "describe --always --dirty 2>/dev/null";
    if (FILE *pipe = ::popen(cmd.c_str(), "r")) {
        char buf[256];
        if (std::fgets(buf, sizeof buf, pipe) != nullptr) {
            result = buf;
            while (!result.empty() && (result.back() == '\n' ||
                                       result.back() == '\r'))
                result.pop_back();
        }
        ::pclose(pipe);
    }
    if (result.empty()) {
        if (const char *env = std::getenv("GPUCC_GIT_DESCRIBE"))
            result = env;
    }
    if (result.empty())
        result = "unknown";
    cache[repoRoot] = result;
    return result;
}

} // namespace gpucc::obs

#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>

#include "common/metrics/json_writer.h"
#include "covert/league/league.h"
#include "gpu/arch_params.h"
#include "sim/exec/sweep_runner.h"
#include "verify/json.h"
#include "verify/scenarios.h"

namespace gpucc::obs
{

namespace
{

/** The fault plans the session-robustness cells run under. */
constexpr const char *kSessionPlans[] = {"quiet", "eviction"};
constexpr std::size_t kSessionPayloadBits = 96;

std::string
cellId(const LedgerRecord &r)
{
    std::ostringstream os;
    os << r.scenario << '/' << r.arch << '/' << r.plan << '/' << r.config
       << "/0x" << std::hex << r.seed;
    return os.str();
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

} // namespace

// ---- fresh sweep -> ledger ------------------------------------------

SweepOutcome
runObservabilitySweep(const SweepReportOptions &opts, Profiler &profiler)
{
    SweepOutcome out;
    const std::string rev =
        opts.gitRev.empty() ? gitDescribe() : opts.gitRev;
    const unsigned seeds = std::max(1u, opts.seedsPerCell);
    const auto archs = gpu::allArchitectures();

    // Session-robustness cells: plan-major, then arch, then seed — a
    // cell's seed is a pure function of its grid position, exactly the
    // SweepRunner contract.
    struct SessionCell
    {
        std::size_t plan;
        std::size_t arch;
    };
    std::vector<SessionCell> sessionCells;
    for (std::size_t p = 0; p < std::size(kSessionPlans); ++p)
        for (std::size_t a = 0; a < archs.size(); ++a)
            for (unsigned s = 0; s < seeds; ++s)
                sessionCells.push_back({p, a});

    sim::exec::SweepRunner runner(opts.threads);
    std::vector<Profiler> cellProfs(sessionCells.size());
    auto sessionRecords = runner.runTrials(
        sessionCells.size(), opts.seedBase,
        [&](std::size_t i, std::uint64_t seed) {
            const SessionCell &c = sessionCells[i];
            const BitVec payload =
                verify::scenarioPayload(kSessionPayloadBits, seed);
            verify::SessionMeasurement m = verify::measureSessionOverPlan(
                archs[c.arch], kSessionPlans[c.plan], seed, payload,
                &cellProfs[i]);
            LedgerRecord r;
            r.scenario = "session_robustness";
            r.arch = gpu::generationName(archs[c.arch].generation);
            r.plan = kSessionPlans[c.plan];
            r.config = "payload96|w4";
            r.seed = seed;
            r.gitDescribe = rev;
            r.outcome = m.complete ? "complete" : "incomplete";
            r.digest = m.deviceDigest;
            r.metrics["goodput_bps"] = m.goodputBps;
            r.metrics["residual_ber"] = m.residualBer;
            r.metrics["resyncs"] = m.resyncs;
            r.metrics["recalibrations"] = m.recalibrations;
            r.metrics["degrade_steps"] = m.degradeSteps;
            r.metrics["evictions"] = m.evictions;
            r.takePhases(cellProfs[i]);
            return r;
        });
    for (const Profiler &p : cellProfs)
        profiler.merge(p);

    std::vector<LedgerRecord> leagueRecords;
    if (opts.league) {
        // League cells: the acceptance pairing (agile attacker vs no
        // defense and vs the capped reactive defender) per arch, one
        // seed each — enough to trend residual capacity and failover
        // phase costs without re-running the whole tournament.
        const covert::league::AttackerSpec atk =
            covert::league::agileAttacker();
        const std::vector<covert::league::DefenderSpec> defs = {
            covert::league::noDefense(),
            covert::league::cappedReactiveDefense()};
        struct LeagueCell
        {
            std::size_t def;
            std::size_t arch;
        };
        std::vector<LeagueCell> cells;
        for (std::size_t d = 0; d < defs.size(); ++d)
            for (std::size_t a = 0; a < archs.size(); ++a)
                cells.push_back({d, a});
        std::vector<Profiler> lgProfs(cells.size());
        leagueRecords = runner.runTrials(
            cells.size(), opts.seedBase ^ 0x6c67ULL,
            [&](std::size_t i, std::uint64_t seed) {
                const LeagueCell &c = cells[i];
                covert::league::CellResult cr =
                    covert::league::runLeagueCell(archs[c.arch], atk,
                                                  defs[c.def], seed,
                                                  &lgProfs[i]);
                LedgerRecord r;
                r.scenario = "league";
                r.arch = cr.arch;
                r.plan = cr.defender;
                r.config = cr.attacker;
                r.seed = seed;
                r.gitDescribe = rev;
                r.outcome = cr.complete ? "complete" : "incomplete";
                r.digest = cr.deviceDigest;
                r.metrics["goodput_bps"] = cr.goodputBps;
                r.metrics["residual_capacity_bps"] =
                    cr.residualCapacityBps;
                r.metrics["residual_ber"] = cr.residualBer;
                r.metrics["failovers"] = cr.failovers;
                r.metrics["seconds"] = cr.seconds;
                r.takePhases(lgProfs[i]);
                return r;
            });
        for (const Profiler &p : lgProfs)
            profiler.merge(p);
    }

    out.records = std::move(sessionRecords);
    out.records.insert(out.records.end(), leagueRecords.begin(),
                       leagueRecords.end());

    if (!opts.ledgerPath.empty()) {
        Ledger ledger(opts.ledgerPath);
        for (const std::string &e : ledger.loadErrors())
            out.errors.push_back(e);
        for (const LedgerRecord &r : out.records)
            ledger.append(r);
        out.appended = ledger.appended();
        out.skipped = ledger.skipped();
    }
    return out;
}

// ---- ledger trend sentry --------------------------------------------

unsigned
TrendReport::regressions() const
{
    unsigned n = 0;
    for (const TrendDelta &d : deltas)
        n += d.regressed ? 1 : 0;
    return n;
}

unsigned
TrendReport::improvements() const
{
    unsigned n = 0;
    for (const TrendDelta &d : deltas)
        n += d.improved ? 1 : 0;
    return n;
}

bool
metricHigherIsBetter(const std::string &metric)
{
    // Cost/error-flavored names are lower-better; everything else
    // (goodput_bps, residual_capacity_bps, items_per_second) counts
    // up. "residual_capacity" must win over the "residual" error cue.
    if (metric.find("capacity") != std::string::npos)
        return true;
    static constexpr const char *kLower[] = {
        "ber",      "error",   "seconds", "cycles",  "resync",
        "desync",   "evict",   "degrade", "failover", "recalibration",
        "wall",     "dropped", "retrans"};
    for (const char *cue : kLower) {
        if (metric.find(cue) != std::string::npos)
            return false;
    }
    return true;
}

TrendReport
analyzeLedgerTrends(const std::vector<LedgerRecord> &records,
                    const TrendOptions &opts)
{
    TrendReport rep;
    if (records.empty())
        return rep;

    // Revision order = first-appearance order in the file; the ledger
    // is append-only, so the last record's revision is the newest.
    rep.latestRev = records.back().gitDescribe;
    {
        std::vector<std::string> seen;
        for (const LedgerRecord &r : records) {
            if (std::find(seen.begin(), seen.end(), r.gitDescribe) ==
                seen.end())
                seen.push_back(r.gitDescribe);
        }
        rep.revisions = static_cast<unsigned>(seen.size());
    }
    if (rep.revisions < 2) {
        rep.notes.push_back("single revision in ledger: nothing to "
                            "compare against yet");
        return rep;
    }

    // cell -> metric -> (prior values, latest value).
    struct Series
    {
        std::vector<double> prior;
        double latest = 0.0;
        bool haveLatest = false;
    };
    std::map<std::string, std::map<std::string, Series>> byCell;
    for (const LedgerRecord &r : records) {
        const std::string cell = cellId(r);
        const bool isLatest = r.gitDescribe == rep.latestRev;
        auto feed = [&](const std::string &metric, double v) {
            Series &s = byCell[cell][metric];
            if (isLatest) {
                s.latest = v;
                s.haveLatest = true;
            } else {
                s.prior.push_back(v);
            }
        };
        for (const auto &[name, v] : r.metrics)
            feed(name, v);
        for (const auto &[phase, cyc] : r.phaseCycles)
            feed("phase." + phase + ".cycles",
                 static_cast<double>(cyc));
    }

    for (const auto &[cell, metrics] : byCell) {
        for (const auto &[metric, s] : metrics) {
            if (!s.haveLatest || s.prior.empty())
                continue;
            TrendDelta d;
            d.cell = cell;
            d.metric = metric;
            d.baseline = median(s.prior);
            d.latest = s.latest;
            d.higherIsBetter = metricHigherIsBetter(metric);
            const double mag =
                std::max(std::fabs(d.baseline), std::fabs(d.latest));
            if (mag < opts.minMagnitude) {
                continue; // both effectively zero: no signal
            }
            const double base = std::fabs(d.baseline) > 0.0
                                    ? std::fabs(d.baseline)
                                    : mag;
            d.relDelta = (d.latest - d.baseline) / base;
            const bool worse = d.higherIsBetter ? d.relDelta < 0.0
                                                : d.relDelta > 0.0;
            if (std::fabs(d.relDelta) > opts.noiseBand) {
                d.regressed = worse;
                d.improved = !worse;
            }
            rep.deltas.push_back(std::move(d));
        }
    }
    // Most severe first, regressions ahead of improvements/noise.
    std::sort(rep.deltas.begin(), rep.deltas.end(),
              [](const TrendDelta &a, const TrendDelta &b) {
                  if (a.regressed != b.regressed)
                      return a.regressed;
                  return std::fabs(a.relDelta) > std::fabs(b.relDelta);
              });
    return rep;
}

// ---- simperf comparison ---------------------------------------------

SimperfReport
compareSimperf(const std::string &committedPath,
               const std::string &freshPath, double threshold,
               double slowdownInject)
{
    SimperfReport rep;
    rep.threshold = threshold;

    verify::JsonParseResult committed =
        verify::parseJsonFile(committedPath);
    if (!committed.ok) {
        rep.errors.push_back(committedPath + ": " + committed.error);
        return rep;
    }
    verify::JsonParseResult fresh = verify::parseJsonFile(freshPath);
    if (!fresh.ok) {
        rep.errors.push_back(freshPath + ": " + fresh.error);
        return rep;
    }

    // The committed "current" section is the record to beat; files
    // that predate a current section fall back to their baseline.
    const verify::JsonValue *reference =
        &committed.value.get("current").get("metrics");
    if (!reference->isObject() || reference->members.empty())
        reference = &committed.value.get("baseline").get("metrics");
    const verify::JsonValue &measured =
        fresh.value.get("current").get("metrics");
    if (!reference->isObject() || reference->members.empty()) {
        rep.errors.push_back(committedPath +
                             ": no current/baseline metrics section");
        return rep;
    }
    if (!measured.isObject()) {
        rep.errors.push_back(freshPath + ": no current.metrics section");
        return rep;
    }

    const double scale = 1.0 - slowdownInject;
    for (const auto &[name, ref] : reference->members) {
        const double refIps = ref.numberOr("items_per_second", 0.0);
        if (!(refIps > 0.0) || !measured.has(name))
            continue;
        const double curIps =
            measured.get(name).numberOr("items_per_second", 0.0) * scale;
        SimperfRow row;
        row.benchmark = name;
        row.ratio = curIps / refIps;
        row.regressed = row.ratio < threshold;
        if (row.regressed)
            rep.regressions.push_back(name);
        rep.rows.push_back(std::move(row));
    }
    if (rep.rows.empty())
        rep.errors.push_back("no comparable benchmarks between " +
                             committedPath + " and " + freshPath);
    return rep;
}

// ---- conformance band margins ---------------------------------------

std::vector<BandMargin>
loadBandMargins(const std::string &reportPath,
                std::vector<std::string> &errors)
{
    std::vector<BandMargin> out;
    verify::JsonParseResult parsed = verify::parseJsonFile(reportPath);
    if (!parsed.ok) {
        errors.push_back(reportPath + ": " + parsed.error);
        return out;
    }
    const verify::JsonValue &checks = parsed.value.get("checks");
    if (!checks.isArray()) {
        errors.push_back(reportPath + ": no checks array");
        return out;
    }
    for (const verify::JsonValue &c : checks.items) {
        BandMargin m;
        m.scenario = c.stringOr("scenario", "");
        m.arch = c.stringOr("arch", "");
        m.metric = c.stringOr("metric", "");
        m.lo = c.numberOr("lo", 0.0);
        m.hi = c.numberOr("hi", 0.0);
        m.measured = c.numberOr("measured", 0.0);
        m.pass = c.get("pass").boolean;
        const double width = m.hi - m.lo;
        if (width > 0.0) {
            m.marginFrac = std::min(m.measured - m.lo,
                                    m.hi - m.measured) /
                           width;
        } else {
            m.marginFrac = m.pass ? 0.5 : -1.0; // point band
        }
        out.push_back(std::move(m));
    }
    // Thinnest margins first: that is the watch list.
    std::sort(out.begin(), out.end(),
              [](const BandMargin &a, const BandMargin &b) {
                  return a.marginFrac < b.marginFrac;
              });
    return out;
}

// ---- dashboard ------------------------------------------------------

int
ReportOutcome::exitCode() const
{
    if (!errors.empty() || !simperf.errors.empty() ||
        !sweep.errors.empty())
        return 2;
    if (trends.regressions() > 0)
        return 1;
    if (simperfFatal && !simperf.regressions.empty())
        return 1;
    for (const BandMargin &m : margins) {
        if (!m.pass)
            return 1;
    }
    return 0;
}

namespace
{

/** Aggregate per-phase cycle costs over the newest revision. */
std::map<std::string, PhaseTotals>
latestPhaseCosts(const std::vector<LedgerRecord> &history)
{
    std::map<std::string, PhaseTotals> out;
    if (history.empty())
        return out;
    const std::string &rev = history.back().gitDescribe;
    for (const LedgerRecord &r : history) {
        if (r.gitDescribe != rev)
            continue;
        for (const auto &[phase, cyc] : r.phaseCycles) {
            PhaseTotals &t = out[phase];
            t.cycles += cyc;
            auto it = r.phaseCalls.find(phase);
            t.calls += it != r.phaseCalls.end() ? it->second : 0;
        }
    }
    return out;
}

} // namespace

void
writeDashboardMd(const ReportOutcome &o, std::ostream &os)
{
    os << "# gpucc run report\n\n";
    if (!o.history.empty())
        os << "Ledger: " << o.history.size() << " records, "
           << o.trends.revisions << " revision(s), newest `"
           << o.trends.latestRev << "`.\n\n";
    if (o.sweep.appended + o.sweep.skipped > 0)
        os << "Sweep: " << o.sweep.records.size() << " cells run, "
           << o.sweep.appended << " appended, " << o.sweep.skipped
           << " deduplicated.\n\n";

    for (const std::string &e : o.errors)
        os << "**ERROR**: " << e << "\n\n";

    // Slowest phases of the newest revision (the budget table).
    auto phases = latestPhaseCosts(o.history);
    if (!phases.empty()) {
        std::vector<std::pair<std::string, PhaseTotals>> rows(
            phases.begin(), phases.end());
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.cycles > b.second.cycles;
                  });
        std::uint64_t total = 0;
        for (const auto &[name, t] : rows)
            total += t.cycles;
        os << "## Slowest phases (simulated cycles, newest revision)\n\n"
           << "| phase | cycles | calls | share |\n"
           << "|-------|-------:|------:|------:|\n";
        for (const auto &[name, t] : rows) {
            const double share =
                total ? 100.0 * double(t.cycles) / double(total) : 0.0;
            os << "| " << name << " | " << t.cycles << " | " << t.calls
               << " | " << std::fixed;
            os.precision(1);
            os << share << "% |\n";
            os.unsetf(std::ios::fixed);
            os.precision(6);
        }
        os << "\n";
    }

    // Capacity curves: league residual capacity per defender/arch.
    {
        bool any = false;
        std::ostringstream table;
        table << "## Residual capacity (league cells, newest "
                 "revision)\n\n"
              << "| arch | defender | attacker | capacity bps | goodput "
                 "bps | failovers |\n"
              << "|------|----------|----------|-------------:|--------"
                 "----:|----------:|\n";
        const std::string rev =
            o.history.empty() ? "" : o.history.back().gitDescribe;
        for (const LedgerRecord &r : o.history) {
            if (r.scenario != "league" || r.gitDescribe != rev)
                continue;
            any = true;
            auto metric = [&](const char *n) {
                auto it = r.metrics.find(n);
                return it != r.metrics.end() ? it->second : 0.0;
            };
            table << "| " << r.arch << " | " << r.plan << " | "
                  << r.config << " | " << metric("residual_capacity_bps")
                  << " | " << metric("goodput_bps") << " | "
                  << metric("failovers") << " |\n";
        }
        if (any)
            os << table.str() << "\n";
    }

    // Trend sentry verdict.
    os << "## Trend sentry\n\n";
    if (o.trends.deltas.empty()) {
        os << "No judged metrics";
        for (const std::string &n : o.trends.notes)
            os << " (" << n << ")";
        os << ".\n\n";
    } else {
        os << o.trends.regressions() << " regression(s), "
           << o.trends.improvements() << " improvement(s) beyond the "
           << "noise band.\n\n"
           << "| cell | metric | baseline | latest | delta | verdict |\n"
           << "|------|--------|---------:|-------:|------:|---------|\n";
        for (const TrendDelta &d : o.trends.deltas) {
            const char *verdict = d.regressed    ? "**REGRESSED**"
                                  : d.improved   ? "improved"
                                                 : "within noise";
            os << "| " << d.cell << " | " << d.metric << " | "
               << d.baseline << " | " << d.latest << " | ";
            os.precision(1);
            os << std::fixed << 100.0 * d.relDelta << "% |";
            os.unsetf(std::ios::fixed);
            os.precision(6);
            os << " " << verdict << " |\n";
        }
        os << "\n";
    }

    // Simperf comparison.
    if (!o.simperf.rows.empty() || !o.simperf.errors.empty()) {
        os << "## Simulator performance vs committed record\n\n";
        for (const std::string &e : o.simperf.errors)
            os << "**ERROR**: " << e << "\n\n";
        if (!o.simperf.rows.empty()) {
            os << "| benchmark | ratio | verdict |\n"
               << "|-----------|------:|---------|\n";
            for (const SimperfRow &r : o.simperf.rows) {
                os << "| " << r.benchmark << " | ";
                os.precision(2);
                os << std::fixed << r.ratio;
                os.unsetf(std::ios::fixed);
                os.precision(6);
                os << "x | "
                   << (r.regressed ? "**REGRESSED** (>15% slower)"
                                   : "ok")
                   << " |\n";
            }
            os << "\n";
        }
    }

    // Band margins (thinnest first — the watch list).
    if (!o.margins.empty()) {
        os << "## Conformance band margins (thinnest first)\n\n"
           << "| scenario | arch | metric | band | measured | margin |"
              " pass |\n"
           << "|----------|------|--------|------|---------:|-------:|"
              "------|\n";
        for (const BandMargin &m : o.margins) {
            os << "| " << m.scenario << " | " << m.arch << " | "
               << m.metric << " | [" << m.lo << ", " << m.hi << "] | "
               << m.measured << " | ";
            os.precision(2);
            os << std::fixed << m.marginFrac;
            os.unsetf(std::ios::fixed);
            os.precision(6);
            os << " | " << (m.pass ? "yes" : "**NO**") << " |\n";
        }
        os << "\n";
    }

    os << "Exit code: " << o.exitCode() << "\n";
}

void
writeDashboardJson(const ReportOutcome &o, std::ostream &os)
{
    metrics::JsonWriter w(os, true);
    w.beginObject();
    w.field("exit_code", static_cast<std::int64_t>(o.exitCode()));

    w.beginObject("sweep");
    w.field("cells", std::uint64_t(o.sweep.records.size()));
    w.field("appended", std::uint64_t(o.sweep.appended));
    w.field("skipped", std::uint64_t(o.sweep.skipped));
    w.endObject();

    w.beginObject("trends");
    w.field("latest_rev", o.trends.latestRev);
    w.field("revisions", std::uint64_t(o.trends.revisions));
    w.field("regressions", std::uint64_t(o.trends.regressions()));
    w.field("improvements", std::uint64_t(o.trends.improvements()));
    w.beginArray("deltas");
    for (const TrendDelta &d : o.trends.deltas) {
        w.beginObject();
        w.field("cell", d.cell);
        w.field("metric", d.metric);
        w.field("baseline", d.baseline);
        w.field("latest", d.latest);
        w.field("rel_delta", d.relDelta);
        w.field("higher_is_better", d.higherIsBetter);
        w.field("regressed", d.regressed);
        w.field("improved", d.improved);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.beginObject("simperf");
    w.field("threshold", o.simperf.threshold);
    w.beginArray("rows");
    for (const SimperfRow &r : o.simperf.rows) {
        w.beginObject();
        w.field("benchmark", r.benchmark);
        w.field("ratio_vs_committed", r.ratio);
        w.field("regressed", r.regressed);
        w.endObject();
    }
    w.endArray();
    w.beginArray("regressions");
    for (const std::string &n : o.simperf.regressions)
        w.value(n);
    w.endArray();
    w.beginArray("errors");
    for (const std::string &e : o.simperf.errors)
        w.value(e);
    w.endArray();
    w.endObject();

    w.beginArray("band_margins");
    for (const BandMargin &m : o.margins) {
        w.beginObject();
        w.field("scenario", m.scenario);
        w.field("arch", m.arch);
        w.field("metric", m.metric);
        w.field("lo", m.lo);
        w.field("hi", m.hi);
        w.field("measured", m.measured);
        w.field("margin_frac", m.marginFrac);
        w.field("pass", m.pass);
        w.endObject();
    }
    w.endArray();

    w.beginArray("errors");
    for (const std::string &e : o.errors)
        w.value(e);
    for (const std::string &e : o.sweep.errors)
        w.value(e);
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace gpucc::obs

/**
 * @file
 * Regression sentry and run-scale dashboard (the gpucc_report CLI).
 *
 * Three analysis passes, composable and individually optional:
 *
 *  - **Ledger trends**: group run-ledger records by cell identity
 *    (everything but the git revision), compare the newest revision's
 *    metrics against the median of prior revisions, and flag moves
 *    beyond a noise band in the metric's "worse" direction. Phase
 *    cycle costs participate as `phase.<name>.cycles` (lower-better),
 *    so a protocol change that silently doubles resync spending trips
 *    the sentry even when goodput survives.
 *  - **Simperf comparison**: the committed BENCH_simperf.json record
 *    vs a fresh bench_simperf run — the gate check.sh used to compute
 *    with an inline python heredoc, ported here so it runs wherever
 *    the binaries do. A tracked metric below `threshold` (default
 *    0.85) of the committed items/s is a regression.
 *  - **Band margins**: how much headroom each conformance check has
 *    left inside its expected-value band, from the machine-readable
 *    conformance_report.json. A passing check with a thin margin is
 *    the early warning a pass/fail bit cannot give.
 *
 * runObservabilitySweep() produces fresh ledger input: profiled
 * session-robustness cells (plans x archs x seeds) and league cells
 * (attacker vs defender), each appended content-addressed so re-runs
 * of unchanged code append nothing.
 *
 * The dashboard renders all of it as markdown and/or JSON; exit-code
 * policy lives in ReportOutcome (0 clean, 1 regression, 2 error).
 */

#ifndef GPUCC_OBS_REPORT_H
#define GPUCC_OBS_REPORT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/ledger.h"

namespace gpucc::obs
{

// ---- fresh sweep -> ledger ------------------------------------------

/** Shape of the observability sweep gpucc_report --sweep runs. */
struct SweepReportOptions
{
    std::string ledgerPath;     //!< JSONL ledger to append to
    unsigned seedsPerCell = 2;  //!< seeds per (scenario, arch, plan)
    std::uint64_t seedBase = 2017;
    std::string gitRev;         //!< empty = gitDescribe()
    unsigned threads = 0;       //!< SweepRunner workers (0 = env)
    bool league = true;         //!< include the league cells
};

/** What a sweep produced and what the ledger kept. */
struct SweepOutcome
{
    std::vector<LedgerRecord> records; //!< every cell, pre-dedup
    std::size_t appended = 0;          //!< new keys written
    std::size_t skipped = 0;           //!< keys already present
    std::vector<std::string> errors;
};

/**
 * Run the profiled observability sweep: session_robustness cells
 * ({quiet, eviction} plans x all archs x seeds) and, when enabled,
 * league cells (agile attacker vs none/reactive defenders x archs).
 * Per-cell phase costs land in each record and, merged in cell-index
 * order, in @p profiler. Deterministic per (options, code revision).
 */
SweepOutcome runObservabilitySweep(const SweepReportOptions &opts,
                                   Profiler &profiler);

// ---- ledger trend sentry --------------------------------------------

struct TrendOptions
{
    /** Relative move (vs the prior-revision median) treated as noise.
     *  Beyond it, in the metric's worse direction, is a regression. */
    double noiseBand = 0.15;
    /** Metric magnitudes below this never regress (a 0.001 -> 0.002
     *  residual BER is not a finding). */
    double minMagnitude = 1e-9;
};

/** One metric of one cell, newest revision vs history. */
struct TrendDelta
{
    std::string cell;   //!< "scenario/arch/plan/config/seed"
    std::string metric;
    double baseline = 0.0; //!< median over prior revisions
    double latest = 0.0;
    double relDelta = 0.0; //!< (latest - baseline) / |baseline|
    bool higherIsBetter = true;
    bool regressed = false;
    bool improved = false; //!< moved past the band the good way
};

/** The sentry's verdict over a ledger history. */
struct TrendReport
{
    std::vector<TrendDelta> deltas; //!< every judged metric
    std::string latestRev;          //!< revision under judgment
    unsigned revisions = 0;         //!< distinct revisions seen
    std::vector<std::string> notes; //!< skipped cells, thin history

    unsigned regressions() const;
    unsigned improvements() const;
};

/** Is a larger value of @p metric better? Name-driven: error/latency/
 *  cost-flavored metrics are lower-better, throughput higher-better. */
bool metricHigherIsBetter(const std::string &metric);

/** Judge the newest revision in @p records against its history. */
TrendReport analyzeLedgerTrends(const std::vector<LedgerRecord> &records,
                                const TrendOptions &opts = {});

// ---- simperf comparison ---------------------------------------------

struct SimperfRow
{
    std::string benchmark;
    double ratio = 0.0; //!< fresh items/s over committed items/s
    bool regressed = false;
};

struct SimperfReport
{
    std::vector<SimperfRow> rows;
    std::vector<std::string> regressions; //!< benchmark names
    double threshold = 0.85;
    std::vector<std::string> errors;

    bool ok() const { return errors.empty() && regressions.empty(); }
};

/**
 * Compare a fresh bench_simperf JSON against the committed record.
 * Reference metrics come from the committed file's "current" section
 * (falling back to "baseline"); a fresh items/s below
 * threshold x reference is a regression. @p slowdownInject scales the
 * fresh numbers down first (sentry self-test hook; 0 = off).
 */
SimperfReport compareSimperf(const std::string &committedPath,
                             const std::string &freshPath,
                             double threshold = 0.85,
                             double slowdownInject = 0.0);

// ---- conformance band margins ---------------------------------------

/** Headroom of one conformance check inside its band. */
struct BandMargin
{
    std::string scenario;
    std::string arch;
    std::string metric;
    double lo = 0.0;
    double hi = 0.0;
    double measured = 0.0;
    /** Distance to the nearest band edge as a fraction of the band
     *  width (0.5 = dead center, 0 = on an edge, negative = outside).
     *  Point bands [v, v] report 0.5 on pass, -1 on fail. */
    double marginFrac = 0.0;
    bool pass = false;
};

/** Extract margins from a conformance_report.json (writeConformanceJson
 *  schema). Load problems land in @p errors. */
std::vector<BandMargin> loadBandMargins(const std::string &reportPath,
                                        std::vector<std::string> &errors);

// ---- dashboard ------------------------------------------------------

/** Everything one gpucc_report invocation decided. */
struct ReportOutcome
{
    SweepOutcome sweep;            //!< empty unless --sweep ran
    TrendReport trends;            //!< empty unless a ledger loaded
    SimperfReport simperf;         //!< empty unless simperf compared
    std::vector<BandMargin> margins;
    std::vector<LedgerRecord> history; //!< full ledger, file order
    std::vector<std::string> errors;
    bool simperfFatal = true;      //!< count simperf toward exit code

    /** 0 = clean, 1 = regression(s), 2 = load/usage error. */
    int exitCode() const;
};

/** Render the dashboard as markdown. */
void writeDashboardMd(const ReportOutcome &o, std::ostream &os);

/** Render the dashboard as JSON (CI artifact schema). */
void writeDashboardJson(const ReportOutcome &o, std::ostream &os);

} // namespace gpucc::obs

#endif // GPUCC_OBS_REPORT_H

/**
 * @file
 * Content-addressed run ledger: the persistent memory of every sweep,
 * conformance pass, league tournament and bench the repository runs.
 *
 * Each executed cell — one (scenario, arch, plan, seed, config) point
 * at one code revision — becomes one JSONL record keyed by a splitmix64
 * content hash of exactly those identity fields. The ledger is
 * append-only: opening it loads the existing key set, and appending a
 * record whose key is already present is a no-op, so repeated CI runs
 * of unchanged code add zero bytes while a new revision (a new
 * git-describe) appends exactly its delta. That is the content-
 * addressed result-cache discipline the ROADMAP's distributed sweep
 * service needs, grown bottom-up from a flat file.
 *
 * A record stores what the regression sentry consumes: the outcome
 * string, the cell's numeric metrics (goodput, residual BER, capacity,
 * bench items/s — anything scalar), the per-phase cycle costs from an
 * obs::Profiler, and the device digest. Cycle costs and the key are
 * pure functions of the simulation, so ledger files produced at
 * different GPUCC_THREADS are byte-identical (obs_test pins this).
 *
 * File format: one JSON object per line ("\n"-separated), no framing
 * header, written through the shared JsonWriter and read back with the
 * verify JSON parser — corrupt or foreign lines are reported, not
 * silently skipped.
 *
 * Crash consistency: every line carries a trailing "crc" field — a
 * CRC-32 over the rest of the line — so a writer killed mid-append
 * (a torn write) leaves a tail that is *detected*, never silently
 * parsed as data. A file that does not end in '\n' is flagged as torn;
 * the next append() repairs the framing by terminating the torn line
 * before writing, so one crashed worker can never brick the ledger:
 * prior records survive, the torn tail is reported, and the repaired
 * file appends cleanly forever after. This is what lets the sweep
 * service (src/svc) use the ledger as its crash-consistent,
 * content-addressed result store.
 */

#ifndef GPUCC_OBS_LEDGER_H
#define GPUCC_OBS_LEDGER_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/profiler.h"

namespace gpucc::obs
{

/** One run-ledger entry: a cell's identity plus its costs/outcome. */
struct LedgerRecord
{
    // ---- identity: these six fields define the content key ----
    std::string scenario; //!< e.g. "session_robustness", "league"
    std::string arch;     //!< generation name ("Kepler", ...)
    std::string plan;     //!< fault plan / defender ("quiet", ...)
    std::string config;   //!< free-form cell config ("agile|96b", ...)
    std::uint64_t seed = 0;
    std::string gitDescribe; //!< code revision the cell ran at

    // ---- payload ----
    std::string outcome; //!< "complete", "incomplete", "error", ...
    std::uint64_t digest = 0; //!< device/league digest of the cell
    /** Scalar metrics (goodput_bps, residual_ber, capacity_bps, ...). */
    std::map<std::string, double> metrics;
    /** Per-phase simulated-cycle costs (profiler cycles; wall time is
     *  machine-dependent and deliberately not persisted). */
    std::map<std::string, std::uint64_t> phaseCycles;
    /** Per-phase call counts (same keys as phaseCycles). */
    std::map<std::string, std::uint64_t> phaseCalls;

    /** splitmix64 content hash of the six identity fields. */
    std::uint64_t key() const;

    /** Copy phases out of @p p (cycles + calls, wall dropped). */
    void takePhases(const Profiler &p);
};

/** Result of loading a ledger file. */
struct LedgerLoadResult
{
    std::vector<LedgerRecord> records; //!< file order == append order
    std::vector<std::string> errors;   //!< unparsable lines, I/O faults
    /** File does not end in '\n': the final append was torn (writer
     *  killed mid-record). The tail line is reported in errors when it
     *  fails parse/CRC; either way the next append() must repair the
     *  framing first. */
    bool tornTail = false;
};

/** Append-only, dedup-on-key JSONL ledger. */
class Ledger
{
  public:
    /**
     * Open (creating parent directories and the file as needed) and
     * index the existing records' keys. Load problems are recorded in
     * loadErrors(), never thrown: a truncated final line from a killed
     * CI run must not brick the ledger.
     */
    explicit Ledger(std::string path);

    /**
     * Open @p path, adopting @p preloaded (a prior load() of the same
     * file) instead of reading it again. For callers that need the
     * record payloads anyway (ResultStore keeps them cached), this
     * parses the file exactly once.
     */
    Ledger(std::string path, const LedgerLoadResult &preloaded);

    /** @return true when the record was appended; false when its key
     *  was already present (the dedup path) or the write failed. */
    bool append(const LedgerRecord &r);

    /** Records already present when the ledger was opened. */
    std::size_t preexisting() const { return loadedCount; }
    /** Records appended through this handle. */
    std::size_t appended() const { return appendedCount; }
    /** append() calls skipped because the key existed. */
    std::size_t skipped() const { return skippedCount; }

    /** @return true when @p key is present (loaded or appended). */
    bool contains(std::uint64_t key) const
    {
        return keys.count(key) != 0;
    }

    const std::string &path() const { return filePath; }
    const std::vector<std::string> &loadErrors() const { return errors; }

    /** Parse a ledger file into records (static: analysis tools read
     *  ledgers they do not own). */
    static LedgerLoadResult load(const std::string &path);

    /** Serialize one record as a single JSONL line (no newline). The
     *  line's last field is "crc", a CRC-32 over everything before it. */
    static std::string toJsonLine(const LedgerRecord &r);

    /** Parse one JSONL line. @return false (with @p error set) when
     *  the line is not a well-formed ledger record or its CRC does not
     *  match (a torn or corrupted write). */
    static bool parseLine(const std::string &line, LedgerRecord &out,
                          std::string &error);

    /** CRC-32 (reflected, poly 0xEDB88320) of @p s — the per-line
     *  checksum (exposed for tests). */
    static std::uint32_t lineCrc(const std::string &s);

    /** True when the file ended in a torn write and the framing repair
     *  (a '\n' before the next record) is still pending. */
    bool repairPending() const { return repairNeeded; }

    /** Chaos-test hook: truncate @p path mid-way through its final
     *  record, simulating a writer killed inside ::write(). @return
     *  false when the file is missing or empty. */
    static bool tornTruncateForTest(const std::string &path);

  private:
    /** Shared open path: index keys and record load problems from one
     *  (fresh or caller-supplied) load of filePath. */
    void adopt(const LedgerLoadResult &loaded);

    std::string filePath;
    std::set<std::uint64_t> keys;
    std::vector<std::string> errors;
    std::size_t loadedCount = 0;
    std::size_t appendedCount = 0;
    std::size_t skippedCount = 0;
    bool repairNeeded = false;
};

/**
 * Best-effort `git describe --always --dirty` of @p repoRoot (empty =
 * current directory), cached per path. Falls back to the
 * GPUCC_GIT_DESCRIBE environment variable, then to "unknown", so
 * ledger keys stay well-defined in export tarballs without .git.
 * Deterministic tests pass an explicit string instead of calling this.
 */
std::string gitDescribe(const std::string &repoRoot = "");

} // namespace gpucc::obs

#endif // GPUCC_OBS_LEDGER_H

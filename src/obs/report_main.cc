/**
 * @file
 * gpucc_report: run-scale observability CLI — profiled sweeps into the
 * content-addressed run ledger, the ledger trend sentry, the simperf
 * regression gate (formerly an inline python heredoc in check.sh), and
 * conformance band margins, rendered as a markdown/JSON dashboard.
 *
 * Exit codes: 0 clean, 1 regression (trend, simperf unless
 * --simperf-warn, or failed conformance check), 2 usage/load error.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/report.h"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: gpucc_report [options]\n"
          "\n"
          "Ledger / sweep:\n"
          "  --ledger PATH        run ledger (JSONL) to load; --sweep\n"
          "                       appends to it content-addressed\n"
          "  --sweep              run the profiled observability sweep\n"
          "                       (session_robustness + league cells)\n"
          "  --no-league          skip the league cells in the sweep\n"
          "  --seeds N            seeds per sweep cell (default 2)\n"
          "  --seed-base N        sweep seed base (default 2017)\n"
          "  --git-rev STR        revision tag for new records\n"
          "                       (default: git describe)\n"
          "  --noise-band F       trend noise band (default 0.15)\n"
          "\n"
          "Simperf gate:\n"
          "  --simperf COMMITTED FRESH\n"
          "                       compare a fresh bench_simperf JSON\n"
          "                       against the committed record\n"
          "  --simperf-threshold F  regression ratio (default 0.85)\n"
          "  --simperf-warn       report simperf regressions without\n"
          "                       failing the exit code\n"
          "  --inject-slowdown F  scale fresh simperf numbers down by\n"
          "                       F (sentry self-test hook)\n"
          "\n"
          "Conformance margins:\n"
          "  --conformance PATH   conformance_report.json to read\n"
          "\n"
          "Output:\n"
          "  --out-md PATH        write the markdown dashboard\n"
          "  --out-json PATH      write the JSON dashboard\n"
          "  --profile-json PATH  write the sweep's merged phase\n"
          "                       profile (deterministic form)\n"
          "  --quiet              suppress the stdout dashboard\n";
}

bool
needValue(int argc, int i, const char *flag)
{
    if (i + 1 >= argc) {
        std::cerr << "gpucc_report: " << flag << " needs a value\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpucc;

    std::string ledgerPath, simperfCommitted, simperfFresh;
    std::string conformancePath, outMd, outJson, profileJson;
    obs::SweepReportOptions sweepOpts;
    obs::TrendOptions trendOpts;
    bool doSweep = false;
    bool quiet = false;
    bool simperfWarn = false;
    double simperfThreshold = 0.85;
    double injectSlowdown = 0.0;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "-h") || !std::strcmp(a, "--help")) {
            usage(std::cout);
            return 0;
        } else if (!std::strcmp(a, "--ledger")) {
            if (!needValue(argc, i, a))
                return 2;
            ledgerPath = argv[++i];
        } else if (!std::strcmp(a, "--sweep")) {
            doSweep = true;
        } else if (!std::strcmp(a, "--no-league")) {
            sweepOpts.league = false;
        } else if (!std::strcmp(a, "--seeds")) {
            if (!needValue(argc, i, a))
                return 2;
            sweepOpts.seedsPerCell =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        } else if (!std::strcmp(a, "--seed-base")) {
            if (!needValue(argc, i, a))
                return 2;
            sweepOpts.seedBase = std::strtoull(argv[++i], nullptr, 0);
        } else if (!std::strcmp(a, "--git-rev")) {
            if (!needValue(argc, i, a))
                return 2;
            sweepOpts.gitRev = argv[++i];
        } else if (!std::strcmp(a, "--noise-band")) {
            if (!needValue(argc, i, a))
                return 2;
            trendOpts.noiseBand = std::strtod(argv[++i], nullptr);
        } else if (!std::strcmp(a, "--simperf")) {
            if (i + 2 >= argc) {
                std::cerr << "gpucc_report: --simperf needs COMMITTED "
                             "and FRESH paths\n";
                return 2;
            }
            simperfCommitted = argv[++i];
            simperfFresh = argv[++i];
        } else if (!std::strcmp(a, "--simperf-threshold")) {
            if (!needValue(argc, i, a))
                return 2;
            simperfThreshold = std::strtod(argv[++i], nullptr);
        } else if (!std::strcmp(a, "--simperf-warn")) {
            simperfWarn = true;
        } else if (!std::strcmp(a, "--inject-slowdown")) {
            if (!needValue(argc, i, a))
                return 2;
            injectSlowdown = std::strtod(argv[++i], nullptr);
        } else if (!std::strcmp(a, "--conformance")) {
            if (!needValue(argc, i, a))
                return 2;
            conformancePath = argv[++i];
        } else if (!std::strcmp(a, "--out-md")) {
            if (!needValue(argc, i, a))
                return 2;
            outMd = argv[++i];
        } else if (!std::strcmp(a, "--out-json")) {
            if (!needValue(argc, i, a))
                return 2;
            outJson = argv[++i];
        } else if (!std::strcmp(a, "--profile-json")) {
            if (!needValue(argc, i, a))
                return 2;
            profileJson = argv[++i];
        } else if (!std::strcmp(a, "--quiet")) {
            quiet = true;
        } else {
            std::cerr << "gpucc_report: unknown option " << a << "\n";
            usage(std::cerr);
            return 2;
        }
    }

    obs::ReportOutcome outcome;
    outcome.simperfFatal = !simperfWarn;

    obs::Profiler profiler;
    if (doSweep) {
        sweepOpts.ledgerPath = ledgerPath;
        outcome.sweep = obs::runObservabilitySweep(sweepOpts, profiler);
        if (!profileJson.empty())
            profiler.writeJson(profileJson, /*includeWall=*/false);
    } else if (doSweep == false && !profileJson.empty()) {
        std::cerr << "gpucc_report: --profile-json needs --sweep\n";
        return 2;
    }

    if (!ledgerPath.empty()) {
        obs::LedgerLoadResult loaded = obs::Ledger::load(ledgerPath);
        for (const std::string &e : loaded.errors)
            outcome.errors.push_back(e);
        outcome.history = std::move(loaded.records);
        outcome.trends =
            obs::analyzeLedgerTrends(outcome.history, trendOpts);
    }

    if (!simperfCommitted.empty())
        outcome.simperf =
            obs::compareSimperf(simperfCommitted, simperfFresh,
                                simperfThreshold, injectSlowdown);

    if (!conformancePath.empty())
        outcome.margins =
            obs::loadBandMargins(conformancePath, outcome.errors);

    if (!outMd.empty()) {
        std::ofstream os(outMd);
        if (!os.good()) {
            std::cerr << "gpucc_report: cannot write " << outMd << "\n";
            return 2;
        }
        obs::writeDashboardMd(outcome, os);
    }
    if (!outJson.empty()) {
        std::ofstream os(outJson);
        if (!os.good()) {
            std::cerr << "gpucc_report: cannot write " << outJson << "\n";
            return 2;
        }
        obs::writeDashboardJson(outcome, os);
    }
    if (!quiet)
        obs::writeDashboardMd(outcome, std::cout);

    return outcome.exitCode();
}

/**
 * @file
 * Umbrella header: the library's public API in one include.
 *
 * Layers, bottom to top:
 *  - gpu::*       the simulated GPGPU (devices, kernels-as-coroutines,
 *                 streams, hosts, block-scheduling policies, defenses)
 *  - covert::*    the paper's contribution: characterization, channels,
 *                 synchronization, parallelization, co-location control,
 *                 and the extension modules (coding, agility, detection)
 *  - workloads::* Rodinia-like interference kernels
 */

#ifndef GPUCC_GPUCC_H
#define GPUCC_GPUCC_H

// Foundations.
#include "common/bitstream.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

// The simulated GPU.
#include "gpu/arch_params.h"
#include "gpu/block_scheduler.h"
#include "gpu/device.h"
#include "gpu/device_stats.h"
#include "gpu/device_task.h"
#include "gpu/host.h"
#include "gpu/kernel.h"
#include "gpu/mitigations.h"
#include "gpu/warp_ctx.h"
#include "gpu/warp_program.h"

// Covert-channel construction and characterization.
#include "covert/agile/idle_discovery.h"
#include "covert/analysis/capacity.h"
#include "covert/channel.h"
#include "covert/channels/atomic_channel.h"
#include "covert/channels/fu_channel_plan.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/channels/l2_const_channel.h"
#include "covert/channels/sfu_channel.h"
#include "covert/characterize/cache_characterizer.h"
#include "covert/characterize/fu_characterizer.h"
#include "covert/characterize/scheduler_probe.h"
#include "covert/coding/error_code.h"
#include "covert/colocation/exclusive.h"
#include "covert/colocation/noise_experiment.h"
#include "covert/detection/cc_detector.h"
#include "covert/parallel/multi_resource_channel.h"
#include "covert/parallel/sfu_parallel_channel.h"
#include "covert/sync/duplex_channel.h"
#include "covert/sync/handshake.h"
#include "covert/sync/sync_channel.h"
#include "covert/sync/sync_l2_channel.h"
#include "covert/sync/sync_sfu_channel.h"

// Interference workloads.
#include "workloads/interference.h"

#endif // GPUCC_GPUCC_H

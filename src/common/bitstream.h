/**
 * @file
 * Payload/bitstream helpers shared by all covert channels: converting
 * text to bits and back, generating random payloads, and scoring a
 * received stream against the transmitted ground truth.
 */

#ifndef GPUCC_COMMON_BITSTREAM_H
#define GPUCC_COMMON_BITSTREAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace gpucc
{

/** A transmitted or received sequence of bits, MSB-first per byte. */
using BitVec = std::vector<std::uint8_t>;

/** Convert a text message to bits (MSB first within each byte). */
BitVec textToBits(const std::string &text);

/** Convert bits back to text; incomplete trailing bytes are dropped. */
std::string bitsToText(const BitVec &bits);

/** Generate @p n random bits from @p rng. */
BitVec randomBits(std::size_t n, Rng &rng);

/** Generate the alternating pattern 1,0,1,0,... of length @p n. */
BitVec alternatingBits(std::size_t n);

/** Result of comparing a received stream against ground truth. */
struct BitErrorReport
{
    std::size_t transmitted = 0; //!< bits sent
    std::size_t received = 0;    //!< bits decoded by the receiver
    std::size_t errors = 0;      //!< flipped bits (over compared prefix)
    std::size_t missing = 0;     //!< bits the receiver never produced

    /** Bit error rate over transmitted bits; missing bits count as errors. */
    double
    errorRate() const
    {
        if (transmitted == 0)
            return 0.0;
        return static_cast<double>(errors + missing) /
               static_cast<double>(transmitted);
    }

    /** @return true when every transmitted bit arrived intact. */
    bool errorFree() const { return errors == 0 && missing == 0; }
};

/** Compare @p got against @p sent position by position. */
BitErrorReport compareBits(const BitVec &sent, const BitVec &got);

} // namespace gpucc

#endif // GPUCC_COMMON_BITSTREAM_H

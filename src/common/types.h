/**
 * @file
 * Fundamental scalar types shared across the simulator.
 *
 * Simulated time is kept in @ref gpucc::Tick units, a fixed-point
 * sub-cycle resolution of 1/256 of a core clock cycle. Sub-cycle
 * resolution is needed because functional-unit issue occupancies are
 * fractional cycles (e.g. a 32-lane warp instruction spread over 48
 * single-precision units occupies an issue port for 32/48 of a cycle).
 */

#ifndef GPUCC_COMMON_TYPES_H
#define GPUCC_COMMON_TYPES_H

#include <cstdint>

namespace gpucc
{

/** Simulated time in 1/256-cycle units. */
using Tick = std::uint64_t;

/** Simulated time in whole core clock cycles. */
using Cycle = std::uint64_t;

/** A simulated device address (constant space or global space). */
using Addr = std::uint64_t;

/** Fixed-point scale between Tick and Cycle. */
inline constexpr Tick ticksPerCycle = 256;

/** Convert whole cycles to ticks. */
constexpr Tick
cyclesToTicks(Cycle c)
{
    return static_cast<Tick>(c) * ticksPerCycle;
}

/** Convert a fractional cycle count to ticks (rounded to nearest). */
constexpr Tick
cyclesToTicks(double c)
{
    return static_cast<Tick>(c * static_cast<double>(ticksPerCycle) + 0.5);
}

/** Convert ticks to whole cycles (truncating). */
constexpr Cycle
ticksToCycles(Tick t)
{
    return t / ticksPerCycle;
}

/** Convert ticks to fractional cycles. */
constexpr double
ticksToCyclesF(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerCycle);
}

/** Threads per warp on every modeled architecture. */
inline constexpr int warpSize = 32;

} // namespace gpucc

#endif // GPUCC_COMMON_TYPES_H

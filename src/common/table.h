/**
 * @file
 * Minimal fixed-width ASCII table printer. The bench binaries use it to
 * print rows in the same layout as the paper's tables and figure series.
 */

#ifndef GPUCC_COMMON_TABLE_H
#define GPUCC_COMMON_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace gpucc
{

/** Accumulates rows of strings and prints them column-aligned. */
class Table
{
  public:
    /** @param title Caption printed above the table. */
    explicit Table(std::string title);

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render to a string. */
    std::string render() const;

    /** Render and print to @p out (stdout by default). */
    void print(std::FILE *out = stdout) const;

    /** Structured access for machine-readable export (--json). */
    const std::string &caption() const { return title; }
    const std::vector<std::string> &headerCells() const { return head; }
    const std::vector<std::vector<std::string>> &dataRows() const
    {
        return rows;
    }

  private:
    std::string title;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/** Format helpers for table cells. */
std::string fmtDouble(double v, int precision = 1);
std::string fmtKbps(double bitsPerSecond);

} // namespace gpucc

#endif // GPUCC_COMMON_TABLE_H

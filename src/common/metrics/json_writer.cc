#include "common/metrics/json_writer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/log.h"

namespace gpucc::metrics
{

JsonWriter::JsonWriter(std::ostream &os_, bool pretty_)
    : os(os_), pretty(pretty_)
{
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "0";
    // Integers within the exactly-representable range print without a
    // fractional part so counters stay readable (and diffable).
    if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%" PRId64,
                      static_cast<std::int64_t>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
JsonWriter::separator()
{
    if (!depth.empty()) {
        if (depth.back().hasEntry)
            os << ',';
        depth.back().hasEntry = true;
    }
    if (pretty && !depth.empty()) {
        os << '\n';
        for (std::size_t i = 0; i < depth.size(); ++i)
            os << "  ";
    }
}

void
JsonWriter::writeKey(const std::string &key)
{
    GPUCC_ASSERT(!depth.empty() && depth.back().isObject,
                 "JSON key '%s' outside an object", key.c_str());
    separator();
    os << '"' << escape(key) << "\":";
    if (pretty)
        os << ' ';
}

void
JsonWriter::beginObject()
{
    GPUCC_ASSERT(!depth.empty() || !rootWritten,
                 "second JSON root value");
    if (!depth.empty()) {
        GPUCC_ASSERT(!depth.back().isObject,
                     "bare object inside an object needs a key");
        separator();
    }
    rootWritten = true;
    os << '{';
    depth.push_back(Level{true, false});
}

void
JsonWriter::beginObject(const std::string &key)
{
    writeKey(key);
    os << '{';
    depth.push_back(Level{true, false});
}

void
JsonWriter::endObject()
{
    GPUCC_ASSERT(!depth.empty() && depth.back().isObject,
                 "endObject with no open object");
    bool had = depth.back().hasEntry;
    depth.pop_back();
    if (pretty && had) {
        os << '\n';
        for (std::size_t i = 0; i < depth.size(); ++i)
            os << "  ";
    }
    os << '}';
}

void
JsonWriter::beginArray()
{
    GPUCC_ASSERT(!depth.empty() || !rootWritten,
                 "second JSON root value");
    if (!depth.empty()) {
        GPUCC_ASSERT(!depth.back().isObject,
                     "bare array inside an object needs a key");
        separator();
    }
    rootWritten = true;
    os << '[';
    depth.push_back(Level{false, false});
}

void
JsonWriter::beginArray(const std::string &key)
{
    writeKey(key);
    os << '[';
    depth.push_back(Level{false, false});
}

void
JsonWriter::endArray()
{
    GPUCC_ASSERT(!depth.empty() && !depth.back().isObject,
                 "endArray with no open array");
    bool had = depth.back().hasEntry;
    depth.pop_back();
    if (pretty && had) {
        os << '\n';
        for (std::size_t i = 0; i < depth.size(); ++i)
            os << "  ";
    }
    os << ']';
}

void
JsonWriter::field(const std::string &key, const std::string &v)
{
    writeKey(key);
    os << '"' << escape(v) << '"';
}

void
JsonWriter::field(const std::string &key, const char *v)
{
    field(key, std::string(v));
}

void
JsonWriter::field(const std::string &key, double v)
{
    writeKey(key);
    os << number(v);
}

void
JsonWriter::field(const std::string &key, std::uint64_t v)
{
    writeKey(key);
    os << v;
}

void
JsonWriter::field(const std::string &key, std::int64_t v)
{
    writeKey(key);
    os << v;
}

void
JsonWriter::field(const std::string &key, int v)
{
    field(key, static_cast<std::int64_t>(v));
}

void
JsonWriter::field(const std::string &key, unsigned v)
{
    field(key, static_cast<std::uint64_t>(v));
}

void
JsonWriter::field(const std::string &key, bool v)
{
    writeKey(key);
    os << (v ? "true" : "false");
}

void
JsonWriter::value(const std::string &v)
{
    GPUCC_ASSERT(!depth.empty() && !depth.back().isObject,
                 "bare JSON value outside an array");
    separator();
    os << '"' << escape(v) << '"';
}

void
JsonWriter::value(double v)
{
    GPUCC_ASSERT(!depth.empty() && !depth.back().isObject,
                 "bare JSON value outside an array");
    separator();
    os << number(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    GPUCC_ASSERT(!depth.empty() && !depth.back().isObject,
                 "bare JSON value outside an array");
    separator();
    os << v;
}

void
JsonWriter::value(bool v)
{
    GPUCC_ASSERT(!depth.empty() && !depth.back().isObject,
                 "bare JSON value outside an array");
    separator();
    os << (v ? "true" : "false");
}

} // namespace gpucc::metrics

/**
 * @file
 * Minimal streaming JSON writer shared by every machine-readable
 * artifact the simulator emits: the metrics registry export, the
 * Chrome trace-event file, the channel flight recorder, and the bench
 * binaries' --json output. Centralizing the serialization keeps the
 * escaping and number formatting identical everywhere, so one python
 * json.load() in scripts/check.sh validates them all.
 *
 * The writer is a push API over an std::ostream: objects and arrays
 * are opened and closed explicitly, commas and indentation are
 * inserted automatically. No intermediate DOM is built, so multi-
 * million-event traces stream straight to disk.
 */

#ifndef GPUCC_COMMON_METRICS_JSON_WRITER_H
#define GPUCC_COMMON_METRICS_JSON_WRITER_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace gpucc::metrics
{

/** Streaming JSON serializer with automatic comma/indent management. */
class JsonWriter
{
  public:
    /**
     * @param os Destination stream (must outlive the writer).
     * @param pretty Indent nested containers (traces pass false: a
     *        10^6-event file doubles in size with indentation).
     */
    explicit JsonWriter(std::ostream &os, bool pretty = true);

    /** Open the root or a nested object; with @p key inside an object. */
    void beginObject();
    void beginObject(const std::string &key);
    void endObject();

    /** Open an array; with @p key inside an object. */
    void beginArray();
    void beginArray(const std::string &key);
    void endArray();

    /** Key/value members (only valid inside an object). */
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, std::int64_t value);
    void field(const std::string &key, int value);
    void field(const std::string &key, unsigned value);
    void field(const std::string &key, bool value);

    /** Bare values (only valid inside an array). */
    void value(const std::string &v);
    void value(double v);
    void value(std::uint64_t v);
    void value(bool v);

    /** @return true once every opened container has been closed. */
    bool complete() const { return depth.empty() && rootWritten; }

    /** Escape @p s per RFC 8259 (exposed for tests). */
    static std::string escape(const std::string &s);

    /**
     * Format @p v as a JSON number: integers print exactly, other
     * values with enough digits to round-trip, and non-finite values
     * (which JSON cannot represent) degrade to 0.
     */
    static std::string number(double v);

  private:
    struct Level
    {
        bool isObject = false;
        bool hasEntry = false;
    };

    /** Comma/newline/indent before the next entry at this level. */
    void separator();
    void writeKey(const std::string &key);

    std::ostream &os;
    bool pretty;
    bool rootWritten = false;
    std::vector<Level> depth;
};

} // namespace gpucc::metrics

#endif // GPUCC_COMMON_METRICS_JSON_WRITER_H

/**
 * @file
 * Typed metrics registry: the simulator's one source of numeric truth.
 *
 * Components register three kinds of instruments:
 *
 *  - Counter: a monotonically increasing count the component pushes
 *    into (link frames sent, faults fired);
 *  - Gauge: a pull callback sampled on demand — most simulator tallies
 *    already live in their owning structure (ResourcePool busy ticks,
 *    SetAssocCache hits), so a gauge just exposes them without adding
 *    a second counter to the hot path;
 *  - Histogram: a sample distribution with percentile queries (symbol
 *    latencies, per-round frame errors).
 *
 * The registry supports *interval snapshots*: snapshot(tick) samples
 * every instrument into a time-series row, giving benches and the
 * defender dashboard the profiler-style view the paper's Section 9
 * defenses presume — counters over time, not one end-of-run total.
 * Everything exports as stable JSON (names sorted, one schema) via
 * writeJson()/toJson().
 *
 * Threading: one registry belongs to one Device (or one bench binary),
 * which runs on one thread — the same ownership contract as the event
 * queue, so no locks anywhere.
 */

#ifndef GPUCC_COMMON_METRICS_METRICS_H
#define GPUCC_COMMON_METRICS_METRICS_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace gpucc::metrics
{

/** Monotonic counter, push-updated by its owning component. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { v += n; }
    std::uint64_t value() const { return v; }
    void reset() { v = 0; }

  private:
    std::uint64_t v = 0;
};

/** Sample distribution with exact percentiles (bounded retention). */
class Histogram
{
  public:
    /** @param maxSamples Retention cap; further samples still count
     *  toward count()/sum() but are not retained for percentiles. */
    explicit Histogram(std::size_t maxSamples = 1 << 20)
        : cap(maxSamples)
    {
    }

    /** Record one sample. */
    void add(double x);

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double min() const { return n ? minV : 0.0; }
    double max() const { return n ? maxV : 0.0; }

    /**
     * Nearest-rank percentile over the retained samples.
     * @param p In [0, 100].
     */
    double percentile(double p) const;

    void reset();

  private:
    std::size_t cap;
    std::uint64_t n = 0;
    double total = 0.0;
    double minV = 0.0;
    double maxV = 0.0;
    mutable std::vector<double> samples;
    mutable bool sorted = true;
};

/** One sampled row of the time-series. Rows carry their own names so
 *  instruments registered mid-run (a FaultInjector arming after the
 *  first sample) cannot misalign earlier rows. */
struct Snapshot
{
    Tick tick = 0; //!< device tick the sample was taken at
    std::vector<std::pair<std::string, double>> values; //!< sorted by name

    /** Value of @p name in this row (0 when absent). */
    double get(const std::string &name) const;
};

/** Registry of named instruments plus the snapshot time-series. */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Register (or fetch, if @p name exists) a counter. Re-registration
     * returns the same instance so independent arming passes (e.g. a
     * second FaultInjector on one device) can share a metric.
     */
    Counter &counter(const std::string &name);

    /** Register a pull gauge; replaces any previous gauge of @p name
     *  (components re-register when they are re-armed). */
    void gauge(const std::string &name, std::function<double()> fn);

    /** Register (or fetch) a histogram. */
    Histogram &histogram(const std::string &name);

    /** @return true when @p name names any registered instrument. */
    bool contains(const std::string &name) const;

    /**
     * Current value of metric @p name: counter value, gauge sample, or
     * histogram count. Histograms additionally expose derived metrics
     * under "<name>.mean", "<name>.p50", "<name>.p95", "<name>.max".
     * @return 0 for unknown names (a snapshot never faults).
     */
    double value(const std::string &name) const;

    /**
     * Sample every instrument into the time-series. Rows are appended
     * in call order; benches sample on a fixed simulated-tick cadence
     * so the series is deterministic.
     */
    const Snapshot &snapshot(Tick tick);

    /** All sampled rows so far. */
    const std::vector<Snapshot> &series() const { return rows; }

    /** Column names of the snapshot rows (sorted, stable). */
    const std::vector<std::string> &metricNames() const;

    /** Drop the sampled series (instruments keep their state). */
    void clearSeries() { rows.clear(); }

    /**
     * Serialize as JSON: {"metrics": {name: value, ...},
     * "snapshots": [{"tick": t, "values": {name: value, ...}}, ...]}.
     * Stable (sorted-name) ordering throughout.
     */
    std::string toJson() const;

    /** Write toJson() to @p path (fatal on I/O failure). */
    void writeJson(const std::string &path) const;

  private:
    struct Instrument
    {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Histogram> histogram;
        std::function<double()> gauge;
    };

    /** Expanded column list including histogram derived metrics. */
    void rebuildColumns() const;

    std::map<std::string, Instrument> instruments;
    std::vector<Snapshot> rows;
    mutable std::vector<std::string> columns;
    mutable bool columnsStale = true;
};

} // namespace gpucc::metrics

#endif // GPUCC_COMMON_METRICS_METRICS_H

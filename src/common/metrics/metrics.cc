#include "common/metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/metrics/json_writer.h"

namespace gpucc::metrics
{

void
Histogram::add(double x)
{
    ++n;
    total += x;
    if (n == 1) {
        minV = maxV = x;
    } else {
        minV = std::min(minV, x);
        maxV = std::max(maxV, x);
    }
    if (samples.size() < cap) {
        samples.push_back(x);
        sorted = false;
    }
}

double
Histogram::percentile(double p) const
{
    if (samples.empty())
        return 0.0;
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
    p = std::clamp(p, 0.0, 100.0);
    // Nearest-rank: the smallest sample with at least p% of the mass
    // at or below it.
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples.size())));
    if (rank > 0)
        --rank;
    return samples[std::min(rank, samples.size() - 1)];
}

void
Histogram::reset()
{
    n = 0;
    total = minV = maxV = 0.0;
    samples.clear();
    sorted = true;
}

Counter &
Registry::counter(const std::string &name)
{
    auto &inst = instruments[name];
    GPUCC_ASSERT(!inst.gauge && !inst.histogram,
                 "metric '%s' already registered with another type",
                 name.c_str());
    if (!inst.counter) {
        inst.counter = std::make_unique<Counter>();
        columnsStale = true;
    }
    return *inst.counter;
}

void
Registry::gauge(const std::string &name, std::function<double()> fn)
{
    auto &inst = instruments[name];
    GPUCC_ASSERT(!inst.counter && !inst.histogram,
                 "metric '%s' already registered with another type",
                 name.c_str());
    if (!inst.gauge)
        columnsStale = true;
    inst.gauge = std::move(fn);
}

Histogram &
Registry::histogram(const std::string &name)
{
    auto &inst = instruments[name];
    GPUCC_ASSERT(!inst.counter && !inst.gauge,
                 "metric '%s' already registered with another type",
                 name.c_str());
    if (!inst.histogram) {
        inst.histogram = std::make_unique<Histogram>();
        columnsStale = true;
    }
    return *inst.histogram;
}

bool
Registry::contains(const std::string &name) const
{
    return instruments.count(name) != 0;
}

double
Registry::value(const std::string &name) const
{
    auto it = instruments.find(name);
    if (it == instruments.end()) {
        // Histogram derived metrics: "<base>.mean" etc.
        auto dot = name.rfind('.');
        if (dot == std::string::npos)
            return 0.0;
        auto base = instruments.find(name.substr(0, dot));
        if (base == instruments.end() || !base->second.histogram)
            return 0.0;
        const Histogram &h = *base->second.histogram;
        std::string suffix = name.substr(dot + 1);
        if (suffix == "mean")
            return h.mean();
        if (suffix == "p50")
            return h.percentile(50.0);
        if (suffix == "p95")
            return h.percentile(95.0);
        if (suffix == "max")
            return h.max();
        return 0.0;
    }
    const Instrument &inst = it->second;
    if (inst.counter)
        return static_cast<double>(inst.counter->value());
    if (inst.gauge)
        return inst.gauge();
    if (inst.histogram)
        return static_cast<double>(inst.histogram->count());
    return 0.0;
}

void
Registry::rebuildColumns() const
{
    columns.clear();
    for (const auto &[name, inst] : instruments) {
        columns.push_back(name);
        if (inst.histogram) {
            // Lexicographic within the base's prefix: Snapshot::get
            // binary-searches the row, so columns must stay sorted.
            columns.push_back(name + ".max");
            columns.push_back(name + ".mean");
            columns.push_back(name + ".p50");
            columns.push_back(name + ".p95");
        }
    }
    // Guarantee global order even when a sibling name sorts between a
    // histogram base and its derived suffixes.
    std::sort(columns.begin(), columns.end());
    columnsStale = false;
}

const std::vector<std::string> &
Registry::metricNames() const
{
    if (columnsStale)
        rebuildColumns();
    return columns;
}

double
Snapshot::get(const std::string &name) const
{
    auto it = std::lower_bound(
        values.begin(), values.end(), name,
        [](const auto &a, const std::string &b) { return a.first < b; });
    return it != values.end() && it->first == name ? it->second : 0.0;
}

const Snapshot &
Registry::snapshot(Tick tick)
{
    const auto &names = metricNames();
    Snapshot row;
    row.tick = tick;
    row.values.reserve(names.size());
    for (const auto &n : names)
        row.values.emplace_back(n, value(n));
    rows.push_back(std::move(row));
    return rows.back();
}

std::string
Registry::toJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.beginObject("metrics");
    for (const auto &name : metricNames())
        w.field(name, value(name));
    w.endObject();
    w.beginArray("snapshots");
    for (const auto &row : rows) {
        w.beginObject();
        w.field("tick", static_cast<std::uint64_t>(row.tick));
        w.beginObject("values");
        for (const auto &[name, v] : row.values)
            w.field(name, v);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return os.str();
}

void
Registry::writeJson(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        GPUCC_FATAL("cannot open metrics JSON output '%s'", path.c_str());
    f << toJson() << "\n";
}

} // namespace gpucc::metrics

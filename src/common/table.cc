#include "common/table.h"

#include <algorithm>
#include <sstream>

namespace gpucc
{

Table::Table(std::string title_) : title(std::move(title_)) {}

void
Table::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(head);
    for (const auto &r : rows)
        grow(r);

    std::ostringstream os;
    os << "== " << title << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            os << cell << std::string(widths[i] - cell.size() + 2, ' ');
        }
        os << "\n";
    };
    if (!head.empty()) {
        emit(head);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

void
Table::print(std::FILE *out) const
{
    std::string s = render();
    std::fwrite(s.data(), 1, s.size(), out);
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string
fmtKbps(double bitsPerSecond)
{
    if (bitsPerSecond >= 1e6)
        return fmtDouble(bitsPerSecond / 1e6, 2) + " Mbps";
    return fmtDouble(bitsPerSecond / 1e3, 1) + " Kbps";
}

} // namespace gpucc

#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace gpucc
{

void
Accumulator::add(double x)
{
    if (n == 0) {
        minV = maxV = x;
    } else {
        minV = std::min(minV, x);
        maxV = std::max(maxV, x);
    }
    ++n;
    sumV += x;
    sumSq += x * x;
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::mean() const
{
    return n ? sumV / static_cast<double>(n) : 0.0;
}

double
Accumulator::stddev() const
{
    if (n < 2)
        return 0.0;
    double m = mean();
    double var = sumSq / static_cast<double>(n) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins_)
    : lo(lo_), hi(hi_), counts(bins_, 0)
{
    GPUCC_ASSERT(bins_ >= 1, "histogram needs at least one bin");
    GPUCC_ASSERT(hi_ > lo_, "histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    double frac = (x - lo) / (hi - lo);
    auto idx = static_cast<std::int64_t>(
        frac * static_cast<double>(counts.size()));
    idx = std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts.size()) - 1);
    ++counts[static_cast<std::size_t>(idx)];
    ++totalN;
}

double
Histogram::binCenter(std::size_t i) const
{
    double w = (hi - lo) / static_cast<double>(counts.size());
    return lo + (static_cast<double>(i) + 0.5) * w;
}

double
separationThreshold(const Accumulator &zeros, const Accumulator &ones)
{
    return 0.5 * (zeros.mean() + ones.mean());
}

} // namespace gpucc

/**
 * @file
 * Lightweight statistics accumulators used by the characterization
 * microbenchmarks and the channel harnesses.
 */

#ifndef GPUCC_COMMON_STATS_H
#define GPUCC_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gpucc
{

/** Streaming accumulator for min/max/mean/stddev of a sample set. */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Reset to the empty state. */
    void reset();

    /** @return number of samples added. */
    std::size_t count() const { return n; }

    /** @return sample mean (0 when empty). */
    double mean() const;

    /** @return population standard deviation (0 when n < 2). */
    double stddev() const;

    /** @return smallest sample (0 when empty). */
    double min() const { return n ? minV : 0.0; }

    /** @return largest sample (0 when empty). */
    double max() const { return n ? maxV : 0.0; }

    /** @return sum of all samples. */
    double sum() const { return sumV; }

  private:
    std::size_t n = 0;
    double sumV = 0.0;
    double sumSq = 0.0;
    double minV = 0.0;
    double maxV = 0.0;
};

/**
 * Fixed-bin histogram over a [lo, hi) range with out-of-range samples
 * clamped into the edge bins. Used to visualize latency separations
 * between "0" and "1" symbols.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin.
     * @param bins Number of bins (>= 1).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample (clamped into range). */
    void add(double x);

    /** @return count in bin i. */
    std::uint64_t binCount(std::size_t i) const { return counts.at(i); }

    /** @return number of bins. */
    std::size_t bins() const { return counts.size(); }

    /** @return center value of bin i. */
    double binCenter(std::size_t i) const;

    /** @return total samples added. */
    std::uint64_t total() const { return totalN; }

  private:
    double lo;
    double hi;
    std::vector<std::uint64_t> counts;
    std::uint64_t totalN = 0;
};

/**
 * Pick the threshold that best separates two latency sample sets
 * (midpoint of the class means). Used by receivers that decode a bit
 * by comparing a measured latency against a calibrated threshold.
 */
double separationThreshold(const Accumulator &zeros, const Accumulator &ones);

} // namespace gpucc

#endif // GPUCC_COMMON_STATS_H

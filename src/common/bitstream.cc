#include "common/bitstream.h"

#include <algorithm>

namespace gpucc
{

BitVec
textToBits(const std::string &text)
{
    BitVec bits;
    bits.reserve(text.size() * 8);
    for (unsigned char c : text) {
        for (int b = 7; b >= 0; --b)
            bits.push_back(static_cast<std::uint8_t>((c >> b) & 1));
    }
    return bits;
}

std::string
bitsToText(const BitVec &bits)
{
    std::string out;
    out.reserve(bits.size() / 8);
    for (std::size_t i = 0; i + 8 <= bits.size(); i += 8) {
        unsigned char c = 0;
        for (std::size_t b = 0; b < 8; ++b)
            c = static_cast<unsigned char>((c << 1) | (bits[i + b] & 1));
        out.push_back(static_cast<char>(c));
    }
    return out;
}

BitVec
randomBits(std::size_t n, Rng &rng)
{
    BitVec bits(n);
    for (auto &b : bits)
        b = rng.flip() ? 1 : 0;
    return bits;
}

BitVec
alternatingBits(std::size_t n)
{
    BitVec bits(n);
    for (std::size_t i = 0; i < n; ++i)
        bits[i] = static_cast<std::uint8_t>((i + 1) & 1);
    return bits;
}

BitErrorReport
compareBits(const BitVec &sent, const BitVec &got)
{
    BitErrorReport r;
    r.transmitted = sent.size();
    r.received = got.size();
    std::size_t common = std::min(sent.size(), got.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (sent[i] != got[i])
            ++r.errors;
    }
    if (got.size() < sent.size())
        r.missing = sent.size() - got.size();
    return r;
}

} // namespace gpucc

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic elements of the simulation (kernel launch jitter, payload
 * generation) draw from explicitly-seeded generators so every experiment
 * is reproducible bit-for-bit.
 */

#ifndef GPUCC_COMMON_RNG_H
#define GPUCC_COMMON_RNG_H

#include <cstdint>
#include <random>
#include <sstream>
#include <string>

namespace gpucc
{

/** Thin deterministic wrapper around a 64-bit Mersenne twister. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : gen(seed) {}

    /** Re-seed the generator. */
    void seed(std::uint64_t s) { gen.seed(s); }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> d(lo, hi);
        return d(gen);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(gen);
    }

    /** Fair coin flip. */
    bool flip() { return (gen() & 1) != 0; }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution d(p);
        return d(gen);
    }

    /** Raw 64-bit draw. */
    std::uint64_t raw() { return gen(); }

    /**
     * Mid-stream generator state as a portable text blob (the standard
     * mt19937_64 stream format). Device/channel snapshots capture this
     * so a forked run draws the exact continuation of the original
     * stream.
     */
    std::string
    saveState() const
    {
        std::ostringstream os;
        os << gen;
        return os.str();
    }

    /** Restore a state produced by saveState(). */
    void
    restoreState(const std::string &s)
    {
        std::istringstream is(s);
        is >> gen;
    }

  private:
    std::mt19937_64 gen;
};

} // namespace gpucc

#endif // GPUCC_COMMON_RNG_H

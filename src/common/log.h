/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * panic()  - an internal simulator invariant was violated; aborts.
 * fatal()  - the user asked for something impossible; exits cleanly.
 * warn()   - something is modeled approximately; execution continues.
 * inform() - plain status output.
 */

#ifndef GPUCC_COMMON_LOG_H
#define GPUCC_COMMON_LOG_H

#include <cstdarg>
#include <string>

namespace gpucc
{

/** Printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Abort with a message: an internal simulator bug. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Exit with a message: a user/configuration error. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Non-fatal warning to stderr. */
void warnImpl(const std::string &msg);

/** Informational message to stderr. */
void informImpl(const std::string &msg);

/** Globally enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

} // namespace gpucc

#define GPUCC_PANIC(...) \
    ::gpucc::panicImpl(__FILE__, __LINE__, ::gpucc::strfmt(__VA_ARGS__))
#define GPUCC_FATAL(...) \
    ::gpucc::fatalImpl(__FILE__, __LINE__, ::gpucc::strfmt(__VA_ARGS__))
#define GPUCC_WARN(...) ::gpucc::warnImpl(::gpucc::strfmt(__VA_ARGS__))
#define GPUCC_INFORM(...) ::gpucc::informImpl(::gpucc::strfmt(__VA_ARGS__))

/** Assert an invariant with a formatted message. */
#define GPUCC_ASSERT(cond, ...)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            GPUCC_PANIC("assertion failed: %s: %s", #cond,                    \
                        ::gpucc::strfmt(__VA_ARGS__).c_str());                \
        }                                                                     \
    } while (0)

#endif // GPUCC_COMMON_LOG_H

#include "sim/frame_arena.h"

#include <new>
#include <vector>

namespace gpucc::sim
{

namespace
{

/** Bin granularity; also the alignment of carved blocks. */
constexpr std::size_t binBytes = 64;

/** Bins cover requests up to (numBins - 1) * binBytes - header. */
constexpr std::size_t numBins = 33;

/** Bytes carved off the front of each block for the bin tag. */
constexpr std::size_t headerBytes = 16;

/** Slab growth unit. */
constexpr std::size_t slabBytes = 256 * 1024;

/** Header tag marking a block that came from the global heap. */
constexpr std::uint64_t heapTag = 0;

struct ThreadArena
{
    void *freeHeads[numBins] = {};
    char *slabCur = nullptr;
    std::size_t slabLeft = 0;
    std::vector<void *> slabs;
    FrameArenaStats counters;

    ~ThreadArena()
    {
        for (void *s : slabs)
            ::operator delete(s);
    }

    void *
    carve(std::size_t blockSize)
    {
        if (slabLeft < blockSize) {
            void *s = ::operator new(slabBytes);
            slabs.push_back(s);
            slabCur = static_cast<char *>(s);
            slabLeft = slabBytes;
            counters.slabBytes += slabBytes;
        }
        void *block = slabCur;
        slabCur += blockSize;
        slabLeft -= blockSize;
        return block;
    }
};

ThreadArena &
arena()
{
    static thread_local ThreadArena tls;
    return tls;
}

} // namespace

void *
FrameArena::allocate(std::size_t bytes)
{
    const std::size_t total = bytes + headerBytes;
    const std::size_t bin = (total + binBytes - 1) / binBytes;
    ThreadArena &a = arena();
    if (bin < numBins) [[likely]] {
        ++a.counters.allocs;
        void *block;
        void *&head = a.freeHeads[bin];
        if (head != nullptr) {
            ++a.counters.reuses;
            block = head;
            head = *static_cast<void **>(block);
        } else {
            block = a.carve(bin * binBytes);
        }
        *static_cast<std::uint64_t *>(block) = bin;
        return static_cast<char *>(block) + headerBytes;
    }
    ++a.counters.heapFallbacks;
    void *raw = ::operator new(total);
    *static_cast<std::uint64_t *>(raw) = heapTag;
    return static_cast<char *>(raw) + headerBytes;
}

void
FrameArena::deallocate(void *p) noexcept
{
    if (p == nullptr)
        return;
    void *block = static_cast<char *>(p) - headerBytes;
    const std::uint64_t bin = *static_cast<std::uint64_t *>(block);
    if (bin == heapTag) {
        ::operator delete(block);
        return;
    }
    ThreadArena &a = arena();
    *static_cast<void **>(block) = a.freeHeads[bin];
    a.freeHeads[bin] = block;
}

FrameArenaStats
FrameArena::stats()
{
    return arena().counters;
}

} // namespace gpucc::sim
